//! The full communication-aware sparsified pipeline (§IV-C) on the MLP:
//! train with distance-masked group Lasso, prune, fine-tune, and compare
//! the resulting chip-level performance against the dense baseline.
//!
//! `cargo run --release --example sparsified_training`

use learn_to_scale::core::experiment::GroupMatrix;
use learn_to_scale::core::pipeline::{plan_for, train_baseline, train_sparsified, PipelineConfig};
use learn_to_scale::core::report::render_group_matrix;
use learn_to_scale::core::strategy::SparsityScheme;
use learn_to_scale::core::SystemModel;
use learn_to_scale::datasets::presets::synth_mnist;
use learn_to_scale::nn::models;
use learn_to_scale::nn::prune::PruneCriterion;
use learn_to_scale::nn::trainer::TrainConfig;
use learn_to_scale::noc::Mesh2d;
use learn_to_scale::partition::Plan;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cores = 16;
    let data = synth_mnist(256, 128, 7);
    let config = PipelineConfig {
        train: TrainConfig { epochs: 5, batch_size: 32, lr: 0.06, ..TrainConfig::default() },
        fine_tune_epochs: 2,
        ..PipelineConfig::default()
    };

    // Dense baseline.
    println!("training dense baseline ...");
    let baseline = train_baseline(models::mlp(28 * 28, 10, 7)?, &data, &config)?;
    println!("baseline test accuracy: {:.1}%", baseline.test_accuracy * 100.0);

    // SS_Mask: group Lasso with hop-distance strengths, then prune.
    println!("training SS_Mask (distance-masked group Lasso) ...");
    let sparsified = train_sparsified(
        models::mlp(28 * 28, 10, 7)?,
        &data,
        &config,
        cores,
        SparsityScheme::mask(),
        2.0,
        PruneCriterion::RmsBelowRelative(0.35),
    )?;
    println!("sparsified test accuracy: {:.1}%", sparsified.test_accuracy * 100.0);
    for (layer, report) in &sparsified.prune_reports {
        println!(
            "  {layer}: pruned {}/{} weight groups ({} weights frozen at zero)",
            report.groups_pruned, report.groups_total, report.weights_frozen
        );
    }

    // Chip-level comparison.
    let model = SystemModel::paper(cores)?;
    let dense_plan = plan_for(&baseline.network, cores, false, true)?;
    let sparse_plan = plan_for(&sparsified.network, cores, true, true)?;
    let dense_report = model.evaluate(&dense_plan)?;
    let sparse_report = model.evaluate(&sparse_plan)?;
    println!(
        "\nNoC traffic: {} -> {} bytes ({:.0}% of baseline)",
        dense_plan.total_traffic_bytes(),
        sparse_plan.total_traffic_bytes(),
        sparse_report.traffic_rate_vs(&dense_report) * 100.0
    );
    println!(
        "system speedup: {:.2}x, NoC energy reduction: {:.0}%",
        sparse_report.speedup_vs(&dense_report),
        sparse_report.noc_energy_reduction_vs(&dense_report) * 100.0
    );

    // Fig. 6(b): which producer->consumer blocks survived in ip2?
    let spec = sparsified.network.spec();
    let layout = Plan::dense(&spec, cores, 2)?
        .layer("ip2")
        .and_then(|l| l.layout.clone())
        .expect("ip2 always has a layout");
    let weights = sparsified.network.layer_weight("ip2").expect("ip2 weights");
    let matrix = GroupMatrix {
        network: "MLP".into(),
        layer: "ip2".into(),
        cores,
        norms: layout.norm_matrix(weights.value.as_slice()),
    };
    println!("\n{}", render_group_matrix(&matrix));
    let mesh = Mesh2d::new(4, 4);
    println!(
        "mean hop distance of surviving off-diagonal groups: {:.2} (mesh mean {:.2})",
        matrix.mean_surviving_distance(&mesh),
        mesh.mean_distance()
    );
    Ok(())
}
