//! Crash-safe training smoke run: train with per-epoch checkpoints,
//! "crash" halfway, resume from the snapshot file, and verify the
//! resumed weights are **bit-identical** to an uninterrupted run.
//!
//! Exits nonzero if the round-trip diverges, so `scripts/check.sh`
//! uses it as the trainer-resume gate.
//! `cargo run --release --example trainer_resume`

use learn_to_scale::nn::network::{Network, NetworkBuilder};
use learn_to_scale::nn::trainer::{TrainCheckpoint, TrainConfig, Trainer};
use learn_to_scale::nn::NnError;
use learn_to_scale::tensor::{init, ops, Shape, Tensor};

fn toy_data(n: usize, seed: u64) -> (Tensor, Vec<usize>) {
    let mut rng = init::rng(seed);
    let x = init::uniform(Shape::d2(n, 8), 1.0, &mut rng);
    let labels = (0..n)
        .map(|i| {
            let row = &x.as_slice()[i * 8..(i + 1) * 8];
            ops::argmax(&row[0..4]).map(|(j, _)| j).unwrap_or(0)
        })
        .collect();
    (x, labels)
}

fn toy_net() -> Result<Network, NnError> {
    let mut rng = init::rng(5);
    NetworkBuilder::new("resume-smoke", (8, 1, 1))
        .linear("ip1", 16)
        .relu()
        .linear("ip2", 4)
        .build(&mut rng)
}

fn weights(net: &Network) -> Vec<Vec<f32>> {
    net.params().into_iter().map(|p| p.value.as_slice().to_vec()).collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (x, y) = toy_data(128, 3);
    let config = TrainConfig { epochs: 6, batch_size: 16, lr: 0.1, ..TrainConfig::default() };
    let trainer = Trainer::new(config)?;
    let ckpt_path =
        std::env::temp_dir().join(format!("lts-trainer-resume-{}.ckpt", std::process::id()));

    // The uninterrupted reference run.
    let mut reference = toy_net()?;
    let reference_stats = trainer.train(&mut reference, &x, &y)?;

    // The same run, checkpointing every epoch and crashing after 3.
    let crash_after = 3usize;
    let mut victim = toy_net()?;
    let crash = trainer.train_with_checkpoints(&mut victim, &x, &y, |cp| {
        cp.save_to_file(&ckpt_path)?;
        if cp.completed_epochs == crash_after {
            return Err(NnError::SaveFailed("simulated crash".into()));
        }
        Ok(())
    });
    assert!(crash.is_err(), "the simulated crash must abort the run");

    // Recover from disk (checksum-verified) and finish the run.
    let cp = TrainCheckpoint::load_from_file(&ckpt_path)?;
    println!("trainer-resume smoke: crashed after epoch {}, resuming", cp.completed_epochs);
    assert_eq!(cp.completed_epochs, crash_after);
    let (resumed, resumed_stats) = trainer.resume(&cp, &x, &y)?;

    assert_eq!(resumed_stats, reference_stats, "stats must match the uninterrupted run");
    assert_eq!(weights(&resumed), weights(&reference), "weights must be bit-identical");
    println!(
        "  epochs {} + {} resumed, final loss {:.4}, final accuracy {:.3}",
        crash_after,
        config.epochs - crash_after,
        resumed_stats.final_loss(),
        resumed_stats.final_accuracy()
    );
    println!("  resumed run is bit-identical to the uninterrupted run");

    std::fs::remove_file(&ckpt_path)?;
    Ok(())
}
