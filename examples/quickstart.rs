//! Quickstart: partition a CNN over a 16-core mesh CMP and see where a
//! single inference pass spends its time.
//!
//! Fast (analytic + flit simulation, no training):
//! `cargo run --release --example quickstart`

use learn_to_scale::core::SystemModel;
use learn_to_scale::nn::descriptor::lenet_spec;
use learn_to_scale::partition::Plan;
use std::collections::HashMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the network (LeNet here; see lts_nn::descriptor for
    //    AlexNet/VGG19, or derive a spec from any trained Network).
    let spec = lenet_spec();
    println!(
        "network: {} ({} weights, {} MACs/inference)",
        spec.name,
        spec.total_weights(),
        spec.total_macs()
    );

    // 2. Partition it the traditional way over 16 cores: every layer's
    //    output channels spread across cores, feature maps broadcast
    //    between layers.
    let cores = 16;
    let plan = Plan::dense(&spec, cores, 2)?;
    println!("total inter-core traffic per inference: {} bytes", plan.total_traffic_bytes());

    // 3. Run it through the system model: DianNao-style core timing plus
    //    flit-level mesh-NoC simulation of every layer-transition burst.
    let model = SystemModel::paper(cores)?;
    let report = model.evaluate(&plan)?;
    println!(
        "single pass: {} cycles ({} compute + {} communication, {:.1}% comm)",
        report.total_cycles,
        report.compute_cycles,
        report.comm_cycles,
        report.comm_share() * 100.0
    );
    println!("\nper-layer breakdown:");
    println!("{:<9} {:>9} {:>8} {:>10}", "layer", "compute", "comm", "traffic(B)");
    for l in &report.layers {
        if l.compute_cycles > 0 || l.comm_cycles > 0 {
            println!(
                "{:<9} {:>9} {:>8} {:>10}",
                l.name, l.compute_cycles, l.comm_cycles, l.traffic_bytes
            );
        }
    }

    // 4. What if the cross-core weight blocks of the FC layers were
    //    sparsified away (the learn-to-scale idea)? Zeroed blocks mean
    //    feature maps that never need to be sent.
    let mut weights = HashMap::new();
    weights.insert("ip1".to_string(), vec![0.0f32; 800 * 500]);
    weights.insert("ip2".to_string(), vec![0.0f32; 500 * 10]);
    let sparse_plan = Plan::build(&spec, cores, &weights, 2)?;
    let sparse_report = model.evaluate(&sparse_plan)?;
    println!(
        "\nwith the FC layers' cross-core blocks zeroed: {:.2}x speedup, {:.0}% NoC energy saved",
        sparse_report.speedup_vs(&report),
        sparse_report.noc_energy_reduction_vs(&report) * 100.0
    );
    println!("(run the `sparsified_training` example to *learn* such a structure instead)");
    Ok(())
}
