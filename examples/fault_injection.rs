//! Fault-injection smoke run: a small mesh with a dead router and a
//! nonzero flit-drop rate must still deliver every message through
//! rerouting and NIC retransmission.
//!
//! Exits nonzero if delivery fails, so `scripts/check.sh` uses it as
//! the fault-path gate. `cargo run --release --example fault_injection`

use learn_to_scale::noc::traffic::{uniform_random, Message};
use learn_to_scale::noc::{FaultModel, NocConfig, Simulator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = NocConfig::paper_16core();
    // Node 5 dies below; a dead core cannot be a traffic endpoint, so
    // keep only the survivors' messages (what a degraded plan produces).
    let messages: Vec<Message> = uniform_random(16, 6, 800, 42)
        .messages
        .into_iter()
        .filter(|m| m.src != 5 && m.dst != 5)
        .collect();

    // A healthy run for reference.
    let clean = Simulator::new(config)?.run(&messages)?;

    // Kill an interior router and drop half a percent of all flits.
    let fault = FaultModel::none().with_seed(7).kill_router(5).drop_rate(0.005);
    let mut sim = Simulator::with_faults(config, fault)?;
    let report = sim.run(&messages)?;

    println!("fault-injection smoke: 4x4 mesh, router 5 dead, 0.5% flit drop rate");
    println!("  messages delivered : {}/{}", report.messages_delivered, messages.len());
    println!("  flits dropped      : {}", report.faults.flits_dropped);
    println!("  packets rejected   : {}", report.faults.packets_rejected);
    println!("  retransmissions    : {}", report.faults.packets_retransmitted);
    println!("  makespan           : {} cycles (clean: {})", report.makespan, clean.makespan);

    assert_eq!(
        report.messages_delivered,
        messages.len(),
        "fault-tolerant run must deliver every message"
    );
    for dir in 0..4 {
        assert_eq!(report.link_flits[5 * 4 + dir], 0, "dead router must carry no flits");
    }

    // Cutting off a destination is a typed error, not a hang.
    let cut = FaultModel::none().kill_router(3);
    let got = Simulator::with_faults(NocConfig::paper_mesh(4, 1), cut)?
        .run(&[Message::new(0, 3, 256, 0)]);
    assert!(got.is_err(), "unreachable destination must be a typed error");
    println!("  unreachable check  : {}", got.unwrap_err());

    println!("fault-injection smoke passed");
    Ok(())
}
