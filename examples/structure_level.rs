//! Structure-level parallelization (§IV-B): what grouping the middle
//! convolutions buys on a 16-core CMP, across core counts — the
//! system-model side of Tables III/V without the training time.
//!
//! `cargo run --release --example structure_level`

use learn_to_scale::core::SystemModel;
use learn_to_scale::nn::models::convnet_variant;
use learn_to_scale::partition::Plan;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("ConvNet variants on the ImageNet10 geometry (Table III system view):\n");
    for cores in [4usize, 8, 16, 32] {
        let model = SystemModel::paper(cores)?;
        // Traditional: dense network, broadcast everything.
        let dense = convnet_variant([64, 160, 320], 1, 0)?.spec();
        let dense_report = model.evaluate(&Plan::dense(&dense, cores, 2)?)?;
        // Structure-level: conv2/conv3 grouped n = cores ways.
        let grouped = convnet_variant([64, 160, 320], cores, 0)?.spec();
        let grouped_report = model.evaluate(&Plan::dense(&grouped, cores, 2)?)?;
        println!(
            "{:>2} cores: dense {:>8} cycles ({:>4.1}% comm)  grouped {:>7} cycles  speedup {:.1}x  NoC energy -{:.0}%",
            cores,
            dense_report.total_cycles,
            dense_report.comm_share() * 100.0,
            grouped_report.total_cycles,
            grouped_report.speedup_vs(&dense_report),
            grouped_report.noc_energy_reduction_vs(&dense_report) * 100.0
        );
    }
    println!("\nGrouped conv2/conv3 eliminate their transition traffic entirely and");
    println!("divide their per-core compute by the group count — but the ungrouped");
    println!("conv1/ip layers bound the overall speedup (Amdahl), which is why the");
    println!("paper's Table V saturates around 6-7x at 32 cores.");
    Ok(())
}
