//! Drive the flit-level NoC simulator directly: compare traffic patterns,
//! watch congestion build, and sanity-check against the analytic model.
//!
//! `cargo run --release --example noc_explorer`

use learn_to_scale::noc::analytic::analyze;
use learn_to_scale::noc::traffic::{all_to_all, uniform_random, Message, TrafficTrace};
use learn_to_scale::noc::{EnergyModel, NocConfig, Simulator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = NocConfig::paper_16core();
    let mut sim = Simulator::new(config)?;
    let energy = EnergyModel::default();

    println!("Table II NoC: 4x4 mesh, 512-bit flits over 64-bit links, 3 VCs, XY routing\n");
    println!(
        "{:<26} {:>9} {:>10} {:>10} {:>12} {:>12}",
        "pattern", "messages", "makespan", "mean lat", "blocked", "energy (nJ)"
    );

    let patterns: Vec<(&str, TrafficTrace)> = vec![
        ("uniform random (light)", uniform_random(16, 4, 256, 1)),
        ("uniform random (heavy)", uniform_random(16, 16, 1024, 2)),
        ("all-to-all burst 1KB", all_to_all(16, 1024)),
        ("all-to-all burst 8KB", all_to_all(16, 8192)),
        ("hotspot to core 0", {
            let mut t = TrafficTrace::new();
            for src in 1..16 {
                t.push(Message::new(src, 0, 4096, 0));
            }
            t
        }),
        ("neighbours only", {
            let mut t = TrafficTrace::new();
            for src in 0..16usize {
                let dst = if src % 4 == 3 { src - 1 } else { src + 1 };
                t.push(Message::new(src, dst, 4096, 0));
            }
            t
        }),
    ];

    for (name, trace) in patterns {
        let report = sim.run(&trace.messages)?;
        let e = energy.report(&report, 16);
        println!(
            "{:<26} {:>9} {:>10} {:>10.0} {:>12} {:>12.1}",
            name,
            trace.len(),
            report.makespan,
            report.mean_latency(),
            report.blocked_flit_cycles,
            e.total_pj() / 1000.0
        );
    }

    println!("\nanalytic cross-check (all-to-all 8KB):");
    let trace = all_to_all(16, 8192);
    let bound = analyze(&config, &trace);
    let report = sim.run(&trace.messages)?;
    println!(
        "  lower bound {} cycles, simulated {} cycles ({:.2}x — the gap is congestion)",
        bound.makespan_lower_bound,
        report.makespan,
        report.makespan as f64 / bound.makespan_lower_bound.max(1) as f64
    );
    println!(
        "  flit-hops: analytic {} == simulated {}",
        bound.flit_hops, report.events.link_traversals
    );

    println!("\nlink utilization under the hotspot pattern:");
    let mut hotspot = TrafficTrace::new();
    for src in 1..16 {
        hotspot.push(Message::new(src, 0, 4096, 0));
    }
    let hotspot_report = sim.run(&hotspot.messages)?;
    let mesh = learn_to_scale::noc::Mesh2d::new(4, 4);
    println!("{}", learn_to_scale::noc::stats::render_link_heatmap(&hotspot_report, &mesh));
    println!(
        "hot link carries {} flits ({:.1}x the mean loaded link)",
        hotspot_report.max_link_flits(),
        hotspot_report.link_imbalance()
    );

    println!("\nNote how 'neighbours only' moves the same bytes as the hotspot pattern");
    println!("at a fraction of the makespan and blocking — locality is exactly what");
    println!("the SS_Mask training objective buys at the weight level.");
    Ok(())
}
