#!/usr/bin/env bash
# Tier-1 gate: everything a PR must pass before merge.
#
# Usage: scripts/check.sh
#
# The workspace builds fully offline — all third-party dependencies are
# vendored as API-compatible stand-ins under crates/compat/ — so every
# step runs with --offline and needs no registry access.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo test"
cargo test --offline --workspace -q

echo "==> cargo clippy (incl. the perf lint group, denied workspace-wide)"
cargo clippy --offline --workspace --all-targets -- -D warnings -D clippy::perf

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> hot-path smoke (micro-kernel bench at 2 iters + stepper-equivalence properties)"
LTS_BENCH_ITERS=2 LTS_BENCH_DIR="$(mktemp -d)" \
    cargo bench --offline -p lts-bench --bench micro_kernels
cargo test --release --offline -q -p lts-noc --test equivalence

echo "==> obs smoke (instrumented table3-quick: per-layer probe rows, exact cycle sums, <1% disabled overhead)"
LTS_BENCH_ITERS=2 LTS_BENCH_DIR="$(mktemp -d)" \
    cargo bench --offline -p lts-bench --bench obs

echo "==> fault-injection smoke (dead router + 0.5% flit drops must still deliver)"
cargo run --release --offline --example fault_injection

echo "==> chaos smoke (mid-flight core deaths: bounded loss or typed outcome, never a panic/hang)"
LTS_EFFORT=quick LTS_BENCH_DIR="$(mktemp -d)" \
    cargo run --release --offline -p lts-bench --bin chaos_soak

echo "==> serving smoke (open-loop streams: sub-saturation serves all, 2x overload sheds within budget, mid-stream core death rides through)"
# The LTS_BENCH_BASELINE gate is wired through the run itself: the sweep
# writes BENCH_serving.json and then loads/compares it as its own
# baseline, so the write -> load -> compare path is exercised every CI
# run without wall-clock flake (the ms-scale cells jitter beyond the
# 25% tolerance on shared hosts; gating against a *stored* baseline is
# the manual workflow, as for the hotpath bench — see README).
SERVING_DIR="$(mktemp -d)"
LTS_EFFORT=quick LTS_BENCH_DIR="$SERVING_DIR" \
    LTS_BENCH_BASELINE="$SERVING_DIR/BENCH_serving.json" \
    cargo run --release --offline -p lts-bench --bin serving_sweep

echo "==> trainer kill-and-resume round-trip (bit-identical weights after crash recovery)"
cargo run --release --offline --example trainer_resume

echo "==> mcm smoke (1->2 chiplet scaling sweep: monotone throughput, per-hop-class + simcache accounting)"
LTS_MCM_MAX_CHIPLETS=2 LTS_BENCH_ITERS=1 LTS_BENCH_DIR="$(mktemp -d)" \
    cargo run --release --offline -p lts-bench --bin mcm_scaling

echo "==> mcm-fault smoke (mid-inference chiplet death: hierarchical detection, survivor restaging, serving ride-through)"
# Self-baselined like the serving smoke: the sweep writes
# BENCH_mcm_fault.json and compares it as its own baseline, exercising
# the regression-gate path without wall-clock flake.
MCMF_DIR="$(mktemp -d)"
LTS_EFFORT=quick LTS_BENCH_ITERS=1 LTS_BENCH_DIR="$MCMF_DIR" \
    LTS_BENCH_BASELINE="$MCMF_DIR/BENCH_mcm_fault.json" \
    cargo run --release --offline -p lts-bench --bin mcm_fault_sweep

echo "==> quant smoke (i16 fast path: a_bt kernel uplift gate, accuracy within tolerance of f32, 2 bytes/value traffic)"
# Self-baselined like the serving smoke: the sweep writes
# BENCH_quant.json, compares it as its own baseline, then loads it back
# to prove the report round-trips through BenchReport::load.
QUANT_DIR="$(mktemp -d)"
LTS_EFFORT=quick LTS_BENCH_ITERS=1 LTS_BENCH_DIR="$QUANT_DIR" \
    LTS_BENCH_BASELINE="$QUANT_DIR/BENCH_quant.json" \
    cargo run --release --offline -p lts-bench --bin quant_sweep

echo "==> trend smoke (synthetic two-rev ledger: 30% slowdown flagged, 2% jitter not; then a real bench through the runner)"
# Part 1 is hermetic: bench_history smoke builds a synthetic two-commit
# history in a temp ledger and hard-asserts the verdicts (injected 30%
# slowdown -> regression, 2% jitter -> not, dirty append refused).
cargo run --release --offline -p lts-bench --bin bench_history smoke
# Part 2 drives a real bench end-to-end: two repeated runs of the quick
# Table III pipeline recorded into a fresh ledger, then compared and
# rendered as a trend report. Same commit twice, so the gate must pass;
# ALLOW_DIRTY because CI working trees routinely carry local edits.
TREND_DIR="$(mktemp -d)"
LTS_EFFORT=quick LTS_BENCH_ITERS=1 LTS_BENCH_DIR="$TREND_DIR" LTS_BENCH_ALLOW_DIRTY=1 \
    cargo run --release --offline -p lts-bench --bin bench_history run table3_structure_level --reps 2 --warmup 0
LTS_EFFORT=quick LTS_BENCH_ITERS=1 LTS_BENCH_DIR="$TREND_DIR" LTS_BENCH_ALLOW_DIRTY=1 \
    cargo run --release --offline -p lts-bench --bin bench_history run table3_structure_level --reps 2 --warmup 0
LTS_BENCH_DIR="$TREND_DIR" \
    cargo run --release --offline -p lts-bench --bin bench_history compare table3_structure_level
LTS_BENCH_DIR="$TREND_DIR" \
    cargo run --release --offline -p lts-bench --bin bench_history report table3_structure_level
test -f "$TREND_DIR/TREND_table3_structure_level.md"

echo "All checks passed."
