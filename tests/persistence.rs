//! Integration: saving a sparsified network and reloading it must
//! preserve the deployment artifact exactly — accuracy, zero structure,
//! and the traffic plan derived from it.

use learn_to_scale::core::pipeline::{plan_for, train_sparsified, PipelineConfig};
use learn_to_scale::core::strategy::SparsityScheme;
use learn_to_scale::datasets::presets::synth_mnist;
use learn_to_scale::nn::models;
use learn_to_scale::nn::prune::PruneCriterion;
use learn_to_scale::nn::saved::SavedNetwork;
use learn_to_scale::nn::trainer::TrainConfig;

#[test]
fn saved_sparsified_network_reproduces_plan_and_predictions() {
    let data = synth_mnist(160, 64, 13);
    let config = PipelineConfig {
        train: TrainConfig { epochs: 3, batch_size: 32, lr: 0.06, ..TrainConfig::default() },
        fine_tune_epochs: 1,
        ..PipelineConfig::default()
    };
    let outcome = train_sparsified(
        models::mlp(28 * 28, 10, 13).expect("mlp"),
        &data,
        &config,
        16,
        SparsityScheme::mask(),
        2.0,
        PruneCriterion::RmsBelowRelative(0.35),
    )
    .expect("pipeline");

    // Round-trip through JSON.
    let json = SavedNetwork::from_network(&outcome.network)
        .expect("capture")
        .to_json()
        .expect("serialize");
    let mut restored =
        SavedNetwork::from_json(&json).expect("parse").into_network().expect("rebuild");

    // Identical predictions on the test set.
    let mut original = outcome.network.clone();
    let p1 = original.predict(&data.test.images).expect("predict");
    let p2 = restored.predict(&data.test.images).expect("predict");
    assert_eq!(p1, p2);

    // Identical sparsity-aware traffic plans.
    let plan1 = plan_for(&outcome.network, 16, true, true).expect("plan");
    let plan2 = plan_for(&restored, 16, true, true).expect("plan");
    assert_eq!(plan1.total_traffic_bytes(), plan2.total_traffic_bytes());
    assert_eq!(plan1.traffic_by_layer(), plan2.traffic_by_layer());

    // Pruned structure survived (some groups are actually zero).
    let pruned_groups: usize = outcome.prune_reports.iter().map(|(_, r)| r.groups_pruned).sum();
    assert!(pruned_groups > 0, "test is vacuous without pruning");
}
