//! End-to-end integration: the full train → sparsify → prune → plan →
//! simulate pipeline at small scale.

use learn_to_scale::core::pipeline::{
    plan_for, train_baseline, train_sparsified, weights_map, PipelineConfig,
};
use learn_to_scale::core::strategy::SparsityScheme;
use learn_to_scale::core::SystemModel;
use learn_to_scale::datasets::presets::synth_mnist;
use learn_to_scale::nn::models;
use learn_to_scale::nn::prune::PruneCriterion;
use learn_to_scale::nn::trainer::TrainConfig;

fn quick_config() -> PipelineConfig {
    PipelineConfig {
        train: TrainConfig { epochs: 4, batch_size: 32, lr: 0.06, ..TrainConfig::default() },
        fine_tune_epochs: 1,
        ..PipelineConfig::default()
    }
}

#[test]
fn full_pipeline_reduces_traffic_keeps_accuracy_and_speeds_up() {
    let data = synth_mnist(256, 96, 11);
    let config = quick_config();
    let cores = 16;
    let model = SystemModel::paper(cores).expect("system model");

    let baseline =
        train_baseline(models::mlp(28 * 28, 10, 3).expect("mlp"), &data, &config).expect("train");
    assert!(baseline.test_accuracy > 0.8, "baseline accuracy {}", baseline.test_accuracy);
    let dense_plan = plan_for(&baseline.network, cores, false, true).expect("dense plan");
    let dense = model.evaluate(&dense_plan).expect("dense report");

    let sparsified = train_sparsified(
        models::mlp(28 * 28, 10, 3).expect("mlp"),
        &data,
        &config,
        cores,
        SparsityScheme::mask(),
        2.0,
        PruneCriterion::RmsBelowRelative(0.35),
    )
    .expect("sparsified pipeline");
    let sparse_plan = plan_for(&sparsified.network, cores, true, true).expect("sparse plan");
    let sparse = model.evaluate(&sparse_plan).expect("sparse report");

    // The headline claims, at small scale: traffic strictly reduced,
    // single-pass latency improved, NoC energy improved, accuracy kept.
    assert!(
        sparse_plan.total_traffic_bytes() < dense_plan.total_traffic_bytes() / 2,
        "traffic {} vs dense {}",
        sparse_plan.total_traffic_bytes(),
        dense_plan.total_traffic_bytes()
    );
    assert!(sparse.speedup_vs(&dense) > 1.05, "speedup {}", sparse.speedup_vs(&dense));
    assert!(
        sparse.noc_energy_reduction_vs(&dense) > 0.2,
        "energy reduction {}",
        sparse.noc_energy_reduction_vs(&dense)
    );
    assert!(
        sparsified.test_accuracy > baseline.test_accuracy - 0.08,
        "accuracy {} vs baseline {}",
        sparsified.test_accuracy,
        baseline.test_accuracy
    );
}

#[test]
fn pruned_structure_survives_quantization() {
    // Zero groups must stay zero through Q7.8 quantization, so the
    // traffic computed from quantized weights can only shrink further.
    let data = synth_mnist(128, 64, 5);
    let config = quick_config();
    let outcome = train_sparsified(
        models::mlp(28 * 28, 10, 5).expect("mlp"),
        &data,
        &config,
        16,
        SparsityScheme::mask(),
        2.0,
        PruneCriterion::RmsBelowRelative(0.35),
    )
    .expect("pipeline");
    let float_weights = weights_map(&outcome.network, false);
    let quant_weights = weights_map(&outcome.network, true);
    for (layer, fw) in &float_weights {
        let qw = &quant_weights[layer];
        for (i, (&f, &q)) in fw.iter().zip(qw.iter()).enumerate() {
            if f == 0.0 {
                assert_eq!(q, 0.0, "layer {layer} weight {i} resurrected by quantization");
            }
        }
    }
}

#[test]
fn structure_level_variant_beats_traditional_in_the_system_model() {
    use learn_to_scale::partition::Plan;
    let dense = models::convnet_variant([64, 128, 256], 1, 0).expect("dense").spec();
    let grouped = models::convnet_variant([64, 128, 256], 16, 0).expect("grouped").spec();
    let model = SystemModel::paper(16).expect("model");
    let dense_report = model.evaluate(&Plan::dense(&dense, 16, 2).expect("plan")).expect("report");
    let grouped_report =
        model.evaluate(&Plan::dense(&grouped, 16, 2).expect("plan")).expect("report");
    let speedup = grouped_report.speedup_vs(&dense_report);
    // Paper Table III reports 4.9x for Parallel#2; our substrate should
    // land in the same regime (well above 2x, below 20x).
    assert!((2.0..20.0).contains(&speedup), "structure-level speedup {speedup}");
    // Grouped conv2/conv3 must carry zero transition traffic.
    let grouped_plan = Plan::dense(&grouped, 16, 2).expect("plan");
    assert!(grouped_plan.layer("conv2").expect("conv2").traffic.is_empty());
    assert!(grouped_plan.layer("conv3").expect("conv3").traffic.is_empty());
}
