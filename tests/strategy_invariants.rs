//! Cross-crate invariants of the parallelization strategies, exercised
//! without training (fabricated weight patterns).

use learn_to_scale::core::SystemModel;
use learn_to_scale::nn::descriptor::{lenet_spec, mlp_spec};
use learn_to_scale::nn::grouping::GroupLayout;
use learn_to_scale::partition::Plan;
use std::collections::HashMap;

/// Weights for a layer where only groups with (producer, consumer) hop
/// distance <= `max_hops` survive.
fn local_only_weights(
    layout: &GroupLayout,
    mesh: &learn_to_scale::noc::Mesh2d,
    max_hops: usize,
) -> Vec<f32> {
    let mut w = vec![0.0f32; layout.weight_len()];
    for p in 0..layout.cores() {
        for c in 0..layout.cores() {
            if mesh.distance(p, c) <= max_hops {
                layout.visit_group(p, c, |idx| w[idx] = 0.1);
            }
        }
    }
    w
}

#[test]
fn sparser_weights_mean_monotonically_less_traffic_and_latency() {
    let spec = mlp_spec();
    let cores = 16;
    let mesh = learn_to_scale::noc::Mesh2d::new(4, 4);
    let model = SystemModel::paper(cores).expect("model");
    let dense_plan = Plan::dense(&spec, cores, 2).expect("plan");
    let layouts: HashMap<String, GroupLayout> = dense_plan
        .layers
        .iter()
        .filter_map(|l| l.layout.clone().map(|lay| (l.spec.name.clone(), lay)))
        .collect();

    let mut last_traffic = u64::MAX;
    let mut last_cycles = u64::MAX;
    // Allow progressively fewer hops: 6 (everything) down to 0 (diagonal).
    for max_hops in [6usize, 3, 1, 0] {
        let mut weights = HashMap::new();
        for (name, layout) in &layouts {
            weights.insert(name.clone(), local_only_weights(layout, &mesh, max_hops));
        }
        let plan = Plan::build(&spec, cores, &weights, 2).expect("plan");
        let report = model.evaluate(&plan).expect("report");
        assert!(
            plan.total_traffic_bytes() <= last_traffic,
            "traffic must shrink as locality tightens (max_hops {max_hops})"
        );
        assert!(
            report.total_cycles <= last_cycles,
            "latency must not grow as traffic shrinks (max_hops {max_hops})"
        );
        last_traffic = plan.total_traffic_bytes();
        last_cycles = report.total_cycles;
    }
    assert_eq!(last_traffic, 0, "diagonal-only weights need no NoC traffic");
}

#[test]
fn distance_limited_weights_bound_message_distances() {
    let spec = mlp_spec();
    let cores = 16;
    let mesh = learn_to_scale::noc::Mesh2d::new(4, 4);
    let dense_plan = Plan::dense(&spec, cores, 2).expect("plan");
    let mut weights = HashMap::new();
    for l in &dense_plan.layers {
        if let Some(layout) = &l.layout {
            weights.insert(l.spec.name.clone(), local_only_weights(layout, &mesh, 2));
        }
    }
    let plan = Plan::build(&spec, cores, &weights, 2).expect("plan");
    for lp in &plan.layers {
        for m in &lp.traffic.messages {
            assert!(
                mesh.distance(m.src, m.dst) <= 2,
                "message {} -> {} exceeds the weight locality bound",
                m.src,
                m.dst
            );
        }
    }
}

#[test]
fn traffic_rates_are_identical_across_mesh_sizes_for_same_pattern() {
    // The *relative* traffic reduction of zeroing everything off-diagonal
    // is mesh-independent for a layer whose units divide evenly.
    for cores in [4usize, 8, 16] {
        let spec = mlp_spec();
        let dense = Plan::dense(&spec, cores, 2).expect("plan");
        let mut weights = HashMap::new();
        let layout = dense.layer("ip2").and_then(|l| l.layout.clone()).expect("layout");
        let mut w = vec![0.0f32; layout.weight_len()];
        for d in 0..cores {
            layout.visit_group(d, d, |idx| w[idx] = 0.5);
        }
        weights.insert("ip2".to_string(), w);
        let sparse = Plan::build(&spec, cores, &weights, 2).expect("plan");
        assert!(sparse.layer("ip2").expect("ip2").traffic.is_empty(), "{cores} cores");
        // Other layers unchanged.
        assert_eq!(
            sparse.layer("ip3").expect("ip3").traffic.total_bytes(),
            dense.layer("ip3").expect("ip3").traffic.total_bytes()
        );
    }
}

#[test]
fn system_reports_are_deterministic() {
    let spec = lenet_spec();
    let model = SystemModel::paper(16).expect("model");
    let plan = Plan::dense(&spec, 16, 2).expect("plan");
    let a = model.evaluate(&plan).expect("a");
    let b = model.evaluate(&plan).expect("b");
    assert_eq!(a, b);
}

#[test]
fn more_cores_reduce_compute_but_not_communication() {
    let spec = lenet_spec();
    let mut last_compute = u64::MAX;
    for cores in [1usize, 4, 16] {
        let model = SystemModel::paper(cores).expect("model");
        let report = model.evaluate(&Plan::dense(&spec, cores, 2).expect("plan")).expect("r");
        assert!(
            report.compute_cycles <= last_compute,
            "compute should shrink with cores ({cores})"
        );
        last_compute = report.compute_cycles;
        if cores == 1 {
            assert_eq!(report.comm_cycles, 0);
        } else {
            assert!(report.comm_cycles > 0);
        }
    }
}
