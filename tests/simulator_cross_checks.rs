//! Cross-validation between the independent models: flit-level NoC
//! simulation vs the closed-form bound, fixed-point vs float inference,
//! and the accelerator model against hand-derived cycle counts.

use learn_to_scale::accel::{CoreConfig, CoreModel};
use learn_to_scale::core::pipeline::{train_baseline, PipelineConfig};
use learn_to_scale::datasets::presets::synth_mnist;
use learn_to_scale::nn::descriptor::lenet_spec;
use learn_to_scale::nn::models;
use learn_to_scale::nn::trainer::TrainConfig;
use learn_to_scale::noc::analytic::analyze;
use learn_to_scale::noc::{NocConfig, Simulator};
use learn_to_scale::partition::Plan;

#[test]
fn noc_simulation_respects_analytic_bounds_on_real_layer_traces() {
    let plan = Plan::dense(&lenet_spec(), 16, 2).expect("plan");
    let config = NocConfig::paper_16core();
    let mut sim = Simulator::new(config).expect("sim");
    for lp in &plan.layers {
        if lp.traffic.is_empty() {
            continue;
        }
        let bound = analyze(&config, &lp.traffic);
        let report = sim.run(&lp.traffic.messages).expect("run");
        assert!(
            report.makespan >= bound.makespan_lower_bound,
            "layer {}: simulated {} below bound {}",
            lp.spec.name,
            report.makespan,
            bound.makespan_lower_bound
        );
        assert_eq!(
            report.events.link_traversals, bound.flit_hops,
            "layer {}: XY routing flit-hops must match analytically",
            lp.spec.name
        );
        // Congestion cannot inflate a burst beyond a generous constant of
        // its serialization bound on this small mesh.
        assert!(
            report.makespan <= bound.makespan_lower_bound.saturating_mul(20).max(2000),
            "layer {}: simulated {} looks pathological vs bound {}",
            lp.spec.name,
            report.makespan,
            bound.makespan_lower_bound
        );
    }
}

#[test]
fn quantized_inference_matches_float_accuracy_closely() {
    let data = synth_mnist(192, 96, 21);
    let config = PipelineConfig {
        train: TrainConfig { epochs: 4, batch_size: 32, lr: 0.06, ..TrainConfig::default() },
        fine_tune_epochs: 0,
        quantize: false,
        ..PipelineConfig::default()
    };
    let outcome =
        train_baseline(models::mlp(28 * 28, 10, 2).expect("mlp"), &data, &config).expect("train");
    let float_acc = outcome.test_accuracy;
    let mut quantized = outcome.network.clone();
    quantized.quantize_weights();
    let quant_acc = quantized.evaluate(&data.test.images, &data.test.labels, 64).expect("evaluate");
    assert!(
        (float_acc - quant_acc).abs() < 0.05,
        "Q7.8 quantization moved accuracy too much: {float_acc} -> {quant_acc}"
    );
}

#[test]
fn accel_model_matches_hand_counted_cycles_for_lenet_conv2() {
    // LeNet conv2 on one core, full layer: 50 output channels, 20 input
    // channels, 5x5 kernel, 8x8 output positions.
    // Tiles: ceil(50/16)=4 out, ceil(20*25/16)=32 in, 64 positions.
    let spec = lenet_spec();
    let conv2 = spec.layer("conv2").expect("conv2");
    let model = CoreModel::new(CoreConfig::diannao());
    let cost = model.layer_cost(conv2, 50);
    assert_eq!(cost.compute_cycles, 4 * 32 * 64);
    // A 16-way partition gives each core 4 or 3 channels -> 1 out tile.
    let cost_16 = model.layer_cost(conv2, 4);
    assert_eq!(cost_16.compute_cycles, 32 * 64);
}

#[test]
fn single_core_plan_is_communication_free_everywhere() {
    for spec in [lenet_spec(), learn_to_scale::nn::descriptor::alexnet_spec()] {
        let plan = Plan::dense(&spec, 1, 2).expect("plan");
        assert_eq!(plan.total_traffic_bytes(), 0, "{}", spec.name);
    }
}
