//! Integration: fault injection is deterministic across the whole stack.
//!
//! Two guarantees from the robustness work are checked end to end:
//!
//! 1. the degradation sweep is bit-identical at any execution-engine
//!    worker count (`LTS_THREADS`) — fault schedules are stateless hash
//!    draws and the NoC simulator is single-threaded;
//! 2. the zero-fault sweep cells match the fault-free system model
//!    exactly, so turning the fault machinery on costs nothing when no
//!    faults are configured.

use learn_to_scale::core::degradation::{fault_sweep, outcome, FaultSweepConfig, FaultSweepRow};
use learn_to_scale::core::SystemModel;
use learn_to_scale::noc::FaultModel;
use learn_to_scale::partition::{replan, Plan};
use learn_to_scale::tensor::par::{install, ExecConfig};
use std::collections::HashMap;

fn config() -> FaultSweepConfig {
    FaultSweepConfig {
        cores: 16,
        fault_rates: vec![0.0, 1e-3],
        dead_core_sets: vec![vec![], vec![5, 10]],
        seed: 23,
    }
}

#[test]
fn sweep_is_bit_identical_across_worker_counts() {
    let mut runs: Vec<Vec<FaultSweepRow>> = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        install(ExecConfig::new(threads));
        runs.push(fault_sweep(&config()).expect("sweep"));
    }
    install(ExecConfig::from_env());
    for (i, run) in runs.iter().enumerate().skip(1) {
        assert_eq!(run, &runs[0], "worker count must not change results (run {i})");
    }
}

#[test]
fn zero_fault_cells_match_the_fault_free_model_exactly() {
    let rows = fault_sweep(&config()).expect("sweep");
    // The traditional strategy's healthy cell, recomputed independently
    // through the plain (pre-fault-model) evaluation path.
    let spec = learn_to_scale::nn::descriptor::convnet_spec();
    let plan = Plan::dense(&spec, 16, 2).expect("plan");
    let healthy = SystemModel::paper(16).expect("model").evaluate(&plan).expect("evaluate");
    let cell = rows
        .iter()
        .find(|r| r.strategy == "traditional" && r.fault_rate == 0.0 && r.dead_cores.is_empty())
        .expect("healthy traditional cell");
    assert_eq!(cell.outcome, outcome::OK);
    assert_eq!(cell.total_cycles, healthy.total_cycles);
    assert_eq!(cell.comm_cycles, healthy.comm_cycles);
    assert_eq!(cell.traffic_bytes, healthy.traffic_bytes);
    assert_eq!(cell.noc_energy_pj, healthy.noc_energy_pj);
    assert_eq!(cell.latency_vs_healthy, 1.0);
    assert_eq!(cell.energy_vs_healthy, 1.0);
    assert_eq!(cell.retransmitted_packets, 0);
    assert!(!healthy.faults.any());
}

#[test]
fn degraded_evaluation_is_reproducible_and_survivor_only() {
    let spec = learn_to_scale::nn::descriptor::convnet_spec();
    let dead = [5usize, 10];
    let degraded = replan(&spec, 16, &dead, &HashMap::new(), 2).expect("replan");
    assert_eq!(degraded.survivors(), 14);
    let fault = dead
        .iter()
        .fold(FaultModel::none().with_seed(23).drop_rate(5e-4), |f, &d| f.kill_router(d));
    let model = SystemModel::paper(16).expect("model").with_fault_model(fault);
    let a = model.evaluate_degraded(&degraded).expect("degraded run");
    let b = model.evaluate_degraded(&degraded).expect("degraded run");
    assert_eq!(a, b, "same fault model + plan must be bit-identical");
    assert!(a.total_cycles > 0);
}
