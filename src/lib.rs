//! Learn-to-Scale — facade crate.
//!
//! Re-exports the whole workspace behind one name so examples,
//! integration tests and downstream users can write
//! `use learn_to_scale::...`. See the individual crates for the full
//! documentation:
//!
//! * [`tensor`] — dense math and 16-bit fixed point ([`lts_tensor`])
//! * [`nn`] — layers, training, group-Lasso sparsification ([`lts_nn`])
//! * [`datasets`] — synthetic dataset generators ([`lts_datasets`])
//! * [`accel`] — DianNao-style core timing/energy model ([`lts_accel`])
//! * [`noc`] — flit-level mesh NoC simulator ([`lts_noc`])
//! * [`partition`] — mapping, masks and traffic generation
//!   ([`lts_partition`])
//! * [`core`] — strategies, pipelines, system model, experiments
//!   ([`lts_core`])
//!
//! # Examples
//!
//! ```
//! use learn_to_scale::nn::descriptor::lenet_spec;
//! use learn_to_scale::partition::Plan;
//! use learn_to_scale::core::SystemModel;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let plan = Plan::dense(&lenet_spec(), 16, 2)?;
//! let report = SystemModel::paper(16)?.evaluate(&plan)?;
//! assert!(report.comm_share() > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::print_stdout, clippy::print_stderr)]

pub use lts_accel as accel;
pub use lts_core as core;
pub use lts_datasets as datasets;
pub use lts_nn as nn;
pub use lts_noc as noc;
pub use lts_partition as partition;
pub use lts_tensor as tensor;
