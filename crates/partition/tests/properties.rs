//! Property-based tests for ownership, masks and traffic generation.

use lts_nn::descriptor::SpecBuilder;
use lts_nn::grouping::GroupLayout;
use lts_noc::Mesh2d;
use lts_partition::ownership::OwnershipMap;
use lts_partition::traffic::{dense_volume_bytes, transition_messages};
use lts_partition::{hop_power_mask, Plan};
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn ownership_covers_every_unit_exactly_once(
        units in 1usize..100, vpu in 1usize..16, cores in 1usize..17
    ) {
        let o = OwnershipMap::even(units, vpu, cores);
        prop_assert_eq!(o.units(), units);
        for u in 0..units {
            let owner = o.owner_of(u);
            prop_assert!(o.block(owner).contains(&u));
        }
        let total: usize = (0..cores).map(|c| o.block(c).len()).sum();
        prop_assert_eq!(total, units);
    }

    #[test]
    fn flattening_preserves_ownership_boundaries(
        units in 1usize..40, vpu in 1usize..12, cores in 1usize..9
    ) {
        let o = OwnershipMap::even(units, vpu, cores);
        let f = o.flattened();
        prop_assert_eq!(f.units(), units * vpu);
        // Every flat value belongs to the owner of its source unit.
        for u in 0..units {
            let owner = o.owner_of(u);
            for v in 0..vpu {
                prop_assert_eq!(f.owner_of(u * vpu + v), owner);
            }
        }
    }

    #[test]
    fn hop_masks_are_symmetric_and_zero_diagonal(
        w in 1usize..6, h in 1usize..6, power in 0.0f32..3.0
    ) {
        let mesh = Mesh2d::new(w, h);
        let mask = hop_power_mask(&mesh, power, true).unwrap();
        let n = mesh.nodes();
        for p in 0..n {
            prop_assert_eq!(mask.factor(p, p), 0.0);
            for c in 0..n {
                prop_assert_eq!(mask.factor(p, c), mask.factor(c, p));
                prop_assert!(mask.factor(p, c) >= 0.0);
            }
        }
    }

    #[test]
    fn sparse_traffic_is_monotone_in_the_weight_support(
        cores in 2usize..6, seed in 0u64..1000
    ) {
        // Adding nonzero weights can only add traffic, never remove it.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let out_c = 8;
        let in_c = 8;
        let spec = SpecBuilder::new("n", (in_c, 4, 4))
            .conv("c", out_c, 3, 1, 1, 1)
            .build()
            .layers[0]
            .clone();
        let producer = OwnershipMap::even(in_c, 16, cores);
        let consumers = lts_nn::grouping::even_blocks(out_c, cores);
        let layout = GroupLayout::with_blocks(
            9,
            consumers.clone(),
            producer.blocks().to_vec(),
        );
        let mut w1 = vec![0.0f32; layout.weight_len()];
        for v in w1.iter_mut() {
            if rng.gen::<f32>() < 0.1 {
                *v = 1.0;
            }
        }
        // w2 = w1 plus extra support.
        let mut w2 = w1.clone();
        for v in w2.iter_mut() {
            if rng.gen::<f32>() < 0.1 {
                *v = 1.0;
            }
        }
        let t1 = transition_messages(&producer, &spec, &consumers, Some((&layout, &w1)), 2, 0);
        let t2 = transition_messages(&producer, &spec, &consumers, Some((&layout, &w2)), 2, 0);
        prop_assert!(t2.total_bytes() >= t1.total_bytes());
        // And both are bounded by the dense broadcast volume.
        prop_assert!(t2.total_bytes() <= dense_volume_bytes(&spec, cores, 2));
    }

    #[test]
    fn plan_traffic_equals_sum_of_message_bytes(cores in 1usize..33) {
        let spec = lts_nn::descriptor::lenet_spec();
        let plan = Plan::dense(&spec, cores, 2).unwrap();
        let by_layer: u64 = plan.layers.iter().map(|l| l.traffic.total_bytes()).sum();
        prop_assert_eq!(by_layer, plan.total_traffic_bytes());
        // Every message endpoint is a valid core and never a self-send.
        for lp in &plan.layers {
            for m in &lp.traffic.messages {
                prop_assert!(m.src < cores && m.dst < cores && m.src != m.dst);
            }
        }
    }

    #[test]
    fn zeroing_one_layer_removes_exactly_its_transition(cores in 2usize..17) {
        let spec = lts_nn::descriptor::mlp_spec();
        let dense = Plan::dense(&spec, cores, 2).unwrap();
        let layout = dense.layer("ip2").unwrap().layout.clone().unwrap();
        let mut weights = HashMap::new();
        weights.insert("ip2".to_string(), vec![0.0f32; layout.weight_len()]);
        let sparse = Plan::build(&spec, cores, &weights, 2).unwrap();
        let expected = dense.total_traffic_bytes()
            - dense.layer("ip2").unwrap().traffic.total_bytes();
        prop_assert_eq!(sparse.total_traffic_bytes(), expected);
    }
}
