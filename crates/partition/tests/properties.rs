//! Property-based tests for ownership, masks, traffic generation and
//! fail-operational degradation.

use lts_nn::descriptor::SpecBuilder;
use lts_nn::grouping::GroupLayout;
use lts_noc::{McmTopology, Mesh2d};
use lts_partition::ownership::OwnershipMap;
use lts_partition::traffic::{dense_volume_bytes, transition_messages};
use lts_partition::{hop_power_mask, McmPlan, Plan};
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn ownership_covers_every_unit_exactly_once(
        units in 1usize..100, vpu in 1usize..16, cores in 1usize..17
    ) {
        let o = OwnershipMap::even(units, vpu, cores);
        prop_assert_eq!(o.units(), units);
        for u in 0..units {
            let owner = o.owner_of(u);
            prop_assert!(o.block(owner).contains(&u));
        }
        let total: usize = (0..cores).map(|c| o.block(c).len()).sum();
        prop_assert_eq!(total, units);
    }

    #[test]
    fn flattening_preserves_ownership_boundaries(
        units in 1usize..40, vpu in 1usize..12, cores in 1usize..9
    ) {
        let o = OwnershipMap::even(units, vpu, cores);
        let f = o.flattened();
        prop_assert_eq!(f.units(), units * vpu);
        // Every flat value belongs to the owner of its source unit.
        for u in 0..units {
            let owner = o.owner_of(u);
            for v in 0..vpu {
                prop_assert_eq!(f.owner_of(u * vpu + v), owner);
            }
        }
    }

    #[test]
    fn hop_masks_are_symmetric_and_zero_diagonal(
        w in 1usize..6, h in 1usize..6, power in 0.0f32..3.0
    ) {
        let mesh = Mesh2d::new(w, h);
        let mask = hop_power_mask(&mesh, power, true).unwrap();
        let n = mesh.nodes();
        for p in 0..n {
            prop_assert_eq!(mask.factor(p, p), 0.0);
            for c in 0..n {
                prop_assert_eq!(mask.factor(p, c), mask.factor(c, p));
                prop_assert!(mask.factor(p, c) >= 0.0);
            }
        }
    }

    #[test]
    fn sparse_traffic_is_monotone_in_the_weight_support(
        cores in 2usize..6, seed in 0u64..1000
    ) {
        // Adding nonzero weights can only add traffic, never remove it.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let out_c = 8;
        let in_c = 8;
        let spec = SpecBuilder::new("n", (in_c, 4, 4))
            .conv("c", out_c, 3, 1, 1, 1)
            .build()
            .layers[0]
            .clone();
        let producer = OwnershipMap::even(in_c, 16, cores);
        let consumers = lts_nn::grouping::even_blocks(out_c, cores);
        let layout = GroupLayout::with_blocks(
            9,
            consumers.clone(),
            producer.blocks().to_vec(),
        );
        let mut w1 = vec![0.0f32; layout.weight_len()];
        for v in w1.iter_mut() {
            if rng.gen::<f32>() < 0.1 {
                *v = 1.0;
            }
        }
        // w2 = w1 plus extra support.
        let mut w2 = w1.clone();
        for v in w2.iter_mut() {
            if rng.gen::<f32>() < 0.1 {
                *v = 1.0;
            }
        }
        let t1 = transition_messages(&producer, &spec, &consumers, Some((&layout, &w1)), 2, 0);
        let t2 = transition_messages(&producer, &spec, &consumers, Some((&layout, &w2)), 2, 0);
        prop_assert!(t2.total_bytes() >= t1.total_bytes());
        // And both are bounded by the dense broadcast volume.
        prop_assert!(t2.total_bytes() <= dense_volume_bytes(&spec, cores, 2));
    }

    #[test]
    fn plan_traffic_equals_sum_of_message_bytes(cores in 1usize..33) {
        let spec = lts_nn::descriptor::lenet_spec();
        let plan = Plan::dense(&spec, cores, 2).unwrap();
        let by_layer: u64 = plan.layers.iter().map(|l| l.traffic.total_bytes()).sum();
        prop_assert_eq!(by_layer, plan.total_traffic_bytes());
        // Every message endpoint is a valid core and never a self-send.
        for lp in &plan.layers {
            for m in &lp.traffic.messages {
                prop_assert!(m.src < cores && m.dst < cores && m.src != m.dst);
            }
        }
    }

    #[test]
    fn zeroing_one_layer_removes_exactly_its_transition(cores in 2usize..17) {
        let spec = lts_nn::descriptor::mlp_spec();
        let dense = Plan::dense(&spec, cores, 2).unwrap();
        let layout = dense.layer("ip2").unwrap().layout.clone().unwrap();
        let mut weights = HashMap::new();
        weights.insert("ip2".to_string(), vec![0.0f32; layout.weight_len()]);
        let sparse = Plan::build(&spec, cores, &weights, 2).unwrap();
        let expected = dense.total_traffic_bytes()
            - dense.layer("ip2").unwrap().traffic.total_bytes();
        prop_assert_eq!(sparse.total_traffic_bytes(), expected);
    }

    #[test]
    fn degraded_lost_fraction_is_a_valid_fraction(
        group_pow in 1u32..5, seed in 0u64..1_000, deaths in 1usize..8
    ) {
        // Grouped plans lose pinned chains; the loss proxy stays in [0, 1].
        let spec = grouped_spec(1 << group_pow);
        let dead = pseudo_dead(seed, deaths);
        let d = lts_partition::replan(&spec, 16, &dead, &HashMap::new(), 2).unwrap();
        let f = d.lost_output_fraction();
        prop_assert!((0.0..=1.0).contains(&f), "lost fraction {f} for dead {dead:?}");
        for lg in &d.lost_groups {
            prop_assert!((0.0..=1.0).contains(&lg.lost_fraction()));
            prop_assert!(lg.lost_channels <= lg.out_channels);
            prop_assert!(lg.lost.len() <= lg.groups);
        }
    }

    #[test]
    fn grouped_loss_is_monotone_in_the_dead_set(
        group_pow in 1u32..5, seed in 0u64..1_000, deaths in 1usize..7, extra in 0usize..16
    ) {
        // Killing one more core can only lose more (or the same) output.
        let spec = grouped_spec(1 << group_pow);
        let dead = pseudo_dead(seed, deaths);
        if dead.contains(&extra) || dead.len() + 1 >= 16 {
            return;
        }
        let mut more = dead.clone();
        more.push(extra);
        let base = lts_partition::replan(&spec, 16, &dead, &HashMap::new(), 2).unwrap();
        let worse = lts_partition::replan(&spec, 16, &more, &HashMap::new(), 2).unwrap();
        prop_assert!(worse.lost_output_fraction() >= base.lost_output_fraction());
        let channels = |d: &lts_partition::DegradedPlan| -> usize {
            d.lost_groups.iter().map(|lg| lg.lost_channels).sum()
        };
        prop_assert!(channels(&worse) >= channels(&base));
    }

    #[test]
    fn dense_and_sparsified_plans_never_lose_output(
        seed in 0u64..1_000, deaths in 1usize..8
    ) {
        // Ungrouped weights are re-loadable: degradation costs latency,
        // not accuracy — the lost fraction is exactly zero.
        let spec = lts_nn::descriptor::lenet_spec();
        let dead = pseudo_dead(seed, deaths);
        let dense = lts_partition::replan(&spec, 16, &dead, &HashMap::new(), 2).unwrap();
        prop_assert_eq!(dense.lost_output_fraction(), 0.0);
        prop_assert!(dense.lost_groups.is_empty());
        let layout = dense.plan.layer("conv2").unwrap().layout.clone().unwrap();
        let mut weights = HashMap::new();
        weights.insert("conv2".to_string(), vec![0.0f32; layout.weight_len()]);
        let sparse = lts_partition::replan(&spec, 16, &dead, &weights, 2).unwrap();
        prop_assert_eq!(sparse.lost_output_fraction(), 0.0);
        prop_assert!(sparse.lost_groups.is_empty());
    }

    #[test]
    fn incremental_replans_stay_on_survivors_with_bounded_resync(
        fault_layer in 0usize..8, seed in 0u64..1_000, deaths in 1usize..6
    ) {
        let spec = lts_nn::descriptor::lenet_spec();
        let fault_layer = fault_layer.min(spec.layers.len());
        let dead = pseudo_dead(seed, deaths);
        let inc = lts_partition::replan_from_layer(
            &spec, 16, fault_layer, &dead, &HashMap::new(), 2,
        ).unwrap();
        prop_assert_eq!(inc.survivors() + dead.len(), 16);
        prop_assert!(inc.lost_boundary_units <= inc.boundary_units);
        let f = inc.lost_boundary_fraction();
        prop_assert!((0.0..=1.0).contains(&f));
        for m in &inc.redistribution.messages {
            prop_assert!(!dead.contains(&m.src) && !dead.contains(&m.dst));
            prop_assert!(m.src != m.dst && m.src < 16 && m.dst < 16);
        }
    }
}

/// A deterministic pseudo-random dead set of at most `deaths` distinct
/// cores out of 16, never killing everyone.
fn pseudo_dead(seed: u64, deaths: usize) -> Vec<usize> {
    let mut dead = Vec::new();
    let mut x = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    while dead.len() < deaths.min(15) {
        x ^= x >> 27;
        x = x.wrapping_mul(0x2545_f491_4f6c_dd1d);
        let c = (x >> 33) as usize % 16;
        if !dead.contains(&c) {
            dead.push(c);
        }
    }
    dead
}

fn grouped_spec(groups: usize) -> lts_nn::descriptor::NetworkSpec {
    SpecBuilder::new("g", (3, 16, 16))
        .conv("conv1", 16, 5, 1, 2, 1)
        .pool("pool1", 2, 2)
        .conv("conv2", 32, 3, 1, 1, groups)
        .pool("pool2", 2, 2)
        .flatten()
        .linear("ip1", 10)
        .build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn replanning_without_no_chiplets_is_bit_identical_to_the_plan(
        chip_w in 2usize..5,
        chip_h in 1usize..3,
        grid_w in 1usize..4,
        grid_h in 1usize..3,
        groups in 1usize..3,
    ) {
        // `replan_without_chiplets` with an empty fault set must be the
        // original MCM plan, bit for bit, on any package shape — the
        // degraded path IS the healthy path at zero faults.
        let spec = grouped_spec(if groups == 1 { 1 } else { 16 });
        let topo = McmTopology::new(chip_w, chip_h, grid_w, grid_h);
        let original = McmPlan::build(&spec, &topo, &HashMap::new(), 2).unwrap();
        let replanned =
            McmPlan::replan_without_chiplets(&spec, &topo, &[], &HashMap::new(), 2).unwrap();
        prop_assert_eq!(original, replanned);
    }
}
