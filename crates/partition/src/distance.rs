//! Hop-distance strength masks (Fig. 6(a) of the paper).
//!
//! The SS_Mask scheme scales each producer→consumer weight group's
//! sparsity strength by the NoC hop distance between the two cores, so
//! training prunes long-distance groups first. Diagonal groups (same
//! core) get strength 0 — "the weights on the diagonal groups will not
//! cause any communication", so the trainer is free to keep them.

use lts_nn::regularizer::StrengthMask;
use lts_nn::NnError;
use lts_noc::Mesh2d;

/// The plain hop-distance mask: `factor(p, c) = distance(p, c)`,
/// optionally normalized so the mean off-diagonal factor is 1 (keeps the
/// group-Lasso λ comparable between SS and SS_Mask).
///
/// # Errors
///
/// Propagates [`NnError::BadConfig`] from mask construction (cannot happen
/// for a valid mesh, but the signature keeps the caller honest).
pub fn hop_mask(mesh: &Mesh2d, normalize: bool) -> Result<StrengthMask, NnError> {
    hop_power_mask(mesh, 1.0, normalize)
}

/// Generalized distance mask: `factor(p, c) = distance(p, c)^power` for
/// `p != c`, and `0` on the diagonal. `power = 0` penalizes every
/// off-core group equally (distance-blind, but still traffic-aware);
/// larger powers concentrate pruning on the longest paths. The ablation
/// benches sweep this.
///
/// # Errors
///
/// Propagates [`NnError::BadConfig`] from mask construction.
pub fn hop_power_mask(mesh: &Mesh2d, power: f32, normalize: bool) -> Result<StrengthMask, NnError> {
    let n = mesh.nodes();
    let mut factors = vec![0.0f32; n * n];
    for p in 0..n {
        for c in 0..n {
            if p != c {
                factors[p * n + c] = (mesh.distance(p, c) as f32).powf(power);
            }
        }
    }
    if normalize {
        let off_diag: Vec<f32> = factors.iter().copied().filter(|&f| f > 0.0).collect();
        if !off_diag.is_empty() {
            let mean = off_diag.iter().sum::<f32>() / off_diag.len() as f32;
            if mean > 0.0 {
                for f in &mut factors {
                    *f /= mean;
                }
            }
        }
    }
    StrengthMask::from_factors(n, factors)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_is_zero_everywhere() {
        let mesh = Mesh2d::new(4, 4);
        let mask = hop_mask(&mesh, false).unwrap();
        for i in 0..16 {
            assert_eq!(mask.factor(i, i), 0.0);
        }
    }

    #[test]
    fn factors_match_figure_6a_distances() {
        let mesh = Mesh2d::new(4, 4);
        let mask = hop_mask(&mesh, false).unwrap();
        // Fig. 6(a): cores 0..4 on the top row at distances 0..3.
        assert_eq!(mask.factor(0, 1), 1.0);
        assert_eq!(mask.factor(0, 2), 2.0);
        assert_eq!(mask.factor(0, 3), 3.0);
        assert_eq!(mask.factor(3, 0), 3.0);
        // Opposite mesh corners: 6 hops.
        assert_eq!(mask.factor(0, 15), 6.0);
    }

    #[test]
    fn normalization_gives_unit_mean_off_diagonal() {
        let mesh = Mesh2d::new(4, 4);
        let mask = hop_mask(&mesh, true).unwrap();
        let sum: f32 = mask.factors().iter().sum();
        let count = 16 * 15;
        assert!((sum / count as f32 - 1.0).abs() < 1e-5);
        // Relative ordering preserved.
        assert!(mask.factor(0, 15) > mask.factor(0, 1));
    }

    #[test]
    fn power_zero_is_uniform_off_diagonal() {
        let mesh = Mesh2d::new(2, 2);
        let mask = hop_power_mask(&mesh, 0.0, false).unwrap();
        for p in 0..4 {
            for c in 0..4 {
                let expect = if p == c { 0.0 } else { 1.0 };
                assert_eq!(mask.factor(p, c), expect);
            }
        }
    }

    #[test]
    fn higher_power_spreads_the_factor_range() {
        let mesh = Mesh2d::new(4, 4);
        let linear = hop_mask(&mesh, true).unwrap();
        let quad = hop_power_mask(&mesh, 2.0, true).unwrap();
        let spread = |m: &StrengthMask| m.max_factor() / m.factor(0, 1);
        assert!(spread(&quad) > spread(&linear));
    }
}
