//! Hop-distance strength masks (Fig. 6(a) of the paper).
//!
//! The SS_Mask scheme scales each producer→consumer weight group's
//! sparsity strength by the NoC hop distance between the two cores, so
//! training prunes long-distance groups first. Diagonal groups (same
//! core) get strength 0 — "the weights on the diagonal groups will not
//! cause any communication", so the trainer is free to keep them.

use lts_nn::regularizer::StrengthMask;
use lts_nn::NnError;
use lts_noc::Topology;

/// The plain hop-distance mask: `factor(p, c) = distance(p, c)`,
/// optionally normalized so the mean off-diagonal factor is 1 (keeps the
/// group-Lasso λ comparable between SS and SS_Mask).
///
/// # Errors
///
/// Propagates [`NnError::BadConfig`] from mask construction (cannot happen
/// for a valid topology, but the signature keeps the caller honest).
pub fn hop_mask<T: Topology>(topo: &T, normalize: bool) -> Result<StrengthMask, NnError> {
    hop_power_mask(topo, 1.0, normalize)
}

/// Generalized distance mask: `factor(p, c) = distance(p, c)^power` for
/// `p != c`, and `0` on the diagonal. `power = 0` penalizes every
/// off-core group equally (distance-blind, but still traffic-aware);
/// larger powers concentrate pruning on the longest paths. The ablation
/// benches sweep this.
///
/// # Errors
///
/// Propagates [`NnError::BadConfig`] from mask construction.
pub fn hop_power_mask<T: Topology>(
    topo: &T,
    power: f32,
    normalize: bool,
) -> Result<StrengthMask, NnError> {
    two_level_mask(topo, power, 0.0, normalize)
}

/// Two-level distance mask for multi-chip packages:
/// `factor(p, c) = (distance(p, c) + inter_weight * chiplet_distance(p, c))^power`
/// off-diagonal, `0` on the diagonal. The chiplet term adds an extra
/// penalty per interposer crossing on top of the raw hop count, so
/// SS_Mask training prunes cross-chip weight groups first. On a plain
/// mesh `chiplet_distance` is identically 0 and this reduces to
/// [`hop_power_mask`] bit-exactly, whatever `inter_weight` is.
///
/// # Errors
///
/// Propagates [`NnError::BadConfig`] from mask construction.
pub fn two_level_mask<T: Topology>(
    topo: &T,
    power: f32,
    inter_weight: f32,
    normalize: bool,
) -> Result<StrengthMask, NnError> {
    let n = topo.nodes();
    let mut factors = vec![0.0f32; n * n];
    for p in 0..n {
        for c in 0..n {
            if p != c {
                let level1 = topo.distance(p, c) as f32;
                let level2 = inter_weight * topo.chiplet_distance(p, c) as f32;
                factors[p * n + c] = (level1 + level2).powf(power);
            }
        }
    }
    if normalize {
        let off_diag: Vec<f32> = factors.iter().copied().filter(|&f| f > 0.0).collect();
        if !off_diag.is_empty() {
            let mean = off_diag.iter().sum::<f32>() / off_diag.len() as f32;
            if mean > 0.0 {
                for f in &mut factors {
                    *f /= mean;
                }
            }
        }
    }
    StrengthMask::from_factors(n, factors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lts_noc::{McmTopology, Mesh2d};

    #[test]
    fn two_level_mask_on_a_mesh_ignores_inter_weight() {
        let mesh = Mesh2d::new(4, 4);
        let plain = hop_power_mask(&mesh, 1.0, true).unwrap();
        let two = two_level_mask(&mesh, 1.0, 3.0, true).unwrap();
        assert_eq!(plain.factors(), two.factors());
    }

    #[test]
    fn two_level_mask_penalizes_interposer_crossings() {
        // Two 2x2 chiplets side by side; package nodes 1 and 2 are
        // geometric neighbors but live on different chips.
        let mcm = McmTopology::new(2, 2, 2, 1);
        let mask = two_level_mask(&mcm, 1.0, 2.0, false).unwrap();
        // Same-chip neighbor: bare hop distance.
        assert_eq!(mask.factor(0, 1), 1.0);
        // Cross-chip neighbor: 1 hop + weight 2 * 1 chiplet crossing.
        assert_eq!(mask.factor(1, 2), 3.0);
        // Diagonal still free.
        for i in 0..Topology::nodes(&mcm) {
            assert_eq!(mask.factor(i, i), 0.0);
        }
    }

    #[test]
    fn diagonal_is_zero_everywhere() {
        let mesh = Mesh2d::new(4, 4);
        let mask = hop_mask(&mesh, false).unwrap();
        for i in 0..16 {
            assert_eq!(mask.factor(i, i), 0.0);
        }
    }

    #[test]
    fn factors_match_figure_6a_distances() {
        let mesh = Mesh2d::new(4, 4);
        let mask = hop_mask(&mesh, false).unwrap();
        // Fig. 6(a): cores 0..4 on the top row at distances 0..3.
        assert_eq!(mask.factor(0, 1), 1.0);
        assert_eq!(mask.factor(0, 2), 2.0);
        assert_eq!(mask.factor(0, 3), 3.0);
        assert_eq!(mask.factor(3, 0), 3.0);
        // Opposite mesh corners: 6 hops.
        assert_eq!(mask.factor(0, 15), 6.0);
    }

    #[test]
    fn normalization_gives_unit_mean_off_diagonal() {
        let mesh = Mesh2d::new(4, 4);
        let mask = hop_mask(&mesh, true).unwrap();
        let sum: f32 = mask.factors().iter().sum();
        let count = 16 * 15;
        assert!((sum / count as f32 - 1.0).abs() < 1e-5);
        // Relative ordering preserved.
        assert!(mask.factor(0, 15) > mask.factor(0, 1));
    }

    #[test]
    fn power_zero_is_uniform_off_diagonal() {
        let mesh = Mesh2d::new(2, 2);
        let mask = hop_power_mask(&mesh, 0.0, false).unwrap();
        for p in 0..4 {
            for c in 0..4 {
                let expect = if p == c { 0.0 } else { 1.0 };
                assert_eq!(mask.factor(p, c), expect);
            }
        }
    }

    #[test]
    fn higher_power_spreads_the_factor_range() {
        let mesh = Mesh2d::new(4, 4);
        let linear = hop_mask(&mesh, true).unwrap();
        let quad = hop_power_mask(&mesh, 2.0, true).unwrap();
        let spread = |m: &StrengthMask| m.max_factor() / m.factor(0, 1);
        assert!(spread(&quad) > spread(&linear));
    }
}
