//! The parallelization plan: ownership, layouts and traffic for a whole
//! network.

use crate::ownership::{propagate, OwnershipMap};
use crate::traffic::transition_messages;
use lts_nn::descriptor::{LayerKind, LayerSpec, NetworkSpec};
use lts_nn::grouping::{even_blocks, GroupLayout};
use lts_noc::traffic::TrafficTrace;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Errors from plan construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// A weights entry does not match the layer's weight count.
    WeightsMismatch {
        /// Layer name.
        layer: String,
        /// Expected weight count.
        expected: usize,
        /// Provided weight count.
        actual: usize,
    },
    /// The network/core combination is invalid.
    BadConfig(String),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::WeightsMismatch { layer, expected, actual } => {
                write!(f, "layer `{layer}` expects {expected} weights, got {actual}")
            }
            PlanError::BadConfig(msg) => write!(f, "bad plan configuration: {msg}"),
        }
    }
}

impl Error for PlanError {}

/// Everything the system model needs about one layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerPlan {
    /// The layer's geometry.
    pub spec: LayerSpec,
    /// Output units computed by each core.
    pub assignments: Vec<usize>,
    /// Producer×consumer weight block layout (weight-bearing, ungrouped
    /// layers only — this is what the SS/SS_Mask regularizer attaches to).
    pub layout: Option<GroupLayout>,
    /// Messages that must be delivered before this layer can start
    /// (empty for the first layer and all local layers).
    pub traffic: TrafficTrace,
}

/// A full parallelization plan for a network on `cores` cores.
///
/// # Examples
///
/// ```
/// use lts_partition::Plan;
/// use lts_nn::descriptor::lenet_spec;
///
/// # fn main() -> Result<(), lts_partition::PlanError> {
/// let plan = Plan::dense(&lenet_spec(), 16, 2)?;
/// // conv1 reads the replicated input image: no inter-core traffic.
/// assert!(plan.layer("conv1").unwrap().traffic.is_empty());
/// // conv2's inputs live scattered across the 16 cores.
/// assert!(!plan.layer("conv2").unwrap().traffic.is_empty());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Plan {
    /// Number of cores.
    pub cores: usize,
    /// One entry per network layer, in execution order.
    pub layers: Vec<LayerPlan>,
}

impl Plan {
    /// Builds the plan for `spec` on `cores` cores.
    ///
    /// `weights` maps layer names to trained (possibly sparsified) flat
    /// weight tensors; transitions into layers present in the map use
    /// sparsity-aware traffic, everything else is dense. Pass an empty
    /// map (or [`Plan::dense`]) for the traditional baseline.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::BadConfig`] if `cores == 0`, and
    /// [`PlanError::WeightsMismatch`] if a provided weight tensor has the
    /// wrong length.
    pub fn build(
        spec: &NetworkSpec,
        cores: usize,
        weights: &HashMap<String, Vec<f32>>,
        bytes_per_value: usize,
    ) -> Result<Plan, PlanError> {
        Self::build_from(spec, cores, weights, bytes_per_value, None)
    }

    /// [`Plan::build`] with an explicit input-ownership seed: `None` means
    /// the network input is replicated on every core (the normal case);
    /// `Some` means the first layer's input already lives partitioned
    /// across the cores — the mid-inference recovery path, where a
    /// boundary resync has just rebalanced surviving feature maps.
    pub(crate) fn build_from(
        spec: &NetworkSpec,
        cores: usize,
        weights: &HashMap<String, Vec<f32>>,
        bytes_per_value: usize,
        seed: Option<OwnershipMap>,
    ) -> Result<Plan, PlanError> {
        let _probe = lts_obs::span("partition.plan_build");
        if cores == 0 {
            return Err(PlanError::BadConfig("cores must be positive".into()));
        }
        if bytes_per_value == 0 {
            return Err(PlanError::BadConfig("bytes_per_value must be positive".into()));
        }
        if let Some(o) = &seed {
            if o.cores() != cores {
                return Err(PlanError::BadConfig(format!(
                    "ownership seed spans {} cores, plan wants {cores}",
                    o.cores()
                )));
            }
        }
        let mut ownership: Option<OwnershipMap> = seed;
        let mut layers = Vec::with_capacity(spec.layers.len());
        for layer in &spec.layers {
            let layout = Self::layout_for(layer, ownership.as_ref(), cores);
            if let (Some(l), Some(w)) = (&layout, weights.get(&layer.name)) {
                if l.weight_len() != w.len() {
                    return Err(PlanError::WeightsMismatch {
                        layer: layer.name.clone(),
                        expected: l.weight_len(),
                        actual: w.len(),
                    });
                }
            }
            let consumers = consumer_blocks(layer, cores);
            let traffic = match (&ownership, layer.has_weights()) {
                (Some(producer), true) => {
                    let sparse = match (&layout, weights.get(&layer.name)) {
                        (Some(l), Some(w)) => Some((l, w.as_slice())),
                        _ => None,
                    };
                    transition_messages(producer, layer, &consumers, sparse, bytes_per_value, 0)
                }
                _ => TrafficTrace::new(),
            };
            let assignments = assignment_counts(layer, ownership.as_ref(), cores);
            ownership = propagate(layer, ownership.as_ref(), cores);
            layers.push(LayerPlan { spec: layer.clone(), assignments, layout, traffic });
        }
        Ok(Plan { cores, layers })
    }

    /// The traditional (dense) plan — no sparsity anywhere.
    ///
    /// # Errors
    ///
    /// Same as [`Plan::build`].
    pub fn dense(
        spec: &NetworkSpec,
        cores: usize,
        bytes_per_value: usize,
    ) -> Result<Plan, PlanError> {
        Self::build(spec, cores, &HashMap::new(), bytes_per_value)
    }

    /// The weight block layout of `layer` given the current input
    /// ownership (ungrouped weight layers only).
    pub(crate) fn layout_for(
        layer: &LayerSpec,
        ownership: Option<&OwnershipMap>,
        cores: usize,
    ) -> Option<GroupLayout> {
        match layer.kind {
            LayerKind::Conv { out_c, kernel, groups: 1, .. } => {
                let out_blocks = even_blocks(out_c, cores);
                let in_blocks = match ownership {
                    Some(o) => o.blocks().to_vec(),
                    None => even_blocks(layer.in_dims.0, cores),
                };
                Some(GroupLayout::with_blocks(kernel * kernel, out_blocks, in_blocks))
            }
            LayerKind::Linear { in_f, out_f } => {
                let out_blocks = even_blocks(out_f, cores);
                let in_blocks = match ownership {
                    Some(o) => o.blocks().to_vec(),
                    None => even_blocks(in_f, cores),
                };
                Some(GroupLayout::with_blocks(1, out_blocks, in_blocks))
            }
            _ => None,
        }
    }

    /// Total transition traffic across the whole network, in bytes.
    pub fn total_traffic_bytes(&self) -> u64 {
        self.layers.iter().map(|l| l.traffic.total_bytes()).sum()
    }

    /// Per-layer `(name, bytes)` for layers with nonzero traffic.
    pub fn traffic_by_layer(&self) -> Vec<(String, u64)> {
        self.layers
            .iter()
            .filter(|l| !l.traffic.is_empty())
            .map(|l| (l.spec.name.clone(), l.traffic.total_bytes()))
            .collect()
    }

    /// The plan entry for layer `name`.
    pub fn layer(&self, name: &str) -> Option<&LayerPlan> {
        self.layers.iter().find(|l| l.spec.name == name)
    }
}

/// Output-unit block per consumer core for a layer.
pub(crate) fn consumer_blocks(layer: &LayerSpec, cores: usize) -> Vec<std::ops::Range<usize>> {
    even_blocks(layer.out_dims.0, cores)
}

/// How many output units each core computes for this layer.
pub(crate) fn assignment_counts(
    layer: &LayerSpec,
    ownership: Option<&OwnershipMap>,
    cores: usize,
) -> Vec<usize> {
    match layer.kind {
        LayerKind::Conv { out_c, .. } => {
            even_blocks(out_c, cores).iter().map(|b| b.len()).collect()
        }
        LayerKind::Linear { out_f, .. } => {
            even_blocks(out_f, cores).iter().map(|b| b.len()).collect()
        }
        // Pool/activation run on the cores that own their channels.
        LayerKind::Pool { .. } | LayerKind::Activation => match ownership {
            Some(o) => o.blocks().iter().map(|b| b.len()).collect(),
            None => even_blocks(layer.out_dims.0, cores).iter().map(|b| b.len()).collect(),
        },
        LayerKind::Flatten => vec![0; cores],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lts_nn::descriptor::{lenet_spec, mlp_spec, SpecBuilder};

    #[test]
    fn dense_plan_matches_analytic_volumes() {
        let spec = lenet_spec();
        let plan = Plan::dense(&spec, 16, 2).unwrap();
        // conv1 reads the input image: no inter-core traffic.
        assert!(plan.layer("conv1").unwrap().traffic.is_empty());
        // conv2's input is conv1's pooled output: 20 ch x 12x12 x 2 B x 15.
        let conv2 = plan.layer("conv2").unwrap();
        assert_eq!(conv2.traffic.total_bytes(), 20 * 12 * 12 * 2 * 15);
        // ip1 follows flatten: 50 ch x 4x4 x 2 B x 15.
        let ip1 = plan.layer("ip1").unwrap();
        assert_eq!(ip1.traffic.total_bytes(), 50 * 4 * 4 * 2 * 15);
        // ip2 has only 10 output neurons on 16 cores, so 6 cores own no
        // outputs and receive nothing: producers 0..4 own 32 of ip1's 500
        // values, the rest own 31; cores 0..10 consume.
        let ip2 = plan.layer("ip2").unwrap();
        let expected = 2 * (4 * 32 * 9 + 6 * 31 * 9 + 6 * 31 * 10);
        assert_eq!(ip2.traffic.total_bytes(), expected);
    }

    #[test]
    fn mlp_first_layer_generates_no_traffic() {
        let plan = Plan::dense(&mlp_spec(), 16, 2).unwrap();
        assert!(plan.layer("ip1").unwrap().traffic.is_empty());
        assert_eq!(plan.layer("ip2").unwrap().traffic.total_bytes(), 512 * 2 * 15);
        // ip3 has 10 outputs on 16 cores: only the 10 owning cores receive
        // (19 of ip2's 304 values per producer; 9 or 10 remote consumers).
        let expected_ip3 = 2 * 19 * (10 * 9 + 6 * 10);
        assert_eq!(plan.layer("ip3").unwrap().traffic.total_bytes(), expected_ip3);
    }

    #[test]
    fn grouped_network_has_zero_traffic_on_grouped_layers() {
        let spec = SpecBuilder::new("g", (3, 16, 16))
            .conv("conv1", 16, 5, 1, 2, 1)
            .pool("pool1", 2, 2)
            .conv("conv2", 32, 3, 1, 1, 16)
            .pool("pool2", 2, 2)
            .flatten()
            .linear("ip1", 10)
            .build();
        let plan = Plan::dense(&spec, 16, 2).unwrap();
        assert!(plan.layer("conv2").unwrap().traffic.is_empty());
        // The FC layer after the grouped conv still needs synchronization.
        assert!(!plan.layer("ip1").unwrap().traffic.is_empty());
    }

    #[test]
    fn sparse_weights_reduce_plan_traffic() {
        let spec = mlp_spec();
        // All-zero ip2 weights: transition into ip2 disappears.
        let mut weights = HashMap::new();
        weights.insert("ip2".to_string(), vec![0.0f32; 512 * 304]);
        let plan = Plan::build(&spec, 16, &weights, 2).unwrap();
        assert!(plan.layer("ip2").unwrap().traffic.is_empty());
        // ip3 (no weights provided) stays dense (10 consuming cores).
        assert_eq!(plan.layer("ip3").unwrap().traffic.total_bytes(), 2 * 19 * (10 * 9 + 6 * 10));
    }

    #[test]
    fn weights_length_is_validated() {
        let spec = mlp_spec();
        let mut weights = HashMap::new();
        weights.insert("ip2".to_string(), vec![0.0f32; 7]);
        assert!(matches!(
            Plan::build(&spec, 16, &weights, 2),
            Err(PlanError::WeightsMismatch { .. })
        ));
    }

    #[test]
    fn layouts_follow_ownership_through_flatten() {
        let plan = Plan::dense(&lenet_spec(), 16, 2).unwrap();
        let ip1 = plan.layer("ip1").unwrap();
        let layout = ip1.layout.as_ref().unwrap();
        // 50 channels over 16 cores: first 2 cores own 4 channels = 64
        // flat units each, later cores own 3 channels = 48 units.
        assert_eq!(layout.in_block(0).len(), 4 * 16);
        assert_eq!(layout.in_block(15).len(), 3 * 16);
        assert_eq!(layout.in_units(), 800);
    }

    #[test]
    fn assignments_sum_to_output_units() {
        let plan = Plan::dense(&lenet_spec(), 16, 2).unwrap();
        for lp in &plan.layers {
            if lp.spec.has_weights() {
                let total: usize = lp.assignments.iter().sum();
                assert_eq!(total, lp.spec.out_dims.0, "layer {}", lp.spec.name);
            }
        }
    }

    #[test]
    fn zero_cores_is_rejected() {
        assert!(Plan::dense(&mlp_spec(), 0, 2).is_err());
    }
}
