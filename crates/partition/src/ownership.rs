//! Activation-ownership tracking through a network.
//!
//! After a weight layer is partitioned, each core owns a contiguous block
//! of its output channels (or neurons). Pooling and activations preserve
//! that ownership; flattening expands each channel block by the spatial
//! size. This module propagates ownership layer by layer so downstream
//! consumers (regularizer masks and traffic generation) know the *true*
//! producer core of every input unit.

use lts_nn::descriptor::{LayerKind, LayerSpec};
use lts_nn::grouping::even_blocks;
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// Who owns each unit of one activation tensor: core `i` owns
/// `blocks[i]` (a contiguous, possibly empty range of unit indices).
///
/// "Units" are channels for spatial activations and values for flat ones.
///
/// # Examples
///
/// ```
/// use lts_partition::OwnershipMap;
///
/// // 5 channels of 4 pixels over 2 cores: a 3/2 channel split, which
/// // flattens to a 12/8 value split — not an even split of 20.
/// let channels = OwnershipMap::even(5, 4, 2);
/// let flat = channels.flattened();
/// assert_eq!(flat.block(0), 0..12);
/// assert_eq!(flat.block(1), 12..20);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OwnershipMap {
    blocks: Vec<Range<usize>>,
    /// Values per unit (spatial size of a channel; 1 for flat activations).
    values_per_unit: usize,
}

impl OwnershipMap {
    /// Even ownership of `units` units across `cores` cores, each unit
    /// carrying `values_per_unit` scalar values.
    pub fn even(units: usize, values_per_unit: usize, cores: usize) -> Self {
        assert!(values_per_unit > 0, "values_per_unit must be positive");
        Self { blocks: even_blocks(units, cores), values_per_unit }
    }

    /// Ownership with explicit blocks.
    ///
    /// # Panics
    ///
    /// Panics if blocks are not a contiguous ascending partition.
    pub fn from_blocks(blocks: Vec<Range<usize>>, values_per_unit: usize) -> Self {
        assert!(values_per_unit > 0, "values_per_unit must be positive");
        let mut expected = 0;
        for b in &blocks {
            assert_eq!(b.start, expected, "ownership blocks must be contiguous");
            expected = b.end;
        }
        Self { blocks, values_per_unit }
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.blocks.len()
    }

    /// Total units.
    pub fn units(&self) -> usize {
        self.blocks.last().map_or(0, |b| b.end)
    }

    /// Scalar values per unit.
    pub fn values_per_unit(&self) -> usize {
        self.values_per_unit
    }

    /// The unit range owned by `core`.
    pub fn block(&self, core: usize) -> Range<usize> {
        self.blocks[core].clone()
    }

    /// All blocks.
    pub fn blocks(&self) -> &[Range<usize>] {
        &self.blocks
    }

    /// The core owning unit `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn owner_of(&self, u: usize) -> usize {
        self.blocks
            .iter()
            .position(|b| b.contains(&u))
            .unwrap_or_else(|| panic!("unit {u} beyond {} units", self.units()))
    }

    /// Ownership after flattening: each unit becomes `values_per_unit`
    /// flat units owning 1 value each.
    pub fn flattened(&self) -> OwnershipMap {
        let v = self.values_per_unit;
        OwnershipMap {
            blocks: self.blocks.iter().map(|b| b.start * v..b.end * v).collect(),
            values_per_unit: 1,
        }
    }

    /// Ownership after a spatial resize (pooling): same channel blocks,
    /// new per-channel value count.
    pub fn with_values_per_unit(&self, values_per_unit: usize) -> OwnershipMap {
        assert!(values_per_unit > 0, "values_per_unit must be positive");
        OwnershipMap { blocks: self.blocks.clone(), values_per_unit }
    }
}

/// Propagates ownership through one layer: returns the ownership of the
/// layer's *output* given the ownership of its input (`None` for the
/// network input, which every core holds a copy of).
pub fn propagate(
    spec: &LayerSpec,
    input: Option<&OwnershipMap>,
    cores: usize,
) -> Option<OwnershipMap> {
    match spec.kind {
        LayerKind::Conv { out_c, .. } => {
            let spatial = spec.out_dims.1 * spec.out_dims.2;
            Some(OwnershipMap::even(out_c, spatial, cores))
        }
        LayerKind::Linear { out_f, .. } => Some(OwnershipMap::even(out_f, 1, cores)),
        LayerKind::Pool { .. } => {
            input.map(|o| o.with_values_per_unit(spec.out_dims.1 * spec.out_dims.2))
        }
        LayerKind::Activation => input.cloned(),
        LayerKind::Flatten => input.map(OwnershipMap::flattened),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lts_nn::descriptor::SpecBuilder;

    #[test]
    fn even_ownership_covers_all_units() {
        let o = OwnershipMap::even(10, 4, 3);
        assert_eq!(o.units(), 10);
        assert_eq!(o.cores(), 3);
        assert_eq!(o.owner_of(0), 0);
        assert_eq!(o.owner_of(9), 2);
    }

    #[test]
    fn flatten_expands_channel_blocks() {
        // 6 channels of 4 pixels across 2 cores: blocks [0..3), [3..6).
        let o = OwnershipMap::even(6, 4, 2);
        let f = o.flattened();
        assert_eq!(f.units(), 24);
        assert_eq!(f.block(0), 0..12);
        assert_eq!(f.block(1), 12..24);
        assert_eq!(f.values_per_unit(), 1);
    }

    #[test]
    fn flatten_preserves_uneven_boundaries() {
        // 5 channels over 2 cores: 3/2 split; flattened 12/8 — NOT an even
        // split of 20. This is the misalignment the pipeline must honour.
        let o = OwnershipMap::even(5, 4, 2);
        let f = o.flattened();
        assert_eq!(f.block(0), 0..12);
        assert_eq!(f.block(1), 12..20);
        assert_ne!(f.blocks(), OwnershipMap::even(20, 1, 2).blocks());
    }

    #[test]
    fn propagation_through_a_cnn() {
        let spec = SpecBuilder::new("n", (3, 8, 8))
            .conv("c1", 6, 3, 1, 1, 1)
            .relu()
            .pool("p1", 2, 2)
            .flatten()
            .linear("ip", 10)
            .build();
        let cores = 2;
        let mut own: Option<OwnershipMap> = None;
        let mut history = Vec::new();
        for l in &spec.layers {
            own = propagate(l, own.as_ref(), cores);
            history.push(own.clone());
        }
        // conv1: 6 channels x 64 px.
        assert_eq!(history[0].as_ref().unwrap().units(), 6);
        assert_eq!(history[0].as_ref().unwrap().values_per_unit(), 64);
        // pool: 6 channels x 16 px.
        assert_eq!(history[2].as_ref().unwrap().values_per_unit(), 16);
        // flatten: 96 flat units.
        assert_eq!(history[3].as_ref().unwrap().units(), 96);
        // linear: 10 neurons.
        assert_eq!(history[4].as_ref().unwrap().units(), 10);
    }

    #[test]
    fn first_layer_has_no_input_ownership() {
        let spec = SpecBuilder::new("n", (3, 8, 8)).conv("c1", 4, 3, 1, 1, 1).build();
        // Input is None (image replicated everywhere); conv output is owned.
        let out = propagate(spec.layer("c1").unwrap(), None, 4);
        assert!(out.is_some());
        // A pool with no ownership input stays unowned (degenerate chains).
        let pool_spec = SpecBuilder::new("n", (3, 8, 8)).pool("p", 2, 2).build();
        assert!(propagate(pool_spec.layer("p").unwrap(), None, 4).is_none());
    }

    #[test]
    #[should_panic(expected = "contiguous")]
    fn from_blocks_rejects_gaps() {
        OwnershipMap::from_blocks(vec![0..2, 3..4], 1);
    }
}
