//! Analytic communication-volume model (Table I).
//!
//! Table I of the paper reports the per-layer "data moving size" after
//! partitioning a network over 16 cores the traditional way. Our
//! documented formula: the input activations of a partitioned layer are
//! scattered across all cores, so each producer broadcasts its share to
//! the other `C − 1` cores — `bytes = input_bytes × (C − 1)` at 16-bit
//! precision (this matches the paper's AlexNet conv2/conv4/conv5 entries
//! closely; other entries differ by bookkeeping the paper does not
//! specify — see `EXPERIMENTS.md`).

use crate::plan::{Plan, PlanError};
use lts_nn::descriptor::NetworkSpec;
use serde::{Deserialize, Serialize};

/// One Table I row: a network's per-layer transition volumes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VolumeRow {
    /// Network name.
    pub network: String,
    /// `(layer name, bytes)` for every transition with traffic.
    pub layers: Vec<(String, u64)>,
}

impl VolumeRow {
    /// Total bytes across all transitions.
    pub fn total(&self) -> u64 {
        self.layers.iter().map(|(_, b)| *b).sum()
    }

    /// The volume of `layer`, if it has traffic.
    pub fn layer(&self, name: &str) -> Option<u64> {
        self.layers.iter().find(|(n, _)| n == name).map(|(_, b)| *b)
    }
}

/// Computes the traditional-parallelization volume row for a network.
///
/// # Errors
///
/// Propagates [`PlanError`] from plan construction.
pub fn dense_volumes(spec: &NetworkSpec, cores: usize) -> Result<VolumeRow, PlanError> {
    let plan = Plan::dense(spec, cores, 2)?;
    Ok(VolumeRow { network: spec.name.clone(), layers: plan.traffic_by_layer() })
}

/// Formats bytes the way Table I does (K = KiB, M = MiB, rounded).
pub fn format_bytes(bytes: u64) -> String {
    const K: f64 = 1024.0;
    const M: f64 = 1024.0 * 1024.0;
    let b = bytes as f64;
    if b >= M {
        format!("{:.1}M", b / M)
    } else if b >= K {
        format!("{:.0}K", b / K)
    } else {
        format!("{bytes}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lts_nn::descriptor::{alexnet_spec, lenet_spec, mlp_spec, vgg19_spec};

    #[test]
    fn alexnet_conv_rows_match_paper_scale() {
        // Paper Table I (AlexNet): conv2 2M, conv4 1.8M, conv5 1.8M.
        let row = dense_volumes(&alexnet_spec(), 16).unwrap();
        let conv2 = row.layer("conv2").unwrap();
        assert_eq!(conv2, 96 * 27 * 27 * 2 * 15);
        let m = 1024 * 1024;
        assert!((conv2 as f64 / m as f64 - 2.0).abs() < 0.1, "conv2 = {}", format_bytes(conv2));
        let conv4 = row.layer("conv4").unwrap();
        assert!((conv4 as f64 / m as f64 - 1.86).abs() < 0.1, "conv4 = {}", format_bytes(conv4));
    }

    #[test]
    fn volumes_shrink_deeper_into_alexnet() {
        let row = dense_volumes(&alexnet_spec(), 16).unwrap();
        assert!(row.layer("conv2").unwrap() > row.layer("ip1").unwrap());
        assert!(row.layer("ip1").unwrap() > row.layer("ip3").unwrap());
    }

    #[test]
    fn vgg_dwarfs_alexnet_dwarfs_lenet() {
        let vgg = dense_volumes(&vgg19_spec(), 16).unwrap().total();
        let alex = dense_volumes(&alexnet_spec(), 16).unwrap().total();
        let lenet = dense_volumes(&lenet_spec(), 16).unwrap().total();
        let mlp = dense_volumes(&mlp_spec(), 16).unwrap().total();
        assert!(vgg > 5 * alex, "VGG {} vs AlexNet {}", vgg, alex);
        assert!(alex > 10 * lenet);
        assert!(lenet > mlp);
    }

    #[test]
    fn format_bytes_uses_table_units() {
        assert_eq!(format_bytes(512), "512B");
        assert_eq!(format_bytes(57 * 1024), "57K");
        assert_eq!(format_bytes(2 * 1024 * 1024), "2.0M");
    }

    #[test]
    fn first_layers_never_appear() {
        let row = dense_volumes(&alexnet_spec(), 16).unwrap();
        assert!(row.layer("conv1").is_none());
    }
}
