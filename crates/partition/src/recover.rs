//! Incremental re-planning after a *mid-inference* core failure.
//!
//! [`replan`](crate::replan) rebuilds the whole network from scratch — the
//! right tool when a fault is known before an inference starts. When a
//! core dies *during* an inference, restarting throws away every layer
//! already computed. [`replan_from_layer`] instead reshards only the
//! layers that have not run yet and reuses the surviving feature maps of
//! the last completed layer:
//!
//! 1. **Boundary resync.** The output of layer `fault_layer − 1` lives
//!    sharded across the *old* plan's cores. Units owned by dead cores
//!    are orphaned — for dense layers their values are unrecoverable
//!    without recomputation, so they are reported, not resent. Surviving
//!    units are rebalanced to the even ownership a fresh plan over the
//!    survivors expects; [`IncrementalPlan::redistribution`] is exactly
//!    that traffic, with *physical* (old id) endpoints ready to run on
//!    the faulty mesh.
//! 2. **Tail plan.** Layers `fault_layer..` are planned over the
//!    survivors, seeded with the post-resync ownership, so the first
//!    remaining layer's gather traffic is derived from where the data
//!    *actually* is rather than assuming a replicated input.
//!
//! Grouped layers keep the [`crate::degrade`] semantics: a dead core
//! takes its pinned channel groups' whole chain with it, reported in
//! [`IncrementalPlan::lost_groups`].

use crate::degrade::{collect_lost_groups, survivor_map, LostGroups};
use crate::ownership::{propagate, OwnershipMap};
use crate::plan::{LayerPlan, Plan, PlanError};
use lts_nn::descriptor::NetworkSpec;
use lts_nn::grouping::even_blocks;
use lts_noc::traffic::{Message, TrafficTrace};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::ops::Range;

/// A tail plan plus the boundary resync that makes it runnable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IncrementalPlan {
    /// Index of the first layer that had not run when the fault hit.
    pub fault_layer: usize,
    /// Dead physical core ids (sorted, deduplicated).
    pub dead_cores: Vec<usize>,
    /// `core_map[logical] = physical` surviving node id.
    pub core_map: Vec<usize>,
    /// The plan for layers `fault_layer..` over the survivors
    /// (logical core ids, like [`crate::DegradedPlan::plan`]).
    pub tail: Plan,
    /// Boundary-resync messages with physical endpoints: surviving
    /// feature-map units moving from their old owner to their new one.
    pub redistribution: TrafficTrace,
    /// Total bytes of [`IncrementalPlan::redistribution`].
    pub redistribution_bytes: u64,
    /// Boundary unit ranges that died with their owners (old unit ids;
    /// one possibly-empty range per dead core).
    pub orphan: Vec<Range<usize>>,
    /// Pinned channel-group chains lost in the remaining layers.
    pub lost_groups: Vec<LostGroups>,
    /// Boundary units orphaned by the dead cores.
    pub lost_boundary_units: usize,
    /// Total units in the boundary feature map (0 when the fault hit
    /// before the first layer, whose input is replicated everywhere).
    pub boundary_units: usize,
}

impl IncrementalPlan {
    /// Number of surviving cores.
    pub fn survivors(&self) -> usize {
        self.core_map.len()
    }

    /// Fraction of the boundary feature map lost with the dead cores.
    pub fn lost_boundary_fraction(&self) -> f64 {
        if self.boundary_units == 0 {
            return 0.0;
        }
        self.lost_boundary_units as f64 / self.boundary_units as f64
    }

    /// Worst per-layer fraction of output channels lost to pinned-group
    /// death in the remaining layers (`0.0` for dense/sparsified tails).
    pub fn lost_output_fraction(&self) -> f64 {
        self.lost_groups.iter().map(LostGroups::lost_fraction).fold(0.0, f64::max)
    }

    /// One tail layer's transition traffic with logical endpoints
    /// remapped to physical surviving nodes.
    pub fn physical_messages(&self, layer: &LayerPlan) -> TrafficTrace {
        let mut trace = TrafficTrace::new();
        for m in &layer.traffic.messages {
            trace.messages.push(Message::new(
                self.core_map[m.src],
                self.core_map[m.dst],
                m.bytes,
                m.inject_cycle,
            ));
        }
        trace
    }
}

/// Reshards layers `fault_layer..` of `spec` over the cores surviving
/// `dead_cores`, reusing the feature maps of the last completed layer.
///
/// `fault_layer` is the index of the first layer that had *not* run when
/// the fault was detected: `0` means nothing ran (the result degenerates
/// to a fresh [`crate::replan`] with no redistribution) and
/// `spec.layers.len()` means everything ran (empty tail; the dead cores'
/// share of the final output is orphaned).
///
/// # Errors
///
/// Returns [`PlanError::BadConfig`] when `cores == 0`, a dead core id is
/// out of range, no core survives, or `fault_layer` is out of range;
/// plus anything [`Plan::build`] rejects.
pub fn replan_from_layer(
    spec: &NetworkSpec,
    cores: usize,
    fault_layer: usize,
    dead_cores: &[usize],
    weights: &HashMap<String, Vec<f32>>,
    bytes_per_value: usize,
) -> Result<IncrementalPlan, PlanError> {
    if fault_layer > spec.layers.len() {
        return Err(PlanError::BadConfig(format!(
            "fault layer {fault_layer} beyond the network's {} layers",
            spec.layers.len()
        )));
    }
    let (dead, core_map) = survivor_map(cores, dead_cores)?;
    let survivors = core_map.len();

    // Ownership of the boundary feature map under the *old* plan.
    let mut boundary: Option<OwnershipMap> = None;
    for layer in &spec.layers[..fault_layer] {
        boundary = propagate(layer, boundary.as_ref(), cores);
    }

    let mut orphan = Vec::with_capacity(dead.len());
    let mut redistribution = TrafficTrace::new();
    let mut lost_boundary_units = 0usize;
    let mut boundary_units = 0usize;
    if let Some(old) = &boundary {
        boundary_units = old.units();
        for &d in &dead {
            let b = old.block(d);
            lost_boundary_units += b.len();
            orphan.push(b);
        }
        // Rebalance surviving units onto the tail plan's even input
        // ownership; data already on its new owner stays put.
        let unit_bytes = (old.values_per_unit() * bytes_per_value) as u64;
        let new_blocks = even_blocks(boundary_units, survivors);
        for &src in &core_map {
            let have = old.block(src);
            for (logical, nb) in new_blocks.iter().enumerate() {
                let dst = core_map[logical];
                if dst == src {
                    continue;
                }
                let moved = have.end.min(nb.end).saturating_sub(have.start.max(nb.start));
                if moved > 0 {
                    redistribution.push(Message::new(src, dst, moved as u64 * unit_bytes, 0));
                }
            }
        }
    }
    let redistribution_bytes = redistribution.total_bytes();

    let tail_spec = NetworkSpec {
        name: spec.name.clone(),
        input: if fault_layer == 0 { spec.input } else { spec.layers[fault_layer - 1].out_dims },
        layers: spec.layers[fault_layer..].to_vec(),
    };
    let seed = boundary
        .as_ref()
        .map(|old| OwnershipMap::even(old.units(), old.values_per_unit(), survivors));
    let tail = Plan::build_from(&tail_spec, survivors, weights, bytes_per_value, seed)?;
    let lost_groups = collect_lost_groups(&tail_spec, cores, &dead);

    Ok(IncrementalPlan {
        fault_layer,
        dead_cores: dead,
        core_map,
        tail,
        redistribution,
        redistribution_bytes,
        orphan,
        lost_groups,
        lost_boundary_units,
        boundary_units,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replan;
    use lts_nn::descriptor::{lenet_spec, SpecBuilder};

    fn grouped_spec(groups: usize) -> NetworkSpec {
        SpecBuilder::new("g", (3, 16, 16))
            .conv("conv1", 16, 5, 1, 2, 1)
            .pool("pool1", 2, 2)
            .conv("conv2", 32, 3, 1, 1, groups)
            .pool("pool2", 2, 2)
            .flatten()
            .linear("ip1", 10)
            .build()
    }

    #[test]
    fn fault_before_the_first_layer_degenerates_to_a_fresh_replan() {
        let spec = lenet_spec();
        let inc = replan_from_layer(&spec, 16, 0, &[5], &HashMap::new(), 2).unwrap();
        let full = replan(&spec, 16, &[5], &HashMap::new(), 2).unwrap();
        assert_eq!(inc.tail, full.plan);
        assert_eq!(inc.core_map, full.core_map);
        assert!(inc.redistribution.is_empty());
        assert_eq!(inc.boundary_units, 0);
        assert_eq!(inc.lost_boundary_fraction(), 0.0);
    }

    #[test]
    fn tail_covers_exactly_the_remaining_layers() {
        let spec = lenet_spec();
        let inc = replan_from_layer(&spec, 16, 3, &[2, 9], &HashMap::new(), 2).unwrap();
        assert_eq!(inc.tail.layers.len(), spec.layers.len() - 3);
        assert_eq!(inc.tail.cores, 14);
        for (lp, orig) in inc.tail.layers.iter().zip(&spec.layers[3..]) {
            assert_eq!(lp.spec.name, orig.name);
        }
    }

    #[test]
    fn boundary_resync_moves_only_surviving_units_between_different_owners() {
        let spec = lenet_spec();
        // Fault after conv1 (boundary = conv1's 20-channel output).
        let inc = replan_from_layer(&spec, 16, 1, &[0, 7], &HashMap::new(), 2).unwrap();
        assert_eq!(inc.boundary_units, 20);
        // Cores 0..4 own 2 channels, the rest 1: dead 0 and 7 orphan 3.
        assert_eq!(inc.lost_boundary_units, 3);
        assert_eq!(inc.orphan, vec![0..2, 11..12]);
        for m in &inc.redistribution.messages {
            assert!(m.src != 0 && m.src != 7, "dead core {} sends", m.src);
            assert!(m.dst != 0 && m.dst != 7, "dead core {} receives", m.dst);
            assert_ne!(m.src, m.dst);
        }
        // Moved units are bounded by the surviving boundary payload.
        let unit_bytes = (24 * 24 * 2) as u64; // conv1 spatial x 2 B
        assert!(inc.redistribution_bytes <= 17 * unit_bytes);
        assert!(inc.redistribution_bytes > 0);
    }

    #[test]
    fn no_deaths_and_no_progress_is_the_healthy_plan_with_no_resync() {
        let spec = lenet_spec();
        let inc = replan_from_layer(&spec, 16, 0, &[], &HashMap::new(), 2).unwrap();
        assert_eq!(inc.tail, Plan::dense(&spec, 16, 2).unwrap());
        assert!(inc.redistribution.is_empty());
    }

    #[test]
    fn late_faults_leave_shorter_tails_and_orphan_final_outputs() {
        let spec = lenet_spec();
        let n = spec.layers.len();
        let inc = replan_from_layer(&spec, 16, n, &[3], &HashMap::new(), 2).unwrap();
        assert!(inc.tail.layers.is_empty());
        // Boundary = ip2's 10 outputs; core 3 owned one of them.
        assert_eq!(inc.boundary_units, 10);
        assert_eq!(inc.lost_boundary_units, 1);
        assert!((inc.lost_boundary_fraction() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn grouped_tails_report_lost_chains() {
        let spec = grouped_spec(16);
        // Fault before the grouped conv2: its pinned groups on cores 3, 7
        // are unrecoverable even though conv2 has not run yet.
        let inc = replan_from_layer(&spec, 16, 2, &[3, 7], &HashMap::new(), 2).unwrap();
        assert_eq!(inc.lost_groups.len(), 1);
        assert_eq!(inc.lost_groups[0].lost, vec![3, 7]);
        assert!(inc.lost_output_fraction() > 0.0);
        // Fault *after* conv2: the chain loss shows up as orphaned
        // boundary units instead.
        let late = replan_from_layer(&spec, 16, 4, &[3, 7], &HashMap::new(), 2).unwrap();
        assert!(late.lost_groups.is_empty());
        assert!(late.lost_boundary_units > 0);
    }

    #[test]
    fn physical_messages_stay_on_survivors() {
        let spec = lenet_spec();
        let inc = replan_from_layer(&spec, 16, 2, &[1, 12], &HashMap::new(), 2).unwrap();
        for lp in &inc.tail.layers {
            for m in &inc.physical_messages(lp).messages {
                assert!(m.src != 1 && m.src != 12 && m.dst != 1 && m.dst != 12);
                assert!(m.src < 16 && m.dst < 16);
            }
        }
    }

    #[test]
    fn out_of_range_fault_layers_are_rejected() {
        let spec = lenet_spec();
        let n = spec.layers.len();
        assert!(replan_from_layer(&spec, 16, n + 1, &[0], &HashMap::new(), 2).is_err());
        assert!(replan_from_layer(&spec, 16, 2, &[16], &HashMap::new(), 2).is_err());
        let all: Vec<usize> = (0..16).collect();
        assert!(replan_from_layer(&spec, 16, 2, &all, &HashMap::new(), 2).is_err());
    }

    #[test]
    fn sparse_weights_shrink_the_tail_gather() {
        let spec = lenet_spec();
        let dense = replan_from_layer(&spec, 16, 2, &[4], &HashMap::new(), 2).unwrap();
        // All-zero conv2 weights suppress the transition into conv2.
        let conv2 = spec.layer("conv2").unwrap();
        let lts_nn::descriptor::LayerKind::Conv { out_c, kernel, .. } = conv2.kind else {
            panic!("conv2 is a conv layer");
        };
        let w = vec![0.0f32; out_c * conv2.in_dims.0 * kernel * kernel];
        let mut weights = HashMap::new();
        weights.insert("conv2".to_string(), w);
        let sparse = replan_from_layer(&spec, 16, 2, &[4], &weights, 2).unwrap();
        let dense_bytes = dense.tail.layer("conv2").unwrap().traffic.total_bytes();
        let sparse_bytes = sparse.tail.layer("conv2").unwrap().traffic.total_bytes();
        assert!(dense_bytes > 0);
        assert_eq!(sparse_bytes, 0);
        // The resync itself is weight-independent: same surviving bytes.
        assert_eq!(dense.redistribution_bytes, sparse.redistribution_bytes);
    }
}
