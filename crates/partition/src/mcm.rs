//! Multi-chip-module plans: pipeline stages on chiplets, channel groups
//! within a chiplet.
//!
//! A single-chip plan ([`Plan::build`]) spreads every layer's output
//! channels across all cores. On a multi-chip package that would put every
//! layer transition on the interposer, so the MCM plan uses the two-level
//! split the paper's scaling argument implies:
//!
//! * **between chiplets**: the network is cut into contiguous *pipeline
//!   stages*, one per chiplet, balanced by MAC count (a DP over prefix
//!   sums). Stages follow the serpentine chiplet order, so consecutive
//!   stages sit on grid-adjacent chiplets and cross exactly one interposer
//!   seam;
//! * **within a chiplet**: each stage's layers are partitioned over that
//!   chiplet's cores exactly like a single-chip plan (channel groups,
//!   ownership propagation, sparsity-aware transitions).
//!
//! With one chiplet the stage partition is the whole network, every map is
//! the identity and [`McmPlan::build`] reproduces [`Plan::build`]
//! bit-exactly — the single-chip plan IS the 1-chiplet special case.

use crate::ownership::OwnershipMap;
use crate::plan::{assignment_counts, consumer_blocks, LayerPlan, Plan, PlanError};
use crate::traffic::transition_messages_mapped;
use lts_nn::descriptor::NetworkSpec;
use lts_nn::grouping::even_blocks;
use lts_noc::traffic::{Message, TrafficTrace};
use lts_noc::{McmTopology, Topology};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::ops::Range;

/// One pipeline stage placed on one chiplet.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StagePlacement {
    /// The chiplet executing this stage.
    pub chiplet: usize,
    /// First layer index (into the network spec) of the stage.
    pub layer_start: usize,
    /// One past the last layer index of the stage.
    pub layer_end: usize,
    /// Total MACs of the stage's layers (the balance measure).
    pub macs: u64,
}

impl StagePlacement {
    /// The stage's layer index range.
    pub fn layers(&self) -> Range<usize> {
        self.layer_start..self.layer_end
    }
}

/// A network placed on a multi-chip package: a global [`Plan`] whose node
/// ids span the whole package, plus the stage→chiplet placement that
/// produced it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct McmPlan {
    /// The global plan. `plan.cores` is the package's total node count;
    /// `assignments` are indexed by global node id, and `traffic` message
    /// endpoints are global node ids (interposer crossings appear at
    /// stage boundaries). `layout` stays in stage-local core coordinates —
    /// it parameterizes training, which happens per stage.
    pub plan: Plan,
    /// Stage placements, in execution order.
    pub stages: Vec<StagePlacement>,
    /// Cores per chiplet (each stage's intra-chip parallel width).
    pub cores_per_chiplet: usize,
}

impl McmPlan {
    /// Builds the MCM plan for `spec` on `topo`.
    ///
    /// `weights` follows [`Plan::build`]: layers present in the map use
    /// sparsity-aware transition traffic (block layouts are stage-local).
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::BadConfig`] for an empty network or zero
    /// `bytes_per_value`, and [`PlanError::WeightsMismatch`] if a provided
    /// weight tensor has the wrong length.
    pub fn build(
        spec: &NetworkSpec,
        topo: &McmTopology,
        weights: &HashMap<String, Vec<f32>>,
        bytes_per_value: usize,
    ) -> Result<McmPlan, PlanError> {
        let _probe = lts_obs::span("partition.mcm_plan_build");
        Self::build_on_order(
            spec,
            topo,
            weights,
            bytes_per_value,
            &topo.serpentine_chiplets(),
            None,
        )
    }

    /// Reruns the MAC-balanced stage partition over the chiplets that
    /// survive `dead_chiplets`: the serpentine package order is filtered
    /// to the survivors (fewer, fatter stages), transition traffic is
    /// re-priced over the new seam distances the survivor sequence
    /// implies (consecutive survivors may now sit more than one seam
    /// apart), and every per-stage layout is regenerated. Node ids stay
    /// *physical* — `plan.cores` still spans the whole package and dead
    /// chiplets simply hold no assignments — so the result runs directly
    /// on the faulty package.
    ///
    /// With an empty `dead_chiplets` this is [`McmPlan::build`],
    /// bit-identically.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::BadConfig`] for an out-of-range chiplet id
    /// or when no chiplet survives, plus everything [`McmPlan::build`]
    /// rejects.
    pub fn replan_without_chiplets(
        spec: &NetworkSpec,
        topo: &McmTopology,
        dead_chiplets: &[usize],
        weights: &HashMap<String, Vec<f32>>,
        bytes_per_value: usize,
    ) -> Result<McmPlan, PlanError> {
        let _probe = lts_obs::span("partition.mcm_replan_without_chiplets");
        let order = survivor_chiplet_order(topo, dead_chiplets)?;
        Self::build_on_order(spec, topo, weights, bytes_per_value, &order, None)
    }

    /// The shared stage builder: lays `spec` out as pipeline stages over
    /// the given chiplet `order` (all of [`McmPlan::build`],
    /// [`McmPlan::replan_without_chiplets`] and the incremental tail of
    /// [`McmPlan::replan_from_layer`] are this with different orders).
    /// `seed` preseeds the boundary ownership for tail plans whose input
    /// feature map already lives sharded on `order[0]`.
    fn build_on_order(
        spec: &NetworkSpec,
        topo: &McmTopology,
        weights: &HashMap<String, Vec<f32>>,
        bytes_per_value: usize,
        order: &[usize],
        seed: Option<OwnershipMap>,
    ) -> Result<McmPlan, PlanError> {
        if spec.layers.is_empty() {
            return Err(PlanError::BadConfig("network has no layers".into()));
        }
        if bytes_per_value == 0 {
            return Err(PlanError::BadConfig("bytes_per_value must be positive".into()));
        }
        let per_chip = topo.nodes_per_chiplet();
        let total = Topology::nodes(topo);
        let costs: Vec<u64> = spec.layers.iter().map(|l| l.macs()).collect();
        // A stage boundary is only meaningful where the plan already
        // synchronizes: right before a weighted layer. Cutting before a
        // pool/activation/flatten layer would move the feature maps across
        // the interposer without any transition traffic to account for it.
        let allowed: Vec<bool> = spec.layers.iter().map(|l| l.has_weights()).collect();
        let ranges = partition_stages_at(&costs, order.len(), &allowed);

        let mut ownership: Option<OwnershipMap> = seed;
        // The chiplet holding the previous layer's outputs (sources of the
        // next transition). The first layer reads the replicated input.
        let mut prev_chip = order[0];
        let mut layers = Vec::with_capacity(spec.layers.len());
        let mut stages = Vec::with_capacity(ranges.len());
        for (s, range) in ranges.iter().enumerate() {
            let chip = order[s];
            let mut macs = 0u64;
            for li in range.clone() {
                let layer = &spec.layers[li];
                macs += layer.macs();
                let layout = Plan::layout_for(layer, ownership.as_ref(), per_chip);
                if let (Some(l), Some(w)) = (&layout, weights.get(&layer.name)) {
                    if l.weight_len() != w.len() {
                        return Err(PlanError::WeightsMismatch {
                            layer: layer.name.clone(),
                            expected: l.weight_len(),
                            actual: w.len(),
                        });
                    }
                }
                let consumers = consumer_blocks(layer, per_chip);
                let traffic = match (&ownership, layer.has_weights()) {
                    (Some(producer), true) => {
                        let sparse = match (&layout, weights.get(&layer.name)) {
                            (Some(l), Some(w)) => Some((l, w.as_slice())),
                            _ => None,
                        };
                        transition_messages_mapped(
                            producer,
                            layer,
                            &consumers,
                            sparse,
                            bytes_per_value,
                            0,
                            |p| topo.chiplet_node(prev_chip, p),
                            |c| topo.chiplet_node(chip, c),
                        )
                    }
                    _ => TrafficTrace::new(),
                };
                let local = assignment_counts(layer, ownership.as_ref(), per_chip);
                let mut assignments = vec![0usize; total];
                for (i, &a) in local.iter().enumerate() {
                    assignments[topo.chiplet_node(chip, i)] = a;
                }
                ownership = crate::ownership::propagate(layer, ownership.as_ref(), per_chip);
                prev_chip = chip;
                layers.push(LayerPlan { spec: layer.clone(), assignments, layout, traffic });
            }
            stages.push(StagePlacement {
                chiplet: chip,
                layer_start: range.start,
                layer_end: range.end,
                macs,
            });
        }
        Ok(McmPlan { plan: Plan { cores: total, layers }, stages, cores_per_chiplet: per_chip })
    }

    /// The chiplet executing layer `li` (`None` past the network's end).
    pub fn chiplet_of_layer(&self, li: usize) -> Option<usize> {
        self.stages.iter().find(|s| s.layers().contains(&li)).map(|s| s.chiplet)
    }

    /// Incremental replan after a *mid-inference* chiplet loss: the MCM
    /// analogue of [`crate::replan_from_layer`]. Layers `fault_layer..`
    /// are re-staged over the surviving chiplets
    /// (via the [`McmPlan::replan_without_chiplets`] machinery), and the
    /// boundary feature map — the output of layer `fault_layer - 1`,
    /// sharded over its owner chiplet's cores under `self` — is resynced
    /// to the tail's first stage chiplet as a physical
    /// (global-node-endpoint) redistribution trace. If the owner chiplet
    /// itself died, the boundary is orphaned wholesale and reported, not
    /// resent.
    ///
    /// `spec` must be the network `self` was built from.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::BadConfig`] when `fault_layer` is out of
    /// range, a chiplet id is out of range, or no chiplet survives; plus
    /// anything [`McmPlan::build`] rejects.
    pub fn replan_from_layer(
        &self,
        spec: &NetworkSpec,
        topo: &McmTopology,
        fault_layer: usize,
        dead_chiplets: &[usize],
        weights: &HashMap<String, Vec<f32>>,
        bytes_per_value: usize,
    ) -> Result<McmIncrementalPlan, PlanError> {
        let _probe = lts_obs::span("partition.mcm_replan_from_layer");
        if fault_layer > spec.layers.len() {
            return Err(PlanError::BadConfig(format!(
                "fault layer {fault_layer} beyond the network's {} layers",
                spec.layers.len()
            )));
        }
        let order = survivor_chiplet_order(topo, dead_chiplets)?;
        let mut dead = dead_chiplets.to_vec();
        dead.sort_unstable();
        dead.dedup();
        let per_chip = topo.nodes_per_chiplet();

        // Ownership of the boundary feature map under the old plan —
        // stage-local (the plan chains ownership in chiplet-local core
        // coordinates across stage boundaries).
        let mut boundary: Option<OwnershipMap> = None;
        for layer in &spec.layers[..fault_layer] {
            boundary = crate::ownership::propagate(layer, boundary.as_ref(), per_chip);
        }
        let old_chip = fault_layer.checked_sub(1).and_then(|li| self.chiplet_of_layer(li));

        let mut redistribution = TrafficTrace::new();
        let mut lost_boundary_units = 0usize;
        let mut boundary_units = 0usize;
        let mut seed = None;
        if let Some(old) = &boundary {
            boundary_units = old.units();
            seed = Some(OwnershipMap::even(old.units(), old.values_per_unit(), per_chip));
            let src_chip = old_chip.unwrap_or(order[0]);
            if dead.contains(&src_chip) {
                // The producer chiplet died with its shard of the
                // boundary: nothing survives to resync.
                lost_boundary_units = boundary_units;
            } else {
                // The tail's first stage lands on the first survivor in
                // serpentine order; rebalance the surviving shard onto
                // that chiplet's even seed layout. Data already on its
                // new owner core stays put.
                let dst_chip = order[0];
                let unit_bytes = (old.values_per_unit() * bytes_per_value) as u64;
                let new_blocks = even_blocks(boundary_units, per_chip);
                for src_local in 0..per_chip {
                    let have = old.block(src_local);
                    let src = topo.chiplet_node(src_chip, src_local);
                    for (dst_local, nb) in new_blocks.iter().enumerate() {
                        let dst = topo.chiplet_node(dst_chip, dst_local);
                        if dst == src {
                            continue;
                        }
                        let moved = have.end.min(nb.end).saturating_sub(have.start.max(nb.start));
                        if moved > 0 {
                            redistribution.push(Message::new(
                                src,
                                dst,
                                moved as u64 * unit_bytes,
                                0,
                            ));
                        }
                    }
                }
            }
        }
        let redistribution_bytes = redistribution.total_bytes();

        let tail_spec = NetworkSpec {
            name: spec.name.clone(),
            input: if fault_layer == 0 {
                spec.input
            } else {
                spec.layers[fault_layer - 1].out_dims
            },
            layers: spec.layers[fault_layer..].to_vec(),
        };
        let tail = if tail_spec.layers.is_empty() {
            // Everything already ran: an empty tail, like the flat
            // incremental plan's.
            McmPlan {
                plan: Plan { cores: Topology::nodes(topo), layers: Vec::new() },
                stages: Vec::new(),
                cores_per_chiplet: per_chip,
            }
        } else {
            Self::build_on_order(&tail_spec, topo, weights, bytes_per_value, &order, seed)?
        };

        Ok(McmIncrementalPlan {
            fault_layer,
            dead_chiplets: dead,
            survivor_chiplets: order,
            tail,
            redistribution,
            redistribution_bytes,
            lost_boundary_units,
            boundary_units,
        })
    }

    /// Per-stage MAC totals, in execution order.
    pub fn stage_macs(&self) -> Vec<u64> {
        self.stages.iter().map(|s| s.macs).collect()
    }

    /// Fraction of each stage's chiplet-local cores that hold work in at
    /// least one of the stage's layers, in execution order. Assignments
    /// live only on the owning chiplet, so each value is in `(0, 1]` —
    /// the pipeline-stage occupancy signal serving reports per strategy.
    pub fn stage_occupancy(&self) -> Vec<f64> {
        self.stages
            .iter()
            .map(|s| {
                let busy = (0..self.plan.cores)
                    .filter(|&n| s.layers().any(|li| self.plan.layers[li].assignments[n] > 0))
                    .count();
                busy as f64 / self.cores_per_chiplet.max(1) as f64
            })
            .collect()
    }
}

/// A tail MCM plan plus the boundary resync that makes it runnable — the
/// package-level analogue of [`crate::IncrementalPlan`], produced by
/// [`McmPlan::replan_from_layer`]. All node ids are physical (global
/// package ids), so both the redistribution and the tail run directly on
/// the degraded package.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct McmIncrementalPlan {
    /// Index of the first layer that had not run when the fault hit.
    pub fault_layer: usize,
    /// Dead chiplet ids (sorted, deduplicated).
    pub dead_chiplets: Vec<usize>,
    /// Surviving chiplets in (recomputed) serpentine order — the tail's
    /// stage sequence.
    pub survivor_chiplets: Vec<usize>,
    /// The re-staged plan for layers `fault_layer..` over the survivors
    /// (empty when the fault hit after the last layer).
    pub tail: McmPlan,
    /// Boundary-resync messages with global node endpoints: the
    /// surviving boundary shard moving from its old owner chiplet onto
    /// the tail's first stage chiplet.
    pub redistribution: TrafficTrace,
    /// Total bytes of [`McmIncrementalPlan::redistribution`].
    pub redistribution_bytes: u64,
    /// Boundary units orphaned because their owner chiplet died.
    pub lost_boundary_units: usize,
    /// Total units in the boundary feature map (0 when the fault hit
    /// before the first layer, whose input is replicated everywhere).
    pub boundary_units: usize,
}

impl McmIncrementalPlan {
    /// Number of surviving chiplets.
    pub fn survivors(&self) -> usize {
        self.survivor_chiplets.len()
    }

    /// Fraction of the boundary feature map lost with the dead chiplet.
    pub fn lost_boundary_fraction(&self) -> f64 {
        if self.boundary_units == 0 {
            return 0.0;
        }
        self.lost_boundary_units as f64 / self.boundary_units as f64
    }
}

/// The serpentine chiplet order filtered to the survivors of
/// `dead_chiplets`, as a typed error when the loss is not survivable.
fn survivor_chiplet_order(
    topo: &McmTopology,
    dead_chiplets: &[usize],
) -> Result<Vec<usize>, PlanError> {
    let chiplets = Topology::chiplets(topo);
    for &c in dead_chiplets {
        if c >= chiplets {
            return Err(PlanError::BadConfig(format!(
                "dead chiplet {c} out of range for a {chiplets}-chiplet package"
            )));
        }
    }
    let order: Vec<usize> =
        topo.serpentine_chiplets().into_iter().filter(|c| !dead_chiplets.contains(c)).collect();
    if order.is_empty() {
        return Err(PlanError::BadConfig("no chiplet survives the fault set".into()));
    }
    Ok(order)
}

/// Fraction of `plan`'s cores that hold work in each layer group — the
/// single-chip analogue of [`McmPlan::stage_occupancy`] for a plan whose
/// layers have been split into pipeline groups (e.g. by
/// [`partition_stages_at`]). Out-of-range layer indices count as idle.
pub fn group_occupancy(plan: &Plan, groups: &[Range<usize>]) -> Vec<f64> {
    groups
        .iter()
        .map(|r| {
            let busy = (0..plan.cores)
                .filter(|&c| {
                    r.clone().any(|li| {
                        plan.layers
                            .get(li)
                            .is_some_and(|lp| lp.assignments.get(c).copied().unwrap_or(0) > 0)
                    })
                })
                .count();
            busy as f64 / plan.cores.max(1) as f64
        })
        .collect()
}

/// Splits `costs` (one entry per layer, execution order) into at most
/// `stages` non-empty contiguous ranges minimizing the maximum range sum —
/// the classic linear-partition DP. Returns fewer ranges when there are
/// fewer layers than stages. Ties break toward earlier cuts, so the result
/// is deterministic.
///
/// # Panics
///
/// Panics if `costs` is empty.
pub fn partition_stages(costs: &[u64], stages: usize) -> Vec<Range<usize>> {
    partition_stages_at(costs, stages, &vec![true; costs.len()])
}

/// [`partition_stages`] with an explicit cut mask: a boundary may start a
/// new stage at layer `j` only when `allowed[j]` is true (the first layer
/// is always a valid stage start). With fewer permitted cuts than
/// requested stages the result has fewer stages.
///
/// # Panics
///
/// Panics if `costs` is empty or `allowed` has a different length.
pub fn partition_stages_at(costs: &[u64], stages: usize, allowed: &[bool]) -> Vec<Range<usize>> {
    let n = costs.len();
    assert!(n > 0, "cannot partition zero layers");
    assert_eq!(allowed.len(), n, "cut mask must cover every layer");
    let usable_cuts = allowed.iter().skip(1).filter(|&&a| a).count();
    let k = stages.clamp(1, usable_cuts + 1);
    let mut prefix = vec![0u64; n + 1];
    for (i, &c) in costs.iter().enumerate() {
        prefix[i + 1] = prefix[i] + c;
    }
    // dp[s][i]: minimal max-stage-cost over the first i layers in s stages.
    let mut dp = vec![vec![u64::MAX; n + 1]; k + 1];
    let mut cut = vec![vec![0usize; n + 1]; k + 1];
    dp[0][0] = 0;
    for s in 1..=k {
        for i in s..=n {
            for j in (s - 1)..i {
                if dp[s - 1][j] == u64::MAX || (j > 0 && !allowed[j]) {
                    continue;
                }
                let cost = dp[s - 1][j].max(prefix[i] - prefix[j]);
                if cost < dp[s][i] {
                    dp[s][i] = cost;
                    cut[s][i] = j;
                }
            }
        }
    }
    // With a restrictive mask the exact k-stage split may be infeasible;
    // fall back to the largest feasible stage count.
    let mut best_k = k;
    while best_k > 1 && dp[best_k][n] == u64::MAX {
        best_k -= 1;
    }
    let mut bounds = vec![n];
    let mut i = n;
    for s in (1..=best_k).rev() {
        i = cut[s][i];
        bounds.push(i);
    }
    bounds.reverse();
    bounds.windows(2).map(|w| w[0]..w[1]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lts_nn::descriptor::lenet_spec;

    #[test]
    fn partition_balances_uniform_costs() {
        assert_eq!(partition_stages(&[4, 4, 4, 4], 2), vec![0..2, 2..4]);
        assert_eq!(partition_stages(&[4, 4, 4, 4], 4), vec![0..1, 1..2, 2..3, 3..4]);
    }

    #[test]
    fn partition_isolates_the_dominant_layer() {
        // One huge layer: it gets a stage to itself.
        let ranges = partition_stages(&[1, 100, 1, 1], 2);
        let sums: Vec<u64> =
            ranges.iter().map(|r| r.clone().map(|i| [1u64, 100, 1, 1][i]).sum()).collect();
        assert!(sums.iter().max().unwrap() <= &102);
        assert_eq!(ranges.iter().map(Range::len).sum::<usize>(), 4);
    }

    #[test]
    fn more_stages_than_layers_caps_at_layers() {
        let ranges = partition_stages(&[5, 5], 8);
        assert_eq!(ranges, vec![0..1, 1..2]);
    }

    #[test]
    fn cut_mask_forbids_boundaries_mid_block() {
        // Layers 1 and 3 may not start a stage (e.g. pools following
        // convs): the only legal 2-way cut is before layer 2.
        let ranges = partition_stages_at(&[10, 1, 10, 1], 2, &[true, false, true, false]);
        assert_eq!(ranges, vec![0..2, 2..4]);
        // A mask with no legal cuts collapses to a single stage.
        let one = partition_stages_at(&[10, 1, 10, 1], 4, &[true, false, false, false]);
        assert_eq!(one, vec![0..4]);
    }

    #[test]
    fn one_chiplet_plan_is_the_single_chip_plan() {
        let spec = lenet_spec();
        let topo = McmTopology::new(4, 4, 1, 1);
        let mcm = McmPlan::build(&spec, &topo, &HashMap::new(), 2).unwrap();
        let single = Plan::dense(&spec, 16, 2).unwrap();
        assert_eq!(mcm.plan, single);
        assert_eq!(mcm.stages.len(), 1);
        assert_eq!(mcm.stages[0].chiplet, 0);
    }

    #[test]
    fn stage_boundaries_cross_exactly_one_seam() {
        let spec = lenet_spec();
        // 2x1 grid of 4x2 chiplets.
        let topo = McmTopology::new(4, 2, 2, 1);
        let mcm = McmPlan::build(&spec, &topo, &HashMap::new(), 2).unwrap();
        assert_eq!(mcm.stages.len(), 2);
        // Every layer's traffic either stays on one chiplet or flows
        // between the two stages' (grid-adjacent) chiplets.
        for (li, lp) in mcm.plan.layers.iter().enumerate() {
            let chip = mcm.chiplet_of_layer(li).unwrap();
            for m in &lp.traffic.messages {
                let dst_chip = topo.chiplet_of(m.dst);
                assert_eq!(dst_chip, chip, "layer {li} consumer off its chiplet");
                let src_chip = topo.chiplet_of(m.src);
                assert!(
                    topo.chiplet_distance(
                        topo.chiplet_node(src_chip, 0),
                        topo.chiplet_node(dst_chip, 0)
                    ) <= 1,
                    "stage transition jumps more than one seam"
                );
            }
        }
        // The cross-chip transition exists: some message changes chiplet.
        let crossings: usize = mcm
            .plan
            .layers
            .iter()
            .flat_map(|l| &l.traffic.messages)
            .filter(|m| topo.chiplet_of(m.src) != topo.chiplet_of(m.dst))
            .count();
        assert!(crossings > 0, "pipelined stages must talk over the interposer");
    }

    #[test]
    fn stage_occupancy_is_positive_and_bounded() {
        let spec = lenet_spec();
        let topo = McmTopology::new(4, 2, 2, 1);
        let mcm = McmPlan::build(&spec, &topo, &HashMap::new(), 2).unwrap();
        let occ = mcm.stage_occupancy();
        assert_eq!(occ.len(), mcm.stages.len());
        for (s, &o) in occ.iter().enumerate() {
            assert!(o > 0.0 && o <= 1.0, "stage {s} occupancy {o} out of (0, 1]");
        }
    }

    #[test]
    fn group_occupancy_matches_hand_counted_assignments() {
        let spec = lenet_spec();
        let plan = Plan::dense(&spec, 4, 2).unwrap();
        let groups = vec![0..2, 2..plan.layers.len()];
        let occ = group_occupancy(&plan, &groups);
        assert_eq!(occ.len(), 2);
        for (g, range) in groups.iter().enumerate() {
            let busy = (0..plan.cores)
                .filter(|&c| range.clone().any(|li| plan.layers[li].assignments[c] > 0))
                .count();
            assert_eq!(occ[g], busy as f64 / plan.cores as f64);
            assert!(occ[g] > 0.0);
        }
        // Out-of-range groups read as idle instead of panicking.
        assert_eq!(group_occupancy(&plan, std::slice::from_ref(&(999..1000))), vec![0.0]);
    }

    #[test]
    fn replan_without_chiplets_on_the_full_set_is_the_original_plan() {
        let spec = lenet_spec();
        let topo = McmTopology::new(4, 2, 2, 1);
        let original = McmPlan::build(&spec, &topo, &HashMap::new(), 2).unwrap();
        let replanned =
            McmPlan::replan_without_chiplets(&spec, &topo, &[], &HashMap::new(), 2).unwrap();
        assert_eq!(original, replanned);
    }

    #[test]
    fn replan_without_chiplets_restages_over_the_survivors() {
        let spec = lenet_spec();
        // 2x2 package grid of 2x2 chiplets, serpentine order 0,1,3,2.
        let topo = McmTopology::new(2, 2, 2, 2);
        let healthy = McmPlan::build(&spec, &topo, &HashMap::new(), 2).unwrap();
        assert_eq!(healthy.stages.len(), 4);
        let degraded =
            McmPlan::replan_without_chiplets(&spec, &topo, &[1], &HashMap::new(), 2).unwrap();
        // Fewer, fatter stages over the survivor order 0,3,2.
        assert_eq!(degraded.stages.len(), 3);
        let chips: Vec<usize> = degraded.stages.iter().map(|s| s.chiplet).collect();
        assert_eq!(chips, vec![0, 3, 2]);
        assert_eq!(
            degraded.stages.iter().map(|s| s.layers().len()).sum::<usize>(),
            spec.layers.len(),
            "every layer is still placed"
        );
        // Dead chiplet 1 holds neither assignments nor traffic endpoints.
        for lp in &degraded.plan.layers {
            for &node in &topo.chiplet_nodes(1) {
                assert_eq!(lp.assignments[node], 0);
            }
            for m in &lp.traffic.messages {
                assert_ne!(topo.chiplet_of(m.src), 1);
                assert_ne!(topo.chiplet_of(m.dst), 1);
            }
        }
        // The 0 -> 3 stage transition now crosses two seams — re-priced
        // over the survivor distances rather than silently assumed
        // adjacent.
        let max_seams = degraded
            .plan
            .layers
            .iter()
            .flat_map(|l| &l.traffic.messages)
            .map(|m| topo.chiplet_distance(m.src, m.dst))
            .max()
            .unwrap();
        assert_eq!(max_seams, 2, "survivor transitions are priced over real seam distances");
        // Typed errors for unsurvivable or nonsensical fault sets.
        assert!(McmPlan::replan_without_chiplets(&spec, &topo, &[4], &HashMap::new(), 2).is_err());
        assert!(McmPlan::replan_without_chiplets(&spec, &topo, &[0, 1, 2, 3], &HashMap::new(), 2)
            .is_err());
    }

    #[test]
    fn incremental_replan_resyncs_the_boundary_onto_the_first_survivor_stage() {
        let spec = lenet_spec();
        let topo = McmTopology::new(4, 2, 2, 1);
        let healthy = McmPlan::build(&spec, &topo, &HashMap::new(), 2).unwrap();
        // Kill the chiplet executing the *last* stage, mid-network. The
        // boundary (conv1 output, layer 0) lives on stage 0's chiplet,
        // which survives: its shard resyncs onto the tail's first stage.
        let dead = healthy.stages.last().unwrap().chiplet;
        let inc = healthy.replan_from_layer(&spec, &topo, 1, &[dead], &HashMap::new(), 2).unwrap();
        assert_eq!(inc.fault_layer, 1);
        assert_eq!(inc.dead_chiplets, vec![dead]);
        assert_eq!(inc.survivors(), 1);
        assert_eq!(inc.boundary_units, 20);
        assert_eq!(inc.lost_boundary_units, 0, "the producer chiplet survived");
        assert_eq!(inc.tail.plan.layers.len(), spec.layers.len() - 1);
        // Resync endpoints are physical, on survivors, and the source
        // side sits on the old producer chiplet.
        let producer = healthy.chiplet_of_layer(0).unwrap();
        assert_ne!(producer, dead);
        for m in &inc.redistribution.messages {
            assert_eq!(topo.chiplet_of(m.src), producer);
            assert_ne!(topo.chiplet_of(m.dst), dead);
            assert_ne!(m.src, m.dst);
        }
        // Producer == tail's first stage here, so the resync is the
        // intra-chiplet rebalance (possibly empty when layouts agree).
        assert_eq!(inc.redistribution_bytes, inc.redistribution.total_bytes());
    }

    #[test]
    fn incremental_replan_orphans_the_boundary_when_its_producer_dies() {
        let spec = lenet_spec();
        let topo = McmTopology::new(4, 2, 2, 1);
        let healthy = McmPlan::build(&spec, &topo, &HashMap::new(), 2).unwrap();
        let producer = healthy.chiplet_of_layer(0).unwrap();
        let inc =
            healthy.replan_from_layer(&spec, &topo, 1, &[producer], &HashMap::new(), 2).unwrap();
        assert_eq!(inc.lost_boundary_units, inc.boundary_units);
        assert!((inc.lost_boundary_fraction() - 1.0).abs() < 1e-12);
        assert!(inc.redistribution.is_empty(), "nothing survives to resync");
        assert_eq!(inc.tail.plan.layers.len(), spec.layers.len() - 1);
        // Fault before anything ran: no boundary exists at all.
        let fresh =
            healthy.replan_from_layer(&spec, &topo, 0, &[producer], &HashMap::new(), 2).unwrap();
        assert_eq!(fresh.boundary_units, 0);
        assert!(fresh.redistribution.is_empty());
        assert_eq!(
            fresh.tail,
            McmPlan::replan_without_chiplets(&spec, &topo, &[producer], &HashMap::new(), 2)
                .unwrap(),
            "layer-0 fault degenerates to the static replan"
        );
        // Fault after everything ran: empty tail, orphaned output.
        let n = spec.layers.len();
        let late =
            healthy.replan_from_layer(&spec, &topo, n, &[producer], &HashMap::new(), 2).unwrap();
        assert!(late.tail.plan.layers.is_empty());
        assert!(healthy.replan_from_layer(&spec, &topo, n + 1, &[0], &HashMap::new(), 2).is_err());
    }

    #[test]
    fn assignments_live_only_on_the_owning_chiplet() {
        let spec = lenet_spec();
        let topo = McmTopology::new(4, 2, 2, 1);
        let mcm = McmPlan::build(&spec, &topo, &HashMap::new(), 2).unwrap();
        for (li, lp) in mcm.plan.layers.iter().enumerate() {
            let chip = mcm.chiplet_of_layer(li).unwrap();
            assert_eq!(lp.assignments.len(), Topology::nodes(&topo));
            for (node, &a) in lp.assignments.iter().enumerate() {
                if a > 0 {
                    assert_eq!(topo.chiplet_of(node), chip, "layer {li} node {node}");
                }
            }
            if lp.spec.has_weights() {
                let total: usize = lp.assignments.iter().sum();
                assert_eq!(total, lp.spec.out_dims.0, "layer {}", lp.spec.name);
            }
        }
    }
}
