//! Layer-to-core mapping, distance masks, and NoC traffic generation.
//!
//! This crate is the bridge between the neural network ([`lts_nn`]) and
//! the hardware models (`lts-accel`/[`lts_noc`]): it decides which core
//! owns which output channels/neurons of every layer, derives the
//! producer→consumer block layouts that group-Lasso training regularizes,
//! builds the hop-distance strength masks of the SS_Mask scheme
//! (Fig. 6(a)), and turns a (possibly sparsified) network into the
//! per-layer-transition message traces the NoC simulator executes.
//!
//! The central invariant: **input-unit ownership follows the previous
//! layer's output partition**. [`ownership`] tracks activation ownership
//! through pooling/activation/flatten so that both the regularizer masks
//! and the traffic traces agree on who must send what to whom.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::print_stdout, clippy::print_stderr)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod comm;
pub mod degrade;
pub mod distance;
pub mod mcm;
pub mod ownership;
pub mod plan;
pub mod recover;
pub mod traffic;

pub use degrade::{replan, DegradedPlan, LostGroups};
pub use distance::{hop_mask, hop_power_mask, two_level_mask};
pub use mcm::{
    group_occupancy, partition_stages, partition_stages_at, McmIncrementalPlan, McmPlan,
    StagePlacement,
};
pub use ownership::OwnershipMap;
pub use plan::{LayerPlan, Plan, PlanError};
pub use recover::{replan_from_layer, IncrementalPlan};
