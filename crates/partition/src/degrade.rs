//! Fail-operational re-planning: rebuild a parallelization plan after a
//! set of cores has died.
//!
//! The recovery semantics differ by strategy, mirroring where each one
//! keeps its weights:
//!
//! * **Traditional / sparsified** layers shard by *even output blocks*
//!   whose weights are re-loadable from memory, so the plan simply
//!   re-partitions every layer over the surviving cores. Latency and
//!   traffic degrade; accuracy does not.
//! * **Structure-level grouped** layers pin each channel group — weights
//!   *and* the group-local activation chain — to one core. A dead core
//!   takes its groups' entire output chain with it: those channels cannot
//!   be recomputed elsewhere, so they are reported as [`LostGroups`]
//!   (degraded accuracy) rather than re-sharded.
//!
//! The rebuilt [`Plan`] is *logical*: it spans `survivors` consecutive
//! core ids. [`DegradedPlan::core_map`] maps each logical core to its
//! physical surviving node so traffic can run on the real (faulty) mesh —
//! see [`DegradedPlan::physical_messages`].

use crate::plan::{LayerPlan, Plan, PlanError};
use lts_nn::descriptor::{LayerKind, NetworkSpec};
use lts_nn::grouping::even_blocks;
use lts_noc::traffic::{Message, TrafficTrace};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Channel groups of one grouped layer that died with their cores.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LostGroups {
    /// Layer name.
    pub layer: String,
    /// Total groups in the layer.
    pub groups: usize,
    /// Indices of the lost groups.
    pub lost: Vec<usize>,
    /// Output channels owned by the lost groups.
    pub lost_channels: usize,
    /// Total output channels of the layer.
    pub out_channels: usize,
}

impl LostGroups {
    /// Fraction of this layer's output channels that are lost.
    pub fn lost_fraction(&self) -> f64 {
        if self.out_channels == 0 {
            return 0.0;
        }
        self.lost_channels as f64 / self.out_channels as f64
    }
}

/// A plan rebuilt over the surviving cores of a partially dead chip.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegradedPlan {
    /// Dead physical core ids (sorted, deduplicated).
    pub dead_cores: Vec<usize>,
    /// `core_map[logical] = physical` surviving node id; the rebuilt plan
    /// uses logical ids `0..survivors`.
    pub core_map: Vec<usize>,
    /// The plan over the surviving cores (logical ids).
    pub plan: Plan,
    /// Groups whose outputs are unrecoverable (grouped layers only;
    /// empty for traditional/sparsified plans).
    pub lost_groups: Vec<LostGroups>,
}

impl DegradedPlan {
    /// Number of surviving cores.
    pub fn survivors(&self) -> usize {
        self.core_map.len()
    }

    /// Worst per-layer fraction of output channels lost to core death —
    /// the accuracy-degradation proxy for grouped plans (`0.0` when
    /// nothing was lost: full accuracy is preserved).
    pub fn lost_output_fraction(&self) -> f64 {
        self.lost_groups.iter().map(LostGroups::lost_fraction).fold(0.0, f64::max)
    }

    /// One layer's transition traffic with logical endpoints remapped to
    /// physical surviving nodes, ready to run on the real (faulty) mesh.
    pub fn physical_messages(&self, layer: &LayerPlan) -> TrafficTrace {
        let mut trace = TrafficTrace::new();
        for m in &layer.traffic.messages {
            trace.messages.push(Message::new(
                self.core_map[m.src],
                self.core_map[m.dst],
                m.bytes,
                m.inject_cycle,
            ));
        }
        trace
    }
}

/// Rebuilds the plan for `spec` on a chip of `cores` cores of which
/// `dead_cores` have failed. `weights` and `bytes_per_value` are passed
/// through to [`Plan::build`] (sparsity-aware traffic still applies).
///
/// # Errors
///
/// Returns [`PlanError::BadConfig`] when `cores == 0`, a dead core id is
/// out of range, or no core survives; plus anything [`Plan::build`]
/// rejects.
pub fn replan(
    spec: &NetworkSpec,
    cores: usize,
    dead_cores: &[usize],
    weights: &HashMap<String, Vec<f32>>,
    bytes_per_value: usize,
) -> Result<DegradedPlan, PlanError> {
    let _probe = lts_obs::span("partition.replan");
    let (dead, core_map) = survivor_map(cores, dead_cores)?;
    let plan = Plan::build(spec, core_map.len(), weights, bytes_per_value)?;
    let lost_groups = collect_lost_groups(spec, cores, &dead);
    Ok(DegradedPlan { dead_cores: dead, core_map, plan, lost_groups })
}

/// Normalizes a dead-core set: sorted/deduplicated dead ids plus the
/// logical→physical map of the survivors.
pub(crate) fn survivor_map(
    cores: usize,
    dead_cores: &[usize],
) -> Result<(Vec<usize>, Vec<usize>), PlanError> {
    if cores == 0 {
        return Err(PlanError::BadConfig("cores must be positive".into()));
    }
    let mut dead: Vec<usize> = dead_cores.to_vec();
    dead.sort_unstable();
    dead.dedup();
    if let Some(&bad) = dead.iter().find(|&&d| d >= cores) {
        return Err(PlanError::BadConfig(format!(
            "dead core {bad} out of range for {cores} cores"
        )));
    }
    let core_map: Vec<usize> = (0..cores).filter(|c| !dead.contains(c)).collect();
    if core_map.is_empty() {
        return Err(PlanError::BadConfig("no surviving cores to re-plan onto".into()));
    }
    Ok((dead, core_map))
}

/// Finds the channel groups of grouped conv layers whose original owner
/// core died. A group is lost if *any* core owning part of its output
/// block is dead: grouped layers chain group-local activations, so the
/// whole chain collapses with the core.
pub(crate) fn collect_lost_groups(
    spec: &NetworkSpec,
    cores: usize,
    dead: &[usize],
) -> Vec<LostGroups> {
    let mut out = Vec::new();
    for layer in &spec.layers {
        let LayerKind::Conv { out_c, groups, .. } = layer.kind else { continue };
        if groups <= 1 {
            continue;
        }
        let owner_blocks = even_blocks(out_c, cores);
        let group_blocks = even_blocks(out_c, groups);
        let mut lost = Vec::new();
        let mut lost_channels = 0usize;
        for (g, gb) in group_blocks.iter().enumerate() {
            let doomed = dead.iter().any(|&d| {
                let ob = &owner_blocks[d];
                ob.start < gb.end && gb.start < ob.end
            });
            if doomed {
                lost.push(g);
                lost_channels += gb.len();
            }
        }
        if !lost.is_empty() {
            out.push(LostGroups {
                layer: layer.name.clone(),
                groups,
                lost,
                lost_channels,
                out_channels: out_c,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lts_nn::descriptor::{convnet_spec, lenet_spec, SpecBuilder};

    fn grouped_spec(groups: usize) -> NetworkSpec {
        SpecBuilder::new("g", (3, 16, 16))
            .conv("conv1", 16, 5, 1, 2, 1)
            .pool("pool1", 2, 2)
            .conv("conv2", 32, 3, 1, 1, groups)
            .pool("pool2", 2, 2)
            .flatten()
            .linear("ip1", 10)
            .build()
    }

    #[test]
    fn no_dead_cores_matches_the_healthy_plan() {
        let spec = lenet_spec();
        let d = replan(&spec, 16, &[], &HashMap::new(), 2).unwrap();
        assert_eq!(d.plan, Plan::dense(&spec, 16, 2).unwrap());
        assert_eq!(d.core_map, (0..16).collect::<Vec<_>>());
        assert!(d.lost_groups.is_empty());
        assert_eq!(d.lost_output_fraction(), 0.0);
    }

    #[test]
    fn dead_cores_shrink_the_plan_and_the_core_map() {
        let spec = lenet_spec();
        let d = replan(&spec, 16, &[5, 10, 5], &HashMap::new(), 2).unwrap();
        assert_eq!(d.survivors(), 14);
        assert_eq!(d.dead_cores, vec![5, 10], "duplicates are collapsed");
        assert!(!d.core_map.contains(&5) && !d.core_map.contains(&10));
        assert_eq!(d.plan.cores, 14);
        // Dense layers re-shard: nothing is lost, accuracy is intact.
        assert!(d.lost_groups.is_empty());
    }

    #[test]
    fn invalid_dead_sets_are_rejected() {
        let spec = lenet_spec();
        assert!(replan(&spec, 16, &[16], &HashMap::new(), 2).is_err());
        let all: Vec<usize> = (0..16).collect();
        assert!(replan(&spec, 16, &all, &HashMap::new(), 2).is_err());
        assert!(replan(&spec, 0, &[], &HashMap::new(), 2).is_err());
    }

    #[test]
    fn grouped_layers_report_lost_groups() {
        // 16 groups on 16 cores: group g lives on core g exactly.
        let spec = grouped_spec(16);
        let d = replan(&spec, 16, &[3, 7], &HashMap::new(), 2).unwrap();
        assert_eq!(d.lost_groups.len(), 1);
        let lg = &d.lost_groups[0];
        assert_eq!(lg.layer, "conv2");
        assert_eq!(lg.lost, vec![3, 7]);
        assert_eq!(lg.lost_channels, 4, "32 channels / 16 groups = 2 per group");
        assert!((d.lost_output_fraction() - 4.0 / 32.0).abs() < 1e-12);
    }

    #[test]
    fn ungrouped_networks_never_lose_groups() {
        let d = replan(&convnet_spec(), 16, &[0, 1, 2, 3], &HashMap::new(), 2).unwrap();
        assert!(d.lost_groups.is_empty());
        assert_eq!(d.lost_output_fraction(), 0.0);
    }

    #[test]
    fn physical_messages_avoid_dead_cores() {
        let spec = lenet_spec();
        let d = replan(&spec, 16, &[0, 6], &HashMap::new(), 2).unwrap();
        for lp in &d.plan.layers {
            let physical = d.physical_messages(lp);
            assert_eq!(physical.len(), lp.traffic.len());
            for m in &physical.messages {
                assert!(m.src != 0 && m.src != 6, "message from dead core {}", m.src);
                assert!(m.dst != 0 && m.dst != 6, "message to dead core {}", m.dst);
                assert!(m.src < 16 && m.dst < 16);
            }
        }
    }

    #[test]
    fn fewer_survivors_move_less_total_traffic() {
        // Each survivor holds a bigger slice, so less data crosses cores.
        let spec = lenet_spec();
        let healthy = Plan::dense(&spec, 16, 2).unwrap();
        let degraded = replan(&spec, 16, &[1, 2, 3, 4, 5, 6], &HashMap::new(), 2).unwrap();
        assert!(degraded.plan.total_traffic_bytes() < healthy.total_traffic_bytes());
    }
}
