//! Layer-transition traffic generation.
//!
//! Before a partitioned layer can run, every core must hold the input
//! units its kernels read. Data produced on the same core stays local;
//! everything else crosses the NoC. Three regimes:
//!
//! * **dense** (traditional parallelization): every consumer needs every
//!   input unit → each producer broadcasts its block to all other cores;
//! * **grouped** (structure-level): a consumer only reads the channels of
//!   its own kernel group — with `groups == cores` and aligned blocks,
//!   nothing crosses the NoC;
//! * **sparse** (SS/SS_Mask): a producer sends unit `i` to consumer `c`
//!   only if some surviving (nonzero) weight of `c` reads it.

use crate::ownership::OwnershipMap;
use lts_nn::descriptor::{LayerKind, LayerSpec};
use lts_nn::grouping::GroupLayout;
use lts_noc::traffic::{Message, TrafficTrace};
use std::ops::Range;

/// Generates the messages that synchronize `spec`'s input before it runs.
///
/// * `producer` — ownership of the layer's input units (from
///   [`crate::ownership::propagate`] on the previous layers).
/// * `consumers` — output-unit block per consumer core.
/// * `sparse` — the layer's block layout and trained weights; `None`
///   means dense (traditional) traffic. Only meaningful for ungrouped
///   layers.
///
/// # Panics
///
/// Panics if the producer map's core count differs from `consumers`'
/// length, or (for sparse traffic) the layout disagrees with the producer
/// blocks — those are construction bugs in the caller, not runtime
/// conditions.
pub fn transition_messages(
    producer: &OwnershipMap,
    spec: &LayerSpec,
    consumers: &[Range<usize>],
    sparse: Option<(&GroupLayout, &[f32])>,
    bytes_per_value: usize,
    inject_cycle: u64,
) -> TrafficTrace {
    transition_messages_mapped(
        producer,
        spec,
        consumers,
        sparse,
        bytes_per_value,
        inject_cycle,
        |p| p,
        |c| c,
    )
}

/// [`transition_messages`] with explicit logical-core → NoC-node maps, for
/// plans whose cores are placed on a larger package (e.g. one pipeline
/// stage per chiplet). A transfer is emitted whenever the *mapped* nodes
/// differ — in particular, logical pair `p == c` produces a message when
/// stage boundaries put producer and consumer on different chiplets. With
/// identity maps this is exactly [`transition_messages`].
///
/// # Panics
///
/// Same conditions as [`transition_messages`].
#[allow(clippy::too_many_arguments)]
pub fn transition_messages_mapped(
    producer: &OwnershipMap,
    spec: &LayerSpec,
    consumers: &[Range<usize>],
    sparse: Option<(&GroupLayout, &[f32])>,
    bytes_per_value: usize,
    inject_cycle: u64,
    src_node: impl Fn(usize) -> usize,
    dst_node: impl Fn(usize) -> usize,
) -> TrafficTrace {
    let cores = consumers.len();
    assert_eq!(producer.cores(), cores, "producer/consumer core counts differ");
    let mut trace = TrafficTrace::new();
    let unit_bytes = (producer.values_per_unit() * bytes_per_value) as u64;
    for p in 0..cores {
        for (c, consumer_block) in consumers.iter().enumerate() {
            let (src, dst) = (src_node(p), dst_node(c));
            if src == dst || consumer_block.is_empty() {
                continue;
            }
            let mut units_needed = 0u64;
            for i in producer.block(p) {
                if unit_needed_by(spec, i, consumer_block, sparse) {
                    units_needed += 1;
                }
            }
            if units_needed > 0 {
                trace.push(Message::new(src, dst, units_needed * unit_bytes, inject_cycle));
            }
        }
    }
    trace
}

/// Whether input unit `i` must be present on a consumer owning
/// `consumer_block` of the output units.
fn unit_needed_by(
    spec: &LayerSpec,
    i: usize,
    consumer_block: &Range<usize>,
    sparse: Option<(&GroupLayout, &[f32])>,
) -> bool {
    match spec.kind {
        LayerKind::Conv { out_c, groups, .. } if groups > 1 => {
            // Grouped conv: input channel i belongs to kernel group g and
            // only that group's output channels read it.
            let in_per_group = spec.in_dims.0 / groups;
            let out_per_group = out_c / groups;
            let g = i / in_per_group;
            let group_out = g * out_per_group..(g + 1) * out_per_group;
            ranges_intersect(&group_out, consumer_block)
        }
        LayerKind::Conv { .. } | LayerKind::Linear { .. } => match sparse {
            None => true,
            Some((layout, weights)) => {
                // Needed iff any output unit in the consumer block has a
                // nonzero weight on input unit i.
                let taps = layout.taps();
                let in_units = layout.in_units();
                debug_assert!(i < in_units, "input unit out of layout range");
                consumer_block.clone().any(|o| {
                    let base = (o * in_units + i) * taps;
                    weights[base..base + taps].iter().any(|&w| w != 0.0)
                })
            }
        },
        // Pool/activation/flatten layers run where their data lives; they
        // never trigger inter-core traffic.
        _ => false,
    }
}

fn ranges_intersect(a: &Range<usize>, b: &Range<usize>) -> bool {
    a.start < b.end && b.start < a.end
}

/// Transition volume when suppression decisions are made at *group*
/// granularity only: producer `p` sends its whole block to consumer `c`
/// unless the entire `(p, c)` weight group is zero. Coarser than
/// [`transition_messages`]'s per-unit rule — the difference is the payoff
/// of fine-grained bookkeeping (the `ablation_granularity` experiment).
pub fn group_level_volume_bytes(
    producer: &OwnershipMap,
    layout: &GroupLayout,
    weights: &[f32],
    bytes_per_value: usize,
) -> u64 {
    let cores = producer.cores();
    assert_eq!(layout.cores(), cores, "layout/ownership core counts differ");
    let unit_bytes = (producer.values_per_unit() * bytes_per_value) as u64;
    let mut total = 0u64;
    for p in 0..cores {
        for c in 0..cores {
            if p == c {
                continue;
            }
            if !layout.group_is_zero(p, c, weights) {
                total += producer.block(p).len() as u64 * unit_bytes;
            }
        }
    }
    total
}

/// Dense broadcast volume of one transition (the Table I integrand):
/// every producer sends its share of the input activations to all other
/// cores, so the total is `input_bytes × (cores − 1)` for an ungrouped
/// layer and `0` for a fully grouped one.
pub fn dense_volume_bytes(spec: &LayerSpec, cores: usize, bytes_per_value: usize) -> u64 {
    match spec.kind {
        LayerKind::Conv { groups, .. } if groups >= cores && cores > 1 => 0,
        LayerKind::Conv { groups, .. } if groups > 1 => {
            // Each input channel is needed by its group's consumers only.
            // With g groups evenly spread over C cores, a channel reaches
            // the C/g − 1 other cores of its group.
            let input_bytes =
                (spec.in_dims.0 * spec.in_dims.1 * spec.in_dims.2 * bytes_per_value) as u64;
            let per_group_cores = (cores / groups).max(1) as u64;
            input_bytes * (per_group_cores - 1)
        }
        LayerKind::Conv { .. } | LayerKind::Linear { .. } => {
            let input_bytes =
                (spec.in_dims.0 * spec.in_dims.1 * spec.in_dims.2 * bytes_per_value) as u64;
            input_bytes * (cores as u64 - 1)
        }
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lts_nn::descriptor::SpecBuilder;
    use lts_nn::grouping::even_blocks;

    fn conv_spec(out_c: usize, groups: usize) -> LayerSpec {
        SpecBuilder::new("n", (8, 4, 4)).conv("c", out_c, 3, 1, 1, groups).build().layers[0].clone()
    }

    #[test]
    fn dense_transition_is_all_to_all_broadcast() {
        let spec = conv_spec(8, 1);
        let producer = OwnershipMap::even(8, 16, 4); // 8 channels of 4x4
        let consumers = even_blocks(8, 4);
        let trace = transition_messages(&producer, &spec, &consumers, None, 2, 0);
        // 4 producers x 3 remote consumers.
        assert_eq!(trace.len(), 12);
        // Each producer owns 2 channels of 16 values at 2 B.
        assert!(trace.messages.iter().all(|m| m.bytes == 2 * 16 * 2));
        let total = trace.total_bytes();
        assert_eq!(total, dense_volume_bytes(&spec, 4, 2));
    }

    #[test]
    fn fully_grouped_conv_has_zero_traffic() {
        let spec = conv_spec(8, 4);
        let producer = OwnershipMap::even(8, 16, 4);
        let consumers = even_blocks(8, 4);
        let trace = transition_messages(&producer, &spec, &consumers, None, 2, 0);
        assert!(trace.is_empty());
        assert_eq!(dense_volume_bytes(&spec, 4, 2), 0);
    }

    #[test]
    fn partially_grouped_conv_stays_within_group_cores() {
        // 2 groups over 4 cores: group 0 = channels 0..4 = cores 0,1.
        let spec = conv_spec(8, 2);
        let producer = OwnershipMap::even(8, 16, 4);
        let consumers = even_blocks(8, 4);
        let trace = transition_messages(&producer, &spec, &consumers, None, 2, 0);
        for m in &trace.messages {
            let same_half = (m.src < 2) == (m.dst < 2);
            assert!(same_half, "{} -> {} crosses groups", m.src, m.dst);
        }
        assert_eq!(trace.total_bytes(), dense_volume_bytes(&spec, 4, 2));
    }

    #[test]
    fn sparse_weights_suppress_exactly_the_zero_blocks() {
        let spec = conv_spec(8, 1);
        let producer = OwnershipMap::even(8, 16, 4);
        let consumers = even_blocks(8, 4);
        let layout = GroupLayout::new(8, 8, 9, 4);
        // All weights zero except group (producer 1 -> consumer 0).
        let mut w = vec![0.0f32; layout.weight_len()];
        layout.visit_group(1, 0, |idx| w[idx] = 0.5);
        let trace = transition_messages(&producer, &spec, &consumers, Some((&layout, &w)), 2, 0);
        assert_eq!(trace.len(), 1);
        assert_eq!(trace.messages[0].src, 1);
        assert_eq!(trace.messages[0].dst, 0);
        // Producer 1 owns channels 2..4 -> 2 units of 32 B.
        assert_eq!(trace.messages[0].bytes, 2 * 16 * 2);
    }

    #[test]
    fn partially_zero_group_sends_only_used_channels() {
        let spec = conv_spec(8, 1);
        let producer = OwnershipMap::even(8, 16, 4);
        let consumers = even_blocks(8, 4);
        let layout = GroupLayout::new(8, 8, 9, 4);
        let mut w = vec![0.0f32; layout.weight_len()];
        // Consumer core 3 (out channels 6..8) uses only input channel 2
        // (owned by producer 1): set one tap of weight (o=6, i=2).
        w[(6 * 8 + 2) * 9 + 4] = 1.0;
        let trace = transition_messages(&producer, &spec, &consumers, Some((&layout, &w)), 2, 0);
        assert_eq!(trace.len(), 1);
        assert_eq!(trace.messages[0].bytes, 16 * 2); // a single channel
    }

    #[test]
    fn sparse_linear_after_flatten_respects_uneven_ownership() {
        // 5 channels of 4 px over 2 cores (3/2 channels -> 12/8 values).
        let producer = OwnershipMap::even(5, 4, 2).flattened();
        let spec = SpecBuilder::new("n", (20, 1, 1)).linear("ip", 6).build().layers[0].clone();
        let consumers = even_blocks(6, 2);
        let layout = GroupLayout::with_blocks(1, consumers.clone(), producer.blocks().to_vec());
        // Only consumer core 1 uses inputs, and only input 0 (owned by 0).
        let mut w = vec![0.0f32; layout.weight_len()];
        w[3 * 20] = 1.0; // weight (o=3, i=0); o=3 owned by core 1
        let trace = transition_messages(&producer, &spec, &consumers, Some((&layout, &w)), 2, 0);
        assert_eq!(trace.len(), 1);
        assert_eq!(trace.messages[0].src, 0);
        assert_eq!(trace.messages[0].dst, 1);
        assert_eq!(trace.messages[0].bytes, 2); // one flat value
    }

    #[test]
    fn sparse_traffic_never_exceeds_dense() {
        let spec = conv_spec(8, 1);
        let producer = OwnershipMap::even(8, 16, 4);
        let consumers = even_blocks(8, 4);
        let layout = GroupLayout::new(8, 8, 9, 4);
        let w = vec![1.0f32; layout.weight_len()];
        let dense = transition_messages(&producer, &spec, &consumers, None, 2, 0);
        let sparse = transition_messages(&producer, &spec, &consumers, Some((&layout, &w)), 2, 0);
        assert_eq!(dense.total_bytes(), sparse.total_bytes());
    }

    #[test]
    fn group_level_volume_bounds_per_unit_volume() {
        let spec = conv_spec(8, 1);
        let producer = OwnershipMap::even(8, 16, 4);
        let consumers = even_blocks(8, 4);
        let layout = GroupLayout::new(8, 8, 9, 4);
        // One nonzero weight: per-unit sends 1 channel; per-group sends
        // the producer's whole 2-channel block.
        let mut w = vec![0.0f32; layout.weight_len()];
        w[(6 * 8 + 2) * 9] = 1.0; // (o=6 ∈ core 3, i=2 ∈ core 1)
        let per_unit = transition_messages(&producer, &spec, &consumers, Some((&layout, &w)), 2, 0)
            .total_bytes();
        let per_group = group_level_volume_bytes(&producer, &layout, &w, 2);
        assert_eq!(per_unit, 16 * 2);
        assert_eq!(per_group, 2 * 16 * 2);
        assert!(per_group >= per_unit);
        // All-zero weights: both are zero.
        let zeros = vec![0.0f32; layout.weight_len()];
        assert_eq!(group_level_volume_bytes(&producer, &layout, &zeros, 2), 0);
    }

    #[test]
    fn pool_layers_generate_no_traffic() {
        let spec = SpecBuilder::new("n", (8, 4, 4)).pool("p", 2, 2).build().layers[0].clone();
        let producer = OwnershipMap::even(8, 16, 4);
        let consumers = even_blocks(8, 4);
        let trace = transition_messages(&producer, &spec, &consumers, None, 2, 0);
        assert!(trace.is_empty());
    }
}
