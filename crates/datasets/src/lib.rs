//! Synthetic dataset generators standing in for MNIST, CIFAR-10, and
//! ImageNet in the Learn-to-Scale reproduction.
//!
//! Real datasets cannot ship with this repository (ImageNet alone is
//! ~150 GB). The paper's mechanisms, however, depend only on the networks
//! being over-parameterized classifiers with redundancy to shed — not on
//! the specific pixels. These generators produce class-conditional image
//! distributions with controllable difficulty that put the networks in the
//! same regime: high baseline accuracy for MNIST-like tasks, lower for the
//! ImageNet-like ones (see `DESIGN.md`, "Substitutions").
//!
//! Every dataset is deterministic in its seed.
//!
//! # Examples
//!
//! ```
//! use lts_datasets::presets;
//!
//! let data = presets::synth_mnist(128, 32, 7);
//! assert_eq!(data.train.len(), 128);
//! assert_eq!(data.test.len(), 32);
//! assert_eq!(data.train.images.shape().dims(), &[128, 1, 28, 28]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::print_stdout, clippy::print_stderr)]

pub mod dataset;
pub mod presets;
pub mod synth;

pub use dataset::{Dataset, TrainTest};
pub use synth::SynthConfig;
