//! In-memory labelled image datasets.

use lts_tensor::{Shape, Tensor};
use serde::{Deserialize, Serialize};

/// A labelled in-memory dataset: an NCHW image tensor plus one class label
/// per image.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// Images `[n, c, h, w]`.
    pub images: Tensor,
    /// One class index per image.
    pub labels: Vec<usize>,
}

impl Dataset {
    /// Wraps images and labels.
    ///
    /// # Panics
    ///
    /// Panics if the label count differs from the image batch dimension or
    /// the image tensor is not rank 4.
    pub fn new(images: Tensor, labels: Vec<usize>) -> Self {
        assert_eq!(images.shape().rank(), 4, "images must be NCHW");
        assert_eq!(images.shape().dim(0), labels.len(), "one label per image");
        Self { images, labels }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Image dims `(c, h, w)`.
    pub fn image_dims(&self) -> (usize, usize, usize) {
        let s = self.images.shape();
        (s.dim(1), s.dim(2), s.dim(3))
    }

    /// Number of distinct classes (max label + 1; `0` when empty).
    pub fn classes(&self) -> usize {
        self.labels.iter().max().map_or(0, |&m| m + 1)
    }

    /// A copy of the first `n` samples (or all if fewer).
    pub fn take(&self, n: usize) -> Dataset {
        let n = n.min(self.len());
        let (c, h, w) = self.image_dims();
        let sample = c * h * w;
        let images =
            Tensor::from_vec(Shape::d4(n, c, h, w), self.images.as_slice()[..n * sample].to_vec())
                .expect("slice length matches shape by construction");
        Dataset::new(images, self.labels[..n].to_vec())
    }

    /// Splits into `(first k, rest)`.
    ///
    /// # Panics
    ///
    /// Panics if `k > len`.
    pub fn split_at(&self, k: usize) -> (Dataset, Dataset) {
        assert!(k <= self.len(), "split point {k} beyond {} samples", self.len());
        let (c, h, w) = self.image_dims();
        let sample = c * h * w;
        let head =
            Tensor::from_vec(Shape::d4(k, c, h, w), self.images.as_slice()[..k * sample].to_vec())
                .expect("sized by construction");
        let tail = Tensor::from_vec(
            Shape::d4(self.len() - k, c, h, w),
            self.images.as_slice()[k * sample..].to_vec(),
        )
        .expect("sized by construction");
        (
            Dataset::new(head, self.labels[..k].to_vec()),
            Dataset::new(tail, self.labels[k..].to_vec()),
        )
    }
}

/// A train/test pair drawn from the same distribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainTest {
    /// Training split.
    pub train: Dataset,
    /// Held-out test split.
    pub test: Dataset,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize) -> Dataset {
        let images = Tensor::zeros(Shape::d4(n, 1, 2, 2));
        Dataset::new(images, (0..n).map(|i| i % 3).collect())
    }

    #[test]
    fn classes_is_max_label_plus_one() {
        assert_eq!(toy(5).classes(), 3);
        assert_eq!(toy(1).classes(), 1);
    }

    #[test]
    fn take_limits_sample_count() {
        let d = toy(10);
        assert_eq!(d.take(4).len(), 4);
        assert_eq!(d.take(99).len(), 10);
    }

    #[test]
    fn split_partitions_samples() {
        let d = toy(10);
        let (a, b) = d.split_at(7);
        assert_eq!(a.len(), 7);
        assert_eq!(b.len(), 3);
        assert_eq!(a.labels[6], 6 % 3);
        assert_eq!(b.labels[0], 7 % 3);
    }

    #[test]
    #[should_panic(expected = "one label per image")]
    fn label_count_must_match() {
        Dataset::new(Tensor::zeros(Shape::d4(2, 1, 2, 2)), vec![0]);
    }
}
