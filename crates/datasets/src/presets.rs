//! Named dataset presets matching the paper's benchmarks.
//!
//! | Preset | Stands in for | Dims | Difficulty |
//! |---|---|---|---|
//! | [`synth_mnist`] | MNIST | 1×28×28, 10 classes | easy (baselines ≥ 98 %) |
//! | [`synth_cifar10`] | CIFAR-10 | 3×32×32, 10 classes | medium |
//! | [`synth_imagenet10`] | ImageNet10 (ILSVRC subset) | 3×16×16, 10 classes | medium-hard |
//! | [`synth_imagenet_small`] | ImageNet (CaffeNet rows) | 3×32×32, 10 classes | hard (baseline ~55 %) |

use crate::dataset::TrainTest;
use crate::synth::{SynthConfig, SynthGenerator};
use lts_tensor::init;

fn build(config: SynthConfig, n_train: usize, n_test: usize, seed: u64) -> TrainTest {
    let generator = SynthGenerator::new(config, seed);
    let mut rng = init::rng(seed.wrapping_mul(0x9E37_79B9).wrapping_add(1));
    generator.train_test(n_train, n_test, &mut rng)
}

/// MNIST stand-in: 1×28×28 greyscale, 10 classes, easy.
pub fn synth_mnist(n_train: usize, n_test: usize, seed: u64) -> TrainTest {
    build(SynthConfig::easy((1, 28, 28), 10), n_train, n_test, seed)
}

/// CIFAR-10 stand-in: 3×32×32 colour, 10 classes, medium difficulty
/// (noisy enough that over-pruning costs accuracy, so the SS/SS_Mask
/// accuracy constraint binds as it does on the real dataset).
pub fn synth_cifar10(n_train: usize, n_test: usize, seed: u64) -> TrainTest {
    let config =
        SynthConfig { noise_sigma: 2.0, translate_px: 3, ..SynthConfig::easy((3, 32, 32), 10) };
    build(config, n_train, n_test, seed)
}

/// ImageNet10 stand-in (downscaled to 3×16×16; see `DESIGN.md`).
pub fn synth_imagenet10(n_train: usize, n_test: usize, seed: u64) -> TrainTest {
    let config = SynthConfig {
        noise_sigma: 1.6,
        translate_px: 2,
        gain_jitter: 0.35,
        ..SynthConfig::hard((3, 16, 16), 10)
    };
    build(config, n_train, n_test, seed)
}

/// ImageNet stand-in for the CaffeNet rows (3×32×32, hard).
pub fn synth_imagenet_small(n_train: usize, n_test: usize, seed: u64) -> TrainTest {
    let config = SynthConfig { noise_sigma: 2.2, ..SynthConfig::hard((3, 32, 32), 10) };
    build(config, n_train, n_test, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_documented_geometry() {
        let m = synth_mnist(10, 4, 0);
        assert_eq!(m.train.image_dims(), (1, 28, 28));
        let c = synth_cifar10(10, 4, 0);
        assert_eq!(c.train.image_dims(), (3, 32, 32));
        let i10 = synth_imagenet10(10, 4, 0);
        assert_eq!(i10.train.image_dims(), (3, 16, 16));
        let inet = synth_imagenet_small(10, 4, 0);
        assert_eq!(inet.train.image_dims(), (3, 32, 32));
    }

    #[test]
    fn presets_are_deterministic_per_seed() {
        let a = synth_mnist(8, 2, 5);
        let b = synth_mnist(8, 2, 5);
        assert_eq!(a, b);
        let c = synth_mnist(8, 2, 6);
        assert_ne!(a, c);
    }

    #[test]
    fn train_and_test_are_different_draws() {
        let d = synth_cifar10(10, 10, 1);
        assert_ne!(d.train.images, d.test.images);
        assert_eq!(d.train.classes(), 10);
    }
}
