//! Class-conditional synthetic image generator.
//!
//! Each class owns a smooth random template; a sample is the template under
//! random gain, random small translation, and additive Gaussian noise.
//! Difficulty is controlled by the noise level and translation range:
//! low-noise configurations emulate MNIST-like tasks (a trained LeNet/MLP
//! reaches ≥ 98 %); high-noise, high-jitter configurations emulate
//! ImageNet-like difficulty (accuracies around 50–80 %, like the paper's
//! CaffeNet and ConvNet rows).

use crate::dataset::{Dataset, TrainTest};
use lts_tensor::{init, Shape, Tensor};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Parameters of a synthetic classification task.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SynthConfig {
    /// Image dims `(c, h, w)`.
    pub dims: (usize, usize, usize),
    /// Number of classes.
    pub classes: usize,
    /// Standard deviation of the additive Gaussian pixel noise.
    pub noise_sigma: f32,
    /// Multiplicative gain is drawn from `[1 - gain_jitter, 1 + gain_jitter]`.
    pub gain_jitter: f32,
    /// Maximum translation (pixels, each axis, uniform in `±translate_px`).
    pub translate_px: usize,
    /// Smoothing passes applied to the class templates (higher = smoother,
    /// more low-frequency class structure).
    pub smooth_passes: usize,
}

impl SynthConfig {
    /// An easy, MNIST-like task on the given dims (trained baselines land
    /// in the high-90s, like MNIST — high enough to be "solved", noisy
    /// enough that over-pruning costs accuracy).
    pub fn easy(dims: (usize, usize, usize), classes: usize) -> Self {
        Self {
            dims,
            classes,
            noise_sigma: 1.0,
            gain_jitter: 0.25,
            translate_px: 2,
            smooth_passes: 2,
        }
    }

    /// A hard, ImageNet-like task on the given dims (baselines around
    /// 50–80 %, like the paper's ConvNet/CaffeNet rows).
    pub fn hard(dims: (usize, usize, usize), classes: usize) -> Self {
        Self {
            dims,
            classes,
            noise_sigma: 1.9,
            gain_jitter: 0.5,
            translate_px: 3,
            smooth_passes: 1,
        }
    }
}

/// Generates class templates and samples from them.
///
/// # Examples
///
/// ```
/// use lts_datasets::synth::{SynthConfig, SynthGenerator};
/// use lts_tensor::init;
///
/// let gen = SynthGenerator::new(SynthConfig::easy((1, 8, 8), 4), 7);
/// let mut rng = init::rng(0);
/// let data = gen.dataset(16, &mut rng);
/// assert_eq!(data.len(), 16);
/// assert_eq!(data.classes(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct SynthGenerator {
    config: SynthConfig,
    /// One `[c, h, w]` template per class.
    templates: Vec<Tensor>,
}

impl SynthGenerator {
    /// Builds the per-class templates deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `classes == 0` or the image has no pixels.
    pub fn new(config: SynthConfig, seed: u64) -> Self {
        assert!(config.classes > 0, "need at least one class");
        let (c, h, w) = config.dims;
        assert!(c * h * w > 0, "image must have pixels");
        let mut rng = init::rng(seed);
        let templates = (0..config.classes)
            .map(|_| {
                let mut t = init::normal(Shape::d3(c, h, w), 0.0, 1.0, &mut rng);
                for _ in 0..config.smooth_passes {
                    t = smooth(&t);
                }
                normalize(&mut t);
                t
            })
            .collect();
        Self { config, templates }
    }

    /// The configuration used.
    pub fn config(&self) -> &SynthConfig {
        &self.config
    }

    /// The template of `class`.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range.
    pub fn template(&self, class: usize) -> &Tensor {
        &self.templates[class]
    }

    /// Draws one labelled sample.
    pub fn sample(&self, rng: &mut StdRng) -> (Tensor, usize) {
        let class = rng.gen_range(0..self.config.classes);
        (self.sample_of_class(class, rng), class)
    }

    /// Draws one sample of a specific class.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range.
    pub fn sample_of_class(&self, class: usize, rng: &mut StdRng) -> Tensor {
        let (c, h, w) = self.config.dims;
        let gain = 1.0 + rng.gen_range(-self.config.gain_jitter..=self.config.gain_jitter);
        let t = self.config.translate_px as isize;
        let (dy, dx) = if t > 0 { (rng.gen_range(-t..=t), rng.gen_range(-t..=t)) } else { (0, 0) };
        let template = &self.templates[class];
        let mut out = Tensor::zeros(Shape::d3(c, h, w));
        {
            let src = template.as_slice();
            let dst = out.as_mut_slice();
            for ch in 0..c {
                for y in 0..h {
                    let sy = y as isize - dy;
                    for x in 0..w {
                        let sx = x as isize - dx;
                        let v = if sy >= 0 && (sy as usize) < h && sx >= 0 && (sx as usize) < w {
                            src[(ch * h + sy as usize) * w + sx as usize]
                        } else {
                            0.0
                        };
                        dst[(ch * h + y) * w + x] = gain * v;
                    }
                }
            }
        }
        if self.config.noise_sigma > 0.0 {
            let noise = init::normal(Shape::d3(c, h, w), 0.0, self.config.noise_sigma, rng);
            lts_tensor::ops::axpy(1.0, &noise, &mut out).expect("same shape by construction");
        }
        // Per-sample standardization (zero mean, unit RMS) — the usual
        // dataset preprocessing; keeps activation scales sane regardless
        // of the configured noise level.
        let mean = lts_tensor::stats::mean(out.as_slice());
        out.map_inplace(|v| v - mean);
        let rms = lts_tensor::stats::rms(out.as_slice());
        if rms > 0.0 {
            lts_tensor::ops::scale(1.0 / rms, &mut out);
        }
        out
    }

    /// Generates a balanced dataset of `n` samples (classes round-robin,
    /// then shuffled by the caller if desired).
    pub fn dataset(&self, n: usize, rng: &mut StdRng) -> Dataset {
        let _probe = lts_obs::span("datasets.synth_dataset");
        let (c, h, w) = self.config.dims;
        let sample_len = c * h * w;
        let mut data = Vec::with_capacity(n * sample_len);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % self.config.classes;
            let img = self.sample_of_class(class, rng);
            data.extend_from_slice(img.as_slice());
            labels.push(class);
        }
        Dataset::new(
            Tensor::from_vec(Shape::d4(n, c, h, w), data).expect("sized by construction"),
            labels,
        )
    }

    /// Generates a train/test pair (`n_train` + `n_test` samples).
    pub fn train_test(&self, n_train: usize, n_test: usize, rng: &mut StdRng) -> TrainTest {
        TrainTest { train: self.dataset(n_train, rng), test: self.dataset(n_test, rng) }
    }
}

/// One 3×3 box-blur pass per channel (reflecting edges by clamping).
fn smooth(t: &Tensor) -> Tensor {
    let dims = t.shape().dims();
    let (c, h, w) = (dims[0], dims[1], dims[2]);
    let src = t.as_slice();
    let mut out = Tensor::zeros(t.shape().clone());
    let dst = out.as_mut_slice();
    for ch in 0..c {
        for y in 0..h {
            for x in 0..w {
                let mut acc = 0.0;
                let mut cnt = 0.0;
                for oy in -1isize..=1 {
                    for ox in -1isize..=1 {
                        let sy = (y as isize + oy).clamp(0, h as isize - 1) as usize;
                        let sx = (x as isize + ox).clamp(0, w as isize - 1) as usize;
                        acc += src[(ch * h + sy) * w + sx];
                        cnt += 1.0;
                    }
                }
                dst[(ch * h + y) * w + x] = acc / cnt;
            }
        }
    }
    out
}

/// Scales a template to unit RMS so task difficulty is set purely by the
/// noise sigma.
fn normalize(t: &mut Tensor) {
    let rms = lts_tensor::stats::rms(t.as_slice());
    if rms > 0.0 {
        lts_tensor::ops::scale(1.0 / rms, t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(noise: f32) -> SynthGenerator {
        let config = SynthConfig {
            dims: (1, 8, 8),
            classes: 4,
            noise_sigma: noise,
            gain_jitter: 0.0,
            translate_px: 0,
            smooth_passes: 1,
        };
        SynthGenerator::new(config, 42)
    }

    #[test]
    fn templates_are_deterministic_and_distinct() {
        let a = gen(0.0);
        let b = gen(0.0);
        assert_eq!(a.template(0), b.template(0));
        assert_ne!(a.template(0), a.template(1));
    }

    #[test]
    fn noiseless_sample_is_standardized_template() {
        let g = gen(0.0);
        let mut rng = init::rng(1);
        let s = g.sample_of_class(2, &mut rng);
        // Standardization: zero mean, unit RMS.
        assert!(lts_tensor::stats::mean(s.as_slice()).abs() < 1e-5);
        assert!((lts_tensor::stats::rms(s.as_slice()) - 1.0).abs() < 1e-4);
        // Perfectly correlated with the template (same direction after
        // centering).
        let t = g.template(2);
        let t_mean = lts_tensor::stats::mean(t.as_slice());
        let dot: f32 = s.as_slice().iter().zip(t.as_slice()).map(|(&a, &b)| a * (b - t_mean)).sum();
        let norm = lts_tensor::stats::l2_norm(s.as_slice())
            * lts_tensor::stats::l2_norm(
                &t.as_slice().iter().map(|&v| v - t_mean).collect::<Vec<_>>(),
            );
        assert!(dot / norm > 0.999, "correlation {}", dot / norm);
    }

    #[test]
    fn templates_have_unit_rms() {
        let g = gen(0.0);
        let rms = lts_tensor::stats::rms(g.template(0).as_slice());
        assert!((rms - 1.0).abs() < 1e-4);
    }

    #[test]
    fn dataset_is_balanced_round_robin() {
        let g = gen(0.5);
        let mut rng = init::rng(2);
        let d = g.dataset(8, &mut rng);
        assert_eq!(d.labels, vec![0, 1, 2, 3, 0, 1, 2, 3]);
        assert_eq!(d.images.shape().dims(), &[8, 1, 8, 8]);
    }

    #[test]
    fn nearest_template_classifies_low_noise_samples() {
        // With modest noise the nearest-template rule must beat chance by a
        // wide margin — this is what makes the task learnable.
        let g = gen(0.4);
        let mut rng = init::rng(3);
        let d = g.dataset(80, &mut rng);
        let mut correct = 0;
        for i in 0..80 {
            let img = d.images.image(i);
            let mut best = (f32::INFINITY, 0usize);
            for cls in 0..4 {
                let diff = lts_tensor::ops::sub(&img, g.template(cls)).unwrap();
                let dist = lts_tensor::stats::l2_norm(diff.as_slice());
                if dist < best.0 {
                    best = (dist, cls);
                }
            }
            if best.1 == d.labels[i] {
                correct += 1;
            }
        }
        assert!(correct > 70, "nearest-template got {correct}/80");
    }

    #[test]
    fn translation_moves_content() {
        let config = SynthConfig {
            dims: (1, 8, 8),
            classes: 1,
            noise_sigma: 0.0,
            gain_jitter: 0.0,
            translate_px: 2,
            smooth_passes: 0,
        };
        let g = SynthGenerator::new(config, 7);
        let mut rng = init::rng(0);
        // Across several draws at least one must differ from the template.
        let template = g.template(0).clone();
        let moved = (0..10).any(|_| g.sample_of_class(0, &mut rng) != template);
        assert!(moved);
    }

    #[test]
    fn train_test_sizes() {
        let g = gen(0.2);
        let mut rng = init::rng(5);
        let tt = g.train_test(12, 6, &mut rng);
        assert_eq!(tt.train.len(), 12);
        assert_eq!(tt.test.len(), 6);
    }
}
