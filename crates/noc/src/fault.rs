//! Fault injection: permanent topology failures and transient flit faults.
//!
//! The model is *seeded and stateless*: every transient fault decision is
//! a pure hash of `(seed, packet, attempt, flit, link)`, so the injected
//! fault schedule is a function of the configuration alone — independent
//! of simulation event order, worker count, or how many times a cycle is
//! re-examined. Two runs with the same seed and traffic see byte-identical
//! faults; [`FaultModel::none`] is the identity and leaves the simulator's
//! fault-free path untouched.
//!
//! Permanent faults (dead routers, dead links) reshape the topology: the
//! simulator builds per-destination minimal detour routes over the
//! surviving graph (see [`plan_routes`]) and rejects traffic whose
//! endpoints become unreachable with [`NocError::Unreachable`]. Transient
//! faults (per-link flit drops and corruptions) *poison* the affected flit
//! rather than removing it — the flit keeps flowing so wormhole and
//! credit invariants hold — and the destination NIC discards the poisoned
//! packet on arrival, forcing a timeout-driven retransmission at the
//! source (bounded exponential backoff). The configured `max_cycles`
//! watchdog therefore bounds every faulty run: it either delivers or
//! returns a typed error.

use crate::config::{NocConfig, NocError};
use crate::packet::PacketId;
use crate::topology::{Direction, Topology};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Retransmission-protocol knobs (NIC-level, per packet).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetransmitConfig {
    /// Cycles from the moment a packet finishes injecting until its first
    /// retransmission fires, unless an acknowledgement arrives earlier.
    /// `0` derives a generous default from the [`NocConfig`] (several
    /// uncongested round trips).
    pub base_timeout: u64,
    /// Exponential backoff cap: attempt `k` waits
    /// `base_timeout << min(k, backoff_cap)` cycles.
    pub backoff_cap: u32,
    /// Extra cycles added to the modelled acknowledgement latency
    /// (processing overhead at both NICs).
    pub ack_overhead: u64,
    /// Maximum transmission attempts per packet (initial send + retries).
    /// `0` means unbounded: the NIC retries until the watchdog fires,
    /// which preserves delivery under arbitrarily lossy links. A positive
    /// bound makes a permanently unreachable destination surface as
    /// [`NocError::Unreachable`] instead of burning the cycle budget —
    /// the behaviour online fault recovery relies on.
    pub max_attempts: u32,
}

impl Default for RetransmitConfig {
    fn default() -> Self {
        Self { base_timeout: 0, backoff_cap: 6, ack_overhead: 4, max_attempts: 0 }
    }
}

/// A seeded, deterministic fault configuration for one simulation.
///
/// # Examples
///
/// ```
/// use lts_noc::FaultModel;
///
/// let fault = FaultModel::none().with_seed(7).drop_rate(0.01).kill_router(5);
/// assert!(fault.has_permanent() && fault.has_transient());
/// assert!(FaultModel::none().is_none());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultModel {
    /// Seed for all transient-fault draws.
    pub seed: u64,
    /// Routers that are permanently dead: they can neither inject, eject,
    /// nor forward traffic.
    pub dead_routers: Vec<usize>,
    /// Permanently dead links, named as `(node, direction)`. A dead link
    /// is dead in both directions regardless of which endpoint names it.
    pub dead_links: Vec<(usize, Direction)>,
    /// Per-link probability that a flit is silently dropped (modelled as
    /// poisoning: the packet arrives but fails its integrity check).
    pub flit_drop_prob: f64,
    /// Per-link probability that a flit is corrupted in transit.
    pub flit_corrupt_prob: f64,
    /// Retransmission protocol parameters.
    pub retransmit: RetransmitConfig,
}

impl FaultModel {
    /// The fault-free model: no dead hardware, zero fault probabilities.
    pub fn none() -> Self {
        Self {
            seed: 0,
            dead_routers: Vec::new(),
            dead_links: Vec::new(),
            flit_drop_prob: 0.0,
            flit_corrupt_prob: 0.0,
            retransmit: RetransmitConfig::default(),
        }
    }

    /// Sets the fault seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Marks a router as permanently dead. Repeated kills of the same
    /// router are deduplicated — the model stays a *set* of faults.
    #[must_use]
    pub fn kill_router(mut self, node: usize) -> Self {
        if !self.dead_routers.contains(&node) {
            self.dead_routers.push(node);
        }
        self
    }

    /// Marks a link as permanently dead (both directions). Repeated
    /// kills of the same `(node, dir)` pair are deduplicated.
    #[must_use]
    pub fn kill_link(mut self, node: usize, dir: Direction) -> Self {
        if !self.dead_links.contains(&(node, dir)) {
            self.dead_links.push((node, dir));
        }
        self
    }

    /// Kills a whole chiplet on an MCM package: every router on the
    /// chiplet dies, and the interposer seam links it terminates are
    /// severed explicitly (the seam endpoints die with the chiplet).
    ///
    /// # Panics
    ///
    /// Panics if `chiplet` is out of range for the package.
    #[must_use]
    pub fn kill_chiplet(mut self, topo: &crate::topology::McmTopology, chiplet: usize) -> Self {
        assert!(
            chiplet < Topology::chiplets(topo),
            "chiplet {chiplet} out of range for a {}-chiplet package",
            Topology::chiplets(topo)
        );
        for node in topo.chiplet_nodes(chiplet) {
            self = self.kill_router(node);
        }
        for (node, dir) in topo.chiplet_seam_links(chiplet) {
            self = self.kill_link(node, dir);
        }
        self
    }

    /// Kills the whole interposer seam between adjacent chiplets `a` and
    /// `b`: every seam link goes down in both directions, forcing traffic
    /// to detour over surviving seams (or fail typed if none remain).
    ///
    /// # Panics
    ///
    /// Panics if either chiplet id is out of range, or if the chiplets
    /// share no seam (they are not grid-adjacent).
    #[must_use]
    pub fn kill_seam(mut self, topo: &crate::topology::McmTopology, a: usize, b: usize) -> Self {
        let links = topo.seam_links(a, b);
        assert!(!links.is_empty(), "chiplets {a} and {b} share no interposer seam");
        for (node, dir) in links {
            self = self.kill_link(node, dir);
        }
        self
    }

    /// Sets the per-link flit drop probability.
    #[must_use]
    pub fn drop_rate(mut self, p: f64) -> Self {
        self.flit_drop_prob = p;
        self
    }

    /// Sets the per-link flit corruption probability.
    #[must_use]
    pub fn corrupt_rate(mut self, p: f64) -> Self {
        self.flit_corrupt_prob = p;
        self
    }

    /// Bounds the NIC to `max_attempts` transmission attempts per packet
    /// (see [`RetransmitConfig::max_attempts`]).
    #[must_use]
    pub fn retry_limit(mut self, max_attempts: u32) -> Self {
        self.retransmit.max_attempts = max_attempts;
        self
    }

    /// Whether this model injects no faults at all.
    pub fn is_none(&self) -> bool {
        !self.has_permanent() && !self.has_transient()
    }

    /// Whether any permanent (topology) faults are configured.
    pub fn has_permanent(&self) -> bool {
        !self.dead_routers.is_empty() || !self.dead_links.is_empty()
    }

    /// Whether any transient (per-flit) faults are configured.
    pub fn has_transient(&self) -> bool {
        self.flit_drop_prob > 0.0 || self.flit_corrupt_prob > 0.0
    }

    /// Whether `node`'s router is permanently dead.
    pub fn router_dead(&self, node: usize) -> bool {
        self.dead_routers.contains(&node)
    }

    /// Whether the link leaving `node` toward `dir` was *named* dead from
    /// this side. Topology code treats links as bidirectionally dead; see
    /// [`edge_dead`].
    pub fn link_dead(&self, node: usize, dir: Direction) -> bool {
        self.dead_links.contains(&(node, dir))
    }

    /// Validates the model against a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`NocError::BadConfig`] for probabilities outside `[0, 1]`
    /// (or NaN), out-of-range dead hardware, or a degenerate backoff.
    pub fn validate(&self, config: &NocConfig) -> Result<(), NocError> {
        let nodes = config.nodes();
        for (name, p) in
            [("flit_drop_prob", self.flit_drop_prob), ("flit_corrupt_prob", self.flit_corrupt_prob)]
        {
            if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                return Err(NocError::BadConfig(format!("{name} must be in [0, 1], got {p}")));
            }
        }
        for &r in &self.dead_routers {
            if r >= nodes {
                return Err(NocError::BadConfig(format!(
                    "dead router {r} out of range for {nodes} nodes"
                )));
            }
        }
        for &(n, d) in &self.dead_links {
            if n >= nodes {
                return Err(NocError::BadConfig(format!(
                    "dead link at node {n} out of range for {nodes} nodes"
                )));
            }
            if d == Direction::Local {
                return Err(NocError::BadConfig(
                    "dead link direction must be a mesh direction, not Local".into(),
                ));
            }
        }
        if self.retransmit.backoff_cap > 32 {
            return Err(NocError::BadConfig(format!(
                "backoff_cap {} would overflow the timeout (max 32)",
                self.retransmit.backoff_cap
            )));
        }
        if self.retransmit.max_attempts > 1 << 20 {
            return Err(NocError::BadConfig(format!(
                "max_attempts {} is not a meaningful retry bound",
                self.retransmit.max_attempts
            )));
        }
        Ok(())
    }

    /// Deterministic draw: is this flit dropped on this link traversal?
    pub fn drops_flit(&self, packet: PacketId, attempt: u32, seq: u64, link: u64) -> bool {
        self.flit_drop_prob > 0.0
            && unit_draw(self.seed, 0x9e37_79b9, packet, attempt, seq, link) < self.flit_drop_prob
    }

    /// Deterministic draw: is this flit corrupted on this link traversal?
    pub fn corrupts_flit(&self, packet: PacketId, attempt: u32, seq: u64, link: u64) -> bool {
        self.flit_corrupt_prob > 0.0
            && unit_draw(self.seed, 0x85eb_ca6b, packet, attempt, seq, link)
                < self.flit_corrupt_prob
    }
}

/// splitmix64 finalizer: a cheap, well-mixed 64-bit permutation.
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Hashes a fault-event identity to a uniform value in `[0, 1)`.
fn unit_draw(seed: u64, salt: u64, packet: PacketId, attempt: u32, seq: u64, link: u64) -> f64 {
    let mut h = mix64(seed ^ salt);
    for v in [packet, u64::from(attempt), seq, link] {
        h = mix64(h ^ v.wrapping_mul(0xff51_afd7_ed55_8ccd));
    }
    // 53 high bits → [0, 1) with full double precision.
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Whether the physical link from `node` toward `dir` is unusable — either
/// endpoint named it dead, or either endpoint router is dead.
pub fn edge_dead<T: Topology>(fault: &FaultModel, topo: &T, node: usize, dir: Direction) -> bool {
    if fault.router_dead(node) || fault.link_dead(node, dir) {
        return true;
    }
    match topo.neighbor(node, dir) {
        Some(nb) => fault.router_dead(nb) || fault.link_dead(nb, dir.opposite()),
        None => true,
    }
}

/// Builds the fault-aware next-hop table over the surviving topology:
/// entry `here * nodes + dst` is the output direction at `here` toward
/// `dst` (`Local` when `here == dst`), or `None` when `dst` is unreachable
/// from `here` or either endpoint is dead.
///
/// Routes are minimal over the surviving graph, with ties broken toward
/// the XY dimension-ordered direction (then port order), so the table
/// degenerates to plain XY routing on a fault-free topology.
///
/// # Panics
///
/// Panics if the fault model names a router or link endpoint outside the
/// topology: an out-of-range id would silently match nothing and leave
/// the intended fault uninjected, which is worse than failing loudly.
pub fn plan_routes<T: Topology>(topo: &T, fault: &FaultModel) -> Vec<Option<Direction>> {
    let n = topo.nodes();
    for &r in &fault.dead_routers {
        assert!(r < n, "dead router {r} out of range for a {n}-node topology");
    }
    for &(node, _) in &fault.dead_links {
        assert!(node < n, "dead link at node {node} out of range for a {n}-node topology");
    }
    let mesh_dirs = [Direction::North, Direction::East, Direction::South, Direction::West];
    let mut table = vec![None; n * n];
    for dst in 0..n {
        if fault.router_dead(dst) {
            continue;
        }
        // BFS from the destination over surviving links (symmetric graph).
        let mut dist = vec![usize::MAX; n];
        dist[dst] = 0;
        let mut queue = VecDeque::from([dst]);
        while let Some(v) = queue.pop_front() {
            for dir in mesh_dirs {
                if edge_dead(fault, topo, v, dir) {
                    continue;
                }
                let Some(u) = topo.neighbor(v, dir) else { continue };
                if dist[u] == usize::MAX {
                    dist[u] = dist[v] + 1;
                    queue.push_back(u);
                }
            }
        }
        for here in 0..n {
            if dist[here] == usize::MAX {
                continue;
            }
            if here == dst {
                table[here * n + dst] = Some(Direction::Local);
                continue;
            }
            let prefer = topo.route_xy(here, dst);
            let mut choice = None;
            for dir in mesh_dirs {
                if edge_dead(fault, topo, here, dir) {
                    continue;
                }
                let Some(nb) = topo.neighbor(here, dir) else { continue };
                if dist[nb] != usize::MAX && dist[nb] + 1 == dist[here] {
                    if dir == prefer {
                        choice = Some(dir);
                        break;
                    }
                    if choice.is_none() {
                        choice = Some(dir);
                    }
                }
            }
            debug_assert!(choice.is_some(), "finite BFS distance implies a next hop");
            table[here * n + dst] = choice;
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{McmTopology, Mesh2d};

    #[test]
    fn none_is_none() {
        let f = FaultModel::none();
        assert!(f.is_none());
        assert!(!f.has_permanent());
        assert!(!f.has_transient());
        assert!(f.validate(&NocConfig::paper_16core()).is_ok());
    }

    #[test]
    fn validation_rejects_bad_probabilities() {
        let c = NocConfig::paper_16core();
        assert!(FaultModel::none().drop_rate(1.5).validate(&c).is_err());
        assert!(FaultModel::none().drop_rate(-0.1).validate(&c).is_err());
        assert!(FaultModel::none().corrupt_rate(f64::NAN).validate(&c).is_err());
        assert!(FaultModel::none().drop_rate(1.0).validate(&c).is_ok());
    }

    #[test]
    fn validation_rejects_out_of_range_hardware() {
        let c = NocConfig::paper_16core();
        assert!(FaultModel::none().kill_router(16).validate(&c).is_err());
        assert!(FaultModel::none().kill_router(15).validate(&c).is_ok());
        assert!(FaultModel::none().kill_link(16, Direction::East).validate(&c).is_err());
        assert!(FaultModel::none().kill_link(0, Direction::Local).validate(&c).is_err());
        let mut bad = FaultModel::none();
        bad.retransmit.backoff_cap = 40;
        assert!(bad.validate(&c).is_err());
    }

    #[test]
    fn fault_draws_are_deterministic_and_seed_sensitive() {
        let f = FaultModel::none().with_seed(42).drop_rate(0.5);
        let a: Vec<bool> = (0..64).map(|s| f.drops_flit(3, 0, s, 7)).collect();
        let b: Vec<bool> = (0..64).map(|s| f.drops_flit(3, 0, s, 7)).collect();
        assert_eq!(a, b);
        let g = FaultModel::none().with_seed(43).drop_rate(0.5);
        let c: Vec<bool> = (0..64).map(|s| g.drops_flit(3, 0, s, 7)).collect();
        assert_ne!(a, c, "different seeds should produce different schedules");
        // Rate 0 never fires; rate 1 always fires.
        assert!(!FaultModel::none().drops_flit(0, 0, 0, 0));
        assert!(FaultModel::none().drop_rate(1.0).drops_flit(0, 0, 0, 0));
    }

    #[test]
    fn draw_rate_roughly_matches_probability() {
        let f = FaultModel::none().with_seed(9).drop_rate(0.25);
        let hits =
            (0..4000).filter(|&s| f.drops_flit(s / 32, 0, s % 32, (s % 60) + 1)).count() as f64;
        let rate = hits / 4000.0;
        assert!((rate - 0.25).abs() < 0.05, "empirical rate {rate}");
    }

    #[test]
    fn fault_free_routes_match_xy() {
        let mesh = Mesh2d::new(4, 4);
        let table = plan_routes(&mesh, &FaultModel::none());
        for here in 0..16 {
            for dst in 0..16 {
                assert_eq!(table[here * 16 + dst], Some(mesh.route_xy(here, dst)));
            }
        }
    }

    #[test]
    fn routes_detour_around_a_dead_link() {
        let mesh = Mesh2d::new(4, 4);
        // Kill the link 0 -> 1. XY would send 0 -> 3 straight East.
        let f = FaultModel::none().kill_link(0, Direction::East);
        let table = plan_routes(&mesh, &f);
        assert_eq!(table[3], Some(Direction::South), "0->3 must detour via row 1");
        // A single dead link leaves every pair reachable.
        assert!(table.iter().all(|e| e.is_some()));
    }

    #[test]
    fn dead_router_partitions_a_line_mesh() {
        let mesh = Mesh2d::new(4, 1);
        let f = FaultModel::none().kill_router(1);
        let table = plan_routes(&mesh, &f);
        assert_eq!(table[3], None, "0 -> 3 crosses the dead router");
        assert_eq!(table[2 * 4 + 3], Some(Direction::East), "2 -> 3 unaffected");
        assert_eq!(table[4 + 2], None, "dead endpoints have no routes");
    }

    #[test]
    fn mcm_routes_detour_around_a_dead_interposer_link() {
        // 2x1 grid of 2x2 chiplets: seam links are 1->2 and 5->6.
        let mcm = McmTopology::new(2, 2, 2, 1);
        let table = plan_routes(&mcm, &FaultModel::none());
        let n = Topology::nodes(&mcm);
        for here in 0..n {
            for dst in 0..n {
                assert_eq!(table[here * n + dst], Some(mcm.route_xy(here, dst)));
            }
        }
        // Kill the top seam link: traffic 1 -> 2 must detour over the
        // bottom seam (South first).
        let f = FaultModel::none().kill_link(1, Direction::East);
        let table = plan_routes(&mcm, &f);
        assert_eq!(table[n + 2], Some(Direction::South));
        assert!(table.iter().all(|e| e.is_some()), "one dead seam link keeps all pairs reachable");
    }

    #[test]
    fn builders_dedupe_repeated_kills() {
        let f = FaultModel::none()
            .kill_router(3)
            .kill_router(3)
            .kill_link(0, Direction::East)
            .kill_link(0, Direction::East)
            .kill_router(3);
        assert_eq!(f.dead_routers, vec![3]);
        assert_eq!(f.dead_links, vec![(0, Direction::East)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn plan_routes_panics_on_out_of_range_router() {
        let mesh = Mesh2d::new(4, 4);
        let _ = plan_routes(&mesh, &FaultModel::none().kill_router(16));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn plan_routes_panics_on_out_of_range_link() {
        let mesh = Mesh2d::new(4, 4);
        let _ = plan_routes(&mesh, &FaultModel::none().kill_link(99, Direction::East));
    }

    #[test]
    fn kill_chiplet_expands_to_routers_and_seam_endpoints() {
        // 2x1 grid of 2x2 chiplets: chiplet 1 is nodes {2, 3, 6, 7} and
        // its seam endpoints are the West links back toward chiplet 0.
        let mcm = McmTopology::new(2, 2, 2, 1);
        let f = FaultModel::none().kill_chiplet(&mcm, 1);
        assert_eq!(f.dead_routers, mcm.chiplet_nodes(1));
        assert_eq!(f.dead_links, vec![(2, Direction::West), (6, Direction::West)]);
        // Survivors on chiplet 0 still reach each other.
        let n = Topology::nodes(&mcm);
        let table = plan_routes(&mcm, &f);
        for &a in &mcm.chiplet_nodes(0) {
            for &b in &mcm.chiplet_nodes(0) {
                assert!(table[a * n + b].is_some(), "{a} -> {b} must survive the chiplet loss");
            }
        }
        for &dead in &f.dead_routers {
            assert_eq!(table[dead], None, "routes into the dead chiplet must vanish");
        }
    }

    #[test]
    fn kill_seam_severs_every_interposer_link_between_two_chiplets() {
        // 2x1 grid of 2x2 chiplets: the seam is {1<->2, 5<->6}. Killing
        // it disconnects the package (no other seam exists).
        let mcm = McmTopology::new(2, 2, 2, 1);
        let f = FaultModel::none().kill_seam(&mcm, 0, 1);
        assert_eq!(f.dead_links, vec![(1, Direction::East), (5, Direction::East)]);
        let n = Topology::nodes(&mcm);
        let table = plan_routes(&mcm, &f);
        assert_eq!(table[2], None, "no surviving seam: chiplets are partitioned");
        assert!(table[n + 5].is_some(), "intra-chiplet traffic is untouched");
        // On a 2x2 package grid the same seam loss reroutes instead.
        let quad = McmTopology::new(2, 2, 2, 2);
        let table = plan_routes(&quad, &FaultModel::none().kill_seam(&quad, 0, 1));
        assert!(table.iter().all(|e| e.is_some()), "a 2x2 grid detours around one dead seam");
    }

    #[test]
    #[should_panic(expected = "share no interposer seam")]
    fn kill_seam_panics_on_non_adjacent_chiplets() {
        // Chiplets 0 and 3 sit on a package diagonal: no shared seam.
        let quad = McmTopology::new(2, 2, 2, 2);
        let _ = FaultModel::none().kill_seam(&quad, 0, 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn kill_chiplet_panics_on_out_of_range_chiplet() {
        let mcm = McmTopology::new(2, 2, 2, 1);
        let _ = FaultModel::none().kill_chiplet(&mcm, 2);
    }

    #[test]
    fn dead_link_is_bidirectional() {
        let mesh = Mesh2d::new(2, 1);
        let f = FaultModel::none().kill_link(1, Direction::West);
        assert!(edge_dead(&f, &mesh, 0, Direction::East));
        assert!(edge_dead(&f, &mesh, 1, Direction::West));
        let table = plan_routes(&mesh, &f);
        assert_eq!(table[1], None);
        assert_eq!(table[2], None);
    }
}
