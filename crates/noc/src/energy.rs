//! DSENT-style per-event NoC energy model.
//!
//! DSENT decomposes router+link energy into per-event costs; we use the
//! same decomposition with 32 nm-class coefficients for a 512-bit
//! (64-byte) flit datapath. Absolute joules are indicative; the paper's
//! reported metric — the energy *ratio* between parallelization schemes —
//! depends only on relative event counts, which the flit simulator
//! provides exactly.

use crate::stats::{EventCounts, SimReport};
use serde::{Deserialize, Serialize};

/// Per-event energy coefficients in picojoules.
///
/// # Examples
///
/// ```
/// use lts_noc::traffic::Message;
/// use lts_noc::{EnergyModel, NocConfig, Simulator};
///
/// # fn main() -> Result<(), lts_noc::NocError> {
/// let mut sim = Simulator::new(NocConfig::paper_16core())?;
/// let report = sim.run(&[Message::new(0, 5, 4096, 0)])?;
/// let energy = EnergyModel::default().report(&report, 16);
/// assert!(energy.dynamic_pj() > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Writing one flit into an input buffer.
    pub buffer_write_pj: f64,
    /// Reading one flit out of an input buffer.
    pub buffer_read_pj: f64,
    /// One flit through the crossbar.
    pub crossbar_pj: f64,
    /// One arbitration decision (VC or switch).
    pub arbiter_pj: f64,
    /// One flit across one inter-router link (~1 mm at 32 nm).
    pub link_pj: f64,
    /// Static/leakage power per router in milliwatts (charged over the
    /// makespan at the clock below).
    pub router_leakage_mw: f64,
    /// Clock frequency in GHz (converts cycles to time for leakage).
    pub clock_ghz: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        // 64-byte flit, 32 nm-class numbers in the DSENT/ORION range.
        Self {
            buffer_write_pj: 1.6,
            buffer_read_pj: 1.2,
            crossbar_pj: 2.4,
            arbiter_pj: 0.1,
            link_pj: 2.0,
            router_leakage_mw: 1.0,
            clock_ghz: 1.0,
        }
    }
}

/// Energy breakdown of one simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyReport {
    /// Dynamic buffer energy (pJ).
    pub buffer_pj: f64,
    /// Dynamic crossbar energy (pJ).
    pub crossbar_pj: f64,
    /// Arbitration energy (pJ).
    pub arbiter_pj: f64,
    /// Link energy (pJ).
    pub link_pj: f64,
    /// Leakage energy over the makespan (pJ).
    pub leakage_pj: f64,
}

impl EnergyReport {
    /// Total NoC energy in picojoules.
    pub fn total_pj(&self) -> f64 {
        self.buffer_pj + self.crossbar_pj + self.arbiter_pj + self.link_pj + self.leakage_pj
    }

    /// Dynamic (traffic-proportional) energy only.
    pub fn dynamic_pj(&self) -> f64 {
        self.total_pj() - self.leakage_pj
    }
}

impl EnergyModel {
    /// Evaluates the model on raw event counts plus a makespan and router
    /// count (for leakage).
    pub fn evaluate(&self, events: &EventCounts, makespan: u64, routers: usize) -> EnergyReport {
        let seconds = makespan as f64 / (self.clock_ghz * 1e9);
        EnergyReport {
            buffer_pj: events.buffer_writes as f64 * self.buffer_write_pj
                + events.buffer_reads as f64 * self.buffer_read_pj,
            crossbar_pj: events.crossbar_traversals as f64 * self.crossbar_pj,
            arbiter_pj: events.arbitrations as f64 * self.arbiter_pj,
            link_pj: events.link_traversals as f64 * self.link_pj,
            leakage_pj: self.router_leakage_mw * 1e-3 * seconds * routers as f64 * 1e12,
        }
    }

    /// Convenience: evaluates straight from a [`SimReport`].
    pub fn report(&self, sim: &SimReport, routers: usize) -> EnergyReport {
        self.evaluate(&sim.events, sim.makespan, routers)
    }

    /// Closed-form dynamic energy of moving `flits` over `hops` hops
    /// (per-hop: one buffer write+read, one crossbar, one link, one
    /// arbitration; plus the injection buffer write and ejection
    /// read/crossbar).
    pub fn flit_hop_energy_pj(&self, flits: u64, hops: u64) -> f64 {
        let per_hop = self.buffer_write_pj
            + self.buffer_read_pj
            + self.crossbar_pj
            + self.link_pj
            + self.arbiter_pj;
        let endpoint = self.buffer_write_pj + self.buffer_read_pj + self.crossbar_pj;
        flits as f64 * (hops as f64 * per_hop + endpoint)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events() -> EventCounts {
        EventCounts {
            buffer_writes: 100,
            buffer_reads: 100,
            crossbar_traversals: 100,
            link_traversals: 60,
            arbitrations: 50,
            ejections: 40,
        }
    }

    #[test]
    fn totals_sum_components() {
        let m = EnergyModel::default();
        let r = m.evaluate(&events(), 1000, 16);
        let total = r.buffer_pj + r.crossbar_pj + r.arbiter_pj + r.link_pj + r.leakage_pj;
        assert!((r.total_pj() - total).abs() < 1e-9);
        assert!(r.dynamic_pj() < r.total_pj());
    }

    #[test]
    fn energy_scales_with_traffic() {
        let m = EnergyModel::default();
        let small = m.evaluate(&events(), 1000, 16);
        let mut big_events = events();
        big_events.buffer_writes *= 3;
        big_events.buffer_reads *= 3;
        big_events.crossbar_traversals *= 3;
        big_events.link_traversals *= 3;
        let big = m.evaluate(&big_events, 1000, 16);
        assert!(big.dynamic_pj() > 2.5 * small.dynamic_pj());
        // Leakage unchanged.
        assert_eq!(big.leakage_pj, small.leakage_pj);
    }

    #[test]
    fn zero_makespan_means_zero_leakage() {
        let m = EnergyModel::default();
        let r = m.evaluate(&EventCounts::default(), 0, 16);
        assert_eq!(r.total_pj(), 0.0);
    }

    #[test]
    fn flit_hop_energy_grows_with_distance() {
        let m = EnergyModel::default();
        assert!(m.flit_hop_energy_pj(10, 4) > m.flit_hop_energy_pj(10, 1));
        assert!(m.flit_hop_energy_pj(10, 1) > m.flit_hop_energy_pj(1, 1));
        // Zero hops still costs the endpoint events.
        assert!(m.flit_hop_energy_pj(1, 0) > 0.0);
    }
}
