//! NoC configuration and error type.

use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Packet routing policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum RoutingPolicy {
    /// Dimension-ordered XY (Table II's "dimensional-ordered routing").
    #[default]
    XyDor,
    /// Dimension-ordered YX.
    YxDor,
    /// O1TURN: each packet picks XY or YX (balanced, deterministic by
    /// packet id); the two orders use disjoint VC classes so the
    /// combination stays deadlock-free. Needs at least 2 VCs.
    O1Turn,
}

/// Errors produced by the NoC simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NocError {
    /// An invalid configuration value.
    BadConfig(String),
    /// A message references a node outside the mesh.
    BadNode {
        /// Offending node id.
        node: usize,
        /// Number of nodes in the mesh.
        nodes: usize,
    },
    /// The simulation exceeded its cycle budget — almost always a
    /// deadlock, a fault configuration too hostile to ever deliver, or an
    /// unreasonably small budget.
    CycleLimitExceeded {
        /// The configured cycle cap.
        limit: u64,
        /// Messages still undelivered when the cap hit.
        undelivered: usize,
    },
    /// Permanent faults leave no surviving path between two endpoints
    /// (or an endpoint router is itself dead).
    Unreachable {
        /// Source node of the rejected message.
        src: usize,
        /// Destination node of the rejected message.
        dst: usize,
    },
}

impl fmt::Display for NocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NocError::BadConfig(msg) => write!(f, "bad NoC configuration: {msg}"),
            NocError::BadNode { node, nodes } => {
                write!(f, "node {node} out of range for mesh of {nodes} nodes")
            }
            NocError::CycleLimitExceeded { limit, undelivered } => write!(
                f,
                "simulation exceeded {limit} cycles with {undelivered} messages undelivered"
            ),
            NocError::Unreachable { src, dst } => {
                write!(f, "no surviving route from node {src} to node {dst} under the fault model")
            }
        }
    }
}

impl Error for NocError {}

/// Full NoC configuration (defaults reproduce Table II of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NocConfig {
    /// Mesh width (columns).
    pub width: usize,
    /// Mesh height (rows).
    pub height: usize,
    /// Flit size in bytes (Table II: 512-bit flits = 64 B).
    pub flit_bytes: usize,
    /// Physical link (phit) width in bits. A flit occupies a link/lane
    /// for `flit_bits / phit_bits` cycles. The default of 64 bits (8
    /// cycles per 512-bit flit) is calibrated so that traditional
    /// parallelization of AlexNet on 16 cores spends ~23 % of a single
    /// pass communicating, the paper's §III-B measurement.
    pub phit_bits: usize,
    /// Maximum flits per packet (Table II: 20).
    pub max_packet_flits: usize,
    /// Virtual channels per input port (Table II: 3).
    pub vcs: usize,
    /// Input buffer depth per VC, in flits.
    pub vc_buffer_flits: usize,
    /// Router pipeline depth in cycles (Table II: 3 stages).
    pub router_stages: u64,
    /// Link traversal latency in cycles.
    pub link_cycles: u64,
    /// Physical channels per link (Table II: 2); modelled as the number of
    /// flits a link can move per cycle.
    pub physical_channels: usize,
    /// Packet routing policy (Table II: dimension-ordered, i.e. XY).
    pub routing: RoutingPolicy,
    /// Hard cap on simulated cycles (deadlock guard).
    pub max_cycles: u64,
}

impl NocConfig {
    /// The paper's 16-core configuration: 4×4 mesh, 512-bit flits,
    /// 20-flit packets, 3 VCs, 3-stage routers, 2 physical channels.
    pub fn paper_16core() -> Self {
        Self::paper_mesh(4, 4)
    }

    /// The paper's configuration on an arbitrary mesh (used by the
    /// 4/8/32-core scalability experiments).
    pub fn paper_mesh(width: usize, height: usize) -> Self {
        Self {
            width,
            height,
            flit_bytes: 64,
            phit_bits: 64,
            max_packet_flits: 20,
            vcs: 3,
            vc_buffer_flits: 4,
            router_stages: 3,
            link_cycles: 1,
            physical_channels: 2,
            routing: RoutingPolicy::XyDor,
            max_cycles: 50_000_000,
        }
    }

    /// Mesh geometry for a core count, as used in the paper's scalability
    /// study: 4 → 2×2, 8 → 4×2, 16 → 4×4, 32 → 8×4; other counts get the
    /// most square factorization.
    pub fn paper_cores(cores: usize) -> Result<Self, NocError> {
        if cores == 0 {
            return Err(NocError::BadConfig("core count must be positive".into()));
        }
        let (w, h) = squarest_factors(cores);
        Ok(Self::paper_mesh(w, h))
    }

    /// Number of nodes in the mesh.
    pub fn nodes(&self) -> usize {
        self.width * self.height
    }

    /// Validates all fields.
    ///
    /// # Errors
    ///
    /// Returns [`NocError::BadConfig`] naming the first invalid field.
    pub fn validate(&self) -> Result<(), NocError> {
        let positive: [(&str, usize); 8] = [
            ("width", self.width),
            ("height", self.height),
            ("flit_bytes", self.flit_bytes),
            ("max_packet_flits", self.max_packet_flits),
            ("vcs", self.vcs),
            ("vc_buffer_flits", self.vc_buffer_flits),
            ("physical_channels", self.physical_channels),
            ("phit_bits", self.phit_bits),
        ];
        for (name, v) in positive {
            if v == 0 {
                return Err(NocError::BadConfig(format!("{name} must be positive")));
            }
        }
        if self.router_stages == 0 {
            return Err(NocError::BadConfig("router_stages must be positive".into()));
        }
        if self.max_cycles == 0 {
            return Err(NocError::BadConfig("max_cycles must be positive".into()));
        }
        if self.routing == RoutingPolicy::O1Turn && self.vcs < 2 {
            return Err(NocError::BadConfig(
                "O1TURN routing needs at least 2 VCs for deadlock freedom".into(),
            ));
        }
        Ok(())
    }

    /// The virtual channels a packet of the given dimension order may
    /// use. Under O1TURN the VC space is split between the two orders;
    /// under a single fixed order every VC is available.
    pub fn vc_class(&self, yx: bool) -> std::ops::Range<usize> {
        match self.routing {
            RoutingPolicy::O1Turn => {
                let split = self.vcs.div_ceil(2);
                if yx {
                    split..self.vcs
                } else {
                    0..split
                }
            }
            _ => 0..self.vcs,
        }
    }

    /// The dimension order the policy assigns to a packet.
    pub fn packet_order_is_yx(&self, packet_id: u64) -> bool {
        match self.routing {
            RoutingPolicy::XyDor => false,
            RoutingPolicy::YxDor => true,
            RoutingPolicy::O1Turn => packet_id % 2 == 1,
        }
    }

    /// Flits needed to carry `bytes` of payload.
    pub fn flits_for_bytes(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.flit_bytes as u64).max(1)
    }

    /// Cycles one flit occupies a link lane (`flit_bits / phit_bits`).
    pub fn serialization_cycles(&self) -> u64 {
        ((self.flit_bytes * 8).div_ceil(self.phit_bits)) as u64
    }
}

/// The factor pair of `n` closest to a square, wider than tall.
pub fn squarest_factors(n: usize) -> (usize, usize) {
    let mut best = (n, 1);
    let mut d = 1;
    while d * d <= n {
        if n.is_multiple_of(d) {
            best = (n / d, d);
        }
        d += 1;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_table_ii() {
        let c = NocConfig::paper_16core();
        assert_eq!(c.nodes(), 16);
        assert_eq!(c.flit_bytes * 8, 512);
        assert_eq!(c.max_packet_flits, 20);
        assert_eq!(c.vcs, 3);
        assert_eq!(c.router_stages, 3);
        assert_eq!(c.physical_channels, 2);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn squarest_factors_examples() {
        assert_eq!(squarest_factors(4), (2, 2));
        assert_eq!(squarest_factors(8), (4, 2));
        assert_eq!(squarest_factors(16), (4, 4));
        assert_eq!(squarest_factors(32), (8, 4));
        assert_eq!(squarest_factors(7), (7, 1));
    }

    #[test]
    fn flits_for_bytes_rounds_up() {
        let c = NocConfig::paper_16core();
        assert_eq!(c.flits_for_bytes(1), 1);
        assert_eq!(c.flits_for_bytes(64), 1);
        assert_eq!(c.flits_for_bytes(65), 2);
        assert_eq!(c.flits_for_bytes(0), 1); // at least a head flit
    }

    #[test]
    fn validation_catches_zero_fields() {
        let mut c = NocConfig::paper_16core();
        c.vcs = 0;
        assert!(c.validate().is_err());
        let mut c2 = NocConfig::paper_16core();
        c2.width = 0;
        assert!(c2.validate().is_err());
    }

    #[test]
    fn error_display() {
        let e = NocError::BadNode { node: 20, nodes: 16 };
        assert!(e.to_string().contains("20"));
    }
}
