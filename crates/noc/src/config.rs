//! NoC configuration and error type.

use crate::topology::{HopClass, McmTopology, Mesh2d, Topo, Topology};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Packet routing policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum RoutingPolicy {
    /// Dimension-ordered XY (Table II's "dimensional-ordered routing").
    #[default]
    XyDor,
    /// Dimension-ordered YX.
    YxDor,
    /// O1TURN: each packet picks XY or YX (balanced, deterministic by
    /// packet id); the two orders use disjoint VC classes so the
    /// combination stays deadlock-free. Needs at least 2 VCs.
    O1Turn,
}

/// Errors produced by the NoC simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NocError {
    /// An invalid configuration value.
    BadConfig(String),
    /// A message references a node outside the mesh.
    BadNode {
        /// Offending node id.
        node: usize,
        /// Number of nodes in the mesh.
        nodes: usize,
    },
    /// The simulation exceeded its cycle budget — almost always a
    /// deadlock, a fault configuration too hostile to ever deliver, or an
    /// unreasonably small budget.
    CycleLimitExceeded {
        /// The configured cycle cap.
        limit: u64,
        /// Messages still undelivered when the cap hit.
        undelivered: usize,
    },
    /// Permanent faults leave no surviving path between two endpoints
    /// (or an endpoint router is itself dead).
    Unreachable {
        /// Source node of the rejected message.
        src: usize,
        /// Destination node of the rejected message.
        dst: usize,
    },
}

impl fmt::Display for NocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NocError::BadConfig(msg) => write!(f, "bad NoC configuration: {msg}"),
            NocError::BadNode { node, nodes } => {
                write!(f, "node {node} out of range for mesh of {nodes} nodes")
            }
            NocError::CycleLimitExceeded { limit, undelivered } => write!(
                f,
                "simulation exceeded {limit} cycles with {undelivered} messages undelivered"
            ),
            NocError::Unreachable { src, dst } => {
                write!(f, "no surviving route from node {src} to node {dst} under the fault model")
            }
        }
    }
}

impl Error for NocError {}

/// Interposer link parameters of an MCM package: inter-chiplet hops are
/// *slower* (more cycles of link latency) but *wider* (more phit bits, so
/// fewer serialization cycles per flit) than on-chip mesh links.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InterposerConfig {
    /// Link traversal latency in cycles (on-chip default is 1).
    pub link_cycles: u64,
    /// Physical link (phit) width in bits (on-chip default is 64).
    pub phit_bits: usize,
}

impl Default for InterposerConfig {
    fn default() -> Self {
        // 4× the on-chip link latency, 4× the on-chip phit width: a
        // 512-bit flit serializes in 2 cycles instead of 8 but pays the
        // longer die-to-die wire.
        Self { link_cycles: 4, phit_bits: 256 }
    }
}

/// Which topology the `width × height` per-chip geometry is instantiated
/// on. `Mesh` (the default, and the only pre-MCM behaviour) is one chip;
/// `Mcm` tiles a package grid of identical chiplets joined by interposer
/// links.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum TopologySpec {
    /// A single-chip 2-D mesh of `width × height` cores.
    #[default]
    Mesh,
    /// A `grid_width × grid_height` package of `width × height` chiplets.
    Mcm {
        /// Chiplet columns on the package.
        grid_width: usize,
        /// Chiplet rows on the package.
        grid_height: usize,
        /// Interposer link parameters.
        interposer: InterposerConfig,
    },
}

/// Full NoC configuration (defaults reproduce Table II of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NocConfig {
    /// Mesh width (columns) — per chiplet under [`TopologySpec::Mcm`].
    pub width: usize,
    /// Mesh height (rows) — per chiplet under [`TopologySpec::Mcm`].
    pub height: usize,
    /// Flit size in bytes (Table II: 512-bit flits = 64 B).
    pub flit_bytes: usize,
    /// Physical link (phit) width in bits. A flit occupies a link/lane
    /// for `flit_bits / phit_bits` cycles. The default of 64 bits (8
    /// cycles per 512-bit flit) is calibrated so that traditional
    /// parallelization of AlexNet on 16 cores spends ~23 % of a single
    /// pass communicating, the paper's §III-B measurement.
    pub phit_bits: usize,
    /// Maximum flits per packet (Table II: 20).
    pub max_packet_flits: usize,
    /// Virtual channels per input port (Table II: 3).
    pub vcs: usize,
    /// Input buffer depth per VC, in flits.
    pub vc_buffer_flits: usize,
    /// Router pipeline depth in cycles (Table II: 3 stages).
    pub router_stages: u64,
    /// Link traversal latency in cycles.
    pub link_cycles: u64,
    /// Physical channels per link (Table II: 2); modelled as the number of
    /// flits a link can move per cycle.
    pub physical_channels: usize,
    /// Packet routing policy (Table II: dimension-ordered, i.e. XY).
    pub routing: RoutingPolicy,
    /// Hard cap on simulated cycles (deadlock guard).
    pub max_cycles: u64,
    /// The topology the geometry lives on. Defaults to a single-chip
    /// mesh, so pre-MCM configs (and their serialized forms, which feed
    /// the simcache keys) are unchanged.
    pub topology: TopologySpec,
}

impl NocConfig {
    /// The paper's 16-core configuration: 4×4 mesh, 512-bit flits,
    /// 20-flit packets, 3 VCs, 3-stage routers, 2 physical channels.
    pub fn paper_16core() -> Self {
        Self::paper_mesh(4, 4)
    }

    /// The paper's configuration on an arbitrary mesh (used by the
    /// 4/8/32-core scalability experiments).
    pub fn paper_mesh(width: usize, height: usize) -> Self {
        Self {
            width,
            height,
            flit_bytes: 64,
            phit_bits: 64,
            max_packet_flits: 20,
            vcs: 3,
            vc_buffer_flits: 4,
            router_stages: 3,
            link_cycles: 1,
            physical_channels: 2,
            routing: RoutingPolicy::XyDor,
            max_cycles: 50_000_000,
            topology: TopologySpec::Mesh,
        }
    }

    /// Mesh geometry for a core count, as used in the paper's scalability
    /// study: 4 → 2×2, 8 → 4×2, 16 → 4×4, 32 → 8×4; other counts get the
    /// most square factorization (via [`Mesh2d::for_nodes`]).
    pub fn paper_cores(cores: usize) -> Result<Self, NocError> {
        if cores == 0 {
            return Err(NocError::BadConfig("core count must be positive".into()));
        }
        let mesh = Mesh2d::for_nodes(cores);
        Ok(Self::paper_mesh(mesh.width(), mesh.height()))
    }

    /// The paper's per-chip configuration scaled out to a multi-chip
    /// module: `chiplets` chips of `cores_per_chiplet` cores each, chip
    /// and package grids both chosen by [`Mesh2d::for_nodes`], joined by
    /// default interposer links.
    ///
    /// # Errors
    ///
    /// Returns [`NocError::BadConfig`] if either count is zero.
    pub fn paper_mcm(chiplets: usize, cores_per_chiplet: usize) -> Result<Self, NocError> {
        if chiplets == 0 {
            return Err(NocError::BadConfig("chiplet count must be positive".into()));
        }
        let mut config = Self::paper_cores(cores_per_chiplet)?;
        let grid = Mesh2d::for_nodes(chiplets);
        config.topology = TopologySpec::Mcm {
            grid_width: grid.width(),
            grid_height: grid.height(),
            interposer: InterposerConfig::default(),
        };
        Ok(config)
    }

    /// The concrete topology this configuration describes.
    pub fn topo(&self) -> Topo {
        match self.topology {
            TopologySpec::Mesh => Topo::Mesh(Mesh2d::new(self.width, self.height)),
            TopologySpec::Mcm { grid_width, grid_height, .. } => {
                Topo::Mcm(McmTopology::new(self.width, self.height, grid_width, grid_height))
            }
        }
    }

    /// Number of chiplets (1 for a plain mesh).
    pub fn chiplets(&self) -> usize {
        match self.topology {
            TopologySpec::Mesh => 1,
            TopologySpec::Mcm { grid_width, grid_height, .. } => grid_width * grid_height,
        }
    }

    /// Number of nodes across the whole topology.
    pub fn nodes(&self) -> usize {
        self.width * self.height * self.chiplets()
    }

    /// Validates all fields.
    ///
    /// # Errors
    ///
    /// Returns [`NocError::BadConfig`] naming the first invalid field.
    pub fn validate(&self) -> Result<(), NocError> {
        let positive: [(&str, usize); 8] = [
            ("width", self.width),
            ("height", self.height),
            ("flit_bytes", self.flit_bytes),
            ("max_packet_flits", self.max_packet_flits),
            ("vcs", self.vcs),
            ("vc_buffer_flits", self.vc_buffer_flits),
            ("physical_channels", self.physical_channels),
            ("phit_bits", self.phit_bits),
        ];
        for (name, v) in positive {
            if v == 0 {
                return Err(NocError::BadConfig(format!("{name} must be positive")));
            }
        }
        if self.router_stages == 0 {
            return Err(NocError::BadConfig("router_stages must be positive".into()));
        }
        if self.max_cycles == 0 {
            return Err(NocError::BadConfig("max_cycles must be positive".into()));
        }
        if self.routing == RoutingPolicy::O1Turn && self.vcs < 2 {
            return Err(NocError::BadConfig(
                "O1TURN routing needs at least 2 VCs for deadlock freedom".into(),
            ));
        }
        if let TopologySpec::Mcm { grid_width, grid_height, interposer } = self.topology {
            if grid_width == 0 || grid_height == 0 {
                return Err(NocError::BadConfig("package grid dimensions must be positive".into()));
            }
            if interposer.link_cycles == 0 {
                return Err(NocError::BadConfig("interposer link_cycles must be positive".into()));
            }
            if interposer.phit_bits == 0 {
                return Err(NocError::BadConfig("interposer phit_bits must be positive".into()));
            }
        }
        Ok(())
    }

    /// The virtual channels a packet of the given dimension order may
    /// use. Under O1TURN the VC space is split between the two orders;
    /// under a single fixed order every VC is available.
    pub fn vc_class(&self, yx: bool) -> std::ops::Range<usize> {
        match self.routing {
            RoutingPolicy::O1Turn => {
                let split = self.vcs.div_ceil(2);
                if yx {
                    split..self.vcs
                } else {
                    0..split
                }
            }
            _ => 0..self.vcs,
        }
    }

    /// The dimension order the policy assigns to a packet.
    pub fn packet_order_is_yx(&self, packet_id: u64) -> bool {
        match self.routing {
            RoutingPolicy::XyDor => false,
            RoutingPolicy::YxDor => true,
            RoutingPolicy::O1Turn => packet_id % 2 == 1,
        }
    }

    /// Flits needed to carry `bytes` of payload.
    pub fn flits_for_bytes(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.flit_bytes as u64).max(1)
    }

    /// Cycles one flit occupies a link lane (`flit_bits / phit_bits`).
    pub fn serialization_cycles(&self) -> u64 {
        ((self.flit_bytes * 8).div_ceil(self.phit_bits)) as u64
    }

    /// Link traversal latency of a hop of the given class.
    pub fn link_cycles_for(&self, class: HopClass) -> u64 {
        match (class, self.topology) {
            (HopClass::Inter, TopologySpec::Mcm { interposer, .. }) => interposer.link_cycles,
            _ => self.link_cycles,
        }
    }

    /// Serialization cycles of a hop of the given class (interposer links
    /// are wider, so a flit occupies them for fewer cycles).
    pub fn serialization_cycles_for(&self, class: HopClass) -> u64 {
        match (class, self.topology) {
            (HopClass::Inter, TopologySpec::Mcm { interposer, .. }) => {
                ((self.flit_bytes * 8).div_ceil(interposer.phit_bits)) as u64
            }
            _ => self.serialization_cycles(),
        }
    }

    /// Uncongested head-flit latency of the XY route from `src` to
    /// `dst`, excluding injection serialization: one router pipeline plus
    /// one (class-priced) link traversal per hop.
    pub fn uncongested_route_cycles(&self, src: usize, dst: usize) -> u64 {
        let topo = self.topo();
        let mut here = src;
        let mut cycles = 0u64;
        while here != dst {
            let dir = topo.route_xy(here, dst);
            cycles += self.router_stages + self.link_cycles_for(topo.hop_class(here, dir));
            here = topo.neighbor(here, dir).expect("XY routing never leaves the topology");
        }
        cycles
    }
}

/// The factor pair of `n` closest to a square, wider than tall (the
/// geometry rule of [`Mesh2d::for_nodes`]).
pub fn squarest_factors(n: usize) -> (usize, usize) {
    let mesh = Mesh2d::for_nodes(n);
    (mesh.width(), mesh.height())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_table_ii() {
        let c = NocConfig::paper_16core();
        assert_eq!(c.nodes(), 16);
        assert_eq!(c.flit_bytes * 8, 512);
        assert_eq!(c.max_packet_flits, 20);
        assert_eq!(c.vcs, 3);
        assert_eq!(c.router_stages, 3);
        assert_eq!(c.physical_channels, 2);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn squarest_factors_examples() {
        assert_eq!(squarest_factors(4), (2, 2));
        assert_eq!(squarest_factors(8), (4, 2));
        assert_eq!(squarest_factors(16), (4, 4));
        assert_eq!(squarest_factors(32), (8, 4));
        assert_eq!(squarest_factors(7), (7, 1));
    }

    #[test]
    fn flits_for_bytes_rounds_up() {
        let c = NocConfig::paper_16core();
        assert_eq!(c.flits_for_bytes(1), 1);
        assert_eq!(c.flits_for_bytes(64), 1);
        assert_eq!(c.flits_for_bytes(65), 2);
        assert_eq!(c.flits_for_bytes(0), 1); // at least a head flit
    }

    #[test]
    fn validation_catches_zero_fields() {
        let mut c = NocConfig::paper_16core();
        c.vcs = 0;
        assert!(c.validate().is_err());
        let mut c2 = NocConfig::paper_16core();
        c2.width = 0;
        assert!(c2.validate().is_err());
    }

    #[test]
    fn error_display() {
        let e = NocError::BadNode { node: 20, nodes: 16 };
        assert!(e.to_string().contains("20"));
    }

    #[test]
    fn paper_cores_follows_topology_geometry_for_non_square_counts() {
        for cores in [2, 6, 7, 8, 12, 18, 24] {
            let c = NocConfig::paper_cores(cores).unwrap();
            let mesh = Mesh2d::for_nodes(cores);
            assert_eq!((c.width, c.height), (mesh.width(), mesh.height()), "{cores} cores");
            assert_eq!(c.nodes(), cores);
            assert!(c.width >= c.height, "{cores} cores: wider than tall");
            assert!(c.validate().is_ok());
        }
        assert!(NocConfig::paper_cores(0).is_err());
    }

    #[test]
    fn paper_mcm_geometry_and_nodes() {
        let c = NocConfig::paper_mcm(2, 16).unwrap();
        assert_eq!((c.width, c.height), (4, 4));
        assert_eq!(c.chiplets(), 2);
        assert_eq!(c.nodes(), 32);
        assert!(c.validate().is_ok());
        match c.topo() {
            Topo::Mcm(m) => {
                assert_eq!(Topology::width(&m), 8);
                assert_eq!(Topology::height(&m), 4);
            }
            Topo::Mesh(_) => panic!("expected MCM topology"),
        }
        // chiplets = 1 keeps the single-chip node count and geometry.
        let one = NocConfig::paper_mcm(1, 16).unwrap();
        assert_eq!(one.nodes(), 16);
        assert_eq!(one.chiplets(), 1);
    }

    #[test]
    fn hop_class_pricing_defaults_and_interposer() {
        let mesh = NocConfig::paper_16core();
        assert_eq!(mesh.link_cycles_for(HopClass::Inter), mesh.link_cycles);
        assert_eq!(mesh.serialization_cycles_for(HopClass::Inter), mesh.serialization_cycles());
        let mcm = NocConfig::paper_mcm(2, 16).unwrap();
        assert_eq!(mcm.link_cycles_for(HopClass::Intra), 1);
        assert_eq!(mcm.link_cycles_for(HopClass::Inter), 4);
        assert_eq!(mcm.serialization_cycles_for(HopClass::Intra), 8);
        assert_eq!(mcm.serialization_cycles_for(HopClass::Inter), 2);
    }

    #[test]
    fn uncongested_route_prices_interposer_hops() {
        let mesh = NocConfig::paper_16core();
        // 4x4 mesh, 0 -> 15 is 6 hops of (3 router + 1 link) cycles.
        assert_eq!(mesh.uncongested_route_cycles(0, 15), 6 * 4);
        let mcm = NocConfig::paper_mcm(2, 4).unwrap(); // two 2x2 chips, 4x2 global
                                                       // 0 -> 3 crosses the seam between x=1 and x=2: two intra hops at
                                                       // 3+1, one interposer hop at 3+4.
        assert_eq!(mcm.uncongested_route_cycles(0, 3), 2 * 4 + 7);
    }

    #[test]
    fn mcm_validation_catches_bad_interposer() {
        let mut c = NocConfig::paper_mcm(2, 16).unwrap();
        if let TopologySpec::Mcm { ref mut interposer, .. } = c.topology {
            interposer.link_cycles = 0;
        }
        assert!(c.validate().is_err());
    }

    #[test]
    fn topology_spec_round_trips_through_serde() {
        let mesh = NocConfig::paper_16core();
        let json = serde_json::to_string(&mesh).unwrap();
        assert_eq!(serde_json::from_str::<NocConfig>(&json).unwrap(), mesh);
        let mcm = NocConfig::paper_mcm(4, 16).unwrap();
        let json = serde_json::to_string(&mcm).unwrap();
        assert_eq!(serde_json::from_str::<NocConfig>(&json).unwrap(), mcm);
        // Distinct topologies must serialize distinctly (simcache keys hash
        // this encoding).
        let other = serde_json::to_string(&NocConfig::paper_mcm(2, 32).unwrap()).unwrap();
        assert_ne!(json, other);
    }
}
