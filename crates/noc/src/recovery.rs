//! Time-varying fault schedules and the heartbeat health monitor.
//!
//! PR 2's [`crate::FaultModel`] describes faults that exist *before* a run
//! starts. This module adds the dynamic half: a [`FaultSchedule`] kills
//! routers and links at specific cycles **while traffic is in flight**,
//! and a [`MonitorConfig`] models the lightweight health-monitor protocol
//! that *detects* those deaths instead of being told about them.
//!
//! # Detection protocol
//!
//! Every router emits a one-phit heartbeat toward the monitor node each
//! `period` cycles on an out-of-band control plane (modelled at
//! uncongested Manhattan-distance latency — heartbeats are tiny and
//! prioritized, so they do not contend with data flits). The monitor
//! expects beat `k` of node `r` no later than
//! `k * period + beat_latency(r) + 1`; after `miss_threshold` consecutive
//! missed beats the node is declared dead
//! ([`DetectionCause::MissedHeartbeats`]). Independently, a source NIC
//! that exhausts its bounded retransmission budget against a dead
//! destination reports it out of band
//! ([`DetectionCause::RetransmitExhaustion`]) — whichever fires first
//! wins. Both paths are exercised by
//! [`crate::Simulator::run_recoverable`], and the analytic
//! [`MonitorConfig::detection_cycle`] reproduces the heartbeat arithmetic
//! exactly so higher layers can place detections on a timeline without a
//! flit-level simulation.

use crate::config::{NocConfig, NocError};
use crate::stats::SimReport;
use crate::topology::Direction;
use serde::{Deserialize, Serialize};

/// What dies in a [`FaultEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultEventKind {
    /// A router (and its attached core) stops forwarding, injecting and
    /// ejecting. Flits inside it are lost.
    RouterDeath {
        /// The dying node.
        node: usize,
    },
    /// A link goes down in both directions; traffic reroutes around it.
    LinkDeath {
        /// The node naming the link.
        node: usize,
        /// The link's direction from `node`.
        dir: Direction,
    },
}

/// One scheduled mid-run fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Simulation cycle at which the fault strikes.
    pub cycle: u64,
    /// What dies.
    pub kind: FaultEventKind,
}

/// A time-ordered schedule of mid-run faults.
///
/// # Examples
///
/// ```
/// use lts_noc::recovery::FaultSchedule;
///
/// let s = FaultSchedule::new().router_death(5_000, 5).link_death(9_000, 0, lts_noc::topology::Direction::East);
/// assert_eq!(s.events().len(), 2);
/// assert!(FaultSchedule::new().is_empty());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// An empty schedule (nothing ever dies).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a router death at `cycle`.
    #[must_use]
    pub fn router_death(mut self, cycle: u64, node: usize) -> Self {
        self.events.push(FaultEvent { cycle, kind: FaultEventKind::RouterDeath { node } });
        self
    }

    /// Adds a link death at `cycle`.
    #[must_use]
    pub fn link_death(mut self, cycle: u64, node: usize, dir: Direction) -> Self {
        self.events.push(FaultEvent { cycle, kind: FaultEventKind::LinkDeath { node, dir } });
        self
    }

    /// The events, in insertion order (sort with [`FaultSchedule::sorted`]).
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Whether the schedule contains no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The events sorted by cycle (stable: same-cycle events keep their
    /// insertion order).
    pub fn sorted(&self) -> Vec<FaultEvent> {
        let mut v = self.events.clone();
        v.sort_by_key(|e| e.cycle);
        v
    }

    /// The router-death nodes in the schedule (deduplicated, sorted).
    pub fn dead_routers(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self
            .events
            .iter()
            .filter_map(|e| match e.kind {
                FaultEventKind::RouterDeath { node } => Some(node),
                FaultEventKind::LinkDeath { .. } => None,
            })
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Validates the schedule against a mesh configuration.
    ///
    /// # Errors
    ///
    /// Returns [`NocError::BadConfig`] for out-of-range nodes or a
    /// `Local` link direction.
    pub fn validate(&self, config: &NocConfig) -> Result<(), NocError> {
        let nodes = config.nodes();
        for e in &self.events {
            match e.kind {
                FaultEventKind::RouterDeath { node } => {
                    if node >= nodes {
                        return Err(NocError::BadConfig(format!(
                            "scheduled router death at node {node} out of range for {nodes} nodes"
                        )));
                    }
                }
                FaultEventKind::LinkDeath { node, dir } => {
                    if node >= nodes {
                        return Err(NocError::BadConfig(format!(
                            "scheduled link death at node {node} out of range for {nodes} nodes"
                        )));
                    }
                    if dir == Direction::Local {
                        return Err(NocError::BadConfig(
                            "scheduled link death direction must be a mesh direction".into(),
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

/// Heartbeat health-monitor parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MonitorConfig {
    /// Heartbeat emission period in cycles.
    pub period: u64,
    /// Consecutive missed beats before a node is declared dead.
    pub miss_threshold: u32,
    /// Node hosting the health monitor.
    pub monitor: usize,
    /// Fixed processing overhead added to each beat's modelled latency.
    pub overhead: u64,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        Self { period: 256, miss_threshold: 3, monitor: 0, overhead: 4 }
    }
}

impl MonitorConfig {
    /// Validates the monitor against a mesh configuration.
    ///
    /// # Errors
    ///
    /// Returns [`NocError::BadConfig`] for a zero period/threshold or an
    /// out-of-range monitor node.
    pub fn validate(&self, config: &NocConfig) -> Result<(), NocError> {
        if self.period == 0 {
            return Err(NocError::BadConfig("heartbeat period must be positive".into()));
        }
        if self.miss_threshold == 0 {
            return Err(NocError::BadConfig("miss_threshold must be positive".into()));
        }
        if self.monitor >= config.nodes() {
            return Err(NocError::BadConfig(format!(
                "monitor node {} out of range for {} nodes",
                self.monitor,
                config.nodes()
            )));
        }
        Ok(())
    }

    /// Modelled control-plane latency of one heartbeat from `node` to the
    /// monitor: uncongested pipeline cycles along the XY route (interposer
    /// hops priced at their own link latency) plus the fixed overhead.
    pub fn beat_latency(&self, config: &NocConfig, node: usize) -> u64 {
        config.uncongested_route_cycles(node, self.monitor) + self.overhead
    }

    /// The cycle at which the monitor declares `node` dead, given it died
    /// at `died_at`: the arrival deadline of the `miss_threshold`-th
    /// consecutively missed beat. Beat `k` (emitted at `k * period`) is
    /// missed iff the node was already dead at its emission instant.
    pub fn detection_cycle(&self, config: &NocConfig, node: usize, died_at: u64) -> u64 {
        let first_missed = died_at.div_ceil(self.period).max(1);
        let last = first_missed + u64::from(self.miss_threshold) - 1;
        last * self.period + self.beat_latency(config, node) + 1
    }

    /// Detection latency in cycles: [`MonitorConfig::detection_cycle`]
    /// minus the death cycle.
    pub fn detection_latency(&self, config: &NocConfig, node: usize, died_at: u64) -> u64 {
        self.detection_cycle(config, node, died_at).saturating_sub(died_at)
    }
}

/// How a death was noticed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DetectionCause {
    /// The health monitor saw `miss_threshold` consecutive missed beats.
    MissedHeartbeats,
    /// A source NIC exhausted its retransmission budget against the node.
    RetransmitExhaustion,
}

/// One detected node death.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Detection {
    /// The node declared dead.
    pub node: usize,
    /// Cycle at which it actually died (ground truth from the schedule).
    pub died_at: u64,
    /// Cycle at which the monitor/NIC declared it dead.
    pub detected_at: u64,
    /// Which mechanism fired first.
    pub cause: DetectionCause,
}

impl Detection {
    /// Detection latency in cycles.
    pub fn latency(&self) -> u64 {
        self.detected_at.saturating_sub(self.died_at)
    }
}

/// Result of a [`crate::Simulator::run_recoverable`] run: the usual
/// simulation report plus what died, when it was noticed, and which
/// messages could not be delivered because of mid-run deaths.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecoverableReport {
    /// The flit-level report over the delivered portion of the trace.
    pub report: SimReport,
    /// Node deaths noticed by the monitor or the NICs, in detection order.
    pub detections: Vec<Detection>,
    /// Indices (into the input trace) of messages abandoned because an
    /// endpoint died or retransmission was exhausted mid-run.
    pub abandoned: Vec<usize>,
}

impl RecoverableReport {
    /// Whether every message of the trace was delivered.
    pub fn fully_delivered(&self) -> bool {
        self.abandoned.is_empty()
    }

    /// Worst detection latency across all detections (0 when none).
    pub fn max_detection_latency(&self) -> u64 {
        self.detections.iter().map(Detection::latency).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_builders_sort_and_dedup() {
        let s = FaultSchedule::new()
            .router_death(900, 3)
            .link_death(100, 0, Direction::East)
            .router_death(500, 3);
        let sorted = s.sorted();
        assert_eq!(sorted[0].cycle, 100);
        assert_eq!(sorted[2].cycle, 900);
        assert_eq!(s.dead_routers(), vec![3]);
        assert!(!s.is_empty());
    }

    #[test]
    fn schedule_validation_rejects_bad_hardware() {
        let cfg = NocConfig::paper_16core();
        assert!(FaultSchedule::new().router_death(0, 16).validate(&cfg).is_err());
        assert!(FaultSchedule::new().router_death(0, 15).validate(&cfg).is_ok());
        assert!(FaultSchedule::new().link_death(0, 16, Direction::East).validate(&cfg).is_err());
        assert!(FaultSchedule::new().link_death(0, 0, Direction::Local).validate(&cfg).is_err());
    }

    #[test]
    fn monitor_validation() {
        let cfg = NocConfig::paper_16core();
        assert!(MonitorConfig::default().validate(&cfg).is_ok());
        assert!(MonitorConfig { period: 0, ..Default::default() }.validate(&cfg).is_err());
        assert!(MonitorConfig { miss_threshold: 0, ..Default::default() }.validate(&cfg).is_err());
        assert!(MonitorConfig { monitor: 16, ..Default::default() }.validate(&cfg).is_err());
    }

    #[test]
    fn detection_arithmetic_is_monotone_and_bounded() {
        let cfg = NocConfig::paper_16core();
        let m = MonitorConfig::default();
        // A node dying just after beat k must wait for k+1..k+3 to miss.
        let d1 = m.detection_cycle(&cfg, 15, 257);
        let d2 = m.detection_cycle(&cfg, 15, 511);
        assert_eq!(d1, d2, "deaths inside one beat window detect together");
        // Latency is bounded by (threshold + 1) * period + latency slack.
        for died_at in [1u64, 256, 300, 1000, 5000] {
            let lat = m.detection_latency(&cfg, 15, died_at);
            assert!(lat >= u64::from(m.miss_threshold - 1) * m.period);
            assert!(lat <= (u64::from(m.miss_threshold) + 1) * m.period + 64);
        }
        // Farther nodes detect slightly later (longer beat latency).
        assert!(m.detection_cycle(&cfg, 15, 300) > m.detection_cycle(&cfg, 1, 300));
    }

    #[test]
    fn mcm_beat_latency_prices_interposer_seam_hops() {
        use crate::topology::HopClass;
        // An 8×4 single-chip mesh and a 2×(4×4)-chiplet package share
        // the same node grid, so any beat-latency difference is exactly
        // the seam pricing. Node 31 sits on chiplet 1; its XY route to
        // the monitor at node 0 crosses the interposer seam once.
        let mesh = NocConfig::paper_cores(32).unwrap();
        let mcm = NocConfig::paper_mcm(2, 16).unwrap();
        assert_eq!(mesh.nodes(), mcm.nodes());
        let m = MonitorConfig::default();
        // beat_latency is the uncongested route plus fixed overhead on
        // both topologies — no mesh-only shortcut.
        assert_eq!(m.beat_latency(&mesh, 31), mesh.uncongested_route_cycles(31, 0) + m.overhead);
        assert_eq!(m.beat_latency(&mcm, 31), mcm.uncongested_route_cycles(31, 0) + m.overhead);
        // The one seam hop swaps an intra-chip link traversal for an
        // inter-chip one: the delta is exactly the per-class difference.
        let seam_delta =
            mcm.link_cycles_for(HopClass::Inter) - mcm.link_cycles_for(HopClass::Intra);
        assert!(seam_delta > 0, "paper MCM prices seam links above mesh links");
        assert_eq!(m.beat_latency(&mcm, 31), m.beat_latency(&mesh, 31) + seam_delta);
        // A node on the monitor's own chiplet (node 11 = package (3, 1))
        // never crosses the seam: identical beat latency on both.
        assert_eq!(m.beat_latency(&mcm, 11), m.beat_latency(&mesh, 11));
        // The heartbeat deadline inherits the seam pricing verbatim.
        let died_at = 300;
        assert_eq!(
            m.detection_cycle(&mcm, 31, died_at),
            m.detection_cycle(&mesh, 31, died_at) + seam_delta
        );
    }

    #[test]
    fn death_at_emission_instant_counts_as_missed() {
        let cfg = NocConfig::paper_16core();
        let m = MonitorConfig::default();
        // Dying exactly at cycle 256 kills beat 1.
        let at_beat = m.detection_cycle(&cfg, 5, 256);
        let before_beat = m.detection_cycle(&cfg, 5, 255);
        assert_eq!(at_beat, before_beat);
        // One cycle later the node still emitted beat 1.
        assert!(m.detection_cycle(&cfg, 5, 257) > at_beat);
    }
}
