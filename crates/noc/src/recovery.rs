//! Time-varying fault schedules and the heartbeat health monitor.
//!
//! PR 2's [`crate::FaultModel`] describes faults that exist *before* a run
//! starts. This module adds the dynamic half: a [`FaultSchedule`] kills
//! routers and links at specific cycles **while traffic is in flight**,
//! and a [`MonitorConfig`] models the lightweight health-monitor protocol
//! that *detects* those deaths instead of being told about them.
//!
//! # Detection protocol
//!
//! Every router emits a one-phit heartbeat toward the monitor node each
//! `period` cycles on an out-of-band control plane (modelled at
//! uncongested Manhattan-distance latency — heartbeats are tiny and
//! prioritized, so they do not contend with data flits). The monitor
//! expects beat `k` of node `r` no later than
//! `k * period + beat_latency(r) + 1`; after `miss_threshold` consecutive
//! missed beats the node is declared dead
//! ([`DetectionCause::MissedHeartbeats`]). Independently, a source NIC
//! that exhausts its bounded retransmission budget against a dead
//! destination reports it out of band
//! ([`DetectionCause::RetransmitExhaustion`]) — whichever fires first
//! wins. Both paths are exercised by
//! [`crate::Simulator::run_recoverable`], and the analytic
//! [`MonitorConfig::detection_cycle`] reproduces the heartbeat arithmetic
//! exactly so higher layers can place detections on a timeline without a
//! flit-level simulation.

use crate::config::{NocConfig, NocError};
use crate::stats::SimReport;
use crate::topology::{Direction, McmTopology, Topo, Topology};
use serde::{Deserialize, Serialize};

/// What dies in a [`FaultEvent`].
///
/// The first two kinds are *flat* hardware faults the stepper applies
/// directly. The last two are *hierarchical* package-level faults that
/// only exist on MCM topologies; [`FaultSchedule::expanded`] lowers them
/// into the flat kinds before any simulation (a chiplet death expands to
/// its routers plus the interposer seam endpoints it terminates, a seam
/// death to every link of that seam), so the fault-aware BFS and the
/// active-set stepper route around what remains without ever seeing a
/// hierarchical event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultEventKind {
    /// A router (and its attached core) stops forwarding, injecting and
    /// ejecting. Flits inside it are lost.
    RouterDeath {
        /// The dying node.
        node: usize,
    },
    /// A link goes down in both directions; traffic reroutes around it.
    LinkDeath {
        /// The node naming the link.
        node: usize,
        /// The link's direction from `node`.
        dir: Direction,
    },
    /// A whole chiplet drops off the package: all of its routers plus
    /// the seam endpoints it terminates. MCM topologies only.
    ChipletDeath {
        /// The dying chiplet (package id).
        chiplet: usize,
    },
    /// An entire interposer seam between two adjacent chiplets goes
    /// down; traffic detours over surviving seams. MCM topologies only.
    SeamDeath {
        /// One chiplet flanking the seam.
        a: usize,
        /// The other chiplet flanking the seam.
        b: usize,
    },
}

/// One scheduled mid-run fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Simulation cycle at which the fault strikes.
    pub cycle: u64,
    /// What dies.
    pub kind: FaultEventKind,
}

/// A time-ordered schedule of mid-run faults.
///
/// # Examples
///
/// ```
/// use lts_noc::recovery::FaultSchedule;
///
/// let s = FaultSchedule::new().router_death(5_000, 5).link_death(9_000, 0, lts_noc::topology::Direction::East);
/// assert_eq!(s.events().len(), 2);
/// assert!(FaultSchedule::new().is_empty());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// An empty schedule (nothing ever dies).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a router death at `cycle`.
    #[must_use]
    pub fn router_death(mut self, cycle: u64, node: usize) -> Self {
        self.events.push(FaultEvent { cycle, kind: FaultEventKind::RouterDeath { node } });
        self
    }

    /// Adds a link death at `cycle`.
    #[must_use]
    pub fn link_death(mut self, cycle: u64, node: usize, dir: Direction) -> Self {
        self.events.push(FaultEvent { cycle, kind: FaultEventKind::LinkDeath { node, dir } });
        self
    }

    /// Adds a whole-chiplet death at `cycle` (MCM topologies only —
    /// validation rejects it on a single-chip mesh).
    #[must_use]
    pub fn chiplet_death(mut self, cycle: u64, chiplet: usize) -> Self {
        self.events.push(FaultEvent { cycle, kind: FaultEventKind::ChipletDeath { chiplet } });
        self
    }

    /// Adds a whole-seam death at `cycle` between adjacent chiplets `a`
    /// and `b` (MCM topologies only).
    #[must_use]
    pub fn seam_death(mut self, cycle: u64, a: usize, b: usize) -> Self {
        self.events.push(FaultEvent { cycle, kind: FaultEventKind::SeamDeath { a, b } });
        self
    }

    /// The events, in insertion order (sort with [`FaultSchedule::sorted`]).
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Whether the schedule contains no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The events sorted by cycle (stable: same-cycle events keep their
    /// insertion order).
    pub fn sorted(&self) -> Vec<FaultEvent> {
        let mut v = self.events.clone();
        v.sort_by_key(|e| e.cycle);
        v
    }

    /// The router-death nodes in the schedule (deduplicated, sorted).
    /// Hierarchical events are not expanded here — lower the schedule
    /// with [`FaultSchedule::expanded`] first to include the routers a
    /// chiplet death takes down.
    pub fn dead_routers(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self
            .events
            .iter()
            .filter_map(|e| match e.kind {
                FaultEventKind::RouterDeath { node } => Some(node),
                _ => None,
            })
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Lowers hierarchical package-level events into flat hardware
    /// events: each [`FaultEventKind::ChipletDeath`] becomes the router
    /// deaths of its member nodes plus the link deaths of its seam
    /// endpoints, each [`FaultEventKind::SeamDeath`] the link deaths of
    /// the whole seam — all at the original event cycle, in a stable
    /// deterministic order. Flat events pass through unchanged, so a
    /// schedule without hierarchical events expands to itself.
    ///
    /// # Errors
    ///
    /// Returns [`NocError::BadConfig`] when a hierarchical event targets
    /// a single-chip mesh, an out-of-range chiplet, or a chiplet pair
    /// with no shared seam.
    pub fn expanded(&self, config: &NocConfig) -> Result<FaultSchedule, NocError> {
        let mut events = Vec::with_capacity(self.events.len());
        for e in &self.events {
            match e.kind {
                FaultEventKind::RouterDeath { .. } | FaultEventKind::LinkDeath { .. } => {
                    events.push(*e);
                }
                FaultEventKind::ChipletDeath { chiplet } => {
                    let topo = package_topology(config, "chiplet death")?;
                    check_chiplet(&topo, chiplet)?;
                    for node in topo.chiplet_nodes(chiplet) {
                        events.push(FaultEvent {
                            cycle: e.cycle,
                            kind: FaultEventKind::RouterDeath { node },
                        });
                    }
                    for (node, dir) in topo.chiplet_seam_links(chiplet) {
                        events.push(FaultEvent {
                            cycle: e.cycle,
                            kind: FaultEventKind::LinkDeath { node, dir },
                        });
                    }
                }
                FaultEventKind::SeamDeath { a, b } => {
                    let topo = package_topology(config, "seam death")?;
                    check_chiplet(&topo, a)?;
                    check_chiplet(&topo, b)?;
                    let links = topo.seam_links(a, b);
                    if links.is_empty() {
                        return Err(NocError::BadConfig(format!(
                            "scheduled seam death between chiplets {a} and {b}, which share no seam"
                        )));
                    }
                    for (node, dir) in links {
                        events.push(FaultEvent {
                            cycle: e.cycle,
                            kind: FaultEventKind::LinkDeath { node, dir },
                        });
                    }
                }
            }
        }
        Ok(FaultSchedule { events })
    }

    /// Validates the schedule against a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`NocError::BadConfig`] for out-of-range nodes, a `Local`
    /// link direction, or a hierarchical (chiplet/seam) event that does
    /// not name a valid MCM package seam or chiplet.
    pub fn validate(&self, config: &NocConfig) -> Result<(), NocError> {
        let nodes = config.nodes();
        for e in &self.events {
            match e.kind {
                FaultEventKind::RouterDeath { node } => {
                    if node >= nodes {
                        return Err(NocError::BadConfig(format!(
                            "scheduled router death at node {node} out of range for {nodes} nodes"
                        )));
                    }
                }
                FaultEventKind::LinkDeath { node, dir } => {
                    if node >= nodes {
                        return Err(NocError::BadConfig(format!(
                            "scheduled link death at node {node} out of range for {nodes} nodes"
                        )));
                    }
                    if dir == Direction::Local {
                        return Err(NocError::BadConfig(
                            "scheduled link death direction must be a mesh direction".into(),
                        ));
                    }
                }
                FaultEventKind::ChipletDeath { chiplet } => {
                    let topo = package_topology(config, "chiplet death")?;
                    check_chiplet(&topo, chiplet)?;
                }
                FaultEventKind::SeamDeath { a, b } => {
                    let topo = package_topology(config, "seam death")?;
                    check_chiplet(&topo, a)?;
                    check_chiplet(&topo, b)?;
                    if topo.seam_links(a, b).is_empty() {
                        return Err(NocError::BadConfig(format!(
                            "scheduled seam death between chiplets {a} and {b}, which share no seam"
                        )));
                    }
                }
            }
        }
        Ok(())
    }
}

/// The MCM package behind `config`, or a typed error when the topology
/// is a single-chip mesh (hierarchical fault events have no meaning
/// there).
fn package_topology(config: &NocConfig, what: &str) -> Result<McmTopology, NocError> {
    match config.topo() {
        Topo::Mcm(topo) => Ok(topo),
        Topo::Mesh(_) => Err(NocError::BadConfig(format!(
            "scheduled {what} requires an MCM package topology, not a single-chip mesh"
        ))),
    }
}

/// Bounds-checks a chiplet id against the package, as a typed error.
fn check_chiplet(topo: &McmTopology, chiplet: usize) -> Result<(), NocError> {
    let chiplets = Topology::chiplets(topo);
    if chiplet >= chiplets {
        return Err(NocError::BadConfig(format!(
            "scheduled fault names chiplet {chiplet}, out of range for a {chiplets}-chiplet package"
        )));
    }
    Ok(())
}

/// Heartbeat health-monitor parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MonitorConfig {
    /// Heartbeat emission period in cycles.
    pub period: u64,
    /// Consecutive missed beats before a node is declared dead.
    pub miss_threshold: u32,
    /// Node hosting the health monitor.
    pub monitor: usize,
    /// Fixed processing overhead added to each beat's modelled latency.
    pub overhead: u64,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        Self { period: 256, miss_threshold: 3, monitor: 0, overhead: 4 }
    }
}

impl MonitorConfig {
    /// Validates the monitor against a mesh configuration.
    ///
    /// # Errors
    ///
    /// Returns [`NocError::BadConfig`] for a zero period/threshold or an
    /// out-of-range monitor node.
    pub fn validate(&self, config: &NocConfig) -> Result<(), NocError> {
        if self.period == 0 {
            return Err(NocError::BadConfig("heartbeat period must be positive".into()));
        }
        if self.miss_threshold == 0 {
            return Err(NocError::BadConfig("miss_threshold must be positive".into()));
        }
        if self.monitor >= config.nodes() {
            return Err(NocError::BadConfig(format!(
                "monitor node {} out of range for {} nodes",
                self.monitor,
                config.nodes()
            )));
        }
        Ok(())
    }

    /// Modelled control-plane latency of one heartbeat from `node` to the
    /// monitor: uncongested pipeline cycles along the XY route (interposer
    /// hops priced at their own link latency) plus the fixed overhead.
    pub fn beat_latency(&self, config: &NocConfig, node: usize) -> u64 {
        config.uncongested_route_cycles(node, self.monitor) + self.overhead
    }

    /// The cycle at which the monitor declares `node` dead, given it died
    /// at `died_at`: the arrival deadline of the `miss_threshold`-th
    /// consecutively missed beat. Beat `k` (emitted at `k * period`) is
    /// missed iff the node was already dead at its emission instant.
    pub fn detection_cycle(&self, config: &NocConfig, node: usize, died_at: u64) -> u64 {
        let first_missed = died_at.div_ceil(self.period).max(1);
        let last = first_missed + u64::from(self.miss_threshold) - 1;
        last * self.period + self.beat_latency(config, node) + 1
    }

    /// Detection latency in cycles: [`MonitorConfig::detection_cycle`]
    /// minus the death cycle.
    pub fn detection_latency(&self, config: &NocConfig, node: usize, died_at: u64) -> u64 {
        self.detection_cycle(config, node, died_at).saturating_sub(died_at)
    }

    /// The cycle at which the monitor upgrades per-router evidence to a
    /// *chiplet-liveness* verdict for `chiplet`, given the whole chiplet
    /// died at `died_at`: the latest [`MonitorConfig::detection_cycle`]
    /// across the chiplet's member routers. Individual routers missing
    /// beats is ambiguous — a congested or backing-off seam delays
    /// heartbeats just as effectively — so the monitor only declares the
    /// chiplet dead once *every* member router has lapsed its own
    /// seam-priced deadline.
    ///
    /// # Panics
    ///
    /// Panics if `chiplet` is out of range for the package.
    pub fn chiplet_detection_cycle(
        &self,
        config: &NocConfig,
        topo: &McmTopology,
        chiplet: usize,
        died_at: u64,
    ) -> u64 {
        topo.chiplet_nodes(chiplet)
            .iter()
            .map(|&n| self.detection_cycle(config, n, died_at))
            .max()
            .unwrap_or(died_at)
    }

    /// Chiplet-verdict latency in cycles:
    /// [`MonitorConfig::chiplet_detection_cycle`] minus the death cycle.
    ///
    /// # Panics
    ///
    /// Panics if `chiplet` is out of range for the package.
    pub fn chiplet_detection_latency(
        &self,
        config: &NocConfig,
        topo: &McmTopology,
        chiplet: usize,
        died_at: u64,
    ) -> u64 {
        self.chiplet_detection_cycle(config, topo, chiplet, died_at).saturating_sub(died_at)
    }
}

/// How a death was noticed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DetectionCause {
    /// The health monitor saw `miss_threshold` consecutive missed beats.
    MissedHeartbeats,
    /// A source NIC exhausted its retransmission budget against the node.
    RetransmitExhaustion,
}

/// One detected node death.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Detection {
    /// The node declared dead.
    pub node: usize,
    /// Cycle at which it actually died (ground truth from the schedule).
    pub died_at: u64,
    /// Cycle at which the monitor/NIC declared it dead.
    pub detected_at: u64,
    /// Which mechanism fired first.
    pub cause: DetectionCause,
}

impl Detection {
    /// Detection latency in cycles.
    pub fn latency(&self) -> u64 {
        self.detected_at.saturating_sub(self.died_at)
    }
}

/// The monitor's chiplet-liveness verdict, aggregated from per-router
/// heartbeat evidence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChipletVerdict {
    /// Only *some* of the chiplet's routers missed their deadlines —
    /// evidence consistent with a slow or severed interposer seam
    /// delaying heartbeats, not a package-level loss. The right response
    /// is link-level: retransmission and backoff, no replan.
    SlowSeam,
    /// *Every* router on the chiplet lapsed its seam-priced deadline:
    /// the chiplet is gone and the pipeline must replan without it.
    DeadChiplet,
}

/// One aggregated chiplet-level detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChipletDetection {
    /// The chiplet the evidence points at.
    pub chiplet: usize,
    /// Earliest member-router death cycle (ground truth).
    pub died_at: u64,
    /// Cycle at which the verdict firmed up: the latest member
    /// detection for [`ChipletVerdict::DeadChiplet`], the latest
    /// available evidence for [`ChipletVerdict::SlowSeam`].
    pub detected_at: u64,
    /// What the evidence supports.
    pub verdict: ChipletVerdict,
}

impl ChipletDetection {
    /// Verdict latency in cycles.
    pub fn latency(&self) -> u64 {
        self.detected_at.saturating_sub(self.died_at)
    }
}

/// Aggregates per-router [`Detection`]s into per-chiplet liveness
/// verdicts: a chiplet with *all* member routers detected is
/// [`ChipletVerdict::DeadChiplet`] (firm at the last member's
/// detection), one with partial evidence is
/// [`ChipletVerdict::SlowSeam`]. Chiplets with no detections at all
/// produce no entry. Results are sorted by chiplet id.
pub fn aggregate_chiplet_detections(
    detections: &[Detection],
    topo: &McmTopology,
) -> Vec<ChipletDetection> {
    let chiplets = Topology::chiplets(topo);
    let per_chip = topo.nodes_per_chiplet();
    let mut seen: Vec<Vec<&Detection>> = vec![Vec::new(); chiplets];
    for d in detections {
        if d.node < Topology::nodes(topo) {
            seen[topo.chiplet_of(d.node)].push(d);
        }
    }
    let mut verdicts = Vec::new();
    for (chiplet, members) in seen.iter().enumerate() {
        if members.is_empty() {
            continue;
        }
        let mut nodes: Vec<usize> = members.iter().map(|d| d.node).collect();
        nodes.sort_unstable();
        nodes.dedup();
        let verdict = if nodes.len() == per_chip {
            ChipletVerdict::DeadChiplet
        } else {
            ChipletVerdict::SlowSeam
        };
        verdicts.push(ChipletDetection {
            chiplet,
            died_at: members.iter().map(|d| d.died_at).min().unwrap_or(0),
            detected_at: members.iter().map(|d| d.detected_at).max().unwrap_or(0),
            verdict,
        });
    }
    verdicts
}

/// Result of a [`crate::Simulator::run_recoverable`] run: the usual
/// simulation report plus what died, when it was noticed, and which
/// messages could not be delivered because of mid-run deaths.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecoverableReport {
    /// The flit-level report over the delivered portion of the trace.
    pub report: SimReport,
    /// Node deaths noticed by the monitor or the NICs, in detection order.
    pub detections: Vec<Detection>,
    /// Indices (into the input trace) of messages abandoned because an
    /// endpoint died or retransmission was exhausted mid-run.
    pub abandoned: Vec<usize>,
}

impl RecoverableReport {
    /// Whether every message of the trace was delivered.
    pub fn fully_delivered(&self) -> bool {
        self.abandoned.is_empty()
    }

    /// Worst detection latency across all detections (0 when none).
    pub fn max_detection_latency(&self) -> u64 {
        self.detections.iter().map(Detection::latency).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_builders_sort_and_dedup() {
        let s = FaultSchedule::new()
            .router_death(900, 3)
            .link_death(100, 0, Direction::East)
            .router_death(500, 3);
        let sorted = s.sorted();
        assert_eq!(sorted[0].cycle, 100);
        assert_eq!(sorted[2].cycle, 900);
        assert_eq!(s.dead_routers(), vec![3]);
        assert!(!s.is_empty());
    }

    #[test]
    fn schedule_validation_rejects_bad_hardware() {
        let cfg = NocConfig::paper_16core();
        assert!(FaultSchedule::new().router_death(0, 16).validate(&cfg).is_err());
        assert!(FaultSchedule::new().router_death(0, 15).validate(&cfg).is_ok());
        assert!(FaultSchedule::new().link_death(0, 16, Direction::East).validate(&cfg).is_err());
        assert!(FaultSchedule::new().link_death(0, 0, Direction::Local).validate(&cfg).is_err());
    }

    #[test]
    fn monitor_validation() {
        let cfg = NocConfig::paper_16core();
        assert!(MonitorConfig::default().validate(&cfg).is_ok());
        assert!(MonitorConfig { period: 0, ..Default::default() }.validate(&cfg).is_err());
        assert!(MonitorConfig { miss_threshold: 0, ..Default::default() }.validate(&cfg).is_err());
        assert!(MonitorConfig { monitor: 16, ..Default::default() }.validate(&cfg).is_err());
    }

    #[test]
    fn detection_arithmetic_is_monotone_and_bounded() {
        let cfg = NocConfig::paper_16core();
        let m = MonitorConfig::default();
        // A node dying just after beat k must wait for k+1..k+3 to miss.
        let d1 = m.detection_cycle(&cfg, 15, 257);
        let d2 = m.detection_cycle(&cfg, 15, 511);
        assert_eq!(d1, d2, "deaths inside one beat window detect together");
        // Latency is bounded by (threshold + 1) * period + latency slack.
        for died_at in [1u64, 256, 300, 1000, 5000] {
            let lat = m.detection_latency(&cfg, 15, died_at);
            assert!(lat >= u64::from(m.miss_threshold - 1) * m.period);
            assert!(lat <= (u64::from(m.miss_threshold) + 1) * m.period + 64);
        }
        // Farther nodes detect slightly later (longer beat latency).
        assert!(m.detection_cycle(&cfg, 15, 300) > m.detection_cycle(&cfg, 1, 300));
    }

    #[test]
    fn mcm_beat_latency_prices_interposer_seam_hops() {
        use crate::topology::HopClass;
        // An 8×4 single-chip mesh and a 2×(4×4)-chiplet package share
        // the same node grid, so any beat-latency difference is exactly
        // the seam pricing. Node 31 sits on chiplet 1; its XY route to
        // the monitor at node 0 crosses the interposer seam once.
        let mesh = NocConfig::paper_cores(32).unwrap();
        let mcm = NocConfig::paper_mcm(2, 16).unwrap();
        assert_eq!(mesh.nodes(), mcm.nodes());
        let m = MonitorConfig::default();
        // beat_latency is the uncongested route plus fixed overhead on
        // both topologies — no mesh-only shortcut.
        assert_eq!(m.beat_latency(&mesh, 31), mesh.uncongested_route_cycles(31, 0) + m.overhead);
        assert_eq!(m.beat_latency(&mcm, 31), mcm.uncongested_route_cycles(31, 0) + m.overhead);
        // The one seam hop swaps an intra-chip link traversal for an
        // inter-chip one: the delta is exactly the per-class difference.
        let seam_delta =
            mcm.link_cycles_for(HopClass::Inter) - mcm.link_cycles_for(HopClass::Intra);
        assert!(seam_delta > 0, "paper MCM prices seam links above mesh links");
        assert_eq!(m.beat_latency(&mcm, 31), m.beat_latency(&mesh, 31) + seam_delta);
        // A node on the monitor's own chiplet (node 11 = package (3, 1))
        // never crosses the seam: identical beat latency on both.
        assert_eq!(m.beat_latency(&mcm, 11), m.beat_latency(&mesh, 11));
        // The heartbeat deadline inherits the seam pricing verbatim.
        let died_at = 300;
        assert_eq!(
            m.detection_cycle(&mcm, 31, died_at),
            m.detection_cycle(&mesh, 31, died_at) + seam_delta
        );
    }

    #[test]
    fn hierarchical_events_require_a_package_topology() {
        let mesh = NocConfig::paper_16core();
        assert!(FaultSchedule::new().chiplet_death(100, 0).validate(&mesh).is_err());
        assert!(FaultSchedule::new().seam_death(100, 0, 1).validate(&mesh).is_err());
        let mcm = NocConfig::paper_mcm(2, 16).unwrap();
        assert!(FaultSchedule::new().chiplet_death(100, 1).validate(&mcm).is_ok());
        assert!(FaultSchedule::new().chiplet_death(100, 2).validate(&mcm).is_err());
        assert!(FaultSchedule::new().seam_death(100, 0, 1).validate(&mcm).is_ok());
        // A 2x2 package grid has no seam across the diagonal.
        let quad = NocConfig::paper_mcm(4, 4).unwrap();
        assert!(FaultSchedule::new().seam_death(100, 0, 3).validate(&quad).is_err());
        assert!(FaultSchedule::new().seam_death(100, 0, 1).validate(&quad).is_ok());
    }

    #[test]
    fn chiplet_death_expands_to_member_routers_and_seam_endpoints() {
        let mcm = NocConfig::paper_mcm(2, 16).unwrap();
        let Topo::Mcm(topo) = mcm.topo() else { panic!("paper_mcm must be a package") };
        let s = FaultSchedule::new().chiplet_death(5_000, 1);
        let expanded = s.expanded(&mcm).unwrap();
        let routers = expanded.dead_routers();
        let mut members = topo.chiplet_nodes(1);
        members.sort_unstable();
        assert_eq!(routers, members, "every member router dies");
        let links: Vec<(usize, Direction)> = expanded
            .events()
            .iter()
            .filter_map(|e| match e.kind {
                FaultEventKind::LinkDeath { node, dir } => Some((node, dir)),
                _ => None,
            })
            .collect();
        assert_eq!(links, topo.chiplet_seam_links(1), "seam endpoints are severed explicitly");
        assert!(expanded.events().iter().all(|e| e.cycle == 5_000));
        // A flat schedule expands to itself.
        let flat = FaultSchedule::new().router_death(10, 3).link_death(20, 0, Direction::East);
        assert_eq!(flat.expanded(&mcm).unwrap(), flat);
    }

    #[test]
    fn seam_death_expands_to_the_whole_seam() {
        let mcm = NocConfig::paper_mcm(2, 16).unwrap();
        let Topo::Mcm(topo) = mcm.topo() else { panic!("paper_mcm must be a package") };
        let expanded = FaultSchedule::new().seam_death(1_000, 0, 1).expanded(&mcm).unwrap();
        assert!(expanded.dead_routers().is_empty(), "a seam death kills no routers");
        assert_eq!(expanded.events().len(), topo.seam_links(0, 1).len());
    }

    #[test]
    fn chiplet_detection_is_the_slowest_member_deadline() {
        let mcm = NocConfig::paper_mcm(2, 16).unwrap();
        let Topo::Mcm(topo) = mcm.topo() else { panic!("paper_mcm must be a package") };
        let m = MonitorConfig::default();
        let died_at = 300;
        let verdict_at = m.chiplet_detection_cycle(&mcm, &topo, 1, died_at);
        let per_router =
            topo.chiplet_nodes(1).iter().map(|&n| m.detection_cycle(&mcm, n, died_at)).max();
        assert_eq!(Some(verdict_at), per_router);
        // The verdict can only lag individual member detections.
        for &n in &topo.chiplet_nodes(1) {
            assert!(verdict_at >= m.detection_cycle(&mcm, n, died_at));
        }
        assert_eq!(
            m.chiplet_detection_latency(&mcm, &topo, 1, died_at),
            verdict_at - died_at,
            "latency is the verdict cycle minus the death cycle"
        );
        // The remote chiplet's verdict is strictly later than the
        // monitor's own: seam-priced beat latencies shift the deadline.
        assert!(verdict_at > m.chiplet_detection_cycle(&mcm, &topo, 0, died_at));
    }

    #[test]
    fn aggregation_separates_dead_chiplets_from_slow_seams() {
        let mcm = NocConfig::paper_mcm(2, 16).unwrap();
        let Topo::Mcm(topo) = mcm.topo() else { panic!("paper_mcm must be a package") };
        let m = MonitorConfig::default();
        // All 16 routers of chiplet 1 detected: a firm chiplet loss.
        let mut detections: Vec<Detection> = topo
            .chiplet_nodes(1)
            .iter()
            .map(|&n| Detection {
                node: n,
                died_at: 300,
                detected_at: m.detection_cycle(&mcm, n, 300),
                cause: DetectionCause::MissedHeartbeats,
            })
            .collect();
        // Two routers of chiplet 0 detected: seam-shaped evidence only.
        for &n in &topo.chiplet_nodes(0)[..2] {
            detections.push(Detection {
                node: n,
                died_at: 400,
                detected_at: m.detection_cycle(&mcm, n, 400),
                cause: DetectionCause::MissedHeartbeats,
            });
        }
        let verdicts = aggregate_chiplet_detections(&detections, &topo);
        assert_eq!(verdicts.len(), 2);
        assert_eq!(verdicts[0].chiplet, 0);
        assert_eq!(verdicts[0].verdict, ChipletVerdict::SlowSeam);
        assert_eq!(verdicts[1].chiplet, 1);
        assert_eq!(verdicts[1].verdict, ChipletVerdict::DeadChiplet);
        assert_eq!(verdicts[1].died_at, 300);
        assert_eq!(
            verdicts[1].detected_at,
            m.chiplet_detection_cycle(&mcm, &topo, 1, 300),
            "the aggregated verdict lands exactly on the analytic chiplet deadline"
        );
        assert!(verdicts[1].latency() > 0);
        // No evidence, no verdict.
        assert!(aggregate_chiplet_detections(&[], &topo).is_empty());
    }

    #[test]
    fn death_at_emission_instant_counts_as_missed() {
        let cfg = NocConfig::paper_16core();
        let m = MonitorConfig::default();
        // Dying exactly at cycle 256 kills beat 1.
        let at_beat = m.detection_cycle(&cfg, 5, 256);
        let before_beat = m.detection_cycle(&cfg, 5, 255);
        assert_eq!(at_beat, before_beat);
        // One cycle later the node still emitted beat 1.
        assert!(m.detection_cycle(&cfg, 5, 257) > at_beat);
    }
}
