//! Router microarchitecture state.
//!
//! Each node has an input-queued virtual-channel router with five ports
//! (N/E/S/W/Local). The cycle-by-cycle pipeline logic lives in
//! [`crate::network`], which needs simultaneous access to neighbouring
//! routers for credit return; this module defines the per-router state.

use crate::packet::Flit;
use crate::topology::Direction;
use std::collections::VecDeque;

/// Number of router ports (4 mesh directions + local).
pub const PORTS: usize = 5;

/// A flit waiting in an input buffer, ready for arbitration at
/// `ready_at` (models router pipeline + link latency).
#[derive(Debug, Clone, Copy)]
pub struct TimedFlit {
    /// The flit itself.
    pub flit: Flit,
    /// First cycle at which this flit may traverse the switch.
    pub ready_at: u64,
}

/// One virtual channel of one input port.
#[derive(Debug, Clone, Default)]
pub struct InputVc {
    /// Buffered flits, in arrival order.
    pub queue: VecDeque<TimedFlit>,
    /// Output direction of the packet currently at the front
    /// (computed when its head flit first reaches the front).
    pub route: Option<Direction>,
    /// Downstream VC allocated to the current packet.
    pub out_vc: Option<usize>,
    /// Head flit of the worm currently traversing this VC (set when the
    /// route latches, cleared when the tail dequeues). Identifies the
    /// worm so a mid-run router death can close its orphaned remainder.
    pub active: Option<Flit>,
}

impl InputVc {
    /// Whether a new packet may start buffering here (no packet of a
    /// previous allocation is still flowing through).
    pub fn accepts_new_packet(&self) -> bool {
        self.queue.is_empty() && self.route.is_none()
    }
}

/// Book-keeping for one downstream virtual channel as seen from an output
/// port: who holds it and how many downstream buffer slots remain.
#[derive(Debug, Clone, Copy)]
pub struct OutputVc {
    /// The input (port, vc) whose packet currently holds this VC.
    pub holder: Option<(usize, usize)>,
    /// Credits = free flit slots in the downstream input buffer.
    pub credits: usize,
}

/// Full state of one router.
#[derive(Debug, Clone)]
pub struct Router {
    /// `inputs[port][vc]`.
    pub inputs: Vec<Vec<InputVc>>,
    /// `outputs[port][vc]` (the `Local` output needs no VC bookkeeping but
    /// keeps entries for uniformity).
    pub outputs: Vec<Vec<OutputVc>>,
    /// Physical lane occupancy per output port: `lanes[port][lane]` is the
    /// first cycle the lane is free again (flit serialization over
    /// narrower phits keeps a lane busy for several cycles).
    pub lanes: Vec<Vec<u64>>,
    /// Round-robin arbitration pointer per output port, over the flattened
    /// `(input port, vc)` space.
    pub rr_pointer: [usize; PORTS],
}

impl Router {
    /// Creates a router with `vcs` virtual channels of `buffer_flits`
    /// credits each and `physical_channels` lanes per output port.
    pub fn new(vcs: usize, buffer_flits: usize, physical_channels: usize) -> Self {
        Self {
            inputs: (0..PORTS).map(|_| (0..vcs).map(|_| InputVc::default()).collect()).collect(),
            outputs: (0..PORTS)
                .map(|_| {
                    (0..vcs).map(|_| OutputVc { holder: None, credits: buffer_flits }).collect()
                })
                .collect(),
            lanes: (0..PORTS).map(|_| vec![0u64; physical_channels]).collect(),
            rr_pointer: [0; PORTS],
        }
    }

    /// Index of a free lane on `port` at `cycle`, if any.
    pub fn free_lane(&self, port: usize, cycle: u64) -> Option<usize> {
        self.lanes[port].iter().position(|&busy_until| busy_until <= cycle)
    }

    /// Number of free lanes on `port` at `cycle`.
    pub fn free_lanes(&self, port: usize, cycle: u64) -> usize {
        self.lanes[port].iter().filter(|&&busy_until| busy_until <= cycle).count()
    }

    /// Total flits currently buffered in this router's input queues.
    pub fn buffered_flits(&self) -> usize {
        self.inputs.iter().flat_map(|port| port.iter()).map(|vc| vc.queue.len()).sum()
    }

    /// Earliest `ready_at` among buffered flits, if any.
    pub fn earliest_ready(&self) -> Option<u64> {
        self.inputs
            .iter()
            .flat_map(|port| port.iter())
            .filter_map(|vc| vc.queue.front().map(|t| t.ready_at))
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_router_is_empty_with_full_credits() {
        let r = Router::new(3, 4, 2);
        assert_eq!(r.buffered_flits(), 0);
        assert_eq!(r.earliest_ready(), None);
        for port in &r.outputs {
            for vc in port {
                assert_eq!(vc.credits, 4);
                assert!(vc.holder.is_none());
            }
        }
        assert_eq!(r.inputs.len(), PORTS);
        assert_eq!(r.inputs[0].len(), 3);
    }

    #[test]
    fn accepts_new_packet_requires_idle_vc() {
        let mut vc = InputVc::default();
        assert!(vc.accepts_new_packet());
        vc.route = Some(Direction::East);
        assert!(!vc.accepts_new_packet());
    }

    #[test]
    fn earliest_ready_finds_minimum() {
        let mut r = Router::new(2, 4, 2);
        let f = Flit {
            packet: 0,
            message: 0,
            dst: 0,
            is_head: true,
            is_tail: true,
            yx: false,
            attempt: 0,
            seq: 0,
            poisoned: false,
        };
        r.inputs[0][0].queue.push_back(TimedFlit { flit: f, ready_at: 9 });
        r.inputs[3][1].queue.push_back(TimedFlit { flit: f, ready_at: 4 });
        assert_eq!(r.earliest_ready(), Some(4));
        assert_eq!(r.buffered_flits(), 2);
    }
}
