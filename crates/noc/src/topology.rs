//! Topologies: the [`Topology`] trait, the single-chip [`Mesh2d`], and the
//! multi-chip-module [`McmTopology`] (a grid of chiplet meshes joined by
//! interposer links), plus dimension-ordered routing over either.
//!
//! Both implementors expose **row-major global node ids over a rectangle**,
//! so routing, neighbour enumeration and distance are shared; what differs
//! is the *class* of each hop ([`HopClass`]): an MCM hop that crosses a
//! chiplet seam rides the interposer, which is slower, wider and more
//! expensive than an on-chip link. A 1×1-chiplet MCM is geometrically the
//! plain mesh, which is what makes single-chip results the `chiplets = 1`
//! special case.

use serde::{Deserialize, Serialize};

/// Router port directions. `Local` is the injection/ejection port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Toward smaller y.
    North,
    /// Toward larger x.
    East,
    /// Toward larger y.
    South,
    /// Toward smaller x.
    West,
    /// The attached core.
    Local,
}

impl Direction {
    /// All five port directions, in port-index order.
    pub const ALL: [Direction; 5] =
        [Direction::North, Direction::East, Direction::South, Direction::West, Direction::Local];

    /// Port index (0..5) of this direction.
    pub fn index(self) -> usize {
        match self {
            Direction::North => 0,
            Direction::East => 1,
            Direction::South => 2,
            Direction::West => 3,
            Direction::Local => 4,
        }
    }

    /// The opposite direction (`Local` is its own opposite).
    pub fn opposite(self) -> Direction {
        match self {
            Direction::North => Direction::South,
            Direction::East => Direction::West,
            Direction::South => Direction::North,
            Direction::West => Direction::East,
            Direction::Local => Direction::Local,
        }
    }
}

/// Latency/energy class of one link hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HopClass {
    /// An on-chip mesh link.
    Intra,
    /// An inter-chiplet interposer link.
    Inter,
}

/// A switched interconnect with row-major node ids on a `width × height`
/// rectangle.
///
/// Routing, neighbour enumeration, distance and path walking are provided
/// from the global geometry; implementors add the hierarchy: how many
/// chiplets there are, which chiplet a node belongs to, and which hops
/// cross a chiplet seam ([`Topology::hop_class`]).
pub trait Topology {
    /// Global columns.
    fn width(&self) -> usize;

    /// Global rows.
    fn height(&self) -> usize;

    /// Number of nodes.
    fn nodes(&self) -> usize {
        self.width() * self.height()
    }

    /// Coordinates `(x, y)` of a node id.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    fn coords(&self, node: usize) -> (usize, usize) {
        assert!(node < self.nodes(), "node {node} out of range");
        (node % self.width(), node / self.width())
    }

    /// Node id of coordinates `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of range.
    fn node_at(&self, x: usize, y: usize) -> usize {
        assert!(x < self.width() && y < self.height(), "({x},{y}) out of range");
        y * self.width() + x
    }

    /// Manhattan (hop) distance between two nodes.
    fn distance(&self, a: usize, b: usize) -> usize {
        let (ax, ay) = self.coords(a);
        let (bx, by) = self.coords(b);
        ax.abs_diff(bx) + ay.abs_diff(by)
    }

    /// The neighbour of `node` in `dir`, if it exists.
    fn neighbor(&self, node: usize, dir: Direction) -> Option<usize> {
        let (x, y) = self.coords(node);
        match dir {
            Direction::North if y > 0 => Some(self.node_at(x, y - 1)),
            Direction::South if y + 1 < self.height() => Some(self.node_at(x, y + 1)),
            Direction::East if x + 1 < self.width() => Some(self.node_at(x + 1, y)),
            Direction::West if x > 0 => Some(self.node_at(x - 1, y)),
            _ => None,
        }
    }

    /// Dimension-ordered (XY) routing: the output direction a flit at
    /// `here` takes toward `dst`; `Local` when `here == dst`.
    fn route_xy(&self, here: usize, dst: usize) -> Direction {
        let (hx, hy) = self.coords(here);
        let (dx, dy) = self.coords(dst);
        if hx < dx {
            Direction::East
        } else if hx > dx {
            Direction::West
        } else if hy < dy {
            Direction::South
        } else if hy > dy {
            Direction::North
        } else {
            Direction::Local
        }
    }

    /// Dimension-ordered YX routing (the complementary order of O1TURN).
    fn route_yx(&self, here: usize, dst: usize) -> Direction {
        let (hx, hy) = self.coords(here);
        let (dx, dy) = self.coords(dst);
        if hy < dy {
            Direction::South
        } else if hy > dy {
            Direction::North
        } else if hx < dx {
            Direction::East
        } else if hx > dx {
            Direction::West
        } else {
            Direction::Local
        }
    }

    /// Routes in the given dimension order (`yx = false` → XY).
    fn route_ordered(&self, yx: bool, here: usize, dst: usize) -> Direction {
        if yx {
            self.route_yx(here, dst)
        } else {
            self.route_xy(here, dst)
        }
    }

    /// The full XY path from `src` to `dst`, excluding `src`, including
    /// `dst`.
    fn path_xy(&self, src: usize, dst: usize) -> Vec<usize> {
        let mut path = Vec::with_capacity(self.distance(src, dst));
        let mut here = src;
        while here != dst {
            let dir = self.route_xy(here, dst);
            here = self.neighbor(here, dir).expect("XY routing never leaves the mesh");
            path.push(here);
        }
        path
    }

    /// The class of the link leaving `node` in `dir` (`Local` and
    /// off-edge directions report `Intra`; only real links matter).
    fn hop_class(&self, _node: usize, _dir: Direction) -> HopClass {
        HopClass::Intra
    }

    /// Number of chiplets.
    fn chiplets(&self) -> usize {
        1
    }

    /// Chiplet id owning `node`.
    fn chiplet_of(&self, _node: usize) -> usize {
        0
    }

    /// Manhattan distance between two nodes' chiplets on the package grid
    /// (the number of interposer seams an XY route crosses).
    fn chiplet_distance(&self, _a: usize, _b: usize) -> usize {
        0
    }

    /// Longest shortest-path hop count.
    fn diameter(&self) -> usize {
        (self.width() - 1) + (self.height() - 1)
    }
}

/// A `width × height` mesh with row-major node ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mesh2d {
    width: usize,
    height: usize,
}

impl Mesh2d {
    /// Creates a mesh.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "mesh dimensions must be positive");
        Self { width, height }
    }

    /// Mesh width (columns).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Mesh height (rows).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.width * self.height
    }

    /// Coordinates `(x, y)` of a node id.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn coords(&self, node: usize) -> (usize, usize) {
        assert!(node < self.nodes(), "node {node} out of range");
        (node % self.width, node / self.width)
    }

    /// Node id of coordinates `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of range.
    pub fn node_at(&self, x: usize, y: usize) -> usize {
        assert!(x < self.width && y < self.height, "({x},{y}) out of range");
        y * self.width + x
    }

    /// Manhattan (hop) distance between two nodes — the paper's inter-core
    /// "Hamming Distance" on the mesh.
    pub fn distance(&self, a: usize, b: usize) -> usize {
        let (ax, ay) = self.coords(a);
        let (bx, by) = self.coords(b);
        ax.abs_diff(bx) + ay.abs_diff(by)
    }

    /// The neighbour of `node` in `dir`, if it exists.
    pub fn neighbor(&self, node: usize, dir: Direction) -> Option<usize> {
        let (x, y) = self.coords(node);
        match dir {
            Direction::North if y > 0 => Some(self.node_at(x, y - 1)),
            Direction::South if y + 1 < self.height => Some(self.node_at(x, y + 1)),
            Direction::East if x + 1 < self.width => Some(self.node_at(x + 1, y)),
            Direction::West if x > 0 => Some(self.node_at(x - 1, y)),
            _ => None,
        }
    }

    /// Dimension-ordered (XY) routing: the output direction a flit at
    /// `here` takes toward `dst` — X is fully resolved before Y;
    /// `Local` when `here == dst`.
    pub fn route_xy(&self, here: usize, dst: usize) -> Direction {
        let (hx, hy) = self.coords(here);
        let (dx, dy) = self.coords(dst);
        if hx < dx {
            Direction::East
        } else if hx > dx {
            Direction::West
        } else if hy < dy {
            Direction::South
        } else if hy > dy {
            Direction::North
        } else {
            Direction::Local
        }
    }

    /// Dimension-ordered YX routing: Y is fully resolved before X (the
    /// complementary order used by O1TURN).
    pub fn route_yx(&self, here: usize, dst: usize) -> Direction {
        let (hx, hy) = self.coords(here);
        let (dx, dy) = self.coords(dst);
        if hy < dy {
            Direction::South
        } else if hy > dy {
            Direction::North
        } else if hx < dx {
            Direction::East
        } else if hx > dx {
            Direction::West
        } else {
            Direction::Local
        }
    }

    /// Routes in the given dimension order (`yx = false` → XY).
    pub fn route_ordered(&self, yx: bool, here: usize, dst: usize) -> Direction {
        if yx {
            self.route_yx(here, dst)
        } else {
            self.route_xy(here, dst)
        }
    }

    /// The full XY path from `src` to `dst`, excluding `src`, including
    /// `dst`.
    pub fn path_xy(&self, src: usize, dst: usize) -> Vec<usize> {
        let mut path = Vec::with_capacity(self.distance(src, dst));
        let mut here = src;
        while here != dst {
            let dir = self.route_xy(here, dst);
            here = self.neighbor(here, dir).expect("XY routing never leaves the mesh");
            path.push(here);
        }
        path
    }

    /// The `n × n` hop-distance matrix (row-major).
    pub fn distance_matrix(&self) -> Vec<usize> {
        let n = self.nodes();
        let mut m = vec![0usize; n * n];
        for a in 0..n {
            for b in 0..n {
                m[a * n + b] = self.distance(a, b);
            }
        }
        m
    }

    /// Mean hop distance over all ordered pairs of distinct nodes.
    pub fn mean_distance(&self) -> f64 {
        let n = self.nodes();
        if n < 2 {
            return 0.0;
        }
        let total: usize = self.distance_matrix().iter().sum();
        total as f64 / (n * (n - 1)) as f64
    }

    /// The squarest wider-than-tall mesh holding exactly `n` nodes — the
    /// geometry the paper uses for its core-count sweeps (16 → 4×4,
    /// 32 → 8×4, primes degenerate to a chain).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn for_nodes(n: usize) -> Self {
        assert!(n > 0, "mesh must have at least one node");
        let mut best = (n, 1);
        let mut d = 1;
        while d * d <= n {
            if n.is_multiple_of(d) {
                best = (n / d, d);
            }
            d += 1;
        }
        Self::new(best.0, best.1)
    }
}

impl Topology for Mesh2d {
    fn width(&self) -> usize {
        self.width
    }

    fn height(&self) -> usize {
        self.height
    }
}

/// A multi-chip module: a `grid_width × grid_height` package grid of
/// chiplets, each a `chip_width × chip_height` mesh, joined edge-to-edge
/// by interposer links.
///
/// Node ids are row-major over the *flattened* global rectangle
/// (`chip_width·grid_width × chip_height·grid_height`), so the router
/// radix, dimension-ordered routing and deadlock freedom of the mesh all
/// carry over unchanged; a hop is an interposer hop exactly when it
/// crosses a chiplet seam.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct McmTopology {
    chip_width: usize,
    chip_height: usize,
    grid_width: usize,
    grid_height: usize,
}

impl McmTopology {
    /// Creates an MCM of `grid_width × grid_height` chiplets, each a
    /// `chip_width × chip_height` mesh.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(
        chip_width: usize,
        chip_height: usize,
        grid_width: usize,
        grid_height: usize,
    ) -> Self {
        assert!(
            chip_width > 0 && chip_height > 0 && grid_width > 0 && grid_height > 0,
            "MCM dimensions must be positive"
        );
        Self { chip_width, chip_height, grid_width, grid_height }
    }

    /// Per-chiplet mesh width.
    pub fn chip_width(&self) -> usize {
        self.chip_width
    }

    /// Per-chiplet mesh height.
    pub fn chip_height(&self) -> usize {
        self.chip_height
    }

    /// Package-grid width (chiplet columns).
    pub fn grid_width(&self) -> usize {
        self.grid_width
    }

    /// Package-grid height (chiplet rows).
    pub fn grid_height(&self) -> usize {
        self.grid_height
    }

    /// Cores on one chiplet.
    pub fn nodes_per_chiplet(&self) -> usize {
        self.chip_width * self.chip_height
    }

    /// Package-grid coordinates of chiplet `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    pub fn chiplet_coords(&self, c: usize) -> (usize, usize) {
        assert!(c < self.chiplets(), "chiplet {c} out of range");
        (c % self.grid_width, c / self.grid_width)
    }

    /// Global node id of local node `local` (row-major within the
    /// chiplet) on chiplet `c`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn chiplet_node(&self, c: usize, local: usize) -> usize {
        assert!(local < self.nodes_per_chiplet(), "local node {local} out of range");
        let (cx, cy) = self.chiplet_coords(c);
        let (lx, ly) = (local % self.chip_width, local / self.chip_width);
        (cy * self.chip_height + ly) * self.width() + cx * self.chip_width + lx
    }

    /// Global node ids of chiplet `c`, in local row-major order.
    pub fn chiplet_nodes(&self, c: usize) -> Vec<usize> {
        (0..self.nodes_per_chiplet()).map(|l| self.chiplet_node(c, l)).collect()
    }

    /// The interposer links forming the seam between chiplets `a` and
    /// `b`, each named `(node, dir)` from the `a` side. Empty when the
    /// chiplets are not grid-adjacent (there is no seam between them).
    ///
    /// # Panics
    ///
    /// Panics if either chiplet id is out of range.
    pub fn seam_links(&self, a: usize, b: usize) -> Vec<(usize, Direction)> {
        assert!(a < self.chiplets(), "chiplet {a} out of range for {} chiplets", self.chiplets());
        assert!(b < self.chiplets(), "chiplet {b} out of range for {} chiplets", self.chiplets());
        let mut links = Vec::new();
        for node in self.chiplet_nodes(a) {
            for dir in [Direction::North, Direction::East, Direction::South, Direction::West] {
                if let Some(nb) = self.neighbor(node, dir) {
                    if self.chiplet_of(nb) == b && b != a {
                        links.push((node, dir));
                    }
                }
            }
        }
        links
    }

    /// Every interposer link incident to chiplet `c` — the seam
    /// endpoints severed when the whole chiplet drops off the package.
    /// Each link is named `(node, dir)` from the `c` side.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    pub fn chiplet_seam_links(&self, c: usize) -> Vec<(usize, Direction)> {
        assert!(c < self.chiplets(), "chiplet {c} out of range for {} chiplets", self.chiplets());
        let mut links = Vec::new();
        for node in self.chiplet_nodes(c) {
            for dir in [Direction::North, Direction::East, Direction::South, Direction::West] {
                if let Some(nb) = self.neighbor(node, dir) {
                    if self.chiplet_of(nb) != c {
                        links.push((node, dir));
                    }
                }
            }
        }
        links
    }

    /// Chiplet ids in serpentine (boustrophedon) package order, so that
    /// consecutive entries are always grid-adjacent — the natural order
    /// for laying out pipeline stages with single-seam boundaries.
    pub fn serpentine_chiplets(&self) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.chiplets());
        for gy in 0..self.grid_height {
            let row: Vec<usize> =
                (0..self.grid_width).map(|gx| gy * self.grid_width + gx).collect();
            if gy % 2 == 0 {
                order.extend(row);
            } else {
                order.extend(row.into_iter().rev());
            }
        }
        order
    }
}

impl Topology for McmTopology {
    fn width(&self) -> usize {
        self.chip_width * self.grid_width
    }

    fn height(&self) -> usize {
        self.chip_height * self.grid_height
    }

    fn hop_class(&self, node: usize, dir: Direction) -> HopClass {
        let (x, y) = self.coords(node);
        let seam = match dir {
            Direction::East => (x + 1) % self.chip_width == 0,
            Direction::West => x % self.chip_width == 0,
            Direction::South => (y + 1) % self.chip_height == 0,
            Direction::North => y % self.chip_height == 0,
            Direction::Local => false,
        };
        if seam {
            HopClass::Inter
        } else {
            HopClass::Intra
        }
    }

    fn chiplets(&self) -> usize {
        self.grid_width * self.grid_height
    }

    fn chiplet_of(&self, node: usize) -> usize {
        let (x, y) = self.coords(node);
        (y / self.chip_height) * self.grid_width + x / self.chip_width
    }

    fn chiplet_distance(&self, a: usize, b: usize) -> usize {
        let (ax, ay) = self.chiplet_coords(self.chiplet_of(a));
        let (bx, by) = self.chiplet_coords(self.chiplet_of(b));
        ax.abs_diff(bx) + ay.abs_diff(by)
    }
}

/// Statically dispatched topology: the concrete type stored in configs
/// and simulators. Delegates every [`Topology`] method to the wrapped
/// implementor without dynamic dispatch, preserving `Copy`/serde.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Topo {
    /// A single-chip 2-D mesh.
    Mesh(Mesh2d),
    /// A multi-chip module.
    Mcm(McmTopology),
}

impl Topology for Topo {
    fn width(&self) -> usize {
        match self {
            Topo::Mesh(m) => m.width(),
            Topo::Mcm(m) => Topology::width(m),
        }
    }

    fn height(&self) -> usize {
        match self {
            Topo::Mesh(m) => m.height(),
            Topo::Mcm(m) => Topology::height(m),
        }
    }

    fn hop_class(&self, node: usize, dir: Direction) -> HopClass {
        match self {
            Topo::Mesh(_) => HopClass::Intra,
            Topo::Mcm(m) => m.hop_class(node, dir),
        }
    }

    fn chiplets(&self) -> usize {
        match self {
            Topo::Mesh(_) => 1,
            Topo::Mcm(m) => Topology::chiplets(m),
        }
    }

    fn chiplet_of(&self, node: usize) -> usize {
        match self {
            Topo::Mesh(_) => 0,
            Topo::Mcm(m) => m.chiplet_of(node),
        }
    }

    fn chiplet_distance(&self, a: usize, b: usize) -> usize {
        match self {
            Topo::Mesh(_) => 0,
            Topo::Mcm(m) => m.chiplet_distance(a, b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coords_roundtrip() {
        let m = Mesh2d::new(4, 4);
        for node in 0..16 {
            let (x, y) = m.coords(node);
            assert_eq!(m.node_at(x, y), node);
        }
    }

    #[test]
    fn distance_matches_figure_6a() {
        // Fig. 6(a): distances of the first four cores (top row of the 4x4
        // mesh) are 0,1,2,3 / 1,0,1,2 / 2,1,0,1 / 3,2,1,0.
        let m = Mesh2d::new(4, 4);
        let expected = [[0, 1, 2, 3], [1, 0, 1, 2], [2, 1, 0, 1], [3, 2, 1, 0]];
        for (a, row) in expected.iter().enumerate() {
            for (b, &want) in row.iter().enumerate() {
                assert_eq!(m.distance(a, b), want);
            }
        }
        // And a vertical + horizontal case.
        assert_eq!(m.distance(0, 15), 6);
        assert_eq!(m.distance(0, 4), 1);
    }

    #[test]
    fn xy_routing_goes_x_first() {
        let m = Mesh2d::new(4, 4);
        // From (0,0) to (2,2): must head East until x matches.
        assert_eq!(m.route_xy(0, 10), Direction::East);
        assert_eq!(m.route_xy(2, 10), Direction::South); // (2,0) -> South
        assert_eq!(m.route_xy(10, 10), Direction::Local);
    }

    #[test]
    fn path_length_equals_distance() {
        let m = Mesh2d::new(4, 4);
        for src in 0..16 {
            for dst in 0..16 {
                let path = m.path_xy(src, dst);
                assert_eq!(path.len(), m.distance(src, dst));
                if src != dst {
                    assert_eq!(*path.last().unwrap(), dst);
                }
            }
        }
    }

    #[test]
    fn neighbors_respect_edges() {
        let m = Mesh2d::new(2, 2);
        assert_eq!(m.neighbor(0, Direction::North), None);
        assert_eq!(m.neighbor(0, Direction::West), None);
        assert_eq!(m.neighbor(0, Direction::East), Some(1));
        assert_eq!(m.neighbor(0, Direction::South), Some(2));
        assert_eq!(m.neighbor(3, Direction::North), Some(1));
    }

    #[test]
    fn opposite_directions() {
        assert_eq!(Direction::North.opposite(), Direction::South);
        assert_eq!(Direction::East.opposite(), Direction::West);
        assert_eq!(Direction::Local.opposite(), Direction::Local);
    }

    #[test]
    fn yx_routing_goes_y_first() {
        let m = Mesh2d::new(4, 4);
        // From (0,0) to (2,2): YX heads South until y matches, then East.
        assert_eq!(m.route_yx(0, 10), Direction::South);
        assert_eq!(m.route_yx(8, 10), Direction::East); // (0,2) -> East
        assert_eq!(m.route_yx(10, 10), Direction::Local);
        assert_eq!(m.route_ordered(false, 0, 10), Direction::East);
        assert_eq!(m.route_ordered(true, 0, 10), Direction::South);
    }

    #[test]
    fn xy_and_yx_paths_have_equal_length() {
        let m = Mesh2d::new(4, 4);
        for src in 0..16 {
            for dst in 0..16 {
                // Walk the YX route manually.
                let mut here = src;
                let mut hops = 0;
                while here != dst {
                    let dir = m.route_yx(here, dst);
                    here = m.neighbor(here, dir).unwrap();
                    hops += 1;
                }
                assert_eq!(hops, m.distance(src, dst));
            }
        }
    }

    #[test]
    fn mean_distance_grows_with_mesh() {
        let small = Mesh2d::new(2, 2).mean_distance();
        let large = Mesh2d::new(4, 4).mean_distance();
        assert!(large > small);
        // 2x2 mesh: pairs at distance 1 (8 ordered) and 2 (4 ordered) -> 4/3.
        assert!((small - 4.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn for_nodes_picks_squarest_wider_than_tall() {
        assert_eq!(Mesh2d::for_nodes(4), Mesh2d::new(2, 2));
        assert_eq!(Mesh2d::for_nodes(8), Mesh2d::new(4, 2));
        assert_eq!(Mesh2d::for_nodes(16), Mesh2d::new(4, 4));
        assert_eq!(Mesh2d::for_nodes(32), Mesh2d::new(8, 4));
        assert_eq!(Mesh2d::for_nodes(12), Mesh2d::new(4, 3));
        assert_eq!(Mesh2d::for_nodes(7), Mesh2d::new(7, 1));
        assert_eq!(Mesh2d::for_nodes(1), Mesh2d::new(1, 1));
    }

    #[test]
    fn single_chiplet_mcm_is_the_plain_mesh() {
        let mesh = Mesh2d::new(4, 4);
        let mcm = McmTopology::new(4, 4, 1, 1);
        assert_eq!(Topology::nodes(&mcm), mesh.nodes());
        for a in 0..16 {
            assert_eq!(mcm.chiplet_of(a), 0);
            for b in 0..16 {
                assert_eq!(Topology::distance(&mcm, a, b), mesh.distance(a, b));
                assert_eq!(mcm.chiplet_distance(a, b), 0);
            }
            for dir in Direction::ALL {
                assert_eq!(Topology::neighbor(&mcm, a, dir), mesh.neighbor(a, dir));
                // No seams: every hop is on-chip.
                if Topology::neighbor(&mcm, a, dir).is_some() {
                    assert_eq!(mcm.hop_class(a, dir), HopClass::Intra);
                }
            }
        }
    }

    #[test]
    fn mcm_seam_hops_are_inter_chip() {
        // 2x1 grid of 2x2 chiplets: global 4x2 mesh, seam between x=1,2.
        let mcm = McmTopology::new(2, 2, 2, 1);
        assert_eq!(Topology::width(&mcm), 4);
        assert_eq!(Topology::height(&mcm), 2);
        assert_eq!(Topology::chiplets(&mcm), 2);
        // Node 1 = (1,0) on chiplet 0; East crosses the seam.
        assert_eq!(mcm.hop_class(1, Direction::East), HopClass::Inter);
        assert_eq!(mcm.hop_class(2, Direction::West), HopClass::Inter);
        assert_eq!(mcm.hop_class(0, Direction::East), HopClass::Intra);
        assert_eq!(mcm.hop_class(1, Direction::South), HopClass::Intra);
        assert_eq!(mcm.chiplet_of(1), 0);
        assert_eq!(mcm.chiplet_of(2), 1);
        assert_eq!(mcm.chiplet_distance(0, 3), 1);
        assert_eq!(mcm.chiplet_distance(0, 1), 0);
    }

    #[test]
    fn chiplet_node_ids_partition_the_package() {
        let mcm = McmTopology::new(4, 2, 2, 2);
        let mut seen = vec![false; Topology::nodes(&mcm)];
        for c in 0..Topology::chiplets(&mcm) {
            for n in mcm.chiplet_nodes(c) {
                assert_eq!(mcm.chiplet_of(n), c);
                assert!(!seen[n], "node {n} owned by two chiplets");
                seen[n] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
        // Local ids are row-major within the chiplet.
        assert_eq!(mcm.chiplet_node(0, 0), 0);
        assert_eq!(mcm.chiplet_node(1, 0), 4);
        assert_eq!(mcm.chiplet_node(2, 0), 16);
        // Chiplet 3 sits at grid (1, 1); its local node 5 is (1, 1) inside
        // the 4x2 chip, i.e. package coords (5, 3) on the 8-wide mesh.
        assert_eq!(mcm.chiplet_node(3, 5), 3 * 8 + 5);
    }

    #[test]
    fn serpentine_order_is_grid_adjacent() {
        let mcm = McmTopology::new(2, 2, 2, 2);
        let order = mcm.serpentine_chiplets();
        assert_eq!(order, vec![0, 1, 3, 2]);
        for w in order.windows(2) {
            let (ax, ay) = mcm.chiplet_coords(w[0]);
            let (bx, by) = mcm.chiplet_coords(w[1]);
            assert_eq!(ax.abs_diff(bx) + ay.abs_diff(by), 1);
        }
    }

    #[test]
    fn topo_enum_delegates() {
        let topo = Topo::Mcm(McmTopology::new(2, 2, 2, 1));
        assert_eq!(topo.nodes(), 8);
        assert_eq!(topo.chiplets(), 2);
        assert_eq!(topo.hop_class(1, Direction::East), HopClass::Inter);
        assert_eq!(topo.diameter(), 3 + 1);
        let mesh = Topo::Mesh(Mesh2d::new(4, 4));
        assert_eq!(mesh.chiplets(), 1);
        assert_eq!(mesh.hop_class(1, Direction::East), HopClass::Intra);
        assert_eq!(mesh.distance(0, 15), 6);
    }
}
