//! 2-D mesh topology and dimension-ordered routing.

use serde::{Deserialize, Serialize};

/// Router port directions. `Local` is the injection/ejection port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Toward smaller y.
    North,
    /// Toward larger x.
    East,
    /// Toward larger y.
    South,
    /// Toward smaller x.
    West,
    /// The attached core.
    Local,
}

impl Direction {
    /// All five port directions, in port-index order.
    pub const ALL: [Direction; 5] =
        [Direction::North, Direction::East, Direction::South, Direction::West, Direction::Local];

    /// Port index (0..5) of this direction.
    pub fn index(self) -> usize {
        match self {
            Direction::North => 0,
            Direction::East => 1,
            Direction::South => 2,
            Direction::West => 3,
            Direction::Local => 4,
        }
    }

    /// The opposite direction (`Local` is its own opposite).
    pub fn opposite(self) -> Direction {
        match self {
            Direction::North => Direction::South,
            Direction::East => Direction::West,
            Direction::South => Direction::North,
            Direction::West => Direction::East,
            Direction::Local => Direction::Local,
        }
    }
}

/// A `width × height` mesh with row-major node ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mesh2d {
    width: usize,
    height: usize,
}

impl Mesh2d {
    /// Creates a mesh.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "mesh dimensions must be positive");
        Self { width, height }
    }

    /// Mesh width (columns).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Mesh height (rows).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.width * self.height
    }

    /// Coordinates `(x, y)` of a node id.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn coords(&self, node: usize) -> (usize, usize) {
        assert!(node < self.nodes(), "node {node} out of range");
        (node % self.width, node / self.width)
    }

    /// Node id of coordinates `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of range.
    pub fn node_at(&self, x: usize, y: usize) -> usize {
        assert!(x < self.width && y < self.height, "({x},{y}) out of range");
        y * self.width + x
    }

    /// Manhattan (hop) distance between two nodes — the paper's inter-core
    /// "Hamming Distance" on the mesh.
    pub fn distance(&self, a: usize, b: usize) -> usize {
        let (ax, ay) = self.coords(a);
        let (bx, by) = self.coords(b);
        ax.abs_diff(bx) + ay.abs_diff(by)
    }

    /// The neighbour of `node` in `dir`, if it exists.
    pub fn neighbor(&self, node: usize, dir: Direction) -> Option<usize> {
        let (x, y) = self.coords(node);
        match dir {
            Direction::North if y > 0 => Some(self.node_at(x, y - 1)),
            Direction::South if y + 1 < self.height => Some(self.node_at(x, y + 1)),
            Direction::East if x + 1 < self.width => Some(self.node_at(x + 1, y)),
            Direction::West if x > 0 => Some(self.node_at(x - 1, y)),
            _ => None,
        }
    }

    /// Dimension-ordered (XY) routing: the output direction a flit at
    /// `here` takes toward `dst` — X is fully resolved before Y;
    /// `Local` when `here == dst`.
    pub fn route_xy(&self, here: usize, dst: usize) -> Direction {
        let (hx, hy) = self.coords(here);
        let (dx, dy) = self.coords(dst);
        if hx < dx {
            Direction::East
        } else if hx > dx {
            Direction::West
        } else if hy < dy {
            Direction::South
        } else if hy > dy {
            Direction::North
        } else {
            Direction::Local
        }
    }

    /// Dimension-ordered YX routing: Y is fully resolved before X (the
    /// complementary order used by O1TURN).
    pub fn route_yx(&self, here: usize, dst: usize) -> Direction {
        let (hx, hy) = self.coords(here);
        let (dx, dy) = self.coords(dst);
        if hy < dy {
            Direction::South
        } else if hy > dy {
            Direction::North
        } else if hx < dx {
            Direction::East
        } else if hx > dx {
            Direction::West
        } else {
            Direction::Local
        }
    }

    /// Routes in the given dimension order (`yx = false` → XY).
    pub fn route_ordered(&self, yx: bool, here: usize, dst: usize) -> Direction {
        if yx {
            self.route_yx(here, dst)
        } else {
            self.route_xy(here, dst)
        }
    }

    /// The full XY path from `src` to `dst`, excluding `src`, including
    /// `dst`.
    pub fn path_xy(&self, src: usize, dst: usize) -> Vec<usize> {
        let mut path = Vec::with_capacity(self.distance(src, dst));
        let mut here = src;
        while here != dst {
            let dir = self.route_xy(here, dst);
            here = self.neighbor(here, dir).expect("XY routing never leaves the mesh");
            path.push(here);
        }
        path
    }

    /// The `n × n` hop-distance matrix (row-major).
    pub fn distance_matrix(&self) -> Vec<usize> {
        let n = self.nodes();
        let mut m = vec![0usize; n * n];
        for a in 0..n {
            for b in 0..n {
                m[a * n + b] = self.distance(a, b);
            }
        }
        m
    }

    /// Mean hop distance over all ordered pairs of distinct nodes.
    pub fn mean_distance(&self) -> f64 {
        let n = self.nodes();
        if n < 2 {
            return 0.0;
        }
        let total: usize = self.distance_matrix().iter().sum();
        total as f64 / (n * (n - 1)) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coords_roundtrip() {
        let m = Mesh2d::new(4, 4);
        for node in 0..16 {
            let (x, y) = m.coords(node);
            assert_eq!(m.node_at(x, y), node);
        }
    }

    #[test]
    fn distance_matches_figure_6a() {
        // Fig. 6(a): distances of the first four cores (top row of the 4x4
        // mesh) are 0,1,2,3 / 1,0,1,2 / 2,1,0,1 / 3,2,1,0.
        let m = Mesh2d::new(4, 4);
        let expected = [[0, 1, 2, 3], [1, 0, 1, 2], [2, 1, 0, 1], [3, 2, 1, 0]];
        for (a, row) in expected.iter().enumerate() {
            for (b, &want) in row.iter().enumerate() {
                assert_eq!(m.distance(a, b), want);
            }
        }
        // And a vertical + horizontal case.
        assert_eq!(m.distance(0, 15), 6);
        assert_eq!(m.distance(0, 4), 1);
    }

    #[test]
    fn xy_routing_goes_x_first() {
        let m = Mesh2d::new(4, 4);
        // From (0,0) to (2,2): must head East until x matches.
        assert_eq!(m.route_xy(0, 10), Direction::East);
        assert_eq!(m.route_xy(2, 10), Direction::South); // (2,0) -> South
        assert_eq!(m.route_xy(10, 10), Direction::Local);
    }

    #[test]
    fn path_length_equals_distance() {
        let m = Mesh2d::new(4, 4);
        for src in 0..16 {
            for dst in 0..16 {
                let path = m.path_xy(src, dst);
                assert_eq!(path.len(), m.distance(src, dst));
                if src != dst {
                    assert_eq!(*path.last().unwrap(), dst);
                }
            }
        }
    }

    #[test]
    fn neighbors_respect_edges() {
        let m = Mesh2d::new(2, 2);
        assert_eq!(m.neighbor(0, Direction::North), None);
        assert_eq!(m.neighbor(0, Direction::West), None);
        assert_eq!(m.neighbor(0, Direction::East), Some(1));
        assert_eq!(m.neighbor(0, Direction::South), Some(2));
        assert_eq!(m.neighbor(3, Direction::North), Some(1));
    }

    #[test]
    fn opposite_directions() {
        assert_eq!(Direction::North.opposite(), Direction::South);
        assert_eq!(Direction::East.opposite(), Direction::West);
        assert_eq!(Direction::Local.opposite(), Direction::Local);
    }

    #[test]
    fn yx_routing_goes_y_first() {
        let m = Mesh2d::new(4, 4);
        // From (0,0) to (2,2): YX heads South until y matches, then East.
        assert_eq!(m.route_yx(0, 10), Direction::South);
        assert_eq!(m.route_yx(8, 10), Direction::East); // (0,2) -> East
        assert_eq!(m.route_yx(10, 10), Direction::Local);
        assert_eq!(m.route_ordered(false, 0, 10), Direction::East);
        assert_eq!(m.route_ordered(true, 0, 10), Direction::South);
    }

    #[test]
    fn xy_and_yx_paths_have_equal_length() {
        let m = Mesh2d::new(4, 4);
        for src in 0..16 {
            for dst in 0..16 {
                // Walk the YX route manually.
                let mut here = src;
                let mut hops = 0;
                while here != dst {
                    let dir = m.route_yx(here, dst);
                    here = m.neighbor(here, dir).unwrap();
                    hops += 1;
                }
                assert_eq!(hops, m.distance(src, dst));
            }
        }
    }

    #[test]
    fn mean_distance_grows_with_mesh() {
        let small = Mesh2d::new(2, 2).mean_distance();
        let large = Mesh2d::new(4, 4).mean_distance();
        assert!(large > small);
        // 2x2 mesh: pairs at distance 1 (8 ordered) and 2 (4 ordered) -> 4/3.
        assert!((small - 4.0 / 3.0).abs() < 1e-9);
    }
}
