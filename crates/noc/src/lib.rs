//! Flit-level network-on-chip simulator with a DSENT-style energy model,
//! over pluggable package topologies ([`Topology`]): a single-chip 2-D
//! mesh ([`Mesh2d`]) or a multi-chip module of interposer-linked mesh
//! chiplets ([`McmTopology`]).
//!
//! This crate reconstructs the NoC substrate of the Learn-to-Scale paper
//! ("BookSim2 and DSENT are used to simulate the NoC communication
//! process", Table II): wormhole-switched, input-buffered virtual-channel
//! routers on a 2-D mesh, with
//!
//! * 512-bit flits and 20-flit maximum packets,
//! * dimension-ordered (XY) routing,
//! * 3 virtual channels per port with credit-based flow control,
//! * a 3-stage router pipeline plus single-cycle links (interposer
//!   seams on an MCM price each hop by its [`HopClass`]: wider phits,
//!   slower traversal).
//!
//! Congestion — the effect the paper's communication-aware training
//! attacks — emerges naturally: layer-transition bursts serialize on
//! links, back-pressure through credits, and block upstream routers.
//!
//! [`analytic`] offers a closed-form hop-count model used both as a lower
//! bound in tests and as the cheap cost model inside training-time masks.
//!
//! # Examples
//!
//! ```
//! use lts_noc::{NocConfig, Simulator, traffic::Message};
//!
//! # fn main() -> Result<(), lts_noc::NocError> {
//! let config = NocConfig::paper_16core();
//! let mut sim = Simulator::new(config)?;
//! let report = sim.run(&[Message::new(0, 5, 4096, 0)])?;
//! assert_eq!(report.messages_delivered, 1);
//! assert!(report.makespan > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::print_stdout, clippy::print_stderr)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod analytic;
pub mod config;
pub mod energy;
pub mod fault;
pub mod network;
pub mod packet;
pub mod recovery;
pub mod router;
pub mod stats;
pub mod topology;
pub mod traffic;

pub use config::{InterposerConfig, NocConfig, NocError, RoutingPolicy, TopologySpec};
pub use energy::{EnergyModel, EnergyReport};
pub use fault::{FaultModel, RetransmitConfig};
pub use network::Simulator;
pub use recovery::{
    aggregate_chiplet_detections, ChipletDetection, ChipletVerdict, Detection, DetectionCause,
    FaultEvent, FaultEventKind, FaultSchedule, MonitorConfig, RecoverableReport,
};
pub use stats::{FaultStats, SimReport};
pub use topology::{HopClass, McmTopology, Mesh2d, Topo, Topology};
