//! Simulation statistics.

use serde::{Deserialize, Serialize};

/// Raw event counts accumulated during a simulation (the energy model's
/// inputs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventCounts {
    /// Flit writes into input buffers (arrivals + injections).
    pub buffer_writes: u64,
    /// Flit reads out of input buffers (switch traversals).
    pub buffer_reads: u64,
    /// Crossbar traversals (one per switch win).
    pub crossbar_traversals: u64,
    /// Router-to-router link traversals.
    pub link_traversals: u64,
    /// Switch/VC arbitration decisions performed.
    pub arbitrations: u64,
    /// Flits ejected at their destination's local port.
    pub ejections: u64,
}

/// Counters for injected faults and the NIC retransmission protocol.
/// All-zero on a fault-free run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Flits poisoned by an injected drop.
    pub flits_dropped: u64,
    /// Flits poisoned by an injected corruption.
    pub flits_corrupted: u64,
    /// Packets discarded at the destination NIC (failed integrity check).
    pub packets_rejected: u64,
    /// Packets re-sent after a timeout.
    pub packets_retransmitted: u64,
    /// Clean packets discarded as duplicates of an earlier delivery.
    pub duplicate_packets: u64,
    /// Flits discarded in flight by a mid-run topology death (they were
    /// inside, or heading into, a router that died under them). Only
    /// nonzero for dynamic-schedule runs.
    pub flits_lost: u64,
}

impl FaultStats {
    /// Whether any fault or protocol event occurred.
    pub fn any(&self) -> bool {
        self != &FaultStats::default()
    }

    /// Accumulates another run's counters into `self` (used when a
    /// workload issues several simulations on one faulty mesh).
    pub fn merge(&mut self, other: &FaultStats) {
        self.flits_dropped += other.flits_dropped;
        self.flits_corrupted += other.flits_corrupted;
        self.packets_rejected += other.packets_rejected;
        self.packets_retransmitted += other.packets_retransmitted;
        self.duplicate_packets += other.duplicate_packets;
        self.flits_lost += other.flits_lost;
    }
}

/// Result of simulating one traffic trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Cycle at which the last flit was ejected (0 for an empty trace).
    pub makespan: u64,
    /// Messages fully delivered.
    pub messages_delivered: usize,
    /// Total payload bytes delivered.
    pub bytes_delivered: u64,
    /// Total flits ejected.
    pub flits_delivered: u64,
    /// Per-message latency (completion − injection), message order matches
    /// the input trace.
    pub message_latencies: Vec<u64>,
    /// Cycles in which at least one ready flit lost arbitration or stalled
    /// on credits — the congestion/blocking measure.
    pub blocked_flit_cycles: u64,
    /// Low-level event counts for the energy model.
    pub events: EventCounts,
    /// Flits carried per directed link, indexed `node * 4 + direction`
    /// (N/E/S/W); the utilization heat map.
    pub link_flits: Vec<u64>,
    /// Link traversals that stayed inside one chiplet. On a plain mesh
    /// every traversal is intra-chip, so this equals
    /// `events.link_traversals`.
    pub intra_chip_traversals: u64,
    /// Link traversals that crossed an interposer seam between chiplets
    /// (always 0 on a plain mesh). `intra + inter` sums bit-exactly to
    /// `events.link_traversals`.
    pub inter_chip_traversals: u64,
    /// Injected-fault and retransmission counters (all zero when the run
    /// used no fault model).
    pub faults: FaultStats,
    /// Cycles the stepper actually evaluated (observability only: the
    /// active-set and full-scan steppers produce identical values, and
    /// the field is excluded from equivalence fingerprints by callers
    /// that pin pre-overhaul reports).
    pub cycles_simulated: u64,
    /// Idle cycles skipped by fast-forwarding to the next event instead of
    /// being stepped. `cycles_simulated + cycles_fast_forwarded` spans the
    /// whole run; a high fast-forward share marks a sparse trace.
    pub cycles_fast_forwarded: u64,
}

impl SimReport {
    /// Mean message latency in cycles (`0` when no messages).
    pub fn mean_latency(&self) -> f64 {
        if self.message_latencies.is_empty() {
            return 0.0;
        }
        self.message_latencies.iter().sum::<u64>() as f64 / self.message_latencies.len() as f64
    }

    /// Maximum message latency (`0` when no messages).
    pub fn max_latency(&self) -> u64 {
        self.message_latencies.iter().copied().max().unwrap_or(0)
    }

    /// Delivered throughput in flits per cycle (`0` for empty traces).
    pub fn throughput_flits_per_cycle(&self) -> f64 {
        if self.makespan == 0 {
            return 0.0;
        }
        self.flits_delivered as f64 / self.makespan as f64
    }

    /// Share of the run's cycles in which at least one ready flit was
    /// blocked (`blocked_flit_cycles / makespan`, `0` for an empty
    /// trace) — the saturation signal serving and the sweeps report.
    /// Near `0` the network is contention-free; toward `1` almost every
    /// cycle stalled somebody.
    pub fn blocked_share(&self) -> f64 {
        if self.makespan == 0 {
            return 0.0;
        }
        self.blocked_flit_cycles as f64 / self.makespan as f64
    }

    /// The most-loaded directed link's flit count.
    pub fn max_link_flits(&self) -> u64 {
        self.link_flits.iter().copied().max().unwrap_or(0)
    }

    /// Load-imbalance factor: max link load over mean nonzero link load
    /// (`0` when nothing moved). High values mean a hotspot.
    pub fn link_imbalance(&self) -> f64 {
        let nonzero: Vec<u64> = self.link_flits.iter().copied().filter(|&f| f > 0).collect();
        if nonzero.is_empty() {
            return 0.0;
        }
        let mean = nonzero.iter().sum::<u64>() as f64 / nonzero.len() as f64;
        self.max_link_flits() as f64 / mean
    }
}

/// Renders per-node outgoing link load as an ASCII grid (sum over the
/// four outgoing directions), plus the single hottest directed link.
pub fn render_link_heatmap<T: crate::topology::Topology>(report: &SimReport, topo: &T) -> String {
    use crate::topology::Direction;
    let mut out = String::from("outgoing flits per node (sum over N/E/S/W links):\n");
    for y in 0..topo.height() {
        for x in 0..topo.width() {
            let node = topo.node_at(x, y);
            let total: u64 =
                (0..4).map(|d| report.link_flits.get(node * 4 + d).copied().unwrap_or(0)).sum();
            out.push_str(&format!("[{node:>2}]{total:<8}"));
        }
        out.push('\n');
    }
    // Name the hottest directed link.
    if let Some((idx, &max)) = report.link_flits.iter().enumerate().max_by_key(|&(_, &f)| f) {
        if max > 0 {
            let node = idx / 4;
            let dir = Direction::ALL[idx % 4];
            out.push_str(&format!("hottest link: node {node} {dir:?} ({max} flits)\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_helpers_handle_empty_reports() {
        let r = SimReport {
            makespan: 0,
            messages_delivered: 0,
            bytes_delivered: 0,
            flits_delivered: 0,
            message_latencies: vec![],
            blocked_flit_cycles: 0,
            events: EventCounts::default(),
            link_flits: vec![],
            intra_chip_traversals: 0,
            inter_chip_traversals: 0,
            faults: FaultStats::default(),
            cycles_simulated: 0,
            cycles_fast_forwarded: 0,
        };
        assert_eq!(r.mean_latency(), 0.0);
        assert_eq!(r.max_link_flits(), 0);
        assert_eq!(r.link_imbalance(), 0.0);
        assert_eq!(r.max_latency(), 0);
        assert_eq!(r.throughput_flits_per_cycle(), 0.0);
        assert_eq!(r.blocked_share(), 0.0);
    }

    #[test]
    fn latency_helpers_compute_aggregates() {
        let r = SimReport {
            makespan: 100,
            messages_delivered: 2,
            bytes_delivered: 128,
            flits_delivered: 50,
            message_latencies: vec![10, 30],
            blocked_flit_cycles: 5,
            events: EventCounts::default(),
            link_flits: vec![4, 0, 2, 0],
            intra_chip_traversals: 0,
            inter_chip_traversals: 0,
            faults: FaultStats::default(),
            cycles_simulated: 0,
            cycles_fast_forwarded: 0,
        };
        assert_eq!(r.mean_latency(), 20.0);
        assert_eq!(r.max_latency(), 30);
        assert_eq!(r.throughput_flits_per_cycle(), 0.5);
        assert_eq!(r.max_link_flits(), 4);
        assert!((r.link_imbalance() - 4.0 / 3.0).abs() < 1e-9);
        assert_eq!(r.blocked_share(), 0.05);
    }

    #[test]
    fn heatmap_renders_loads_for_a_2x2_mesh() {
        let mesh = crate::topology::Mesh2d::new(2, 2);
        let mut link_flits = vec![0u64; 16];
        link_flits[1] = 7; // node 0 East
        link_flits[2] = 9; // node 0 South
        let r = SimReport {
            makespan: 1,
            messages_delivered: 0,
            bytes_delivered: 0,
            flits_delivered: 0,
            message_latencies: vec![],
            blocked_flit_cycles: 0,
            events: EventCounts::default(),
            link_flits,
            intra_chip_traversals: 0,
            inter_chip_traversals: 0,
            faults: FaultStats::default(),
            cycles_simulated: 0,
            cycles_fast_forwarded: 0,
        };
        let s = render_link_heatmap(&r, &mesh);
        // Node 0's outgoing total is 7 + 9 = 16.
        assert!(s.contains("[ 0]16"), "{s}");
        assert!(s.contains("[ 3]"), "{s}");
        assert!(s.contains("hottest link: node 0 South (9 flits)"), "{s}");
    }
}
