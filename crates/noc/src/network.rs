//! The cycle-driven NoC simulator.
//!
//! Wormhole switching over input-queued VC routers: head flits compute an
//! XY route when they reach a buffer front, allocate a downstream virtual
//! channel, and win round-robin switch arbitration before traversing;
//! body/tail flits follow on the same VC; tails release it. Credits flow
//! back one per dequeued flit. Congestion appears as flits that are ready
//! but lose arbitration or stall on credits, counted in
//! [`SimReport::blocked_flit_cycles`].

use crate::config::{NocConfig, NocError};
use crate::fault::{edge_dead, plan_routes, FaultModel};
use crate::packet::{packetize_into, Flit, PacketDescriptor, PacketId};
use crate::recovery::{
    Detection, DetectionCause, FaultEventKind, FaultSchedule, MonitorConfig, RecoverableReport,
};
use crate::router::{Router, TimedFlit, PORTS};
use crate::stats::{EventCounts, FaultStats, SimReport};
use crate::topology::{Direction, HopClass, Topo, Topology};
use crate::traffic::Message;
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};

const LOCAL: usize = 4;

/// Retransmission attempts per packet used by [`Simulator::run_recoverable`]
/// when the fault model leaves [`crate::RetransmitConfig::max_attempts`] at
/// its unbounded default: a dynamic run must never retry forever against a
/// destination that died under it.
const DYNAMIC_DEFAULT_MAX_ATTEMPTS: u32 = 8;

/// A packet queued at a source, waiting to start injection.
#[derive(Debug, Clone)]
struct PendingPacket {
    desc: PacketDescriptor,
    inject_cycle: u64,
    /// Index into the run's message list.
    message_index: usize,
}

/// A packet currently streaming its flits into the local input port.
#[derive(Debug, Clone)]
struct OpenPacket {
    desc: PacketDescriptor,
    message_index: usize,
    sent: u64,
    vc: usize,
}

#[derive(Debug, Clone, Default)]
struct SourceState {
    pending: VecDeque<PendingPacket>,
    open: Option<OpenPacket>,
    /// Core→router link lanes: first free cycle per physical channel.
    lanes: Vec<u64>,
}

#[derive(Debug, Clone)]
struct MessageState {
    inject_cycle: u64,
    remaining_flits: u64,
    bytes: u64,
    completed_at: Option<u64>,
}

/// Per-packet retransmission bookkeeping (fault mode only; indexed by
/// packet id, which the run assigns densely from 0).
#[derive(Debug, Clone)]
struct PacketRecord {
    desc: PacketDescriptor,
    /// Current (latest) attempt number.
    attempt: u32,
    /// The destination accepted a clean copy.
    delivered: bool,
    /// The source received the acknowledgement.
    acked: bool,
}

/// Reassembly state of one `(packet, attempt)` at the destination NIC.
#[derive(Debug, Clone, Copy, Default)]
struct RecvState {
    received: u64,
    poisoned: bool,
}

/// Flit-accurate simulator for one [`NocConfig`].
///
/// Reusable: each [`Simulator::run`] starts from a clean network.
///
/// # Examples
///
/// ```
/// use lts_noc::traffic::Message;
/// use lts_noc::{NocConfig, Simulator};
///
/// # fn main() -> Result<(), lts_noc::NocError> {
/// let mut sim = Simulator::new(NocConfig::paper_16core())?;
/// // Opposite mesh corners: 6 hops of pipeline + serialization.
/// let report = sim.run(&[Message::new(0, 15, 640, 0)])?;
/// assert_eq!(report.messages_delivered, 1);
/// assert!(report.mean_latency() > 6.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Simulator {
    config: NocConfig,
    fault: FaultModel,
    /// Fault-aware next-hop table (`here * nodes + dst`); empty when no
    /// permanent faults are configured (plain dimension-ordered routing).
    routes: Vec<Option<Direction>>,
    /// Resolved first-retry timeout in cycles (fault mode).
    base_timeout: u64,
    topo: Topo,
    routers: Vec<Router>,
    sources: Vec<SourceState>,
    messages: Vec<MessageState>,
    /// message_index per MessageId (identity here, but kept explicit).
    events: EventCounts,
    blocked_flit_cycles: u64,
    /// Flits carried per directed link (`node * 4 + direction`).
    link_flits: Vec<u64>,
    /// Link traversals that stayed on one chiplet. Always equal to
    /// `events.link_traversals` minus `inter_link_traversals`; kept as its
    /// own counter so the split is asserted, not derived.
    intra_link_traversals: u64,
    /// Link traversals that crossed an interposer seam (0 on a mesh).
    inter_link_traversals: u64,
    cycle: u64,
    // --- retransmission-protocol state (used only in fault mode) ---
    packets: Vec<PacketRecord>,
    recv: HashMap<(PacketId, u32), RecvState>,
    /// Acknowledgement arrivals: cycle → packet ids acked then.
    ack_at: BTreeMap<u64, Vec<PacketId>>,
    /// Retransmission deadlines: cycle → packet ids to re-examine.
    timeout_at: BTreeMap<u64, Vec<PacketId>>,
    faults: FaultStats,
    /// Flits of packets accepted cleanly at their destination.
    delivered_flits: u64,
    // --- dynamic mid-run death state (run_recoverable only) ---
    /// Whether the current run executes a time-varying fault schedule.
    dynamic: bool,
    /// Cycle each node died at (`u64::MAX` = alive).
    died_at: Vec<u64>,
    /// `(packet, attempt)` worms whose remaining flits must be discarded.
    doomed: HashSet<(PacketId, u32)>,
    /// Per-message abandonment flags.
    abandoned_msgs: Vec<bool>,
    /// Node deaths noticed so far, in detection order.
    detections: Vec<Detection>,
    /// Nodes already declared dead (first detection wins).
    detected_nodes: HashSet<usize>,
    // --- active-set stepper state ---
    /// Flits buffered in each router's input VCs, maintained incrementally
    /// on every enqueue/dequeue; a router with zero buffered flits is
    /// provably a no-op for switch allocation and is skipped by the
    /// active-set sweep.
    buffered: Vec<u64>,
    /// Sources that must attempt injection this cycle: an open packet is
    /// streaming (possibly lane/credit-blocked — such sources are never
    /// retired) or the front pending packet is due.
    inject_ready: Vec<bool>,
    /// Sleeping sources keyed by the cycle their front pending packet
    /// becomes due; drained into `inject_ready` each stepped cycle.
    inject_wake: BTreeMap<u64, Vec<usize>>,
    /// Cycles the stepper evaluated (for [`SimReport::cycles_simulated`]).
    cycles_simulated: u64,
    /// Idle cycles skipped by fast-forward (for
    /// [`SimReport::cycles_fast_forwarded`]).
    cycles_fast_forwarded: u64,
}

impl Simulator {
    /// Creates a simulator.
    ///
    /// # Errors
    ///
    /// Returns [`NocError::BadConfig`] for an invalid configuration.
    pub fn new(config: NocConfig) -> Result<Self, NocError> {
        Self::with_faults(config, FaultModel::none())
    }

    /// Creates a simulator that injects faults from `fault`.
    ///
    /// With [`FaultModel::none`] this is exactly [`Simulator::new`]: the
    /// fault-free code path is untouched and reports are bit-identical.
    ///
    /// # Errors
    ///
    /// Returns [`NocError::BadConfig`] for an invalid configuration or
    /// fault model.
    pub fn with_faults(config: NocConfig, fault: FaultModel) -> Result<Self, NocError> {
        config.validate()?;
        fault.validate(&config)?;
        let topo = config.topo();
        let routes = if fault.has_permanent() { plan_routes(&topo, &fault) } else { Vec::new() };
        let base_timeout = if fault.retransmit.base_timeout > 0 {
            fault.retransmit.base_timeout
        } else {
            // Auto: several uncongested round trips, so lightly-loaded
            // traffic rarely retransmits spuriously. Conservative per-hop
            // pricing: the slowest hop class the package actually has
            // (interposer pricing only when seams exist, so a one-chiplet
            // package times out exactly like the plain mesh).
            let diameter = topo.diameter() as u64;
            let (worst_link, worst_ser) = if topo.chiplets() > 1 {
                (
                    config.link_cycles.max(config.link_cycles_for(HopClass::Inter)),
                    config
                        .serialization_cycles()
                        .max(config.serialization_cycles_for(HopClass::Inter)),
                )
            } else {
                (config.link_cycles, config.serialization_cycles())
            };
            let per_hop = config.router_stages + worst_link;
            let packet = config.max_packet_flits as u64 * worst_ser;
            8 * (diameter * per_hop + packet) + 64
        };
        Ok(Self {
            config,
            fault,
            routes,
            base_timeout,
            topo,
            routers: Vec::new(),
            sources: Vec::new(),
            messages: Vec::new(),
            events: EventCounts::default(),
            blocked_flit_cycles: 0,
            link_flits: Vec::new(),
            intra_link_traversals: 0,
            inter_link_traversals: 0,
            cycle: 0,
            packets: Vec::new(),
            recv: HashMap::new(),
            ack_at: BTreeMap::new(),
            timeout_at: BTreeMap::new(),
            faults: FaultStats::default(),
            delivered_flits: 0,
            dynamic: false,
            died_at: Vec::new(),
            doomed: HashSet::new(),
            abandoned_msgs: Vec::new(),
            detections: Vec::new(),
            detected_nodes: HashSet::new(),
            buffered: Vec::new(),
            inject_ready: Vec::new(),
            inject_wake: BTreeMap::new(),
            cycles_simulated: 0,
            cycles_fast_forwarded: 0,
        })
    }

    /// The configuration.
    pub fn config(&self) -> &NocConfig {
        &self.config
    }

    /// The fault model.
    pub fn fault_model(&self) -> &FaultModel {
        &self.fault
    }

    /// The topology.
    pub fn topo(&self) -> &Topo {
        &self.topo
    }

    /// Whether the fault layer (poisoning, acknowledgements, timeouts) is
    /// engaged for this simulator.
    fn fault_active(&self) -> bool {
        !self.fault.is_none() || self.dynamic
    }

    /// The retransmission bound in force: the configured bound, or — only
    /// for dynamic runs — a finite default so mid-run deaths cannot trap
    /// the NIC in an unbounded retry loop.
    fn effective_max_attempts(&self) -> u32 {
        let configured = self.fault.retransmit.max_attempts;
        if configured == 0 && self.dynamic {
            DYNAMIC_DEFAULT_MAX_ATTEMPTS
        } else {
            configured
        }
    }

    /// Simulates the delivery of `messages` and returns the report.
    ///
    /// Messages with `src == dst` are rejected: same-core data never enters
    /// the NoC (callers filter these out when generating traffic).
    ///
    /// # Errors
    ///
    /// Returns [`NocError::BadNode`] for out-of-range endpoints or
    /// self-messages, [`NocError::Unreachable`] when permanent faults
    /// leave no surviving route between a message's endpoints, and
    /// [`NocError::CycleLimitExceeded`] if the run does not finish within
    /// the configured cycle budget (injected faults can slow delivery
    /// arbitrarily, but never escape this watchdog).
    pub fn run(&mut self, messages: &[Message]) -> Result<SimReport, NocError> {
        let _probe = lts_obs::span("noc.run");
        self.reset();
        self.enqueue(messages)?;
        let delivered = self.drive(messages.len(), false)?;
        Ok(self.build_report(delivered))
    }

    /// The retained pre-overhaul stepper: semantically identical to
    /// [`Simulator::run`] — bit-identical reports, including the cycle
    /// counters — but every evaluated cycle scans all sources and all
    /// `nodes × PORTS` switch outputs unconditionally instead of sweeping
    /// the active set. Kept as the benchmark baseline and the
    /// property-test oracle for the active-set sweep.
    ///
    /// # Errors
    ///
    /// Exactly as [`Simulator::run`].
    pub fn run_reference(&mut self, messages: &[Message]) -> Result<SimReport, NocError> {
        let _probe = lts_obs::span("noc.run_reference");
        self.reset();
        self.enqueue(messages)?;
        let delivered = self.drive(messages.len(), true)?;
        Ok(self.build_report(delivered))
    }

    /// Validates `messages` and queues their packets at the sources,
    /// arming injection wake-ups. Requires a fresh [`Simulator::reset`].
    fn enqueue(&mut self, messages: &[Message]) -> Result<(), NocError> {
        let nodes = self.config.nodes();
        let fault_active = self.fault_active();
        let mut next_packet_id = 0u64;
        // One packetize scratch shared across every message of the run.
        let mut packets = Vec::new();
        for (i, m) in messages.iter().enumerate() {
            if m.src >= nodes {
                return Err(NocError::BadNode { node: m.src, nodes });
            }
            if m.dst >= nodes || m.dst == m.src {
                return Err(NocError::BadNode { node: m.dst, nodes });
            }
            if fault_active {
                let endpoint_dead = self.fault.router_dead(m.src) || self.fault.router_dead(m.dst);
                let no_route =
                    !self.routes.is_empty() && self.routes[m.src * nodes + m.dst].is_none();
                if endpoint_dead || no_route {
                    return Err(NocError::Unreachable { src: m.src, dst: m.dst });
                }
            }
            packetize_into(
                i as u64,
                m.src,
                m.dst,
                m.bytes,
                &self.config,
                &mut next_packet_id,
                &mut packets,
            );
            let flits: u64 = packets.iter().map(|p| p.flits).sum();
            self.messages.push(MessageState {
                inject_cycle: m.inject_cycle,
                remaining_flits: flits,
                bytes: m.bytes,
                completed_at: None,
            });
            for &p in &packets {
                if fault_active {
                    debug_assert_eq!(p.id as usize, self.packets.len());
                    self.packets.push(PacketRecord {
                        desc: p,
                        attempt: 0,
                        delivered: false,
                        acked: false,
                    });
                }
                self.sources[m.src].pending.push_back(PendingPacket {
                    desc: p,
                    inject_cycle: m.inject_cycle,
                    message_index: i,
                });
            }
        }
        // Per-source pending packets must start in inject-cycle order.
        // Traces are usually generated in global injection order, which
        // preserves per-source order — skip the sort (stable, so the
        // result is identical either way) unless actually needed.
        for node in 0..nodes {
            let s = &mut self.sources[node];
            let ordered = s.pending.iter().zip(s.pending.iter().skip(1));
            if ordered.clone().any(|(a, b)| a.inject_cycle > b.inject_cycle) {
                let mut v: Vec<PendingPacket> = s.pending.drain(..).collect();
                v.sort_by_key(|p| p.inject_cycle);
                s.pending = v.into();
            }
            if let Some(p) = self.sources[node].pending.front() {
                let due = p.inject_cycle;
                self.wake_source_at(node, due);
            }
        }
        Ok(())
    }

    /// Steps the static run to completion and returns how many messages
    /// were delivered. `full_scan` selects the retained pre-overhaul
    /// sweep (every source and every router, every evaluated cycle); the
    /// default active-set sweep skips sources with nothing due and
    /// routers with no buffered flits, which are provably no-ops.
    fn drive(&mut self, total: usize, full_scan: bool) -> Result<usize, NocError> {
        let nodes = self.config.nodes();
        let fault_active = self.fault_active();
        let mut delivered = 0usize;
        while delivered < total {
            if self.cycle > self.config.max_cycles {
                return Err(NocError::CycleLimitExceeded {
                    limit: self.config.max_cycles,
                    undelivered: total - delivered,
                });
            }
            let mut activity = false;
            if fault_active {
                self.fire_protocol_events()?;
            }
            self.drain_inject_wake();
            for node in 0..nodes {
                if !full_scan && !self.inject_ready[node] {
                    continue;
                }
                if self.inject(node) {
                    activity = true;
                }
                self.retire_or_keep_source(node);
            }
            for node in 0..nodes {
                if !full_scan && self.buffered[node] == 0 {
                    continue;
                }
                for op in 0..PORTS {
                    let (moved, completed) = self.switch_output(node, op);
                    if moved {
                        activity = true;
                    }
                    delivered += completed;
                }
            }
            self.cycles_simulated += 1;
            if activity {
                self.cycle += 1;
            } else {
                // Idle: fast-forward to the next event.
                match self.next_event_cycle() {
                    Some(next) if next > self.cycle => {
                        self.cycles_fast_forwarded += next - self.cycle - 1;
                        self.cycle = next;
                    }
                    Some(_) => self.cycle += 1,
                    None => {
                        if fault_active && delivered < total {
                            // Every undelivered packet should hold a pending
                            // timeout; a stall here means the protocol lost
                            // track — surface it as a typed error, never a
                            // hang or a wrong report.
                            return Err(NocError::CycleLimitExceeded {
                                limit: self.config.max_cycles,
                                undelivered: total - delivered,
                            });
                        }
                        // No buffered flits and no pending injections, yet
                        // messages remain — impossible unless accounting broke.
                        debug_assert!(delivered == total, "simulator stalled with no events");
                        break;
                    }
                }
            }
        }
        Ok(delivered)
    }

    /// Reports a finished run's stepper counters and cycle timeline into
    /// `lts-obs`: how many cycles the active-set sweep actually evaluated
    /// versus skipped by fast-forward, plus retransmission-protocol
    /// activity. Cheap no-op while recording is disabled.
    fn record_obs(&self) {
        if !lts_obs::enabled() {
            return;
        }
        lts_obs::counter_add("noc.runs", 1);
        lts_obs::counter_add("noc.cycles_simulated", self.cycles_simulated);
        lts_obs::counter_add("noc.cycles_fast_forwarded", self.cycles_fast_forwarded);
        lts_obs::counter_add("noc.packets_retransmitted", self.faults.packets_retransmitted);
        lts_obs::counter_add("noc.intra_chip_traversals", self.intra_link_traversals);
        lts_obs::counter_add("noc.inter_chip_traversals", self.inter_link_traversals);
        let track = lts_obs::cycle_track_named("noc.stepper");
        lts_obs::cycle_record(track, "active-sweep", "", self.cycles_simulated);
        lts_obs::cycle_record(track, "fast-forward", "", self.cycles_fast_forwarded);
        let hops = lts_obs::cycle_track_named("noc.hops");
        lts_obs::cycle_record(hops, "intra-chip", "", self.intra_link_traversals);
        lts_obs::cycle_record(hops, "inter-chip", "", self.inter_link_traversals);
    }

    /// Assembles the report of a completed static run.
    fn build_report(&mut self, delivered: usize) -> SimReport {
        self.record_obs();
        let makespan = self.messages.iter().filter_map(|m| m.completed_at).max().unwrap_or(0);
        SimReport {
            makespan,
            messages_delivered: delivered,
            bytes_delivered: self.messages.iter().map(|m| m.bytes).sum(),
            // In fault mode some ejected flits belong to rejected or
            // duplicate packets; count only cleanly accepted ones.
            flits_delivered: if self.fault_active() {
                self.delivered_flits
            } else {
                self.events.ejections
            },
            message_latencies: self
                .messages
                .iter()
                .map(|m| m.completed_at.unwrap_or(0).saturating_sub(m.inject_cycle))
                .collect(),
            blocked_flit_cycles: self.blocked_flit_cycles,
            events: self.events,
            link_flits: self.link_flits.clone(),
            intra_chip_traversals: self.intra_link_traversals,
            inter_chip_traversals: self.inter_link_traversals,
            faults: self.faults,
            cycles_simulated: self.cycles_simulated,
            cycles_fast_forwarded: self.cycles_fast_forwarded,
        }
    }

    /// Flags `node` for injection at `cycle` (immediately when due).
    fn wake_source_at(&mut self, node: usize, cycle: u64) {
        if cycle <= self.cycle {
            self.inject_ready[node] = true;
        } else {
            self.inject_wake.entry(cycle).or_default().push(node);
        }
    }

    /// Moves sources whose wake cycle has arrived into the ready set.
    fn drain_inject_wake(&mut self) {
        while let Some((&c, _)) = self.inject_wake.iter().next() {
            if c > self.cycle {
                break;
            }
            for node in self.inject_wake.remove(&c).unwrap_or_default() {
                self.inject_ready[node] = true;
            }
        }
    }

    /// After an injection attempt: keeps `node` in the ready set while it
    /// can make progress next cycle (an open packet is streaming, possibly
    /// blocked on lanes/buffer space, or the front pending packet is due),
    /// otherwise retires it — arming a wake-up for a future pending packet.
    fn retire_or_keep_source(&mut self, node: usize) {
        // A sleeping source already holds a wake-up; re-examining it (the
        // full-scan sweep visits every node) must not arm duplicates.
        if !self.inject_ready[node] {
            return;
        }
        if self.sources[node].open.is_some() {
            return;
        }
        match self.sources[node].pending.front() {
            Some(p) if p.inject_cycle <= self.cycle => {}
            Some(p) => {
                let due = p.inject_cycle;
                self.inject_ready[node] = false;
                self.inject_wake.entry(due).or_default().push(node);
            }
            None => self.inject_ready[node] = false,
        }
    }

    fn reset(&mut self) {
        let nodes = self.config.nodes();
        self.routers = (0..nodes)
            .map(|_| {
                Router::new(
                    self.config.vcs,
                    self.config.vc_buffer_flits,
                    self.config.physical_channels,
                )
            })
            .collect();
        self.sources = (0..nodes)
            .map(|_| SourceState {
                lanes: vec![0u64; self.config.physical_channels],
                ..SourceState::default()
            })
            .collect();
        self.messages.clear();
        self.events = EventCounts::default();
        self.blocked_flit_cycles = 0;
        self.link_flits = vec![0u64; nodes * 4];
        self.intra_link_traversals = 0;
        self.inter_link_traversals = 0;
        self.cycle = 0;
        self.packets.clear();
        self.recv.clear();
        self.ack_at.clear();
        self.timeout_at.clear();
        self.faults = FaultStats::default();
        self.delivered_flits = 0;
        self.dynamic = false;
        self.died_at = vec![u64::MAX; nodes];
        self.doomed.clear();
        self.abandoned_msgs.clear();
        self.detections.clear();
        self.detected_nodes.clear();
        self.buffered = vec![0; nodes];
        self.inject_ready = vec![false; nodes];
        self.inject_wake.clear();
        self.cycles_simulated = 0;
        self.cycles_fast_forwarded = 0;
    }

    /// Delivers due acknowledgements and fires due retransmission
    /// timeouts (fault mode only). Returns how many messages were newly
    /// abandoned (dynamic runs only; always 0 otherwise).
    ///
    /// # Errors
    ///
    /// On a non-dynamic run with a positive retry bound, an exhausted
    /// packet surfaces as [`NocError::Unreachable`] — the regression
    /// guarantee that a permanently unreachable destination never burns
    /// the whole cycle budget.
    fn fire_protocol_events(&mut self) -> Result<usize, NocError> {
        while let Some((&c, _)) = self.ack_at.iter().next() {
            if c > self.cycle {
                break;
            }
            for id in self.ack_at.remove(&c).unwrap_or_default() {
                self.packets[id as usize].acked = true;
            }
        }
        let mut newly_abandoned = 0usize;
        let max_attempts = self.effective_max_attempts();
        while let Some((&c, _)) = self.timeout_at.iter().next() {
            if c > self.cycle {
                break;
            }
            for id in self.timeout_at.remove(&c).unwrap_or_default() {
                let rec = &mut self.packets[id as usize];
                if rec.acked {
                    continue;
                }
                if self.dynamic && self.died_at[rec.desc.src] <= self.cycle {
                    // The sending NIC died; nobody is left to retry.
                    continue;
                }
                if max_attempts > 0 && rec.attempt + 1 >= max_attempts {
                    // Retransmission budget exhausted.
                    let desc = rec.desc;
                    if !self.dynamic {
                        return Err(NocError::Unreachable { src: desc.src, dst: desc.dst });
                    }
                    newly_abandoned += self.abandon_message(desc.message as usize);
                    // Exhaustion against a node that died mid-run doubles
                    // as a detection signal, racing the heartbeat monitor.
                    if self.died_at[desc.dst] <= self.cycle && self.detected_nodes.insert(desc.dst)
                    {
                        self.detections.push(Detection {
                            node: desc.dst,
                            died_at: self.died_at[desc.dst],
                            detected_at: self.cycle,
                            cause: DetectionCause::RetransmitExhaustion,
                        });
                    }
                    continue;
                }
                // No acknowledgement in time: send the packet again. The
                // next timeout arms when the retry finishes injecting.
                rec.attempt += 1;
                self.faults.packets_retransmitted += 1;
                let desc = rec.desc;
                self.sources[desc.src].pending.push_back(PendingPacket {
                    desc,
                    inject_cycle: self.cycle,
                    message_index: desc.message as usize,
                });
                // The retry is due immediately: pull the source out of the
                // active-set sleep state (its armed wake-up, if any, may
                // point arbitrarily far in the future).
                self.inject_ready[desc.src] = true;
            }
        }
        Ok(newly_abandoned)
    }

    /// Gives up on message `mi`: cancels its timers and queued sends and
    /// counts it as resolved. A packet already streaming keeps flowing so
    /// its worm stays well-formed (its flits drain toward the dead
    /// destination and are discarded en route). Returns 1 if the message
    /// was newly abandoned.
    fn abandon_message(&mut self, mi: usize) -> usize {
        if self.abandoned_msgs[mi] || self.messages[mi].completed_at.is_some() {
            return 0;
        }
        self.abandoned_msgs[mi] = true;
        let mut src = None;
        for rec in &mut self.packets {
            if rec.desc.message as usize == mi {
                // Neutralize the timer without faking a delivery.
                rec.acked = true;
                src = Some(rec.desc.src);
            }
        }
        if let Some(s) = src {
            self.sources[s].pending.retain(|p| p.message_index != mi);
        }
        1
    }

    /// Arms the retransmission timer for a fully injected packet, with
    /// bounded exponential backoff over its attempt number.
    fn arm_timeout(&mut self, id: PacketId) {
        let attempt = self.packets[id as usize].attempt;
        let shift = attempt.min(self.fault.retransmit.backoff_cap);
        let wait = self.base_timeout.saturating_mul(1u64 << shift);
        let deadline = self.cycle.saturating_add(wait.max(1));
        self.timeout_at.entry(deadline).or_default().push(id);
    }

    /// Schedules the acknowledgement for a cleanly received packet: an
    /// out-of-band credit modelled at uncongested pipeline latency
    /// (per-hop-class link pricing, so interposer hops cost their share).
    fn schedule_ack(&mut self, id: PacketId) {
        let desc = self.packets[id as usize].desc;
        let route = self.config.uncongested_route_cycles(desc.dst, desc.src);
        let at = self.cycle + route + self.fault.retransmit.ack_overhead + 1;
        self.ack_at.entry(at).or_default().push(id);
    }

    /// Destination-NIC acceptance logic for one ejected flit (fault mode):
    /// reassembles per `(packet, attempt)`, discards poisoned or duplicate
    /// packets, acknowledges and credits clean first deliveries. Returns 1
    /// if this completed a message.
    fn eject_with_protocol(&mut self, flit: Flit) -> usize {
        let key = (flit.packet, flit.attempt);
        let st = self.recv.entry(key).or_default();
        st.received += 1;
        st.poisoned |= flit.poisoned;
        if !flit.is_tail {
            return 0;
        }
        let st = self.recv.remove(&key).unwrap_or_default();
        let id = flit.packet as usize;
        // A poisoned worm may arrive partial on dynamic runs: a mid-run
        // death can destroy body flits and close the worm with a synthetic
        // poisoned tail.
        debug_assert!(
            st.poisoned || st.received == self.packets[id].desc.flits,
            "partial clean packet at tail"
        );
        if st.poisoned {
            // Failed integrity check: drop silently; the source times out.
            self.faults.packets_rejected += 1;
            return 0;
        }
        if self.packets[id].delivered {
            // A late duplicate of an already-accepted packet.
            self.faults.duplicate_packets += 1;
            return 0;
        }
        self.packets[id].delivered = true;
        self.schedule_ack(flit.packet);
        let desc = self.packets[id].desc;
        self.delivered_flits += desc.flits;
        let mi = desc.message as usize;
        let m = &mut self.messages[mi];
        debug_assert!(m.remaining_flits >= desc.flits, "over-delivery of message {mi}");
        m.remaining_flits -= desc.flits;
        if m.remaining_flits == 0 {
            m.completed_at = Some(self.cycle + 1);
            if self.dynamic && self.abandoned_msgs[mi] {
                // A message given up on (e.g. after its source died with
                // everything already in flight) made it after all; it was
                // already counted as resolved when abandoned.
                self.abandoned_msgs[mi] = false;
                return 0;
            }
            return 1;
        }
        0
    }

    /// The planned output direction at `here` toward `dst`, or `None`
    /// when the surviving topology has no route.
    fn lookup_route(&self, yx: bool, here: usize, dst: usize) -> Option<Direction> {
        if self.routes.is_empty() {
            return Some(self.topo.route_ordered(yx, here, dst));
        }
        self.routes[here * self.config.nodes() + dst]
    }

    /// The output direction for a flit at `here`: the fault-aware table
    /// when permanent faults exist, dimension-ordered routing otherwise.
    fn route_for(&self, yx: bool, here: usize, dst: usize) -> Direction {
        match self.lookup_route(yx, here, dst) {
            Some(dir) => dir,
            None => {
                // Unreachable pairs are rejected before injection, and
                // flits only visit nodes on a planned route; on dynamic
                // runs the purge pass removes unroutable heads before
                // they reach arbitration.
                debug_assert!(self.dynamic, "flit at {here} with no route to {dst}");
                self.topo.route_ordered(yx, here, dst)
            }
        }
    }

    /// Streams up to `physical_channels` flits from the node's source queue
    /// into the local input port. Returns whether anything was injected.
    fn inject(&mut self, node: usize) -> bool {
        let mut injected = false;
        let ser = self.config.serialization_cycles();
        // A free core→router lane is needed for every flit.
        while let Some(lane) =
            self.sources[node].lanes.iter().position(|&busy_until| busy_until <= self.cycle)
        {
            // Open the next packet if none is streaming.
            if self.sources[node].open.is_none() {
                let ready = matches!(
                    self.sources[node].pending.front(),
                    Some(p) if p.inject_cycle <= self.cycle
                );
                if !ready {
                    break;
                }
                let yx =
                    self.sources[node].pending.front().map(|p| p.desc.yx).expect("checked above");
                let vc = self
                    .config
                    .vc_class(yx)
                    .find(|&v| self.routers[node].inputs[LOCAL][v].accepts_new_packet());
                let Some(vc) = vc else { break };
                let p = self.sources[node].pending.pop_front().expect("checked above");
                self.sources[node].open =
                    Some(OpenPacket { desc: p.desc, message_index: p.message_index, sent: 0, vc });
            }
            let Some(open) = self.sources[node].open.clone() else { break };
            let queue_len = self.routers[node].inputs[LOCAL][open.vc].queue.len();
            if queue_len >= self.config.vc_buffer_flits {
                break;
            }
            let attempt =
                if self.fault_active() { self.packets[open.desc.id as usize].attempt } else { 0 };
            let flit = Flit {
                packet: open.desc.id,
                message: open.message_index as u64,
                dst: open.desc.dst,
                is_head: open.sent == 0,
                is_tail: open.sent + 1 == open.desc.flits,
                yx: open.desc.yx,
                attempt,
                seq: open.sent,
                poisoned: false,
            };
            self.routers[node].inputs[LOCAL][open.vc].queue.push_back(TimedFlit {
                flit,
                // The flit finishes arriving after `ser` phit cycles, then
                // clears the router pipeline.
                ready_at: self.cycle + (ser - 1) + self.config.router_stages,
            });
            self.buffered[node] += 1;
            self.sources[node].lanes[lane] = self.cycle + ser;
            self.events.buffer_writes += 1;
            injected = true;
            let open_mut = self.sources[node].open.as_mut().expect("still open");
            open_mut.sent += 1;
            if open_mut.sent == open_mut.desc.flits {
                let id = open_mut.desc.id;
                self.sources[node].open = None;
                if self.fault_active() {
                    self.arm_timeout(id);
                }
            }
        }
        injected
    }

    /// Runs switch allocation and traversal for one output port of one
    /// router. Returns `(any flit moved, messages completed)`.
    fn switch_output(&mut self, node: usize, op: usize) -> (bool, usize) {
        let vcs = self.config.vcs;
        let op_dir = Direction::ALL[op];
        // 1. Gather candidates: (input port, vc) whose front flit is ready
        //    and routed to this output.
        let mut ready: Vec<(usize, usize)> = Vec::new();
        for ip in 0..PORTS {
            for vc in 0..vcs {
                // Lazily compute the route when a head flit reaches the front.
                let front = self.routers[node].inputs[ip][vc].queue.front().copied();
                let Some(tf) = front else { continue };
                if tf.ready_at > self.cycle {
                    continue;
                }
                if self.routers[node].inputs[ip][vc].route.is_none() {
                    debug_assert!(tf.flit.is_head, "non-head flit with no route state");
                    let dir = self.route_for(tf.flit.yx, node, tf.flit.dst);
                    self.routers[node].inputs[ip][vc].route = Some(dir);
                    self.routers[node].inputs[ip][vc].active = Some(tf.flit);
                }
                if self.routers[node].inputs[ip][vc].route == Some(op_dir) {
                    ready.push((ip, vc));
                }
            }
        }
        if ready.is_empty() {
            return (false, 0);
        }
        // 2. Filter by VC allocation + credits (ejection needs neither).
        let mut movable: Vec<(usize, usize)> = Vec::new();
        for &(ip, vc) in &ready {
            if op == LOCAL {
                movable.push((ip, vc));
                continue;
            }
            let out_vc = self.routers[node].inputs[ip][vc].out_vc;
            let out_vc = match out_vc {
                Some(v) => Some(v),
                None => {
                    // VC allocation for a head flit, within the packet's
                    // dimension-order VC class.
                    self.events.arbitrations += 1;
                    let yx = self.routers[node].inputs[ip][vc]
                        .queue
                        .front()
                        .map(|tf| tf.flit.yx)
                        .unwrap_or(false);
                    let free = self
                        .config
                        .vc_class(yx)
                        .find(|&v| self.routers[node].outputs[op][v].holder.is_none());
                    if let Some(v) = free {
                        self.routers[node].outputs[op][v].holder = Some((ip, vc));
                        self.routers[node].inputs[ip][vc].out_vc = Some(v);
                    }
                    self.routers[node].inputs[ip][vc].out_vc
                }
            };
            match out_vc {
                Some(v) if self.routers[node].outputs[op][v].credits > 0 => {
                    movable.push((ip, vc));
                }
                _ => {}
            }
        }
        // Everything ready but not movable (or losing arbitration below,
        // or stalled on a busy physical lane) counts as blocked this cycle.
        let free_lanes = self.routers[node].free_lanes(op, self.cycle);
        let winners = movable.len().min(free_lanes);
        self.blocked_flit_cycles += (ready.len() - winners) as u64;
        if winners == 0 {
            return (false, 0);
        }
        // 3. Round-robin pick among movable.
        let mut completed = 0usize;
        let flat = |ip: usize, vc: usize| ip * vcs + vc;
        let pointer = self.routers[node].rr_pointer[op];
        let mut order: Vec<(usize, usize)> = movable.clone();
        order.sort_by_key(|&(ip, vc)| {
            let f = flat(ip, vc);
            (f + PORTS * vcs - pointer) % (PORTS * vcs)
        });
        for &(ip, vc) in order.iter().take(winners) {
            self.events.arbitrations += 1;
            completed += self.traverse(node, op, ip, vc);
            self.routers[node].rr_pointer[op] = (flat(ip, vc) + 1) % (PORTS * vcs);
        }
        (true, completed)
    }

    /// Moves the front flit of `(node, ip, vc)` through output `op`.
    /// Returns 1 if this completed a message.
    fn traverse(&mut self, node: usize, op: usize, ip: usize, vc: usize) -> usize {
        // Hop-class pricing: a seam-crossing output rides the interposer
        // (wider phits → shorter serialization, longer link latency). On a
        // plain mesh every class is `Intra` and the constants are exactly
        // the pre-MCM ones.
        let class = if op == LOCAL {
            HopClass::Intra
        } else {
            self.topo.hop_class(node, Direction::ALL[op])
        };
        let ser = self.config.serialization_cycles_for(class);
        let lane = self.routers[node]
            .free_lane(op, self.cycle)
            .expect("winner count bounded by free lanes");
        self.routers[node].lanes[op][lane] = self.cycle + ser;
        let tf = self.routers[node].inputs[ip][vc]
            .queue
            .pop_front()
            .expect("movable candidate has a front flit");
        self.buffered[node] -= 1;
        self.events.buffer_reads += 1;
        self.events.crossbar_traversals += 1;
        // Credit return to the upstream router (none for local injections:
        // the source checks buffer space directly).
        if ip != LOCAL {
            let ip_dir = Direction::ALL[ip];
            let upstream =
                self.topo.neighbor(node, ip_dir).expect("mesh input port implies a neighbor");
            let up_out = ip_dir.opposite().index();
            self.routers[upstream].outputs[up_out][vc].credits += 1;
        }
        let out_vc = self.routers[node].inputs[ip][vc].out_vc;
        if tf.flit.is_tail {
            self.routers[node].inputs[ip][vc].route = None;
            self.routers[node].inputs[ip][vc].out_vc = None;
            self.routers[node].inputs[ip][vc].active = None;
        }
        if op == LOCAL {
            // Ejection.
            self.events.ejections += 1;
            if self.fault_active() {
                return self.eject_with_protocol(tf.flit);
            }
            let mi = tf.flit.message as usize;
            let m = &mut self.messages[mi];
            debug_assert!(m.remaining_flits > 0, "over-delivery of message {mi}");
            m.remaining_flits -= 1;
            if m.remaining_flits == 0 {
                m.completed_at = Some(self.cycle + 1);
                return 1;
            }
            return 0;
        }
        let v = out_vc.expect("mesh traversal requires an allocated VC");
        let op_dir = Direction::ALL[op];
        let downstream =
            self.topo.neighbor(node, op_dir).expect("routing never leaves the topology");
        if self.dynamic
            && (self.died_at[downstream] <= self.cycle
                || edge_dead(&self.fault, &self.topo, node, op_dir))
        {
            // Null sink: the flit vanishes on the dead link / into the dead
            // router. Upstream credit was already returned; the downstream
            // buffer is never occupied, so no credit is consumed.
            self.faults.flits_lost += 1;
            if tf.flit.is_tail && self.routers[node].outputs[op][v].holder == Some((ip, vc)) {
                self.routers[node].outputs[op][v].holder = None;
            }
            return 0;
        }
        self.routers[node].outputs[op][v].credits -= 1;
        if tf.flit.is_tail {
            self.routers[node].outputs[op][v].holder = None;
        }
        let in_port = op_dir.opposite().index();
        let mut flit = tf.flit;
        if self.fault.has_transient() {
            // Transient faults poison the flit in place: it still occupies
            // link bandwidth and buffer space (wormhole invariants hold),
            // but the destination NIC will reject the whole packet.
            let link = (node * 4 + op) as u64;
            if self.fault.drops_flit(flit.packet, flit.attempt, flit.seq, link) {
                if !flit.poisoned {
                    self.faults.flits_dropped += 1;
                }
                flit.poisoned = true;
            } else if self.fault.corrupts_flit(flit.packet, flit.attempt, flit.seq, link) {
                if !flit.poisoned {
                    self.faults.flits_corrupted += 1;
                }
                flit.poisoned = true;
            }
        }
        self.routers[downstream].inputs[in_port][v].queue.push_back(TimedFlit {
            flit,
            // Last phit lands after `ser` cycles on the link, then the
            // downstream pipeline processes the flit.
            ready_at: self.cycle
                + (ser - 1)
                + self.config.link_cycles_for(class)
                + self.config.router_stages,
        });
        self.buffered[downstream] += 1;
        self.events.link_traversals += 1;
        match class {
            HopClass::Intra => self.intra_link_traversals += 1,
            HopClass::Inter => self.inter_link_traversals += 1,
        }
        self.events.buffer_writes += 1;
        self.link_flits[node * 4 + op] += 1;
        0
    }

    /// Runs `messages` under a time-varying fault `schedule` with online
    /// death detection via the heartbeat `monitor`.
    ///
    /// With an empty schedule this is exactly [`Simulator::run`] — the
    /// report is bit-identical to the static path. With scheduled deaths
    /// the run keeps going on the degraded topology: flits crossing dead
    /// hardware are discarded, severed wormholes are closed with synthetic
    /// poisoned tails so no VC stays wedged, undeliverable messages are
    /// abandoned after a bounded retransmission budget (a finite default
    /// applies even when [`crate::RetransmitConfig::max_attempts`] is 0),
    /// and each router death is detected either by `miss_threshold`
    /// consecutive missed heartbeats or by NIC retransmission exhaustion —
    /// whichever fires first. The run extends past delivery until every
    /// scheduled death has had its detection deadline, so reported
    /// detection latencies are complete.
    ///
    /// The simulator's static fault model and routes are restored
    /// afterwards, so the same instance can keep serving static runs.
    ///
    /// # Errors
    ///
    /// Returns [`NocError::BadConfig`] for an invalid schedule or monitor,
    /// [`NocError::BadNode`] / [`NocError::Unreachable`] for endpoints
    /// invalid before the run starts, and [`NocError::CycleLimitExceeded`]
    /// if the run outlives `max_cycles` — it never hangs past the
    /// watchdog.
    pub fn run_recoverable(
        &mut self,
        messages: &[Message],
        schedule: &FaultSchedule,
        monitor: &MonitorConfig,
    ) -> Result<RecoverableReport, NocError> {
        self.run_recoverable_mode(messages, schedule, monitor, false)
    }

    /// The retained pre-overhaul full-scan variant of
    /// [`Simulator::run_recoverable`]: semantically identical (bit-identical
    /// reports, detections and abandonment sets) but without the active-set
    /// sweep. Kept as the benchmark baseline and property-test oracle.
    ///
    /// # Errors
    ///
    /// Exactly as [`Simulator::run_recoverable`].
    pub fn run_recoverable_reference(
        &mut self,
        messages: &[Message],
        schedule: &FaultSchedule,
        monitor: &MonitorConfig,
    ) -> Result<RecoverableReport, NocError> {
        self.run_recoverable_mode(messages, schedule, monitor, true)
    }

    fn run_recoverable_mode(
        &mut self,
        messages: &[Message],
        schedule: &FaultSchedule,
        monitor: &MonitorConfig,
        full_scan: bool,
    ) -> Result<RecoverableReport, NocError> {
        let _probe = lts_obs::span("noc.run_recoverable");
        schedule.validate(&self.config)?;
        monitor.validate(&self.config)?;
        // Hierarchical package-level events (chiplet/seam deaths) lower
        // to flat router/link deaths here, so the stepper below only
        // ever sees hardware-granularity faults.
        let schedule = schedule.expanded(&self.config)?;
        if schedule.is_empty() {
            let report =
                if full_scan { self.run_reference(messages)? } else { self.run(messages)? };
            return Ok(RecoverableReport { report, detections: Vec::new(), abandoned: Vec::new() });
        }
        let saved_fault = self.fault.clone();
        let saved_routes = self.routes.clone();
        let result = self.run_recoverable_inner(messages, &schedule, monitor, full_scan);
        self.fault = saved_fault;
        self.routes = saved_routes;
        self.dynamic = false;
        result
    }

    fn run_recoverable_inner(
        &mut self,
        messages: &[Message],
        schedule: &FaultSchedule,
        monitor: &MonitorConfig,
        full_scan: bool,
    ) -> Result<RecoverableReport, NocError> {
        self.reset();
        self.dynamic = true;
        self.abandoned_msgs = vec![false; messages.len()];
        let nodes = self.config.nodes();
        // Endpoints must be alive *at the start*; deaths after cycle 0
        // are the whole point of this entry point (`enqueue` checks the
        // static fault model because `dynamic` is already set).
        self.enqueue(messages)?;

        // Heartbeat arithmetic is resolvable up front: beat deadlines are a
        // pure function of the schedule, so precompute when the monitor
        // will declare each scheduled router death (the in-sim exhaustion
        // path can still race these and win).
        let events = schedule.sorted();
        let monitor_death = events.iter().find_map(|e| match e.kind {
            FaultEventKind::RouterDeath { node } if node == monitor.monitor => Some(e.cycle),
            _ => None,
        });
        let mut beats: Vec<(u64, usize, u64)> = Vec::new();
        let mut scheduled: HashSet<usize> = HashSet::new();
        for e in &events {
            if let FaultEventKind::RouterDeath { node } = e.kind {
                // The monitor cannot observe its own death, and deaths it
                // would only have noticed after dying go unreported.
                if node == monitor.monitor || !scheduled.insert(node) {
                    continue;
                }
                let det = monitor.detection_cycle(&self.config, node, e.cycle);
                if monitor_death.is_none_or(|md| det <= md) {
                    beats.push((det, node, e.cycle));
                }
            }
        }
        beats.sort_unstable();

        let total = self.messages.len();
        let mut resolved = 0usize;
        let mut next_event = 0usize;
        let mut next_beat = 0usize;
        while resolved < total || next_event < events.len() || next_beat < beats.len() {
            if self.cycle > self.config.max_cycles {
                return Err(NocError::CycleLimitExceeded {
                    limit: self.config.max_cycles,
                    undelivered: self.messages.iter().filter(|m| m.completed_at.is_none()).count(),
                });
            }
            let mut activity = false;
            while next_event < events.len() && events[next_event].cycle <= self.cycle {
                let e = events[next_event];
                next_event += 1;
                match e.kind {
                    FaultEventKind::RouterDeath { node } => {
                        resolved += self.apply_router_death(node);
                    }
                    FaultEventKind::LinkDeath { node, dir } => self.apply_link_death(node, dir),
                    FaultEventKind::ChipletDeath { .. } | FaultEventKind::SeamDeath { .. } => {
                        unreachable!("hierarchical fault events are lowered before stepping")
                    }
                }
            }
            while next_beat < beats.len()
                && (beats[next_beat].0 <= self.cycle
                    || self.detected_nodes.contains(&beats[next_beat].1))
            {
                let (det, node, died) = beats[next_beat];
                next_beat += 1;
                if self.detected_nodes.insert(node) {
                    resolved += self.declare_dead(Detection {
                        node,
                        died_at: died,
                        detected_at: det,
                        cause: DetectionCause::MissedHeartbeats,
                    });
                }
            }
            resolved += self.fire_protocol_events()?;
            if self.purge_unroutable(full_scan) {
                activity = true;
            }
            self.drain_inject_wake();
            for node in 0..nodes {
                if self.died_at[node] <= self.cycle {
                    continue;
                }
                if !full_scan && !self.inject_ready[node] {
                    continue;
                }
                if self.inject(node) {
                    activity = true;
                }
                self.retire_or_keep_source(node);
            }
            for node in 0..nodes {
                if self.died_at[node] <= self.cycle {
                    continue;
                }
                if !full_scan && self.buffered[node] == 0 {
                    continue;
                }
                for op in 0..PORTS {
                    let (moved, completed) = self.switch_output(node, op);
                    if moved {
                        activity = true;
                    }
                    resolved += completed;
                }
            }
            self.cycles_simulated += 1;
            if activity {
                self.cycle += 1;
            } else {
                // Everything may have resolved within this iteration (e.g.
                // an exhaustion-detection after this cycle's beat check):
                // re-test the loop condition before treating an empty wake
                // list as a wedged network.
                if resolved >= total && next_event >= events.len() && next_beat >= beats.len() {
                    break;
                }
                let pending_protocol =
                    [events.get(next_event).map(|e| e.cycle), beats.get(next_beat).map(|b| b.0)];
                let next = self
                    .next_event_cycle()
                    .into_iter()
                    .chain(pending_protocol.into_iter().flatten())
                    .map(|c| c.max(self.cycle + 1))
                    .min();
                match next {
                    Some(n) if n > self.cycle => {
                        self.cycles_fast_forwarded += n - self.cycle - 1;
                        self.cycle = n;
                    }
                    Some(_) => self.cycle += 1,
                    None => {
                        return Err(NocError::CycleLimitExceeded {
                            limit: self.config.max_cycles,
                            undelivered: self
                                .messages
                                .iter()
                                .filter(|m| m.completed_at.is_none())
                                .count(),
                        });
                    }
                }
            }
        }

        self.record_obs();
        let makespan = self.messages.iter().filter_map(|m| m.completed_at).max().unwrap_or(0);
        let abandoned: Vec<usize> =
            self.abandoned_msgs.iter().enumerate().filter_map(|(i, &a)| a.then_some(i)).collect();
        let report = SimReport {
            makespan,
            messages_delivered: total - abandoned.len(),
            bytes_delivered: self
                .messages
                .iter()
                .zip(&self.abandoned_msgs)
                .filter(|&(_, &a)| !a)
                .map(|(m, _)| m.bytes)
                .sum(),
            flits_delivered: self.delivered_flits,
            message_latencies: self
                .messages
                .iter()
                .map(|m| m.completed_at.unwrap_or(0).saturating_sub(m.inject_cycle))
                .collect(),
            blocked_flit_cycles: self.blocked_flit_cycles,
            events: self.events,
            link_flits: self.link_flits.clone(),
            intra_chip_traversals: self.intra_link_traversals,
            inter_chip_traversals: self.inter_link_traversals,
            faults: self.faults,
            cycles_simulated: self.cycles_simulated,
            cycles_fast_forwarded: self.cycles_fast_forwarded,
        };
        Ok(RecoverableReport {
            report,
            detections: std::mem::take(&mut self.detections),
            abandoned,
        })
    }

    /// Records a detection and gives up on all unresolved traffic destined
    /// to the declared-dead node (the monitor broadcasts the verdict, so
    /// NICs stop waiting on their own exhaustion timers). Returns how many
    /// messages were newly abandoned.
    fn declare_dead(&mut self, detection: Detection) -> usize {
        let node = detection.node;
        self.detections.push(detection);
        let doomed_msgs: Vec<usize> = self
            .packets
            .iter()
            .filter(|r| r.desc.dst == node)
            .map(|r| r.desc.message as usize)
            .collect();
        let mut abandoned = 0;
        for mi in doomed_msgs {
            abandoned += self.abandon_message(mi);
        }
        abandoned
    }

    /// Kills `node` mid-run: reshapes the fault model and routes, discards
    /// everything buffered inside the router, restores neighbour credit
    /// pools (no credit will ever return from the dead router), closes
    /// worms severed mid-stream, and abandons the dead core's own traffic.
    /// Returns how many messages were newly abandoned.
    fn apply_router_death(&mut self, node: usize) -> usize {
        if self.died_at[node] <= self.cycle {
            return 0;
        }
        self.died_at[node] = self.cycle;
        self.fault = self.fault.clone().kill_router(node);
        self.routes = plan_routes(&self.topo, &self.fault);
        for ip in 0..PORTS {
            for vc in 0..self.config.vcs {
                let input = &mut self.routers[node].inputs[ip][vc];
                let lost = input.queue.len() as u64;
                input.queue.clear();
                input.route = None;
                input.out_vc = None;
                input.active = None;
                self.faults.flits_lost += lost;
            }
        }
        self.buffered[node] = 0;
        for dir in [Direction::North, Direction::East, Direction::South, Direction::West] {
            let Some(nb) = self.topo.neighbor(node, dir) else { continue };
            let toward_dead = dir.opposite().index();
            for vc in 0..self.config.vcs {
                self.routers[nb].outputs[toward_dead][vc].credits = self.config.vc_buffer_flits;
            }
            self.close_severed_worms(nb, toward_dead);
        }
        self.sources[node].pending.clear();
        self.sources[node].open = None;
        // A dead core never injects again; drop it from the active set
        // (any armed wake-up degenerates to a no-op visit).
        self.inject_ready[node] = false;
        let orphaned: Vec<usize> = self
            .packets
            .iter()
            .filter(|r| r.desc.src == node)
            .map(|r| r.desc.message as usize)
            .collect();
        let mut abandoned = 0;
        for mi in orphaned {
            abandoned += self.abandon_message(mi);
        }
        abandoned
    }

    /// Kills the link `(node, dir)` mid-run (both directions): reshapes
    /// routes and closes worms severed across the link. Flits later
    /// crossing the dead link are discarded by [`Simulator::traverse`].
    fn apply_link_death(&mut self, node: usize, dir: Direction) {
        let Some(nb) = self.topo.neighbor(node, dir) else {
            return; // A mesh-edge "link" has no far side; nothing to kill.
        };
        self.fault = self.fault.clone().kill_link(node, dir);
        self.routes = plan_routes(&self.topo, &self.fault);
        // Both receiving sides may hold worms whose remaining flits were
        // still across the link (the sending sides self-heal: their flits
        // drain into the null sink and the real tail clears their state).
        self.close_severed_worms(nb, dir.opposite().index());
        self.close_severed_worms(node, dir.index());
    }

    /// Closes incomplete worms on input port `ip` of `node` after the
    /// upstream hardware feeding that port died: any worm still waiting
    /// for flits that can no longer arrive gets a synthetic poisoned tail
    /// appended, which then follows the worm's latched route trail,
    /// releasing per-hop VC state; the destination NIC rejects the partial
    /// packet, and the source retransmits or exhausts its budget.
    fn close_severed_worms(&mut self, node: usize, ip: usize) {
        if self.died_at[node] <= self.cycle {
            return;
        }
        // The synthetic tail notionally crossed the severed input link, so
        // it lands with that link's class timing.
        let class = if ip == LOCAL {
            HopClass::Intra
        } else {
            self.topo.hop_class(node, Direction::ALL[ip])
        };
        let ser = self.config.serialization_cycles_for(class);
        let ready_at =
            self.cycle + (ser - 1) + self.config.link_cycles_for(class) + self.config.router_stages;
        for vc in 0..self.config.vcs {
            let input = &mut self.routers[node].inputs[ip][vc];
            // Worms are contiguous, so only the last worm in the queue can
            // be incomplete; an idle VC has neither flits nor a latched
            // worm. A queue already ending in a tail needs no closure.
            let template = match input.queue.back() {
                Some(tf) if tf.flit.is_tail => None,
                Some(tf) => Some(tf.flit),
                None => input.active,
            };
            let Some(worm) = template else { continue };
            let tail =
                Flit { is_head: false, is_tail: true, poisoned: true, seq: u64::MAX, ..worm };
            input.queue.push_back(TimedFlit { flit: tail, ready_at });
            self.buffered[node] += 1;
            self.events.buffer_writes += 1;
        }
    }

    /// Drops ready front flits that can no longer route anywhere (their
    /// destination became unreachable mid-run), plus the rest of each such
    /// worm as it surfaces. Returns whether anything was dropped.
    fn purge_unroutable(&mut self, full_scan: bool) -> bool {
        let mut dropped_any = false;
        for node in 0..self.config.nodes() {
            if self.died_at[node] <= self.cycle {
                continue;
            }
            // An empty router has nothing to purge; only the retained
            // full-scan stepper insists on visiting it anyway.
            if !full_scan && self.buffered[node] == 0 {
                continue;
            }
            for ip in 0..PORTS {
                for vc in 0..self.config.vcs {
                    loop {
                        let front = self.routers[node].inputs[ip][vc].queue.front().copied();
                        let Some(tf) = front else { break };
                        if tf.ready_at > self.cycle {
                            break;
                        }
                        let key = (tf.flit.packet, tf.flit.attempt);
                        let doomed = self.doomed.contains(&key);
                        let unroutable = !doomed
                            && tf.flit.is_head
                            && self.routers[node].inputs[ip][vc].route.is_none()
                            && self.lookup_route(tf.flit.yx, node, tf.flit.dst).is_none();
                        if !doomed && !unroutable {
                            break;
                        }
                        if unroutable && !tf.flit.is_tail {
                            self.doomed.insert(key);
                        }
                        self.routers[node].inputs[ip][vc].queue.pop_front();
                        self.buffered[node] -= 1;
                        self.faults.flits_lost += 1;
                        dropped_any = true;
                        if ip != LOCAL {
                            let ip_dir = Direction::ALL[ip];
                            let upstream = self
                                .topo
                                .neighbor(node, ip_dir)
                                .expect("mesh input port implies a neighbor");
                            if self.died_at[upstream] > self.cycle {
                                self.routers[upstream].outputs[ip_dir.opposite().index()][vc]
                                    .credits += 1;
                            }
                        }
                        if tf.flit.is_tail {
                            self.doomed.remove(&key);
                            self.routers[node].inputs[ip][vc].route = None;
                            self.routers[node].inputs[ip][vc].out_vc = None;
                            self.routers[node].inputs[ip][vc].active = None;
                        }
                    }
                }
            }
        }
        dropped_any
    }

    /// The earliest future cycle at which anything can happen.
    fn next_event_cycle(&self) -> Option<u64> {
        let buffered = self.routers.iter().filter_map(Router::earliest_ready).min();
        let inject = self
            .sources
            .iter()
            .filter_map(|s| {
                if s.open.is_some() {
                    // An open packet stalled on buffer space becomes
                    // unblocked by flit movement, which counts as activity;
                    // still, poll next cycle.
                    Some(self.cycle + 1)
                } else {
                    s.pending.front().map(|p| p.inject_cycle.max(self.cycle + 1))
                }
            })
            .min();
        // Pending acknowledgements and retransmission deadlines are events
        // too: cycle fast-forwarding must not skip over them.
        let ack = self.ack_at.keys().next().copied();
        let timeout = self.timeout_at.keys().next().copied();
        [buffered, inject, ack, timeout].into_iter().flatten().map(|c| c.max(self.cycle + 1)).min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::{all_to_all, uniform_random};

    fn sim() -> Simulator {
        Simulator::new(NocConfig::paper_16core()).unwrap()
    }

    #[test]
    fn single_flit_message_has_minimum_latency() {
        let mut s = sim();
        // Node 0 -> node 1: 1 hop. Pipeline: inject ready at +3, local
        // router traverses, +3+1 at next router, eject.
        let r = s.run(&[Message::new(0, 1, 8, 0)]).unwrap();
        assert_eq!(r.messages_delivered, 1);
        assert_eq!(r.flits_delivered, 1);
        // Lower bound: 2 router traversals * 3 stages + 1 link cycle +
        // 2 link serializations of 8 phit-cycles each (64-bit phits).
        assert!(r.message_latencies[0] >= 7 + 14, "latency {}", r.message_latencies[0]);
        assert!(r.message_latencies[0] <= 35, "latency {}", r.message_latencies[0]);
    }

    #[test]
    fn longer_distances_take_longer() {
        let mut s = sim();
        let near = s.run(&[Message::new(0, 1, 1024, 0)]).unwrap();
        let far = s.run(&[Message::new(0, 15, 1024, 0)]).unwrap();
        assert!(far.message_latencies[0] > near.message_latencies[0]);
    }

    #[test]
    fn all_messages_delivered_under_burst() {
        let mut s = sim();
        let trace = all_to_all(16, 2048);
        let r = s.run(&trace.messages).unwrap();
        assert_eq!(r.messages_delivered, trace.len());
        assert_eq!(r.bytes_delivered, trace.total_bytes());
        // 2048 B = 32 flits per message.
        assert_eq!(r.flits_delivered, 240 * 32);
    }

    #[test]
    fn burst_traffic_blocks_more_than_spread_traffic() {
        let mut s = sim();
        let burst = all_to_all(16, 4096);
        let burst_report = s.run(&burst.messages).unwrap();
        // Same messages, but staggered by 400-cycle injection offsets.
        let spread: Vec<Message> = burst
            .messages
            .iter()
            .enumerate()
            .map(|(i, m)| Message::new(m.src, m.dst, m.bytes, (i as u64) * 400))
            .collect();
        let spread_report = s.run(&spread).unwrap();
        assert!(
            burst_report.blocked_flit_cycles > spread_report.blocked_flit_cycles,
            "burst {} vs spread {}",
            burst_report.blocked_flit_cycles,
            spread_report.blocked_flit_cycles
        );
    }

    #[test]
    fn delayed_injection_is_respected() {
        let mut s = sim();
        let r = s.run(&[Message::new(0, 1, 8, 1000)]).unwrap();
        assert!(r.makespan >= 1000);
        // Latency is measured from injection, so it stays small.
        assert!(r.message_latencies[0] < 50);
    }

    #[test]
    fn self_message_and_bad_nodes_are_rejected() {
        let mut s = sim();
        assert!(matches!(s.run(&[Message::new(3, 3, 8, 0)]), Err(NocError::BadNode { .. })));
        assert!(s.run(&[Message::new(0, 99, 8, 0)]).is_err());
        assert!(s.run(&[Message::new(99, 0, 8, 0)]).is_err());
    }

    #[test]
    fn empty_trace_completes_immediately() {
        let mut s = sim();
        let r = s.run(&[]).unwrap();
        assert_eq!(r.makespan, 0);
        assert_eq!(r.messages_delivered, 0);
    }

    #[test]
    fn conservation_of_flits() {
        let mut s = sim();
        let trace = uniform_random(16, 5, 777, 9);
        let r = s.run(&trace.messages).unwrap();
        // Every flit is written once at injection plus once per hop, and
        // read exactly once per write.
        assert_eq!(r.events.buffer_reads, r.events.buffer_writes);
        // Ejections equal total flits of all messages.
        let expect_flits: u64 =
            trace.messages.iter().map(|m| s.config().flits_for_bytes(m.bytes)).sum();
        assert_eq!(r.flits_delivered, expect_flits);
        // Link traversals are reads minus ejections.
        assert_eq!(r.events.link_traversals, r.events.buffer_reads - r.flits_delivered);
    }

    #[test]
    fn latency_at_least_hop_lower_bound() {
        let mut s = sim();
        let trace = uniform_random(16, 3, 256, 4);
        let r = s.run(&trace.messages).unwrap();
        for (i, m) in trace.messages.iter().enumerate() {
            let hops = s.topo().distance(m.src, m.dst) as u64;
            let flits = s.config().flits_for_bytes(m.bytes);
            // (hops+1) router pipelines + hops links + serialization.
            let lower = (hops + 1) * 3 + hops + (flits - 1);
            assert!(
                r.message_latencies[i] >= lower,
                "message {i}: {} < lower bound {lower}",
                r.message_latencies[i]
            );
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut s = sim();
        let trace = uniform_random(16, 4, 300, 5);
        let a = s.run(&trace.messages).unwrap();
        let b = s.run(&trace.messages).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn cycle_limit_guard_fires() {
        let mut config = NocConfig::paper_16core();
        config.max_cycles = 10;
        let mut s = Simulator::new(config).unwrap();
        let big = all_to_all(16, 1 << 16);
        assert!(matches!(s.run(&big.messages), Err(NocError::CycleLimitExceeded { .. })));
    }

    #[test]
    fn single_flit_buffers_still_deliver_under_burst() {
        // Failure injection: minimum credit everywhere. Slower, but the
        // protocol must not deadlock or drop flits.
        let mut config = NocConfig::paper_16core();
        config.vc_buffer_flits = 1;
        let mut s = Simulator::new(config).unwrap();
        let trace = all_to_all(16, 1024);
        let tight = s.run(&trace.messages).unwrap();
        assert_eq!(tight.messages_delivered, trace.len());
        let mut roomy = sim();
        let normal = roomy.run(&trace.messages).unwrap();
        assert!(tight.makespan >= normal.makespan, "less buffering cannot be faster");
    }

    #[test]
    fn single_vc_still_delivers() {
        let mut config = NocConfig::paper_16core();
        config.vcs = 1;
        let mut s = Simulator::new(config).unwrap();
        let trace = uniform_random(16, 4, 500, 8);
        let r = s.run(&trace.messages).unwrap();
        assert_eq!(r.messages_delivered, trace.len());
    }

    #[test]
    fn degenerate_one_by_n_mesh_works() {
        let mut s = Simulator::new(NocConfig::paper_mesh(8, 1)).unwrap();
        let r = s.run(&[Message::new(0, 7, 2048, 0), Message::new(7, 0, 2048, 0)]).unwrap();
        assert_eq!(r.messages_delivered, 2);
    }

    #[test]
    fn single_node_mesh_rejects_every_message() {
        let mut s = Simulator::new(NocConfig::paper_mesh(1, 1)).unwrap();
        // Only possible message is a self-send, which is invalid.
        assert!(s.run(&[Message::new(0, 0, 8, 0)]).is_err());
        // Empty trace is fine.
        assert_eq!(s.run(&[]).unwrap().messages_delivered, 0);
    }

    #[test]
    fn zero_byte_message_still_carries_a_head_flit() {
        let mut s = sim();
        let r = s.run(&[Message::new(0, 3, 0, 0)]).unwrap();
        assert_eq!(r.flits_delivered, 1);
        assert_eq!(r.messages_delivered, 1);
    }

    #[test]
    fn all_routing_policies_deliver_everything() {
        use crate::config::RoutingPolicy;
        let trace = uniform_random(16, 6, 700, 11);
        let mut reference_flits = None;
        for policy in [RoutingPolicy::XyDor, RoutingPolicy::YxDor, RoutingPolicy::O1Turn] {
            let mut config = NocConfig::paper_16core();
            config.routing = policy;
            let mut s = Simulator::new(config).unwrap();
            let r = s.run(&trace.messages).unwrap();
            assert_eq!(r.messages_delivered, trace.len(), "{policy:?}");
            // Minimal routing: flit-hops identical across policies.
            match reference_flits {
                None => reference_flits = Some(r.events.link_traversals),
                Some(f) => assert_eq!(r.events.link_traversals, f, "{policy:?}"),
            }
        }
    }

    #[test]
    fn o1turn_requires_two_vcs() {
        let mut config = NocConfig::paper_16core();
        config.routing = crate::config::RoutingPolicy::O1Turn;
        config.vcs = 1;
        assert!(Simulator::new(config).is_err());
    }

    #[test]
    fn o1turn_spreads_load_on_transpose_like_traffic() {
        use crate::config::RoutingPolicy;
        // Row-to-column traffic concentrates on few links under pure XY;
        // O1TURN splits it across both dimension orders.
        let mut msgs = Vec::new();
        for i in 0..4usize {
            for j in 0..4usize {
                let src = i * 4 + j;
                let dst = j * 4 + i;
                if src != dst {
                    msgs.push(Message::new(src, dst, 2048, 0));
                }
            }
        }
        let xy = {
            let mut s = Simulator::new(NocConfig::paper_16core()).unwrap();
            s.run(&msgs).unwrap()
        };
        let o1 = {
            let mut config = NocConfig::paper_16core();
            config.routing = RoutingPolicy::O1Turn;
            let mut s = Simulator::new(config).unwrap();
            s.run(&msgs).unwrap()
        };
        assert!(
            o1.max_link_flits() < xy.max_link_flits(),
            "O1TURN hot link {} should beat XY hot link {}",
            o1.max_link_flits(),
            xy.max_link_flits()
        );
    }

    #[test]
    fn link_flits_sum_to_link_traversals() {
        let mut s = sim();
        let trace = uniform_random(16, 5, 900, 3);
        let r = s.run(&trace.messages).unwrap();
        assert_eq!(r.link_flits.iter().sum::<u64>(), r.events.link_traversals);
        assert!(r.max_link_flits() > 0);
    }

    #[test]
    fn hop_split_sums_to_link_traversals_on_mesh() {
        let mut s = sim();
        let trace = uniform_random(16, 5, 901, 6);
        let r = s.run(&trace.messages).unwrap();
        assert_eq!(r.inter_chip_traversals, 0, "a mesh has no interposer hops");
        assert_eq!(r.intra_chip_traversals, r.events.link_traversals);
        assert_eq!(r.intra_chip_traversals + r.inter_chip_traversals, r.events.link_traversals);
    }

    #[test]
    fn mcm_delivers_and_splits_hops_exactly() {
        let config = NocConfig::paper_mcm(2, 16).unwrap();
        let mut s = Simulator::new(config).unwrap();
        let trace = uniform_random(32, 4, 902, 7);
        let r = s.run(&trace.messages).unwrap();
        assert_eq!(r.messages_delivered, trace.len());
        assert!(r.inter_chip_traversals > 0, "cross-package traffic must ride the interposer");
        assert_eq!(r.intra_chip_traversals + r.inter_chip_traversals, r.events.link_traversals);
        // The seam columns carry exactly the inter-chip flits: per-link
        // counters and the class split agree.
        let topo = *s.topo();
        let inter_from_links: u64 = (0..config.nodes())
            .flat_map(|n| (0..4).map(move |d| (n, d)))
            .filter(|&(n, d)| {
                topo.neighbor(n, Direction::ALL[d]).is_some()
                    && topo.hop_class(n, Direction::ALL[d]) == HopClass::Inter
            })
            .map(|(n, d)| r.link_flits[n * 4 + d])
            .sum();
        assert_eq!(inter_from_links, r.inter_chip_traversals);
    }

    #[test]
    fn single_chiplet_mcm_report_is_bit_identical_to_mesh() {
        let mesh_cfg = NocConfig::paper_16core();
        let mcm_cfg = NocConfig::paper_mcm(1, 16).unwrap();
        let trace = uniform_random(16, 6, 903, 9);
        let a = Simulator::new(mesh_cfg).unwrap().run(&trace.messages).unwrap();
        let b = Simulator::new(mcm_cfg).unwrap().run(&trace.messages).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn interposer_latency_slows_cross_chip_messages() {
        // Same global 8x4 geometry; the MCM prices the seam crossing.
        let mesh = NocConfig::paper_mesh(8, 4);
        let mcm = NocConfig::paper_mcm(2, 16).unwrap();
        let msg = [Message::new(0, 7, 64, 0)]; // one flit, 0 -> (7,0) crosses the seam
        let rm = Simulator::new(mesh).unwrap().run(&msg).unwrap();
        let rc = Simulator::new(mcm).unwrap().run(&msg).unwrap();
        // Interposer: +3 link cycles but -6 serialization cycles on the
        // seam hop; a single-flit head sees the net effect.
        assert_ne!(rm.message_latencies[0], rc.message_latencies[0]);
        assert_eq!(rc.messages_delivered, 1);
    }

    #[test]
    fn two_physical_channels_beat_one() {
        let mut narrow_cfg = NocConfig::paper_16core();
        narrow_cfg.physical_channels = 1;
        let mut narrow = Simulator::new(narrow_cfg).unwrap();
        let mut wide = sim();
        let trace = all_to_all(16, 4096);
        let rn = narrow.run(&trace.messages).unwrap();
        let rw = wide.run(&trace.messages).unwrap();
        assert!(rw.makespan < rn.makespan, "wide {} vs narrow {}", rw.makespan, rn.makespan);
    }
}
