//! Messages, packets and flits.

use crate::config::NocConfig;
use serde::{Deserialize, Serialize};

/// Unique message id within one simulation.
pub type MessageId = u64;
/// Unique packet id within one simulation.
pub type PacketId = u64;

/// A single flit in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Flit {
    /// Owning packet.
    pub packet: PacketId,
    /// Owning message.
    pub message: MessageId,
    /// Destination node.
    pub dst: usize,
    /// Head flit (carries routing info; triggers VC allocation).
    pub is_head: bool,
    /// Tail flit (releases the VC).
    pub is_tail: bool,
    /// Dimension order of this packet (`true` = YX); fixed at injection
    /// by the routing policy.
    pub yx: bool,
    /// Retransmission attempt of the owning packet (0 = first try).
    pub attempt: u32,
    /// Position of this flit within its packet (0 = head).
    pub seq: u64,
    /// Set when a transient fault hit this flit in transit; the
    /// destination NIC discards the whole packet and awaits a retry.
    pub poisoned: bool,
}

/// A packet: a contiguous run of flits of one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PacketDescriptor {
    /// Packet id.
    pub id: PacketId,
    /// Owning message id.
    pub message: MessageId,
    /// Source node.
    pub src: usize,
    /// Destination node.
    pub dst: usize,
    /// Number of flits (including head and tail).
    pub flits: u64,
    /// Dimension order (`true` = YX).
    pub yx: bool,
}

/// Splits a message payload into packet descriptors of at most
/// `config.max_packet_flits` flits each.
///
/// The first flit of each packet is its head and the last its tail (a
/// single-flit packet is both). `next_packet_id` supplies globally unique
/// packet ids and is advanced.
pub fn packetize(
    message: MessageId,
    src: usize,
    dst: usize,
    bytes: u64,
    config: &NocConfig,
    next_packet_id: &mut PacketId,
) -> Vec<PacketDescriptor> {
    let mut packets = Vec::new();
    packetize_into(message, src, dst, bytes, config, next_packet_id, &mut packets);
    packets
}

/// [`packetize`] into a caller-owned buffer: `out` is cleared and refilled,
/// so one scratch vector can serve every message of a run instead of a
/// fresh allocation per message.
#[allow(clippy::too_many_arguments)]
pub fn packetize_into(
    message: MessageId,
    src: usize,
    dst: usize,
    bytes: u64,
    config: &NocConfig,
    next_packet_id: &mut PacketId,
    out: &mut Vec<PacketDescriptor>,
) {
    out.clear();
    let total_flits = config.flits_for_bytes(bytes);
    let max = config.max_packet_flits as u64;
    out.reserve(total_flits.div_ceil(max) as usize);
    let mut remaining = total_flits;
    while remaining > 0 {
        let flits = remaining.min(max);
        out.push(PacketDescriptor {
            id: *next_packet_id,
            message,
            src,
            dst,
            flits,
            yx: config.packet_order_is_yx(*next_packet_id),
        });
        *next_packet_id += 1;
        remaining -= flits;
    }
}

impl PacketDescriptor {
    /// Materializes the packet's flits in wire order.
    pub fn flit_sequence(&self) -> impl Iterator<Item = Flit> + '_ {
        let n = self.flits;
        (0..n).map(move |i| Flit {
            packet: self.id,
            message: self.message,
            dst: self.dst,
            is_head: i == 0,
            is_tail: i + 1 == n,
            yx: self.yx,
            attempt: 0,
            seq: i,
            poisoned: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packetize_splits_at_max_packet_size() {
        let config = NocConfig::paper_16core(); // 64 B flits, 20-flit packets
        let mut next = 0;
        // 64 * 45 bytes = 45 flits = 20 + 20 + 5.
        let packets = packetize(1, 0, 5, 64 * 45, &config, &mut next);
        assert_eq!(packets.len(), 3);
        assert_eq!(packets[0].flits, 20);
        assert_eq!(packets[1].flits, 20);
        assert_eq!(packets[2].flits, 5);
        assert_eq!(next, 3);
        assert!(packets.iter().all(|p| p.message == 1 && p.src == 0 && p.dst == 5));
    }

    #[test]
    fn tiny_message_is_single_flit_packet() {
        let config = NocConfig::paper_16core();
        let mut next = 10;
        let packets = packetize(2, 1, 2, 4, &config, &mut next);
        assert_eq!(packets.len(), 1);
        assert_eq!(packets[0].flits, 1);
        assert_eq!(packets[0].id, 10);
    }

    #[test]
    fn flit_sequence_marks_head_and_tail() {
        let p = PacketDescriptor { id: 0, message: 0, src: 0, dst: 1, flits: 3, yx: false };
        let flits: Vec<Flit> = p.flit_sequence().collect();
        assert!(flits[0].is_head && !flits[0].is_tail);
        assert!(!flits[1].is_head && !flits[1].is_tail);
        assert!(!flits[2].is_head && flits[2].is_tail);
    }

    #[test]
    fn single_flit_is_head_and_tail() {
        let p = PacketDescriptor { id: 0, message: 0, src: 0, dst: 1, flits: 1, yx: false };
        let flits: Vec<Flit> = p.flit_sequence().collect();
        assert!(flits[0].is_head && flits[0].is_tail);
    }
}
