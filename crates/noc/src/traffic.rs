//! Traffic traces: the messages a workload injects into the NoC.

use serde::{Deserialize, Serialize};

/// One core-to-core transfer request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Message {
    /// Source node.
    pub src: usize,
    /// Destination node (must differ from `src`; same-core data never
    /// enters the NoC).
    pub dst: usize,
    /// Payload bytes.
    pub bytes: u64,
    /// Cycle at which the source makes the data available.
    pub inject_cycle: u64,
}

impl Message {
    /// Creates a message.
    pub fn new(src: usize, dst: usize, bytes: u64, inject_cycle: u64) -> Self {
        Self { src, dst, bytes, inject_cycle }
    }
}

/// A whole trace with summary helpers.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrafficTrace {
    /// Messages in no particular order (the simulator sorts per source).
    pub messages: Vec<Message>,
}

impl TrafficTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a message.
    pub fn push(&mut self, message: Message) {
        self.messages.push(message);
    }

    /// Total payload bytes.
    pub fn total_bytes(&self) -> u64 {
        self.messages.iter().map(|m| m.bytes).sum()
    }

    /// Total byte·hop product under a distance function (the analytic
    /// communication-cost integrand the SS_Mask training minimizes).
    pub fn byte_hops(&self, distance: impl Fn(usize, usize) -> usize) -> u64 {
        self.messages.iter().map(|m| m.bytes * distance(m.src, m.dst) as u64).sum()
    }

    /// Number of messages.
    pub fn len(&self) -> usize {
        self.messages.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.messages.is_empty()
    }
}

impl FromIterator<Message> for TrafficTrace {
    fn from_iter<I: IntoIterator<Item = Message>>(iter: I) -> Self {
        Self { messages: iter.into_iter().collect() }
    }
}

impl Extend<Message> for TrafficTrace {
    fn extend<I: IntoIterator<Item = Message>>(&mut self, iter: I) {
        self.messages.extend(iter);
    }
}

/// Uniform-random traffic: every node sends `messages_per_node` messages of
/// `bytes` each to uniformly random other nodes — the classic NoC stress
/// pattern, used by the `noc_explorer` example and load tests.
pub fn uniform_random(
    nodes: usize,
    messages_per_node: usize,
    bytes: u64,
    seed: u64,
) -> TrafficTrace {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut trace = TrafficTrace::new();
    for src in 0..nodes {
        for _ in 0..messages_per_node {
            let mut dst = rng.gen_range(0..nodes);
            if dst == src {
                dst = (dst + 1) % nodes;
            }
            trace.push(Message::new(src, dst, bytes, 0));
        }
    }
    trace
}

/// All-to-all broadcast burst: every node sends `bytes` to every other node
/// at cycle 0 — exactly the layer-transition traffic of the paper's
/// *traditional parallelization*.
pub fn all_to_all(nodes: usize, bytes: u64) -> TrafficTrace {
    let mut trace = TrafficTrace::new();
    for src in 0..nodes {
        for dst in 0..nodes {
            if src != dst {
                trace.push(Message::new(src, dst, bytes, 0));
            }
        }
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_to_all_has_n_times_n_minus_one_messages() {
        let t = all_to_all(4, 100);
        assert_eq!(t.len(), 12);
        assert_eq!(t.total_bytes(), 1200);
        assert!(t.messages.iter().all(|m| m.src != m.dst));
    }

    #[test]
    fn uniform_random_never_self_sends() {
        let t = uniform_random(8, 10, 64, 3);
        assert_eq!(t.len(), 80);
        assert!(t.messages.iter().all(|m| m.src != m.dst));
        // Deterministic per seed.
        assert_eq!(t, uniform_random(8, 10, 64, 3));
        assert_ne!(t, uniform_random(8, 10, 64, 4));
    }

    #[test]
    fn byte_hops_weighs_by_distance() {
        let mut t = TrafficTrace::new();
        t.push(Message::new(0, 1, 10, 0));
        t.push(Message::new(0, 2, 10, 0));
        let dist = |a: usize, b: usize| b.abs_diff(a);
        assert_eq!(t.byte_hops(dist), 10 + 20);
    }

    #[test]
    fn collects_from_iterator() {
        let t: TrafficTrace = (0..3).map(|i| Message::new(i, i + 1, 1, 0)).collect();
        assert_eq!(t.len(), 3);
    }
}
