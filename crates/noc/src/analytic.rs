//! Closed-form NoC cost model.
//!
//! Congestion-free lower bounds on latency and exact flit·hop counts for a
//! trace. Three uses:
//!
//! 1. the training-time communication cost that SS_Mask minimizes (bytes ×
//!    hop distance);
//! 2. sanity bounds the flit-level simulator must respect (tested in both
//!    crates);
//! 3. the `ablation_noc_fidelity` experiment, which quantifies what the
//!    flit-level simulation adds over this model.

use crate::config::NocConfig;
use crate::topology::Topology;
use crate::traffic::{Message, TrafficTrace};
use serde::{Deserialize, Serialize};

/// Analytic summary of a trace under a configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnalyticReport {
    /// Total flits across all messages.
    pub total_flits: u64,
    /// Total flit·hop product.
    pub flit_hops: u64,
    /// Congestion-free makespan lower bound: the larger of the worst
    /// single-message pipeline time and the most-loaded link's
    /// serialization time.
    pub makespan_lower_bound: u64,
    /// Maximum flits crossing any single directed link (bisection-style
    /// bottleneck measure).
    pub max_link_load: u64,
}

/// Computes the analytic report for a trace.
///
/// # Examples
///
/// ```
/// use lts_noc::analytic::analyze;
/// use lts_noc::traffic::all_to_all;
/// use lts_noc::NocConfig;
///
/// let config = NocConfig::paper_16core();
/// let report = analyze(&config, &all_to_all(16, 1024));
/// // 240 messages x 16 flits each.
/// assert_eq!(report.total_flits, 240 * 16);
/// assert!(report.makespan_lower_bound > 0);
/// ```
///
/// # Panics
///
/// Panics if a message references a node outside the topology.
pub fn analyze(config: &NocConfig, trace: &TrafficTrace) -> AnalyticReport {
    let topo = config.topo();
    let mut total_flits = 0u64;
    let mut flit_hops = 0u64;
    let mut worst_message = 0u64;
    // Injection always happens on the source's local chiplet lanes.
    let ser = config.serialization_cycles();
    let channels = config.physical_channels as u64;
    // Directed link load: key = (node, direction index 0..4) excluding local.
    let mut link_load = vec![0u64; config.nodes() * 4];
    for m in &trace.messages {
        let flits = config.flits_for_bytes(m.bytes);
        let hops = topo.distance(m.src, m.dst) as u64;
        total_flits += flits;
        flit_hops += flits * hops;
        // Pipeline time for this message alone: the injection link and
        // every hop serialize each flit (at that hop's class-specific phit
        // width), and the last flit cannot start before its predecessors
        // clear the injection lanes. On a plain mesh every hop is
        // intra-chip and this reduces to the pre-topology formula
        // `hops * (link_cycles + ser - 1)` bit-exactly.
        let mut per_hop = 0u64;
        let mut here = m.src;
        for next in topo.path_xy(m.src, m.dst) {
            if next != here {
                let dir = topo.route_xy(here, m.dst);
                let class = topo.hop_class(here, dir);
                per_hop +=
                    config.link_cycles_for(class) + config.serialization_cycles_for(class) - 1;
                link_load[here * 4 + dir.index()] += flits;
            }
            here = next;
        }
        let first_flit = (ser - 1) + (hops + 1) * config.router_stages + per_hop;
        let last_flit_start = ser * ((flits - 1) / channels);
        let pipeline = first_flit + last_flit_start;
        worst_message = worst_message.max(m.inject_cycle + pipeline);
    }
    // Per-link serialization bound, priced at that link's hop class.
    let mut serialization = 0u64;
    for node in 0..config.nodes() {
        for dir in crate::topology::Direction::ALL.into_iter().take(4) {
            let load = link_load[node * 4 + dir.index()];
            if load > 0 {
                let class = topo.hop_class(node, dir);
                serialization =
                    serialization.max(load * config.serialization_cycles_for(class) / channels);
            }
        }
    }
    let max_link_load = link_load.iter().copied().max().unwrap_or(0);
    AnalyticReport {
        total_flits,
        flit_hops,
        makespan_lower_bound: worst_message.max(serialization),
        max_link_load,
    }
}

/// Bytes × hop-distance cost of a single message (the integrand SS_Mask
/// training minimizes).
pub fn message_byte_hops<T: Topology>(topo: &T, m: &Message) -> u64 {
    m.bytes * topo.distance(m.src, m.dst) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::all_to_all;
    use crate::Simulator;

    #[test]
    fn flit_hops_matches_hand_computation() {
        let config = NocConfig::paper_16core();
        let mut trace = TrafficTrace::new();
        trace.push(Message::new(0, 3, 128, 0)); // 2 flits * 3 hops
        trace.push(Message::new(0, 1, 64, 0)); // 1 flit * 1 hop
        let r = analyze(&config, &trace);
        assert_eq!(r.total_flits, 3);
        assert_eq!(r.flit_hops, 7);
    }

    #[test]
    fn simulator_respects_analytic_lower_bound() {
        let config = NocConfig::paper_16core();
        let trace = all_to_all(16, 2048);
        let analytic = analyze(&config, &trace);
        let mut sim = Simulator::new(config).unwrap();
        let report = sim.run(&trace.messages).unwrap();
        assert!(
            report.makespan >= analytic.makespan_lower_bound,
            "sim {} < bound {}",
            report.makespan,
            analytic.makespan_lower_bound
        );
        // Link traversals in the simulator equal analytic flit·hops
        // (deterministic XY routing, no misrouting).
        assert_eq!(report.events.link_traversals, analytic.flit_hops);
    }

    #[test]
    fn link_load_spots_the_bottleneck() {
        let config = NocConfig::paper_16core();
        // Everyone sends to node 0: its incoming links are the bottleneck.
        let mut trace = TrafficTrace::new();
        for src in 1..16 {
            trace.push(Message::new(src, 0, 640, 0));
        }
        let r = analyze(&config, &trace);
        assert!(r.max_link_load >= 40, "hot link should carry many flits: {}", r.max_link_load);
        assert!(r.makespan_lower_bound >= r.max_link_load / 2);
    }

    #[test]
    fn analytic_matches_simulator_on_an_mcm_package() {
        let config = NocConfig::paper_mcm(2, 16).unwrap();
        let trace = all_to_all(32, 1024);
        let analytic = analyze(&config, &trace);
        let mut sim = Simulator::new(config).unwrap();
        let report = sim.run(&trace.messages).unwrap();
        assert!(
            report.makespan >= analytic.makespan_lower_bound,
            "sim {} < bound {}",
            report.makespan,
            analytic.makespan_lower_bound
        );
        // XY routing is still minimal on the stitched package mesh.
        assert_eq!(report.events.link_traversals, analytic.flit_hops);
    }

    #[test]
    fn empty_trace_is_all_zero() {
        let r = analyze(&NocConfig::paper_16core(), &TrafficTrace::new());
        assert_eq!(r.total_flits, 0);
        assert_eq!(r.makespan_lower_bound, 0);
    }
}
