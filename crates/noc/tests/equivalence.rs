//! Active-set vs full-scan stepper equivalence.
//!
//! The active-set sweep ([`Simulator::run`], [`Simulator::run_recoverable`])
//! must be a pure strength reduction of the retained pre-overhaul full-scan
//! stepper ([`Simulator::run_reference`],
//! [`Simulator::run_recoverable_reference`]): every report — including the
//! `cycles_simulated` / `cycles_fast_forwarded` observability counters,
//! detections and abandonment sets — must be bit-identical on any input.
//! These properties drive randomized traces through both steppers, with and
//! without fault injection, retransmissions and mid-run death schedules.

use lts_noc::recovery::{FaultSchedule, MonitorConfig};
use lts_noc::stats::SimReport;
use lts_noc::topology::Direction;
use lts_noc::traffic::Message;
use lts_noc::{FaultModel, NocConfig, NocError, Simulator};
use proptest::prelude::*;

/// Renders a run outcome for comparison: the steppers must agree on
/// errors (e.g. retry-budget exhaustion) exactly as they do on reports.
fn outcome(r: Result<SimReport, NocError>) -> String {
    format!("{r:?}")
}

/// Random valid trace on `nodes` cores; inject cycles span far enough to
/// exercise idle fast-forwarding between bursts.
fn trace_strategy(nodes: usize, max_msgs: usize) -> impl Strategy<Value = Vec<Message>> {
    proptest::collection::vec(
        (0..nodes, 0..nodes, 1u64..1500, 0u64..20_000).prop_map(move |(s, d, bytes, t)| {
            let dst = if d == s { (d + 1) % nodes } else { d };
            Message::new(s, dst, bytes, t)
        }),
        1..max_msgs,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn active_set_matches_full_scan_fault_free(msgs in trace_strategy(16, 30)) {
        let mut sim = Simulator::new(NocConfig::paper_16core()).unwrap();
        let active = sim.run(&msgs).unwrap();
        let full = sim.run_reference(&msgs).unwrap();
        prop_assert_eq!(active, full);
    }

    #[test]
    fn active_set_matches_full_scan_with_retransmissions(
        msgs in trace_strategy(16, 20),
        seed in 0u64..1000,
        drop_pct in 1u32..8,
    ) {
        // Transient drops force NIC rejections, timeouts and retries.
        let fault = FaultModel::none()
            .with_seed(seed)
            .drop_rate(f64::from(drop_pct) / 100.0)
            .retry_limit(12);
        // Heavy drop rates can legitimately exhaust the retry budget, which
        // static runs surface as `Err(Unreachable)` — the steppers must agree
        // on that outcome exactly as they do on successful reports.
        let mut sim = Simulator::with_faults(NocConfig::paper_16core(), fault).unwrap();
        let active = outcome(sim.run(&msgs));
        let full = outcome(sim.run_reference(&msgs));
        prop_assert_eq!(active, full);
    }

    #[test]
    fn active_set_matches_full_scan_with_dead_router(
        msgs in trace_strategy(16, 25),
        dead in 1usize..15,
        seed in 0u64..1000,
    ) {
        // Survivors only talk to survivors; rerouting around the dead
        // router plus a light drop rate exercises the faulty switch paths.
        let msgs: Vec<Message> =
            msgs.into_iter().filter(|m| m.src != dead && m.dst != dead).collect();
        let fault =
            FaultModel::none().with_seed(seed).kill_router(dead).drop_rate(0.01).retry_limit(8);
        let mut sim = Simulator::with_faults(NocConfig::paper_16core(), fault).unwrap();
        let active = outcome(sim.run(&msgs));
        let full = outcome(sim.run_reference(&msgs));
        prop_assert_eq!(active, full);
    }

    #[test]
    fn active_set_matches_full_scan_recoverable(
        msgs in trace_strategy(16, 20),
        death_node in 1usize..15,
        death_cycle in 100u64..30_000,
        link_node in 0usize..16,
        dir_idx in 0usize..4,
        link_cycle in 100u64..30_000,
    ) {
        // A router death and a link death land mid-run: worms get severed,
        // messages get abandoned, the monitor detects — all of it must
        // agree between the two steppers.
        let schedule = FaultSchedule::new()
            .router_death(death_cycle, death_node)
            .link_death(link_cycle, link_node, Direction::ALL[dir_idx]);
        let monitor = MonitorConfig::default();
        let mut sim = Simulator::new(NocConfig::paper_16core()).unwrap();
        let active = sim.run_recoverable(&msgs, &schedule, &monitor).unwrap();
        let full = sim.run_recoverable_reference(&msgs, &schedule, &monitor).unwrap();
        prop_assert_eq!(active.report, full.report);
        prop_assert_eq!(active.detections, full.detections);
        prop_assert_eq!(active.abandoned, full.abandoned);
    }
}
