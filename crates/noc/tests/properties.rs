//! Property-based tests for the NoC simulator's global invariants.

use lts_noc::analytic::analyze;
use lts_noc::fault::plan_routes;
use lts_noc::topology::Direction;
use lts_noc::traffic::{Message, TrafficTrace};
use lts_noc::{FaultModel, McmTopology, Mesh2d, NocConfig, Simulator, Topology};
use proptest::prelude::*;

/// Strategy producing a random valid trace on a w×h mesh.
fn trace_strategy(nodes: usize, max_msgs: usize) -> impl Strategy<Value = Vec<Message>> {
    proptest::collection::vec(
        (0..nodes, 0..nodes, 1u64..2000, 0u64..200).prop_map(|(s, d, bytes, t)| {
            let dst = if d == s { (d + 1) % 16 } else { d };
            Message::new(s, dst, bytes, t)
        }),
        1..max_msgs,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_message_is_delivered_exactly_once(msgs in trace_strategy(16, 40)) {
        let mut sim = Simulator::new(NocConfig::paper_16core()).unwrap();
        let report = sim.run(&msgs).unwrap();
        prop_assert_eq!(report.messages_delivered, msgs.len());
        prop_assert_eq!(report.message_latencies.len(), msgs.len());
        let total_flits: u64 = msgs
            .iter()
            .map(|m| sim.config().flits_for_bytes(m.bytes))
            .sum();
        prop_assert_eq!(report.flits_delivered, total_flits);
    }

    #[test]
    fn buffer_reads_equal_writes(msgs in trace_strategy(16, 30)) {
        let mut sim = Simulator::new(NocConfig::paper_16core()).unwrap();
        let report = sim.run(&msgs).unwrap();
        prop_assert_eq!(report.events.buffer_reads, report.events.buffer_writes);
    }

    #[test]
    fn latency_bounded_below_by_distance(msgs in trace_strategy(16, 25)) {
        let cfg = NocConfig::paper_16core();
        let mesh = Mesh2d::new(4, 4);
        let mut sim = Simulator::new(cfg).unwrap();
        let report = sim.run(&msgs).unwrap();
        for (i, m) in msgs.iter().enumerate() {
            let hops = mesh.distance(m.src, m.dst) as u64;
            let flits = cfg.flits_for_bytes(m.bytes);
            let lower = (hops + 1) * cfg.router_stages + hops * cfg.link_cycles + (flits - 1);
            prop_assert!(report.message_latencies[i] >= lower);
        }
    }

    #[test]
    fn link_traversals_equal_analytic_flit_hops(msgs in trace_strategy(16, 30)) {
        let cfg = NocConfig::paper_16core();
        let trace = TrafficTrace { messages: msgs.clone() };
        let analytic = analyze(&cfg, &trace);
        let mut sim = Simulator::new(cfg).unwrap();
        let report = sim.run(&msgs).unwrap();
        prop_assert_eq!(report.events.link_traversals, analytic.flit_hops);
        prop_assert!(report.makespan >= analytic.makespan_lower_bound);
    }

    #[test]
    fn more_bytes_never_reduce_total_work(
        msgs in trace_strategy(16, 15), extra in 64u64..512
    ) {
        let cfg = NocConfig::paper_16core();
        let mut sim = Simulator::new(cfg).unwrap();
        let base = sim.run(&msgs).unwrap();
        let bigger: Vec<Message> = msgs
            .iter()
            .map(|m| Message::new(m.src, m.dst, m.bytes + extra, m.inject_cycle))
            .collect();
        let big = sim.run(&bigger).unwrap();
        prop_assert!(big.events.link_traversals >= base.events.link_traversals);
        prop_assert!(big.flits_delivered >= base.flits_delivered);
    }

    #[test]
    fn meshes_of_any_shape_deliver(msgs in trace_strategy(6, 15), w in 2usize..4, h in 2usize..4) {
        let cfg = NocConfig::paper_mesh(w, h);
        let nodes = cfg.nodes();
        // Remap endpoints into range.
        let msgs: Vec<Message> = msgs
            .iter()
            .map(|m| {
                let s = m.src % nodes;
                let mut d = m.dst % nodes;
                if d == s {
                    d = (d + 1) % nodes;
                }
                Message::new(s, d, m.bytes, m.inject_cycle)
            })
            .collect();
        let mut sim = Simulator::new(cfg).unwrap();
        let report = sim.run(&msgs).unwrap();
        prop_assert_eq!(report.messages_delivered, msgs.len());
    }

    #[test]
    fn any_single_dead_seam_link_keeps_a_package_grid_connected(
        chip_w in 2usize..4,
        chip_h in 2usize..4,
        grid_w in 2usize..4,
        grid_h in 2usize..4,
        pick in 0usize..1000,
    ) {
        // Generalizes the 2x1 unit test in `crates/noc/src/fault.rs`: on
        // a >= 2x2 package grid every seam has a detour (around the grid
        // cycle through neighboring chiplets), so killing any single
        // interposer link must leave all node pairs mutually reachable.
        let topo = McmTopology::new(chip_w, chip_h, grid_w, grid_h);
        let mut seams: Vec<(usize, Direction)> = Vec::new();
        for c in 0..Topology::chiplets(&topo) {
            for (node, dir) in topo.chiplet_seam_links(c) {
                // Each physical link shows up from both endpoints; keep
                // the canonical (East/South) naming once.
                if dir == Direction::East || dir == Direction::South {
                    seams.push((node, dir));
                }
            }
        }
        prop_assert!(!seams.is_empty());
        let (node, dir) = seams[pick % seams.len()];
        let fault = FaultModel::none().kill_link(node, dir);
        let table = plan_routes(&topo, &fault);
        prop_assert!(
            table.iter().all(|e| e.is_some()),
            "dead seam link ({}, {:?}) disconnected a {}x{} grid of {}x{} chiplets",
            node, dir, grid_w, grid_h, chip_w, chip_h
        );
    }
}
