//! Online-recovery integration tests: empty-schedule bit-parity with the
//! static path, heartbeat-deadline detection of mid-run router deaths,
//! the exhaustion-vs-heartbeat detection race, link-death rerouting, and
//! the never-hang guarantee under random schedules.

use lts_noc::topology::Direction;
use lts_noc::traffic::Message;
use lts_noc::{
    DetectionCause, FaultModel, FaultSchedule, MonitorConfig, NocConfig, NocError, Simulator,
};
use proptest::prelude::*;

/// A steady mixed-pair stream covering the first ~10k cycles.
fn stream() -> Vec<Message> {
    let mut msgs = Vec::new();
    for i in 0..200usize {
        let src = i % 16;
        let dst = (i * 7 + 3) % 16;
        if src != dst {
            msgs.push(Message::new(src, dst, 256, (i as u64) * 50));
        }
    }
    msgs
}

#[test]
fn empty_schedule_is_bit_identical_to_the_static_path() {
    let cfg = NocConfig::paper_16core();
    let msgs = stream();
    let plain = Simulator::new(cfg).unwrap().run(&msgs).unwrap();
    let mut s = Simulator::new(cfg).unwrap();
    let rec = s.run_recoverable(&msgs, &FaultSchedule::new(), &MonitorConfig::default()).unwrap();
    assert_eq!(rec.report, plain);
    assert!(rec.detections.is_empty());
    assert!(rec.fully_delivered());
}

#[test]
fn mid_run_router_death_is_detected_at_the_heartbeat_deadline() {
    let cfg = NocConfig::paper_16core();
    let msgs = stream();
    let monitor = MonitorConfig::default();
    let died_at = 3_000u64;
    let schedule = FaultSchedule::new().router_death(died_at, 10);
    let mut s = Simulator::new(cfg).unwrap();
    let rec = s.run_recoverable(&msgs, &schedule, &monitor).unwrap();

    assert_eq!(rec.detections.len(), 1);
    let d = rec.detections[0];
    assert_eq!(d.node, 10);
    assert_eq!(d.died_at, died_at);
    assert_eq!(d.cause, DetectionCause::MissedHeartbeats);
    // The in-sim detection must land exactly on the analytic deadline the
    // higher layers use to place recovery on a timeline.
    assert_eq!(d.detected_at, monitor.detection_cycle(&cfg, 10, died_at));
    assert!(d.latency() >= u64::from(monitor.miss_threshold - 1) * monitor.period);

    // Everything that still failed touches the dead node; the rest of the
    // mesh keeps delivering.
    assert!(!rec.abandoned.is_empty(), "traffic through node 10 must be lost");
    for &mi in &rec.abandoned {
        let m = &msgs[mi];
        assert!(m.src == 10 || m.dst == 10, "abandoned {mi} avoids node 10: {m:?}");
    }
    let survivors = msgs.len() - rec.abandoned.len();
    assert_eq!(rec.report.messages_delivered, survivors);
    assert!(rec.report.faults.flits_lost > 0, "in-flight flits must be discarded");
}

#[test]
fn retransmission_exhaustion_races_and_beats_a_slow_monitor() {
    let cfg = NocConfig::paper_16core();
    // Slow heartbeat (detection would land ~36k cycles in), fast bounded
    // NIC: exhaustion must win the detection race.
    let monitor = MonitorConfig { period: 8_192, miss_threshold: 3, monitor: 0, overhead: 4 };
    let mut fault = FaultModel::none().retry_limit(4);
    fault.retransmit.base_timeout = 200;
    fault.retransmit.backoff_cap = 2;
    let schedule = FaultSchedule::new().router_death(10, 9);
    let msgs = vec![Message::new(0, 9, 128, 100)];
    let mut s = Simulator::with_faults(cfg, fault).unwrap();
    let rec = s.run_recoverable(&msgs, &schedule, &monitor).unwrap();

    assert_eq!(rec.abandoned, vec![0]);
    assert_eq!(rec.report.messages_delivered, 0);
    assert_eq!(rec.detections.len(), 1);
    let d = rec.detections[0];
    assert_eq!(d.node, 9);
    assert_eq!(d.cause, DetectionCause::RetransmitExhaustion);
    assert!(
        d.detected_at < monitor.detection_cycle(&cfg, 9, 10),
        "exhaustion at {} should beat the heartbeat deadline {}",
        d.detected_at,
        monitor.detection_cycle(&cfg, 9, 10)
    );
}

#[test]
fn mid_run_link_death_reroutes_and_still_delivers_everything() {
    let cfg = NocConfig::paper_16core();
    let msgs = stream();
    let schedule = FaultSchedule::new().link_death(500, 5, Direction::East);
    let mut s = Simulator::new(cfg).unwrap();
    let rec = s.run_recoverable(&msgs, &schedule, &MonitorConfig::default()).unwrap();
    // One dead link leaves the mesh connected: retransmissions route
    // around it and nothing is abandoned; link deaths alone are not node
    // deaths, so the monitor reports nothing.
    assert!(rec.fully_delivered(), "abandoned: {:?}", rec.abandoned);
    assert_eq!(rec.report.messages_delivered, msgs.len());
    assert!(rec.detections.is_empty());
}

#[test]
fn mcm_router_death_detects_exactly_at_the_seam_priced_deadline() {
    // Same 8×4 node grid as `paper_cores(32)`, but split into two 4×4
    // chiplets: the victim sits on the far chiplet, so its heartbeat
    // deadline includes one interposer seam hop. The in-sim detection
    // must land cycle-exactly on the seam-priced analytic deadline —
    // and strictly after the deadline the plain mesh would compute.
    let mcm = NocConfig::paper_mcm(2, 16).unwrap();
    let mesh = NocConfig::paper_cores(32).unwrap();
    let monitor = MonitorConfig::default();
    let died_at = 3_000u64;
    let victim = 31usize; // package (7, 3), chiplet 1
    let mut msgs = Vec::new();
    for i in 0..200usize {
        let src = i % 32;
        let dst = (i * 11 + 5) % 32;
        if src != dst {
            msgs.push(Message::new(src, dst, 256, (i as u64) * 50));
        }
    }
    let schedule = FaultSchedule::new().router_death(died_at, victim);
    let mut s = Simulator::new(mcm).unwrap();
    let rec = s.run_recoverable(&msgs, &schedule, &monitor).unwrap();

    assert_eq!(rec.detections.len(), 1);
    let d = rec.detections[0];
    assert_eq!((d.node, d.died_at), (victim, died_at));
    assert_eq!(d.cause, DetectionCause::MissedHeartbeats);
    assert_eq!(d.detected_at, monitor.detection_cycle(&mcm, victim, died_at));
    assert!(
        d.detected_at > monitor.detection_cycle(&mesh, victim, died_at),
        "seam hops must push the MCM deadline past the uniform-mesh one"
    );
}

#[test]
fn recoverable_runs_are_reproducible() {
    let cfg = NocConfig::paper_16core();
    let msgs = stream();
    let schedule =
        FaultSchedule::new().router_death(2_500, 6).link_death(4_000, 12, Direction::North);
    let monitor = MonitorConfig::default();
    let a = Simulator::new(cfg).unwrap().run_recoverable(&msgs, &schedule, &monitor).unwrap();
    let b = Simulator::new(cfg).unwrap().run_recoverable(&msgs, &schedule, &monitor).unwrap();
    assert_eq!(a, b);
}

#[test]
fn static_runs_still_work_after_a_dynamic_run_on_the_same_simulator() {
    let cfg = NocConfig::paper_16core();
    let msgs = stream();
    let mut s = Simulator::new(cfg).unwrap();
    let before = s.run(&msgs).unwrap();
    let schedule = FaultSchedule::new().router_death(1_000, 7);
    s.run_recoverable(&msgs, &schedule, &MonitorConfig::default()).unwrap();
    // The dynamic run mutates fault state internally; it must restore it.
    let after = s.run(&msgs).unwrap();
    assert_eq!(before, after);
}

#[test]
fn monitor_death_goes_unreported_but_the_run_still_terminates() {
    let cfg = NocConfig::paper_16core();
    let msgs = stream();
    let monitor = MonitorConfig::default();
    // Kill the monitor first, then another node: the second death's
    // heartbeat deadline lies after the monitor died, so neither death is
    // reported by heartbeats; detection can only come from exhaustion.
    let schedule = FaultSchedule::new().router_death(1_000, 0).router_death(1_200, 10);
    let mut s = Simulator::new(cfg).unwrap();
    let rec = s.run_recoverable(&msgs, &schedule, &monitor).unwrap();
    assert!(rec.detections.iter().all(|d| d.cause == DetectionCause::RetransmitExhaustion));
    assert!(!rec.abandoned.is_empty());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any schedule of deaths terminates with Ok or a typed error —
    /// never a panic, never a hang past the watchdog.
    #[test]
    fn any_death_schedule_terminates_cleanly(
        node_a in 0usize..16,
        node_b in 0usize..16,
        cycle_a in 0u64..20_000,
        cycle_b in 0u64..20_000,
        kill_link in 0u8..2,
        period in 64u64..2_048,
        seed in 0u64..1_000,
    ) {
        let mut cfg = NocConfig::paper_16core();
        cfg.max_cycles = 2_000_000;
        let mut schedule = FaultSchedule::new().router_death(cycle_a, node_a);
        schedule = if kill_link == 1 {
            schedule.link_death(cycle_b, node_b, Direction::East)
        } else {
            schedule.router_death(cycle_b, node_b)
        };
        let monitor = MonitorConfig { period, ..MonitorConfig::default() };
        let msgs = lts_noc::traffic::uniform_random(16, 4, 400, seed).messages;
        let mut s = Simulator::new(cfg).unwrap();
        match s.run_recoverable(&msgs, &schedule, &monitor) {
            Ok(rec) => {
                let lost = rec.abandoned.len();
                prop_assert_eq!(rec.report.messages_delivered + lost, msgs.len());
            }
            Err(NocError::CycleLimitExceeded { .. }) | Err(NocError::Unreachable { .. }) => {}
            Err(e) => prop_assert!(false, "unexpected error {:?}", e),
        }
    }
}
