//! Fault-injection integration tests: fault-free parity, deterministic
//! schedules, retransmission behaviour, rerouting, and the termination
//! guarantee (typed errors, never hangs) under arbitrary fault configs.

use lts_noc::topology::Direction;
use lts_noc::traffic::{uniform_random, Message};
use lts_noc::{FaultModel, NocConfig, NocError, Simulator};
use proptest::prelude::*;

fn trace() -> Vec<Message> {
    uniform_random(16, 5, 600, 21).messages
}

#[test]
fn none_model_is_bit_identical_to_plain_run() {
    let cfg = NocConfig::paper_16core();
    let msgs = trace();
    let plain = Simulator::new(cfg).unwrap().run(&msgs).unwrap();
    let faulty = Simulator::with_faults(cfg, FaultModel::none()).unwrap().run(&msgs).unwrap();
    // Full report equality: stats, events, and per-message latencies.
    assert_eq!(plain, faulty);
    assert!(!faulty.faults.any());
}

#[test]
fn transient_drops_cost_latency_not_correctness() {
    let cfg = NocConfig::paper_16core();
    let msgs = trace();
    let clean = Simulator::new(cfg).unwrap().run(&msgs).unwrap();
    let fault = FaultModel::none().with_seed(7).drop_rate(0.05);
    let r = Simulator::with_faults(cfg, fault).unwrap().run(&msgs).unwrap();
    assert_eq!(r.messages_delivered, msgs.len(), "every message must still arrive");
    assert_eq!(r.flits_delivered, clean.flits_delivered, "clean flit count is preserved");
    assert!(r.faults.flits_dropped > 0, "a 5% drop rate must fire on this trace");
    assert!(r.faults.packets_rejected > 0);
    assert!(r.faults.packets_retransmitted >= r.faults.packets_rejected);
    assert!(r.makespan > clean.makespan, "retransmissions must cost time");
}

#[test]
fn corruption_is_detected_and_retried() {
    let cfg = NocConfig::paper_16core();
    let msgs = trace();
    let fault = FaultModel::none().with_seed(11).corrupt_rate(0.05);
    let r = Simulator::with_faults(cfg, fault).unwrap().run(&msgs).unwrap();
    assert_eq!(r.messages_delivered, msgs.len());
    assert!(r.faults.flits_corrupted > 0);
    assert_eq!(r.faults.flits_dropped, 0);
}

#[test]
fn same_seed_reproduces_the_same_fault_schedule() {
    let cfg = NocConfig::paper_16core();
    let msgs = trace();
    let fault = FaultModel::none().with_seed(99).drop_rate(0.03).corrupt_rate(0.01);
    let a = Simulator::with_faults(cfg, fault.clone()).unwrap().run(&msgs).unwrap();
    let b = Simulator::with_faults(cfg, fault).unwrap().run(&msgs).unwrap();
    assert_eq!(a, b, "identical seed + config must be bit-identical");
    let other = FaultModel::none().with_seed(100).drop_rate(0.03).corrupt_rate(0.01);
    let c = Simulator::with_faults(cfg, other).unwrap().run(&msgs).unwrap();
    assert_ne!(a.faults, c.faults, "a different seed should fault differently");
}

#[test]
fn traffic_detours_around_a_dead_router() {
    let cfg = NocConfig::paper_16core();
    // Node 5 is interior on the 4x4 mesh; kill it and send traffic whose
    // XY route would cross it: 4 -> 6 goes straight East through 5.
    let fault = FaultModel::none().kill_router(5);
    let mut sim = Simulator::with_faults(cfg, fault).unwrap();
    let r = sim.run(&[Message::new(4, 6, 2048, 0)]).unwrap();
    assert_eq!(r.messages_delivered, 1);
    // No flit may touch any of the dead router's links.
    for dir in 0..4 {
        assert_eq!(r.link_flits[5 * 4 + dir], 0, "dead router forwarded flits");
    }
}

#[test]
fn dead_link_forces_a_detour() {
    let cfg = NocConfig::paper_16core();
    let fault = FaultModel::none().kill_link(0, Direction::East);
    let mut sim = Simulator::with_faults(cfg, fault).unwrap();
    let r = sim.run(&[Message::new(0, 3, 1024, 0)]).unwrap();
    assert_eq!(r.messages_delivered, 1);
    assert_eq!(r.link_flits[Direction::East.index()], 0, "flits crossed the dead link");
    // The detour is longer than the 3-hop XY route.
    let clean = Simulator::new(cfg).unwrap().run(&[Message::new(0, 3, 1024, 0)]).unwrap();
    assert!(r.events.link_traversals > clean.events.link_traversals);
}

#[test]
fn unreachable_destination_is_a_typed_error() {
    // A 4x1 line mesh cut in the middle.
    let cfg = NocConfig::paper_mesh(4, 1);
    let fault = FaultModel::none().kill_router(1);
    let mut sim = Simulator::with_faults(cfg, fault).unwrap();
    assert_eq!(
        sim.run(&[Message::new(0, 3, 64, 0)]),
        Err(NocError::Unreachable { src: 0, dst: 3 })
    );
    // A dead endpoint is unreachable too.
    let fault = FaultModel::none().kill_router(3);
    let mut sim = Simulator::with_faults(NocConfig::paper_mesh(4, 1), fault).unwrap();
    assert!(matches!(sim.run(&[Message::new(0, 3, 64, 0)]), Err(NocError::Unreachable { .. })));
    // Traffic between surviving nodes still flows.
    let fault = FaultModel::none().kill_router(3);
    let mut sim = Simulator::with_faults(NocConfig::paper_mesh(4, 1), fault).unwrap();
    assert_eq!(sim.run(&[Message::new(0, 2, 64, 0)]).unwrap().messages_delivered, 1);
}

#[test]
fn certain_loss_hits_the_watchdog_not_a_hang() {
    let mut cfg = NocConfig::paper_16core();
    cfg.max_cycles = 300_000;
    let fault = FaultModel::none().with_seed(3).drop_rate(1.0);
    let mut sim = Simulator::with_faults(cfg, fault).unwrap();
    let got = sim.run(&[Message::new(0, 15, 512, 0)]);
    assert!(
        matches!(got, Err(NocError::CycleLimitExceeded { .. })),
        "certain loss must end in the typed watchdog error, got {got:?}"
    );
}

#[test]
fn retransmit_energy_and_traffic_exceed_clean_run() {
    let cfg = NocConfig::paper_16core();
    let msgs = trace();
    let clean = Simulator::new(cfg).unwrap().run(&msgs).unwrap();
    let fault = FaultModel::none().with_seed(5).drop_rate(0.08);
    let faulty = Simulator::with_faults(cfg, fault).unwrap().run(&msgs).unwrap();
    assert!(faulty.events.link_traversals > clean.events.link_traversals);
    assert!(faulty.events.buffer_writes > clean.events.buffer_writes);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The headline robustness guarantee: under ANY fault configuration
    /// the simulator terminates with either a delivered trace or a typed
    /// error — no panic, no unbounded loop.
    #[test]
    fn any_fault_config_terminates_with_ok_or_typed_error(
        seed in 0u64..1000,
        drop_milli in 0u64..=1000,
        corrupt_milli in 0u64..=1000,
        dead_router in 0usize..32,
        dead_link_node in 0usize..16,
        dead_link_dir in 0usize..4,
        kill_any in 0u8..4,
        msgs in proptest::collection::vec(
            (0usize..16, 0usize..16, 1u64..1500, 0u64..100).prop_map(|(s, d, bytes, t)| {
                let dst = if d == s { (d + 1) % 16 } else { d };
                Message::new(s, dst, bytes, t)
            }),
            1..12,
        ),
    ) {
        let mut cfg = NocConfig::paper_16core();
        cfg.max_cycles = 150_000;
        let mut fault = FaultModel::none()
            .with_seed(seed)
            .drop_rate(drop_milli as f64 / 1000.0)
            .corrupt_rate(corrupt_milli as f64 / 1000.0);
        // kill_any selects which permanent faults to include; dead_router
        // may be out of range on purpose (validation must catch it).
        if kill_any & 1 != 0 {
            fault = fault.kill_router(dead_router);
        }
        if kill_any & 2 != 0 {
            fault = fault.kill_link(dead_link_node, Direction::ALL[dead_link_dir]);
        }
        match Simulator::with_faults(cfg, fault) {
            Err(NocError::BadConfig(_)) => {} // out-of-range hardware, rejected cleanly
            Err(e) => prop_assert!(false, "unexpected construction error {e:?}"),
            Ok(mut sim) => match sim.run(&msgs) {
                Ok(r) => {
                    prop_assert_eq!(r.messages_delivered, msgs.len());
                    prop_assert_eq!(r.message_latencies.len(), msgs.len());
                }
                Err(NocError::Unreachable { .. }) => {}
                Err(NocError::CycleLimitExceeded { undelivered, .. }) => {
                    prop_assert!(undelivered > 0);
                }
                Err(e) => prop_assert!(false, "unexpected run error {e:?}"),
            },
        }
    }

    /// Fault schedules are a pure function of (seed, config): repeated
    /// runs of one simulator instance are bit-identical.
    #[test]
    fn faulty_runs_are_reproducible(
        seed in 0u64..500,
        drop_milli in 0u64..100,
        msgs in proptest::collection::vec(
            (0usize..16, 0usize..16, 1u64..1200, 0u64..50).prop_map(|(s, d, bytes, t)| {
                let dst = if d == s { (d + 1) % 16 } else { d };
                Message::new(s, dst, bytes, t)
            }),
            1..10,
        ),
    ) {
        let cfg = NocConfig::paper_16core();
        let fault = FaultModel::none().with_seed(seed).drop_rate(drop_milli as f64 / 1000.0);
        let mut sim = Simulator::with_faults(cfg, fault).unwrap();
        let a = sim.run(&msgs).unwrap();
        let b = sim.run(&msgs).unwrap();
        prop_assert_eq!(a, b);
    }
}

#[test]
fn bounded_retransmission_surfaces_unreachable_within_budget() {
    // Regression: with a finite retry budget, a destination that can never
    // accept a clean packet must surface as a typed `Unreachable` long
    // before the cycle watchdog, not spin in an unbounded retry loop.
    let mut cfg = NocConfig::paper_16core();
    cfg.max_cycles = 300_000;
    let fault = FaultModel::none().with_seed(11).drop_rate(1.0).retry_limit(6);
    let mut s = Simulator::with_faults(cfg, fault).unwrap();
    match s.run(&[Message::new(0, 5, 256, 0)]) {
        Err(NocError::Unreachable { src: 0, dst: 5 }) => {}
        other => panic!("expected Unreachable, got {other:?}"),
    }
}

#[test]
fn retry_limit_zero_keeps_the_unbounded_default() {
    // The unbounded default retries past any finite budget; total loss
    // then ends at the watchdog exactly as before the bound existed.
    let mut cfg = NocConfig::paper_16core();
    cfg.max_cycles = 200_000;
    let fault = FaultModel::none().with_seed(11).drop_rate(1.0).retry_limit(0);
    let mut s = Simulator::with_faults(cfg, fault).unwrap();
    assert!(matches!(
        s.run(&[Message::new(0, 5, 256, 0)]),
        Err(NocError::CycleLimitExceeded { .. })
    ));
}

#[test]
fn generous_retry_limit_still_delivers_under_moderate_loss() {
    let cfg = NocConfig::paper_16core();
    let msgs = trace();
    let fault = FaultModel::none().with_seed(7).drop_rate(0.05).retry_limit(64);
    let r = Simulator::with_faults(cfg, fault).unwrap().run(&msgs).unwrap();
    assert_eq!(r.messages_delivered, msgs.len());
}
