//! Golden simulation fingerprints, pinned from the pre-optimization
//! full-scan stepper.
//!
//! The hot-path overhaul (active-set worklist, idle fast-forward
//! extension, packetize scratch reuse) is gated on bit-identical
//! `SimReport`s: these tests pin the reports of four representative runs
//! — a sparse timed trace, an all-to-all burst, a static faulty run with
//! retransmissions, and a dynamic-schedule recoverable run — as exact
//! fingerprints captured before the optimizations landed. Any
//! accumulation/ordering change in the simulator trips them.
//!
//! To re-capture (only legitimate after an *intentional* semantic
//! change): `LTS_GOLDEN_CAPTURE=1 cargo test -p lts-noc --test golden --
//! --nocapture` and paste the printed fingerprints.

use lts_noc::recovery::{FaultSchedule, MonitorConfig};
use lts_noc::stats::SimReport;
use lts_noc::topology::Direction;
use lts_noc::traffic::{all_to_all, uniform_random, Message, TrafficTrace};
use lts_noc::{FaultModel, NocConfig, Simulator};

/// A deterministic sparse trace: a few messages spread far apart in time,
/// so the simulator spends most cycles idle (the fast-forward showcase).
fn sparse_trace(nodes: usize) -> TrafficTrace {
    let mut t = TrafficTrace::new();
    for i in 0..40usize {
        let src = i % nodes;
        let mut dst = (i * 7 + 3) % nodes;
        if dst == src {
            dst = (dst + 1) % nodes;
        }
        t.push(Message::new(src, dst, 64 + (i as u64) * 13, (i as u64) * 3_000));
    }
    t
}

/// Stable text fingerprint over the report fields that predate the
/// hot-path overhaul (`cycles_simulated`/`cycles_fast_forwarded` are
/// intentionally excluded: they are new observability counters, not
/// simulation results).
fn fingerprint(r: &SimReport) -> String {
    format!(
        "makespan={} delivered={} bytes={} flits={} blocked={} latsum={} latn={} links={} \
         events={:?} faults={:?}",
        r.makespan,
        r.messages_delivered,
        r.bytes_delivered,
        r.flits_delivered,
        r.blocked_flit_cycles,
        r.message_latencies.iter().sum::<u64>(),
        r.message_latencies.len(),
        r.link_flits.iter().sum::<u64>(),
        r.events,
        r.faults,
    )
}

fn check(label: &str, got: &str, pinned: &str) {
    if std::env::var("LTS_GOLDEN_CAPTURE").is_ok() {
        println!("GOLDEN {label}: {got}");
        return;
    }
    assert_eq!(got, pinned, "{label} fingerprint drifted from the pre-optimization capture");
}

#[test]
fn sparse_timed_trace_matches_pre_optimization_fingerprint() {
    let trace = sparse_trace(16);
    let mut sim = Simulator::new(NocConfig::paper_16core()).expect("sim");
    let report = sim.run(&trace.messages).expect("run");
    check(
        "sparse",
        &fingerprint(&report),
        "makespan=117076 delivered=40 bytes=12700 flits=219 blocked=0 latsum=2419 latn=40 links=657 events=EventCounts { buffer_writes: 876, buffer_reads: 876, crossbar_traversals: 876, link_traversals: 657, arbitrations: 996, ejections: 219 } faults=FaultStats { flits_dropped: 0, flits_corrupted: 0, packets_rejected: 0, packets_retransmitted: 0, duplicate_packets: 0, flits_lost: 0 }",
    );
}

#[test]
fn all_to_all_burst_matches_pre_optimization_fingerprint() {
    let trace = all_to_all(16, 256);
    let mut sim = Simulator::new(NocConfig::paper_16core()).expect("sim");
    let report = sim.run(&trace.messages).expect("run");
    check(
        "all_to_all",
        &fingerprint(&report),
        "makespan=532 delivered=240 bytes=61440 flits=960 blocked=34003 latsum=66475 latn=240 links=2560 events=EventCounts { buffer_writes: 3520, buffer_reads: 3520, crossbar_traversals: 3520, link_traversals: 2560, arbitrations: 8303, ejections: 960 } faults=FaultStats { flits_dropped: 0, flits_corrupted: 0, packets_rejected: 0, packets_retransmitted: 0, duplicate_packets: 0, flits_lost: 0 }",
    );
}

#[test]
fn static_faulty_run_matches_pre_optimization_fingerprint() {
    // Node 5 is dead, so survivors only talk to survivors.
    let trace: TrafficTrace = uniform_random(16, 3, 256, 9)
        .messages
        .into_iter()
        .filter(|m| m.src != 5 && m.dst != 5)
        .collect();
    let fault = FaultModel::none().with_seed(42).kill_router(5).drop_rate(0.02).retry_limit(6);
    let mut sim = Simulator::with_faults(NocConfig::paper_16core(), fault).expect("sim");
    let report = sim.run(&trace.messages).expect("run");
    check(
        "static_faulty",
        &fingerprint(&report),
        "makespan=4731 delivered=40 bytes=10240 flits=160 blocked=1587 latsum=18836 latn=40 links=560 events=EventCounts { buffer_writes: 756, buffer_reads: 756, crossbar_traversals: 756, link_traversals: 560, arbitrations: 919, ejections: 196 } faults=FaultStats { flits_dropped: 10, flits_corrupted: 0, packets_rejected: 9, packets_retransmitted: 9, duplicate_packets: 0, flits_lost: 0 }",
    );
}

#[test]
fn recoverable_run_matches_pre_optimization_fingerprint() {
    let trace = sparse_trace(16);
    let mut sim = Simulator::new(NocConfig::paper_16core()).expect("sim");
    let schedule =
        FaultSchedule::new().router_death(20_000, 10).link_death(50_000, 0, Direction::East);
    let rec = sim
        .run_recoverable(&trace.messages, &schedule, &MonitorConfig::default())
        .expect("recoverable run");
    let got = format!(
        "{} detections={:?} abandoned={:?}",
        fingerprint(&rec.report),
        rec.detections,
        rec.abandoned
    );
    check(
        "recoverable",
        &got,
        "makespan=117076 delivered=36 bytes=11326 flits=195 blocked=0 latsum=2279 latn=40 links=641 events=EventCounts { buffer_writes: 836, buffer_reads: 836, crossbar_traversals: 836, link_traversals: 641, arbitrations: 954, ejections: 195 } faults=FaultStats { flits_dropped: 0, flits_corrupted: 0, packets_rejected: 0, packets_retransmitted: 0, duplicate_packets: 0, flits_lost: 0 } detections=[Detection { node: 10, died_at: 20000, detected_at: 20757, cause: MissedHeartbeats }] abandoned=[10, 17, 26, 33]",
    );
}
