//! Trait-dispatched mesh vs pre-refactor mesh equivalence.
//!
//! The topology refactor routes every hot path (routing, pricing, fault
//! planning, recovery) through the [`lts_noc::Topology`] trait. A
//! single-chiplet MCM package is geometrically the same mesh, so its
//! reports must be **bit-identical** to the plain-mesh configuration on
//! any trace — fault-free, under static fault models with
//! retransmissions, and under mid-run death schedules. These properties
//! pin that: the `chiplets = 1` special case IS the old simulator.

use lts_noc::recovery::{FaultSchedule, MonitorConfig};
use lts_noc::stats::SimReport;
use lts_noc::topology::Direction;
use lts_noc::traffic::Message;
use lts_noc::{FaultModel, NocConfig, NocError, Simulator};
use proptest::prelude::*;

/// The two configurations that must be indistinguishable: the plain
/// 4x4 paper mesh, and the same 16 cores packaged as one chiplet.
fn mesh_and_unit_mcm() -> (NocConfig, NocConfig) {
    let mesh = NocConfig::paper_16core();
    let mcm = NocConfig::paper_mcm(1, 16).expect("1-chiplet package is valid");
    assert_eq!(mesh.nodes(), mcm.nodes());
    (mesh, mcm)
}

/// Renders a run outcome for comparison (reports and errors alike).
fn outcome(r: Result<SimReport, NocError>) -> String {
    format!("{r:?}")
}

/// Random valid trace on `nodes` cores (same shape as the stepper
/// equivalence suite).
fn trace_strategy(nodes: usize, max_msgs: usize) -> impl Strategy<Value = Vec<Message>> {
    proptest::collection::vec(
        (0..nodes, 0..nodes, 1u64..1500, 0u64..20_000).prop_map(move |(s, d, bytes, t)| {
            let dst = if d == s { (d + 1) % nodes } else { d };
            Message::new(s, dst, bytes, t)
        }),
        1..max_msgs,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn unit_mcm_matches_mesh_fault_free(msgs in trace_strategy(16, 30)) {
        let (mesh, mcm) = mesh_and_unit_mcm();
        let a = Simulator::new(mesh).unwrap().run(&msgs).unwrap();
        let b = Simulator::new(mcm).unwrap().run(&msgs).unwrap();
        prop_assert_eq!(&a, &b);
        // A one-chiplet package has no interposer seams to cross.
        prop_assert_eq!(b.inter_chip_traversals, 0);
        prop_assert_eq!(b.intra_chip_traversals, b.events.link_traversals);
    }

    #[test]
    fn unit_mcm_matches_mesh_under_static_faults(
        msgs in trace_strategy(16, 20),
        seed in 0u64..1000,
        drop_pct in 1u32..8,
        dead in 1usize..15,
    ) {
        // Transient drops + a dead router: retransmission timeouts and
        // fault-aware route planning both flow through the topology trait.
        let msgs: Vec<Message> =
            msgs.into_iter().filter(|m| m.src != dead && m.dst != dead).collect();
        let fault = FaultModel::none()
            .with_seed(seed)
            .kill_router(dead)
            .drop_rate(f64::from(drop_pct) / 100.0)
            .retry_limit(12);
        let (mesh, mcm) = mesh_and_unit_mcm();
        let a = outcome(Simulator::with_faults(mesh, fault.clone()).unwrap().run(&msgs));
        let b = outcome(Simulator::with_faults(mcm, fault).unwrap().run(&msgs));
        prop_assert_eq!(a, b);
    }

    #[test]
    fn unit_mcm_matches_mesh_under_death_schedules(
        msgs in trace_strategy(16, 20),
        death_node in 1usize..15,
        death_cycle in 100u64..30_000,
        link_node in 0usize..16,
        dir_idx in 0usize..4,
        link_cycle in 100u64..30_000,
    ) {
        // Mid-run deaths: worm severing, abandonment, heartbeat detection
        // latencies — all topology-priced — must agree bit-exactly.
        let schedule = FaultSchedule::new()
            .router_death(death_cycle, death_node)
            .link_death(link_cycle, link_node, Direction::ALL[dir_idx]);
        let monitor = MonitorConfig::default();
        let (mesh, mcm) = mesh_and_unit_mcm();
        let a = Simulator::new(mesh).unwrap().run_recoverable(&msgs, &schedule, &monitor).unwrap();
        let b = Simulator::new(mcm).unwrap().run_recoverable(&msgs, &schedule, &monitor).unwrap();
        prop_assert_eq!(a.report, b.report);
        prop_assert_eq!(a.detections, b.detections);
        prop_assert_eq!(a.abandoned, b.abandoned);
    }

    #[test]
    fn unit_mcm_chiplet_death_matches_mesh_router_deaths(
        msgs in trace_strategy(16, 20),
        death_cycle in 100u64..30_000,
    ) {
        // The whole-chiplet fault class at chiplets = 1: killing the one
        // chiplet of a unit package expands to exactly the sixteen
        // router deaths a mesh schedule would spell out by hand, and the
        // recoverable run stays bit-identical.
        let (mesh, mcm) = mesh_and_unit_mcm();
        let mut mesh_schedule = FaultSchedule::new();
        for node in 0..16 {
            mesh_schedule = mesh_schedule.router_death(death_cycle, node);
        }
        let mcm_schedule = FaultSchedule::new().chiplet_death(death_cycle, 0);
        let monitor = MonitorConfig::default();
        let a = Simulator::new(mesh).unwrap()
            .run_recoverable(&msgs, &mesh_schedule, &monitor).unwrap();
        let b = Simulator::new(mcm).unwrap()
            .run_recoverable(&msgs, &mcm_schedule, &monitor).unwrap();
        prop_assert_eq!(a.report, b.report);
        prop_assert_eq!(a.detections, b.detections);
        prop_assert_eq!(a.abandoned, b.abandoned);
    }

    #[test]
    fn unit_mcm_kill_chiplet_matches_mesh_kill_routers(
        msgs in trace_strategy(16, 20),
        seed in 0u64..1000,
    ) {
        // Static half of the same story: `kill_chiplet` on the unit
        // package is the mesh model with every router killed (there are
        // no seams to sever), so outcomes agree bit-exactly.
        let (mesh_cfg, mcm_cfg) = mesh_and_unit_mcm();
        let lts_noc::Topo::Mcm(topo) = mcm_cfg.topo() else { panic!("expected a package") };
        let mcm_fault =
            FaultModel::none().with_seed(seed).kill_chiplet(&topo, 0).retry_limit(4);
        let mut mesh_fault = FaultModel::none().with_seed(seed).retry_limit(4);
        for node in 0..16 {
            mesh_fault = mesh_fault.kill_router(node);
        }
        prop_assert_eq!(&mcm_fault.dead_routers, &mesh_fault.dead_routers);
        prop_assert!(mcm_fault.dead_links.is_empty(), "a unit package has no seam endpoints");
        let a = outcome(Simulator::with_faults(mesh_cfg, mesh_fault).unwrap().run(&msgs));
        let b = outcome(Simulator::with_faults(mcm_cfg, mcm_fault).unwrap().run(&msgs));
        prop_assert_eq!(a, b);
    }

    #[test]
    fn hierarchical_schedule_matches_its_hand_expansion_on_a_real_package(
        msgs in trace_strategy(32, 20),
        death_cycle in 100u64..30_000,
    ) {
        // On a genuine 2-chiplet package, the sugar must be *exactly*
        // its expansion: a chiplet death behaves bit-identically to the
        // explicit router deaths + seam-endpoint link deaths.
        let config = NocConfig::paper_mcm(2, 16).unwrap();
        let lts_noc::Topo::Mcm(topo) = config.topo() else { panic!("expected a package") };
        let sugar = FaultSchedule::new().chiplet_death(death_cycle, 1);
        let mut manual = FaultSchedule::new();
        for node in topo.chiplet_nodes(1) {
            manual = manual.router_death(death_cycle, node);
        }
        for (node, dir) in topo.chiplet_seam_links(1) {
            manual = manual.link_death(death_cycle, node, dir);
        }
        let monitor = MonitorConfig::default();
        let a = Simulator::new(config).unwrap()
            .run_recoverable(&msgs, &sugar, &monitor).unwrap();
        let b = Simulator::new(config).unwrap()
            .run_recoverable(&msgs, &manual, &monitor).unwrap();
        prop_assert_eq!(a.report, b.report);
        prop_assert_eq!(a.detections, b.detections);
        prop_assert_eq!(a.abandoned, b.abandoned);
    }

    #[test]
    fn hop_split_sums_to_link_traversals_on_any_package(
        msgs in trace_strategy(32, 25),
        chiplets_idx in 0usize..3,
    ) {
        let chiplets = [1usize, 2, 4][chiplets_idx];
        // Satellite invariant: the intra/inter split is an exact partition
        // of link traversals on every package shape, with messages remapped
        // onto however many nodes the package has.
        let config = NocConfig::paper_mcm(chiplets, 32 / chiplets).unwrap();
        let n = config.nodes();
        let msgs: Vec<Message> = msgs
            .into_iter()
            .map(|m| {
                let src = m.src % n;
                let mut dst = m.dst % n;
                if dst == src {
                    dst = (dst + 1) % n;
                }
                Message::new(src, dst, m.bytes, m.inject_cycle)
            })
            .collect();
        let r = Simulator::new(config).unwrap().run(&msgs).unwrap();
        prop_assert_eq!(
            r.intra_chip_traversals + r.inter_chip_traversals,
            r.events.link_traversals
        );
        if chiplets == 1 {
            prop_assert_eq!(r.inter_chip_traversals, 0);
        }
    }
}
