//! Monotonically-named counters and gauges in a process-global registry.
//!
//! Counters are monotone `u64` sums that saturate instead of wrapping
//! (a hot loop adding forever must never panic or roll over to a small
//! number mid-run); gauges are last-write-wins `f64` readings. Names are
//! dot-separated, lowercase, `crate.subsystem.metric` (DESIGN.md §13).

use std::collections::BTreeMap;
use std::sync::{Mutex, PoisonError};

#[derive(Default)]
struct Metrics {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
}

static METRICS: Mutex<Option<Metrics>> = Mutex::new(None);

// `Option` only because `BTreeMap::new` cannot be built in a `static`
// initializer expression here; first touch materializes the maps.
fn with<R>(f: impl FnOnce(&mut Metrics) -> R) -> R {
    let mut guard = METRICS.lock().unwrap_or_else(PoisonError::into_inner);
    f(guard.get_or_insert_with(Metrics::default))
}

/// Adds `delta` to the named counter (created at zero), saturating at
/// `u64::MAX`. A no-op while recording is disabled.
pub fn counter_add(name: &str, delta: u64) {
    if !crate::enabled() {
        return;
    }
    with(|m| {
        let slot = m.counters.entry(name.to_string()).or_insert(0);
        *slot = slot.saturating_add(delta);
    });
}

/// Sets the named gauge to `value` (last write wins). A no-op while
/// recording is disabled.
pub fn gauge_set(name: &str, value: f64) {
    if !crate::enabled() {
        return;
    }
    with(|m| {
        m.gauges.insert(name.to_string(), value);
    });
}

/// Sorted counter readings paired with sorted gauge readings.
pub(crate) type MetricsDump = (Vec<(String, u64)>, Vec<(String, f64)>);

/// Sorted copies of every counter and gauge.
pub(crate) fn collect() -> MetricsDump {
    with(|m| {
        (
            m.counters.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            m.gauges.iter().map(|(k, v)| (k.clone(), *v)).collect(),
        )
    })
}

/// Clears every counter and gauge.
pub(crate) fn reset() {
    with(|m| *m = Metrics::default());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_sum_and_saturate_gauges_overwrite() {
        let _g = crate::test_lock::guard();
        crate::set_enabled(true);
        counter_add("t.count", 2);
        counter_add("t.count", 3);
        counter_add("t.sat", u64::MAX - 1);
        counter_add("t.sat", 17);
        gauge_set("t.gauge", 1.0);
        gauge_set("t.gauge", 2.5);
        crate::set_enabled(false);
        counter_add("t.count", 100); // disabled: ignored
        let (counters, gauges) = collect();
        assert_eq!(counters, vec![("t.count".to_string(), 5), ("t.sat".to_string(), u64::MAX)]);
        assert_eq!(gauges, vec![("t.gauge".to_string(), 2.5)]);
    }
}
