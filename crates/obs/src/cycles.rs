//! The cycle-domain recorder: append-only simulated-time timelines.
//!
//! Wall-clock spans measure host time; the NoC stepper and the
//! accelerator cost model live in *simulated cycles*, where nothing can
//! be measured — the models already know exactly how many cycles each
//! phase took. A cycle track is an ordered list of `(phase, label,
//! cycles)` records whose running sum is the track's clock, so a track's
//! `total_cycles` reconciles **exactly** with the report totals the same
//! code computes (`lts-core`'s obs bench asserts this against
//! `SystemReport::total_cycles`).
//!
//! [`cycle_track`] mints a fresh uniquely-named track (`name#N`) — use it
//! per evaluation run so runs don't interleave. [`cycle_track_named`]
//! returns one shared track per name — use it for a process-wide timeline
//! like the NoC stepper's.

use std::collections::BTreeMap;
use std::sync::{Mutex, PoisonError};

/// Track-count cap: beyond it new tracks are created disabled (a sweep
/// minting one track per evaluation stays well under this).
const TRACK_CAP: usize = 4096;
/// Per-track record cap; overflow is counted in `spans_dropped`.
const SPAN_CAP: usize = 1 << 16;

/// Handle to a cycle track. Obtained from [`cycle_track`] or
/// [`cycle_track_named`]; a handle minted while recording was disabled
/// is inert and [`cycle_record`] through it is a no-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleTrackId(usize);

impl CycleTrackId {
    /// The inert handle: records through it are dropped.
    pub const DISABLED: Self = Self(usize::MAX);
}

/// One recorded cycle-domain interval.
#[derive(Debug, Clone)]
pub(crate) struct CycleSpan {
    pub phase: String,
    pub label: String,
    pub start: u64,
    pub cycles: u64,
}

#[derive(Debug)]
pub(crate) struct Track {
    pub name: String,
    pub cursor: u64,
    pub spans: Vec<CycleSpan>,
    pub dropped: u64,
}

#[derive(Default)]
struct Domain {
    tracks: Vec<Track>,
    /// Shared tracks by name (for [`cycle_track_named`]).
    named: BTreeMap<String, usize>,
    /// Next `#N` suffix per base name (for [`cycle_track`]).
    seq: BTreeMap<String, u64>,
}

static DOMAIN: Mutex<Option<Domain>> = Mutex::new(None);

// `Option` only because the maps cannot be built const; first touch
// materializes the domain.
fn with<R>(f: impl FnOnce(&mut Domain) -> R) -> R {
    let mut guard = DOMAIN.lock().unwrap_or_else(PoisonError::into_inner);
    f(guard.get_or_insert_with(Domain::default))
}

fn new_track(d: &mut Domain, name: String) -> CycleTrackId {
    if d.tracks.len() >= TRACK_CAP {
        return CycleTrackId::DISABLED;
    }
    d.tracks.push(Track { name, cursor: 0, spans: Vec::new(), dropped: 0 });
    CycleTrackId(d.tracks.len() - 1)
}

/// Mints a fresh track named `name#N` (`N` counts up per base name).
/// Returns the inert handle while recording is disabled.
pub fn cycle_track(name: &str) -> CycleTrackId {
    if !crate::enabled() {
        return CycleTrackId::DISABLED;
    }
    with(|d| {
        let n = d.seq.entry(name.to_string()).or_insert(0);
        let unique = format!("{name}#{n}");
        *n += 1;
        new_track(d, unique)
    })
}

/// Returns the shared track for `name`, creating it on first use.
/// Returns the inert handle while recording is disabled.
pub fn cycle_track_named(name: &str) -> CycleTrackId {
    if !crate::enabled() {
        return CycleTrackId::DISABLED;
    }
    with(|d| {
        if let Some(&idx) = d.named.get(name) {
            return CycleTrackId(idx);
        }
        let id = new_track(d, name.to_string());
        if id != CycleTrackId::DISABLED {
            d.named.insert(name.to_string(), id.0);
        }
        id
    })
}

/// Appends `(phase, label, cycles)` at the track's cursor and advances
/// the cursor by `cycles`. No-op through an inert or stale handle.
pub fn cycle_record(track: CycleTrackId, phase: &str, label: &str, cycles: u64) {
    let CycleTrackId(idx) = track;
    if idx == usize::MAX {
        return;
    }
    with(|d| {
        let Some(t) = d.tracks.get_mut(idx) else {
            return; // handle minted before a reset
        };
        if t.spans.len() < SPAN_CAP {
            t.spans.push(CycleSpan {
                phase: phase.to_string(),
                label: label.to_string(),
                start: t.cursor,
                cycles,
            });
        } else {
            t.dropped = t.dropped.saturating_add(1);
        }
        t.cursor = t.cursor.saturating_add(cycles);
    });
}

/// Drains nothing: clones every track for a snapshot.
pub(crate) fn collect() -> Vec<(String, u64, u64, Vec<CycleSpan>)> {
    with(|d| {
        d.tracks.iter().map(|t| (t.name.clone(), t.cursor, t.dropped, t.spans.clone())).collect()
    })
}

/// Clears every track (outstanding handles become inert).
pub(crate) fn reset() {
    with(|d| *d = Domain::default());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_accumulate_and_cursor_is_the_running_sum() {
        let _g = crate::test_lock::guard();
        crate::set_enabled(true);
        let a = cycle_track("eval");
        let b = cycle_track("eval");
        assert_ne!(a, b, "sequential tracks are distinct");
        cycle_record(a, "comm", "conv1", 700);
        cycle_record(a, "compute", "conv1", 300);
        cycle_record(b, "comm", "conv1", 11);
        let shared1 = cycle_track_named("noc.stepper");
        let shared2 = cycle_track_named("noc.stepper");
        assert_eq!(shared1, shared2, "named tracks are shared");
        cycle_record(shared1, "sweep", "", 5);
        cycle_record(shared2, "fast-forward", "", 20);
        crate::set_enabled(false);
        let tracks = collect();
        let names: Vec<&str> = tracks.iter().map(|(n, ..)| n.as_str()).collect();
        assert_eq!(names, vec!["eval#0", "eval#1", "noc.stepper"]);
        let (_, total, dropped, spans) = &tracks[0];
        assert_eq!((*total, *dropped), (1000, 0));
        assert_eq!(spans.len(), 2);
        assert_eq!((spans[1].start, spans[1].cycles), (700, 300));
        assert_eq!(tracks[2].1, 25);
    }

    #[test]
    fn disabled_handles_are_inert_and_totals_survive_span_cap() {
        let _g = crate::test_lock::guard();
        let t = cycle_track("off");
        assert_eq!(t, CycleTrackId::DISABLED);
        cycle_record(t, "p", "l", 1_000_000);
        crate::set_enabled(true);
        assert!(collect().is_empty());
        let t = cycle_track("on");
        for _ in 0..SPAN_CAP + 3 {
            cycle_record(t, "p", "l", 2);
        }
        crate::set_enabled(false);
        let tracks = collect();
        let (_, total, dropped, spans) = &tracks[0];
        assert_eq!(*total as usize, 2 * (SPAN_CAP + 3), "cursor stays exact past the cap");
        assert_eq!(*dropped as usize, 3);
        assert_eq!(spans.len(), SPAN_CAP);
    }
}
