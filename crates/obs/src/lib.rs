//! Unified probe/metrics layer for the Learn-to-Scale reproduction.
//!
//! Every workload crate reports into this one: scoped wall-clock spans
//! aggregated by call path ([`span`]), monotonically-named counters and
//! gauges ([`counter_add`], [`gauge_set`]), and a parallel **cycle-domain**
//! recorder ([`cycle_track`], [`cycle_record`]) for the simulated-time
//! breakdowns the NoC stepper and the accelerator cost model produce.
//! [`snapshot`] collapses all of it into a [`Snapshot`] that exports as
//! structured JSON, folded-stack flamegraph text, or Chrome trace-event
//! JSON (see `DESIGN.md` §13 for naming conventions and formats).
//!
//! Everything is gated on one process-global atomic flag, off by default:
//! a disabled [`span`] is a single relaxed atomic load (its overhead is
//! measured against the matmul microbench in `benches/obs.rs` and
//! `benches/hotpath.rs`). Enable with [`set_enabled`] or `LTS_OBS=1` via
//! [`enable_from_env`].
//!
//! # Two time domains
//!
//! *Wall domain* — [`span`] measures real elapsed time on the thread that
//! opened the span. Spans nest per thread: each OS thread keeps its own
//! call-path stack, so a span opened on a worker thread roots a fresh
//! path there (paths record how many threads contributed). *Cycle
//! domain* — simulated time. A cycle track is an append-only timeline of
//! `(phase, label, cycles)` entries whose running sum is the track's
//! clock; nothing is measured, callers record the cycle counts their
//! models computed, so track totals reconcile exactly with report totals.
//!
//! # Example
//!
//! ```
//! lts_obs::reset();
//! lts_obs::set_enabled(true);
//! {
//!     let _outer = lts_obs::span("evaluate");
//!     let _inner = lts_obs::span("conv1");
//! }
//! lts_obs::counter_add("noc.cycles_simulated", 1234);
//! let track = lts_obs::cycle_track("system.evaluate");
//! lts_obs::cycle_record(track, "comm", "conv1", 700);
//! lts_obs::cycle_record(track, "compute", "conv1", 534);
//! lts_obs::set_enabled(false);
//!
//! let snap = lts_obs::snapshot();
//! assert_eq!(snap.probes[0].path, "evaluate");
//! assert_eq!(snap.probes[1].path, "evaluate;conv1");
//! assert_eq!(snap.cycles[0].total_cycles, 1234);
//! assert!(snap.folded().contains("evaluate;conv1 "));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
#![deny(clippy::print_stdout, clippy::print_stderr)]

pub mod cycles;
pub mod metrics;
pub mod probe;
pub mod snapshot;

pub use cycles::{cycle_record, cycle_track, cycle_track_named, CycleTrackId};
pub use metrics::{counter_add, gauge_set};
pub use probe::{span, Span};
pub use snapshot::{
    snapshot, CounterRow, CycleSpanRow, CycleTrackRow, EventRow, GaugeRow, ProbeRow, Snapshot,
};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// The process-global recording flag. Off by default so instrumented hot
/// paths cost one relaxed load.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether probes, counters, and cycle tracks are recording.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns recording on or off process-wide. Spans already open keep the
/// state they were opened with.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Enables recording when `LTS_OBS` is set to anything but `0`; returns
/// the resulting state.
pub fn enable_from_env() -> bool {
    if std::env::var("LTS_OBS").is_ok_and(|v| v != "0") {
        set_enabled(true);
    }
    enabled()
}

/// The wall-domain origin every span timestamp is relative to: fixed at
/// first use so timestamps stay monotonic across [`reset`] calls.
fn epoch_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    u64::try_from(EPOCH.get_or_init(Instant::now).elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Clears every recorded probe, counter, gauge, cycle track, and trace
/// event (live threads keep their identities; open spans will still
/// record when they close). Does not change the enabled flag.
pub fn reset() {
    probe::reset();
    metrics::reset();
    cycles::reset();
}

#[cfg(test)]
pub(crate) mod test_lock {
    //! All tests that touch the process-global registries (enable flag,
    //! probe sinks, counters, cycle tracks) serialize on this lock —
    //! `cargo test` runs tests on concurrent threads in one process.
    use std::sync::{Mutex, MutexGuard, PoisonError};

    static LOCK: Mutex<()> = Mutex::new(());

    pub fn guard() -> MutexGuard<'static, ()> {
        let g = LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        crate::reset();
        crate::set_enabled(false);
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_the_default_and_spans_record_nothing() {
        let _g = test_lock::guard();
        {
            let _s = span("never");
        }
        counter_add("never", 1);
        let snap = snapshot();
        assert!(snap.probes.is_empty(), "{snap:?}");
        assert!(snap.counters.is_empty(), "{snap:?}");
    }

    #[test]
    fn enable_from_env_respects_zero() {
        let _g = test_lock::guard();
        // The variable is not set under `cargo test`; the call must then
        // leave the flag alone.
        if std::env::var("LTS_OBS").is_err() {
            assert!(!enable_from_env());
            set_enabled(true);
            assert!(enable_from_env());
            set_enabled(false);
        }
    }

    #[test]
    fn nested_spans_aggregate_by_call_path() {
        let _g = test_lock::guard();
        set_enabled(true);
        for _ in 0..3 {
            let _outer = span("outer");
            for _ in 0..2 {
                let _inner = span("inner");
            }
        }
        set_enabled(false);
        let snap = snapshot();
        let paths: Vec<(&str, u64)> =
            snap.probes.iter().map(|p| (p.path.as_str(), p.count)).collect();
        assert_eq!(paths, vec![("outer", 3), ("outer;inner", 6)]);
        let outer = &snap.probes[0];
        assert!(outer.sum_ms >= 0.0 && outer.mean_ms <= outer.max_ms, "{outer:?}");
        assert_eq!(snap.events.len(), 9, "one trace event per closed span");
    }

    #[test]
    fn paths_merge_across_threads_with_thread_counts() {
        let _g = test_lock::guard();
        set_enabled(true);
        let workers: Vec<_> = (0..3)
            .map(|_| {
                std::thread::spawn(|| {
                    for _ in 0..2 {
                        let _a = span("work");
                        let _b = span("step");
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().expect("worker");
        }
        // Worker threads have exited, so their sinks were retired into
        // the global aggregate; the snapshot must see all of them merged.
        set_enabled(false);
        let snap = snapshot();
        let work = snap.probes.iter().find(|p| p.path == "work").expect("work row");
        assert_eq!((work.count, work.threads), (6, 3), "{work:?}");
        let step = snap.probes.iter().find(|p| p.path == "work;step").expect("step row");
        assert_eq!((step.count, step.threads), (6, 3), "{step:?}");
        // Each thread rooted its own path: `work` is a root, not nested
        // under anything from the spawning thread.
        assert_eq!(snap.probes.len(), 2, "{snap:?}");
    }

    #[test]
    fn reset_clears_all_domains() {
        let _g = test_lock::guard();
        set_enabled(true);
        {
            let _s = span("gone");
        }
        counter_add("gone", 7);
        gauge_set("gone", 7.0);
        let t = cycle_track("gone");
        cycle_record(t, "p", "l", 9);
        reset();
        set_enabled(false);
        let snap = snapshot();
        assert!(snap.probes.is_empty() && snap.counters.is_empty(), "{snap:?}");
        assert!(snap.gauges.is_empty() && snap.cycles.is_empty(), "{snap:?}");
        assert!(snap.events.is_empty(), "{snap:?}");
    }

    #[test]
    fn semicolons_in_span_names_cannot_forge_path_segments() {
        let _g = test_lock::guard();
        set_enabled(true);
        {
            let _s = span("a;b");
        }
        set_enabled(false);
        let snap = snapshot();
        assert_eq!(snap.probes.len(), 1);
        assert_eq!(snap.probes[0].path, "a:b");
    }
}
