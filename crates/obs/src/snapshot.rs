//! Snapshot assembly and the three exporters.
//!
//! [`snapshot`] merges every domain (probe paths, counters, gauges,
//! cycle tracks, trace events) into one serializable [`Snapshot`].
//! Exporters:
//!
//! * [`Snapshot::to_json`] — the structured report, via the vendored
//!   `serde_json`;
//! * [`Snapshot::folded`] — folded-stack flamegraph text (`path value`
//!   per line; wall paths carry microseconds, cycle lines are prefixed
//!   `cycles;track;phase[;label]` and carry cycles);
//! * [`Snapshot::chrome_trace`] — Chrome trace-event JSON (`chrome://
//!   tracing` / Perfetto): wall spans under pid 1 with real timestamps,
//!   cycle tracks under pid 2 rendering one cycle as one microsecond.

use crate::probe::PathStat;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Aggregate of one wall-domain call path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProbeRow {
    /// `;`-joined call path (folded-stack native).
    pub path: String,
    /// Distinct threads that contributed samples.
    pub threads: u64,
    /// Closed spans recorded under this path.
    pub count: u64,
    /// Total milliseconds across all samples.
    pub sum_ms: f64,
    /// `sum_ms / count` (0 for an empty row).
    pub mean_ms: f64,
    /// Nearest-rank median over the retained samples.
    pub p50_ms: f64,
    /// Nearest-rank 95th percentile over the retained samples.
    pub p95_ms: f64,
    /// Slowest sample (exact even when the sample reservoir capped).
    pub max_ms: f64,
}

/// One monotone counter.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterRow {
    /// Dot-separated counter name.
    pub name: String,
    /// Saturating sum of every `counter_add`.
    pub value: u64,
}

/// One last-write-wins gauge.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeRow {
    /// Dot-separated gauge name.
    pub name: String,
    /// Most recent `gauge_set` value.
    pub value: f64,
}

/// One interval on a cycle track.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CycleSpanRow {
    /// Phase name (e.g. `comm`, `compute`, `fast-forward`).
    pub phase: String,
    /// Work-item label (e.g. the layer name); may be empty.
    pub label: String,
    /// Track-clock value when the interval began.
    pub start_cycle: u64,
    /// Interval length in cycles.
    pub cycles: u64,
}

/// One cycle-domain timeline.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CycleTrackRow {
    /// Track name (`name#N` for sequential tracks).
    pub track: String,
    /// The track's clock: the exact sum of every recorded interval,
    /// including any dropped past the retention cap.
    pub total_cycles: u64,
    /// Intervals dropped past the per-track retention cap.
    pub spans_dropped: u64,
    /// Retained intervals in record order.
    pub spans: Vec<CycleSpanRow>,
}

/// One closed wall-domain span, for the Chrome trace export.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventRow {
    /// Recording thread's obs-assigned id.
    pub tid: u64,
    /// Span name (path leaf).
    pub name: String,
    /// Open timestamp, nanoseconds since the process obs epoch.
    pub ts_ns: u64,
    /// Span duration in nanoseconds.
    pub dur_ns: u64,
}

/// Merged view of everything recorded so far. Produced by [`snapshot`];
/// serializable so benches can embed or persist it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Wall-domain call-path aggregates, sorted by path.
    pub probes: Vec<ProbeRow>,
    /// Counters, sorted by name.
    pub counters: Vec<CounterRow>,
    /// Gauges, sorted by name.
    pub gauges: Vec<GaugeRow>,
    /// Cycle-domain timelines in creation order.
    pub cycles: Vec<CycleTrackRow>,
    /// Closed spans sorted by open timestamp.
    pub events: Vec<EventRow>,
    /// Spans whose events were dropped past the retention caps (their
    /// path aggregates are still exact).
    pub dropped_events: u64,
}

/// Nearest-rank percentile over an ascending-sorted sample slice:
/// the smallest element such that at least `q` of the samples are ≤ it
/// (rank `ceil(q·n)`, clamped to `[1, n]`). Empty input yields 0.
pub(crate) fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let n = sorted.len();
    let rank = (q * n as f64).ceil() as usize;
    sorted[rank.clamp(1, n) - 1]
}

fn probe_row(path: &str, stat: &PathStat) -> ProbeRow {
    let mut sorted = stat.samples.clone();
    sorted.sort_unstable();
    let ms = |ns: u64| ns as f64 / 1e6;
    ProbeRow {
        path: path.to_string(),
        threads: stat.threads,
        count: stat.count,
        sum_ms: ms(stat.sum_ns),
        mean_ms: if stat.count == 0 { 0.0 } else { ms(stat.sum_ns) / stat.count as f64 },
        p50_ms: ms(percentile(&sorted, 0.50)),
        p95_ms: ms(percentile(&sorted, 0.95)),
        max_ms: ms(stat.max_ns),
    }
}

/// Merges every domain into a [`Snapshot`]. Non-destructive: live
/// threads keep recording and a later snapshot sees strictly more.
pub fn snapshot() -> Snapshot {
    let (paths, events, dropped_events) = crate::probe::collect();
    let (counters, gauges) = crate::metrics::collect();
    Snapshot {
        probes: paths.iter().map(|(p, s)| probe_row(p, s)).collect(),
        counters: counters.into_iter().map(|(name, value)| CounterRow { name, value }).collect(),
        gauges: gauges.into_iter().map(|(name, value)| GaugeRow { name, value }).collect(),
        cycles: crate::cycles::collect()
            .into_iter()
            .map(|(track, total_cycles, spans_dropped, spans)| CycleTrackRow {
                track,
                total_cycles,
                spans_dropped,
                spans: spans
                    .into_iter()
                    .map(|s| CycleSpanRow {
                        phase: s.phase,
                        label: s.label,
                        start_cycle: s.start,
                        cycles: s.cycles,
                    })
                    .collect(),
            })
            .collect(),
        events: events
            .into_iter()
            .map(|e| EventRow { tid: e.tid, name: e.name, ts_ns: e.ts_ns, dur_ns: e.dur_ns })
            .collect(),
        dropped_events,
    }
}

/// Minimal JSON string escaping (backslash, quote, control characters).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

impl Snapshot {
    /// The aggregate row for one exact call path, if recorded.
    pub fn probe(&self, path: &str) -> Option<&ProbeRow> {
        self.probes.iter().find(|p| p.path == path)
    }

    /// The median (p50) milliseconds of one call path, if recorded —
    /// the per-repetition sample the performance-history pipeline
    /// aggregates across runs.
    pub fn probe_p50_ms(&self, path: &str) -> Option<f64> {
        self.probe(path).map(|p| p.p50_ms)
    }

    /// The value of one counter, if recorded.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|c| c.name == name).map(|c| c.value)
    }

    /// The value of one gauge, if recorded.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// Pretty-printed JSON of the whole snapshot.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_default()
    }

    /// Folded-stack flamegraph text: one `path value` line per probe
    /// path (value = total microseconds) followed by one line per
    /// aggregated cycle interval (`cycles;track;phase[;label]`, value =
    /// cycles). Feed to any `flamegraph.pl`-compatible renderer.
    pub fn folded(&self) -> String {
        let mut lines: Vec<String> = self
            .probes
            .iter()
            .map(|p| format!("{} {}", p.path, (p.sum_ms * 1e3).round() as u64))
            .collect();
        let mut agg: BTreeMap<String, u64> = BTreeMap::new();
        for t in &self.cycles {
            for s in &t.spans {
                let mut key = format!("cycles;{};{}", t.track, s.phase);
                if !s.label.is_empty() {
                    key.push(';');
                    key.push_str(&s.label);
                }
                let slot = agg.entry(key).or_insert(0);
                *slot = slot.saturating_add(s.cycles);
            }
        }
        lines.extend(agg.into_iter().map(|(k, v)| format!("{k} {v}")));
        if lines.is_empty() {
            String::new()
        } else {
            lines.join("\n") + "\n"
        }
    }

    /// Chrome trace-event JSON (load in `chrome://tracing` or Perfetto).
    /// Wall spans render under pid 1 with microsecond timestamps; each
    /// cycle track renders as a thread of pid 2 with one cycle as one
    /// microsecond, the interval phase as the event category.
    pub fn chrome_trace(&self) -> String {
        let mut ev: Vec<String> = vec![
            r#"{"ph":"M","pid":1,"name":"process_name","args":{"name":"wall"}}"#.to_string(),
            r#"{"ph":"M","pid":2,"name":"process_name","args":{"name":"cycles (1 cycle = 1us)"}}"#
                .to_string(),
        ];
        for e in &self.events {
            ev.push(format!(
                r#"{{"ph":"X","pid":1,"tid":{},"name":"{}","ts":{:.3},"dur":{:.3}}}"#,
                e.tid,
                esc(&e.name),
                e.ts_ns as f64 / 1e3,
                e.dur_ns as f64 / 1e3
            ));
        }
        for (tid, track) in self.cycles.iter().enumerate() {
            ev.push(format!(
                r#"{{"ph":"M","pid":2,"tid":{tid},"name":"thread_name","args":{{"name":"{}"}}}}"#,
                esc(&track.track)
            ));
            for s in &track.spans {
                let name = if s.label.is_empty() { &s.phase } else { &s.label };
                ev.push(format!(
                    r#"{{"ph":"X","pid":2,"tid":{tid},"name":"{}","cat":"{}","ts":{},"dur":{}}}"#,
                    esc(name),
                    esc(&s.phase),
                    s.start_cycle,
                    s.cycles
                ));
            }
        }
        format!("{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n{}\n]}}\n", ev.join(",\n"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank_with_tiny_n() {
        assert_eq!(percentile(&[], 0.50), 0, "n=0 yields 0");
        assert_eq!(percentile(&[], 0.95), 0);
        assert_eq!(percentile(&[7], 0.50), 7, "n=1: the only sample");
        assert_eq!(percentile(&[7], 0.95), 7);
        assert_eq!(percentile(&[3, 9], 0.50), 3, "n=2: p50 is the first");
        assert_eq!(percentile(&[3, 9], 0.95), 9, "n=2: p95 is the second");
        assert_eq!(percentile(&[1, 2, 3, 4], 0.50), 2);
        assert_eq!(percentile(&[1, 2, 3, 4], 0.95), 4);
        let hundred: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&hundred, 0.50), 50);
        assert_eq!(percentile(&hundred, 0.95), 95);
    }

    fn golden() -> Snapshot {
        Snapshot {
            probes: vec![
                ProbeRow {
                    path: "evaluate".into(),
                    threads: 1,
                    count: 1,
                    sum_ms: 2.0,
                    mean_ms: 2.0,
                    p50_ms: 2.0,
                    p95_ms: 2.0,
                    max_ms: 2.0,
                },
                ProbeRow {
                    path: "evaluate;conv1".into(),
                    threads: 2,
                    count: 2,
                    sum_ms: 1.5,
                    mean_ms: 0.75,
                    p50_ms: 0.5,
                    p95_ms: 1.0,
                    max_ms: 1.0,
                },
            ],
            counters: vec![CounterRow { name: "noc.cycles_simulated".into(), value: 42 }],
            gauges: vec![GaugeRow { name: "noc.utilization".into(), value: 0.5 }],
            cycles: vec![CycleTrackRow {
                track: "system.evaluate#0".into(),
                total_cycles: 1000,
                spans_dropped: 0,
                spans: vec![
                    CycleSpanRow {
                        phase: "comm".into(),
                        label: "conv1".into(),
                        start_cycle: 0,
                        cycles: 700,
                    },
                    CycleSpanRow {
                        phase: "compute".into(),
                        label: "conv1".into(),
                        start_cycle: 700,
                        cycles: 300,
                    },
                ],
            }],
            events: vec![EventRow {
                tid: 0,
                name: "evaluate".into(),
                ts_ns: 1000,
                dur_ns: 2_000_000,
            }],
            dropped_events: 0,
        }
    }

    #[test]
    fn accessors_find_rows_by_exact_name() {
        let snap = golden();
        assert_eq!(snap.probe("evaluate;conv1").map(|p| p.count), Some(2));
        assert_eq!(snap.probe_p50_ms("evaluate;conv1"), Some(0.5));
        assert_eq!(snap.probe_p50_ms("evaluate"), Some(2.0));
        assert_eq!(snap.probe("evaluate;conv"), None, "prefixes must not match");
        assert_eq!(snap.counter("noc.cycles_simulated"), Some(42));
        assert_eq!(snap.counter("noc.missing"), None);
        assert_eq!(snap.gauge("noc.utilization"), Some(0.5));
        assert_eq!(snap.gauge("absent"), None);
    }

    #[test]
    fn golden_folded_stack() {
        assert_eq!(
            golden().folded(),
            "evaluate 2000\n\
             evaluate;conv1 1500\n\
             cycles;system.evaluate#0;comm;conv1 700\n\
             cycles;system.evaluate#0;compute;conv1 300\n"
        );
        assert_eq!(
            Snapshot { probes: vec![], ..golden() }.folded().lines().count(),
            2,
            "cycle lines survive without probes"
        );
    }

    #[test]
    fn golden_chrome_trace() {
        let expected = concat!(
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n",
            "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\",\"args\":{\"name\":\"wall\"}},\n",
            "{\"ph\":\"M\",\"pid\":2,\"name\":\"process_name\",\"args\":{\"name\":\"cycles (1 cycle = 1us)\"}},\n",
            "{\"ph\":\"X\",\"pid\":1,\"tid\":0,\"name\":\"evaluate\",\"ts\":1.000,\"dur\":2000.000},\n",
            "{\"ph\":\"M\",\"pid\":2,\"tid\":0,\"name\":\"thread_name\",\"args\":{\"name\":\"system.evaluate#0\"}},\n",
            "{\"ph\":\"X\",\"pid\":2,\"tid\":0,\"name\":\"conv1\",\"cat\":\"comm\",\"ts\":0,\"dur\":700},\n",
            "{\"ph\":\"X\",\"pid\":2,\"tid\":0,\"name\":\"conv1\",\"cat\":\"compute\",\"ts\":700,\"dur\":300}\n",
            "]}\n",
        );
        assert_eq!(golden().chrome_trace(), expected);
    }

    #[test]
    fn exports_escape_hostile_names() {
        let snap = Snapshot {
            probes: vec![],
            counters: vec![],
            gauges: vec![],
            cycles: vec![],
            events: vec![EventRow { tid: 0, name: "a\"b\\c\nd".into(), ts_ns: 0, dur_ns: 1 }],
            dropped_events: 0,
        };
        let trace = snap.chrome_trace();
        assert!(trace.contains(r#""name":"a\"b\\c\nd""#), "{trace}");
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let snap = golden();
        let json = snap.to_json();
        let back: Snapshot = serde_json::from_str(&json).expect("parse snapshot json");
        assert_eq!(back, snap);
    }
}
