//! Scoped wall-clock spans with thread-aware call-path aggregation.
//!
//! Each OS thread owns a call-path stack and a sample sink. [`span`]
//! pushes its name onto the opening thread's stack; dropping the guard
//! pops it and records the elapsed time under the `;`-joined path of
//! everything on the stack at open time (the folded-stack flamegraph
//! format, which is why `;` in span names is rewritten to `:`). Sinks of
//! exited threads are merged into a process-global retired aggregate on
//! thread-local destruction, so short-lived worker threads (the `par`
//! engine spawns fresh scoped threads per call) never leak registry
//! entries. [`collect`] merges retired and live sinks for a snapshot.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError, Weak};
use std::time::Instant;

/// Per-path sample retention cap: percentiles beyond this many samples
/// per path are computed over the first `SAMPLE_CAP` observations (the
/// count/sum/max stay exact).
pub(crate) const SAMPLE_CAP: usize = 16_384;
/// Trace-event retention cap per live thread sink.
const SINK_EVENT_CAP: usize = 1 << 16;
/// Trace-event retention cap for the retired (exited-thread) aggregate.
const RETIRED_EVENT_CAP: usize = 1 << 18;

/// Aggregate of one call path: exact count/sum/max plus a capped sample
/// reservoir for percentiles.
#[derive(Debug, Clone, Default)]
pub(crate) struct PathStat {
    pub count: u64,
    pub sum_ns: u64,
    pub max_ns: u64,
    /// Distinct threads that contributed (1 in a per-thread sink).
    pub threads: u64,
    /// Samples dropped once the reservoir filled.
    pub truncated: u64,
    pub samples: Vec<u64>,
}

impl PathStat {
    fn record(&mut self, ns: u64) {
        self.count = self.count.saturating_add(1);
        self.sum_ns = self.sum_ns.saturating_add(ns);
        self.max_ns = self.max_ns.max(ns);
        self.threads = self.threads.max(1);
        if self.samples.len() < SAMPLE_CAP {
            self.samples.push(ns);
        } else {
            self.truncated = self.truncated.saturating_add(1);
        }
    }

    pub(crate) fn merge(&mut self, other: &PathStat) {
        self.count = self.count.saturating_add(other.count);
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
        self.threads = self.threads.saturating_add(other.threads);
        let room = SAMPLE_CAP.saturating_sub(self.samples.len());
        let take = room.min(other.samples.len());
        self.samples.extend_from_slice(&other.samples[..take]);
        let spilled = (other.samples.len() - take) as u64;
        self.truncated = self.truncated.saturating_add(other.truncated.saturating_add(spilled));
    }
}

/// One closed span, for the Chrome trace-event export.
#[derive(Debug, Clone)]
pub(crate) struct TraceEvent {
    pub tid: u64,
    pub name: String,
    pub ts_ns: u64,
    pub dur_ns: u64,
}

/// Per-thread sample sink (behind a mutex so snapshots can read live
/// threads without stopping them).
#[derive(Debug, Default)]
struct Sink {
    tid: u64,
    paths: BTreeMap<String, PathStat>,
    events: Vec<TraceEvent>,
    dropped_events: u64,
}

impl Sink {
    fn record(&mut self, path: String, name: String, ts_ns: u64, dur_ns: u64) {
        self.paths.entry(path).or_default().record(dur_ns);
        if self.events.len() < SINK_EVENT_CAP {
            self.events.push(TraceEvent { tid: self.tid, name, ts_ns, dur_ns });
        } else {
            self.dropped_events = self.dropped_events.saturating_add(1);
        }
    }

    fn clear(&mut self) {
        self.paths.clear();
        self.events.clear();
        self.dropped_events = 0;
    }
}

/// Process-global probe state: live thread sinks (weak, so an exited
/// thread's sink is owned only by its retiring destructor) plus the
/// merged aggregate of every exited thread.
#[derive(Default)]
struct Registry {
    live: Vec<Weak<Mutex<Sink>>>,
    retired_paths: BTreeMap<String, PathStat>,
    retired_events: Vec<TraceEvent>,
    retired_dropped: u64,
    next_tid: u64,
}

impl Registry {
    /// Merges an exiting thread's sink into the retired aggregate and
    /// drains it, so a concurrent snapshot can never count it twice.
    fn absorb(&mut self, sink: &mut Sink) {
        for (path, stat) in &sink.paths {
            self.retired_paths.entry(path.clone()).or_default().merge(stat);
        }
        let room = RETIRED_EVENT_CAP.saturating_sub(self.retired_events.len());
        let take = room.min(sink.events.len());
        self.retired_events.extend_from_slice(&sink.events[..take]);
        let spilled = (sink.events.len() - take) as u64;
        self.retired_dropped =
            self.retired_dropped.saturating_add(sink.dropped_events.saturating_add(spilled));
        sink.clear();
    }
}

static REGISTRY: Mutex<Option<Registry>> = Mutex::new(None);

// The `Option` exists only because `BTreeMap::new` in a struct literal is
// not const-initializable here; first touch materializes the registry.
// Lock order is always registry, then sink — never the reverse.
fn with_registry<R>(f: impl FnOnce(&mut Registry) -> R) -> R {
    let mut guard = REGISTRY.lock().unwrap_or_else(PoisonError::into_inner);
    f(guard.get_or_insert_with(Registry::default))
}

fn lock_sink(sink: &Mutex<Sink>) -> MutexGuard<'_, Sink> {
    sink.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The thread-local probe slot: this thread's open-span name stack plus
/// its shared-ownership sink. Dropping it (thread exit) retires the sink.
struct Slot {
    sink: Arc<Mutex<Sink>>,
    stack: RefCell<Vec<String>>,
}

impl Slot {
    fn new() -> Self {
        let sink = with_registry(|r| {
            let tid = r.next_tid;
            r.next_tid += 1;
            let sink = Arc::new(Mutex::new(Sink { tid, ..Sink::default() }));
            r.live.push(Arc::downgrade(&sink));
            // Prune sinks of threads that exited, so long trainer runs
            // spawning thousands of scoped workers stay bounded.
            r.live.retain(|w| w.strong_count() > 0);
            sink
        });
        Self { sink, stack: RefCell::new(Vec::new()) }
    }
}

impl Drop for Slot {
    fn drop(&mut self) {
        with_registry(|r| {
            let mut sink = lock_sink(&self.sink);
            r.absorb(&mut sink);
        });
    }
}

thread_local! {
    static SLOT: Slot = Slot::new();
}

/// A scoped probe span: measures from [`span`] until drop and records
/// under the opening thread's current call path.
#[derive(Debug)]
#[must_use = "a span measures the scope it is bound to; bind it to a named guard"]
pub struct Span {
    /// `None` when recording was disabled at open (the drop is free).
    start: Option<Instant>,
    /// Stack depth at open — the drop truncates back to it, so guards
    /// dropped out of order cannot corrupt the path stack.
    depth: usize,
    ts_ns: u64,
}

impl Span {
    const DISABLED: Self = Self { start: None, depth: 0, ts_ns: 0 };
}

/// Opens a probe span named `name` on the current thread.
///
/// When recording is disabled this is one relaxed atomic load and the
/// returned guard's drop is free. `;` in names is rewritten to `:` so a
/// name can never forge a path separator in the folded export.
#[inline]
pub fn span(name: &str) -> Span {
    if !crate::enabled() {
        return Span::DISABLED;
    }
    let ts_ns = crate::epoch_ns();
    SLOT.try_with(|slot| {
        let mut stack = slot.stack.borrow_mut();
        let depth = stack.len();
        stack.push(name.replace(';', ":"));
        Span { start: Some(Instant::now()), depth, ts_ns }
    })
    .unwrap_or(Span::DISABLED)
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else {
            return;
        };
        let dur_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let _ = SLOT.try_with(|slot| {
            let mut stack = slot.stack.borrow_mut();
            if stack.len() <= self.depth {
                return; // a reset or out-of-order drop already popped us
            }
            let path = stack[..=self.depth].join(";");
            let name = stack[self.depth].clone();
            stack.truncate(self.depth);
            drop(stack);
            lock_sink(&slot.sink).record(path, name, self.ts_ns, dur_ns);
        });
    }
}

/// Merged view of every path and trace event recorded so far: the
/// retired aggregate plus all live thread sinks (read in place, not
/// drained). Events are sorted by timestamp.
pub(crate) fn collect() -> (BTreeMap<String, PathStat>, Vec<TraceEvent>, u64) {
    with_registry(|r| {
        let mut paths = r.retired_paths.clone();
        let mut events = r.retired_events.clone();
        let mut dropped = r.retired_dropped;
        for weak in &r.live {
            let Some(sink) = weak.upgrade() else {
                continue;
            };
            let sink = lock_sink(&sink);
            for (path, stat) in &sink.paths {
                paths.entry(path.clone()).or_default().merge(stat);
            }
            events.extend_from_slice(&sink.events);
            dropped = dropped.saturating_add(sink.dropped_events);
        }
        events.sort_by_key(|e| (e.ts_ns, e.tid));
        (paths, events, dropped)
    })
}

/// Clears the retired aggregate and every live sink (thread identities
/// and open-span stacks survive).
pub(crate) fn reset() {
    with_registry(|r| {
        r.retired_paths.clear();
        r.retired_events.clear();
        r.retired_dropped = 0;
        for weak in &r.live {
            if let Some(sink) = weak.upgrade() {
                lock_sink(&sink).clear();
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_stat_merge_adds_counts_and_caps_samples() {
        let mut a = PathStat::default();
        for _ in 0..3 {
            a.record(10);
        }
        let mut b = PathStat::default();
        b.record(30);
        a.merge(&b);
        assert_eq!((a.count, a.sum_ns, a.max_ns, a.threads), (4, 60, 30, 2));
        assert_eq!(a.samples, vec![10, 10, 10, 30]);

        let mut full = PathStat::default();
        for _ in 0..SAMPLE_CAP {
            full.record(1);
        }
        full.record(5); // over the cap: counted, not sampled
        assert_eq!(full.count as usize, SAMPLE_CAP + 1);
        assert_eq!(full.samples.len(), SAMPLE_CAP);
        assert_eq!(full.truncated, 1);
        assert_eq!(full.max_ns, 5, "max stays exact past the cap");
        full.merge(&b);
        assert_eq!(full.samples.len(), SAMPLE_CAP);
        assert_eq!(full.truncated, 2, "merged samples past the cap count as truncated");
    }

    #[test]
    fn path_stat_saturates_instead_of_overflowing() {
        let mut a = PathStat { count: u64::MAX - 1, sum_ns: u64::MAX - 1, ..PathStat::default() };
        a.record(100);
        a.record(100);
        assert_eq!(a.count, u64::MAX);
        assert_eq!(a.sum_ns, u64::MAX);
    }

    #[test]
    fn out_of_order_guard_drops_keep_the_stack_consistent() {
        let _g = crate::test_lock::guard();
        crate::set_enabled(true);
        {
            let outer = span("outer");
            let inner = span("inner");
            drop(outer); // wrong order: truncates the stack through `inner`
            drop(inner); // must be a no-op, not a mis-pathed record
            let _next = span("next");
        }
        crate::set_enabled(false);
        let (paths, _, _) = collect();
        let rows: Vec<(&str, u64)> = paths.iter().map(|(p, s)| (p.as_str(), s.count)).collect();
        assert_eq!(rows, vec![("next", 1), ("outer", 1)]);
    }
}
