//! Property-based tests for the accelerator cost model.

use lts_accel::{CoreConfig, CoreModel};
use lts_nn::descriptor::SpecBuilder;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cycles_and_macs_are_monotone_in_assignment(
        out_c in 1usize..64, in_c in 1usize..32, k in 1usize..5
    ) {
        let spec = SpecBuilder::new("n", (in_c, 8, 8))
            .conv("c", out_c, k, 1, k / 2, 1)
            .build();
        let layer = spec.layer("c").unwrap();
        let model = CoreModel::new(CoreConfig::diannao());
        let mut last = model.layer_cost(layer, 0);
        for assigned in 1..=out_c {
            let cost = model.layer_cost(layer, assigned);
            prop_assert!(cost.compute_cycles >= last.compute_cycles);
            prop_assert!(cost.macs >= last.macs);
            prop_assert!(cost.energy_pj >= last.energy_pj);
            last = cost;
        }
    }

    #[test]
    fn tile_quantization_never_undercounts_ideal_cycles(
        out_c in 1usize..100, contrib_c in 1usize..32
    ) {
        // Quantized tiles can only be >= the ideal MACs/PE ratio.
        let spec = SpecBuilder::new("n", (contrib_c, 6, 6))
            .conv("c", out_c, 3, 1, 1, 1)
            .build();
        let layer = spec.layer("c").unwrap();
        let model = CoreModel::new(CoreConfig::diannao());
        let cost = model.layer_cost(layer, out_c);
        let ideal = cost.macs.div_ceil(model.config().macs_per_cycle() as u64);
        prop_assert!(cost.compute_cycles >= ideal);
        // But never worse than the fully-padded bound.
        let padded = (out_c as u64).div_ceil(16) * 16 * (contrib_c as u64 * 9).div_ceil(16) * 16
            * (layer.out_dims.1 * layer.out_dims.2) as u64
            / model.config().macs_per_cycle() as u64;
        prop_assert!(cost.compute_cycles <= padded.max(1));
    }

    #[test]
    fn partition_sum_of_macs_equals_whole_layer(
        out_c in 1usize..64, cores in 1usize..17
    ) {
        let spec = SpecBuilder::new("n", (16, 8, 8)).conv("c", out_c, 3, 1, 1, 1).build();
        let layer = spec.layer("c").unwrap();
        let model = CoreModel::new(CoreConfig::diannao());
        let blocks = lts_nn::grouping::even_blocks(out_c, cores);
        let partitioned: u64 = blocks
            .iter()
            .map(|b| model.layer_cost(layer, b.len()).macs)
            .sum();
        prop_assert_eq!(partitioned, model.layer_cost(layer, out_c).macs);
    }

    #[test]
    fn streaming_weights_never_beat_resident(out_f in 1usize..2048) {
        let spec = SpecBuilder::new("n", (512, 1, 1)).linear("ip", out_f).build();
        let layer = spec.layer("ip").unwrap();
        let resident = CoreModel::new(CoreConfig::diannao()).layer_cost(layer, out_f);
        let streaming = CoreModel::new(CoreConfig::diannao())
            .with_resident_weights(false)
            .layer_cost(layer, out_f);
        prop_assert!(streaming.cycles >= resident.cycles);
        prop_assert!(streaming.energy_pj >= resident.energy_pj);
        prop_assert!(streaming.dram_bytes >= resident.dram_bytes);
    }
}
