//! Compute-side energy coefficients.

use serde::{Deserialize, Serialize};

/// Per-event energy for the accelerator core datapath (45/32 nm-class
/// values for 16-bit fixed point, in the range reported by the DianNao and
/// Eyeriss papers).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComputeEnergyModel {
    /// One 16-bit multiply-accumulate, including pipeline overhead (pJ).
    pub mac_pj: f64,
    /// One non-MAC ALU op (comparison, activation) (pJ).
    pub op_pj: f64,
    /// On-chip SRAM access energy per byte (pJ/B).
    pub sram_pj_per_byte: f64,
    /// Off-chip DRAM access energy per byte (pJ/B).
    pub dram_pj_per_byte: f64,
}

impl Default for ComputeEnergyModel {
    fn default() -> Self {
        Self { mac_pj: 0.6, op_pj: 0.2, sram_pj_per_byte: 0.08, dram_pj_per_byte: 20.0 }
    }
}

impl ComputeEnergyModel {
    /// DRAM access is the dominant per-byte cost — a guard against
    /// accidentally swapping coefficients.
    pub fn is_physically_ordered(&self) -> bool {
        self.dram_pj_per_byte > self.sram_pj_per_byte && self.mac_pj > 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_coefficients_are_physically_ordered() {
        assert!(ComputeEnergyModel::default().is_physically_ordered());
    }

    #[test]
    fn dram_dominates_sram_by_orders_of_magnitude() {
        let e = ComputeEnergyModel::default();
        assert!(e.dram_pj_per_byte / e.sram_pj_per_byte > 100.0);
    }
}
