//! Compute-side energy coefficients.

use serde::{Deserialize, Serialize};

/// Per-event energy for the accelerator core datapath (45/32 nm-class
/// values for 16-bit fixed point, in the range reported by the DianNao and
/// Eyeriss papers).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComputeEnergyModel {
    /// One 16-bit multiply-accumulate, including pipeline overhead (pJ).
    pub mac_pj: f64,
    /// One non-MAC ALU op (comparison, activation) (pJ).
    pub op_pj: f64,
    /// On-chip SRAM access energy per byte (pJ/B).
    pub sram_pj_per_byte: f64,
    /// Off-chip DRAM access energy per byte (pJ/B).
    pub dram_pj_per_byte: f64,
}

impl Default for ComputeEnergyModel {
    fn default() -> Self {
        Self { mac_pj: 0.6, op_pj: 0.2, sram_pj_per_byte: 0.08, dram_pj_per_byte: 20.0 }
    }
}

impl ComputeEnergyModel {
    /// DRAM access is the dominant per-byte cost — a guard against
    /// accidentally swapping coefficients.
    pub fn is_physically_ordered(&self) -> bool {
        self.dram_pj_per_byte > self.sram_pj_per_byte && self.mac_pj > 0.0
    }
}

/// Per-event energy for interposer (chiplet-to-chiplet) links on a
/// multi-chip package. Interposer traces are physically longer and drive
/// larger capacitances than on-die NoC wires, so a seam crossing costs an
/// order of magnitude more than an on-die link traversal — but far less
/// than going off package to DRAM (2.5D-integration-class values, in the
/// range reported for silicon-interposer PHYs: ~0.5–1 pJ/bit vs
/// ~0.05–0.1 pJ/bit on die).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InterposerEnergyModel {
    /// One flit crossing an interposer seam (pJ). Applied per
    /// inter-chip link traversal on top of the router/link energy the
    /// NoC model already charges.
    pub seam_crossing_pj: f64,
}

impl Default for InterposerEnergyModel {
    fn default() -> Self {
        // 512-bit flit at ~0.64 pJ/bit of extra interposer cost.
        Self { seam_crossing_pj: 328.0 }
    }
}

impl InterposerEnergyModel {
    /// Extra energy for `crossings` interposer traversals (pJ).
    pub fn crossings_pj(&self, crossings: u64) -> f64 {
        self.seam_crossing_pj * crossings as f64
    }

    /// The interposer premium must sit between an on-die link traversal
    /// (~a few pJ/flit) and a DRAM line fetch — a guard against unit slips
    /// (per-bit vs per-flit).
    pub fn is_physically_ordered(&self, compute: &ComputeEnergyModel) -> bool {
        self.seam_crossing_pj > 10.0 && self.seam_crossing_pj < compute.dram_pj_per_byte * 64.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_coefficients_are_physically_ordered() {
        assert!(ComputeEnergyModel::default().is_physically_ordered());
    }

    #[test]
    fn dram_dominates_sram_by_orders_of_magnitude() {
        let e = ComputeEnergyModel::default();
        assert!(e.dram_pj_per_byte / e.sram_pj_per_byte > 100.0);
    }

    #[test]
    fn interposer_premium_sits_between_link_and_dram() {
        let i = InterposerEnergyModel::default();
        assert!(i.is_physically_ordered(&ComputeEnergyModel::default()));
        assert_eq!(i.crossings_pj(0), 0.0);
        assert_eq!(i.crossings_pj(10), 10.0 * i.seam_crossing_pj);
    }
}
