//! DianNao-style neural-accelerator core timing and energy model.
//!
//! The paper's cores are "simulated with an in-house simulator that could
//! faithfully simulate the design of DianNao" (Table II: 16×16 PEs, one
//! 128 KB weight buffer, two 32 KB data buffers, 16-bit fixed point).
//! This crate is the analytic reconstruction: it converts a layer
//! partition (how many output channels/neurons one core computes) into
//! compute cycles, DRAM traffic and energy.
//!
//! The model follows the DianNao NFU organization: per cycle, the core
//! consumes `Ti` input values against `Tn` output neurons (a 16×16
//! multiplier array feeding adder trees), so a layer partition costs
//! `⌈out/Tn⌉ × ⌈in·k²/Ti⌉ × positions` cycles — the tile quantization is
//! what makes narrow layers underutilize the array, exactly as in the
//! paper's baseline. Buffer-capacity-driven DRAM refills overlap with
//! compute (double buffering): layer latency is the max of the compute
//! and memory streams.
//!
//! # Examples
//!
//! ```
//! use lts_accel::{CoreConfig, CoreModel};
//! use lts_nn::descriptor::SpecBuilder;
//!
//! let spec = SpecBuilder::new("n", (16, 8, 8)).conv("c", 32, 3, 1, 1, 1).build();
//! let model = CoreModel::new(CoreConfig::diannao());
//! // One core computing all 32 output channels vs an even 1/4 share.
//! let whole = model.layer_cost(spec.layer("c").unwrap(), 32);
//! let quarter = model.layer_cost(spec.layer("c").unwrap(), 8);
//! assert!(quarter.cycles < whole.cycles);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::print_stdout, clippy::print_stderr)]

pub mod config;
pub mod cost;
pub mod energy;

pub use config::CoreConfig;
pub use cost::{CoreModel, LayerCost};
pub use energy::{ComputeEnergyModel, InterposerEnergyModel};
