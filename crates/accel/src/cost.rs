//! Layer-partition cost model.

use crate::config::CoreConfig;
use crate::energy::ComputeEnergyModel;
use lts_nn::descriptor::{dims_len, LayerKind, LayerSpec};
use serde::{Deserialize, Serialize};

/// Cost of executing one layer partition on one core, for a single input
/// image.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LayerCost {
    /// Core cycles (compute/memory overlap already applied).
    pub cycles: u64,
    /// Pure compute cycles before memory overlap.
    pub compute_cycles: u64,
    /// Cycles the memory stream needs (0 when everything fits on-chip).
    pub memory_cycles: u64,
    /// Multiply-accumulates executed.
    pub macs: u64,
    /// Bytes fetched from DRAM (weights streamed once + buffer overflow
    /// refills).
    pub dram_bytes: u64,
    /// On-chip SRAM traffic in bytes (weight + data buffer reads/writes).
    pub sram_bytes: u64,
    /// Compute + memory energy in picojoules.
    pub energy_pj: f64,
}

impl LayerCost {
    /// A zero cost (identity for accumulation).
    pub fn zero() -> Self {
        Self {
            cycles: 0,
            compute_cycles: 0,
            memory_cycles: 0,
            macs: 0,
            dram_bytes: 0,
            sram_bytes: 0,
            energy_pj: 0.0,
        }
    }

    /// Accumulates another cost, serializing cycles (layers execute in
    /// sequence).
    pub fn accumulate(&mut self, other: &LayerCost) {
        self.cycles += other.cycles;
        self.compute_cycles += other.compute_cycles;
        self.memory_cycles += other.memory_cycles;
        self.macs += other.macs;
        self.dram_bytes += other.dram_bytes;
        self.sram_bytes += other.sram_bytes;
        self.energy_pj += other.energy_pj;
    }
}

/// Analytic DianNao core model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoreModel {
    config: CoreConfig,
    energy: ComputeEnergyModel,
    /// Whether each core's weight partition is already distributed
    /// on-chip before the single pass starts (the paper's setting: "the
    /// trained CMP-friendly neural network model is already prepared when
    /// enabling inference", as in DaDianNao's resident weights). When
    /// false, weights stream from DRAM and FC layers become memory-bound.
    weights_resident: bool,
}

impl CoreModel {
    /// Creates a model with the default energy coefficients and resident
    /// weights (the paper's configuration).
    pub fn new(config: CoreConfig) -> Self {
        config.assert_valid();
        Self { config, energy: ComputeEnergyModel::default(), weights_resident: true }
    }

    /// Creates a model with explicit energy coefficients.
    pub fn with_energy(config: CoreConfig, energy: ComputeEnergyModel) -> Self {
        config.assert_valid();
        Self { config, energy, weights_resident: true }
    }

    /// Sets whether weights are pre-distributed on-chip (see type docs).
    pub fn with_resident_weights(mut self, resident: bool) -> Self {
        self.weights_resident = resident;
        self
    }

    /// The core configuration.
    pub fn config(&self) -> &CoreConfig {
        &self.config
    }

    /// Cost of computing `out_units_assigned` of the layer's output
    /// channels/neurons on one core (single image).
    ///
    /// Pool/activation/flatten layers ignore `out_units_assigned` scaling
    /// subtleties and scale by the assigned share of output channels.
    ///
    /// # Panics
    ///
    /// Panics if `out_units_assigned` exceeds the layer's output units.
    pub fn layer_cost(&self, spec: &LayerSpec, out_units_assigned: usize) -> LayerCost {
        let out_total = spec.out_dims.0;
        assert!(
            out_units_assigned <= out_total,
            "assigned {out_units_assigned} of {out_total} output units"
        );
        if out_units_assigned == 0 {
            return LayerCost::zero();
        }
        let cost = match spec.kind {
            LayerKind::Conv { kernel, groups, .. } => {
                let in_per_group = spec.in_dims.0 / groups;
                let contrib = in_per_group * kernel * kernel;
                let positions = (spec.out_dims.1 * spec.out_dims.2) as u64;
                self.dot_product_cost(
                    out_units_assigned,
                    contrib,
                    positions,
                    dims_len(spec.in_dims),
                    out_units_assigned * (spec.out_dims.1 * spec.out_dims.2),
                )
            }
            LayerKind::Linear { in_f, .. } => {
                self.dot_product_cost(out_units_assigned, in_f, 1, in_f, out_units_assigned)
            }
            LayerKind::Pool { kernel, .. } => {
                // NFU-2 comparisons: Tn lanes, one window element per cycle.
                let positions = (out_units_assigned * spec.out_dims.1 * spec.out_dims.2) as u64;
                let ops = positions * (kernel * kernel) as u64;
                let cycles = ops.div_ceil(self.config.tn as u64);
                let sram = (dims_len(spec.in_dims) * out_units_assigned / spec.in_dims.0.max(1)
                    + out_units_assigned * spec.out_dims.1 * spec.out_dims.2)
                    * self.config.bytes_per_value;
                LayerCost {
                    cycles,
                    compute_cycles: cycles,
                    memory_cycles: 0,
                    macs: ops,
                    dram_bytes: 0,
                    sram_bytes: sram as u64,
                    energy_pj: self.energy.op_pj * ops as f64
                        + self.energy.sram_pj_per_byte * sram as f64,
                }
            }
            LayerKind::Activation => {
                // NFU-3 applies the activation inline as outputs stream out:
                // costs no extra cycles beyond one pass at Tn lanes.
                let values = (out_units_assigned * spec.out_dims.1 * spec.out_dims.2) as u64;
                let cycles = values.div_ceil(self.config.tn as u64);
                LayerCost {
                    cycles,
                    compute_cycles: cycles,
                    memory_cycles: 0,
                    macs: values,
                    dram_bytes: 0,
                    sram_bytes: 0,
                    energy_pj: self.energy.op_pj * values as f64,
                }
            }
            LayerKind::Flatten => LayerCost::zero(),
        };
        if lts_obs::enabled() {
            lts_obs::counter_add("accel.layer_costs", 1);
            lts_obs::counter_add("accel.macs", cost.macs);
            lts_obs::counter_add("accel.compute_cycles", cost.compute_cycles);
            lts_obs::counter_add("accel.memory_cycles", cost.memory_cycles);
            lts_obs::counter_add("accel.dram_bytes", cost.dram_bytes);
        }
        cost
    }

    /// Shared conv/linear tile model: `out_assigned` output units each
    /// needing `contrib` input values, at `positions` spatial positions.
    fn dot_product_cost(
        &self,
        out_assigned: usize,
        contrib: usize,
        positions: u64,
        input_values: usize,
        output_values: usize,
    ) -> LayerCost {
        let tn = self.config.tn as u64;
        let ti = self.config.ti as u64;
        let out_tiles = (out_assigned as u64).div_ceil(tn);
        let in_tiles = (contrib as u64).div_ceil(ti);
        let compute_cycles = out_tiles * in_tiles * positions;
        let macs = out_assigned as u64 * contrib as u64 * positions;

        let bpv = self.config.bytes_per_value as u64;
        let weight_bytes = out_assigned as u64 * contrib as u64 * bpv;
        let input_bytes = input_values as u64 * bpv;
        let output_bytes = output_values as u64 * bpv;
        // With resident weights (the paper's setting) the partition was
        // distributed before the pass started and costs nothing here;
        // otherwise weights stream from DRAM once per pass.
        let dram_weights = if self.weights_resident { 0 } else { weight_bytes };
        // Inputs/outputs overflow their 32 KB data buffers into DRAM.
        let dbuf = self.config.data_buffer_bytes as u64;
        let dram_io = input_bytes.saturating_sub(dbuf) + output_bytes.saturating_sub(dbuf);
        let dram_bytes = dram_weights + dram_io;
        let memory_cycles = (dram_bytes as f64 / self.config.dram_bytes_per_cycle).ceil() as u64;

        let sram_bytes = weight_bytes + input_bytes + output_bytes;
        let energy_pj = self.energy.mac_pj * macs as f64
            + self.energy.sram_pj_per_byte * sram_bytes as f64
            + self.energy.dram_pj_per_byte * dram_bytes as f64;
        LayerCost {
            cycles: compute_cycles.max(memory_cycles),
            compute_cycles,
            memory_cycles,
            macs,
            dram_bytes,
            sram_bytes,
            energy_pj,
        }
    }

    /// Cost of the whole network on a single core (the non-parallel
    /// reference point).
    ///
    /// When `lts-obs` recording is enabled, an `accel.single_core#N`
    /// cycle track receives one interval per layer — phase
    /// `compute-bound` or `memory-bound` by which stream dominated —
    /// whose lengths are the exact per-layer `cycles`, so the track
    /// total equals the returned `cycles` bit for bit.
    pub fn single_core_cost(&self, layers: &[LayerSpec]) -> LayerCost {
        let track = lts_obs::cycle_track("accel.single_core");
        let mut total = LayerCost::zero();
        for spec in layers {
            let cost = self.layer_cost(spec, spec.out_dims.0);
            let phase = if cost.memory_cycles > cost.compute_cycles {
                "memory-bound"
            } else {
                "compute-bound"
            };
            lts_obs::cycle_record(track, phase, &spec.name, cost.cycles);
            total.accumulate(&cost);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lts_nn::descriptor::SpecBuilder;

    fn model() -> CoreModel {
        CoreModel::new(CoreConfig::diannao())
    }

    #[test]
    fn conv_cycles_match_tile_formula() {
        // 32 out channels, 16 in channels, 3x3 kernel, 8x8 output.
        let spec = SpecBuilder::new("n", (16, 8, 8)).conv("c", 32, 3, 1, 1, 1).build();
        let c = model().layer_cost(spec.layer("c").unwrap(), 32);
        // out tiles = 2, in tiles = ceil(16*9/16) = 9, positions = 64.
        assert_eq!(c.compute_cycles, 2 * 9 * 64);
        assert_eq!(c.macs, 32 * 16 * 9 * 64);
    }

    #[test]
    fn partitioning_reduces_cycles_roughly_linearly() {
        let spec = SpecBuilder::new("n", (64, 16, 16)).conv("c", 64, 3, 1, 1, 1).build();
        let layer = spec.layer("c").unwrap();
        let whole = model().layer_cost(layer, 64);
        let quarter = model().layer_cost(layer, 16);
        let ratio = whole.compute_cycles as f64 / quarter.compute_cycles as f64;
        assert!((3.5..=4.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn tiny_partitions_underutilize_the_array() {
        // 1 output channel still costs a full Tn tile.
        let spec = SpecBuilder::new("n", (16, 8, 8)).conv("c", 32, 3, 1, 1, 1).build();
        let layer = spec.layer("c").unwrap();
        let one = model().layer_cost(layer, 1);
        let sixteen = model().layer_cost(layer, 16);
        assert_eq!(one.compute_cycles, sixteen.compute_cycles);
    }

    #[test]
    fn fc_layer_is_memory_bound_only_when_weights_stream() {
        // 4096x4096 FC = 32 MB of weights >> any on-chip buffer.
        let spec = SpecBuilder::new("n", (4096, 1, 1)).linear("ip", 4096).build();
        let streaming = CoreModel::new(CoreConfig::diannao())
            .with_resident_weights(false)
            .layer_cost(spec.layer("ip").unwrap(), 4096);
        assert!(
            streaming.memory_cycles > streaming.compute_cycles,
            "streaming FC should be DRAM bound"
        );
        assert_eq!(streaming.cycles, streaming.memory_cycles);
        // The paper's setting: weights resident, so compute dominates.
        let resident = model().layer_cost(spec.layer("ip").unwrap(), 4096);
        assert!(resident.cycles < streaming.cycles);
        assert!(resident.energy_pj < streaming.energy_pj, "no DRAM weight energy");
    }

    #[test]
    fn small_conv_is_compute_bound() {
        let spec = SpecBuilder::new("n", (16, 32, 32)).conv("c", 16, 3, 1, 1, 1).build();
        let c = model().layer_cost(spec.layer("c").unwrap(), 16);
        assert!(c.compute_cycles >= c.memory_cycles);
    }

    #[test]
    fn zero_assignment_costs_nothing() {
        let spec = SpecBuilder::new("n", (16, 8, 8)).conv("c", 32, 3, 1, 1, 1).build();
        let c = model().layer_cost(spec.layer("c").unwrap(), 0);
        assert_eq!(c, LayerCost::zero());
    }

    #[test]
    fn grouped_conv_costs_less_than_dense() {
        let dense = SpecBuilder::new("d", (64, 8, 8)).conv("c", 64, 3, 1, 1, 1).build();
        let grouped = SpecBuilder::new("g", (64, 8, 8)).conv("c", 64, 3, 1, 1, 16).build();
        let m = model();
        let cd = m.layer_cost(dense.layer("c").unwrap(), 4);
        let cg = m.layer_cost(grouped.layer("c").unwrap(), 4);
        assert!(cg.macs < cd.macs);
        assert!(cg.cycles <= cd.cycles);
    }

    #[test]
    fn single_core_cost_sums_layers() {
        let spec = SpecBuilder::new("n", (1, 28, 28))
            .conv("c1", 8, 5, 1, 0, 1)
            .relu()
            .pool("p1", 2, 2)
            .flatten()
            .linear("ip", 10)
            .build();
        let total = model().single_core_cost(&spec.layers);
        let manual: u64 =
            spec.layers.iter().map(|l| model().layer_cost(l, l.out_dims.0).cycles).sum();
        assert_eq!(total.cycles, manual);
        assert!(total.energy_pj > 0.0);
    }

    #[test]
    fn energy_scales_with_work() {
        let spec = SpecBuilder::new("n", (16, 16, 16)).conv("c", 32, 3, 1, 1, 1).build();
        let layer = spec.layer("c").unwrap();
        let half = model().layer_cost(layer, 16);
        let full = model().layer_cost(layer, 32);
        assert!(full.energy_pj > 1.5 * half.energy_pj);
    }
}
