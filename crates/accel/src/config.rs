//! Accelerator core configuration.

use serde::{Deserialize, Serialize};

/// Hardware parameters of one accelerator core (Table II defaults).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoreConfig {
    /// Output neurons processed per cycle (DianNao `Tn`).
    pub tn: usize,
    /// Input values consumed per output neuron per cycle (DianNao `Ti`).
    pub ti: usize,
    /// Weight buffer capacity in bytes (Table II: 128 KB).
    pub weight_buffer_bytes: usize,
    /// Each of the two data buffers, in bytes (Table II: 32 KB).
    pub data_buffer_bytes: usize,
    /// Bytes per value (16-bit fixed point = 2).
    pub bytes_per_value: usize,
    /// Off-chip bandwidth in bytes per core cycle (LPDDR3-1600 single
    /// channel ≈ 12.8 GB/s at a 1 GHz core clock).
    pub dram_bytes_per_cycle: f64,
    /// Core clock in GHz.
    pub clock_ghz: f64,
}

impl CoreConfig {
    /// The Table II configuration: 16×16 PE array, 128 KB weight buffer,
    /// two 32 KB data buffers, 16-bit fixed point.
    pub fn diannao() -> Self {
        Self {
            tn: 16,
            ti: 16,
            weight_buffer_bytes: 128 * 1024,
            data_buffer_bytes: 32 * 1024,
            bytes_per_value: 2,
            dram_bytes_per_cycle: 12.8,
            clock_ghz: 1.0,
        }
    }

    /// Multiply-accumulate throughput per cycle (`Tn × Ti`).
    pub fn macs_per_cycle(&self) -> usize {
        self.tn * self.ti
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if any field is zero or non-positive (configurations are
    /// construction-time constants; a bad one is a programming error).
    pub fn assert_valid(&self) {
        assert!(self.tn > 0 && self.ti > 0, "PE tile dims must be positive");
        assert!(self.weight_buffer_bytes > 0, "weight buffer must be positive");
        assert!(self.data_buffer_bytes > 0, "data buffers must be positive");
        assert!(self.bytes_per_value > 0, "bytes_per_value must be positive");
        assert!(self.dram_bytes_per_cycle > 0.0, "dram bandwidth must be positive");
        assert!(self.clock_ghz > 0.0, "clock must be positive");
    }
}

impl Default for CoreConfig {
    fn default() -> Self {
        Self::diannao()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diannao_matches_table_ii() {
        let c = CoreConfig::diannao();
        assert_eq!(c.macs_per_cycle(), 256); // 16x16 PEs
        assert_eq!(c.weight_buffer_bytes, 131072);
        assert_eq!(c.data_buffer_bytes, 32768);
        assert_eq!(c.bytes_per_value, 2);
        c.assert_valid();
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn invalid_config_panics() {
        let mut c = CoreConfig::diannao();
        c.tn = 0;
        c.assert_valid();
    }
}
