//! End-to-end 16-bit quantized inference.
//!
//! [`QuantizedNetwork`] is built from a trained f32 [`Network`] by a
//! *calibration pass*: a sample of the dataset is run through the f32
//! layers and each weight-bearing layer records the min/max of its input
//! activations, from which a per-tensor symmetric scale
//! ([`lts_tensor::quant::QuantParams`]) is chosen. Weights are scaled
//! from their own min/max. At inference time, `Conv2d`/`Linear` forward
//! passes run entirely in i16 (quantize input → i16 `im2col` → i16 GEMM
//! with i32 accumulators → dequantize with `in_scale · w_scale`, add the
//! f32 bias), while pooling, activations, flatten, and the loss stay in
//! f32 — the *dequantize-at-boundary* convention, matching the paper's
//! chip where the 16-bit MAC arrays do the heavy lifting and per-value
//! NoC traffic is 2 bytes (Table I/II).
//!
//! Zero survives quantization exactly (symmetric scales map 0.0 to code
//! 0), so sparsified/pruned weights stay zero in i16 and the zero-valued
//! activations that the sparsified strategies elide from the NoC remain
//! genuinely zero.
//!
//! Like the f32 layers, each quantized stage owns reusable scratch
//! buffers (`Vec<i16>`/`Vec<i32>`, grown once, reused every batch), so
//! steady-state inference allocates only its output tensors.

use crate::descriptor::{Dims, LayerKind};
use crate::layer::Layer;
use crate::network::Network;
use crate::{NnError, Result};
use lts_tensor::im2col::{im2col_i16_into, ConvGeometry};
use lts_tensor::qmatmul::{matmul_a_bt_i16_into, matmul_i16_into};
use lts_tensor::quant::QuantParams;
use lts_tensor::{ops, par, Shape, Tensor};

/// Quantized grouped 2-D convolution: i16 weights + activations, i32
/// accumulation, f32 output.
#[derive(Debug, Clone)]
pub struct QuantConv2d {
    name: String,
    in_dims: Dims,
    out_c: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
    groups: usize,
    wq: Vec<i16>,
    bias: Vec<f32>,
    w_params: QuantParams,
    in_params: QuantParams,
    qin: Vec<i16>,
    cols: Vec<i16>,
    prod: Vec<i32>,
}

impl QuantConv2d {
    fn group_geometry(&self) -> ConvGeometry {
        ConvGeometry {
            in_c: self.in_dims.0 / self.groups,
            in_h: self.in_dims.1,
            in_w: self.in_dims.2,
            kh: self.kernel,
            kw: self.kernel,
            stride: self.stride,
            pad: self.pad,
        }
    }

    fn out_dims(&self) -> Dims {
        let g = self.group_geometry();
        (self.out_c, g.out_h(), g.out_w())
    }

    fn forward(&mut self, input: &Tensor) -> Result<Tensor> {
        let (c, h, w) = self.in_dims;
        let ok = input.shape().rank() == 4
            && input.shape().dim(1) == c
            && input.shape().dim(2) == h
            && input.shape().dim(3) == w;
        if !ok {
            return Err(NnError::BadInput {
                layer: self.name.clone(),
                reason: format!("expected [batch, {c}, {h}, {w}], got {}", input.shape()),
            });
        }
        let batch = input.shape().dim(0);
        let (out_c, oh, ow) = self.out_dims();
        let geom = self.group_geometry();
        let icg = c / self.groups;
        let ocg = out_c / self.groups;
        let positions = oh * ow;
        let row = geom.col_rows();
        let wrow = icg * self.kernel * self.kernel;
        let mut out = Tensor::zeros(Shape::d4(batch, out_c, oh, ow));
        self.qin.resize(icg * h * w, 0);
        self.cols.resize(row * positions, 0);
        self.prod.resize(ocg * positions, 0);
        let (inp, rescale) = (self.in_params, self.in_params.scale() * self.w_params.scale());
        let src = input.as_slice();
        let dst = out.as_mut_slice();
        for n in 0..batch {
            for g in 0..self.groups {
                let start = (n * c + g * icg) * h * w;
                inp.quantize_into(&src[start..start + icg * h * w], &mut self.qin);
                im2col_i16_into(&self.qin, &geom, &mut self.cols);
                let wmat = &self.wq[g * ocg * wrow..(g + 1) * ocg * wrow];
                matmul_i16_into(wmat, &self.cols, &mut self.prod, ocg, row, positions);
                for oc in 0..ocg {
                    let abs_oc = g * ocg + oc;
                    let base = ((n * out_c) + abs_oc) * positions;
                    let b = self.bias[abs_oc];
                    for p in 0..positions {
                        dst[base + p] = self.prod[oc * positions + p] as f32 * rescale + b;
                    }
                }
            }
        }
        Ok(out)
    }
}

/// Quantized fully-connected layer: i16 weights + activations, i32
/// accumulation, f32 output.
#[derive(Debug, Clone)]
pub struct QuantLinear {
    name: String,
    in_f: usize,
    out_f: usize,
    wq: Vec<i16>,
    bias: Vec<f32>,
    w_params: QuantParams,
    in_params: QuantParams,
    qin: Vec<i16>,
    prod: Vec<i32>,
}

impl QuantLinear {
    fn forward(&mut self, input: &Tensor) -> Result<Tensor> {
        if input.shape().rank() != 2 || input.shape().dim(1) != self.in_f {
            return Err(NnError::BadInput {
                layer: self.name.clone(),
                reason: format!("expected [batch, {}], got {}", self.in_f, input.shape()),
            });
        }
        let batch = input.shape().dim(0);
        let mut out = Tensor::zeros(Shape::d2(batch, self.out_f));
        self.qin.resize(batch * self.in_f, 0);
        self.prod.resize(batch * self.out_f, 0);
        self.in_params.quantize_into(input.as_slice(), &mut self.qin);
        // Y[b, o] = Σ_i Xq[b, i] · Wq[o, i]: the A·Bᵀ kernel, exactly as
        // the f32 layer computes it.
        matmul_a_bt_i16_into(&self.qin, &self.wq, &mut self.prod, batch, self.in_f, self.out_f);
        let rescale = self.in_params.scale() * self.w_params.scale();
        let dst = out.as_mut_slice();
        for b in 0..batch {
            for (o, &bv) in self.bias.iter().enumerate() {
                dst[b * self.out_f + o] = self.prod[b * self.out_f + o] as f32 * rescale + bv;
            }
        }
        Ok(out)
    }
}

/// One stage of a quantized network: either a quantized weighted layer or
/// the retained f32 layer (pooling/activation/flatten/dropout — and any
/// weighted layer kind the quantizer does not recognize, kept in f32
/// rather than silently mis-quantized).
enum QuantStage {
    Conv(QuantConv2d),
    Linear(QuantLinear),
    Passthrough(Box<dyn Layer>),
}

impl Clone for QuantStage {
    fn clone(&self) -> Self {
        match self {
            QuantStage::Conv(c) => QuantStage::Conv(c.clone()),
            QuantStage::Linear(l) => QuantStage::Linear(l.clone()),
            QuantStage::Passthrough(p) => QuantStage::Passthrough(p.clone_box()),
        }
    }
}

impl QuantStage {
    fn name(&self) -> &str {
        match self {
            QuantStage::Conv(c) => &c.name,
            QuantStage::Linear(l) => &l.name,
            QuantStage::Passthrough(p) => p.name(),
        }
    }
}

/// A 16-bit quantized inference network built from a trained f32
/// [`Network`] via a calibration pass.
///
/// # Examples
///
/// ```
/// use lts_nn::network::NetworkBuilder;
/// use lts_nn::quantized::QuantizedNetwork;
/// use lts_tensor::{init, Shape, Tensor};
///
/// # fn main() -> Result<(), lts_nn::NnError> {
/// let mut rng = init::rng(1);
/// let net = NetworkBuilder::new("tiny", (1, 8, 8))
///     .conv("conv1", 4, 3, 1, 1, 1)
///     .relu()
///     .flatten()
///     .linear("ip1", 10)
///     .build(&mut rng)?;
/// let calib = init::uniform(Shape::d4(4, 1, 8, 8), 1.0, &mut rng);
/// let mut qnet = QuantizedNetwork::from_network(&net, &calib)?;
/// let out = qnet.forward(&Tensor::zeros(Shape::d4(2, 1, 8, 8)))?;
/// assert_eq!(out.shape().dims(), &[2, 10]);
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct QuantizedNetwork {
    name: String,
    stages: Vec<QuantStage>,
}

impl std::fmt::Debug for QuantizedNetwork {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QuantizedNetwork")
            .field("name", &self.name)
            .field("stages", &self.stages.len())
            .finish()
    }
}

impl QuantizedNetwork {
    /// Builds the quantized network from a trained f32 network and a
    /// calibration batch (a representative sample of inputs; a few dozen
    /// samples suffice — the pass only collects activation ranges).
    ///
    /// # Errors
    ///
    /// Propagates layer errors from the calibration forward pass (usually
    /// a calibration-batch shape mismatch).
    pub fn from_network(network: &Network, calibration: &Tensor) -> Result<Self> {
        let _probe = lts_obs::span("nn.quantize_calibrate");
        let mut stages = Vec::with_capacity(network.len());
        let mut current = calibration.clone();
        for mut layer in network.clone_layers() {
            layer.set_training(false);
            let stage = match (layer.weight().is_some(), layer.spec().kind) {
                (true, LayerKind::Conv { out_c, kernel, stride, pad, groups }) => {
                    let spec = layer.spec();
                    // √k headroom on both operands of the length-k GEMM
                    // reduction (k = icg·kh·kw receptive-field taps) keeps
                    // the i32 accumulators overflow-free by construction.
                    let head = (((spec.in_dims.0 / groups) * kernel * kernel) as f32).sqrt();
                    let in_params = QuantParams::from_slice_with_headroom(current.as_slice(), head);
                    let params = layer.params();
                    let (weight, bias) = (params[0].value.as_slice(), params[1].value.as_slice());
                    let w_params = QuantParams::from_slice_with_headroom(weight, head);
                    let mut wq = vec![0i16; weight.len()];
                    w_params.quantize_into(weight, &mut wq);
                    Some(QuantStage::Conv(QuantConv2d {
                        name: layer.name().to_string(),
                        in_dims: spec.in_dims,
                        out_c,
                        kernel,
                        stride,
                        pad,
                        groups,
                        wq,
                        bias: bias.to_vec(),
                        w_params,
                        in_params,
                        qin: Vec::new(),
                        cols: Vec::new(),
                        prod: Vec::new(),
                    }))
                }
                (true, LayerKind::Linear { in_f, out_f }) => {
                    // √k headroom with k = in_f (see the Conv arm).
                    let head = (in_f as f32).sqrt();
                    let in_params = QuantParams::from_slice_with_headroom(current.as_slice(), head);
                    let params = layer.params();
                    let (weight, bias) = (params[0].value.as_slice(), params[1].value.as_slice());
                    let w_params = QuantParams::from_slice_with_headroom(weight, head);
                    let mut wq = vec![0i16; weight.len()];
                    w_params.quantize_into(weight, &mut wq);
                    Some(QuantStage::Linear(QuantLinear {
                        name: layer.name().to_string(),
                        in_f,
                        out_f,
                        wq,
                        bias: bias.to_vec(),
                        w_params,
                        in_params,
                        qin: Vec::new(),
                        prod: Vec::new(),
                    }))
                }
                _ => None,
            };
            current = layer.forward(&current)?;
            stages.push(stage.unwrap_or(QuantStage::Passthrough(layer)));
        }
        Ok(QuantizedNetwork { name: format!("{}_i16", network.name()), stages })
    }

    /// The network's name (`<f32 name>_i16`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Names of the stages that run quantized (i16) kernels, in order.
    pub fn quantized_stage_names(&self) -> Vec<String> {
        self.stages
            .iter()
            .filter(|s| !matches!(s, QuantStage::Passthrough(_)))
            .map(|s| s.name().to_string())
            .collect()
    }

    /// The `(input_scale, weight_scale)` pair of a quantized stage, if
    /// `name` names one.
    pub fn stage_scales(&self, name: &str) -> Option<(f32, f32)> {
        self.stages.iter().find(|s| s.name() == name).and_then(|s| match s {
            QuantStage::Conv(c) => Some((c.in_params.scale(), c.w_params.scale())),
            QuantStage::Linear(l) => Some((l.in_params.scale(), l.w_params.scale())),
            QuantStage::Passthrough(_) => None,
        })
    }

    /// Runs a full quantized forward pass over a batch.
    ///
    /// # Errors
    ///
    /// Propagates the first stage error (usually a shape mismatch).
    pub fn forward(&mut self, input: &Tensor) -> Result<Tensor> {
        let _probe = lts_obs::span("nn.forward_i16");
        let mut current = input.clone();
        for stage in &mut self.stages {
            let _stage_probe = lts_obs::span(stage.name());
            current = match stage {
                QuantStage::Conv(c) => c.forward(&current)?,
                QuantStage::Linear(l) => l.forward(&current)?,
                QuantStage::Passthrough(p) => p.forward(&current)?,
            };
        }
        Ok(current)
    }

    /// Predicted class per sample of a batch.
    ///
    /// # Errors
    ///
    /// Propagates forward errors.
    pub fn predict(&mut self, batch: &Tensor) -> Result<Vec<usize>> {
        let out = self.forward(batch)?;
        let classes = out.shape().dim(1);
        Ok((0..out.shape().dim(0))
            .map(|b| {
                ops::argmax(&out.as_slice()[b * classes..(b + 1) * classes])
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect())
    }

    /// Classification accuracy on `(inputs, labels)` in batches of
    /// `batch_size` — the quantized mirror of [`Network::evaluate`].
    ///
    /// # Errors
    ///
    /// Propagates forward errors; returns [`NnError::BadInput`] if the
    /// label count disagrees with the input batch dimension.
    pub fn evaluate(
        &mut self,
        inputs: &Tensor,
        labels: &[usize],
        batch_size: usize,
    ) -> Result<f32> {
        let total = inputs.shape().dim(0);
        if labels.len() != total {
            return Err(NnError::BadInput {
                layer: "evaluate".into(),
                reason: format!("{} labels for {total} inputs", labels.len()),
            });
        }
        if total == 0 {
            return Ok(0.0);
        }
        let sample_len = inputs.len() / total;
        let mut correct = 0usize;
        let mut start = 0usize;
        while start < total {
            let end = (start + batch_size).min(total);
            let n = end - start;
            let mut dims = inputs.shape().dims().to_vec();
            dims[0] = n;
            let slice = inputs.as_slice()[start * sample_len..end * sample_len].to_vec();
            let batch = Tensor::from_vec(Shape::new(dims), slice)?;
            let preds = self.predict(&batch)?;
            correct += preds.iter().zip(&labels[start..end]).filter(|(p, l)| p == l).count();
            start = end;
        }
        Ok(correct as f32 / total as f32)
    }
}

/// Data-parallel quantized accuracy: the i16 twin of
/// [`crate::trainer::parallel_accuracy`], with the identical contiguous
/// chunk decomposition, so the result is independent of `threads` and of
/// the engine worker count (quantized forward passes are integer-exact
/// per sample).
///
/// # Errors
///
/// Propagates forward errors from any worker.
pub fn quantized_parallel_accuracy(
    net: &QuantizedNetwork,
    inputs: &Tensor,
    labels: &[usize],
    batch_size: usize,
    threads: usize,
) -> Result<f32> {
    let total = inputs.shape().dim(0);
    if labels.len() != total {
        return Err(NnError::BadInput {
            layer: "quantized_parallel_accuracy".into(),
            reason: format!("{} labels for {total} inputs", labels.len()),
        });
    }
    if total == 0 {
        return Ok(0.0);
    }
    let threads = threads.clamp(1, total);
    let sample_len = inputs.len() / total;
    let ranges = par::stripe_ranges(total, threads);
    let counts = par::par_map(&ranges, |_, range| -> Result<usize> {
        let mut local = net.clone();
        let mut dims = inputs.shape().dims().to_vec();
        dims[0] = range.len();
        let in_slice = &inputs.as_slice()[range.start * sample_len..range.end * sample_len];
        let label_slice = &labels[range.start..range.end];
        let local_inputs = Tensor::from_vec(Shape::new(dims), in_slice.to_vec())?;
        let acc = local.evaluate(&local_inputs, label_slice, batch_size)?;
        Ok((acc * label_slice.len() as f32).round() as usize)
    });
    let mut correct = 0usize;
    for count in counts {
        correct += count?;
    }
    Ok(correct as f32 / total as f32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkBuilder;
    use lts_tensor::init;

    fn tiny_net(seed: u64) -> (Network, Tensor) {
        let mut rng = init::rng(seed);
        let net = NetworkBuilder::new("tiny", (1, 8, 8))
            .conv("conv1", 4, 3, 1, 1, 1)
            .relu()
            .pool("pool1", 2, 2)
            .flatten()
            .linear("ip1", 10)
            .build(&mut rng)
            .unwrap();
        let calib = init::uniform(Shape::d4(8, 1, 8, 8), 1.0, &mut rng);
        (net, calib)
    }

    #[test]
    fn quantized_forward_tracks_f32_forward() {
        let (mut net, calib) = tiny_net(3);
        let mut qnet = QuantizedNetwork::from_network(&net, &calib).unwrap();
        let mut rng = init::rng(7);
        let x = init::uniform(Shape::d4(4, 1, 8, 8), 1.0, &mut rng);
        net.set_training(false);
        let f = net.forward(&x).unwrap();
        let q = qnet.forward(&x).unwrap();
        assert_eq!(f.shape(), q.shape());
        // Per-tensor 16-bit scales keep logits within a small absolute
        // error of the f32 network on in-calibration-range inputs.
        let mut max_err = 0.0f32;
        let mut max_mag = 0.0f32;
        for (a, b) in f.as_slice().iter().zip(q.as_slice()) {
            max_err = max_err.max((a - b).abs());
            max_mag = max_mag.max(a.abs());
        }
        assert!(max_err <= 0.02 * max_mag.max(1.0), "max_err={max_err} max_mag={max_mag}");
    }

    #[test]
    fn quantized_stages_are_conv_and_linear_only() {
        let (net, calib) = tiny_net(4);
        let qnet = QuantizedNetwork::from_network(&net, &calib).unwrap();
        assert_eq!(qnet.quantized_stage_names(), vec!["conv1", "ip1"]);
        assert_eq!(qnet.name(), "tiny_i16");
        let (in_s, w_s) = qnet.stage_scales("conv1").unwrap();
        assert!(in_s > 0.0 && w_s > 0.0);
        assert!(qnet.stage_scales("pool1").is_none());
    }

    #[test]
    fn pruned_zero_weights_stay_zero_in_i16() {
        let (mut net, calib) = tiny_net(5);
        // Zero out half the linear weights, as pruning would.
        {
            let w = net.layer_weight_mut("ip1").unwrap();
            for (i, v) in w.value.as_mut_slice().iter_mut().enumerate() {
                if i % 2 == 0 {
                    *v = 0.0;
                }
            }
        }
        let qnet = QuantizedNetwork::from_network(&net, &calib).unwrap();
        let stage = qnet
            .stages
            .iter()
            .find_map(|s| match s {
                QuantStage::Linear(l) => Some(l),
                _ => None,
            })
            .unwrap();
        for (i, &q) in stage.wq.iter().enumerate() {
            if i % 2 == 0 {
                assert_eq!(q, 0, "pruned weight {i} must quantize to exactly 0");
            }
        }
    }

    #[test]
    fn evaluate_matches_parallel_accuracy_for_any_thread_count() {
        let (net, calib) = tiny_net(6);
        let mut qnet = QuantizedNetwork::from_network(&net, &calib).unwrap();
        let mut rng = init::rng(11);
        let x = init::uniform(Shape::d4(12, 1, 8, 8), 1.0, &mut rng);
        let labels: Vec<usize> = (0..12).map(|i| i % 10).collect();
        let serial = qnet.evaluate(&x, &labels, 4).unwrap();
        for threads in [1, 2, 5] {
            let par = quantized_parallel_accuracy(&qnet, &x, &labels, 4, threads).unwrap();
            assert_eq!(serial, par, "threads={threads}");
        }
    }

    #[test]
    fn calibration_shape_mismatch_is_an_error() {
        let (net, _) = tiny_net(8);
        let bad = Tensor::zeros(Shape::d4(2, 3, 8, 8));
        assert!(QuantizedNetwork::from_network(&net, &bad).is_err());
        let mut qnet =
            QuantizedNetwork::from_network(&net, &Tensor::zeros(Shape::d4(1, 1, 8, 8))).unwrap();
        assert!(qnet.forward(&Tensor::zeros(Shape::d4(1, 2, 8, 8))).is_err());
        assert!(qnet.evaluate(&Tensor::zeros(Shape::d4(2, 1, 8, 8)), &[0], 2).is_err());
    }
}
