//! The evaluation section's model zoo.
//!
//! Trainable builders for every network the paper trains (MLP, LeNet,
//! ConvNet, the Table III ConvNet variants, and a scaled CaffeNet), plus
//! re-exports of the purely analytic descriptors (full AlexNet/VGG19) used
//! by Table I.
//!
//! Scaling substitutions (documented in `DESIGN.md`): networks trained on
//! ImageNet in the paper run here on downscaled synthetic inputs —
//! ImageNet10 at 16×16×3 and ImageNet (CaffeNet) at 32×32×3 — preserving
//! the layer pattern and relative per-layer traffic profile while staying
//! trainable on a CPU in seconds.

pub use crate::descriptor::{alexnet_spec, convnet_spec, lenet_spec, mlp_spec, vgg19_spec};

use crate::network::{Network, NetworkBuilder};
use crate::Result;
use lts_tensor::init;

/// Input geometry of the synthetic ImageNet10 substitute.
pub const IMAGENET10_DIMS: (usize, usize, usize) = (3, 16, 16);
/// Input geometry of the synthetic ImageNet (CaffeNet) substitute.
pub const IMAGENET_SMALL_DIMS: (usize, usize, usize) = (3, 32, 32);

/// The paper's MLP: fully-connected 512/304/`classes` on flat inputs of
/// `input_len` values (784 for MNIST-shaped data). Accepts any batch
/// whose per-sample size is `input_len` (e.g. NCHW `[n, 1, 28, 28]`); the
/// leading flatten collapses it.
pub fn mlp(input_len: usize, classes: usize, seed: u64) -> Result<Network> {
    let mut rng = init::rng(seed);
    NetworkBuilder::new("MLP", (input_len, 1, 1))
        .flatten()
        .linear("ip1", 512)
        .relu()
        .linear("ip2", 304)
        .relu()
        .linear("ip3", classes)
        .build(&mut rng)
}

/// Caffe LeNet on 28×28×1 inputs: conv 20@5×5, pool, conv 50@5×5, pool,
/// fc 500, fc `classes`.
pub fn lenet(classes: usize, seed: u64) -> Result<Network> {
    let mut rng = init::rng(seed);
    NetworkBuilder::new("LeNet", (1, 28, 28))
        .conv("conv1", 20, 5, 1, 0, 1)
        .pool("pool1", 2, 2)
        .conv("conv2", 50, 5, 1, 0, 1)
        .pool("pool2", 2, 2)
        .flatten()
        .linear("ip1", 500)
        .relu()
        .linear("ip2", classes)
        .build(&mut rng)
}

/// Caffe CIFAR-10 "quick" ConvNet on 32×32×3 inputs.
pub fn convnet(classes: usize, seed: u64) -> Result<Network> {
    let mut rng = init::rng(seed);
    NetworkBuilder::new("ConvNet", (3, 32, 32))
        .conv("conv1", 32, 5, 1, 2, 1)
        .pool("pool1", 3, 2)
        .relu()
        .conv("conv2", 32, 5, 1, 2, 1)
        .relu()
        .pool("pool2", 3, 2)
        .conv("conv3", 64, 5, 1, 2, 1)
        .relu()
        .pool("pool3", 3, 2)
        .flatten()
        .linear("ip1", 64)
        .relu()
        .linear("ip2", classes)
        .build(&mut rng)
}

/// The Table III ConvNet variant for structure-level parallelization on
/// the ImageNet10 substitute.
///
/// `kernels = [conv1, conv2, conv3]` output-channel counts (the paper uses
/// `64-128-256` for Parallel#1/#2 and `64-160-320` for Parallel#3);
/// `groups` is the grouping degree `n` applied to conv2 and conv3
/// (`1` = traditional baseline, `n = cores` = structure-level
/// parallelization).
///
/// # Errors
///
/// Returns a configuration error if the channel counts are not divisible
/// by `groups`.
pub fn convnet_variant(kernels: [usize; 3], groups: usize, seed: u64) -> Result<Network> {
    let mut rng = init::rng(seed);
    let name = format!("ConvNet-{}-{}-{}-n{}", kernels[0], kernels[1], kernels[2], groups);
    NetworkBuilder::new(&name, IMAGENET10_DIMS)
        .conv("conv1", kernels[0], 5, 1, 2, 1)
        .relu()
        .pool("pool1", 2, 2)
        .conv("conv2", kernels[1], 3, 1, 1, groups)
        .relu()
        .pool("pool2", 2, 2)
        .conv("conv3", kernels[2], 3, 1, 1, groups)
        .relu()
        .pool("pool3", 2, 2)
        .flatten()
        .linear("ip1", 10)
        .build(&mut rng)
}

/// A layer-pattern-preserving scaled CaffeNet (5 conv + 3 fc) on the
/// 32×32×3 ImageNet substitute.
pub fn caffenet_small(classes: usize, seed: u64) -> Result<Network> {
    let mut rng = init::rng(seed);
    NetworkBuilder::new("CaffeNet", IMAGENET_SMALL_DIMS)
        .conv("conv1", 32, 5, 2, 2, 1)
        .relu()
        .conv("conv2", 64, 3, 1, 1, 1)
        .relu()
        .pool("pool2", 2, 2)
        .conv("conv3", 96, 3, 1, 1, 1)
        .relu()
        .conv("conv4", 96, 3, 1, 1, 1)
        .relu()
        .conv("conv5", 64, 3, 1, 1, 1)
        .relu()
        .pool("pool5", 2, 2)
        .flatten()
        .linear("ip1", 256)
        .relu()
        .linear("ip2", 128)
        .relu()
        .linear("ip3", classes)
        .build(&mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lts_tensor::{Shape, Tensor};

    #[test]
    fn mlp_matches_paper_dimensions() {
        let net = mlp(784, 10, 0).unwrap();
        let spec = net.spec();
        assert_eq!(spec.layer("ip1").unwrap().out_dims.0, 512);
        assert_eq!(spec.layer("ip2").unwrap().out_dims.0, 304);
        assert_eq!(spec.layer("ip3").unwrap().out_dims.0, 10);
    }

    #[test]
    fn lenet_forward_produces_class_logits() {
        let mut net = lenet(10, 1).unwrap();
        let x = Tensor::zeros(Shape::d4(2, 1, 28, 28));
        let y = net.forward(&x).unwrap();
        assert_eq!(y.shape().dims(), &[2, 10]);
    }

    #[test]
    fn convnet_variant_grouping_divides_weights() {
        let dense = convnet_variant([64, 128, 256], 1, 0).unwrap();
        let grouped = convnet_variant([64, 128, 256], 16, 0).unwrap();
        let wd = dense.spec().layer("conv2").unwrap().weight_count();
        let wg = grouped.spec().layer("conv2").unwrap().weight_count();
        assert_eq!(wd, 16 * wg);
        // conv1 is never grouped.
        assert_eq!(
            dense.spec().layer("conv1").unwrap().weight_count(),
            grouped.spec().layer("conv1").unwrap().weight_count()
        );
    }

    #[test]
    fn convnet_variant_rejects_indivisible_grouping() {
        assert!(convnet_variant([64, 100, 256], 16, 0).is_err());
    }

    #[test]
    fn parallel3_has_more_kernels_than_parallel2() {
        let p2 = convnet_variant([64, 128, 256], 16, 0).unwrap();
        let p3 = convnet_variant([64, 160, 320], 16, 0).unwrap();
        assert!(p3.spec().total_macs() > p2.spec().total_macs());
    }

    #[test]
    fn caffenet_has_five_convs_and_three_fcs() {
        let net = caffenet_small(10, 0).unwrap();
        let spec = net.spec();
        let convs = spec.weight_layer_names().iter().filter(|n| n.starts_with("conv")).count();
        let fcs = spec.weight_layer_names().iter().filter(|n| n.starts_with("ip")).count();
        assert_eq!(convs, 5);
        assert_eq!(fcs, 3);
    }

    #[test]
    fn models_are_deterministic_by_seed() {
        let a = mlp(64, 10, 7).unwrap();
        let b = mlp(64, 10, 7).unwrap();
        assert_eq!(a.layer_weight("ip1").unwrap().value, b.layer_weight("ip1").unwrap().value);
    }
}
