//! Mini-batch SGD training loop with optional group-Lasso regularizers.

use crate::loss::softmax_cross_entropy;
use crate::network::Network;
use crate::optim::Sgd;
use crate::regularizer::GroupLasso;
use crate::saved::{read_snapshot_file, write_snapshot_file, SavedNetwork};
use crate::{NnError, Result};
use lts_tensor::{par, Shape, Tensor};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::path::Path;
use std::sync::Mutex;

/// Number of gradient shards each mini-batch is split into.
///
/// The decomposition is fixed regardless of the worker count configured in
/// [`par`], so training results are bit-identical for any `LTS_THREADS`:
/// shard boundaries, per-shard accumulation order, and the shard-ascending
/// gradient reduction never change — threads only decide *when* a shard
/// runs.
const TRAIN_SHARDS: usize = 8;

/// Optional per-epoch checkpoint sink threaded through the internal
/// training loop (`None` for plain, checkpoint-free runs).
type CheckpointSink<'a> = Option<&'a mut dyn FnMut(&TrainCheckpoint) -> Result<()>>;

/// Hyper-parameters of a training run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Initial learning rate.
    pub lr: f32,
    /// Momentum coefficient.
    pub momentum: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
    /// Per-epoch multiplicative learning-rate decay.
    pub lr_decay: f32,
    /// Global gradient-norm clip (0 disables). Deep conv stacks at
    /// aggressive learning rates occasionally produce exploding batches;
    /// clipping keeps every model family stable at its tuned rate.
    pub clip_grad_norm: f32,
    /// Shuffle seed (training is fully deterministic given this).
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 5,
            batch_size: 32,
            lr: 0.05,
            momentum: 0.9,
            weight_decay: 1e-4,
            lr_decay: 0.9,
            clip_grad_norm: 5.0,
            seed: 0,
        }
    }
}

/// Per-epoch training metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training loss (data term only).
    pub loss: f32,
    /// Mean group-Lasso penalty at epoch end.
    pub penalty: f32,
    /// Training accuracy over the epoch.
    pub accuracy: f32,
}

/// Summary of a whole training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainStats {
    /// One entry per epoch.
    pub epochs: Vec<EpochStats>,
}

impl TrainStats {
    /// Final-epoch training accuracy (`0` if no epochs ran).
    pub fn final_accuracy(&self) -> f32 {
        self.epochs.last().map_or(0.0, |e| e.accuracy)
    }

    /// Final-epoch loss (`inf` if no epochs ran).
    pub fn final_loss(&self) -> f32 {
        self.epochs.last().map_or(f32::INFINITY, |e| e.loss)
    }
}

/// One weight-bearing layer's SGD momentum buffers — the optimizer
/// state a [`SavedNetwork`] deliberately omits, persisted alongside it
/// in a [`TrainCheckpoint`] so resumed training continues the exact
/// velocity trajectory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SavedMomentum {
    /// Layer name (matches the snapshot's parameter entry).
    pub layer: String,
    /// Weight momentum buffer.
    pub weight: Tensor,
    /// Bias momentum buffer.
    pub bias: Tensor,
}

/// A crash-safe snapshot of a training run, captured at an epoch
/// boundary.
///
/// The checkpoint holds everything [`Trainer::resume`] needs to
/// continue *bit-identically* to the uninterrupted run: the hyper
/// parameters (resume refuses a mismatched trainer), the completed
/// epoch count, the network weights and freeze masks, the momentum
/// buffers, and the per-epoch stats so far. The shuffle RNG and the
/// decayed learning rate are *not* stored — both are deterministic
/// functions of `(config, completed_epochs)` and are replayed on
/// resume, repeating the exact same f32 multiplications the original
/// run performed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainCheckpoint {
    /// Hyper-parameters of the interrupted run.
    pub config: TrainConfig,
    /// Epochs fully completed before the snapshot (resume starts here).
    pub completed_epochs: usize,
    /// Weights and freeze masks at the epoch boundary.
    pub network: SavedNetwork,
    /// Momentum buffers, one entry per weight-bearing layer in spec
    /// order (mirrors `network.params`).
    pub momentum: Vec<SavedMomentum>,
    /// Stats of the completed epochs.
    pub stats: TrainStats,
}

impl TrainCheckpoint {
    /// Captures the training state after `completed_epochs` epochs.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::SaveFailed`] when the network cannot be
    /// snapshotted (see [`SavedNetwork::from_network`]).
    pub fn capture(
        config: &TrainConfig,
        completed_epochs: usize,
        net: &Network,
        stats: &TrainStats,
    ) -> Result<Self> {
        let network = SavedNetwork::from_network(net)?;
        let mut momentum = Vec::with_capacity(network.params.len());
        for saved in &network.params {
            let layer = net.layer(&saved.layer).ok_or_else(|| {
                NnError::SaveFailed(format!("layer `{}` vanished mid-capture", saved.layer))
            })?;
            let ps = layer.params();
            let (w, b) = match (ps.first(), ps.get(1)) {
                (Some(w), Some(b)) => (w, b),
                _ => {
                    return Err(NnError::SaveFailed(format!(
                        "layer `{}` lacks weight/bias parameters",
                        saved.layer
                    )))
                }
            };
            momentum.push(SavedMomentum {
                layer: saved.layer.clone(),
                weight: w.momentum.clone(),
                bias: b.momentum.clone(),
            });
        }
        Ok(Self { config: *config, completed_epochs, network, momentum, stats: stats.clone() })
    }

    /// Checks internal consistency: the embedded network snapshot is
    /// valid, the epoch count fits the config, the stats cover exactly
    /// the completed epochs, and momentum entries mirror the parameter
    /// entries shape-for-shape.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::MalformedSnapshot`] describing the first
    /// inconsistency.
    pub fn validate(&self) -> Result<()> {
        self.network.validate()?;
        if self.completed_epochs > self.config.epochs {
            return Err(NnError::MalformedSnapshot(format!(
                "checkpoint claims {} completed epochs of a {}-epoch run",
                self.completed_epochs, self.config.epochs
            )));
        }
        if self.stats.epochs.len() != self.completed_epochs {
            return Err(NnError::MalformedSnapshot(format!(
                "{} epoch stats for {} completed epochs",
                self.stats.epochs.len(),
                self.completed_epochs
            )));
        }
        if self.momentum.len() != self.network.params.len() {
            return Err(NnError::MalformedSnapshot(format!(
                "{} momentum entries for {} parameter entries",
                self.momentum.len(),
                self.network.params.len()
            )));
        }
        for (m, p) in self.momentum.iter().zip(&self.network.params) {
            if m.layer != p.layer {
                return Err(NnError::MalformedSnapshot(format!(
                    "momentum entry `{}` out of order with parameter entry `{}`",
                    m.layer, p.layer
                )));
            }
            if m.weight.shape() != p.weight.shape() || m.bias.shape() != p.bias.shape() {
                return Err(NnError::MalformedSnapshot(format!(
                    "momentum shapes for `{}` disagree with its parameters",
                    m.layer
                )));
            }
        }
        Ok(())
    }

    /// Rebuilds the network with weights, freeze masks *and* momentum
    /// buffers restored.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::MalformedSnapshot`] for inconsistent
    /// checkpoints and [`NnError::BadConfig`] when the network cannot be
    /// rebuilt.
    pub fn restore_network(&self) -> Result<Network> {
        self.validate()?;
        let mut net = self.network.clone().into_network()?;
        for m in &self.momentum {
            let layer = net.layer_mut(&m.layer).ok_or_else(|| {
                NnError::BadConfig(format!("checkpoint layer `{}` not reconstructible", m.layer))
            })?;
            let mut params = layer.params_mut();
            if params.len() < 2 {
                return Err(NnError::BadConfig(format!(
                    "checkpoint layer `{}` lacks weight/bias parameters",
                    m.layer
                )));
            }
            params[0].momentum = m.weight.clone();
            params[1].momentum = m.bias.clone();
        }
        Ok(net)
    }

    /// Serializes to JSON.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::SaveFailed`] if serialization fails.
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string(self).map_err(|e| NnError::SaveFailed(e.to_string()))
    }

    /// Deserializes and validates a checkpoint from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::MalformedSnapshot`] for unparsable input and
    /// checkpoints failing [`TrainCheckpoint::validate`].
    pub fn from_json(json: &str) -> Result<Self> {
        let cp: Self =
            serde_json::from_str(json).map_err(|e| NnError::MalformedSnapshot(e.to_string()))?;
        cp.validate()?;
        Ok(cp)
    }

    /// Persists the checkpoint atomically under the snapshot checksum
    /// envelope (see [`write_snapshot_file`]): a crash mid-save leaves
    /// the previous checkpoint intact, never a torn file.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::SaveFailed`] for serialization or filesystem
    /// failures.
    pub fn save_to_file(&self, path: &Path) -> Result<()> {
        write_snapshot_file(path, &self.to_json()?)
    }

    /// Loads, checksum-verifies and validates a checkpoint file.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::MalformedSnapshot`] for missing/corrupt files
    /// and invalid checkpoints.
    pub fn load_from_file(path: &Path) -> Result<Self> {
        Self::from_json(&read_snapshot_file(path)?)
    }
}

/// Trains networks with SGD and (optionally) per-layer group-Lasso
/// regularizers — the mechanism behind the paper's SS and SS_Mask schemes.
///
/// # Examples
///
/// ```
/// use lts_nn::network::NetworkBuilder;
/// use lts_nn::trainer::{TrainConfig, Trainer};
/// use lts_tensor::{init, Shape, Tensor};
///
/// # fn main() -> Result<(), lts_nn::NnError> {
/// let mut rng = init::rng(1);
/// let mut net = NetworkBuilder::new("xor-ish", (2, 1, 1))
///     .linear("ip1", 8)
///     .relu()
///     .linear("ip2", 2)
///     .build(&mut rng)?;
/// let inputs = Tensor::from_vec(
///     Shape::d2(4, 2),
///     vec![0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0],
/// ).map_err(lts_nn::NnError::from)?;
/// let labels = [0usize, 1, 1, 0];
/// let trainer = Trainer::new(TrainConfig { epochs: 50, batch_size: 4, lr: 0.2, ..TrainConfig::default() })?;
/// let stats = trainer.train(&mut net, &inputs, &labels)?;
/// assert!(stats.final_loss() < 0.7);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Trainer {
    config: TrainConfig,
    regularizers: Vec<GroupLasso>,
}

impl Trainer {
    /// Creates a trainer without structured-sparsity regularization
    /// (the paper's *Baseline*).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] for invalid hyper-parameters.
    pub fn new(config: TrainConfig) -> Result<Self> {
        if config.epochs == 0 || config.batch_size == 0 {
            return Err(NnError::BadConfig("epochs and batch_size must be positive".into()));
        }
        Sgd::new(config.lr, config.momentum, config.weight_decay)?;
        Ok(Self { config, regularizers: Vec::new() })
    }

    /// Adds a group-Lasso regularizer for one layer.
    pub fn with_regularizer(mut self, reg: GroupLasso) -> Self {
        self.regularizers.push(reg);
        self
    }

    /// The attached regularizers.
    pub fn regularizers(&self) -> &[GroupLasso] {
        &self.regularizers
    }

    /// Runs the training loop on `(inputs, labels)`.
    ///
    /// `inputs` is a full dataset batch (NCHW or `[n, features]`); labels
    /// are class indices. Training is deterministic given
    /// [`TrainConfig::seed`].
    ///
    /// # Errors
    ///
    /// Propagates layer/loss errors and returns [`NnError::BadInput`] if
    /// labels and inputs disagree, or [`NnError::BadConfig`] if a
    /// regularizer names a layer the network lacks.
    pub fn train(
        &self,
        net: &mut Network,
        inputs: &Tensor,
        labels: &[usize],
    ) -> Result<TrainStats> {
        self.run(net, inputs, labels, 0, Vec::new(), None)
    }

    /// Like [`Trainer::train`], but invokes `on_checkpoint` with a
    /// [`TrainCheckpoint`] after every completed epoch (typically to
    /// [`TrainCheckpoint::save_to_file`] it). The training trajectory is
    /// bit-identical to [`Trainer::train`] — checkpointing only *reads*
    /// state. A sink error aborts the run and propagates.
    ///
    /// # Errors
    ///
    /// Everything [`Trainer::train`] returns, plus errors from the sink
    /// and from checkpoint capture.
    pub fn train_with_checkpoints(
        &self,
        net: &mut Network,
        inputs: &Tensor,
        labels: &[usize],
        mut on_checkpoint: impl FnMut(&TrainCheckpoint) -> Result<()>,
    ) -> Result<TrainStats> {
        self.run(net, inputs, labels, 0, Vec::new(), Some(&mut on_checkpoint))
    }

    /// Resumes an interrupted run from `checkpoint`, returning the
    /// trained network and the full (prior + new epochs) stats.
    ///
    /// The result is bit-identical to the run that would have completed
    /// without the interruption: weights, freeze masks and momentum come
    /// from the checkpoint, while the shuffle RNG and the decayed
    /// learning rate are replayed from the seed through the completed
    /// epochs (the same f32 operations in the same order).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] when the checkpoint's hyper
    /// parameters disagree with this trainer's, plus everything
    /// [`Trainer::train`] and [`TrainCheckpoint::restore_network`]
    /// return.
    pub fn resume(
        &self,
        checkpoint: &TrainCheckpoint,
        inputs: &Tensor,
        labels: &[usize],
    ) -> Result<(Network, TrainStats)> {
        let mut net = self.restore_for_resume(checkpoint)?;
        let stats = self.run(
            &mut net,
            inputs,
            labels,
            checkpoint.completed_epochs,
            checkpoint.stats.epochs.clone(),
            None,
        )?;
        Ok((net, stats))
    }

    /// [`Trainer::resume`] that keeps checkpointing the remaining epochs
    /// through `on_checkpoint`, so a resumed run is itself crash-safe.
    ///
    /// # Errors
    ///
    /// Everything [`Trainer::resume`] returns, plus sink errors.
    pub fn resume_with_checkpoints(
        &self,
        checkpoint: &TrainCheckpoint,
        inputs: &Tensor,
        labels: &[usize],
        mut on_checkpoint: impl FnMut(&TrainCheckpoint) -> Result<()>,
    ) -> Result<(Network, TrainStats)> {
        let mut net = self.restore_for_resume(checkpoint)?;
        let stats = self.run(
            &mut net,
            inputs,
            labels,
            checkpoint.completed_epochs,
            checkpoint.stats.epochs.clone(),
            Some(&mut on_checkpoint),
        )?;
        Ok((net, stats))
    }

    fn restore_for_resume(&self, checkpoint: &TrainCheckpoint) -> Result<Network> {
        if checkpoint.config != self.config {
            return Err(NnError::BadConfig(
                "checkpoint hyper-parameters disagree with this trainer; resuming would \
                 silently change the training trajectory"
                    .into(),
            ));
        }
        checkpoint.restore_network()
    }

    /// The training loop proper, shared by fresh and resumed runs.
    ///
    /// `start_epoch` epochs are replayed through the shuffle RNG and the
    /// learning-rate decay (but not trained); `prior` seeds the stats.
    fn run(
        &self,
        net: &mut Network,
        inputs: &Tensor,
        labels: &[usize],
        start_epoch: usize,
        prior: Vec<EpochStats>,
        mut on_checkpoint: CheckpointSink<'_>,
    ) -> Result<TrainStats> {
        let total = inputs.shape().dim(0);
        if labels.len() != total {
            return Err(NnError::BadInput {
                layer: "trainer".into(),
                reason: format!("{} labels for {total} inputs", labels.len()),
            });
        }
        for reg in &self.regularizers {
            let w = net.layer_weight(&reg.layer).ok_or_else(|| {
                NnError::BadConfig(format!("regularizer targets unknown layer `{}`", reg.layer))
            })?;
            if w.len() != reg.layout.weight_len() {
                return Err(NnError::BadConfig(format!(
                    "regularizer layout for `{}` covers {} weights, layer has {}",
                    reg.layer,
                    reg.layout.weight_len(),
                    w.len()
                )));
            }
        }
        let sample_len = inputs.len().checked_div(total).unwrap_or(0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.config.seed);
        let mut order: Vec<usize> = (0..total).collect();
        let mut opt = Sgd::new(self.config.lr, self.config.momentum, self.config.weight_decay)?;
        // Replay the completed epochs' RNG draws and lr decays so a
        // resumed run continues the exact sequence — same shuffles, same
        // repeated f32 multiplications — the uninterrupted run would see.
        for _ in 0..start_epoch {
            order.shuffle(&mut rng);
            opt = opt.with_lr_scaled(self.config.lr_decay);
        }
        let mut stats = TrainStats { epochs: prior };

        net.set_training(true);
        // Worker replicas for data-parallel batches, indexed by shard.
        // Created lazily on the first multi-shard batch and kept across
        // batches so their buffers (layer workspaces, cached activations)
        // are reused instead of re-allocated.
        let mut workers: Vec<Mutex<Network>> = Vec::new();
        for epoch in start_epoch..self.config.epochs {
            let _probe = lts_obs::span("nn.train_epoch");
            order.shuffle(&mut rng);
            let mut epoch_loss = 0.0f64;
            let mut epoch_correct = 0usize;
            let mut batches = 0usize;
            for chunk in order.chunks(self.config.batch_size) {
                let (loss, correct) =
                    self.train_batch(net, &mut workers, inputs, labels, chunk, sample_len)?;
                self.apply_subgradient_regularizers(net)?;
                let mut params = net.params_mut();
                clip_global_grad_norm(&mut params, self.config.clip_grad_norm);
                opt.step(&mut params);
                self.apply_proximal_regularizers(net, opt.lr)?;
                epoch_loss += loss as f64;
                epoch_correct += correct;
                batches += 1;
            }
            let penalty = self.total_penalty(net)?;
            stats.epochs.push(EpochStats {
                epoch,
                loss: (epoch_loss / batches.max(1) as f64) as f32,
                penalty,
                accuracy: epoch_correct as f32 / total.max(1) as f32,
            });
            opt = opt.with_lr_scaled(self.config.lr_decay);
            if let Some(sink) = on_checkpoint.as_deref_mut() {
                let cp = TrainCheckpoint::capture(&self.config, epoch + 1, net, &stats)?;
                sink(&cp)?;
            }
        }
        net.set_training(false);
        Ok(stats)
    }

    /// Runs forward + backward for one mini-batch, leaving the mean-batch
    /// gradient in `net`'s parameter grads. Returns `(mean loss, correct)`.
    ///
    /// Batches with more than one sample are split into [`TRAIN_SHARDS`]
    /// fixed shards that run data-parallel on persistent worker replicas of
    /// the network; shard gradients are reduced onto the master in
    /// ascending shard order with fixed weights, so the result does not
    /// depend on the engine's worker count.
    fn train_batch(
        &self,
        net: &mut Network,
        workers: &mut Vec<Mutex<Network>>,
        inputs: &Tensor,
        labels: &[usize],
        chunk: &[usize],
        sample_len: usize,
    ) -> Result<(f32, usize)> {
        let _probe = lts_obs::span("nn.train_batch");
        let batch_len = chunk.len();
        let nshards = TRAIN_SHARDS.min(batch_len);
        if nshards <= 1 {
            // Degenerate batch: run directly on the master network.
            let (batch, batch_labels) = gather_batch(inputs, labels, chunk, sample_len)?;
            net.zero_grads();
            let logits = net.forward(&batch)?;
            let out = softmax_cross_entropy(&logits, &batch_labels)?;
            net.backward(&out.grad)?;
            return Ok((out.loss, out.correct));
        }
        while workers.len() < nshards {
            workers.push(Mutex::new(net.clone()));
        }
        // Sync replica weights with the master in place (no allocation).
        for worker in workers[..nshards].iter_mut() {
            let replica = worker.get_mut().expect("worker lock poisoned");
            for (wp, mp) in replica.params_mut().into_iter().zip(net.params()) {
                wp.value.as_mut_slice().copy_from_slice(mp.value.as_slice());
            }
        }
        let ranges = par::stripe_ranges(batch_len, nshards);
        let shard_pool = &workers[..nshards];
        let results = par::par_map(&ranges, |s, range| -> Result<(f32, usize, usize)> {
            let mut replica = shard_pool[s].lock().expect("worker lock poisoned");
            let idx = &chunk[range.start..range.end];
            let (batch, batch_labels) = gather_batch(inputs, labels, idx, sample_len)?;
            replica.zero_grads();
            let logits = replica.forward(&batch)?;
            let out = softmax_cross_entropy(&logits, &batch_labels)?;
            replica.backward(&out.grad)?;
            Ok((out.loss, out.correct, idx.len()))
        });
        // Fixed-order weighted reduction: shard s contributes
        // `shard_len / batch_len` of the batch-mean gradient and loss.
        net.zero_grads();
        let mut loss = 0.0f32;
        let mut correct = 0usize;
        let mut mparams = net.params_mut();
        for (s, result) in results.into_iter().enumerate() {
            let (shard_loss, shard_correct, shard_len) = result?;
            let factor = shard_len as f32 / batch_len as f32;
            loss += factor * shard_loss;
            correct += shard_correct;
            let replica = workers[s].get_mut().expect("worker lock poisoned");
            for (mp, wp) in mparams.iter_mut().zip(replica.params()) {
                for (gm, &gw) in mp.grad.as_mut_slice().iter_mut().zip(wp.grad.as_slice()) {
                    *gm += factor * gw;
                }
            }
        }
        Ok((loss, correct))
    }

    /// Sum of all regularizer penalties at the network's current weights.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] if a regularizer names a missing layer.
    pub fn total_penalty(&self, net: &Network) -> Result<f32> {
        let mut total = 0.0;
        for reg in &self.regularizers {
            let w = net.layer_weight(&reg.layer).ok_or_else(|| {
                NnError::BadConfig(format!("regularizer targets unknown layer `{}`", reg.layer))
            })?;
            total += reg.penalty(w.value.as_slice());
        }
        Ok(total)
    }

    fn apply_subgradient_regularizers(&self, net: &mut Network) -> Result<()> {
        for reg in &self.regularizers {
            if reg.mode != crate::regularizer::LassoMode::Subgradient {
                continue;
            }
            let param = net.layer_weight_mut(&reg.layer).ok_or_else(|| {
                NnError::BadConfig(format!("regularizer targets unknown layer `{}`", reg.layer))
            })?;
            reg.accumulate_grad(param);
        }
        Ok(())
    }

    fn apply_proximal_regularizers(&self, net: &mut Network, step_size: f32) -> Result<()> {
        for reg in &self.regularizers {
            if reg.mode != crate::regularizer::LassoMode::Proximal {
                continue;
            }
            let param = net.layer_weight_mut(&reg.layer).ok_or_else(|| {
                NnError::BadConfig(format!("regularizer targets unknown layer `{}`", reg.layer))
            })?;
            reg.proximal_shrink(param, step_size);
        }
        Ok(())
    }
}

/// Scales all gradients down so their global L2 norm is at most
/// `max_norm` (no-op when `max_norm <= 0` or the norm is already within
/// bounds).
pub fn clip_global_grad_norm(params: &mut [&mut Param], max_norm: f32) {
    if max_norm <= 0.0 {
        return;
    }
    let mut ss = 0.0f64;
    for p in params.iter() {
        for &g in p.grad.as_slice() {
            ss += (g as f64) * (g as f64);
        }
    }
    let norm = ss.sqrt() as f32;
    if norm > max_norm {
        let scale = max_norm / norm;
        for p in params.iter_mut() {
            lts_tensor::ops::scale(scale, &mut p.grad);
        }
    }
}

use crate::param::Param;

/// Copies the samples at `indices` into one contiguous batch tensor.
fn gather_batch(
    inputs: &Tensor,
    labels: &[usize],
    indices: &[usize],
    sample_len: usize,
) -> Result<(Tensor, Vec<usize>)> {
    let mut dims = inputs.shape().dims().to_vec();
    dims[0] = indices.len();
    let mut data = Vec::with_capacity(indices.len() * sample_len);
    let src = inputs.as_slice();
    let mut batch_labels = Vec::with_capacity(indices.len());
    for &i in indices {
        data.extend_from_slice(&src[i * sample_len..(i + 1) * sample_len]);
        batch_labels.push(labels[i]);
    }
    Ok((Tensor::from_vec(Shape::new(dims), data)?, batch_labels))
}

/// Evaluates classification accuracy data-parallel on the execution
/// engine, splitting the dataset into `threads` contiguous sample chunks
/// that each run on their own clone of the network.
///
/// The result is partition-independent: each chunk contributes an integer
/// correct-count and per-sample forward passes do not depend on batchmates,
/// so any `threads` value (and any engine worker count) yields the same
/// accuracy.
///
/// # Errors
///
/// Propagates forward errors from any worker.
pub fn parallel_accuracy(
    net: &Network,
    inputs: &Tensor,
    labels: &[usize],
    batch_size: usize,
    threads: usize,
) -> Result<f32> {
    let total = inputs.shape().dim(0);
    if labels.len() != total {
        return Err(NnError::BadInput {
            layer: "parallel_accuracy".into(),
            reason: format!("{} labels for {total} inputs", labels.len()),
        });
    }
    if total == 0 {
        return Ok(0.0);
    }
    let threads = threads.clamp(1, total);
    let sample_len = inputs.len() / total;
    let ranges = par::stripe_ranges(total, threads);
    let counts = par::par_map(&ranges, |_, range| -> Result<usize> {
        let mut local = net.clone();
        let mut dims = inputs.shape().dims().to_vec();
        dims[0] = range.len();
        let in_slice = &inputs.as_slice()[range.start * sample_len..range.end * sample_len];
        let label_slice = &labels[range.start..range.end];
        let local_inputs = Tensor::from_vec(Shape::new(dims), in_slice.to_vec())?;
        let acc = local.evaluate(&local_inputs, label_slice, batch_size)?;
        Ok((acc * label_slice.len() as f32).round() as usize)
    });
    let mut correct = 0usize;
    for count in counts {
        correct += count?;
    }
    Ok(correct as f32 / total as f32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grouping::GroupLayout;
    use crate::network::NetworkBuilder;
    use crate::regularizer::StrengthMask;
    use lts_tensor::init;

    /// A linearly separable toy problem: class = argmax over 4 fixed
    /// directions.
    fn toy_data(n: usize, seed: u64) -> (Tensor, Vec<usize>) {
        let mut rng = init::rng(seed);
        let x = init::uniform(Shape::d2(n, 8), 1.0, &mut rng);
        let labels = (0..n)
            .map(|i| {
                let row = &x.as_slice()[i * 8..(i + 1) * 8];
                lts_tensor::ops::argmax(&row[0..4]).map(|(j, _)| j).unwrap_or(0)
            })
            .collect();
        (x, labels)
    }

    fn toy_net(seed: u64) -> Network {
        let mut rng = init::rng(seed);
        NetworkBuilder::new("toy", (8, 1, 1))
            .linear("ip1", 16)
            .relu()
            .linear("ip2", 4)
            .build(&mut rng)
            .unwrap()
    }

    #[test]
    fn training_reduces_loss_and_learns_the_task() {
        let (x, y) = toy_data(256, 1);
        let mut net = toy_net(2);
        let trainer = Trainer::new(TrainConfig {
            epochs: 30,
            batch_size: 32,
            lr: 0.1,
            ..TrainConfig::default()
        })
        .unwrap();
        let stats = trainer.train(&mut net, &x, &y).unwrap();
        assert!(stats.epochs[0].loss > stats.final_loss());
        assert!(stats.final_accuracy() > 0.9, "accuracy {}", stats.final_accuracy());
    }

    #[test]
    fn training_is_deterministic_given_seed() {
        let (x, y) = toy_data(64, 3);
        let cfg = TrainConfig { epochs: 3, ..TrainConfig::default() };
        let mut a = toy_net(4);
        let mut b = toy_net(4);
        let sa = Trainer::new(cfg).unwrap().train(&mut a, &x, &y).unwrap();
        let sb = Trainer::new(cfg).unwrap().train(&mut b, &x, &y).unwrap();
        assert_eq!(sa, sb);
        assert_eq!(a.layer_weight("ip1").unwrap().value, b.layer_weight("ip1").unwrap().value);
    }

    #[test]
    fn group_lasso_drives_masked_groups_toward_zero() {
        let (x, y) = toy_data(256, 5);
        let mut net = toy_net(6);
        let layout = GroupLayout::new(16, 8, 1, 4);
        // Heavily penalize every off-diagonal group.
        let mut factors = vec![4.0f32; 16];
        for d in 0..4 {
            factors[d * 4 + d] = 0.0;
        }
        let reg = GroupLasso::new(
            "ip1",
            layout.clone(),
            0.2,
            StrengthMask::from_factors(4, factors).unwrap(),
        )
        .unwrap();
        let trainer = Trainer::new(TrainConfig {
            epochs: 40,
            batch_size: 32,
            lr: 0.1,
            ..TrainConfig::default()
        })
        .unwrap()
        .with_regularizer(reg);
        trainer.train(&mut net, &x, &y).unwrap();
        let w = net.layer_weight("ip1").unwrap().value.as_slice().to_vec();
        let mut off_diag = 0.0;
        let mut diag = 0.0;
        for p in 0..4 {
            for c in 0..4 {
                let n = layout.group_norm(p, c, &w);
                if p == c {
                    diag += n;
                } else {
                    off_diag += n;
                }
            }
        }
        assert!(
            off_diag < diag * 0.25,
            "off-diagonal mass {off_diag} should be far below diagonal {diag}"
        );
    }

    #[test]
    fn regularizer_on_unknown_layer_is_rejected() {
        let (x, y) = toy_data(16, 7);
        let mut net = toy_net(8);
        let reg =
            GroupLasso::new("nope", GroupLayout::new(16, 8, 1, 4), 0.01, StrengthMask::uniform(4))
                .unwrap();
        let trainer = Trainer::new(TrainConfig { epochs: 1, ..TrainConfig::default() })
            .unwrap()
            .with_regularizer(reg);
        assert!(trainer.train(&mut net, &x, &y).is_err());
    }

    #[test]
    fn empty_dataset_trains_to_nothing_without_panicking() {
        let mut net = toy_net(20);
        let x = Tensor::zeros(Shape::d2(0, 8));
        let trainer = Trainer::new(TrainConfig { epochs: 2, ..TrainConfig::default() }).unwrap();
        let stats = trainer.train(&mut net, &x, &[]).unwrap();
        assert_eq!(stats.epochs.len(), 2);
        assert_eq!(stats.final_accuracy(), 0.0);
        assert_eq!(parallel_accuracy(&net, &x, &[], 8, 4).unwrap(), 0.0);
    }

    #[test]
    fn single_sample_dataset_trains() {
        let (x, y) = toy_data(1, 30);
        let mut net = toy_net(31);
        let trainer = Trainer::new(TrainConfig { epochs: 3, ..TrainConfig::default() }).unwrap();
        let stats = trainer.train(&mut net, &x, &y).unwrap();
        assert!(stats.final_loss().is_finite());
    }

    #[test]
    fn parallel_accuracy_matches_sequential() {
        let (x, y) = toy_data(64, 9);
        let mut net = toy_net(10);
        let seq = net.evaluate(&x, &y, 16).unwrap();
        let par = parallel_accuracy(&net, &x, &y, 16, 4).unwrap();
        assert!((seq - par).abs() < 1e-6);
    }

    #[test]
    fn config_validation() {
        assert!(Trainer::new(TrainConfig { epochs: 0, ..TrainConfig::default() }).is_err());
        assert!(Trainer::new(TrainConfig { batch_size: 0, ..TrainConfig::default() }).is_err());
        assert!(Trainer::new(TrainConfig { lr: -1.0, ..TrainConfig::default() }).is_err());
    }

    /// A trainer with a proximal group-Lasso regularizer — exercises the
    /// lr-dependent shrink on resume, the hardest bit-identity case.
    fn lasso_trainer(epochs: usize) -> Trainer {
        let layout = GroupLayout::new(16, 8, 1, 4);
        let reg = GroupLasso::new("ip1", layout, 0.05, StrengthMask::uniform(4)).unwrap();
        Trainer::new(TrainConfig { epochs, batch_size: 16, lr: 0.1, ..TrainConfig::default() })
            .unwrap()
            .with_regularizer(reg)
    }

    fn weights_of(net: &Network) -> Vec<Vec<f32>> {
        net.params().into_iter().map(|p| p.value.as_slice().to_vec()).collect()
    }

    #[test]
    fn killed_run_resumes_to_bit_identical_weights() {
        let (x, y) = toy_data(96, 11);
        let epochs = 6;
        // The uninterrupted reference run.
        let mut full_net = toy_net(12);
        let full_stats = lasso_trainer(epochs).train(&mut full_net, &x, &y).unwrap();
        // The same run, checkpointing every epoch and "killed" after
        // epoch 3: all we keep is the last checkpoint.
        let mut killed_net = toy_net(12);
        let mut checkpoints = Vec::new();
        let trainer = lasso_trainer(epochs);
        let err = trainer
            .train_with_checkpoints(&mut killed_net, &x, &y, |cp| {
                checkpoints.push(cp.clone());
                if cp.completed_epochs == 3 {
                    return Err(NnError::SaveFailed("simulated crash".into()));
                }
                Ok(())
            })
            .unwrap_err();
        assert!(err.to_string().contains("simulated crash"));
        assert_eq!(checkpoints.len(), 3);
        let last = checkpoints.last().unwrap();
        last.validate().unwrap();
        // Resume from the survivor and compare bit-for-bit.
        let (resumed_net, resumed_stats) = trainer.resume(last, &x, &y).unwrap();
        assert_eq!(resumed_stats, full_stats);
        assert_eq!(weights_of(&resumed_net), weights_of(&full_net));
    }

    #[test]
    fn checkpoint_survives_the_file_roundtrip() {
        let (x, y) = toy_data(48, 13);
        let mut net = toy_net(14);
        let trainer = lasso_trainer(4);
        let dir = std::env::temp_dir();
        let path = dir.join(format!("lts-train-{}-ckpt.snap", std::process::id()));
        let mut kept: Option<TrainCheckpoint> = None;
        trainer
            .train_with_checkpoints(&mut net, &x, &y, |cp| {
                cp.save_to_file(&path)?;
                if cp.completed_epochs == 2 {
                    kept = Some(cp.clone());
                }
                Ok(())
            })
            .unwrap();
        // The file holds the *final* checkpoint; reload and sanity-check.
        let final_cp = TrainCheckpoint::load_from_file(&path).unwrap();
        assert_eq!(final_cp.completed_epochs, 4);
        // Round-trip the mid-run checkpoint through JSON and resume from
        // both copies: identical weights either way.
        let kept = kept.unwrap();
        let reparsed = TrainCheckpoint::from_json(&kept.to_json().unwrap()).unwrap();
        assert_eq!(kept, reparsed);
        let (a, _) = trainer.resume(&kept, &x, &y).unwrap();
        let (b, _) = trainer.resume(&reparsed, &x, &y).unwrap();
        assert_eq!(weights_of(&a), weights_of(&b));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn resume_restores_momentum_not_just_weights() {
        let (x, y) = toy_data(64, 15);
        let mut net = toy_net(16);
        let trainer = Trainer::new(TrainConfig { epochs: 2, ..TrainConfig::default() }).unwrap();
        let mut cp1 = None;
        trainer
            .train_with_checkpoints(&mut net, &x, &y, |cp| {
                if cp.completed_epochs == 1 {
                    cp1 = Some(cp.clone());
                }
                Ok(())
            })
            .unwrap();
        let cp1 = cp1.unwrap();
        // After a real epoch the momentum buffers are nonzero...
        assert!(cp1.momentum.iter().any(|m| m.weight.as_slice().iter().any(|&v| v != 0.0)));
        // ...and restoring brings them back exactly.
        let restored = cp1.restore_network().unwrap();
        for m in &cp1.momentum {
            let w = restored.layer_weight(&m.layer).unwrap();
            assert_eq!(w.momentum, m.weight, "momentum of `{}`", m.layer);
        }
        // Dropping them (fresh momentum) diverges: proves they matter.
        let mut zeroed = cp1.clone();
        for m in &mut zeroed.momentum {
            m.weight.fill(0.0);
            m.bias.fill(0.0);
        }
        let (with_m, _) = trainer.resume(&cp1, &x, &y).unwrap();
        let (without_m, _) = trainer.resume(&zeroed, &x, &y).unwrap();
        assert_ne!(weights_of(&with_m), weights_of(&without_m));
    }

    #[test]
    fn resume_rejects_mismatched_config_and_malformed_checkpoints() {
        let (x, y) = toy_data(32, 17);
        let mut net = toy_net(18);
        let trainer = Trainer::new(TrainConfig { epochs: 2, ..TrainConfig::default() }).unwrap();
        let mut cp = None;
        trainer
            .train_with_checkpoints(&mut net, &x, &y, |c| {
                cp.get_or_insert_with(|| c.clone());
                Ok(())
            })
            .unwrap();
        let cp = cp.unwrap();
        // A trainer with different hyper-parameters must refuse.
        let other =
            Trainer::new(TrainConfig { lr: 0.01, epochs: 2, ..TrainConfig::default() }).unwrap();
        assert!(matches!(other.resume(&cp, &x, &y), Err(NnError::BadConfig(_))));
        // Tampered epoch counts and momentum lists fail validation.
        let mut bad = cp.clone();
        bad.completed_epochs = 99;
        assert!(matches!(bad.validate(), Err(NnError::MalformedSnapshot(_))));
        let mut bad = cp.clone();
        bad.momentum.pop();
        assert!(matches!(bad.validate(), Err(NnError::MalformedSnapshot(_))));
        let mut bad = cp;
        bad.momentum[0].weight = Tensor::zeros(Shape::d1(1));
        assert!(matches!(bad.validate(), Err(NnError::MalformedSnapshot(_))));
    }

    #[test]
    fn resuming_a_finished_run_is_an_identity() {
        let (x, y) = toy_data(32, 19);
        let mut net = toy_net(20);
        let trainer = Trainer::new(TrainConfig { epochs: 2, ..TrainConfig::default() }).unwrap();
        let mut last = None;
        let stats = trainer
            .train_with_checkpoints(&mut net, &x, &y, |c| {
                last = Some(c.clone());
                Ok(())
            })
            .unwrap();
        let last = last.unwrap();
        assert_eq!(last.completed_epochs, 2);
        let (resumed, resumed_stats) = trainer.resume(&last, &x, &y).unwrap();
        assert_eq!(resumed_stats, stats);
        assert_eq!(weights_of(&resumed), weights_of(&net));
    }

    #[test]
    fn grad_clipping_scales_to_max_norm() {
        use crate::param::Param;
        use lts_tensor::{Shape, Tensor};
        let mut a = Param::new(Tensor::zeros(Shape::d1(2)));
        let mut b = Param::new(Tensor::zeros(Shape::d1(2)));
        a.grad = Tensor::from_slice_1d(&[3.0, 0.0]);
        b.grad = Tensor::from_slice_1d(&[0.0, 4.0]);
        // Global norm = 5; clip to 1 -> everything scaled by 1/5.
        clip_global_grad_norm(&mut [&mut a, &mut b], 1.0);
        assert!((a.grad.as_slice()[0] - 0.6).abs() < 1e-6);
        assert!((b.grad.as_slice()[1] - 0.8).abs() < 1e-6);
        // Already within bounds -> untouched; 0 disables.
        clip_global_grad_norm(&mut [&mut a, &mut b], 10.0);
        assert!((a.grad.as_slice()[0] - 0.6).abs() < 1e-6);
        a.grad = Tensor::from_slice_1d(&[100.0, 0.0]);
        clip_global_grad_norm(&mut [&mut a], 0.0);
        assert_eq!(a.grad.as_slice()[0], 100.0);
    }
}
