//! Mini-batch SGD training loop with optional group-Lasso regularizers.

use crate::loss::softmax_cross_entropy;
use crate::network::Network;
use crate::optim::Sgd;
use crate::regularizer::GroupLasso;
use crate::{NnError, Result};
use lts_tensor::{par, Shape, Tensor};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::sync::Mutex;

/// Number of gradient shards each mini-batch is split into.
///
/// The decomposition is fixed regardless of the worker count configured in
/// [`par`], so training results are bit-identical for any `LTS_THREADS`:
/// shard boundaries, per-shard accumulation order, and the shard-ascending
/// gradient reduction never change — threads only decide *when* a shard
/// runs.
const TRAIN_SHARDS: usize = 8;

/// Hyper-parameters of a training run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Initial learning rate.
    pub lr: f32,
    /// Momentum coefficient.
    pub momentum: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
    /// Per-epoch multiplicative learning-rate decay.
    pub lr_decay: f32,
    /// Global gradient-norm clip (0 disables). Deep conv stacks at
    /// aggressive learning rates occasionally produce exploding batches;
    /// clipping keeps every model family stable at its tuned rate.
    pub clip_grad_norm: f32,
    /// Shuffle seed (training is fully deterministic given this).
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 5,
            batch_size: 32,
            lr: 0.05,
            momentum: 0.9,
            weight_decay: 1e-4,
            lr_decay: 0.9,
            clip_grad_norm: 5.0,
            seed: 0,
        }
    }
}

/// Per-epoch training metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training loss (data term only).
    pub loss: f32,
    /// Mean group-Lasso penalty at epoch end.
    pub penalty: f32,
    /// Training accuracy over the epoch.
    pub accuracy: f32,
}

/// Summary of a whole training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainStats {
    /// One entry per epoch.
    pub epochs: Vec<EpochStats>,
}

impl TrainStats {
    /// Final-epoch training accuracy (`0` if no epochs ran).
    pub fn final_accuracy(&self) -> f32 {
        self.epochs.last().map_or(0.0, |e| e.accuracy)
    }

    /// Final-epoch loss (`inf` if no epochs ran).
    pub fn final_loss(&self) -> f32 {
        self.epochs.last().map_or(f32::INFINITY, |e| e.loss)
    }
}

/// Trains networks with SGD and (optionally) per-layer group-Lasso
/// regularizers — the mechanism behind the paper's SS and SS_Mask schemes.
///
/// # Examples
///
/// ```
/// use lts_nn::network::NetworkBuilder;
/// use lts_nn::trainer::{TrainConfig, Trainer};
/// use lts_tensor::{init, Shape, Tensor};
///
/// # fn main() -> Result<(), lts_nn::NnError> {
/// let mut rng = init::rng(1);
/// let mut net = NetworkBuilder::new("xor-ish", (2, 1, 1))
///     .linear("ip1", 8)
///     .relu()
///     .linear("ip2", 2)
///     .build(&mut rng)?;
/// let inputs = Tensor::from_vec(
///     Shape::d2(4, 2),
///     vec![0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0],
/// ).map_err(lts_nn::NnError::from)?;
/// let labels = [0usize, 1, 1, 0];
/// let trainer = Trainer::new(TrainConfig { epochs: 50, batch_size: 4, lr: 0.2, ..TrainConfig::default() })?;
/// let stats = trainer.train(&mut net, &inputs, &labels)?;
/// assert!(stats.final_loss() < 0.7);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Trainer {
    config: TrainConfig,
    regularizers: Vec<GroupLasso>,
}

impl Trainer {
    /// Creates a trainer without structured-sparsity regularization
    /// (the paper's *Baseline*).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] for invalid hyper-parameters.
    pub fn new(config: TrainConfig) -> Result<Self> {
        if config.epochs == 0 || config.batch_size == 0 {
            return Err(NnError::BadConfig("epochs and batch_size must be positive".into()));
        }
        Sgd::new(config.lr, config.momentum, config.weight_decay)?;
        Ok(Self { config, regularizers: Vec::new() })
    }

    /// Adds a group-Lasso regularizer for one layer.
    pub fn with_regularizer(mut self, reg: GroupLasso) -> Self {
        self.regularizers.push(reg);
        self
    }

    /// The attached regularizers.
    pub fn regularizers(&self) -> &[GroupLasso] {
        &self.regularizers
    }

    /// Runs the training loop on `(inputs, labels)`.
    ///
    /// `inputs` is a full dataset batch (NCHW or `[n, features]`); labels
    /// are class indices. Training is deterministic given
    /// [`TrainConfig::seed`].
    ///
    /// # Errors
    ///
    /// Propagates layer/loss errors and returns [`NnError::BadInput`] if
    /// labels and inputs disagree, or [`NnError::BadConfig`] if a
    /// regularizer names a layer the network lacks.
    pub fn train(
        &self,
        net: &mut Network,
        inputs: &Tensor,
        labels: &[usize],
    ) -> Result<TrainStats> {
        let total = inputs.shape().dim(0);
        if labels.len() != total {
            return Err(NnError::BadInput {
                layer: "trainer".into(),
                reason: format!("{} labels for {total} inputs", labels.len()),
            });
        }
        for reg in &self.regularizers {
            let w = net.layer_weight(&reg.layer).ok_or_else(|| {
                NnError::BadConfig(format!("regularizer targets unknown layer `{}`", reg.layer))
            })?;
            if w.len() != reg.layout.weight_len() {
                return Err(NnError::BadConfig(format!(
                    "regularizer layout for `{}` covers {} weights, layer has {}",
                    reg.layer,
                    reg.layout.weight_len(),
                    w.len()
                )));
            }
        }
        let sample_len = inputs.len().checked_div(total).unwrap_or(0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.config.seed);
        let mut order: Vec<usize> = (0..total).collect();
        let mut opt = Sgd::new(self.config.lr, self.config.momentum, self.config.weight_decay)?;
        let mut stats = TrainStats { epochs: Vec::with_capacity(self.config.epochs) };

        net.set_training(true);
        // Worker replicas for data-parallel batches, indexed by shard.
        // Created lazily on the first multi-shard batch and kept across
        // batches so their buffers (layer workspaces, cached activations)
        // are reused instead of re-allocated.
        let mut workers: Vec<Mutex<Network>> = Vec::new();
        for epoch in 0..self.config.epochs {
            order.shuffle(&mut rng);
            let mut epoch_loss = 0.0f64;
            let mut epoch_correct = 0usize;
            let mut batches = 0usize;
            for chunk in order.chunks(self.config.batch_size) {
                let (loss, correct) =
                    self.train_batch(net, &mut workers, inputs, labels, chunk, sample_len)?;
                self.apply_subgradient_regularizers(net)?;
                let mut params = net.params_mut();
                clip_global_grad_norm(&mut params, self.config.clip_grad_norm);
                opt.step(&mut params);
                self.apply_proximal_regularizers(net, opt.lr)?;
                epoch_loss += loss as f64;
                epoch_correct += correct;
                batches += 1;
            }
            let penalty = self.total_penalty(net)?;
            stats.epochs.push(EpochStats {
                epoch,
                loss: (epoch_loss / batches.max(1) as f64) as f32,
                penalty,
                accuracy: epoch_correct as f32 / total.max(1) as f32,
            });
            opt = opt.with_lr_scaled(self.config.lr_decay);
        }
        net.set_training(false);
        Ok(stats)
    }

    /// Runs forward + backward for one mini-batch, leaving the mean-batch
    /// gradient in `net`'s parameter grads. Returns `(mean loss, correct)`.
    ///
    /// Batches with more than one sample are split into [`TRAIN_SHARDS`]
    /// fixed shards that run data-parallel on persistent worker replicas of
    /// the network; shard gradients are reduced onto the master in
    /// ascending shard order with fixed weights, so the result does not
    /// depend on the engine's worker count.
    fn train_batch(
        &self,
        net: &mut Network,
        workers: &mut Vec<Mutex<Network>>,
        inputs: &Tensor,
        labels: &[usize],
        chunk: &[usize],
        sample_len: usize,
    ) -> Result<(f32, usize)> {
        let batch_len = chunk.len();
        let nshards = TRAIN_SHARDS.min(batch_len);
        if nshards <= 1 {
            // Degenerate batch: run directly on the master network.
            let (batch, batch_labels) = gather_batch(inputs, labels, chunk, sample_len)?;
            net.zero_grads();
            let logits = net.forward(&batch)?;
            let out = softmax_cross_entropy(&logits, &batch_labels)?;
            net.backward(&out.grad)?;
            return Ok((out.loss, out.correct));
        }
        while workers.len() < nshards {
            workers.push(Mutex::new(net.clone()));
        }
        // Sync replica weights with the master in place (no allocation).
        for worker in workers[..nshards].iter_mut() {
            let replica = worker.get_mut().expect("worker lock poisoned");
            for (wp, mp) in replica.params_mut().into_iter().zip(net.params()) {
                wp.value.as_mut_slice().copy_from_slice(mp.value.as_slice());
            }
        }
        let ranges = par::stripe_ranges(batch_len, nshards);
        let shard_pool = &workers[..nshards];
        let results = par::par_map(&ranges, |s, range| -> Result<(f32, usize, usize)> {
            let mut replica = shard_pool[s].lock().expect("worker lock poisoned");
            let idx = &chunk[range.start..range.end];
            let (batch, batch_labels) = gather_batch(inputs, labels, idx, sample_len)?;
            replica.zero_grads();
            let logits = replica.forward(&batch)?;
            let out = softmax_cross_entropy(&logits, &batch_labels)?;
            replica.backward(&out.grad)?;
            Ok((out.loss, out.correct, idx.len()))
        });
        // Fixed-order weighted reduction: shard s contributes
        // `shard_len / batch_len` of the batch-mean gradient and loss.
        net.zero_grads();
        let mut loss = 0.0f32;
        let mut correct = 0usize;
        let mut mparams = net.params_mut();
        for (s, result) in results.into_iter().enumerate() {
            let (shard_loss, shard_correct, shard_len) = result?;
            let factor = shard_len as f32 / batch_len as f32;
            loss += factor * shard_loss;
            correct += shard_correct;
            let replica = workers[s].get_mut().expect("worker lock poisoned");
            for (mp, wp) in mparams.iter_mut().zip(replica.params()) {
                for (gm, &gw) in mp.grad.as_mut_slice().iter_mut().zip(wp.grad.as_slice()) {
                    *gm += factor * gw;
                }
            }
        }
        Ok((loss, correct))
    }

    /// Sum of all regularizer penalties at the network's current weights.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] if a regularizer names a missing layer.
    pub fn total_penalty(&self, net: &Network) -> Result<f32> {
        let mut total = 0.0;
        for reg in &self.regularizers {
            let w = net.layer_weight(&reg.layer).ok_or_else(|| {
                NnError::BadConfig(format!("regularizer targets unknown layer `{}`", reg.layer))
            })?;
            total += reg.penalty(w.value.as_slice());
        }
        Ok(total)
    }

    fn apply_subgradient_regularizers(&self, net: &mut Network) -> Result<()> {
        for reg in &self.regularizers {
            if reg.mode != crate::regularizer::LassoMode::Subgradient {
                continue;
            }
            let param = net.layer_weight_mut(&reg.layer).ok_or_else(|| {
                NnError::BadConfig(format!("regularizer targets unknown layer `{}`", reg.layer))
            })?;
            reg.accumulate_grad(param);
        }
        Ok(())
    }

    fn apply_proximal_regularizers(&self, net: &mut Network, step_size: f32) -> Result<()> {
        for reg in &self.regularizers {
            if reg.mode != crate::regularizer::LassoMode::Proximal {
                continue;
            }
            let param = net.layer_weight_mut(&reg.layer).ok_or_else(|| {
                NnError::BadConfig(format!("regularizer targets unknown layer `{}`", reg.layer))
            })?;
            reg.proximal_shrink(param, step_size);
        }
        Ok(())
    }
}

/// Scales all gradients down so their global L2 norm is at most
/// `max_norm` (no-op when `max_norm <= 0` or the norm is already within
/// bounds).
pub fn clip_global_grad_norm(params: &mut [&mut Param], max_norm: f32) {
    if max_norm <= 0.0 {
        return;
    }
    let mut ss = 0.0f64;
    for p in params.iter() {
        for &g in p.grad.as_slice() {
            ss += (g as f64) * (g as f64);
        }
    }
    let norm = ss.sqrt() as f32;
    if norm > max_norm {
        let scale = max_norm / norm;
        for p in params.iter_mut() {
            lts_tensor::ops::scale(scale, &mut p.grad);
        }
    }
}

use crate::param::Param;

/// Copies the samples at `indices` into one contiguous batch tensor.
fn gather_batch(
    inputs: &Tensor,
    labels: &[usize],
    indices: &[usize],
    sample_len: usize,
) -> Result<(Tensor, Vec<usize>)> {
    let mut dims = inputs.shape().dims().to_vec();
    dims[0] = indices.len();
    let mut data = Vec::with_capacity(indices.len() * sample_len);
    let src = inputs.as_slice();
    let mut batch_labels = Vec::with_capacity(indices.len());
    for &i in indices {
        data.extend_from_slice(&src[i * sample_len..(i + 1) * sample_len]);
        batch_labels.push(labels[i]);
    }
    Ok((Tensor::from_vec(Shape::new(dims), data)?, batch_labels))
}

/// Evaluates classification accuracy data-parallel on the execution
/// engine, splitting the dataset into `threads` contiguous sample chunks
/// that each run on their own clone of the network.
///
/// The result is partition-independent: each chunk contributes an integer
/// correct-count and per-sample forward passes do not depend on batchmates,
/// so any `threads` value (and any engine worker count) yields the same
/// accuracy.
///
/// # Errors
///
/// Propagates forward errors from any worker.
pub fn parallel_accuracy(
    net: &Network,
    inputs: &Tensor,
    labels: &[usize],
    batch_size: usize,
    threads: usize,
) -> Result<f32> {
    let total = inputs.shape().dim(0);
    if labels.len() != total {
        return Err(NnError::BadInput {
            layer: "parallel_accuracy".into(),
            reason: format!("{} labels for {total} inputs", labels.len()),
        });
    }
    if total == 0 {
        return Ok(0.0);
    }
    let threads = threads.clamp(1, total);
    let sample_len = inputs.len() / total;
    let ranges = par::stripe_ranges(total, threads);
    let counts = par::par_map(&ranges, |_, range| -> Result<usize> {
        let mut local = net.clone();
        let mut dims = inputs.shape().dims().to_vec();
        dims[0] = range.len();
        let in_slice = &inputs.as_slice()[range.start * sample_len..range.end * sample_len];
        let label_slice = &labels[range.start..range.end];
        let local_inputs = Tensor::from_vec(Shape::new(dims), in_slice.to_vec())?;
        let acc = local.evaluate(&local_inputs, label_slice, batch_size)?;
        Ok((acc * label_slice.len() as f32).round() as usize)
    });
    let mut correct = 0usize;
    for count in counts {
        correct += count?;
    }
    Ok(correct as f32 / total as f32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grouping::GroupLayout;
    use crate::network::NetworkBuilder;
    use crate::regularizer::StrengthMask;
    use lts_tensor::init;

    /// A linearly separable toy problem: class = argmax over 4 fixed
    /// directions.
    fn toy_data(n: usize, seed: u64) -> (Tensor, Vec<usize>) {
        let mut rng = init::rng(seed);
        let x = init::uniform(Shape::d2(n, 8), 1.0, &mut rng);
        let labels = (0..n)
            .map(|i| {
                let row = &x.as_slice()[i * 8..(i + 1) * 8];
                lts_tensor::ops::argmax(&row[0..4]).map(|(j, _)| j).unwrap_or(0)
            })
            .collect();
        (x, labels)
    }

    fn toy_net(seed: u64) -> Network {
        let mut rng = init::rng(seed);
        NetworkBuilder::new("toy", (8, 1, 1))
            .linear("ip1", 16)
            .relu()
            .linear("ip2", 4)
            .build(&mut rng)
            .unwrap()
    }

    #[test]
    fn training_reduces_loss_and_learns_the_task() {
        let (x, y) = toy_data(256, 1);
        let mut net = toy_net(2);
        let trainer = Trainer::new(TrainConfig {
            epochs: 30,
            batch_size: 32,
            lr: 0.1,
            ..TrainConfig::default()
        })
        .unwrap();
        let stats = trainer.train(&mut net, &x, &y).unwrap();
        assert!(stats.epochs[0].loss > stats.final_loss());
        assert!(stats.final_accuracy() > 0.9, "accuracy {}", stats.final_accuracy());
    }

    #[test]
    fn training_is_deterministic_given_seed() {
        let (x, y) = toy_data(64, 3);
        let cfg = TrainConfig { epochs: 3, ..TrainConfig::default() };
        let mut a = toy_net(4);
        let mut b = toy_net(4);
        let sa = Trainer::new(cfg).unwrap().train(&mut a, &x, &y).unwrap();
        let sb = Trainer::new(cfg).unwrap().train(&mut b, &x, &y).unwrap();
        assert_eq!(sa, sb);
        assert_eq!(a.layer_weight("ip1").unwrap().value, b.layer_weight("ip1").unwrap().value);
    }

    #[test]
    fn group_lasso_drives_masked_groups_toward_zero() {
        let (x, y) = toy_data(256, 5);
        let mut net = toy_net(6);
        let layout = GroupLayout::new(16, 8, 1, 4);
        // Heavily penalize every off-diagonal group.
        let mut factors = vec![4.0f32; 16];
        for d in 0..4 {
            factors[d * 4 + d] = 0.0;
        }
        let reg = GroupLasso::new(
            "ip1",
            layout.clone(),
            0.2,
            StrengthMask::from_factors(4, factors).unwrap(),
        )
        .unwrap();
        let trainer = Trainer::new(TrainConfig {
            epochs: 40,
            batch_size: 32,
            lr: 0.1,
            ..TrainConfig::default()
        })
        .unwrap()
        .with_regularizer(reg);
        trainer.train(&mut net, &x, &y).unwrap();
        let w = net.layer_weight("ip1").unwrap().value.as_slice().to_vec();
        let mut off_diag = 0.0;
        let mut diag = 0.0;
        for p in 0..4 {
            for c in 0..4 {
                let n = layout.group_norm(p, c, &w);
                if p == c {
                    diag += n;
                } else {
                    off_diag += n;
                }
            }
        }
        assert!(
            off_diag < diag * 0.25,
            "off-diagonal mass {off_diag} should be far below diagonal {diag}"
        );
    }

    #[test]
    fn regularizer_on_unknown_layer_is_rejected() {
        let (x, y) = toy_data(16, 7);
        let mut net = toy_net(8);
        let reg =
            GroupLasso::new("nope", GroupLayout::new(16, 8, 1, 4), 0.01, StrengthMask::uniform(4))
                .unwrap();
        let trainer = Trainer::new(TrainConfig { epochs: 1, ..TrainConfig::default() })
            .unwrap()
            .with_regularizer(reg);
        assert!(trainer.train(&mut net, &x, &y).is_err());
    }

    #[test]
    fn empty_dataset_trains_to_nothing_without_panicking() {
        let mut net = toy_net(20);
        let x = Tensor::zeros(Shape::d2(0, 8));
        let trainer = Trainer::new(TrainConfig { epochs: 2, ..TrainConfig::default() }).unwrap();
        let stats = trainer.train(&mut net, &x, &[]).unwrap();
        assert_eq!(stats.epochs.len(), 2);
        assert_eq!(stats.final_accuracy(), 0.0);
        assert_eq!(parallel_accuracy(&net, &x, &[], 8, 4).unwrap(), 0.0);
    }

    #[test]
    fn single_sample_dataset_trains() {
        let (x, y) = toy_data(1, 30);
        let mut net = toy_net(31);
        let trainer = Trainer::new(TrainConfig { epochs: 3, ..TrainConfig::default() }).unwrap();
        let stats = trainer.train(&mut net, &x, &y).unwrap();
        assert!(stats.final_loss().is_finite());
    }

    #[test]
    fn parallel_accuracy_matches_sequential() {
        let (x, y) = toy_data(64, 9);
        let mut net = toy_net(10);
        let seq = net.evaluate(&x, &y, 16).unwrap();
        let par = parallel_accuracy(&net, &x, &y, 16, 4).unwrap();
        assert!((seq - par).abs() < 1e-6);
    }

    #[test]
    fn config_validation() {
        assert!(Trainer::new(TrainConfig { epochs: 0, ..TrainConfig::default() }).is_err());
        assert!(Trainer::new(TrainConfig { batch_size: 0, ..TrainConfig::default() }).is_err());
        assert!(Trainer::new(TrainConfig { lr: -1.0, ..TrainConfig::default() }).is_err());
    }

    #[test]
    fn grad_clipping_scales_to_max_norm() {
        use crate::param::Param;
        use lts_tensor::{Shape, Tensor};
        let mut a = Param::new(Tensor::zeros(Shape::d1(2)));
        let mut b = Param::new(Tensor::zeros(Shape::d1(2)));
        a.grad = Tensor::from_slice_1d(&[3.0, 0.0]);
        b.grad = Tensor::from_slice_1d(&[0.0, 4.0]);
        // Global norm = 5; clip to 1 -> everything scaled by 1/5.
        clip_global_grad_norm(&mut [&mut a, &mut b], 1.0);
        assert!((a.grad.as_slice()[0] - 0.6).abs() < 1e-6);
        assert!((b.grad.as_slice()[1] - 0.8).abs() < 1e-6);
        // Already within bounds -> untouched; 0 disables.
        clip_global_grad_norm(&mut [&mut a, &mut b], 10.0);
        assert!((a.grad.as_slice()[0] - 0.6).abs() < 1e-6);
        a.grad = Tensor::from_slice_1d(&[100.0, 0.0]);
        clip_global_grad_norm(&mut [&mut a], 0.0);
        assert_eq!(a.grad.as_slice()[0], 100.0);
    }
}
