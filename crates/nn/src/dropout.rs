//! Inverted dropout.
//!
//! CaffeNet/AlexNet train their large FC layers under dropout; the model
//! zoo's scaled CaffeNet can too. Uses the *inverted* convention:
//! surviving activations are scaled by `1/(1-p)` during training so
//! inference is a plain identity (no extra work on the accelerator).

use crate::descriptor::{Dims, LayerKind, LayerSpec};
use crate::layer::Layer;
use crate::{NnError, Result};
use lts_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Inverted dropout over flat or spatial activations.
#[derive(Debug, Clone)]
pub struct Dropout {
    name: String,
    dims: Dims,
    /// Drop probability in `[0, 1)`.
    p: f32,
    rng: StdRng,
    training: bool,
    mask: Option<Vec<f32>>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p` and its own
    /// deterministic RNG stream.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] unless `0 <= p < 1`.
    pub fn new(name: &str, dims: Dims, p: f32, seed: u64) -> Result<Self> {
        if !(0.0..1.0).contains(&p) {
            return Err(NnError::BadConfig(format!(
                "dropout `{name}`: p must be in [0, 1), got {p}"
            )));
        }
        Ok(Self {
            name: name.to_string(),
            dims,
            p,
            rng: StdRng::seed_from_u64(seed),
            training: true,
            mask: None,
        })
    }

    /// The drop probability.
    pub fn probability(&self) -> f32 {
        self.p
    }
}

impl Layer for Dropout {
    fn name(&self) -> &str {
        &self.name
    }

    fn spec(&self) -> LayerSpec {
        LayerSpec {
            name: self.name.clone(),
            kind: LayerKind::Activation,
            in_dims: self.dims,
            out_dims: self.dims,
        }
    }

    fn forward(&mut self, input: &Tensor) -> Result<Tensor> {
        if !self.training || self.p == 0.0 {
            self.mask = None;
            return Ok(input.clone());
        }
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let mask: Vec<f32> = (0..input.len())
            .map(|_| if self.rng.gen::<f32>() < keep { scale } else { 0.0 })
            .collect();
        let data = input.as_slice().iter().zip(&mask).map(|(&x, &m)| x * m).collect();
        self.mask = Some(mask);
        Ok(Tensor::from_vec(input.shape().clone(), data)?)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        match &self.mask {
            None => Ok(grad_out.clone()),
            Some(mask) => {
                if mask.len() != grad_out.len() {
                    return Err(NnError::BadInput {
                        layer: self.name.clone(),
                        reason: format!(
                            "gradient has {} entries, cached mask has {}",
                            grad_out.len(),
                            mask.len()
                        ),
                    });
                }
                let data = grad_out.as_slice().iter().zip(mask).map(|(&g, &m)| g * m).collect();
                Ok(Tensor::from_vec(grad_out.shape().clone(), data)?)
            }
        }
    }

    fn set_training(&mut self, training: bool) {
        self.training = training;
        if !training {
            self.mask = None;
        }
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lts_tensor::Shape;

    fn input(n: usize) -> Tensor {
        Tensor::ones(Shape::d2(1, n))
    }

    #[test]
    fn inference_mode_is_identity() {
        let mut d = Dropout::new("do", (64, 1, 1), 0.5, 1).unwrap();
        d.set_training(false);
        let x = input(64);
        assert_eq!(d.forward(&x).unwrap(), x);
    }

    #[test]
    fn training_mode_zeroes_about_p_and_rescales_the_rest() {
        let mut d = Dropout::new("do", (10_000, 1, 1), 0.5, 2).unwrap();
        let y = d.forward(&input(10_000)).unwrap();
        let zeros = y.as_slice().iter().filter(|&&v| v == 0.0).count();
        assert!((4_000..6_000).contains(&zeros), "{zeros} zeros");
        // Survivors are scaled by 2 so the expected value is preserved.
        assert!(y.as_slice().iter().all(|&v| v == 0.0 || (v - 2.0).abs() < 1e-6));
        let mean = lts_tensor::stats::mean(y.as_slice());
        assert!((mean - 1.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn backward_uses_the_same_mask() {
        let mut d = Dropout::new("do", (100, 1, 1), 0.3, 3).unwrap();
        let y = d.forward(&input(100)).unwrap();
        let g = d.backward(&input(100)).unwrap();
        for (yv, gv) in y.as_slice().iter().zip(g.as_slice()) {
            assert_eq!(yv == &0.0, gv == &0.0, "mask must match between passes");
        }
    }

    #[test]
    fn p_zero_is_identity_even_in_training() {
        let mut d = Dropout::new("do", (8, 1, 1), 0.0, 4).unwrap();
        let x = input(8);
        assert_eq!(d.forward(&x).unwrap(), x);
        assert_eq!(d.backward(&x).unwrap(), x);
    }

    #[test]
    fn invalid_probability_is_rejected() {
        assert!(Dropout::new("do", (8, 1, 1), 1.0, 0).is_err());
        assert!(Dropout::new("do", (8, 1, 1), -0.1, 0).is_err());
    }
}
