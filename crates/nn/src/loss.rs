//! Softmax cross-entropy loss.

use crate::{NnError, Result};
use lts_tensor::{ops, Shape, Tensor};

/// The value and gradient of a softmax cross-entropy loss over a batch.
#[derive(Debug, Clone, PartialEq)]
pub struct LossOutput {
    /// Mean loss over the batch.
    pub loss: f32,
    /// Gradient of the mean loss w.r.t. the logits, `[batch, classes]`.
    pub grad: Tensor,
    /// Number of samples whose argmax logit equals the label.
    pub correct: usize,
}

/// Computes softmax cross-entropy and its gradient for logits
/// `[batch, classes]` against integer labels.
///
/// The gradient is already divided by the batch size, so it can be fed
/// straight into `Network::backward`.
///
/// # Errors
///
/// Returns [`NnError::BadInput`] if `logits` is not rank 2, the label count
/// differs from the batch size, or a label is out of range.
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> Result<LossOutput> {
    if logits.shape().rank() != 2 {
        return Err(NnError::BadInput {
            layer: "loss".into(),
            reason: format!("logits must be [batch, classes], got {}", logits.shape()),
        });
    }
    let batch = logits.shape().dim(0);
    let classes = logits.shape().dim(1);
    if labels.len() != batch {
        return Err(NnError::BadInput {
            layer: "loss".into(),
            reason: format!("{} labels for batch of {batch}", labels.len()),
        });
    }
    if let Some(&bad) = labels.iter().find(|&&l| l >= classes) {
        return Err(NnError::BadInput {
            layer: "loss".into(),
            reason: format!("label {bad} out of range for {classes} classes"),
        });
    }
    let mut grad = Tensor::zeros(Shape::d2(batch, classes));
    let mut total_loss = 0.0f64;
    let mut correct = 0usize;
    let src = logits.as_slice();
    let g = grad.as_mut_slice();
    for b in 0..batch {
        let row = &src[b * classes..(b + 1) * classes];
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = row.iter().map(|&x| (x - max).exp()).collect();
        let sum: f32 = exps.iter().sum();
        let label = labels[b];
        let prob_label = exps[label] / sum;
        total_loss += -(prob_label.max(1e-12).ln() as f64);
        if ops::argmax(row).map(|(i, _)| i) == Some(label) {
            correct += 1;
        }
        for c in 0..classes {
            let p = exps[c] / sum;
            let y = if c == label { 1.0 } else { 0.0 };
            g[b * classes + c] = (p - y) / batch as f32;
        }
    }
    Ok(LossOutput { loss: (total_loss / batch as f64) as f32, grad, correct })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_classes_loss() {
        let logits = Tensor::zeros(Shape::d2(2, 4));
        let out = softmax_cross_entropy(&logits, &[0, 3]).unwrap();
        assert!((out.loss - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn confident_correct_prediction_has_low_loss() {
        let logits = Tensor::from_vec(Shape::d2(1, 3), vec![10.0, 0.0, 0.0]).unwrap();
        let out = softmax_cross_entropy(&logits, &[0]).unwrap();
        assert!(out.loss < 0.01);
        assert_eq!(out.correct, 1);
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        let logits = Tensor::from_vec(Shape::d2(2, 3), vec![1., 2., 3., -1., 0., 1.]).unwrap();
        let out = softmax_cross_entropy(&logits, &[2, 0]).unwrap();
        for b in 0..2 {
            let s: f32 = out.grad.as_slice()[b * 3..(b + 1) * 3].iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let mut logits = Tensor::from_vec(Shape::d2(1, 3), vec![0.3, -0.2, 0.8]).unwrap();
        let labels = [1usize];
        let out = softmax_cross_entropy(&logits, &labels).unwrap();
        let eps = 1e-3;
        for i in 0..3 {
            let base = logits.as_slice()[i];
            logits.as_mut_slice()[i] = base + eps;
            let lp = softmax_cross_entropy(&logits, &labels).unwrap().loss;
            logits.as_mut_slice()[i] = base - eps;
            let lm = softmax_cross_entropy(&logits, &labels).unwrap().loss;
            logits.as_mut_slice()[i] = base;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!((numeric - out.grad.as_slice()[i]).abs() < 1e-3);
        }
    }

    #[test]
    fn input_validation() {
        let logits = Tensor::zeros(Shape::d2(2, 3));
        assert!(softmax_cross_entropy(&logits, &[0]).is_err()); // wrong label count
        assert!(softmax_cross_entropy(&logits, &[0, 3]).is_err()); // label out of range
        assert!(softmax_cross_entropy(&Tensor::zeros(Shape::d1(3)), &[0]).is_err());
    }

    #[test]
    fn accuracy_counts_argmax_matches() {
        let logits = Tensor::from_vec(Shape::d2(2, 2), vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        let out = softmax_cross_entropy(&logits, &[0, 0]).unwrap();
        assert_eq!(out.correct, 1);
    }
}
