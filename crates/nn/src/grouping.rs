//! Producer-core × consumer-core block layout over weight tensors.
//!
//! Section IV-C-3 of the paper: "we firstly partition the weight matrix
//! into several groups of the same number as the square of the core
//! number". For a chip of `C` cores, the input units (channels or neurons,
//! produced by the previous layer and owned by their producer core) and the
//! output units (owned by their consumer core) are each split into `C`
//! contiguous blocks, giving `C × C` weight groups. Group `(p, c)` contains
//! exactly the weights that force core `p` to send data to core `c` — if
//! the whole group is zero, that transfer never happens.

use crate::descriptor::{LayerKind, LayerSpec};
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// Splits `n` units into `cores` contiguous, maximally even blocks.
///
/// The first `n % cores` blocks get one extra unit. Blocks may be empty
/// when `n < cores`.
pub fn even_blocks(n: usize, cores: usize) -> Vec<Range<usize>> {
    assert!(cores > 0, "cores must be positive");
    let base = n / cores;
    let extra = n % cores;
    let mut blocks = Vec::with_capacity(cores);
    let mut start = 0;
    for b in 0..cores {
        let size = base + usize::from(b < extra);
        blocks.push(start..start + size);
        start += size;
    }
    blocks
}

/// The block structure of one weight tensor for a `cores`-way partition.
///
/// Weights are addressed as `(out_unit, in_unit, tap)` with flat index
/// `(out * in_units + in) * taps + tap`; `taps = kh*kw` for convolutions
/// and `1` for fully-connected layers, matching the storage order of
/// [`crate::conv::Conv2d`] and [`crate::linear::Linear`].
///
/// # Examples
///
/// ```
/// use lts_nn::grouping::GroupLayout;
///
/// // An 8x8 FC weight matrix on 4 cores: 16 groups of 2x2 weights.
/// let layout = GroupLayout::new(8, 8, 1, 4);
/// assert_eq!(layout.group_len(0, 0), 4);
/// // Producer core 1 owns input neurons 2..4.
/// assert_eq!(layout.in_block(1), 2..4);
/// // A weight from input 2 to output 0 lives in group (producer 1, consumer 0).
/// assert_eq!(layout.producer_of(2), 1);
/// assert_eq!(layout.consumer_of(0), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroupLayout {
    cores: usize,
    out_units: usize,
    in_units: usize,
    taps: usize,
    out_blocks: Vec<Range<usize>>,
    in_blocks: Vec<Range<usize>>,
}

impl GroupLayout {
    /// Creates a layout for a weight tensor of `out_units × in_units ×
    /// taps` values partitioned over `cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if `cores == 0` or `taps == 0`.
    pub fn new(out_units: usize, in_units: usize, taps: usize, cores: usize) -> Self {
        assert!(cores > 0, "cores must be positive");
        assert!(taps > 0, "taps must be positive");
        Self {
            cores,
            out_units,
            in_units,
            taps,
            out_blocks: even_blocks(out_units, cores),
            in_blocks: even_blocks(in_units, cores),
        }
    }

    /// Creates a layout with explicit block boundaries.
    ///
    /// Used when input-unit ownership is dictated by the previous layer's
    /// output partition (e.g. a fully-connected layer following a
    /// flattened convolution: each producer core owns the pixels of its
    /// channels, which is not in general an even split of the flat
    /// vector).
    ///
    /// # Panics
    ///
    /// Panics if the block lists have different lengths, are not
    /// contiguous ascending partitions of `0..out_units` / `0..in_units`,
    /// or `taps == 0`.
    pub fn with_blocks(
        taps: usize,
        out_blocks: Vec<Range<usize>>,
        in_blocks: Vec<Range<usize>>,
    ) -> Self {
        assert!(taps > 0, "taps must be positive");
        assert_eq!(out_blocks.len(), in_blocks.len(), "one block per core on each axis");
        assert!(!out_blocks.is_empty(), "need at least one core");
        let check = |blocks: &[Range<usize>], what: &str| -> usize {
            let mut expected = 0;
            for b in blocks {
                assert_eq!(b.start, expected, "{what} blocks must be contiguous");
                assert!(b.end >= b.start, "{what} blocks must be ascending");
                expected = b.end;
            }
            expected
        };
        let out_units = check(&out_blocks, "output");
        let in_units = check(&in_blocks, "input");
        Self { cores: out_blocks.len(), out_units, in_units, taps, out_blocks, in_blocks }
    }

    /// Derives the layout from a layer spec.
    ///
    /// Returns `None` for layers without weights. Grouped convolutions are
    /// laid out over their *per-group* input channels (their weight tensor
    /// is already block-diagonal by construction).
    pub fn from_spec(spec: &LayerSpec, cores: usize) -> Option<Self> {
        match spec.kind {
            LayerKind::Conv { out_c, kernel, groups, .. } => {
                let in_per_group = spec.in_dims.0 / groups;
                Some(Self::new(out_c, in_per_group, kernel * kernel, cores))
            }
            LayerKind::Linear { in_f, out_f } => Some(Self::new(out_f, in_f, 1, cores)),
            _ => None,
        }
    }

    /// Number of cores (blocks per axis).
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// Total number of weight entries covered by the layout.
    pub fn weight_len(&self) -> usize {
        self.out_units * self.in_units * self.taps
    }

    /// Output units (channels/neurons).
    pub fn out_units(&self) -> usize {
        self.out_units
    }

    /// Input units (channels/neurons).
    pub fn in_units(&self) -> usize {
        self.in_units
    }

    /// Kernel taps per `(out, in)` pair.
    pub fn taps(&self) -> usize {
        self.taps
    }

    /// The output-unit range owned by consumer core `c`.
    pub fn out_block(&self, c: usize) -> Range<usize> {
        self.out_blocks[c].clone()
    }

    /// The input-unit range owned by producer core `p`.
    pub fn in_block(&self, p: usize) -> Range<usize> {
        self.in_blocks[p].clone()
    }

    /// The producer core that owns input unit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= in_units`.
    pub fn producer_of(&self, i: usize) -> usize {
        assert!(i < self.in_units, "input unit {i} out of range");
        self.in_blocks.iter().position(|r| r.contains(&i)).expect("blocks cover all units")
    }

    /// The consumer core that owns output unit `o`.
    ///
    /// # Panics
    ///
    /// Panics if `o >= out_units`.
    pub fn consumer_of(&self, o: usize) -> usize {
        assert!(o < self.out_units, "output unit {o} out of range");
        self.out_blocks.iter().position(|r| r.contains(&o)).expect("blocks cover all units")
    }

    /// Visits the flat weight index of every entry in group `(p, c)`.
    pub fn visit_group(&self, p: usize, c: usize, mut f: impl FnMut(usize)) {
        for o in self.out_blocks[c].clone() {
            for i in self.in_blocks[p].clone() {
                let base = (o * self.in_units + i) * self.taps;
                for t in 0..self.taps {
                    f(base + t);
                }
            }
        }
    }

    /// Number of weight entries in group `(p, c)`.
    pub fn group_len(&self, p: usize, c: usize) -> usize {
        self.out_blocks[c].len() * self.in_blocks[p].len() * self.taps
    }

    /// L2 norm of group `(p, c)` over the flat weight slice.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is shorter than [`GroupLayout::weight_len`].
    pub fn group_norm(&self, p: usize, c: usize, weights: &[f32]) -> f32 {
        let mut ss = 0.0f64;
        self.visit_group(p, c, |idx| {
            let w = weights[idx] as f64;
            ss += w * w;
        });
        ss.sqrt() as f32
    }

    /// Whether every weight in group `(p, c)` is exactly zero.
    pub fn group_is_zero(&self, p: usize, c: usize, weights: &[f32]) -> bool {
        let mut zero = true;
        self.visit_group(p, c, |idx| {
            if weights[idx] != 0.0 {
                zero = false;
            }
        });
        zero
    }

    /// The full `cores × cores` matrix of group norms (row = producer,
    /// column = consumer).
    pub fn norm_matrix(&self, weights: &[f32]) -> Vec<f32> {
        let mut m = vec![0.0; self.cores * self.cores];
        for p in 0..self.cores {
            for c in 0..self.cores {
                m[p * self.cores + c] = self.group_norm(p, c, weights);
            }
        }
        m
    }

    /// Whether input unit `i` feeds any nonzero weight of consumer core `c`.
    ///
    /// This is the fine-grained traffic test: producer `owner(i)` must send
    /// unit `i`'s activation to core `c` only if this returns `true`.
    pub fn in_unit_used_by(&self, i: usize, c: usize, weights: &[f32]) -> bool {
        for o in self.out_blocks[c].clone() {
            let base = (o * self.in_units + i) * self.taps;
            if weights[base..base + self.taps].iter().any(|&w| w != 0.0) {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::SpecBuilder;

    #[test]
    fn even_blocks_cover_everything_without_overlap() {
        let blocks = even_blocks(10, 4);
        assert_eq!(blocks, vec![0..3, 3..6, 6..8, 8..10]);
        let blocks = even_blocks(3, 4);
        assert_eq!(blocks[3], 3..3); // empty trailing block
    }

    #[test]
    fn producer_consumer_lookup() {
        let l = GroupLayout::new(8, 8, 1, 4);
        assert_eq!(l.producer_of(0), 0);
        assert_eq!(l.producer_of(7), 3);
        assert_eq!(l.consumer_of(3), 1);
    }

    #[test]
    fn visit_group_touches_exactly_group_len_indices() {
        let l = GroupLayout::new(4, 6, 9, 2);
        let mut count = 0;
        l.visit_group(1, 0, |_| count += 1);
        assert_eq!(count, l.group_len(1, 0));
        assert_eq!(l.group_len(1, 0), 2 * 3 * 9);
    }

    #[test]
    fn groups_partition_the_weight_tensor() {
        let l = GroupLayout::new(5, 7, 4, 3);
        let mut seen = vec![0u8; l.weight_len()];
        for p in 0..3 {
            for c in 0..3 {
                l.visit_group(p, c, |idx| seen[idx] += 1);
            }
        }
        assert!(seen.iter().all(|&s| s == 1), "every weight in exactly one group");
    }

    #[test]
    fn group_norm_matches_manual() {
        let l = GroupLayout::new(2, 2, 1, 2);
        // weight[(o,i)] flat = o*2+i; groups are single entries.
        let w = [3.0, 0.0, 0.0, 4.0];
        assert_eq!(l.group_norm(0, 0, &w), 3.0); // (p=0,c=0) -> o=0,i=0
        assert_eq!(l.group_norm(1, 1, &w), 4.0); // o=1,i=1
        assert_eq!(l.group_norm(1, 0, &w), 0.0);
        assert!(l.group_is_zero(1, 0, &w));
        assert!(!l.group_is_zero(0, 0, &w));
    }

    #[test]
    fn norm_matrix_is_row_producer_col_consumer() {
        let l = GroupLayout::new(2, 2, 1, 2);
        let w = [0.0, 5.0, 0.0, 0.0]; // only weight (o=0, i=1): producer 1 -> consumer 0
        let m = l.norm_matrix(&w);
        assert_eq!(m, vec![0.0, 0.0, 5.0, 0.0]);
    }

    #[test]
    fn in_unit_used_by_detects_nonzero_columns() {
        let l = GroupLayout::new(2, 2, 2, 2);
        // taps = 2; weight (o=1, i=0, t=1) nonzero: index (o*in + i)*taps + t.
        let mut w = vec![0.0; 8];
        w[2 * 2 + 1] = 0.7;
        assert!(l.in_unit_used_by(0, 1, &w)); // consumer core 1 owns o=1
        assert!(!l.in_unit_used_by(0, 0, &w));
        assert!(!l.in_unit_used_by(1, 1, &w));
    }

    #[test]
    fn with_blocks_accepts_uneven_ownership() {
        // 3 cores, outputs split 2/2/2 but inputs split 4/1/1.
        let l = GroupLayout::with_blocks(1, vec![0..2, 2..4, 4..6], vec![0..4, 4..5, 5..6]);
        assert_eq!(l.cores(), 3);
        assert_eq!(l.in_units(), 6);
        assert_eq!(l.producer_of(3), 0);
        assert_eq!(l.producer_of(4), 1);
        // Still a partition of the weight tensor.
        let mut seen = vec![0u8; l.weight_len()];
        for p in 0..3 {
            for c in 0..3 {
                l.visit_group(p, c, |idx| seen[idx] += 1);
            }
        }
        assert!(seen.iter().all(|&s| s == 1));
    }

    #[test]
    #[should_panic(expected = "contiguous")]
    fn with_blocks_rejects_gaps() {
        GroupLayout::with_blocks(1, vec![0..2, 3..4], vec![0..1, 1..2]);
    }

    #[test]
    fn from_spec_handles_conv_linear_and_others() {
        let spec = SpecBuilder::new("n", (8, 8, 8))
            .conv("c", 16, 3, 1, 1, 1)
            .pool("p", 2, 2)
            .flatten()
            .linear("l", 10)
            .build();
        let conv_layout = GroupLayout::from_spec(spec.layer("c").unwrap(), 4).unwrap();
        assert_eq!(conv_layout.taps(), 9);
        assert_eq!(conv_layout.in_units(), 8);
        assert_eq!(conv_layout.out_units(), 16);
        let lin_layout = GroupLayout::from_spec(spec.layer("l").unwrap(), 4).unwrap();
        assert_eq!(lin_layout.taps(), 1);
        assert!(GroupLayout::from_spec(spec.layer("p").unwrap(), 4).is_none());
    }

    #[test]
    fn grouped_conv_uses_per_group_input_channels() {
        let spec = SpecBuilder::new("n", (8, 8, 8)).conv("c", 16, 3, 1, 1, 4).build();
        let layout = GroupLayout::from_spec(spec.layer("c").unwrap(), 4).unwrap();
        assert_eq!(layout.in_units(), 2); // 8 / 4 groups
        assert_eq!(layout.weight_len(), spec.layer("c").unwrap().weight_count());
    }
}
