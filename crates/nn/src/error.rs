//! Error type for the nn crate.

use lts_tensor::TensorError;
use std::error::Error;
use std::fmt;

/// Errors produced while building, running, or training networks.
#[derive(Debug, Clone, PartialEq)]
pub enum NnError {
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// A layer received an input whose shape it cannot process.
    BadInput {
        /// Name of the offending layer.
        layer: String,
        /// Human-readable description of the mismatch.
        reason: String,
    },
    /// An invalid layer or network configuration.
    BadConfig(String),
    /// `backward` was called before `forward` cached its inputs.
    BackwardBeforeForward {
        /// Name of the offending layer.
        layer: String,
    },
    /// A network snapshot could not be captured or serialized.
    SaveFailed(String),
    /// A persisted snapshot failed parsing or validation.
    MalformedSnapshot(String),
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::Tensor(e) => write!(f, "tensor error: {e}"),
            NnError::BadInput { layer, reason } => {
                write!(f, "layer `{layer}` received bad input: {reason}")
            }
            NnError::BadConfig(msg) => write!(f, "bad configuration: {msg}"),
            NnError::BackwardBeforeForward { layer } => {
                write!(f, "layer `{layer}`: backward called before forward")
            }
            NnError::SaveFailed(msg) => write!(f, "could not save network: {msg}"),
            NnError::MalformedSnapshot(msg) => write!(f, "malformed network snapshot: {msg}"),
        }
    }
}

impl Error for NnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NnError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for NnError {
    fn from(e: TensorError) -> Self {
        NnError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_layer_name() {
        let e = NnError::BadInput { layer: "conv1".into(), reason: "rank 2".into() };
        assert!(e.to_string().contains("conv1"));
    }

    #[test]
    fn tensor_errors_convert() {
        let te = TensorError::InvalidArgument("x".into());
        let ne: NnError = te.clone().into();
        assert_eq!(ne, NnError::Tensor(te));
    }

    #[test]
    fn snapshot_errors_render_their_context() {
        assert!(NnError::SaveFailed("no params".into()).to_string().contains("no params"));
        let e = NnError::MalformedSnapshot("truncated".into());
        assert!(e.to_string().contains("malformed network snapshot"));
        assert!(e.to_string().contains("truncated"));
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_bounds<T: Send + Sync>() {}
        assert_bounds::<NnError>();
    }
}
