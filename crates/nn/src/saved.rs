//! Serializable snapshots of trained networks.
//!
//! `Box<dyn Layer>` cannot derive serde, so persistence goes through
//! [`SavedNetwork`]: the analytic [`NetworkSpec`] plus every layer's
//! parameters and freeze masks. Training-only layers (dropout) are
//! represented by their identity inference behaviour and reloaded as
//! plain activations, so a saved network is the *deployment* artifact —
//! exactly what would be burned into the accelerator cores' buffers.
//!
//! # Examples
//!
//! ```
//! use lts_nn::models;
//! use lts_nn::saved::SavedNetwork;
//!
//! # fn main() -> Result<(), lts_nn::NnError> {
//! let net = models::mlp(16, 4, 3)?;
//! let saved = SavedNetwork::from_network(&net)?;
//! let json = saved.to_json()?;
//! let restored = SavedNetwork::from_json(&json)?.into_network()?;
//! assert_eq!(
//!     restored.layer_weight("ip1").unwrap().value,
//!     net.layer_weight("ip1").unwrap().value
//! );
//! # Ok(())
//! # }
//! ```

use crate::descriptor::{LayerKind, NetworkSpec};
use crate::network::{Network, NetworkBuilder};
use crate::{NnError, Result};
use lts_tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::fs;
use std::path::Path;

/// Magic tag heading every snapshot file; bump on format changes.
const SNAPSHOT_MAGIC: &str = "LTS-SNAPSHOT-V1";

/// FNV-1a 64-bit hash of `bytes` — the snapshot content checksum.
///
/// Public because downstream crates reuse the same content-hash for
/// golden fingerprints and the simulation memoization cache key.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Atomically writes `payload` to `path` under a checksum envelope.
///
/// The file starts with one header line — `LTS-SNAPSHOT-V1 <16-hex
/// fnv-1a-64 of the payload>` — followed by the payload itself. The
/// bytes go to a sibling `<name>.tmp` first and are renamed into place,
/// so a crash mid-write leaves the previous snapshot (or nothing)
/// behind, never a half-written file under the final name.
///
/// # Errors
///
/// Returns [`NnError::SaveFailed`] for paths without a file name and
/// for filesystem errors (the temporary file is removed best-effort if
/// the rename fails).
pub fn write_snapshot_file(path: &Path, payload: &str) -> Result<()> {
    let name = path.file_name().and_then(|n| n.to_str()).ok_or_else(|| {
        NnError::SaveFailed(format!("snapshot path `{}` has no file name", path.display()))
    })?;
    let tmp = path.with_file_name(format!("{name}.tmp"));
    let envelope = format!("{SNAPSHOT_MAGIC} {:016x}\n{payload}", fnv1a64(payload.as_bytes()));
    fs::write(&tmp, envelope)
        .map_err(|e| NnError::SaveFailed(format!("cannot write `{}`: {e}", tmp.display())))?;
    fs::rename(&tmp, path).map_err(|e| {
        let _ = fs::remove_file(&tmp);
        NnError::SaveFailed(format!("cannot move snapshot into `{}`: {e}", path.display()))
    })
}

/// Reads a snapshot file written by [`write_snapshot_file`], verifying
/// the checksum envelope, and returns the payload.
///
/// # Errors
///
/// Returns [`NnError::MalformedSnapshot`] for unreadable files, missing
/// or unrecognized headers, and — most importantly — payloads whose
/// recomputed checksum disagrees with the header: a truncated or
/// bit-flipped snapshot is rejected here instead of deploying a corrupt
/// model.
pub fn read_snapshot_file(path: &Path) -> Result<String> {
    let text = fs::read_to_string(path).map_err(|e| {
        NnError::MalformedSnapshot(format!("cannot read `{}`: {e}", path.display()))
    })?;
    let (header, payload) = text.split_once('\n').ok_or_else(|| {
        NnError::MalformedSnapshot(format!("`{}` has no envelope header line", path.display()))
    })?;
    let declared = header
        .strip_prefix(SNAPSHOT_MAGIC)
        .map(str::trim)
        .and_then(|hex| u64::from_str_radix(hex, 16).ok())
        .ok_or_else(|| {
            NnError::MalformedSnapshot(format!(
                "`{}` does not start with `{SNAPSHOT_MAGIC} <checksum>`",
                path.display()
            ))
        })?;
    let actual = fnv1a64(payload.as_bytes());
    if actual != declared {
        return Err(NnError::MalformedSnapshot(format!(
            "`{}` checksum mismatch: header says {declared:016x}, payload hashes to \
             {actual:016x} (truncated or corrupted file)",
            path.display()
        )));
    }
    Ok(payload.to_string())
}

/// One layer's persisted parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SavedParams {
    /// Layer name.
    pub layer: String,
    /// Weight tensor.
    pub weight: Tensor,
    /// Bias tensor.
    pub bias: Tensor,
    /// Indices of frozen (pruned) weight entries.
    pub frozen_weight_indices: Vec<usize>,
}

/// A serializable snapshot of a network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SavedNetwork {
    /// The layer-chain description.
    pub spec: NetworkSpec,
    /// Parameters of every weight-bearing layer, in order.
    pub params: Vec<SavedParams>,
}

impl SavedNetwork {
    /// Captures a network's structure and parameters.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::SaveFailed`] when a weight-bearing layer of the
    /// spec cannot be captured (missing from the network, or missing its
    /// weight/bias parameters) — a silently incomplete snapshot would
    /// deploy a wrong model.
    pub fn from_network(net: &Network) -> Result<Self> {
        let spec = net.spec();
        let mut params = Vec::new();
        for l in spec.layers.iter().filter(|l| l.has_weights()) {
            let layer = net.layer(&l.name).ok_or_else(|| {
                NnError::SaveFailed(format!("weight-bearing layer `{}` not in the network", l.name))
            })?;
            let ps = layer.params();
            let (weight, bias) = match (ps.first(), ps.get(1)) {
                (Some(w), Some(b)) => (w, b),
                _ => {
                    return Err(NnError::SaveFailed(format!(
                        "layer `{}` exposes {} parameters, expected weight and bias",
                        l.name,
                        ps.len()
                    )))
                }
            };
            let frozen_weight_indices = weight
                .frozen_mask()
                .map(|mask| mask.iter().enumerate().filter_map(|(i, &f)| f.then_some(i)).collect())
                .unwrap_or_default();
            params.push(SavedParams {
                layer: l.name.clone(),
                weight: weight.value.clone(),
                bias: bias.value.clone(),
                frozen_weight_indices,
            });
        }
        Ok(Self { spec, params })
    }

    /// Checks the snapshot's internal consistency: every weight-bearing
    /// spec layer has exactly one parameter entry (no missing, duplicate
    /// or unknown entries), entries follow spec order, and frozen indices
    /// address real weight entries.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::MalformedSnapshot`] describing the first
    /// inconsistency found.
    pub fn validate(&self) -> Result<()> {
        let expected: Vec<&str> =
            self.spec.layers.iter().filter(|l| l.has_weights()).map(|l| l.name.as_str()).collect();
        let got: Vec<&str> = self.params.iter().map(|p| p.layer.as_str()).collect();
        if expected != got {
            return Err(NnError::MalformedSnapshot(format!(
                "parameter entries {got:?} do not match the spec's weight-bearing layers \
                 {expected:?}"
            )));
        }
        for p in &self.params {
            let len = p.weight.len();
            if let Some(&bad) = p.frozen_weight_indices.iter().find(|&&i| i >= len) {
                return Err(NnError::MalformedSnapshot(format!(
                    "layer `{}` freezes weight index {bad}, but the weight tensor has only {len} \
                     entries",
                    p.layer
                )));
            }
        }
        Ok(())
    }

    /// Rebuilds a runnable network (fresh momentum/grad state).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::MalformedSnapshot`] if the snapshot fails
    /// [`SavedNetwork::validate`], and [`NnError::BadConfig`] if the
    /// rebuilt layers disagree with the persisted parameter shapes.
    pub fn into_network(self) -> Result<Network> {
        self.validate()?;
        let mut builder = NetworkBuilder::new(&self.spec.name, self.spec.input);
        for layer in &self.spec.layers {
            builder = match layer.kind {
                LayerKind::Conv { out_c, kernel, stride, pad, groups } => {
                    builder.conv(&layer.name, out_c, kernel, stride, pad, groups)
                }
                LayerKind::Linear { out_f, .. } => builder.linear(&layer.name, out_f),
                LayerKind::Pool { kernel, stride, average: false } => {
                    builder.pool(&layer.name, kernel, stride)
                }
                LayerKind::Pool { kernel, stride, average: true } => {
                    builder.avg_pool(&layer.name, kernel, stride)
                }
                LayerKind::Activation => builder.relu(),
                LayerKind::Flatten => builder.flatten(),
            };
        }
        // Weights get overwritten below; the init RNG seed is irrelevant.
        let mut rng = lts_tensor::init::rng(0);
        let mut net = builder.build(&mut rng)?;
        for saved in self.params {
            let layer = net.layer_mut(&saved.layer).ok_or_else(|| {
                NnError::BadConfig(format!("snapshot layer `{}` not reconstructible", saved.layer))
            })?;
            let mut params = layer.params_mut();
            if params.len() < 2 {
                return Err(NnError::BadConfig(format!(
                    "snapshot layer `{}` lacks weight/bias parameters",
                    saved.layer
                )));
            }
            if params[0].value.shape() != saved.weight.shape()
                || params[1].value.shape() != saved.bias.shape()
            {
                return Err(NnError::BadConfig(format!(
                    "snapshot layer `{}` parameter shapes disagree with the rebuilt network",
                    saved.layer
                )));
            }
            params[0].value = saved.weight;
            if !saved.frozen_weight_indices.is_empty() {
                params[0].freeze_indices(&saved.frozen_weight_indices);
            }
            params[1].value = saved.bias;
        }
        Ok(net)
    }

    /// Serializes to a JSON string.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::SaveFailed`] if serialization fails (cannot
    /// happen for well-formed snapshots).
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string(self).map_err(|e| NnError::SaveFailed(e.to_string()))
    }

    /// Deserializes and validates a snapshot from a JSON string.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::MalformedSnapshot`] for unparsable input and
    /// for snapshots that parse but fail [`SavedNetwork::validate`]
    /// (e.g. truncated parameter lists or out-of-range freeze indices).
    pub fn from_json(json: &str) -> Result<Self> {
        let saved: Self =
            serde_json::from_str(json).map_err(|e| NnError::MalformedSnapshot(e.to_string()))?;
        saved.validate()?;
        Ok(saved)
    }

    /// Persists the snapshot to `path` atomically (checksum envelope,
    /// temp-file + rename — see [`write_snapshot_file`]).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::SaveFailed`] for serialization or filesystem
    /// failures.
    pub fn save_to_file(&self, path: &Path) -> Result<()> {
        write_snapshot_file(path, &self.to_json()?)
    }

    /// Loads and validates a snapshot from a file written by
    /// [`SavedNetwork::save_to_file`].
    ///
    /// # Errors
    ///
    /// Returns [`NnError::MalformedSnapshot`] for missing files, bad
    /// envelopes, checksum mismatches, and snapshots that parse but fail
    /// [`SavedNetwork::validate`].
    pub fn load_from_file(path: &Path) -> Result<Self> {
        Self::from_json(&read_snapshot_file(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grouping::GroupLayout;
    use crate::models;
    use crate::prune::{prune_groups, PruneCriterion};
    use lts_tensor::{init, Shape};

    #[test]
    fn roundtrip_preserves_forward_outputs() {
        let mut net = models::lenet(10, 4).unwrap();
        let x = init::uniform(Shape::d4(2, 1, 28, 28), 1.0, &mut init::rng(1));
        let y1 = net.forward(&x).unwrap();
        let mut restored = SavedNetwork::from_network(&net).unwrap().into_network().unwrap();
        let y2 = restored.forward(&x).unwrap();
        assert_eq!(y1, y2);
    }

    #[test]
    fn roundtrip_preserves_freeze_masks() {
        let mut net = models::mlp(16, 4, 2).unwrap();
        let layout = GroupLayout::new(304, 512, 1, 4);
        let param = net.layer_weight_mut("ip2").unwrap();
        prune_groups(param, &layout, PruneCriterion::SmallestFraction(0.5)).unwrap();
        let frozen_before = net.layer_weight("ip2").unwrap().frozen_count();
        assert!(frozen_before > 0);
        let restored = SavedNetwork::from_network(&net).unwrap().into_network().unwrap();
        assert_eq!(restored.layer_weight("ip2").unwrap().frozen_count(), frozen_before);
        // Frozen entries are still exactly zero.
        let w = restored.layer_weight("ip2").unwrap();
        for i in 0..w.len() {
            if w.is_frozen(i) {
                assert_eq!(w.value.as_slice()[i], 0.0);
            }
        }
    }

    #[test]
    fn json_roundtrip() {
        let net = models::mlp(16, 4, 9).unwrap();
        let saved = SavedNetwork::from_network(&net).unwrap();
        let json = saved.to_json().unwrap();
        let parsed = SavedNetwork::from_json(&json).unwrap();
        assert_eq!(saved, parsed);
        assert!(matches!(SavedNetwork::from_json("{bad json"), Err(NnError::MalformedSnapshot(_))));
    }

    #[test]
    fn truncated_json_is_a_malformed_snapshot() {
        let net = models::mlp(16, 4, 9).unwrap();
        let json = SavedNetwork::from_network(&net).unwrap().to_json().unwrap();
        let truncated = &json[..json.len() / 2];
        assert!(matches!(SavedNetwork::from_json(truncated), Err(NnError::MalformedSnapshot(_))));
    }

    #[test]
    fn missing_and_unknown_param_entries_fail_validation() {
        let net = models::mlp(16, 4, 9).unwrap();
        let saved = SavedNetwork::from_network(&net).unwrap();
        // Dropping a layer's parameters must be caught...
        let mut missing = saved.clone();
        missing.params.remove(0);
        assert!(matches!(missing.validate(), Err(NnError::MalformedSnapshot(_))));
        assert!(missing.into_network().is_err());
        // ...as must a duplicated entry...
        let mut duplicated = saved.clone();
        let extra = duplicated.params[0].clone();
        duplicated.params.push(extra);
        assert!(matches!(duplicated.validate(), Err(NnError::MalformedSnapshot(_))));
        // ...and an entry for a layer the spec does not know.
        let mut unknown = saved;
        unknown.params[0].layer = "phantom".into();
        assert!(matches!(unknown.validate(), Err(NnError::MalformedSnapshot(_))));
    }

    #[test]
    fn out_of_range_freeze_indices_fail_validation() {
        let net = models::mlp(16, 4, 9).unwrap();
        let mut saved = SavedNetwork::from_network(&net).unwrap();
        let len = saved.params[0].weight.len();
        saved.params[0].frozen_weight_indices.push(len);
        let err = saved.validate().unwrap_err();
        assert!(matches!(err, NnError::MalformedSnapshot(_)));
        assert!(err.to_string().contains("freezes weight index"), "{err}");
        // And the same snapshot round-tripped through JSON is rejected
        // at parse time, before any network is built.
        let mut net2 = models::mlp(16, 4, 9).unwrap();
        let mut saved2 = SavedNetwork::from_network(&net2).unwrap();
        saved2.params[0].frozen_weight_indices.push(usize::MAX);
        let json = saved2.to_json().unwrap();
        assert!(matches!(SavedNetwork::from_json(&json), Err(NnError::MalformedSnapshot(_))));
        // The original network is untouched and still runs.
        let x = init::uniform(Shape::d2(1, 16), 1.0, &mut init::rng(2));
        assert!(net2.forward(&x).is_ok());
    }

    /// A unique scratch path in the system temp dir (no tempfile dep).
    fn scratch(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("lts-saved-{}-{name}", std::process::id()))
    }

    #[test]
    fn file_roundtrip_is_atomic_and_checksummed() {
        let net = models::mlp(16, 4, 9).unwrap();
        let saved = SavedNetwork::from_network(&net).unwrap();
        let path = scratch("roundtrip.snap");
        saved.save_to_file(&path).unwrap();
        // The temp file was renamed away, not left behind.
        assert!(!path.with_file_name("roundtrip.snap.tmp").exists());
        let loaded = SavedNetwork::load_from_file(&path).unwrap();
        assert_eq!(saved, loaded);
        // Saving over an existing snapshot replaces it in one step.
        saved.save_to_file(&path).unwrap();
        assert_eq!(SavedNetwork::load_from_file(&path).unwrap(), saved);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupted_snapshot_files_are_rejected() {
        let net = models::mlp(16, 4, 9).unwrap();
        let saved = SavedNetwork::from_network(&net).unwrap();
        let path = scratch("corrupt.snap");
        saved.save_to_file(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        // Flip one payload byte: checksum must catch it.
        let mut flipped = text.clone().into_bytes();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x01;
        std::fs::write(&path, flipped).unwrap();
        let err = SavedNetwork::load_from_file(&path).unwrap_err();
        assert!(matches!(err, NnError::MalformedSnapshot(_)));
        assert!(err.to_string().contains("checksum mismatch"), "{err}");
        // Truncation (simulated torn write) is also a checksum mismatch.
        std::fs::write(&path, &text[..text.len() - 40]).unwrap();
        assert!(matches!(SavedNetwork::load_from_file(&path), Err(NnError::MalformedSnapshot(_))));
        // A file with the wrong magic is rejected up front...
        std::fs::write(&path, "BOGUS-MAGIC 0123\n{}").unwrap();
        let err = SavedNetwork::load_from_file(&path).unwrap_err();
        assert!(err.to_string().contains("LTS-SNAPSHOT-V1"), "{err}");
        // ...as is one with no header line at all.
        std::fs::write(&path, "{}").unwrap();
        let err = SavedNetwork::load_from_file(&path).unwrap_err();
        assert!(err.to_string().contains("envelope header"), "{err}");
        // And a missing file is a malformed snapshot, not a panic.
        std::fs::remove_file(&path).unwrap();
        assert!(matches!(SavedNetwork::load_from_file(&path), Err(NnError::MalformedSnapshot(_))));
    }

    #[test]
    fn checksum_is_stable_fnv1a() {
        // Pinned vectors so the on-disk format never drifts silently.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn avg_pool_roundtrips_as_avg_pool() {
        let mut rng = init::rng(0);
        let mut net = NetworkBuilder::new("a", (1, 8, 8))
            .conv("c", 2, 3, 1, 1, 1)
            .avg_pool("ap", 2, 2)
            .flatten()
            .linear("ip", 3)
            .build(&mut rng)
            .unwrap();
        let x = init::uniform(Shape::d4(1, 1, 8, 8), 1.0, &mut init::rng(5));
        let y1 = net.forward(&x).unwrap();
        let mut restored = SavedNetwork::from_network(&net).unwrap().into_network().unwrap();
        let y2 = restored.forward(&x).unwrap();
        assert_eq!(y1, y2);
        // The spec marks the pool as average.
        let spec = restored.spec();
        assert!(matches!(spec.layer("ap").unwrap().kind, LayerKind::Pool { average: true, .. }));
    }
}
