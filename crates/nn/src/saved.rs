//! Serializable snapshots of trained networks.
//!
//! `Box<dyn Layer>` cannot derive serde, so persistence goes through
//! [`SavedNetwork`]: the analytic [`NetworkSpec`] plus every layer's
//! parameters and freeze masks. Training-only layers (dropout) are
//! represented by their identity inference behaviour and reloaded as
//! plain activations, so a saved network is the *deployment* artifact —
//! exactly what would be burned into the accelerator cores' buffers.
//!
//! # Examples
//!
//! ```
//! use lts_nn::models;
//! use lts_nn::saved::SavedNetwork;
//!
//! # fn main() -> Result<(), lts_nn::NnError> {
//! let net = models::mlp(16, 4, 3)?;
//! let saved = SavedNetwork::from_network(&net);
//! let json = saved.to_json().expect("serializable");
//! let restored = SavedNetwork::from_json(&json).expect("parsable").into_network()?;
//! assert_eq!(
//!     restored.layer_weight("ip1").unwrap().value,
//!     net.layer_weight("ip1").unwrap().value
//! );
//! # Ok(())
//! # }
//! ```

use crate::descriptor::{LayerKind, NetworkSpec};
use crate::network::{Network, NetworkBuilder};
use crate::{NnError, Result};
use lts_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// One layer's persisted parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SavedParams {
    /// Layer name.
    pub layer: String,
    /// Weight tensor.
    pub weight: Tensor,
    /// Bias tensor.
    pub bias: Tensor,
    /// Indices of frozen (pruned) weight entries.
    pub frozen_weight_indices: Vec<usize>,
}

/// A serializable snapshot of a network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SavedNetwork {
    /// The layer-chain description.
    pub spec: NetworkSpec,
    /// Parameters of every weight-bearing layer, in order.
    pub params: Vec<SavedParams>,
}

impl SavedNetwork {
    /// Captures a network's structure and parameters.
    pub fn from_network(net: &Network) -> Self {
        let spec = net.spec();
        let params = spec
            .layers
            .iter()
            .filter(|l| l.has_weights())
            .filter_map(|l| {
                let layer = net.layer(&l.name)?;
                let ps = layer.params();
                let weight = ps.first()?;
                let bias = ps.get(1)?;
                let frozen_weight_indices = weight
                    .frozen_mask()
                    .map(|mask| {
                        mask.iter().enumerate().filter_map(|(i, &f)| f.then_some(i)).collect()
                    })
                    .unwrap_or_default();
                Some(SavedParams {
                    layer: l.name.clone(),
                    weight: weight.value.clone(),
                    bias: bias.value.clone(),
                    frozen_weight_indices,
                })
            })
            .collect();
        Self { spec, params }
    }

    /// Rebuilds a runnable network (fresh momentum/grad state).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] if the snapshot is internally
    /// inconsistent (missing parameters, shape mismatches).
    pub fn into_network(self) -> Result<Network> {
        let mut builder = NetworkBuilder::new(&self.spec.name, self.spec.input);
        for layer in &self.spec.layers {
            builder = match layer.kind {
                LayerKind::Conv { out_c, kernel, stride, pad, groups } => {
                    builder.conv(&layer.name, out_c, kernel, stride, pad, groups)
                }
                LayerKind::Linear { out_f, .. } => builder.linear(&layer.name, out_f),
                LayerKind::Pool { kernel, stride, average: false } => {
                    builder.pool(&layer.name, kernel, stride)
                }
                LayerKind::Pool { kernel, stride, average: true } => {
                    builder.avg_pool(&layer.name, kernel, stride)
                }
                LayerKind::Activation => builder.relu(),
                LayerKind::Flatten => builder.flatten(),
            };
        }
        // Weights get overwritten below; the init RNG seed is irrelevant.
        let mut rng = lts_tensor::init::rng(0);
        let mut net = builder.build(&mut rng)?;
        for saved in self.params {
            let layer = net.layer_mut(&saved.layer).ok_or_else(|| {
                NnError::BadConfig(format!("snapshot layer `{}` not reconstructible", saved.layer))
            })?;
            let mut params = layer.params_mut();
            if params.len() < 2 {
                return Err(NnError::BadConfig(format!(
                    "snapshot layer `{}` lacks weight/bias parameters",
                    saved.layer
                )));
            }
            if params[0].value.shape() != saved.weight.shape()
                || params[1].value.shape() != saved.bias.shape()
            {
                return Err(NnError::BadConfig(format!(
                    "snapshot layer `{}` parameter shapes disagree with the rebuilt network",
                    saved.layer
                )));
            }
            params[0].value = saved.weight;
            if !saved.frozen_weight_indices.is_empty() {
                params[0].freeze_indices(&saved.frozen_weight_indices);
            }
            params[1].value = saved.bias;
        }
        Ok(net)
    }

    /// Serializes to a JSON string.
    ///
    /// # Errors
    ///
    /// Returns a serde error message if serialization fails (cannot happen
    /// for well-formed snapshots).
    pub fn to_json(&self) -> std::result::Result<String, String> {
        serde_json::to_string(self).map_err(|e| e.to_string())
    }

    /// Deserializes from a JSON string.
    ///
    /// # Errors
    ///
    /// Returns the parse error message for malformed input.
    pub fn from_json(json: &str) -> std::result::Result<Self, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grouping::GroupLayout;
    use crate::models;
    use crate::prune::{prune_groups, PruneCriterion};
    use lts_tensor::{init, Shape};

    #[test]
    fn roundtrip_preserves_forward_outputs() {
        let mut net = models::lenet(10, 4).unwrap();
        let x = init::uniform(Shape::d4(2, 1, 28, 28), 1.0, &mut init::rng(1));
        let y1 = net.forward(&x).unwrap();
        let mut restored = SavedNetwork::from_network(&net).into_network().unwrap();
        let y2 = restored.forward(&x).unwrap();
        assert_eq!(y1, y2);
    }

    #[test]
    fn roundtrip_preserves_freeze_masks() {
        let mut net = models::mlp(16, 4, 2).unwrap();
        let layout = GroupLayout::new(304, 512, 1, 4);
        let param = net.layer_weight_mut("ip2").unwrap();
        prune_groups(param, &layout, PruneCriterion::SmallestFraction(0.5)).unwrap();
        let frozen_before = net.layer_weight("ip2").unwrap().frozen_count();
        assert!(frozen_before > 0);
        let restored = SavedNetwork::from_network(&net).into_network().unwrap();
        assert_eq!(restored.layer_weight("ip2").unwrap().frozen_count(), frozen_before);
        // Frozen entries are still exactly zero.
        let w = restored.layer_weight("ip2").unwrap();
        for i in 0..w.len() {
            if w.is_frozen(i) {
                assert_eq!(w.value.as_slice()[i], 0.0);
            }
        }
    }

    #[test]
    fn json_roundtrip() {
        let net = models::mlp(16, 4, 9).unwrap();
        let saved = SavedNetwork::from_network(&net);
        let json = saved.to_json().unwrap();
        let parsed = SavedNetwork::from_json(&json).unwrap();
        assert_eq!(saved, parsed);
        assert!(SavedNetwork::from_json("{bad json").is_err());
    }

    #[test]
    fn avg_pool_roundtrips_as_avg_pool() {
        let mut rng = init::rng(0);
        let mut net = NetworkBuilder::new("a", (1, 8, 8))
            .conv("c", 2, 3, 1, 1, 1)
            .avg_pool("ap", 2, 2)
            .flatten()
            .linear("ip", 3)
            .build(&mut rng)
            .unwrap();
        let x = init::uniform(Shape::d4(1, 1, 8, 8), 1.0, &mut init::rng(5));
        let y1 = net.forward(&x).unwrap();
        let mut restored = SavedNetwork::from_network(&net).into_network().unwrap();
        let y2 = restored.forward(&x).unwrap();
        assert_eq!(y1, y2);
        // The spec marks the pool as average.
        let spec = restored.spec();
        assert!(matches!(spec.layer("ap").unwrap().kind, LayerKind::Pool { average: true, .. }));
    }
}
