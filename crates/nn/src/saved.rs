//! Serializable snapshots of trained networks.
//!
//! `Box<dyn Layer>` cannot derive serde, so persistence goes through
//! [`SavedNetwork`]: the analytic [`NetworkSpec`] plus every layer's
//! parameters and freeze masks. Training-only layers (dropout) are
//! represented by their identity inference behaviour and reloaded as
//! plain activations, so a saved network is the *deployment* artifact —
//! exactly what would be burned into the accelerator cores' buffers.
//!
//! # Examples
//!
//! ```
//! use lts_nn::models;
//! use lts_nn::saved::SavedNetwork;
//!
//! # fn main() -> Result<(), lts_nn::NnError> {
//! let net = models::mlp(16, 4, 3)?;
//! let saved = SavedNetwork::from_network(&net)?;
//! let json = saved.to_json()?;
//! let restored = SavedNetwork::from_json(&json)?.into_network()?;
//! assert_eq!(
//!     restored.layer_weight("ip1").unwrap().value,
//!     net.layer_weight("ip1").unwrap().value
//! );
//! # Ok(())
//! # }
//! ```

use crate::descriptor::{LayerKind, NetworkSpec};
use crate::network::{Network, NetworkBuilder};
use crate::{NnError, Result};
use lts_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// One layer's persisted parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SavedParams {
    /// Layer name.
    pub layer: String,
    /// Weight tensor.
    pub weight: Tensor,
    /// Bias tensor.
    pub bias: Tensor,
    /// Indices of frozen (pruned) weight entries.
    pub frozen_weight_indices: Vec<usize>,
}

/// A serializable snapshot of a network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SavedNetwork {
    /// The layer-chain description.
    pub spec: NetworkSpec,
    /// Parameters of every weight-bearing layer, in order.
    pub params: Vec<SavedParams>,
}

impl SavedNetwork {
    /// Captures a network's structure and parameters.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::SaveFailed`] when a weight-bearing layer of the
    /// spec cannot be captured (missing from the network, or missing its
    /// weight/bias parameters) — a silently incomplete snapshot would
    /// deploy a wrong model.
    pub fn from_network(net: &Network) -> Result<Self> {
        let spec = net.spec();
        let mut params = Vec::new();
        for l in spec.layers.iter().filter(|l| l.has_weights()) {
            let layer = net.layer(&l.name).ok_or_else(|| {
                NnError::SaveFailed(format!("weight-bearing layer `{}` not in the network", l.name))
            })?;
            let ps = layer.params();
            let (weight, bias) = match (ps.first(), ps.get(1)) {
                (Some(w), Some(b)) => (w, b),
                _ => {
                    return Err(NnError::SaveFailed(format!(
                        "layer `{}` exposes {} parameters, expected weight and bias",
                        l.name,
                        ps.len()
                    )))
                }
            };
            let frozen_weight_indices = weight
                .frozen_mask()
                .map(|mask| mask.iter().enumerate().filter_map(|(i, &f)| f.then_some(i)).collect())
                .unwrap_or_default();
            params.push(SavedParams {
                layer: l.name.clone(),
                weight: weight.value.clone(),
                bias: bias.value.clone(),
                frozen_weight_indices,
            });
        }
        Ok(Self { spec, params })
    }

    /// Checks the snapshot's internal consistency: every weight-bearing
    /// spec layer has exactly one parameter entry (no missing, duplicate
    /// or unknown entries), entries follow spec order, and frozen indices
    /// address real weight entries.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::MalformedSnapshot`] describing the first
    /// inconsistency found.
    pub fn validate(&self) -> Result<()> {
        let expected: Vec<&str> =
            self.spec.layers.iter().filter(|l| l.has_weights()).map(|l| l.name.as_str()).collect();
        let got: Vec<&str> = self.params.iter().map(|p| p.layer.as_str()).collect();
        if expected != got {
            return Err(NnError::MalformedSnapshot(format!(
                "parameter entries {got:?} do not match the spec's weight-bearing layers \
                 {expected:?}"
            )));
        }
        for p in &self.params {
            let len = p.weight.len();
            if let Some(&bad) = p.frozen_weight_indices.iter().find(|&&i| i >= len) {
                return Err(NnError::MalformedSnapshot(format!(
                    "layer `{}` freezes weight index {bad}, but the weight tensor has only {len} \
                     entries",
                    p.layer
                )));
            }
        }
        Ok(())
    }

    /// Rebuilds a runnable network (fresh momentum/grad state).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::MalformedSnapshot`] if the snapshot fails
    /// [`SavedNetwork::validate`], and [`NnError::BadConfig`] if the
    /// rebuilt layers disagree with the persisted parameter shapes.
    pub fn into_network(self) -> Result<Network> {
        self.validate()?;
        let mut builder = NetworkBuilder::new(&self.spec.name, self.spec.input);
        for layer in &self.spec.layers {
            builder = match layer.kind {
                LayerKind::Conv { out_c, kernel, stride, pad, groups } => {
                    builder.conv(&layer.name, out_c, kernel, stride, pad, groups)
                }
                LayerKind::Linear { out_f, .. } => builder.linear(&layer.name, out_f),
                LayerKind::Pool { kernel, stride, average: false } => {
                    builder.pool(&layer.name, kernel, stride)
                }
                LayerKind::Pool { kernel, stride, average: true } => {
                    builder.avg_pool(&layer.name, kernel, stride)
                }
                LayerKind::Activation => builder.relu(),
                LayerKind::Flatten => builder.flatten(),
            };
        }
        // Weights get overwritten below; the init RNG seed is irrelevant.
        let mut rng = lts_tensor::init::rng(0);
        let mut net = builder.build(&mut rng)?;
        for saved in self.params {
            let layer = net.layer_mut(&saved.layer).ok_or_else(|| {
                NnError::BadConfig(format!("snapshot layer `{}` not reconstructible", saved.layer))
            })?;
            let mut params = layer.params_mut();
            if params.len() < 2 {
                return Err(NnError::BadConfig(format!(
                    "snapshot layer `{}` lacks weight/bias parameters",
                    saved.layer
                )));
            }
            if params[0].value.shape() != saved.weight.shape()
                || params[1].value.shape() != saved.bias.shape()
            {
                return Err(NnError::BadConfig(format!(
                    "snapshot layer `{}` parameter shapes disagree with the rebuilt network",
                    saved.layer
                )));
            }
            params[0].value = saved.weight;
            if !saved.frozen_weight_indices.is_empty() {
                params[0].freeze_indices(&saved.frozen_weight_indices);
            }
            params[1].value = saved.bias;
        }
        Ok(net)
    }

    /// Serializes to a JSON string.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::SaveFailed`] if serialization fails (cannot
    /// happen for well-formed snapshots).
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string(self).map_err(|e| NnError::SaveFailed(e.to_string()))
    }

    /// Deserializes and validates a snapshot from a JSON string.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::MalformedSnapshot`] for unparsable input and
    /// for snapshots that parse but fail [`SavedNetwork::validate`]
    /// (e.g. truncated parameter lists or out-of-range freeze indices).
    pub fn from_json(json: &str) -> Result<Self> {
        let saved: Self =
            serde_json::from_str(json).map_err(|e| NnError::MalformedSnapshot(e.to_string()))?;
        saved.validate()?;
        Ok(saved)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grouping::GroupLayout;
    use crate::models;
    use crate::prune::{prune_groups, PruneCriterion};
    use lts_tensor::{init, Shape};

    #[test]
    fn roundtrip_preserves_forward_outputs() {
        let mut net = models::lenet(10, 4).unwrap();
        let x = init::uniform(Shape::d4(2, 1, 28, 28), 1.0, &mut init::rng(1));
        let y1 = net.forward(&x).unwrap();
        let mut restored = SavedNetwork::from_network(&net).unwrap().into_network().unwrap();
        let y2 = restored.forward(&x).unwrap();
        assert_eq!(y1, y2);
    }

    #[test]
    fn roundtrip_preserves_freeze_masks() {
        let mut net = models::mlp(16, 4, 2).unwrap();
        let layout = GroupLayout::new(304, 512, 1, 4);
        let param = net.layer_weight_mut("ip2").unwrap();
        prune_groups(param, &layout, PruneCriterion::SmallestFraction(0.5)).unwrap();
        let frozen_before = net.layer_weight("ip2").unwrap().frozen_count();
        assert!(frozen_before > 0);
        let restored = SavedNetwork::from_network(&net).unwrap().into_network().unwrap();
        assert_eq!(restored.layer_weight("ip2").unwrap().frozen_count(), frozen_before);
        // Frozen entries are still exactly zero.
        let w = restored.layer_weight("ip2").unwrap();
        for i in 0..w.len() {
            if w.is_frozen(i) {
                assert_eq!(w.value.as_slice()[i], 0.0);
            }
        }
    }

    #[test]
    fn json_roundtrip() {
        let net = models::mlp(16, 4, 9).unwrap();
        let saved = SavedNetwork::from_network(&net).unwrap();
        let json = saved.to_json().unwrap();
        let parsed = SavedNetwork::from_json(&json).unwrap();
        assert_eq!(saved, parsed);
        assert!(matches!(SavedNetwork::from_json("{bad json"), Err(NnError::MalformedSnapshot(_))));
    }

    #[test]
    fn truncated_json_is_a_malformed_snapshot() {
        let net = models::mlp(16, 4, 9).unwrap();
        let json = SavedNetwork::from_network(&net).unwrap().to_json().unwrap();
        let truncated = &json[..json.len() / 2];
        assert!(matches!(SavedNetwork::from_json(truncated), Err(NnError::MalformedSnapshot(_))));
    }

    #[test]
    fn missing_and_unknown_param_entries_fail_validation() {
        let net = models::mlp(16, 4, 9).unwrap();
        let saved = SavedNetwork::from_network(&net).unwrap();
        // Dropping a layer's parameters must be caught...
        let mut missing = saved.clone();
        missing.params.remove(0);
        assert!(matches!(missing.validate(), Err(NnError::MalformedSnapshot(_))));
        assert!(missing.into_network().is_err());
        // ...as must a duplicated entry...
        let mut duplicated = saved.clone();
        let extra = duplicated.params[0].clone();
        duplicated.params.push(extra);
        assert!(matches!(duplicated.validate(), Err(NnError::MalformedSnapshot(_))));
        // ...and an entry for a layer the spec does not know.
        let mut unknown = saved;
        unknown.params[0].layer = "phantom".into();
        assert!(matches!(unknown.validate(), Err(NnError::MalformedSnapshot(_))));
    }

    #[test]
    fn out_of_range_freeze_indices_fail_validation() {
        let net = models::mlp(16, 4, 9).unwrap();
        let mut saved = SavedNetwork::from_network(&net).unwrap();
        let len = saved.params[0].weight.len();
        saved.params[0].frozen_weight_indices.push(len);
        let err = saved.validate().unwrap_err();
        assert!(matches!(err, NnError::MalformedSnapshot(_)));
        assert!(err.to_string().contains("freezes weight index"), "{err}");
        // And the same snapshot round-tripped through JSON is rejected
        // at parse time, before any network is built.
        let mut net2 = models::mlp(16, 4, 9).unwrap();
        let mut saved2 = SavedNetwork::from_network(&net2).unwrap();
        saved2.params[0].frozen_weight_indices.push(usize::MAX);
        let json = saved2.to_json().unwrap();
        assert!(matches!(SavedNetwork::from_json(&json), Err(NnError::MalformedSnapshot(_))));
        // The original network is untouched and still runs.
        let x = init::uniform(Shape::d2(1, 16), 1.0, &mut init::rng(2));
        assert!(net2.forward(&x).is_ok());
    }

    #[test]
    fn avg_pool_roundtrips_as_avg_pool() {
        let mut rng = init::rng(0);
        let mut net = NetworkBuilder::new("a", (1, 8, 8))
            .conv("c", 2, 3, 1, 1, 1)
            .avg_pool("ap", 2, 2)
            .flatten()
            .linear("ip", 3)
            .build(&mut rng)
            .unwrap();
        let x = init::uniform(Shape::d4(1, 1, 8, 8), 1.0, &mut init::rng(5));
        let y1 = net.forward(&x).unwrap();
        let mut restored = SavedNetwork::from_network(&net).unwrap().into_network().unwrap();
        let y2 = restored.forward(&x).unwrap();
        assert_eq!(y1, y2);
        // The spec marks the pool as average.
        let spec = restored.spec();
        assert!(matches!(spec.layer("ap").unwrap().kind, LayerKind::Pool { average: true, .. }));
    }
}
