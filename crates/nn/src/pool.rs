//! Max-pooling layer (ceil mode, matching Caffe).

use crate::descriptor::pool_out;
use crate::descriptor::{Dims, LayerKind, LayerSpec};
use crate::layer::Layer;
use crate::{NnError, Result};
use lts_tensor::{Shape, Tensor};

/// 2-D max pooling over an NCHW batch.
///
/// Uses ceil-mode output sizing (a partial window at the right/bottom edge
/// still produces an output), matching the Caffe networks the paper
/// evaluates.
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    name: String,
    in_dims: Dims,
    kernel: usize,
    stride: usize,
    /// For each output element of the last forward pass, the flat input
    /// index that won the max (for gradient routing).
    argmax: Option<Vec<usize>>,
    last_batch: usize,
}

impl MaxPool2d {
    /// Creates a pooling layer.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] if the window exceeds the input or
    /// `stride == 0`.
    pub fn new(name: &str, in_dims: Dims, kernel: usize, stride: usize) -> Result<Self> {
        let (_, h, w) = in_dims;
        if stride == 0 || kernel == 0 {
            return Err(NnError::BadConfig(format!("pool `{name}`: zero kernel or stride")));
        }
        if kernel > h || kernel > w {
            return Err(NnError::BadConfig(format!(
                "pool `{name}`: kernel {kernel} exceeds input {h}x{w}"
            )));
        }
        Ok(Self { name: name.to_string(), in_dims, kernel, stride, argmax: None, last_batch: 0 })
    }

    /// Output dims `(c, oh, ow)`.
    pub fn out_dims(&self) -> Dims {
        let (c, h, w) = self.in_dims;
        (c, pool_out(h, self.kernel, self.stride), pool_out(w, self.kernel, self.stride))
    }
}

impl Layer for MaxPool2d {
    fn name(&self) -> &str {
        &self.name
    }

    fn spec(&self) -> LayerSpec {
        LayerSpec {
            name: self.name.clone(),
            kind: LayerKind::Pool { kernel: self.kernel, stride: self.stride, average: false },
            in_dims: self.in_dims,
            out_dims: self.out_dims(),
        }
    }

    fn forward(&mut self, input: &Tensor) -> Result<Tensor> {
        let (c, h, w) = self.in_dims;
        let ok = input.shape().rank() == 4
            && input.shape().dim(1) == c
            && input.shape().dim(2) == h
            && input.shape().dim(3) == w;
        if !ok {
            return Err(NnError::BadInput {
                layer: self.name.clone(),
                reason: format!("expected [batch, {c}, {h}, {w}], got {}", input.shape()),
            });
        }
        let batch = input.shape().dim(0);
        let (_, oh, ow) = self.out_dims();
        let mut out = Tensor::zeros(Shape::d4(batch, c, oh, ow));
        let mut argmax = vec![0usize; batch * c * oh * ow];
        let src = input.as_slice();
        let dst = out.as_mut_slice();
        for n in 0..batch {
            for ch in 0..c {
                let plane = (n * c + ch) * h * w;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let y0 = oy * self.stride;
                        let x0 = ox * self.stride;
                        let y1 = (y0 + self.kernel).min(h);
                        let x1 = (x0 + self.kernel).min(w);
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = plane + y0 * w + x0;
                        for y in y0..y1 {
                            for x in x0..x1 {
                                let idx = plane + y * w + x;
                                if src[idx] > best {
                                    best = src[idx];
                                    best_idx = idx;
                                }
                            }
                        }
                        let o = ((n * c + ch) * oh + oy) * ow + ox;
                        dst[o] = best;
                        argmax[o] = best_idx;
                    }
                }
            }
        }
        self.argmax = Some(argmax);
        self.last_batch = batch;
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let argmax = self
            .argmax
            .as_ref()
            .ok_or_else(|| NnError::BackwardBeforeForward { layer: self.name.clone() })?;
        if grad_out.len() != argmax.len() {
            return Err(NnError::BadInput {
                layer: self.name.clone(),
                reason: format!(
                    "gradient has {} entries, cached forward produced {}",
                    grad_out.len(),
                    argmax.len()
                ),
            });
        }
        let (c, h, w) = self.in_dims;
        let mut grad_in = Tensor::zeros(Shape::d4(self.last_batch, c, h, w));
        let gi = grad_in.as_mut_slice();
        for (o, &src_idx) in argmax.iter().enumerate() {
            gi[src_idx] += grad_out.as_slice()[o];
        }
        Ok(grad_in)
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// 2-D average pooling over an NCHW batch (ceil mode).
///
/// Edge windows average over their *actual* (possibly clipped) element
/// count, matching Caffe's behaviour.
#[derive(Debug, Clone)]
pub struct AvgPool2d {
    name: String,
    in_dims: Dims,
    kernel: usize,
    stride: usize,
    last_batch: usize,
    ran_forward: bool,
}

impl AvgPool2d {
    /// Creates an average-pooling layer.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] if the window exceeds the input or
    /// `stride == 0`.
    pub fn new(name: &str, in_dims: Dims, kernel: usize, stride: usize) -> Result<Self> {
        let (_, h, w) = in_dims;
        if stride == 0 || kernel == 0 {
            return Err(NnError::BadConfig(format!("pool `{name}`: zero kernel or stride")));
        }
        if kernel > h || kernel > w {
            return Err(NnError::BadConfig(format!(
                "pool `{name}`: kernel {kernel} exceeds input {h}x{w}"
            )));
        }
        Ok(Self {
            name: name.to_string(),
            in_dims,
            kernel,
            stride,
            last_batch: 0,
            ran_forward: false,
        })
    }

    /// Output dims `(c, oh, ow)`.
    pub fn out_dims(&self) -> Dims {
        let (c, h, w) = self.in_dims;
        (c, pool_out(h, self.kernel, self.stride), pool_out(w, self.kernel, self.stride))
    }

    /// The clipped window for output `(oy, ox)`.
    fn window(&self, oy: usize, ox: usize) -> (usize, usize, usize, usize) {
        let (_, h, w) = self.in_dims;
        let y0 = oy * self.stride;
        let x0 = ox * self.stride;
        (y0, x0, (y0 + self.kernel).min(h), (x0 + self.kernel).min(w))
    }
}

impl Layer for AvgPool2d {
    fn name(&self) -> &str {
        &self.name
    }

    fn spec(&self) -> LayerSpec {
        LayerSpec {
            name: self.name.clone(),
            kind: LayerKind::Pool { kernel: self.kernel, stride: self.stride, average: true },
            in_dims: self.in_dims,
            out_dims: self.out_dims(),
        }
    }

    fn forward(&mut self, input: &Tensor) -> Result<Tensor> {
        let (c, h, w) = self.in_dims;
        let ok = input.shape().rank() == 4
            && input.shape().dim(1) == c
            && input.shape().dim(2) == h
            && input.shape().dim(3) == w;
        if !ok {
            return Err(NnError::BadInput {
                layer: self.name.clone(),
                reason: format!("expected [batch, {c}, {h}, {w}], got {}", input.shape()),
            });
        }
        let batch = input.shape().dim(0);
        let (_, oh, ow) = self.out_dims();
        let mut out = Tensor::zeros(Shape::d4(batch, c, oh, ow));
        let src = input.as_slice();
        let dst = out.as_mut_slice();
        for n in 0..batch {
            for ch in 0..c {
                let plane = (n * c + ch) * h * w;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let (y0, x0, y1, x1) = self.window(oy, ox);
                        let mut acc = 0.0f32;
                        for y in y0..y1 {
                            for x in x0..x1 {
                                acc += src[plane + y * w + x];
                            }
                        }
                        let count = ((y1 - y0) * (x1 - x0)) as f32;
                        dst[((n * c + ch) * oh + oy) * ow + ox] = acc / count;
                    }
                }
            }
        }
        self.last_batch = batch;
        self.ran_forward = true;
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        if !self.ran_forward {
            return Err(NnError::BackwardBeforeForward { layer: self.name.clone() });
        }
        let (c, h, w) = self.in_dims;
        let (_, oh, ow) = self.out_dims();
        let expect = self.last_batch * c * oh * ow;
        if grad_out.len() != expect {
            return Err(NnError::BadInput {
                layer: self.name.clone(),
                reason: format!("gradient has {} entries, expected {expect}", grad_out.len()),
            });
        }
        let mut grad_in = Tensor::zeros(Shape::d4(self.last_batch, c, h, w));
        let gi = grad_in.as_mut_slice();
        let go = grad_out.as_slice();
        for n in 0..self.last_batch {
            for ch in 0..c {
                let plane = (n * c + ch) * h * w;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let (y0, x0, y1, x1) = self.window(oy, ox);
                        let count = ((y1 - y0) * (x1 - x0)) as f32;
                        let g = go[((n * c + ch) * oh + oy) * ow + ox] / count;
                        for y in y0..y1 {
                            for x in x0..x1 {
                                gi[plane + y * w + x] += g;
                            }
                        }
                    }
                }
            }
        }
        Ok(grad_in)
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avg_pool_computes_window_means() {
        let mut p = AvgPool2d::new("a", (1, 4, 4), 2, 2).unwrap();
        let x =
            Tensor::from_vec(Shape::d4(1, 1, 4, 4), (0..16).map(|v| v as f32).collect()).unwrap();
        let y = p.forward(&x).unwrap();
        assert_eq!(y.as_slice(), &[2.5, 4.5, 10.5, 12.5]);
    }

    #[test]
    fn avg_pool_backward_distributes_uniformly() {
        let mut p = AvgPool2d::new("a", (1, 2, 2), 2, 2).unwrap();
        p.forward(&Tensor::ones(Shape::d4(1, 1, 2, 2))).unwrap();
        let g = p.backward(&Tensor::from_vec(Shape::d4(1, 1, 1, 1), vec![4.0]).unwrap()).unwrap();
        assert_eq!(g.as_slice(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn avg_pool_gradient_conserves_mass() {
        // Sum of input gradients equals sum of output gradients when
        // windows tile the input exactly.
        let mut p = AvgPool2d::new("a", (2, 4, 4), 2, 2).unwrap();
        p.forward(&Tensor::ones(Shape::d4(1, 2, 4, 4))).unwrap();
        let go = Tensor::ones(Shape::d4(1, 2, 2, 2));
        let gi = p.backward(&go).unwrap();
        let sum_in: f32 = gi.as_slice().iter().sum();
        let sum_out: f32 = go.as_slice().iter().sum();
        assert!((sum_in - sum_out).abs() < 1e-5);
    }

    #[test]
    fn avg_pool_edge_windows_average_actual_elements() {
        // 3x3 input, 2x2 window stride 2 (ceil mode): bottom/right windows
        // are clipped and average fewer elements.
        let mut p = AvgPool2d::new("a", (1, 3, 3), 2, 2).unwrap();
        let x = Tensor::ones(Shape::d4(1, 1, 3, 3));
        let y = p.forward(&x).unwrap();
        // Means of all-ones are 1 regardless of window size.
        assert!(y.as_slice().iter().all(|&v| (v - 1.0).abs() < 1e-6));
        assert_eq!(y.shape().dims(), &[1, 1, 2, 2]);
    }

    #[test]
    fn avg_pool_validation() {
        assert!(AvgPool2d::new("a", (1, 2, 2), 3, 2).is_err());
        let mut p = AvgPool2d::new("a", (1, 4, 4), 2, 2).unwrap();
        assert!(p.backward(&Tensor::zeros(Shape::d4(1, 1, 2, 2))).is_err());
    }

    #[test]
    fn forward_takes_window_maximum() {
        let mut p = MaxPool2d::new("p", (1, 4, 4), 2, 2).unwrap();
        let x =
            Tensor::from_vec(Shape::d4(1, 1, 4, 4), (0..16).map(|v| v as f32).collect()).unwrap();
        let y = p.forward(&x).unwrap();
        assert_eq!(y.as_slice(), &[5., 7., 13., 15.]);
    }

    #[test]
    fn ceil_mode_handles_partial_windows() {
        // 5x5 input, 2x2 window stride 2 -> 3x3 output (Caffe ceil mode).
        let mut p = MaxPool2d::new("p", (1, 5, 5), 2, 2).unwrap();
        let x = Tensor::ones(Shape::d4(1, 1, 5, 5));
        let y = p.forward(&x).unwrap();
        assert_eq!(y.shape().dims(), &[1, 1, 3, 3]);
    }

    #[test]
    fn backward_routes_gradient_to_argmax() {
        let mut p = MaxPool2d::new("p", (1, 2, 2), 2, 2).unwrap();
        let x = Tensor::from_vec(Shape::d4(1, 1, 2, 2), vec![1., 9., 3., 4.]).unwrap();
        p.forward(&x).unwrap();
        let g = p.backward(&Tensor::from_vec(Shape::d4(1, 1, 1, 1), vec![2.0]).unwrap()).unwrap();
        assert_eq!(g.as_slice(), &[0., 2., 0., 0.]);
    }

    #[test]
    fn config_validation() {
        assert!(MaxPool2d::new("p", (1, 2, 2), 3, 2).is_err());
        assert!(MaxPool2d::new("p", (1, 4, 4), 2, 0).is_err());
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut p = MaxPool2d::new("p", (1, 4, 4), 2, 2).unwrap();
        assert!(p.backward(&Tensor::zeros(Shape::d4(1, 1, 2, 2))).is_err());
    }

    #[test]
    fn pool_is_per_channel() {
        let mut p = MaxPool2d::new("p", (2, 2, 2), 2, 2).unwrap();
        let x = Tensor::from_vec(Shape::d4(1, 2, 2, 2), vec![1., 2., 3., 4., 10., 20., 30., 40.])
            .unwrap();
        let y = p.forward(&x).unwrap();
        assert_eq!(y.as_slice(), &[4., 40.]);
    }
}
