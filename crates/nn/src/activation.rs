//! Elementwise activation layers.

use crate::descriptor::{Dims, LayerKind, LayerSpec};
use crate::layer::Layer;
use crate::{NnError, Result};
use lts_tensor::Tensor;

/// Rectified linear unit: `y = max(0, x)`.
///
/// # Examples
///
/// ```
/// use lts_nn::activation::Relu;
/// use lts_nn::layer::Layer;
/// use lts_tensor::Tensor;
///
/// # fn main() -> Result<(), lts_nn::NnError> {
/// let mut relu = Relu::new("relu1", (1, 1, 3));
/// let y = relu.forward(&Tensor::from_slice_1d(&[-1.0, 0.0, 2.0]))?;
/// assert_eq!(y.as_slice(), &[0.0, 0.0, 2.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Relu {
    name: String,
    dims: Dims,
    mask: Option<Vec<bool>>,
}

impl Relu {
    /// Creates a ReLU over activations of the given dims.
    pub fn new(name: &str, dims: Dims) -> Self {
        Self { name: name.to_string(), dims, mask: None }
    }
}

impl Layer for Relu {
    fn name(&self) -> &str {
        &self.name
    }

    fn spec(&self) -> LayerSpec {
        LayerSpec {
            name: self.name.clone(),
            kind: LayerKind::Activation,
            in_dims: self.dims,
            out_dims: self.dims,
        }
    }

    fn forward(&mut self, input: &Tensor) -> Result<Tensor> {
        self.mask = Some(input.as_slice().iter().map(|&x| x > 0.0).collect());
        Ok(input.map(|x| x.max(0.0)))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let mask = self
            .mask
            .as_ref()
            .ok_or_else(|| NnError::BackwardBeforeForward { layer: self.name.clone() })?;
        if mask.len() != grad_out.len() {
            return Err(NnError::BadInput {
                layer: self.name.clone(),
                reason: format!(
                    "gradient has {} entries but cached forward had {}",
                    grad_out.len(),
                    mask.len()
                ),
            });
        }
        let data =
            grad_out.as_slice().iter().zip(mask).map(|(&g, &m)| if m { g } else { 0.0 }).collect();
        Ok(Tensor::from_vec(grad_out.shape().clone(), data)?)
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lts_tensor::Shape;

    #[test]
    fn forward_clamps_negatives() {
        let mut r = Relu::new("r", (1, 1, 4));
        let y = r.forward(&Tensor::from_slice_1d(&[-2.0, -0.5, 0.0, 3.0])).unwrap();
        assert_eq!(y.as_slice(), &[0.0, 0.0, 0.0, 3.0]);
    }

    #[test]
    fn backward_gates_gradient_by_input_sign() {
        let mut r = Relu::new("r", (1, 1, 4));
        r.forward(&Tensor::from_slice_1d(&[-2.0, -0.5, 0.0, 3.0])).unwrap();
        let g = r.backward(&Tensor::from_slice_1d(&[1.0, 1.0, 1.0, 1.0])).unwrap();
        assert_eq!(g.as_slice(), &[0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn backward_without_forward_errors() {
        let mut r = Relu::new("r", (1, 1, 2));
        assert!(matches!(
            r.backward(&Tensor::zeros(Shape::d1(2))),
            Err(NnError::BackwardBeforeForward { .. })
        ));
    }

    #[test]
    fn backward_rejects_mismatched_gradient() {
        let mut r = Relu::new("r", (1, 1, 2));
        r.forward(&Tensor::zeros(Shape::d1(2))).unwrap();
        assert!(r.backward(&Tensor::zeros(Shape::d1(3))).is_err());
    }
}
