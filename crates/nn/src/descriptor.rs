//! Analytic layer and network descriptors.
//!
//! Every layer exposes a [`LayerSpec`] describing its geometry; a network's
//! chain of specs ([`NetworkSpec`]) is all the partitioning, accelerator
//! timing and NoC traffic models need. That lets networks far too large to
//! train in this environment — full AlexNet and VGG19, for Table I — go
//! through exactly the same analysis path as the small trained models.

use serde::{Deserialize, Serialize};

/// Spatial extent of an activation tensor: `(channels, height, width)`.
///
/// Fully-connected activations use `(features, 1, 1)`.
pub type Dims = (usize, usize, usize);

/// Number of values in a `(c, h, w)` activation.
pub fn dims_len(d: Dims) -> usize {
    d.0 * d.1 * d.2
}

/// The kind and hyper-parameters of a layer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum LayerKind {
    /// 2-D convolution.
    Conv {
        /// Output channel count.
        out_c: usize,
        /// Kernel height/width (square kernels only).
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Zero padding.
        pad: usize,
        /// Number of channel groups (1 = dense; `n` = structure-level
        /// parallelization with `n` independent sub-convolutions).
        groups: usize,
    },
    /// Fully-connected layer.
    Linear {
        /// Input feature count.
        in_f: usize,
        /// Output feature count.
        out_f: usize,
    },
    /// Spatial pooling.
    Pool {
        /// Pooling window (square).
        kernel: usize,
        /// Stride.
        stride: usize,
        /// `true` for average pooling, `false` for max pooling.
        average: bool,
    },
    /// Elementwise activation (no parameters, no shape change).
    Activation,
    /// Collapse `(c, h, w)` to `(c*h*w, 1, 1)` (no data movement).
    Flatten,
}

/// Geometry record for one layer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerSpec {
    /// Layer name (unique within its network; e.g. `conv2`, `ip1`).
    pub name: String,
    /// Layer kind and hyper-parameters.
    pub kind: LayerKind,
    /// Input activation dims.
    pub in_dims: Dims,
    /// Output activation dims.
    pub out_dims: Dims,
}

impl LayerSpec {
    /// Whether the layer carries trainable weights (conv or linear).
    pub fn has_weights(&self) -> bool {
        matches!(self.kind, LayerKind::Conv { .. } | LayerKind::Linear { .. })
    }

    /// Number of trainable weight values (excluding biases).
    pub fn weight_count(&self) -> usize {
        match self.kind {
            LayerKind::Conv { out_c, kernel, groups, .. } => {
                let in_per_group = self.in_dims.0 / groups;
                out_c * in_per_group * kernel * kernel
            }
            LayerKind::Linear { in_f, out_f } => in_f * out_f,
            _ => 0,
        }
    }

    /// Multiply-accumulate operations for a single-image forward pass.
    pub fn macs(&self) -> u64 {
        match self.kind {
            LayerKind::Conv { out_c, kernel, groups, .. } => {
                let in_per_group = self.in_dims.0 / groups;
                let out_positions = self.out_dims.1 * self.out_dims.2;
                (out_c * out_positions * in_per_group * kernel * kernel) as u64
            }
            LayerKind::Linear { in_f, out_f } => (in_f * out_f) as u64,
            LayerKind::Pool { kernel, .. } => {
                // Comparisons, counted like MACs for the latency model.
                (dims_len(self.out_dims) * kernel * kernel) as u64
            }
            LayerKind::Activation => dims_len(self.out_dims) as u64,
            LayerKind::Flatten => 0,
        }
    }

    /// Bytes of the layer's input activations at 16-bit precision.
    pub fn input_bytes(&self) -> u64 {
        2 * dims_len(self.in_dims) as u64
    }

    /// Bytes of the layer's output activations at 16-bit precision.
    pub fn output_bytes(&self) -> u64 {
        2 * dims_len(self.out_dims) as u64
    }
}

/// The analytic description of a whole network.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetworkSpec {
    /// Network name (e.g. `AlexNet`).
    pub name: String,
    /// Input dims `(c, h, w)`.
    pub input: Dims,
    /// Layer chain, in execution order.
    pub layers: Vec<LayerSpec>,
}

impl NetworkSpec {
    /// Total single-image forward MACs across all layers.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(LayerSpec::macs).sum()
    }

    /// Total trainable weight count.
    pub fn total_weights(&self) -> usize {
        self.layers.iter().map(LayerSpec::weight_count).sum()
    }

    /// Names of the weight-bearing layers, in order.
    pub fn weight_layer_names(&self) -> Vec<&str> {
        self.layers.iter().filter(|l| l.has_weights()).map(|l| l.name.as_str()).collect()
    }

    /// The spec of the layer called `name`, if present.
    pub fn layer(&self, name: &str) -> Option<&LayerSpec> {
        self.layers.iter().find(|l| l.name == name)
    }
}

/// Incremental builder that tracks activation dims through the chain.
///
/// # Examples
///
/// ```
/// use lts_nn::descriptor::SpecBuilder;
///
/// let spec = SpecBuilder::new("tiny", (1, 28, 28))
///     .conv("conv1", 8, 5, 1, 0, 1)
///     .relu()
///     .pool("pool1", 2, 2)
///     .flatten()
///     .linear("ip1", 10)
///     .build();
/// assert_eq!(spec.layer("conv1").unwrap().out_dims, (8, 24, 24));
/// ```
#[derive(Debug, Clone)]
pub struct SpecBuilder {
    name: String,
    input: Dims,
    current: Dims,
    layers: Vec<LayerSpec>,
    auto_index: usize,
}

impl SpecBuilder {
    /// Starts a network description with the given input dims.
    pub fn new(name: &str, input: Dims) -> Self {
        Self { name: name.to_string(), input, current: input, layers: Vec::new(), auto_index: 0 }
    }

    /// The activation dims after the layers added so far.
    pub fn current_dims(&self) -> Dims {
        self.current
    }

    /// Appends a convolution layer.
    ///
    /// # Panics
    ///
    /// Panics if the input channels are not divisible by `groups`, the
    /// output channels are not divisible by `groups`, or the kernel exceeds
    /// the padded input.
    pub fn conv(
        mut self,
        name: &str,
        out_c: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        groups: usize,
    ) -> Self {
        let (in_c, in_h, in_w) = self.current;
        assert!(groups >= 1, "groups must be >= 1");
        assert_eq!(in_c % groups, 0, "in_c {in_c} not divisible by groups {groups}");
        assert_eq!(out_c % groups, 0, "out_c {out_c} not divisible by groups {groups}");
        let oh = conv_out(in_h, kernel, stride, pad);
        let ow = conv_out(in_w, kernel, stride, pad);
        let spec = LayerSpec {
            name: name.to_string(),
            kind: LayerKind::Conv { out_c, kernel, stride, pad, groups },
            in_dims: self.current,
            out_dims: (out_c, oh, ow),
        };
        self.current = spec.out_dims;
        self.layers.push(spec);
        self
    }

    /// Appends a max-pooling layer.
    pub fn pool(self, name: &str, kernel: usize, stride: usize) -> Self {
        self.pool_of(name, kernel, stride, false)
    }

    /// Appends an average-pooling layer.
    pub fn avg_pool(self, name: &str, kernel: usize, stride: usize) -> Self {
        self.pool_of(name, kernel, stride, true)
    }

    fn pool_of(mut self, name: &str, kernel: usize, stride: usize, average: bool) -> Self {
        let (c, h, w) = self.current;
        let oh = pool_out(h, kernel, stride);
        let ow = pool_out(w, kernel, stride);
        let spec = LayerSpec {
            name: name.to_string(),
            kind: LayerKind::Pool { kernel, stride, average },
            in_dims: self.current,
            out_dims: (c, oh, ow),
        };
        self.current = spec.out_dims;
        self.layers.push(spec);
        self
    }

    /// Appends a ReLU activation.
    pub fn relu(mut self) -> Self {
        self.auto_index += 1;
        let spec = LayerSpec {
            name: format!("relu{}", self.auto_index),
            kind: LayerKind::Activation,
            in_dims: self.current,
            out_dims: self.current,
        };
        self.layers.push(spec);
        self
    }

    /// Appends a flatten pseudo-layer collapsing `(c, h, w)` to a vector.
    pub fn flatten(mut self) -> Self {
        let flat = (dims_len(self.current), 1, 1);
        let spec = LayerSpec {
            name: "flatten".to_string(),
            kind: LayerKind::Flatten,
            in_dims: self.current,
            out_dims: flat,
        };
        self.current = flat;
        self.layers.push(spec);
        self
    }

    /// Appends a fully-connected layer.
    ///
    /// # Panics
    ///
    /// Panics if the current activation is not flat (call
    /// [`SpecBuilder::flatten`] after spatial layers).
    pub fn linear(mut self, name: &str, out_f: usize) -> Self {
        let (in_f, h, w) = self.current;
        assert!(h == 1 && w == 1, "linear layer needs flat input; call flatten() first");
        let spec = LayerSpec {
            name: name.to_string(),
            kind: LayerKind::Linear { in_f, out_f },
            in_dims: self.current,
            out_dims: (out_f, 1, 1),
        };
        self.current = spec.out_dims;
        self.layers.push(spec);
        self
    }

    /// Finishes the description.
    pub fn build(self) -> NetworkSpec {
        NetworkSpec { name: self.name, input: self.input, layers: self.layers }
    }
}

/// Output size of a convolution along one dimension.
///
/// # Panics
///
/// Panics if the kernel exceeds the padded input or `stride == 0`.
pub fn conv_out(input: usize, kernel: usize, stride: usize, pad: usize) -> usize {
    assert!(stride > 0, "stride must be positive");
    let padded = input + 2 * pad;
    assert!(padded >= kernel, "kernel {kernel} exceeds padded input {padded}");
    (padded - kernel) / stride + 1
}

/// Output size of a pooling window along one dimension (ceil mode, like
/// Caffe).
///
/// # Panics
///
/// Panics if `stride == 0` or `kernel > input`.
pub fn pool_out(input: usize, kernel: usize, stride: usize) -> usize {
    assert!(stride > 0, "stride must be positive");
    assert!(kernel <= input, "pool kernel {kernel} exceeds input {input}");
    (input - kernel).div_ceil(stride) + 1
}

/// Full-size AlexNet (Krizhevsky et al. 2012, Caffe layer dims) — analytic
/// only, used by Table I.
///
/// The historical 2-group split of conv2/4/5 (a dual-GPU memory artifact)
/// is omitted: the paper's Table I volumes match dense accounting (its
/// conv2 entry equals `96·27²·2 B × 15` exactly), so the dense layer graph
/// is what its analysis used.
pub fn alexnet_spec() -> NetworkSpec {
    SpecBuilder::new("AlexNet", (3, 227, 227))
        .conv("conv1", 96, 11, 4, 0, 1)
        .relu()
        .pool("pool1", 3, 2)
        .conv("conv2", 256, 5, 1, 2, 1)
        .relu()
        .pool("pool2", 3, 2)
        .conv("conv3", 384, 3, 1, 1, 1)
        .relu()
        .conv("conv4", 384, 3, 1, 1, 1)
        .relu()
        .conv("conv5", 256, 3, 1, 1, 1)
        .relu()
        .pool("pool5", 3, 2)
        .flatten()
        .linear("ip1", 4096)
        .relu()
        .linear("ip2", 4096)
        .relu()
        .linear("ip3", 1000)
        .build()
}

/// Full-size VGG19 (Simonyan & Zisserman 2015) — analytic only, used by
/// Table I. Layer names follow the paper's "Conv2 means Conv2_1/Conv2_2"
/// footnote: each stage keeps its sub-layers.
pub fn vgg19_spec() -> NetworkSpec {
    let mut b = SpecBuilder::new("VGG19", (3, 224, 224));
    let stages: [(usize, usize, &str); 5] = [
        (64, 2, "conv1"),
        (128, 2, "conv2"),
        (256, 4, "conv3"),
        (512, 4, "conv4"),
        (512, 4, "conv5"),
    ];
    for (ch, reps, base) in stages {
        for r in 1..=reps {
            b = b.conv(&format!("{base}_{r}"), ch, 3, 1, 1, 1).relu();
        }
        b = b.pool(&format!("pool{}", &base[4..]), 2, 2);
    }
    b.flatten().linear("ip1", 4096).relu().linear("ip2", 4096).relu().linear("ip3", 1000).build()
}

/// Full-size Caffe LeNet (MNIST) — analytic descriptor.
pub fn lenet_spec() -> NetworkSpec {
    SpecBuilder::new("LeNet", (1, 28, 28))
        .conv("conv1", 20, 5, 1, 0, 1)
        .pool("pool1", 2, 2)
        .conv("conv2", 50, 5, 1, 0, 1)
        .pool("pool2", 2, 2)
        .flatten()
        .linear("ip1", 500)
        .relu()
        .linear("ip2", 10)
        .build()
}

/// The paper's MLP: three fully-connected layers of 512/304/10 neurons on
/// 28×28 inputs.
pub fn mlp_spec() -> NetworkSpec {
    SpecBuilder::new("MLP", (1, 28, 28))
        .flatten()
        .linear("ip1", 512)
        .relu()
        .linear("ip2", 304)
        .relu()
        .linear("ip3", 10)
        .build()
}

/// Caffe CIFAR-10 "quick" ConvNet — analytic descriptor.
pub fn convnet_spec() -> NetworkSpec {
    SpecBuilder::new("ConvNet", (3, 32, 32))
        .conv("conv1", 32, 5, 1, 2, 1)
        .pool("pool1", 3, 2)
        .relu()
        .conv("conv2", 32, 5, 1, 2, 1)
        .relu()
        .pool("pool2", 3, 2)
        .conv("conv3", 64, 5, 1, 2, 1)
        .relu()
        .pool("pool3", 3, 2)
        .flatten()
        .linear("ip1", 64)
        .linear("ip2", 10)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_out_matches_known_cases() {
        assert_eq!(conv_out(227, 11, 4, 0), 55); // AlexNet conv1
        assert_eq!(conv_out(32, 5, 1, 2), 32); // same-padding
        assert_eq!(conv_out(28, 5, 1, 0), 24); // LeNet conv1
    }

    #[test]
    fn pool_out_is_ceil_mode() {
        assert_eq!(pool_out(55, 3, 2), 27);
        assert_eq!(pool_out(13, 3, 2), 6);
        assert_eq!(pool_out(32, 3, 2), 16); // Caffe cifar10_quick pool1 (ceil)
    }

    #[test]
    fn alexnet_dims_match_published_values() {
        let spec = alexnet_spec();
        assert_eq!(spec.layer("conv1").unwrap().out_dims, (96, 55, 55));
        assert_eq!(spec.layer("conv2").unwrap().in_dims, (96, 27, 27));
        assert_eq!(spec.layer("conv2").unwrap().out_dims, (256, 27, 27));
        assert_eq!(spec.layer("conv3").unwrap().out_dims, (384, 13, 13));
        assert_eq!(spec.layer("conv5").unwrap().out_dims, (256, 13, 13));
        assert_eq!(spec.layer("ip1").unwrap().in_dims, (256 * 6 * 6, 1, 1));
    }

    #[test]
    fn alexnet_weight_count_in_published_ballpark() {
        // ~61M parameters (weights only, no biases here).
        let w = alexnet_spec().total_weights();
        assert!((55_000_000..65_000_000).contains(&w), "{w}");
    }

    #[test]
    fn vgg19_has_sixteen_conv_and_three_fc() {
        let spec = vgg19_spec();
        let convs = spec.layers.iter().filter(|l| matches!(l.kind, LayerKind::Conv { .. })).count();
        let fcs = spec.layers.iter().filter(|l| matches!(l.kind, LayerKind::Linear { .. })).count();
        assert_eq!(convs, 16);
        assert_eq!(fcs, 3);
        assert_eq!(spec.layer("conv2_1").unwrap().in_dims, (64, 112, 112));
    }

    #[test]
    fn lenet_dims_match_caffe() {
        let spec = lenet_spec();
        assert_eq!(spec.layer("conv2").unwrap().in_dims, (20, 12, 12));
        assert_eq!(spec.layer("ip1").unwrap().in_dims, (50 * 4 * 4, 1, 1));
    }

    #[test]
    fn grouped_conv_reduces_weights_and_macs() {
        let dense = SpecBuilder::new("d", (64, 8, 8)).conv("c", 64, 3, 1, 1, 1).build();
        let grouped = SpecBuilder::new("g", (64, 8, 8)).conv("c", 64, 3, 1, 1, 16).build();
        assert_eq!(
            dense.layer("c").unwrap().weight_count(),
            16 * grouped.layer("c").unwrap().weight_count()
        );
        assert_eq!(dense.layer("c").unwrap().macs(), 16 * grouped.layer("c").unwrap().macs());
    }

    #[test]
    fn macs_formula_for_linear() {
        let spec = mlp_spec();
        assert_eq!(spec.layer("ip1").unwrap().macs(), (784 * 512) as u64);
    }

    #[test]
    #[should_panic(expected = "divisible by groups")]
    fn grouped_conv_requires_divisible_channels() {
        SpecBuilder::new("bad", (3, 8, 8)).conv("c", 4, 3, 1, 1, 2);
    }

    #[test]
    #[should_panic(expected = "flat input")]
    fn linear_requires_flatten() {
        SpecBuilder::new("bad", (3, 8, 8)).linear("ip", 10);
    }

    #[test]
    fn weight_layer_names_skips_pools_and_activations() {
        assert_eq!(lenet_spec().weight_layer_names(), vec!["conv1", "conv2", "ip1", "ip2"]);
    }
}
