//! Trainable parameters with gradient, momentum and freeze-mask storage.

use lts_tensor::{Shape, Tensor};
use serde::{Deserialize, Serialize};

/// A trainable parameter tensor with its gradient accumulator, momentum
/// buffer, and an optional freeze mask.
///
/// The freeze mask is how pruning is made *permanent*: once a weight group
/// is pruned, its entries are frozen at zero and the optimizer skips them,
/// so subsequent fine-tuning cannot resurrect pruned connections (§IV-C of
/// the paper trains, prunes, then retrains the survivors).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Param {
    /// Current parameter values.
    pub value: Tensor,
    /// Gradient accumulated by the current backward pass.
    pub grad: Tensor,
    /// Momentum buffer for SGD.
    pub momentum: Tensor,
    /// Per-entry freeze flags; frozen entries stay exactly zero.
    frozen: Option<Vec<bool>>,
}

impl Param {
    /// Wraps an initialized value tensor.
    pub fn new(value: Tensor) -> Self {
        let shape = value.shape().clone();
        Self {
            value,
            grad: Tensor::zeros(shape.clone()),
            momentum: Tensor::zeros(shape),
            frozen: None,
        }
    }

    /// A zero-initialized parameter of the given shape (used for biases).
    pub fn zeros(shape: Shape) -> Self {
        Self::new(Tensor::zeros(shape))
    }

    /// Number of scalar entries.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// Whether the parameter is empty.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }

    /// Clears the gradient (called once per optimizer step).
    pub fn zero_grad(&mut self) {
        self.grad.fill(0.0);
    }

    /// Freezes the entries at `indices` and zeroes their values.
    ///
    /// Frozen entries are pinned at exactly zero: their gradients are
    /// discarded by [`Param::apply_freeze`] and the optimizer leaves them
    /// untouched.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn freeze_indices(&mut self, indices: &[usize]) {
        let n = self.value.len();
        let mask = self.frozen.get_or_insert_with(|| vec![false; n]);
        let values = self.value.as_mut_slice();
        for &i in indices {
            assert!(i < n, "freeze index {i} out of bounds ({n} entries)");
            mask[i] = true;
            values[i] = 0.0;
        }
    }

    /// Whether entry `i` is frozen.
    pub fn is_frozen(&self, i: usize) -> bool {
        self.frozen.as_ref().is_some_and(|m| m[i])
    }

    /// The full freeze mask, if any entries were ever frozen.
    pub fn frozen_mask(&self) -> Option<&[bool]> {
        self.frozen.as_deref()
    }

    /// Number of frozen entries.
    pub fn frozen_count(&self) -> usize {
        self.frozen.as_ref().map_or(0, |m| m.iter().filter(|&&f| f).count())
    }

    /// Zeroes gradients and values of frozen entries (enforces the pin).
    pub fn apply_freeze(&mut self) {
        if let Some(mask) = &self.frozen {
            let g = self.grad.as_mut_slice();
            for (i, &f) in mask.iter().enumerate() {
                if f {
                    g[i] = 0.0;
                }
            }
            let v = self.value.as_mut_slice();
            for (i, &f) in mask.iter().enumerate() {
                if f {
                    v[i] = 0.0;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_param_has_zero_grad_and_momentum() {
        let p = Param::new(Tensor::ones(Shape::d1(4)));
        assert!(p.grad.as_slice().iter().all(|&x| x == 0.0));
        assert!(p.momentum.as_slice().iter().all(|&x| x == 0.0));
        assert_eq!(p.frozen_count(), 0);
    }

    #[test]
    fn freezing_zeroes_values_and_pins_them() {
        let mut p = Param::new(Tensor::ones(Shape::d1(4)));
        p.freeze_indices(&[1, 3]);
        assert_eq!(p.value.as_slice(), &[1.0, 0.0, 1.0, 0.0]);
        assert!(p.is_frozen(1));
        assert!(!p.is_frozen(0));
        assert_eq!(p.frozen_count(), 2);

        // A later gradient on a frozen entry is discarded.
        p.grad.as_mut_slice().copy_from_slice(&[1.0; 4]);
        p.value.as_mut_slice()[1] = 5.0; // simulate drift
        p.apply_freeze();
        assert_eq!(p.grad.as_slice(), &[1.0, 0.0, 1.0, 0.0]);
        assert_eq!(p.value.as_slice()[1], 0.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn freeze_rejects_bad_index() {
        Param::new(Tensor::ones(Shape::d1(2))).freeze_indices(&[2]);
    }

    #[test]
    fn zero_grad_clears() {
        let mut p = Param::new(Tensor::ones(Shape::d1(2)));
        p.grad.fill(3.0);
        p.zero_grad();
        assert!(p.grad.as_slice().iter().all(|&x| x == 0.0));
    }
}
