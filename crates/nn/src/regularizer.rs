//! Group-Lasso structured-sparsity regularization (Eq. (1)–(3) of the
//! paper) with per-group strength masks.
//!
//! The training objective is
//!
//! ```text
//! L(W) = L_D(W) + λ·R(W) + λ_g · Σ_l R_g(W^l)          (1)
//! R_g(W) = Σ_g s_g · ||w^g||₂                          (2,3) + strength mask
//! ```
//!
//! where `s_g` is the *sparsity strength* of group `g`. The paper's **SS**
//! scheme uses one strength for every group of a layer
//! ([`StrengthMask::uniform`]); the **SS_Mask** scheme scales each
//! producer→consumer group by the NoC hop distance between the two cores,
//! so groups that would cause long-distance traffic feel the strongest pull
//! toward zero (built by `lts-partition`'s distance model and passed in via
//! [`StrengthMask::from_factors`]).

use crate::grouping::GroupLayout;
use crate::param::Param;
use crate::{NnError, Result};
use serde::{Deserialize, Serialize};

/// Group norms below this are treated as zero for the subgradient.
const NORM_EPS: f32 = 1e-8;

/// A `cores × cores` matrix of per-group sparsity strengths
/// (row = producer core, column = consumer core).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StrengthMask {
    cores: usize,
    factors: Vec<f32>,
}

impl StrengthMask {
    /// The SS scheme: the same strength (1.0) on every group, distance
    /// oblivious.
    pub fn uniform(cores: usize) -> Self {
        assert!(cores > 0, "cores must be positive");
        Self { cores, factors: vec![1.0; cores * cores] }
    }

    /// Builds a mask from explicit per-group factors (row-major,
    /// producer × consumer). The SS_Mask scheme passes hop distances here.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] if the factor count is not
    /// `cores²` or any factor is negative/non-finite.
    pub fn from_factors(cores: usize, factors: Vec<f32>) -> Result<Self> {
        if factors.len() != cores * cores {
            return Err(NnError::BadConfig(format!(
                "strength mask needs {} factors for {cores} cores, got {}",
                cores * cores,
                factors.len()
            )));
        }
        if factors.iter().any(|f| !f.is_finite() || *f < 0.0) {
            return Err(NnError::BadConfig("strength factors must be finite and >= 0".into()));
        }
        Ok(Self { cores, factors })
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// Strength factor of the producer `p` → consumer `c` group.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn factor(&self, p: usize, c: usize) -> f32 {
        assert!(p < self.cores && c < self.cores, "core index out of range");
        self.factors[p * self.cores + c]
    }

    /// The raw row-major factor matrix.
    pub fn factors(&self) -> &[f32] {
        &self.factors
    }

    /// Largest factor in the mask.
    pub fn max_factor(&self) -> f32 {
        self.factors.iter().cloned().fold(0.0, f32::max)
    }
}

/// How the group-Lasso term is optimized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum LassoMode {
    /// Proximal gradient: after each SGD step, every group is
    /// soft-thresholded — `w_g ← w_g · max(0, 1 − η·λ·s_g / ‖w_g‖)`.
    /// The mathematically exact treatment of the non-smooth ‖·‖₂ term;
    /// produces exact zeros during training, which is what the traffic
    /// model keys on. The default.
    #[default]
    Proximal,
    /// Subgradient: add `λ·s_g·w/‖w_g‖` to the gradient. Matches naive
    /// implementations; needs many more steps to approach zero. Kept for
    /// the `ablation_lasso_mode` experiment.
    Subgradient,
}

/// Group-Lasso regularizer bound to one layer's block layout.
///
/// # Examples
///
/// ```
/// use lts_nn::grouping::GroupLayout;
/// use lts_nn::regularizer::{GroupLasso, StrengthMask};
///
/// # fn main() -> Result<(), lts_nn::NnError> {
/// // A 2-core partition of a 4x4 weight matrix: 4 single-entry-per-axis
/// // blocks, uniformly penalized (the SS scheme).
/// let layout = GroupLayout::new(4, 4, 1, 2);
/// let lasso = GroupLasso::new("ip1", layout, 0.1, StrengthMask::uniform(2))?;
/// let weights = vec![0.5f32; 16];
/// assert!(lasso.penalty(&weights) > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupLasso {
    /// Name of the layer this regularizer acts on.
    pub layer: String,
    /// Block layout of the layer's weight tensor.
    pub layout: GroupLayout,
    /// Global group-sparsity coefficient λ_g.
    pub lambda: f32,
    /// Per-group strength factors.
    pub mask: StrengthMask,
    /// Optimization mode (proximal by default).
    pub mode: LassoMode,
}

impl GroupLasso {
    /// Creates a regularizer.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] if the mask core count disagrees with
    /// the layout or `lambda` is negative/non-finite.
    pub fn new(layer: &str, layout: GroupLayout, lambda: f32, mask: StrengthMask) -> Result<Self> {
        if mask.cores() != layout.cores() {
            return Err(NnError::BadConfig(format!(
                "mask has {} cores but layout has {}",
                mask.cores(),
                layout.cores()
            )));
        }
        if !lambda.is_finite() || lambda < 0.0 {
            return Err(NnError::BadConfig(format!(
                "lambda must be finite and >= 0, got {lambda}"
            )));
        }
        Ok(Self { layer: layer.to_string(), layout, lambda, mask, mode: LassoMode::default() })
    }

    /// Switches the optimization mode.
    pub fn with_mode(mut self, mode: LassoMode) -> Self {
        self.mode = mode;
        self
    }

    /// The regularization penalty `λ_g · Σ_g s_g ||w_g||₂` on `weights`.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is shorter than the layout expects.
    pub fn penalty(&self, weights: &[f32]) -> f32 {
        let cores = self.layout.cores();
        let mut total = 0.0f64;
        for p in 0..cores {
            for c in 0..cores {
                let f = self.mask.factor(p, c);
                if f > 0.0 {
                    total += (f * self.layout.group_norm(p, c, weights)) as f64;
                }
            }
        }
        self.lambda * total as f32
    }

    /// Applies the proximal operator of `η·λ_g·s_g·‖·‖₂` to every group:
    /// soft-thresholds the group norm by `step_size · λ · s_g`, zeroing
    /// groups whose norm falls below the threshold.
    pub fn proximal_shrink(&self, param: &mut Param, step_size: f32) {
        let cores = self.layout.cores();
        let mut scales = vec![1.0f32; cores * cores];
        {
            let w = param.value.as_slice();
            for p in 0..cores {
                for c in 0..cores {
                    let f = self.mask.factor(p, c);
                    if f == 0.0 {
                        continue;
                    }
                    let threshold = step_size * self.lambda * f;
                    let norm = self.layout.group_norm(p, c, w);
                    scales[p * cores + c] =
                        if norm <= threshold + NORM_EPS { 0.0 } else { 1.0 - threshold / norm };
                }
            }
        }
        let w = param.value.as_mut_slice();
        for p in 0..cores {
            for c in 0..cores {
                let s = scales[p * cores + c];
                if s == 1.0 {
                    continue;
                }
                self.layout.visit_group(p, c, |idx| {
                    w[idx] *= s;
                });
            }
        }
    }

    /// Adds the group-Lasso subgradient
    /// `λ_g · s_g · w / ||w_g||₂` to `param.grad`.
    ///
    /// Groups whose norm is (numerically) zero contribute no gradient — the
    /// standard subgradient choice that keeps already-zero groups at zero.
    pub fn accumulate_grad(&self, param: &mut Param) {
        let cores = self.layout.cores();
        // Collect scale factors first so we can split the borrow of
        // value (read) and grad (write) cleanly.
        let mut scales = vec![0.0f32; cores * cores];
        {
            let w = param.value.as_slice();
            for p in 0..cores {
                for c in 0..cores {
                    let f = self.mask.factor(p, c);
                    if f == 0.0 {
                        continue;
                    }
                    let norm = self.layout.group_norm(p, c, w);
                    if norm > NORM_EPS {
                        scales[p * cores + c] = self.lambda * f / norm;
                    }
                }
            }
        }
        let values: Vec<f32> = param.value.as_slice().to_vec();
        let g = param.grad.as_mut_slice();
        for p in 0..cores {
            for c in 0..cores {
                let s = scales[p * cores + c];
                if s == 0.0 {
                    continue;
                }
                self.layout.visit_group(p, c, |idx| {
                    g[idx] += s * values[idx];
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lts_tensor::{Shape, Tensor};

    fn param_with(values: Vec<f32>) -> Param {
        let n = values.len();
        Param::new(Tensor::from_vec(Shape::d1(n), values).unwrap())
    }

    #[test]
    fn uniform_mask_has_all_ones() {
        let m = StrengthMask::uniform(3);
        for p in 0..3 {
            for c in 0..3 {
                assert_eq!(m.factor(p, c), 1.0);
            }
        }
    }

    #[test]
    fn mask_validation() {
        assert!(StrengthMask::from_factors(2, vec![1.0; 3]).is_err());
        assert!(StrengthMask::from_factors(2, vec![1.0, -1.0, 0.0, 0.0]).is_err());
        assert!(StrengthMask::from_factors(2, vec![0.0, 1.0, 2.0, 0.0]).is_ok());
    }

    #[test]
    fn penalty_is_weighted_sum_of_group_norms() {
        // 2x2 weight, single-entry groups, taps=1.
        let layout = GroupLayout::new(2, 2, 1, 2);
        let mask = StrengthMask::from_factors(2, vec![0.0, 2.0, 1.0, 0.0]).unwrap();
        let gl = GroupLasso::new("l", layout, 0.5, mask).unwrap();
        // w[(o,i)]: (0,0)=3 (p0,c0, factor 0), (0,1)=4 (p1,c0, factor 1),
        // (1,0)=5 (p0,c1, factor 2), (1,1)=6 (p1,c1, factor 0).
        let penalty = gl.penalty(&[3.0, 4.0, 5.0, 6.0]);
        assert!((penalty - 0.5 * (1.0 * 4.0 + 2.0 * 5.0)).abs() < 1e-6);
    }

    #[test]
    fn gradient_points_toward_zero_with_unit_norm_direction() {
        let layout = GroupLayout::new(2, 2, 1, 2);
        let gl = GroupLasso::new("l", layout, 1.0, StrengthMask::uniform(2)).unwrap();
        let mut p = param_with(vec![3.0, 0.0, 0.0, -4.0]);
        gl.accumulate_grad(&mut p);
        // Each nonzero single-entry group contributes sign(w) * lambda.
        assert!((p.grad.as_slice()[0] - 1.0).abs() < 1e-6);
        assert!((p.grad.as_slice()[3] + 1.0).abs() < 1e-6);
        // Zero groups contribute nothing.
        assert_eq!(p.grad.as_slice()[1], 0.0);
        assert_eq!(p.grad.as_slice()[2], 0.0);
    }

    #[test]
    fn gradient_matches_finite_difference_of_penalty() {
        let layout = GroupLayout::new(4, 4, 1, 2);
        let mask = StrengthMask::from_factors(2, vec![0.5, 2.0, 1.0, 0.25]).unwrap();
        let gl = GroupLasso::new("l", layout, 0.7, mask).unwrap();
        let w: Vec<f32> = (0..16).map(|i| 0.3 + 0.1 * i as f32).collect();
        let mut p = param_with(w.clone());
        gl.accumulate_grad(&mut p);
        let eps = 1e-3;
        for idx in [0usize, 5, 10, 15] {
            let mut wp = w.clone();
            wp[idx] += eps;
            let mut wm = w.clone();
            wm[idx] -= eps;
            let numeric = (gl.penalty(&wp) - gl.penalty(&wm)) / (2.0 * eps);
            let analytic = p.grad.as_slice()[idx];
            assert!((numeric - analytic).abs() < 1e-3, "idx {idx}: {numeric} vs {analytic}");
        }
    }

    #[test]
    fn masked_out_groups_receive_no_gradient() {
        let layout = GroupLayout::new(2, 2, 1, 2);
        let mask = StrengthMask::from_factors(2, vec![0.0, 0.0, 0.0, 0.0]).unwrap();
        let gl = GroupLasso::new("l", layout, 5.0, mask).unwrap();
        let mut p = param_with(vec![1.0, 2.0, 3.0, 4.0]);
        gl.accumulate_grad(&mut p);
        assert!(p.grad.as_slice().iter().all(|&g| g == 0.0));
        assert_eq!(gl.penalty(p.value.as_slice()), 0.0);
    }

    #[test]
    fn proximal_shrink_zeroes_small_groups_and_scales_large_ones() {
        let layout = GroupLayout::new(2, 2, 1, 2);
        let gl = GroupLasso::new("l", layout, 1.0, StrengthMask::uniform(2)).unwrap();
        // Threshold = step * lambda * factor = 0.5.
        let mut p = param_with(vec![0.3, -2.0, 0.5, 4.0]);
        gl.proximal_shrink(&mut p, 0.5);
        let w = p.value.as_slice();
        assert_eq!(w[0], 0.0, "below threshold -> exact zero");
        assert_eq!(w[2], 0.0, "at threshold -> exact zero");
        assert!((w[1] - (-1.5)).abs() < 1e-6, "norm 2 shrinks by 0.5");
        assert!((w[3] - 3.5).abs() < 1e-6);
    }

    #[test]
    fn proximal_shrink_respects_zero_factors() {
        let layout = GroupLayout::new(2, 2, 1, 2);
        let mask = StrengthMask::from_factors(2, vec![0.0, 1.0, 1.0, 0.0]).unwrap();
        let gl = GroupLasso::new("l", layout, 10.0, mask).unwrap();
        let mut p = param_with(vec![0.1, 0.1, 0.1, 0.1]);
        gl.proximal_shrink(&mut p, 1.0);
        let w = p.value.as_slice();
        // Diagonal groups (factor 0) untouched, off-diagonal zeroed.
        assert_eq!(w[0], 0.1);
        assert_eq!(w[3], 0.1);
        assert_eq!(w[1], 0.0);
        assert_eq!(w[2], 0.0);
    }

    #[test]
    fn proximal_is_contraction_toward_zero() {
        let layout = GroupLayout::new(4, 4, 1, 2);
        let gl = GroupLasso::new("l", layout.clone(), 0.3, StrengthMask::uniform(2)).unwrap();
        let w0: Vec<f32> = (0..16).map(|i| (i as f32 - 8.0) * 0.25).collect();
        let mut p = param_with(w0.clone());
        gl.proximal_shrink(&mut p, 0.1);
        for pr in 0..2 {
            for c in 0..2 {
                let before = layout.group_norm(pr, c, &w0);
                let after = layout.group_norm(pr, c, p.value.as_slice());
                assert!(after <= before + 1e-6);
            }
        }
    }

    #[test]
    fn constructor_validates_core_agreement() {
        let layout = GroupLayout::new(2, 2, 1, 2);
        assert!(GroupLasso::new("l", layout.clone(), 1.0, StrengthMask::uniform(3)).is_err());
        assert!(GroupLasso::new("l", layout, -1.0, StrengthMask::uniform(2)).is_err());
    }
}
