//! The layer abstraction shared by all network components.

use crate::descriptor::LayerSpec;
use crate::param::Param;
use crate::Result;
use lts_tensor::Tensor;

/// A differentiable network layer.
///
/// Layers are stateful: `forward` caches whatever `backward` needs, and
/// `backward` must be called with the gradient of the loss w.r.t. the
/// layer's most recent output. Layers are `Send + Sync` so networks can be
/// cloned into worker replicas and shared (behind locks) with the
/// execution engine's threads.
pub trait Layer: Send + Sync {
    /// The layer's unique name within its network.
    fn name(&self) -> &str;

    /// The analytic geometry descriptor of this layer.
    fn spec(&self) -> LayerSpec;

    /// Runs the layer on a batch (NCHW for spatial layers, `[batch, f]` for
    /// flat layers) and returns the output batch.
    ///
    /// # Errors
    ///
    /// Returns [`crate::NnError::BadInput`] if the input shape does not
    /// match the layer's geometry.
    fn forward(&mut self, input: &Tensor) -> Result<Tensor>;

    /// Propagates the output gradient to the input, accumulating parameter
    /// gradients along the way.
    ///
    /// # Errors
    ///
    /// Returns [`crate::NnError::BackwardBeforeForward`] if no forward pass
    /// has been run, or [`crate::NnError::BadInput`] on a shape mismatch.
    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor>;

    /// The layer's trainable parameters (empty for pools/activations).
    fn params(&self) -> Vec<&Param> {
        Vec::new()
    }

    /// Mutable access to the trainable parameters.
    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    /// The main weight parameter (what structured sparsification operates
    /// on), if the layer has one.
    fn weight(&self) -> Option<&Param> {
        None
    }

    /// Mutable access to the main weight parameter.
    fn weight_mut(&mut self) -> Option<&mut Param> {
        None
    }

    /// Switches between training and inference behaviour (dropout etc.).
    /// Most layers behave identically in both modes; the default is a
    /// no-op.
    fn set_training(&mut self, _training: bool) {}

    /// Clones the layer into a boxed trait object (weights included).
    fn clone_box(&self) -> Box<dyn Layer>;
}

impl Clone for Box<dyn Layer> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}
