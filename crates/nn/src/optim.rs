//! Stochastic gradient descent with momentum and weight decay.

use crate::param::Param;
use crate::{NnError, Result};
use serde::{Deserialize, Serialize};

/// SGD with classical momentum and L2 weight decay.
///
/// The update per parameter entry is
///
/// ```text
/// v ← μ·v − lr·(g + wd·w)
/// w ← w + v
/// ```
///
/// Frozen (pruned) entries are re-pinned to zero after every step via
/// [`Param::apply_freeze`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient μ.
    pub momentum: f32,
    /// L2 weight decay (the generic `R(W)` term of Eq. (1)).
    pub weight_decay: f32,
}

impl Sgd {
    /// Creates an optimizer.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] if any hyper-parameter is negative or
    /// non-finite, or `momentum >= 1`.
    pub fn new(lr: f32, momentum: f32, weight_decay: f32) -> Result<Self> {
        for (name, v) in [("lr", lr), ("momentum", momentum), ("weight_decay", weight_decay)] {
            if !v.is_finite() || v < 0.0 {
                return Err(NnError::BadConfig(format!("{name} must be finite and >= 0, got {v}")));
            }
        }
        if momentum >= 1.0 {
            return Err(NnError::BadConfig(format!("momentum must be < 1, got {momentum}")));
        }
        Ok(Self { lr, momentum, weight_decay })
    }

    /// Applies one update to every parameter, then clears gradients.
    pub fn step(&self, params: &mut [&mut Param]) {
        for p in params.iter_mut() {
            p.apply_freeze();
            let n = p.len();
            for i in 0..n {
                let w = p.value.as_slice()[i];
                let g = p.grad.as_slice()[i] + self.weight_decay * w;
                let v = self.momentum * p.momentum.as_slice()[i] - self.lr * g;
                p.momentum.as_mut_slice()[i] = v;
                p.value.as_mut_slice()[i] = w + v;
            }
            p.apply_freeze();
            p.zero_grad();
        }
    }

    /// Returns a copy with the learning rate multiplied by `factor`
    /// (for step/epoch decay schedules).
    pub fn with_lr_scaled(&self, factor: f32) -> Self {
        Self { lr: self.lr * factor, ..*self }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lts_tensor::{Shape, Tensor};

    fn param(values: Vec<f32>, grads: Vec<f32>) -> Param {
        let n = values.len();
        let mut p = Param::new(Tensor::from_vec(Shape::d1(n), values).unwrap());
        p.grad = Tensor::from_vec(Shape::d1(n), grads).unwrap();
        p
    }

    #[test]
    fn plain_sgd_moves_against_gradient() {
        let opt = Sgd::new(0.1, 0.0, 0.0).unwrap();
        let mut p = param(vec![1.0, -1.0], vec![2.0, -2.0]);
        opt.step(&mut [&mut p]);
        assert_eq!(p.value.as_slice(), &[0.8, -0.8]);
        assert!(p.grad.as_slice().iter().all(|&g| g == 0.0), "grad cleared");
    }

    #[test]
    fn momentum_accumulates_velocity() {
        let opt = Sgd::new(0.1, 0.9, 0.0).unwrap();
        let mut p = param(vec![0.0], vec![1.0]);
        opt.step(&mut [&mut p]);
        assert!((p.value.as_slice()[0] - (-0.1)).abs() < 1e-6);
        // Second step with the same gradient: v = 0.9*(-0.1) - 0.1 = -0.19.
        p.grad.fill(1.0);
        opt.step(&mut [&mut p]);
        assert!((p.value.as_slice()[0] - (-0.29)).abs() < 1e-6);
    }

    #[test]
    fn weight_decay_shrinks_weights_without_gradient() {
        let opt = Sgd::new(0.1, 0.0, 0.5).unwrap();
        let mut p = param(vec![1.0], vec![0.0]);
        opt.step(&mut [&mut p]);
        assert!((p.value.as_slice()[0] - 0.95).abs() < 1e-6);
    }

    #[test]
    fn frozen_entries_stay_exactly_zero() {
        let opt = Sgd::new(0.5, 0.9, 0.1).unwrap();
        let mut p = param(vec![1.0, 2.0], vec![3.0, 4.0]);
        p.freeze_indices(&[1]);
        for _ in 0..5 {
            p.grad.fill(1.0);
            opt.step(&mut [&mut p]);
        }
        assert_eq!(p.value.as_slice()[1], 0.0);
        assert_ne!(p.value.as_slice()[0], 1.0);
    }

    #[test]
    fn config_validation() {
        assert!(Sgd::new(-0.1, 0.0, 0.0).is_err());
        assert!(Sgd::new(0.1, 1.0, 0.0).is_err());
        assert!(Sgd::new(0.1, 0.9, f32::NAN).is_err());
    }

    #[test]
    fn lr_scaling_returns_adjusted_copy() {
        let opt = Sgd::new(0.2, 0.5, 0.0).unwrap();
        let decayed = opt.with_lr_scaled(0.5);
        assert!((decayed.lr - 0.1).abs() < 1e-7);
        assert_eq!(decayed.momentum, 0.5);
    }
}
