//! Fully-connected (inner-product) layer.

use crate::descriptor::{LayerKind, LayerSpec};
use crate::layer::Layer;
use crate::param::Param;
use crate::{NnError, Result};
use lts_tensor::matmul::{matmul, matmul_a_bt, matmul_at_b_into};
use lts_tensor::{init, Shape, Tensor, Workspace};
use rand::rngs::StdRng;

/// A fully-connected layer `y = W·x + b` with weight `[out_f, in_f]`.
///
/// Inputs are batches `[batch, in_f]`. The weight matrix is the object the
/// paper's MLP experiments sparsify: rows belong to the consumer core that
/// owns the output neuron, columns to the producer core that computed the
/// input neuron.
#[derive(Debug, Clone)]
pub struct Linear {
    name: String,
    in_f: usize,
    out_f: usize,
    weight: Param,
    bias: Param,
    cached_input: Option<Tensor>,
    scratch: Workspace,
}

impl Linear {
    /// Creates a layer with He-normal weights drawn from `rng`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] if either dimension is zero.
    pub fn new(name: &str, in_f: usize, out_f: usize, rng: &mut StdRng) -> Result<Self> {
        if in_f == 0 || out_f == 0 {
            return Err(NnError::BadConfig(format!(
                "linear layer `{name}` needs positive dims, got {in_f}x{out_f}"
            )));
        }
        Ok(Self {
            name: name.to_string(),
            in_f,
            out_f,
            weight: Param::new(init::he_normal(Shape::d2(out_f, in_f), in_f, rng)),
            bias: Param::zeros(Shape::d1(out_f)),
            cached_input: None,
            scratch: Workspace::new(),
        })
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_f
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_f
    }
}

impl Layer for Linear {
    fn name(&self) -> &str {
        &self.name
    }

    fn spec(&self) -> LayerSpec {
        LayerSpec {
            name: self.name.clone(),
            kind: LayerKind::Linear { in_f: self.in_f, out_f: self.out_f },
            in_dims: (self.in_f, 1, 1),
            out_dims: (self.out_f, 1, 1),
        }
    }

    fn forward(&mut self, input: &Tensor) -> Result<Tensor> {
        if input.shape().rank() != 2 || input.shape().dim(1) != self.in_f {
            return Err(NnError::BadInput {
                layer: self.name.clone(),
                reason: format!("expected [batch, {}], got {}", self.in_f, input.shape()),
            });
        }
        // Y[b, o] = Σ_i X[b, i] * W[o, i] + bias[o]
        let mut out = matmul_a_bt(input, &self.weight.value)?;
        let bias = self.bias.value.as_slice();
        let batch = out.shape().dim(0);
        let data = out.as_mut_slice();
        for b in 0..batch {
            for (o, &bv) in bias.iter().enumerate() {
                data[b * self.out_f + o] += bv;
            }
        }
        self.cached_input = Some(input.clone());
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let input = self
            .cached_input
            .as_ref()
            .ok_or_else(|| NnError::BackwardBeforeForward { layer: self.name.clone() })?;
        if grad_out.shape().rank() != 2 || grad_out.shape().dim(1) != self.out_f {
            return Err(NnError::BadInput {
                layer: self.name.clone(),
                reason: format!(
                    "expected gradient [batch, {}], got {}",
                    self.out_f,
                    grad_out.shape()
                ),
            });
        }
        // dW[o, i] += Σ_b dY[b, o] * X[b, i]  == dYᵀ · X, computed into a
        // pooled scratch buffer and accumulated in place.
        let batch_rows = grad_out.shape().dim(0);
        let mut dw = self.scratch.take(self.out_f * self.in_f);
        matmul_at_b_into(
            grad_out.as_slice(),
            input.as_slice(),
            &mut dw,
            self.out_f,
            batch_rows,
            self.in_f,
        );
        for (gw, &v) in self.weight.grad.as_mut_slice().iter_mut().zip(&dw) {
            *gw += v;
        }
        self.scratch.give(dw);
        // db[o] += Σ_b dY[b, o]
        let batch = grad_out.shape().dim(0);
        let g = grad_out.as_slice();
        let db = self.bias.grad.as_mut_slice();
        for b in 0..batch {
            for (o, dbv) in db.iter_mut().enumerate() {
                *dbv += g[b * self.out_f + o];
            }
        }
        // dX = dY · W
        Ok(matmul(grad_out, &self.weight.value)?)
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.weight, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn weight(&self) -> Option<&Param> {
        Some(&self.weight)
    }

    fn weight_mut(&mut self) -> Option<&mut Param> {
        Some(&mut self.weight)
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer_with_weights(w: Vec<f32>, bias: Vec<f32>, in_f: usize, out_f: usize) -> Linear {
        let mut rng = init::rng(0);
        let mut l = Linear::new("ip", in_f, out_f, &mut rng).unwrap();
        l.weight.value = Tensor::from_vec(Shape::d2(out_f, in_f), w).unwrap();
        l.bias.value = Tensor::from_vec(Shape::d1(out_f), bias).unwrap();
        l
    }

    #[test]
    fn forward_matches_hand_computation() {
        // W = [[1, 2], [3, 4]], b = [0.5, -0.5], x = [1, 1]
        let mut l = layer_with_weights(vec![1., 2., 3., 4.], vec![0.5, -0.5], 2, 2);
        let y = l.forward(&Tensor::from_vec(Shape::d2(1, 2), vec![1., 1.]).unwrap()).unwrap();
        assert_eq!(y.as_slice(), &[3.5, 6.5]);
    }

    #[test]
    fn backward_produces_correct_gradients() {
        let mut l = layer_with_weights(vec![1., 2., 3., 4.], vec![0., 0.], 2, 2);
        let x = Tensor::from_vec(Shape::d2(1, 2), vec![5., 7.]).unwrap();
        l.forward(&x).unwrap();
        let dy = Tensor::from_vec(Shape::d2(1, 2), vec![1., 2.]).unwrap();
        let dx = l.backward(&dy).unwrap();
        // dX = dY · W = [1*1+2*3, 1*2+2*4] = [7, 10]
        assert_eq!(dx.as_slice(), &[7., 10.]);
        // dW = dYᵀ · X = [[5,7],[10,14]]
        assert_eq!(l.weight.grad.as_slice(), &[5., 7., 10., 14.]);
        assert_eq!(l.bias.grad.as_slice(), &[1., 2.]);
    }

    #[test]
    fn numerical_gradient_check() {
        // Finite-difference check of dL/dW for L = sum(y).
        let mut rng = init::rng(42);
        let mut l = Linear::new("ip", 3, 2, &mut rng).unwrap();
        let x = init::uniform(Shape::d2(2, 3), 1.0, &mut rng);
        let eps = 1e-3;
        let idx = 4; // some weight entry
        let base = l.weight.value.as_slice()[idx];

        l.weight.value.as_mut_slice()[idx] = base + eps;
        let y_plus: f32 = l.forward(&x).unwrap().as_slice().iter().sum();
        l.weight.value.as_mut_slice()[idx] = base - eps;
        let y_minus: f32 = l.forward(&x).unwrap().as_slice().iter().sum();
        let numeric = (y_plus - y_minus) / (2.0 * eps);

        l.weight.value.as_mut_slice()[idx] = base;
        l.forward(&x).unwrap();
        let ones = Tensor::ones(Shape::d2(2, 2));
        l.backward(&ones).unwrap();
        let analytic = l.weight.grad.as_slice()[idx];
        assert!((numeric - analytic).abs() < 1e-2, "{numeric} vs {analytic}");
    }

    #[test]
    fn rejects_bad_shapes() {
        let mut rng = init::rng(0);
        let mut l = Linear::new("ip", 3, 2, &mut rng).unwrap();
        assert!(l.forward(&Tensor::zeros(Shape::d2(1, 4))).is_err());
        assert!(Linear::new("z", 0, 2, &mut rng).is_err());
    }

    #[test]
    fn batch_forward_is_per_row() {
        let mut l = layer_with_weights(vec![1., 0., 0., 1.], vec![0., 0.], 2, 2);
        let x = Tensor::from_vec(Shape::d2(2, 2), vec![1., 2., 3., 4.]).unwrap();
        let y = l.forward(&x).unwrap();
        assert_eq!(y.as_slice(), &[1., 2., 3., 4.]);
    }
}
