//! Neural-network layers, training, and structured sparsification for the
//! Learn-to-Scale reproduction.
//!
//! This crate implements everything the paper's three parallelization
//! strategies need from the "deep learning" side:
//!
//! * forward/backward layers — grouped 2-D convolution ([`conv::Conv2d`],
//!   the mechanism behind *structure-level parallelization*), fully-connected
//!   ([`linear::Linear`]), max pooling, ReLU, and softmax cross-entropy;
//! * a sequential [`network::Network`] container and SGD training loop
//!   ([`trainer::Trainer`]);
//! * the **group-Lasso structured-sparsity regularizer** of Eq. (1)–(3)
//!   ([`regularizer::GroupLasso`]) over producer-core × consumer-core weight
//!   blocks ([`grouping::GroupLayout`]), with an arbitrary per-block strength
//!   mask — the uniform mask gives the paper's *SS* scheme and a
//!   hop-distance mask gives *SS_Mask*;
//! * magnitude pruning with group freezing ([`prune`]);
//! * the model zoo of the evaluation section ([`models`]) and analytic
//!   layer descriptors for networks too large to train here
//!   ([`descriptor`], used by Table I).
//!
//! # Examples
//!
//! ```
//! use lts_nn::models;
//!
//! # fn main() -> Result<(), lts_nn::NnError> {
//! let net = models::mlp(28 * 28, 10, 11)?;
//! assert_eq!(net.spec().weight_layer_names(), vec!["ip1", "ip2", "ip3"]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::print_stdout, clippy::print_stderr)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod activation;
pub mod conv;
pub mod descriptor;
pub mod dropout;
pub mod error;
pub mod grouping;
pub mod layer;
pub mod linear;
pub mod loss;
pub mod models;
pub mod network;
pub mod optim;
pub mod param;
pub mod pool;
pub mod prune;
pub mod quantized;
pub mod regularizer;
pub mod saved;
pub mod trainer;

pub use descriptor::{LayerKind, LayerSpec, NetworkSpec};
pub use error::NnError;
pub use grouping::GroupLayout;
pub use layer::Layer;
pub use network::Network;
pub use param::Param;
pub use quantized::{quantized_parallel_accuracy, QuantizedNetwork};
pub use regularizer::{GroupLasso, StrengthMask};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, NnError>;
