//! Grouped 2-D convolution.
//!
//! `groups = 1` is an ordinary dense convolution. `groups = n` splits both
//! the input and output channels into `n` independent blocks — the
//! "grouping" structure of AlexNet that the paper repurposes as
//! *structure-level parallelization*: when each group is mapped to one
//! core, the layer needs **no inter-core feature-map traffic at all**.

use crate::descriptor::{Dims, LayerKind, LayerSpec};
use crate::layer::Layer;
use crate::param::Param;
use crate::{NnError, Result};
use lts_tensor::im2col::{col2im_into, im2col_into, ConvGeometry};
use lts_tensor::matmul::{matmul_a_bt_into, matmul_at_b_into, matmul_into};
use lts_tensor::{init, Shape, Tensor, Workspace};
use rand::rngs::StdRng;

/// A grouped 2-D convolution layer.
///
/// Weights are stored `[out_c, in_c/groups, kh, kw]`; inputs and outputs
/// are NCHW batches. Because both tensors are row-major, the weights and
/// input channels of one group are *contiguous* — the per-group GEMMs below
/// operate directly on slices of the stored tensors, with scratch
/// intermediates drawn from a per-layer [`Workspace`].
#[derive(Debug, Clone)]
pub struct Conv2d {
    name: String,
    in_dims: Dims,
    out_c: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
    groups: usize,
    weight: Param,
    bias: Param,
    cached_input: Option<Tensor>,
    scratch: Workspace,
}

impl Conv2d {
    /// Creates a convolution with He-normal weights.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] if channels are not divisible by
    /// `groups`, the kernel exceeds the padded input, or any dimension is
    /// zero.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: &str,
        in_dims: Dims,
        out_c: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        groups: usize,
        rng: &mut StdRng,
    ) -> Result<Self> {
        let (in_c, in_h, in_w) = in_dims;
        if in_c == 0 || out_c == 0 || kernel == 0 || stride == 0 {
            return Err(NnError::BadConfig(format!("conv `{name}`: zero-sized dimension")));
        }
        if groups == 0 || in_c % groups != 0 || !out_c.is_multiple_of(groups) {
            return Err(NnError::BadConfig(format!(
                "conv `{name}`: channels ({in_c} in, {out_c} out) not divisible by {groups} groups"
            )));
        }
        if in_h + 2 * pad < kernel || in_w + 2 * pad < kernel {
            return Err(NnError::BadConfig(format!(
                "conv `{name}`: kernel {kernel} exceeds padded input {in_h}x{in_w}+2*{pad}"
            )));
        }
        let icg = in_c / groups;
        let fan_in = icg * kernel * kernel;
        Ok(Self {
            name: name.to_string(),
            in_dims,
            out_c,
            kernel,
            stride,
            pad,
            groups,
            weight: Param::new(init::he_normal(Shape::d4(out_c, icg, kernel, kernel), fan_in, rng)),
            bias: Param::zeros(Shape::d1(out_c)),
            cached_input: None,
            scratch: Workspace::new(),
        })
    }

    /// Number of channel groups.
    pub fn groups(&self) -> usize {
        self.groups
    }

    /// Output dims `(out_c, oh, ow)`.
    pub fn out_dims(&self) -> Dims {
        let g = self.group_geometry();
        (self.out_c, g.out_h(), g.out_w())
    }

    /// Geometry of one channel group's convolution.
    fn group_geometry(&self) -> ConvGeometry {
        ConvGeometry {
            in_c: self.in_dims.0 / self.groups,
            in_h: self.in_dims.1,
            in_w: self.in_dims.2,
            kh: self.kernel,
            kw: self.kernel,
            stride: self.stride,
            pad: self.pad,
        }
    }

    /// Group `g`'s input channels of sample `n`, as a contiguous slice of
    /// the flat NCHW batch (`[icg, h, w]` row-major).
    fn group_input_slice<'a>(&self, batch: &'a [f32], n: usize, g: usize) -> &'a [f32] {
        let (in_c, h, w) = self.in_dims;
        let icg = in_c / self.groups;
        let start = (n * in_c + g * icg) * h * w;
        &batch[start..start + icg * h * w]
    }

    /// Group `g`'s `[ocg, icg*k*k]` weight matrix, as a contiguous slice of
    /// the stored `[out_c, icg, k, k]` weight tensor.
    fn group_weight_slice<'a>(&self, weight: &'a [f32], g: usize) -> &'a [f32] {
        let icg = self.in_dims.0 / self.groups;
        let ocg = self.out_c / self.groups;
        let row = icg * self.kernel * self.kernel;
        let start = g * ocg * row;
        &weight[start..start + ocg * row]
    }

    fn check_input(&self, input: &Tensor) -> Result<()> {
        let (c, h, w) = self.in_dims;
        let ok = input.shape().rank() == 4
            && input.shape().dim(1) == c
            && input.shape().dim(2) == h
            && input.shape().dim(3) == w;
        if !ok {
            return Err(NnError::BadInput {
                layer: self.name.clone(),
                reason: format!("expected [batch, {c}, {h}, {w}], got {}", input.shape()),
            });
        }
        Ok(())
    }
}

impl Layer for Conv2d {
    fn name(&self) -> &str {
        &self.name
    }

    fn spec(&self) -> LayerSpec {
        LayerSpec {
            name: self.name.clone(),
            kind: LayerKind::Conv {
                out_c: self.out_c,
                kernel: self.kernel,
                stride: self.stride,
                pad: self.pad,
                groups: self.groups,
            },
            in_dims: self.in_dims,
            out_dims: self.out_dims(),
        }
    }

    fn forward(&mut self, input: &Tensor) -> Result<Tensor> {
        self.check_input(input)?;
        let batch = input.shape().dim(0);
        let (out_c, oh, ow) = self.out_dims();
        let geom = self.group_geometry();
        let ocg = out_c / self.groups;
        let positions = oh * ow;
        let row = geom.col_rows();
        let mut out = Tensor::zeros(Shape::d4(batch, out_c, oh, ow));
        let mut cols = self.scratch.take(row * positions);
        let mut prod = self.scratch.take(ocg * positions);
        {
            let src = input.as_slice();
            let wslice = self.weight.value.as_slice();
            let bias = self.bias.value.as_slice();
            let dst = out.as_mut_slice();
            for n in 0..batch {
                for g in 0..self.groups {
                    im2col_into(self.group_input_slice(src, n, g), &geom, &mut cols);
                    // [ocg, R] x [R, P] -> [ocg, P]
                    let wmat = self.group_weight_slice(wslice, g);
                    matmul_into(wmat, &cols, &mut prod, ocg, row, positions);
                    for oc in 0..ocg {
                        let abs_oc = g * ocg + oc;
                        let base = ((n * out_c) + abs_oc) * positions;
                        let b = bias[abs_oc];
                        for p in 0..positions {
                            dst[base + p] = prod[oc * positions + p] + b;
                        }
                    }
                }
            }
        }
        self.scratch.give(prod);
        self.scratch.give(cols);
        self.cached_input = Some(input.clone());
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let input = self
            .cached_input
            .take()
            .ok_or_else(|| NnError::BackwardBeforeForward { layer: self.name.clone() })?;
        let batch = input.shape().dim(0);
        let (out_c, oh, ow) = self.out_dims();
        let expect = Shape::d4(batch, out_c, oh, ow);
        if grad_out.shape() != &expect {
            self.cached_input = Some(input);
            return Err(NnError::BadInput {
                layer: self.name.clone(),
                reason: format!("expected gradient {expect}, got {}", grad_out.shape()),
            });
        }
        let geom = self.group_geometry();
        let (in_c, in_h, in_w) = self.in_dims;
        let icg = in_c / self.groups;
        let ocg = out_c / self.groups;
        let positions = oh * ow;
        let row = icg * self.kernel * self.kernel;
        let group_image = icg * in_h * in_w;
        let mut grad_in = Tensor::zeros(input.shape().clone());
        let mut cols = self.scratch.take(row * positions);
        let mut gmat = self.scratch.take(ocg * positions);
        let mut dw = self.scratch.take(ocg * row);
        let mut dcols = self.scratch.take(row * positions);
        {
            let src = input.as_slice();
            let go = grad_out.as_slice();
            let wslice = self.weight.value.as_slice();
            let gi = grad_in.as_mut_slice();
            for n in 0..batch {
                for g in 0..self.groups {
                    im2col_into(self.group_input_slice(src, n, g), &geom, &mut cols);
                    // Gather this group's output gradient [ocg, P].
                    for oc in 0..ocg {
                        let abs_oc = g * ocg + oc;
                        let base = ((n * out_c) + abs_oc) * positions;
                        gmat[oc * positions..(oc + 1) * positions]
                            .copy_from_slice(&go[base..base + positions]);
                    }
                    // dW_g = G · colsᵀ  -> [ocg, R]
                    matmul_a_bt_into(&gmat, &cols, &mut dw, ocg, positions, row);
                    {
                        let wg = self.weight.grad.as_mut_slice();
                        let start = g * ocg * row;
                        for (i, &v) in dw.iter().enumerate() {
                            wg[start + i] += v;
                        }
                    }
                    // db
                    {
                        let bg = self.bias.grad.as_mut_slice();
                        for oc in 0..ocg {
                            let abs_oc = g * ocg + oc;
                            bg[abs_oc] +=
                                gmat[oc * positions..(oc + 1) * positions].iter().sum::<f32>();
                        }
                    }
                    // dCols = Wᵀ · G -> [R, P], accumulated back through
                    // col2im straight into this group's slice of grad_in.
                    let wmat = self.group_weight_slice(wslice, g);
                    matmul_at_b_into(wmat, &gmat, &mut dcols, row, ocg, positions);
                    let base = ((n * in_c) + g * icg) * in_h * in_w;
                    col2im_into(&dcols, &geom, &mut gi[base..base + group_image]);
                }
            }
        }
        self.scratch.give(dcols);
        self.scratch.give(dw);
        self.scratch.give(gmat);
        self.scratch.give(cols);
        self.cached_input = Some(input);
        Ok(grad_in)
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.weight, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn weight(&self) -> Option<&Param> {
        Some(&self.weight)
    }

    fn weight_mut(&mut self) -> Option<&mut Param> {
        Some(&mut self.weight)
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_conv(groups: usize) -> Conv2d {
        let mut rng = init::rng(9);
        Conv2d::new("conv", (2, 4, 4), 2, 3, 1, 1, groups, &mut rng).unwrap()
    }

    #[test]
    fn forward_identity_kernel_passes_input_through() {
        // Single channel, 1x1 kernel with weight 1 is the identity.
        let mut rng = init::rng(0);
        let mut c = Conv2d::new("id", (1, 3, 3), 1, 1, 1, 0, 1, &mut rng).unwrap();
        c.weight.value.fill(1.0);
        let x =
            Tensor::from_vec(Shape::d4(1, 1, 3, 3), (0..9).map(|v| v as f32).collect()).unwrap();
        let y = c.forward(&x).unwrap();
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn forward_matches_hand_convolution() {
        // 2x2 input, 2x2 kernel of ones, no pad: output = sum of input.
        let mut rng = init::rng(0);
        let mut c = Conv2d::new("sum", (1, 2, 2), 1, 2, 1, 0, 1, &mut rng).unwrap();
        c.weight.value.fill(1.0);
        c.bias.value.fill(0.5);
        let x = Tensor::from_vec(Shape::d4(1, 1, 2, 2), vec![1., 2., 3., 4.]).unwrap();
        let y = c.forward(&x).unwrap();
        assert_eq!(y.as_slice(), &[10.5]);
    }

    #[test]
    fn grouped_conv_equals_dense_with_block_diagonal_weights() {
        // A dense conv whose cross-group weight blocks are zero must equal
        // the grouped conv with the same within-group weights.
        let mut rng = init::rng(5);
        let x = init::uniform(Shape::d4(2, 4, 5, 5), 1.0, &mut rng);
        let mut grouped = Conv2d::new("g", (4, 5, 5), 4, 3, 1, 1, 2, &mut rng).unwrap();
        let mut dense = Conv2d::new("d", (4, 5, 5), 4, 3, 1, 1, 1, &mut rng).unwrap();
        // Embed grouped weights [4][2][3][3] into dense [4][4][3][3] block-diagonally.
        dense.weight.value.fill(0.0);
        let gw = grouped.weight.value.as_slice().to_vec();
        let k2 = 9;
        for oc in 0..4 {
            let g = oc / 2; // groups of 2 output channels
            for ic_local in 0..2 {
                let ic_abs = g * 2 + ic_local;
                for t in 0..k2 {
                    let src = (oc * 2 + ic_local) * k2 + t;
                    let dst = (oc * 4 + ic_abs) * k2 + t;
                    dense.weight.value.as_mut_slice()[dst] = gw[src];
                }
            }
        }
        let yg = grouped.forward(&x).unwrap();
        let yd = dense.forward(&x).unwrap();
        for (a, b) in yg.as_slice().iter().zip(yd.as_slice()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn backward_weight_gradient_passes_numerical_check() {
        let mut rng = init::rng(3);
        let mut c = tiny_conv(1);
        let x = init::uniform(Shape::d4(1, 2, 4, 4), 1.0, &mut rng);
        let eps = 1e-2;
        let idx = 7;
        let base = c.weight.value.as_slice()[idx];

        c.weight.value.as_mut_slice()[idx] = base + eps;
        let p: f32 = c.forward(&x).unwrap().as_slice().iter().sum();
        c.weight.value.as_mut_slice()[idx] = base - eps;
        let m: f32 = c.forward(&x).unwrap().as_slice().iter().sum();
        let numeric = (p - m) / (2.0 * eps);

        c.weight.value.as_mut_slice()[idx] = base;
        let y = c.forward(&x).unwrap();
        c.backward(&Tensor::ones(y.shape().clone())).unwrap();
        let analytic = c.weight.grad.as_slice()[idx];
        assert!((numeric - analytic).abs() < 1e-2, "{numeric} vs {analytic}");
    }

    #[test]
    fn backward_input_gradient_passes_numerical_check() {
        let mut rng = init::rng(4);
        let mut c = tiny_conv(2);
        let mut x = init::uniform(Shape::d4(1, 2, 4, 4), 1.0, &mut rng);
        let eps = 1e-2;
        let idx = 9;
        let base = x.as_slice()[idx];

        x.as_mut_slice()[idx] = base + eps;
        let p: f32 = c.forward(&x).unwrap().as_slice().iter().sum();
        x.as_mut_slice()[idx] = base - eps;
        let m: f32 = c.forward(&x).unwrap().as_slice().iter().sum();
        let numeric = (p - m) / (2.0 * eps);

        x.as_mut_slice()[idx] = base;
        let y = c.forward(&x).unwrap();
        let dx = c.backward(&Tensor::ones(y.shape().clone())).unwrap();
        let analytic = dx.as_slice()[idx];
        assert!((numeric - analytic).abs() < 1e-2, "{numeric} vs {analytic}");
    }

    #[test]
    fn strided_padded_conv_passes_numerical_gradient_check() {
        let mut rng = init::rng(11);
        let mut c = Conv2d::new("s2", (3, 7, 7), 4, 3, 2, 1, 1, &mut rng).unwrap();
        let x = init::uniform(Shape::d4(2, 3, 7, 7), 1.0, &mut rng);
        let eps = 1e-2;
        for idx in [0usize, 13, 51] {
            let base = c.weight.value.as_slice()[idx];
            c.weight.value.as_mut_slice()[idx] = base + eps;
            let p: f32 = c.forward(&x).unwrap().as_slice().iter().sum();
            c.weight.value.as_mut_slice()[idx] = base - eps;
            let m: f32 = c.forward(&x).unwrap().as_slice().iter().sum();
            let numeric = (p - m) / (2.0 * eps);
            c.weight.value.as_mut_slice()[idx] = base;
            let y = c.forward(&x).unwrap();
            c.weight.zero_grad();
            c.backward(&Tensor::ones(y.shape().clone())).unwrap();
            let analytic = c.weight.grad.as_slice()[idx];
            assert!((numeric - analytic).abs() < 2e-2, "idx {idx}: {numeric} vs {analytic}");
        }
    }

    #[test]
    fn one_by_one_spatial_input_works() {
        // Degenerate spatial extent: a conv acting as a per-pixel linear map.
        let mut rng = init::rng(12);
        let mut c = Conv2d::new("pix", (4, 1, 1), 6, 1, 1, 0, 1, &mut rng).unwrap();
        let x = init::uniform(Shape::d4(3, 4, 1, 1), 1.0, &mut rng);
        let y = c.forward(&x).unwrap();
        assert_eq!(y.shape().dims(), &[3, 6, 1, 1]);
        let g = c.backward(&Tensor::ones(y.shape().clone())).unwrap();
        assert_eq!(g.shape().dims(), &[3, 4, 1, 1]);
    }

    #[test]
    fn config_validation() {
        let mut rng = init::rng(0);
        assert!(Conv2d::new("bad", (3, 8, 8), 4, 3, 1, 1, 2, &mut rng).is_err()); // 3 % 2 != 0
        assert!(Conv2d::new("bad", (2, 2, 2), 2, 5, 1, 0, 1, &mut rng).is_err()); // kernel too big
        assert!(Conv2d::new("bad", (2, 8, 8), 2, 3, 0, 1, 1, &mut rng).is_err());
        // stride 0
    }

    #[test]
    fn forward_rejects_wrong_input_shape() {
        let mut c = tiny_conv(1);
        assert!(c.forward(&Tensor::zeros(Shape::d4(1, 3, 4, 4))).is_err());
        assert!(c.forward(&Tensor::zeros(Shape::d3(2, 4, 4))).is_err());
    }

    #[test]
    fn spec_reports_geometry() {
        let c = tiny_conv(2);
        let s = c.spec();
        assert_eq!(s.out_dims, (2, 4, 4));
        assert!(matches!(s.kind, LayerKind::Conv { groups: 2, .. }));
    }
}
