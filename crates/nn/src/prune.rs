//! Magnitude pruning of weight groups, with permanent freezing.
//!
//! After group-Lasso training has pushed selected producer→consumer blocks
//! toward zero, pruning snaps small-norm groups to *exactly* zero and
//! freezes them (see [`crate::param::Param::freeze_indices`]) so that
//! fine-tuning cannot regrow them. Exact zeros are what the traffic model
//! keys on: a zero group means the corresponding inter-core transfer is
//! skipped.

use crate::grouping::GroupLayout;
use crate::param::Param;
use crate::{NnError, Result};
use serde::{Deserialize, Serialize};

/// How to decide which groups get pruned.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PruneCriterion {
    /// Prune groups whose RMS weight magnitude (`||w_g||₂ / √|g|`) is below
    /// the threshold. Scale-free w.r.t. group size.
    RmsBelow(f32),
    /// Prune the fraction of groups with the smallest norms
    /// (0.0 = prune nothing, 1.0 = prune everything).
    SmallestFraction(f32),
    /// Prune groups whose RMS magnitude is below `ratio × tensor RMS` —
    /// scale-free across layers with different weight magnitudes, so one
    /// setting works for a whole network.
    RmsBelowRelative(f32),
}

impl PruneCriterion {
    fn validate(&self) -> Result<()> {
        match *self {
            PruneCriterion::RmsBelow(t) if !t.is_finite() || t < 0.0 => {
                Err(NnError::BadConfig(format!("rms threshold must be finite and >= 0, got {t}")))
            }
            PruneCriterion::SmallestFraction(f) if !(0.0..=1.0).contains(&f) => {
                Err(NnError::BadConfig(format!("fraction must be in [0, 1], got {f}")))
            }
            PruneCriterion::RmsBelowRelative(r) if !r.is_finite() || r < 0.0 => Err(
                NnError::BadConfig(format!("relative threshold must be finite and >= 0, got {r}")),
            ),
            _ => Ok(()),
        }
    }
}

/// Outcome of a pruning pass over one layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PruneReport {
    /// Groups zeroed by this pass.
    pub groups_pruned: usize,
    /// Total (non-empty) groups examined.
    pub groups_total: usize,
    /// Weight entries frozen by this pass.
    pub weights_frozen: usize,
}

impl PruneReport {
    /// Fraction of groups pruned (`0` when no groups exist).
    pub fn pruned_ratio(&self) -> f32 {
        if self.groups_total == 0 {
            0.0
        } else {
            self.groups_pruned as f32 / self.groups_total as f32
        }
    }
}

/// Prunes groups of `param` according to `criterion` and freezes them.
///
/// Already-frozen groups count as pruned but are not re-frozen.
///
/// # Examples
///
/// ```
/// use lts_nn::grouping::GroupLayout;
/// use lts_nn::param::Param;
/// use lts_nn::prune::{prune_groups, PruneCriterion};
/// use lts_tensor::{Shape, Tensor};
///
/// # fn main() -> Result<(), lts_nn::NnError> {
/// let layout = GroupLayout::new(2, 2, 1, 2);
/// let mut p = Param::new(Tensor::from_vec(Shape::d1(4), vec![0.01, 1.0, 0.02, 2.0])
///     .map_err(lts_nn::NnError::from)?);
/// let report = prune_groups(&mut p, &layout, PruneCriterion::RmsBelow(0.1))?;
/// assert_eq!(report.groups_pruned, 2);
/// assert_eq!(p.value.as_slice(), &[0.0, 1.0, 0.0, 2.0]);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Returns [`NnError::BadConfig`] for an invalid criterion or if the layout
/// does not match the parameter size.
pub fn prune_groups(
    param: &mut Param,
    layout: &GroupLayout,
    criterion: PruneCriterion,
) -> Result<PruneReport> {
    criterion.validate()?;
    if layout.weight_len() != param.len() {
        return Err(NnError::BadConfig(format!(
            "layout covers {} weights but parameter has {}",
            layout.weight_len(),
            param.len()
        )));
    }
    let cores = layout.cores();
    // Gather (p, c, norm, len) for non-empty groups.
    let mut groups: Vec<(usize, usize, f32, usize)> = Vec::with_capacity(cores * cores);
    {
        let w = param.value.as_slice();
        for p in 0..cores {
            for c in 0..cores {
                let len = layout.group_len(p, c);
                if len == 0 {
                    continue;
                }
                groups.push((p, c, layout.group_norm(p, c, w), len));
            }
        }
    }
    let to_prune: Vec<(usize, usize)> = match criterion {
        PruneCriterion::RmsBelowRelative(r) => {
            let tensor_rms = lts_tensor::stats::rms(param.value.as_slice());
            let t = r * tensor_rms;
            groups
                .iter()
                .filter(|(_, _, norm, len)| norm / (*len as f32).sqrt() < t)
                .map(|&(p, c, _, _)| (p, c))
                .collect()
        }
        PruneCriterion::RmsBelow(t) => groups
            .iter()
            .filter(|(_, _, norm, len)| norm / (*len as f32).sqrt() < t)
            .map(|&(p, c, _, _)| (p, c))
            .collect(),
        PruneCriterion::SmallestFraction(f) => {
            let mut sorted = groups.clone();
            sorted.sort_by(|a, b| a.2.partial_cmp(&b.2).expect("norms are finite"));
            let count = ((sorted.len() as f32) * f).round() as usize;
            sorted.iter().take(count).map(|&(p, c, _, _)| (p, c)).collect()
        }
    };
    let mut indices = Vec::new();
    for &(p, c) in &to_prune {
        layout.visit_group(p, c, |idx| indices.push(idx));
    }
    let weights_frozen = indices.len();
    param.freeze_indices(&indices);
    Ok(PruneReport { groups_pruned: to_prune.len(), groups_total: groups.len(), weights_frozen })
}

/// Counts groups of `weights` that are entirely zero (the quantity the
/// traffic model ultimately exploits).
pub fn zero_group_count(layout: &GroupLayout, weights: &[f32]) -> usize {
    let cores = layout.cores();
    let mut count = 0;
    for p in 0..cores {
        for c in 0..cores {
            if layout.group_len(p, c) > 0 && layout.group_is_zero(p, c, weights) {
                count += 1;
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use lts_tensor::{Shape, Tensor};

    fn param(values: Vec<f32>) -> Param {
        let n = values.len();
        Param::new(Tensor::from_vec(Shape::d1(n), values).unwrap())
    }

    #[test]
    fn rms_criterion_prunes_small_groups() {
        let layout = GroupLayout::new(2, 2, 1, 2); // 4 single-entry groups
        let mut p = param(vec![0.01, 1.0, 0.02, 2.0]);
        let report = prune_groups(&mut p, &layout, PruneCriterion::RmsBelow(0.1)).unwrap();
        assert_eq!(report.groups_pruned, 2);
        assert_eq!(report.groups_total, 4);
        assert_eq!(report.weights_frozen, 2);
        assert_eq!(p.value.as_slice(), &[0.0, 1.0, 0.0, 2.0]);
    }

    #[test]
    fn fraction_criterion_prunes_exactly_the_smallest() {
        let layout = GroupLayout::new(2, 2, 1, 2);
        let mut p = param(vec![0.5, 0.1, 0.9, 0.3]);
        let report = prune_groups(&mut p, &layout, PruneCriterion::SmallestFraction(0.5)).unwrap();
        assert_eq!(report.groups_pruned, 2);
        // The two smallest magnitudes (0.1, 0.3) are zeroed.
        assert_eq!(p.value.as_slice(), &[0.5, 0.0, 0.9, 0.0]);
    }

    #[test]
    fn pruned_groups_survive_fine_tuning() {
        let layout = GroupLayout::new(2, 2, 1, 2);
        let mut p = param(vec![0.01, 1.0, 0.02, 2.0]);
        prune_groups(&mut p, &layout, PruneCriterion::RmsBelow(0.1)).unwrap();
        // Simulate a training step trying to regrow pruned weights.
        p.grad.fill(-10.0);
        let opt = crate::optim::Sgd::new(0.1, 0.0, 0.0).unwrap();
        opt.step(&mut [&mut p]);
        assert_eq!(p.value.as_slice()[0], 0.0);
        assert_eq!(p.value.as_slice()[2], 0.0);
        assert!(p.value.as_slice()[1] > 1.0);
    }

    #[test]
    fn zero_group_count_matches_pruning() {
        let layout = GroupLayout::new(4, 4, 1, 2); // 4 groups of 4 entries
        let mut p = param((1..=16).map(|i| i as f32 * 0.1).collect());
        assert_eq!(zero_group_count(&layout, p.value.as_slice()), 0);
        prune_groups(&mut p, &layout, PruneCriterion::SmallestFraction(0.25)).unwrap();
        assert_eq!(zero_group_count(&layout, p.value.as_slice()), 1);
    }

    #[test]
    fn validation_errors() {
        let layout = GroupLayout::new(2, 2, 1, 2);
        let mut p = param(vec![0.0; 4]);
        assert!(prune_groups(&mut p, &layout, PruneCriterion::SmallestFraction(1.5)).is_err());
        assert!(prune_groups(&mut p, &layout, PruneCriterion::RmsBelow(-1.0)).is_err());
        let wrong_layout = GroupLayout::new(3, 3, 1, 3);
        assert!(prune_groups(&mut p, &wrong_layout, PruneCriterion::RmsBelow(0.1)).is_err());
    }

    #[test]
    fn relative_criterion_is_scale_free() {
        let layout = GroupLayout::new(2, 2, 1, 2);
        // Same relative structure at two very different scales.
        for scale in [1.0f32, 1000.0] {
            let mut p = param(vec![0.01 * scale, 1.0 * scale, 0.02 * scale, 2.0 * scale]);
            let report =
                prune_groups(&mut p, &layout, PruneCriterion::RmsBelowRelative(0.1)).unwrap();
            assert_eq!(report.groups_pruned, 2, "scale {scale}");
        }
    }

    #[test]
    fn fraction_one_prunes_everything() {
        let layout = GroupLayout::new(2, 2, 1, 2);
        let mut p = param(vec![1.0, 2.0, 3.0, 4.0]);
        let report = prune_groups(&mut p, &layout, PruneCriterion::SmallestFraction(1.0)).unwrap();
        assert_eq!(report.groups_pruned, 4);
        assert!(p.value.as_slice().iter().all(|&w| w == 0.0));
        assert_eq!(report.pruned_ratio(), 1.0);
    }
}
