//! Sequential network container and builder.

use crate::descriptor::{dims_len, Dims, LayerKind, LayerSpec, NetworkSpec};
use crate::layer::Layer;
use crate::param::Param;
use crate::{activation::Relu, conv::Conv2d, linear::Linear, pool::MaxPool2d};
use crate::{NnError, Result};
use lts_tensor::{Shape, Tensor};
use rand::rngs::StdRng;
use rand::Rng;

/// Structural adapter collapsing NCHW activations to `[batch, features]`.
#[derive(Debug, Clone)]
pub struct Flatten {
    in_dims: Dims,
    last_shape: Option<Shape>,
}

impl Flatten {
    /// Creates a flatten layer for inputs of the given dims.
    pub fn new(in_dims: Dims) -> Self {
        Self { in_dims, last_shape: None }
    }
}

impl Layer for Flatten {
    fn name(&self) -> &str {
        "flatten"
    }

    fn spec(&self) -> LayerSpec {
        LayerSpec {
            name: "flatten".into(),
            kind: LayerKind::Flatten,
            in_dims: self.in_dims,
            out_dims: (dims_len(self.in_dims), 1, 1),
        }
    }

    fn forward(&mut self, input: &Tensor) -> Result<Tensor> {
        self.last_shape = Some(input.shape().clone());
        let batch = input.shape().dim(0);
        Ok(input.reshaped(Shape::d2(batch, input.len() / batch.max(1)))?)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let shape = self
            .last_shape
            .as_ref()
            .ok_or_else(|| NnError::BackwardBeforeForward { layer: "flatten".into() })?;
        Ok(grad_out.reshaped(shape.clone())?)
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// A feed-forward network: an ordered chain of layers.
///
/// # Examples
///
/// ```
/// use lts_nn::network::NetworkBuilder;
/// use lts_tensor::{init, Shape, Tensor};
///
/// # fn main() -> Result<(), lts_nn::NnError> {
/// let mut rng = init::rng(1);
/// let mut net = NetworkBuilder::new("tiny", (1, 8, 8))
///     .conv("conv1", 4, 3, 1, 1, 1)
///     .relu()
///     .pool("pool1", 2, 2)
///     .flatten()
///     .linear("ip1", 10)
///     .build(&mut rng)?;
/// let out = net.forward(&Tensor::zeros(Shape::d4(2, 1, 8, 8)))?;
/// assert_eq!(out.shape().dims(), &[2, 10]);
/// # Ok(())
/// # }
/// ```
pub struct Network {
    name: String,
    input: Dims,
    layers: Vec<Box<dyn Layer>>,
}

impl Clone for Network {
    fn clone(&self) -> Self {
        Self { name: self.name.clone(), input: self.input, layers: self.layers.clone() }
    }
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("name", &self.name)
            .field("input", &self.input)
            .field("layers", &self.layers.iter().map(|l| l.name().to_string()).collect::<Vec<_>>())
            .finish()
    }
}

impl Network {
    /// The network's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Input dims `(c, h, w)`.
    pub fn input_dims(&self) -> Dims {
        self.input
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the network has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// The analytic descriptor of the whole network.
    pub fn spec(&self) -> NetworkSpec {
        NetworkSpec {
            name: self.name.clone(),
            input: self.input,
            layers: self.layers.iter().map(|l| l.spec()).collect(),
        }
    }

    /// Runs a full forward pass over a batch.
    ///
    /// # Errors
    ///
    /// Propagates the first layer error (usually a shape mismatch).
    pub fn forward(&mut self, input: &Tensor) -> Result<Tensor> {
        let _probe = lts_obs::span("nn.forward");
        let mut current = input.clone();
        for layer in &mut self.layers {
            let _layer_probe = lts_obs::span(layer.name());
            current = layer.forward(&current)?;
        }
        Ok(current)
    }

    /// Back-propagates a loss gradient, accumulating parameter gradients.
    ///
    /// # Errors
    ///
    /// Propagates layer errors (e.g. backward before forward).
    pub fn backward(&mut self, grad: &Tensor) -> Result<Tensor> {
        let _probe = lts_obs::span("nn.backward");
        let mut current = grad.clone();
        for layer in self.layers.iter_mut().rev() {
            let _layer_probe = lts_obs::span(layer.name());
            current = layer.backward(&current)?;
        }
        Ok(current)
    }

    /// All trainable parameters, in layer order.
    pub fn params(&self) -> Vec<&Param> {
        self.layers.iter().flat_map(|l| l.params()).collect()
    }

    /// All trainable parameters, mutably, in layer order.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        self.layers.iter_mut().flat_map(|l| l.params_mut()).collect()
    }

    /// Clears all parameter gradients.
    pub fn zero_grads(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }

    /// Switches every layer between training and inference behaviour
    /// (affects [`crate::dropout::Dropout`]; a no-op for other layers).
    pub fn set_training(&mut self, training: bool) {
        for layer in &mut self.layers {
            layer.set_training(training);
        }
    }

    /// Immutable access to the layer called `name`.
    pub fn layer(&self, name: &str) -> Option<&dyn Layer> {
        self.layers.iter().find(|l| l.name() == name).map(|b| b.as_ref())
    }

    /// Mutable access to the layer called `name`.
    pub fn layer_mut(&mut self, name: &str) -> Option<&mut Box<dyn Layer>> {
        self.layers.iter_mut().find(|l| l.name() == name)
    }

    /// Mutable access to the weight parameter of the layer called `name`.
    pub fn layer_weight_mut(&mut self, name: &str) -> Option<&mut Param> {
        self.layers.iter_mut().find(|l| l.name() == name).and_then(|l| l.weight_mut())
    }

    /// The weight parameter of the layer called `name`.
    pub fn layer_weight(&self, name: &str) -> Option<&Param> {
        self.layers.iter().find(|l| l.name() == name).and_then(|l| l.weight())
    }

    /// Names of the weight-bearing layers, in order.
    pub fn weight_layer_names(&self) -> Vec<String> {
        self.layers.iter().filter(|l| l.weight().is_some()).map(|l| l.name().to_string()).collect()
    }

    /// Deep copies of the layer chain, in order. Used by the quantized
    /// inference builder ([`crate::quantized::QuantizedNetwork`]) to
    /// calibrate against and wrap the trained f32 layers.
    pub fn clone_layers(&self) -> Vec<Box<dyn Layer>> {
        self.layers.iter().map(|l| l.clone_box()).collect()
    }

    /// Quantizes every parameter through the accelerator's 16-bit
    /// fixed-point format (what the simulated chip computes with).
    pub fn quantize_weights(&mut self) {
        for p in self.params_mut() {
            lts_tensor::fixed::quantize_tensor(&mut p.value);
        }
    }

    /// Predicted class per sample of a batch.
    ///
    /// # Errors
    ///
    /// Propagates forward errors.
    pub fn predict(&mut self, batch: &Tensor) -> Result<Vec<usize>> {
        self.set_training(false);
        let out = self.forward(batch)?;
        let classes = out.shape().dim(1);
        Ok((0..out.shape().dim(0))
            .map(|b| {
                lts_tensor::ops::argmax(&out.as_slice()[b * classes..(b + 1) * classes])
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect())
    }

    /// Classification accuracy on `(inputs, labels)`, evaluated in batches
    /// of `batch_size`.
    ///
    /// # Errors
    ///
    /// Propagates forward errors; returns [`NnError::BadInput`] if the
    /// label count disagrees with the input batch dimension.
    pub fn evaluate(
        &mut self,
        inputs: &Tensor,
        labels: &[usize],
        batch_size: usize,
    ) -> Result<f32> {
        let total = inputs.shape().dim(0);
        if labels.len() != total {
            return Err(NnError::BadInput {
                layer: "evaluate".into(),
                reason: format!("{} labels for {total} inputs", labels.len()),
            });
        }
        if total == 0 {
            return Ok(0.0);
        }
        let sample_len = inputs.len() / total;
        let mut correct = 0usize;
        let mut start = 0usize;
        while start < total {
            let end = (start + batch_size).min(total);
            let n = end - start;
            let mut dims = inputs.shape().dims().to_vec();
            dims[0] = n;
            let slice = inputs.as_slice()[start * sample_len..end * sample_len].to_vec();
            let batch = Tensor::from_vec(Shape::new(dims), slice)?;
            let preds = self.predict(&batch)?;
            correct += preds.iter().zip(&labels[start..end]).filter(|(p, l)| p == l).count();
            start = end;
        }
        Ok(correct as f32 / total as f32)
    }
}

/// Builds a [`Network`] layer by layer, tracking activation dims.
#[derive(Debug, Clone)]
pub struct NetworkBuilder {
    name: String,
    input: Dims,
    current: Dims,
    ops: Vec<BuilderOp>,
    auto_relu: usize,
}

#[derive(Debug, Clone)]
enum BuilderOp {
    Conv {
        name: String,
        out_c: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        groups: usize,
        in_dims: Dims,
    },
    Pool {
        name: String,
        kernel: usize,
        stride: usize,
        in_dims: Dims,
    },
    AvgPool {
        name: String,
        kernel: usize,
        stride: usize,
        in_dims: Dims,
    },
    Relu {
        name: String,
        dims: Dims,
    },
    Dropout {
        name: String,
        p: f32,
        dims: Dims,
    },
    Flatten {
        in_dims: Dims,
    },
    Linear {
        name: String,
        in_f: usize,
        out_f: usize,
    },
}

impl NetworkBuilder {
    /// Starts a network for inputs of `input` dims.
    pub fn new(name: &str, input: Dims) -> Self {
        Self { name: name.to_string(), input, current: input, ops: Vec::new(), auto_relu: 0 }
    }

    /// Current activation dims.
    pub fn current_dims(&self) -> Dims {
        self.current
    }

    /// Appends a (possibly grouped) convolution.
    pub fn conv(
        mut self,
        name: &str,
        out_c: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        groups: usize,
    ) -> Self {
        let in_dims = self.current;
        let oh = crate::descriptor::conv_out(in_dims.1, kernel, stride, pad);
        let ow = crate::descriptor::conv_out(in_dims.2, kernel, stride, pad);
        self.ops.push(BuilderOp::Conv {
            name: name.into(),
            out_c,
            kernel,
            stride,
            pad,
            groups,
            in_dims,
        });
        self.current = (out_c, oh, ow);
        self
    }

    /// Appends a max-pooling layer.
    pub fn pool(mut self, name: &str, kernel: usize, stride: usize) -> Self {
        let in_dims = self.current;
        let oh = crate::descriptor::pool_out(in_dims.1, kernel, stride);
        let ow = crate::descriptor::pool_out(in_dims.2, kernel, stride);
        self.ops.push(BuilderOp::Pool { name: name.into(), kernel, stride, in_dims });
        self.current = (in_dims.0, oh, ow);
        self
    }

    /// Appends an average-pooling layer.
    pub fn avg_pool(mut self, name: &str, kernel: usize, stride: usize) -> Self {
        let in_dims = self.current;
        let oh = crate::descriptor::pool_out(in_dims.1, kernel, stride);
        let ow = crate::descriptor::pool_out(in_dims.2, kernel, stride);
        self.ops.push(BuilderOp::AvgPool { name: name.into(), kernel, stride, in_dims });
        self.current = (in_dims.0, oh, ow);
        self
    }

    /// Appends a ReLU.
    pub fn relu(mut self) -> Self {
        self.auto_relu += 1;
        self.ops
            .push(BuilderOp::Relu { name: format!("relu{}", self.auto_relu), dims: self.current });
        self
    }

    /// Appends an inverted-dropout layer with drop probability `p`.
    pub fn dropout(mut self, name: &str, p: f32) -> Self {
        self.ops.push(BuilderOp::Dropout { name: name.into(), p, dims: self.current });
        self
    }

    /// Appends a flatten adapter.
    pub fn flatten(mut self) -> Self {
        let in_dims = self.current;
        self.ops.push(BuilderOp::Flatten { in_dims });
        self.current = (dims_len(in_dims), 1, 1);
        self
    }

    /// Appends a fully-connected layer.
    pub fn linear(mut self, name: &str, out_f: usize) -> Self {
        let in_f = dims_len(self.current);
        self.ops.push(BuilderOp::Linear { name: name.into(), in_f, out_f });
        self.current = (out_f, 1, 1);
        self
    }

    /// Instantiates all layers with weights drawn from `rng`.
    ///
    /// # Errors
    ///
    /// Returns the first layer-construction error (invalid geometry).
    pub fn build(self, rng: &mut StdRng) -> Result<Network> {
        let mut layers: Vec<Box<dyn Layer>> = Vec::with_capacity(self.ops.len());
        for op in self.ops {
            match op {
                BuilderOp::Conv { name, out_c, kernel, stride, pad, groups, in_dims } => {
                    layers.push(Box::new(Conv2d::new(
                        &name, in_dims, out_c, kernel, stride, pad, groups, rng,
                    )?));
                }
                BuilderOp::Pool { name, kernel, stride, in_dims } => {
                    layers.push(Box::new(MaxPool2d::new(&name, in_dims, kernel, stride)?));
                }
                BuilderOp::AvgPool { name, kernel, stride, in_dims } => {
                    layers.push(Box::new(crate::pool::AvgPool2d::new(
                        &name, in_dims, kernel, stride,
                    )?));
                }
                BuilderOp::Relu { name, dims } => layers.push(Box::new(Relu::new(&name, dims))),
                BuilderOp::Dropout { name, p, dims } => {
                    // Per-layer RNG stream derived from the weight RNG so
                    // builds stay deterministic.
                    let seed = rng.gen::<u64>();
                    layers.push(Box::new(crate::dropout::Dropout::new(&name, dims, p, seed)?));
                }
                BuilderOp::Flatten { in_dims } => layers.push(Box::new(Flatten::new(in_dims))),
                BuilderOp::Linear { name, in_f, out_f } => {
                    layers.push(Box::new(Linear::new(&name, in_f, out_f, rng)?));
                }
            }
        }
        Ok(Network { name: self.name, input: self.input, layers })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lts_tensor::init;

    fn tiny_net(seed: u64) -> Network {
        let mut rng = init::rng(seed);
        NetworkBuilder::new("tiny", (1, 6, 6))
            .conv("conv1", 2, 3, 1, 1, 1)
            .relu()
            .pool("pool1", 2, 2)
            .flatten()
            .linear("ip1", 4)
            .build(&mut rng)
            .unwrap()
    }

    #[test]
    fn forward_produces_logits_of_right_shape() {
        let mut net = tiny_net(1);
        let out = net.forward(&Tensor::zeros(Shape::d4(3, 1, 6, 6))).unwrap();
        assert_eq!(out.shape().dims(), &[3, 4]);
    }

    #[test]
    fn spec_matches_live_layers() {
        let net = tiny_net(2);
        let spec = net.spec();
        assert_eq!(spec.layer("conv1").unwrap().out_dims, (2, 6, 6));
        assert_eq!(spec.layer("ip1").unwrap().in_dims, (2 * 3 * 3, 1, 1));
        assert_eq!(net.weight_layer_names(), vec!["conv1", "ip1"]);
    }

    #[test]
    fn backward_runs_after_forward_and_fills_grads() {
        let mut net = tiny_net(3);
        let x = init::uniform(Shape::d4(2, 1, 6, 6), 1.0, &mut init::rng(0));
        let y = net.forward(&x).unwrap();
        net.backward(&Tensor::ones(y.shape().clone())).unwrap();
        let grads_nonzero =
            net.params_mut().iter().any(|p| p.grad.as_slice().iter().any(|&g| g != 0.0));
        assert!(grads_nonzero);
    }

    #[test]
    fn clone_is_deep() {
        let mut a = tiny_net(4);
        let mut b = a.clone();
        let x = init::uniform(Shape::d4(1, 1, 6, 6), 1.0, &mut init::rng(0));
        let ya = a.forward(&x).unwrap();
        // Mutating the clone's weights must not affect the original.
        b.layer_weight_mut("ip1").unwrap().value.fill(0.0);
        let ya2 = a.forward(&x).unwrap();
        assert_eq!(ya, ya2);
        let yb = b.forward(&x).unwrap();
        assert_ne!(ya, yb);
    }

    #[test]
    fn evaluate_counts_accuracy() {
        let mut net = tiny_net(5);
        let x = init::uniform(Shape::d4(4, 1, 6, 6), 1.0, &mut init::rng(1));
        let preds = net.predict(&x).unwrap();
        let acc = net.evaluate(&x, &preds, 2).unwrap();
        assert_eq!(acc, 1.0);
        let wrong: Vec<usize> = preds.iter().map(|&p| (p + 1) % 4).collect();
        let acc0 = net.evaluate(&x, &wrong, 3).unwrap();
        assert_eq!(acc0, 0.0);
    }

    #[test]
    fn evaluate_rejects_mismatched_labels() {
        let mut net = tiny_net(6);
        let x = Tensor::zeros(Shape::d4(2, 1, 6, 6));
        assert!(net.evaluate(&x, &[0], 2).is_err());
    }

    #[test]
    fn quantize_weights_rounds_to_fixed_grid() {
        let mut net = tiny_net(7);
        net.quantize_weights();
        let step = lts_tensor::Fixed16::resolution();
        for p in net.params_mut() {
            for &w in p.value.as_slice() {
                let q = (w / step).round() * step;
                assert!((w - q).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn flatten_backward_restores_shape() {
        let mut f = Flatten::new((2, 3, 3));
        let x = Tensor::zeros(Shape::d4(2, 2, 3, 3));
        let y = f.forward(&x).unwrap();
        assert_eq!(y.shape().dims(), &[2, 18]);
        let g = f.backward(&y).unwrap();
        assert_eq!(g.shape().dims(), &[2, 2, 3, 3]);
    }
}
