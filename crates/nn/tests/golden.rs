//! Golden trained-weight fingerprints, pinned from the pre-optimization
//! GEMM kernels.
//!
//! The register-blocked microkernel rewrite is gated on bit-identical
//! training trajectories: these tests train a dense MLP (linear
//! forward/backward: `matmul`, `matmul_a_bt`, `matmul_at_b`) and a small
//! grouped ConvNet (im2col + the same three kernels) on deterministic
//! synthetic data, then compare an FNV-1a-64 hash of every trained
//! parameter against the value captured before the optimization landed.
//! Any change in floating-point accumulation order trips them.
//!
//! To re-capture (only legitimate after an *intentional* numeric change):
//! `LTS_GOLDEN_CAPTURE=1 cargo test -p lts-nn --test golden --
//! --nocapture` and paste the printed hashes.

use lts_nn::models;
use lts_nn::saved::fnv1a64;
use lts_nn::trainer::{TrainConfig, Trainer};
use lts_nn::Network;
use lts_tensor::{init, Shape};

/// Hash of every parameter tensor's exact bit pattern, in network order.
fn weight_hash(net: &Network) -> u64 {
    let mut bytes = Vec::new();
    for p in net.params() {
        for &v in p.value.as_slice() {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
    }
    fnv1a64(&bytes)
}

fn check(label: &str, got: u64, pinned: u64) {
    if std::env::var("LTS_GOLDEN_CAPTURE").is_ok() {
        println!("GOLDEN {label}: 0x{got:016x}");
        return;
    }
    assert_eq!(
        got, pinned,
        "{label} weight hash 0x{got:016x} drifted from the pre-optimization capture"
    );
}

#[test]
fn mlp_training_matches_pre_optimization_weights() {
    let mut rng = init::rng(11);
    let inputs = init::uniform(Shape::d2(48, 36), 1.0, &mut rng);
    let labels: Vec<usize> = (0..48).map(|i| i % 4).collect();
    let mut net = models::mlp(36, 4, 77).expect("model");
    let config = TrainConfig { epochs: 3, batch_size: 8, seed: 5, ..Default::default() };
    let stats =
        Trainer::new(config).expect("trainer").train(&mut net, &inputs, &labels).expect("train");
    assert_eq!(stats.epochs.len(), 3);
    check("mlp", weight_hash(&net), 0xe9d8_3686_3b8f_5a9f);
}

#[test]
fn grouped_convnet_training_matches_pre_optimization_weights() {
    let mut rng = init::rng(12);
    let inputs = init::uniform(Shape::d4(12, 3, 16, 16), 1.0, &mut rng);
    let labels: Vec<usize> = (0..12).map(|i| i % 10).collect();
    // Grouped conv2/conv3 exercise the grouped-GEMM slices on top of the
    // dense conv1/ip1 paths.
    let mut net = models::convnet_variant([16, 32, 32], 4, 33).expect("model");
    let config = TrainConfig { epochs: 2, batch_size: 4, seed: 21, ..Default::default() };
    let stats =
        Trainer::new(config).expect("trainer").train(&mut net, &inputs, &labels).expect("train");
    assert_eq!(stats.epochs.len(), 2);
    check("convnet", weight_hash(&net), 0xfaf1_9d28_69de_f03d);
}
