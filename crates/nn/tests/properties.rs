//! Property-based tests for layers, grouping, and pruning invariants.

use lts_nn::conv::Conv2d;
use lts_nn::grouping::{even_blocks, GroupLayout};
use lts_nn::layer::Layer;
use lts_nn::loss::softmax_cross_entropy;
use lts_nn::param::Param;
use lts_nn::prune::{prune_groups, zero_group_count, PruneCriterion};
use lts_nn::regularizer::{GroupLasso, StrengthMask};
use lts_tensor::{init, Shape, Tensor};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn even_blocks_partition_any_range(n in 0usize..200, cores in 1usize..17) {
        let blocks = even_blocks(n, cores);
        prop_assert_eq!(blocks.len(), cores);
        let mut expected_start = 0;
        for b in &blocks {
            prop_assert_eq!(b.start, expected_start);
            expected_start = b.end;
        }
        prop_assert_eq!(expected_start, n);
        // Sizes differ by at most one.
        let sizes: Vec<usize> = blocks.iter().map(|b| b.len()).collect();
        let min = sizes.iter().min().unwrap();
        let max = sizes.iter().max().unwrap();
        prop_assert!(max - min <= 1);
    }

    #[test]
    fn groups_partition_weights_for_any_geometry(
        out_u in 1usize..20, in_u in 1usize..20, taps in 1usize..10, cores in 1usize..9
    ) {
        let layout = GroupLayout::new(out_u, in_u, taps, cores);
        let mut seen = vec![0u32; layout.weight_len()];
        for p in 0..cores {
            for c in 0..cores {
                layout.visit_group(p, c, |idx| seen[idx] += 1);
            }
        }
        prop_assert!(seen.iter().all(|&s| s == 1));
    }

    #[test]
    fn group_lasso_penalty_is_absolutely_homogeneous(
        scale in 0.1f32..4.0,
        w in proptest::collection::vec(-2.0f32..2.0, 36)
    ) {
        // ||k·w|| = |k|·||w|| for every group, so the penalty scales linearly.
        let layout = GroupLayout::new(6, 6, 1, 3);
        let gl = GroupLasso::new("l", layout, 0.3, StrengthMask::uniform(3)).unwrap();
        let scaled: Vec<f32> = w.iter().map(|&x| x * scale).collect();
        let p1 = gl.penalty(&w);
        let p2 = gl.penalty(&scaled);
        prop_assert!((p2 - scale * p1).abs() < 1e-3 * (1.0 + p2.abs()));
    }

    #[test]
    fn pruning_more_aggressively_zeroes_more_groups(
        w in proptest::collection::vec(-1.0f32..1.0, 64),
        f1 in 0.0f32..0.5, extra in 0.0f32..0.5
    ) {
        let layout = GroupLayout::new(8, 8, 1, 4);
        let f2 = (f1 + extra).min(1.0);
        let mut p1 = Param::new(Tensor::from_vec(Shape::d1(64), w.clone()).unwrap());
        let mut p2 = Param::new(Tensor::from_vec(Shape::d1(64), w).unwrap());
        prune_groups(&mut p1, &layout, PruneCriterion::SmallestFraction(f1)).unwrap();
        prune_groups(&mut p2, &layout, PruneCriterion::SmallestFraction(f2)).unwrap();
        let z1 = zero_group_count(&layout, p1.value.as_slice());
        let z2 = zero_group_count(&layout, p2.value.as_slice());
        prop_assert!(z2 >= z1, "fraction {f2} pruned {z2} < fraction {f1} pruned {z1}");
    }

    #[test]
    fn softmax_loss_is_nonnegative_and_grad_rows_sum_to_zero(
        logits in proptest::collection::vec(-5.0f32..5.0, 12),
        labels in proptest::collection::vec(0usize..4, 3)
    ) {
        let t = Tensor::from_vec(Shape::d2(3, 4), logits).unwrap();
        let out = softmax_cross_entropy(&t, &labels).unwrap();
        prop_assert!(out.loss >= 0.0);
        for b in 0..3 {
            let s: f32 = out.grad.as_slice()[b * 4..(b + 1) * 4].iter().sum();
            prop_assert!(s.abs() < 1e-5);
        }
    }

    #[test]
    fn grouped_conv_output_channels_ignore_other_groups(seed in 0u64..50) {
        // Changing group 1's input channels must not change group 0's outputs.
        let mut rng = init::rng(seed);
        let mut conv = Conv2d::new("g", (4, 5, 5), 4, 3, 1, 1, 2, &mut rng).unwrap();
        let base = init::uniform(Shape::d4(1, 4, 5, 5), 1.0, &mut rng);
        let y1 = conv.forward(&base).unwrap();
        let mut perturbed = base.clone();
        // Channels 2..4 belong to group 1.
        for ch in 2..4 {
            for h in 0..5 {
                for w in 0..5 {
                    *perturbed.at_mut(&[0, ch, h, w]) += 1.0;
                }
            }
        }
        let y2 = conv.forward(&perturbed).unwrap();
        // Output channels 0..2 (group 0) must be identical.
        for oc in 0..2 {
            for h in 0..5 {
                for w in 0..5 {
                    prop_assert_eq!(y1.at(&[0, oc, h, w]), y2.at(&[0, oc, h, w]));
                }
            }
        }
        // And group 1's outputs must differ somewhere (sanity).
        let mut differs = false;
        for oc in 2..4 {
            for h in 0..5 {
                for w in 0..5 {
                    if y1.at(&[0, oc, h, w]) != y2.at(&[0, oc, h, w]) {
                        differs = true;
                    }
                }
            }
        }
        prop_assert!(differs);
    }

    #[test]
    fn frozen_weights_never_resurrect(
        freeze in proptest::collection::vec(0usize..16, 1..8),
        steps in 1usize..6
    ) {
        let mut p = Param::new(Tensor::ones(Shape::d1(16)));
        p.freeze_indices(&freeze);
        let opt = lts_nn::optim::Sgd::new(0.3, 0.9, 0.01).unwrap();
        for _ in 0..steps {
            p.grad.fill(-5.0); // gradient pushing weights up
            opt.step(&mut [&mut p]);
        }
        for &i in &freeze {
            prop_assert_eq!(p.value.as_slice()[i], 0.0);
        }
    }
}
