//! Bit-reproducibility of the nn layer on top of the execution engine:
//! grouped convolution, the data-parallel trainer, and parallel
//! evaluation must be byte-identical for any worker count.
//!
//! All sweeps share one `#[test]` so the process-wide
//! [`lts_tensor::par::install`] calls never race.

use lts_nn::conv::Conv2d;
use lts_nn::layer::Layer;
use lts_nn::network::{Network, NetworkBuilder};
use lts_nn::trainer::{parallel_accuracy, TrainConfig, Trainer};
use lts_tensor::par::{self, ExecConfig};
use lts_tensor::{init, ops, Shape, Tensor};

fn grouped_conv_pass() -> (Vec<f32>, Vec<f32>, Vec<f32>, Vec<f32>) {
    let mut rng = init::rng(11);
    let mut conv = Conv2d::new("c", (8, 10, 10), 16, 3, 1, 1, 2, &mut rng).unwrap();
    let x = init::uniform(Shape::d4(4, 8, 10, 10), 1.0, &mut rng);
    let y = conv.forward(&x).unwrap();
    let grad = init::uniform(y.shape().clone(), 1.0, &mut init::rng(12));
    let dx = conv.backward(&grad).unwrap();
    let params = conv.params();
    (
        y.as_slice().to_vec(),
        dx.as_slice().to_vec(),
        params[0].grad.as_slice().to_vec(),
        params[1].grad.as_slice().to_vec(),
    )
}

fn toy_problem(n: usize, seed: u64) -> (Tensor, Vec<usize>) {
    let mut rng = init::rng(seed);
    let x = init::uniform(Shape::d2(n, 8), 1.0, &mut rng);
    let labels = (0..n)
        .map(|i| {
            let row = &x.as_slice()[i * 8..(i + 1) * 8];
            ops::argmax(&row[0..4]).map(|(j, _)| j).unwrap_or(0)
        })
        .collect();
    (x, labels)
}

fn trained_weights(x: &Tensor, y: &[usize]) -> (Vec<f32>, Vec<f32>) {
    let mut rng = init::rng(21);
    let mut net: Network = NetworkBuilder::new("toy", (8, 1, 1))
        .linear("ip1", 16)
        .relu()
        .linear("ip2", 4)
        .build(&mut rng)
        .unwrap();
    let trainer =
        Trainer::new(TrainConfig { epochs: 3, batch_size: 32, lr: 0.1, ..TrainConfig::default() })
            .unwrap();
    let stats = trainer.train(&mut net, x, y).unwrap();
    let w = net.layer_weight("ip1").unwrap().value.as_slice().to_vec();
    (w, stats.epochs.iter().map(|e| e.loss).collect())
}

#[test]
fn nn_stack_bit_identical_across_worker_counts() {
    let (x, y) = toy_problem(64, 20);

    par::install(ExecConfig::serial());
    let conv_ref = grouped_conv_pass();
    let train_ref = trained_weights(&x, &y);
    let mut eval_net = {
        let mut rng = init::rng(33);
        NetworkBuilder::new("toy", (8, 1, 1))
            .linear("ip1", 16)
            .relu()
            .linear("ip2", 4)
            .build(&mut rng)
            .unwrap()
    };
    let acc_ref = parallel_accuracy(&eval_net, &x, &y, 16, 4).unwrap();
    let seq = eval_net.evaluate(&x, &y, 16).unwrap();
    assert!((acc_ref - seq).abs() < 1e-6, "parallel vs sequential accuracy");

    for threads in [2usize, 4, 8] {
        par::install(ExecConfig::new(threads));
        assert_eq!(
            grouped_conv_pass(),
            conv_ref,
            "grouped conv forward/backward differs at {threads} workers"
        );
        assert_eq!(
            trained_weights(&x, &y),
            train_ref,
            "trained weights/losses differ at {threads} workers"
        );
        assert_eq!(
            parallel_accuracy(&eval_net, &x, &y, 16, 4).unwrap(),
            acc_ref,
            "parallel accuracy differs at {threads} workers"
        );
    }
    par::install(ExecConfig::serial());
}
