//! Bit-reproducibility contract of the execution engine: every parallel
//! kernel must produce byte-identical results for any worker count.
//!
//! These checks live in their own integration-test binary so the
//! process-wide [`lts_tensor::par::install`] calls cannot race other test
//! files; the sweep itself runs inside a single `#[test]` so the installs
//! are strictly sequential.

use lts_tensor::matmul::{matmul, matmul_a_bt, matmul_at_b};
use lts_tensor::par::{self, ExecConfig};
use lts_tensor::{init, Shape};

#[test]
fn kernels_bit_identical_across_worker_counts() {
    let mut rng = init::rng(7);
    // Dimensions cross the parallel threshold and straddle panel
    // boundaries, so both the striping and the blocking paths engage.
    let a = init::uniform(Shape::d2(70, 130), 1.0, &mut rng);
    let b = init::uniform(Shape::d2(130, 65), 1.0, &mut rng);
    let bt = init::uniform(Shape::d2(65, 130), 1.0, &mut rng);
    let atb_rhs = init::uniform(Shape::d2(70, 65), 1.0, &mut rng);

    par::install(ExecConfig::serial());
    let c_ref = matmul(&a, &b).unwrap();
    let at_ref = matmul_at_b(&a, &atb_rhs).unwrap();
    let abt_ref = matmul_a_bt(&a, &bt).unwrap();
    let items: Vec<usize> = (0..97).collect();
    let map_ref = par::par_map(&items, |i, &x| (x * 31 + i) as f32);

    for threads in [2usize, 3, 4, 8] {
        par::install(ExecConfig::new(threads));
        assert_eq!(matmul(&a, &b).unwrap(), c_ref, "matmul differs at {threads} workers");
        assert_eq!(
            matmul_at_b(&a, &atb_rhs).unwrap(),
            at_ref,
            "matmul_at_b differs at {threads} workers"
        );
        assert_eq!(
            matmul_a_bt(&a, &bt).unwrap(),
            abt_ref,
            "matmul_a_bt differs at {threads} workers"
        );
        assert_eq!(
            par::par_map(&items, |i, &x| (x * 31 + i) as f32),
            map_ref,
            "par_map differs at {threads} workers"
        );
    }
    par::install(ExecConfig::serial());
}
