//! Property-based tests for the tensor crate.

use lts_tensor::im2col::{col2im, im2col, ConvGeometry};
use lts_tensor::matmul::{matmul, matmul_a_bt, matmul_at_b, transpose};
use lts_tensor::qmatmul::{matmul_a_bt_i16_into, matmul_i16_into, reference};
use lts_tensor::{ops, stats, Fixed16, QuantParams, Shape, Tensor};
use proptest::prelude::*;

fn tensor_strategy(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-8.0f32..8.0, len)
}

fn i16_strategy(len: usize) -> impl Strategy<Value = Vec<i16>> {
    proptest::collection::vec(i16::MIN..=i16::MAX, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_distributes_over_addition(
        a in tensor_strategy(6), b in tensor_strategy(8), c in tensor_strategy(8)
    ) {
        let a = Tensor::from_vec(Shape::d2(3, 2), a).unwrap();
        let b = Tensor::from_vec(Shape::d2(2, 4), b).unwrap();
        let c = Tensor::from_vec(Shape::d2(2, 4), c).unwrap();
        let lhs = matmul(&a, &ops::add(&b, &c).unwrap()).unwrap();
        let rhs = ops::add(&matmul(&a, &b).unwrap(), &matmul(&a, &c).unwrap()).unwrap();
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn transpose_swaps_product_order(a in tensor_strategy(6), b in tensor_strategy(8)) {
        // (A·B)ᵀ == Bᵀ·Aᵀ
        let a = Tensor::from_vec(Shape::d2(3, 2), a).unwrap();
        let b = Tensor::from_vec(Shape::d2(2, 4), b).unwrap();
        let lhs = transpose(&matmul(&a, &b).unwrap()).unwrap();
        let rhs = matmul(&transpose(&b).unwrap(), &transpose(&a).unwrap()).unwrap();
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn fused_transpose_products_match_explicit(a in tensor_strategy(6), b in tensor_strategy(9)) {
        let a_t = Tensor::from_vec(Shape::d2(3, 2), a.clone()).unwrap();
        let b_t = Tensor::from_vec(Shape::d2(3, 3), b).unwrap();
        let fused = matmul_at_b(&a_t, &b_t).unwrap();
        let explicit = matmul(&transpose(&a_t).unwrap(), &b_t).unwrap();
        prop_assert_eq!(fused, explicit);

        let a2 = Tensor::from_vec(Shape::d2(2, 3), a).unwrap();
        let fused2 = matmul_a_bt(&a2, &b_t).unwrap();
        let explicit2 = matmul(&a2, &transpose(&b_t).unwrap()).unwrap();
        for (x, y) in fused2.as_slice().iter().zip(explicit2.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn fixed16_roundtrip_error_bounded(x in -100.0f32..100.0) {
        let err = (Fixed16::from_f32(x).to_f32() - x).abs();
        prop_assert!(err <= Fixed16::resolution() / 2.0 + 1e-6);
    }

    #[test]
    fn fixed16_quantization_is_idempotent(x in -100.0f32..100.0) {
        let once = Fixed16::from_f32(x).to_f32();
        let twice = Fixed16::from_f32(once).to_f32();
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn col2im_im2col_identity_on_disjoint_fields(data in tensor_strategy(36)) {
        let img = Tensor::from_vec(Shape::d3(1, 6, 6), data).unwrap();
        let g = ConvGeometry { in_c: 1, in_h: 6, in_w: 6, kh: 2, kw: 2, stride: 2, pad: 0 };
        let back = col2im(&im2col(&img, &g).unwrap(), &g).unwrap();
        prop_assert_eq!(back, img);
    }

    #[test]
    fn im2col_preserves_l1_mass_without_padding(data in tensor_strategy(16)) {
        // With stride == kernel (disjoint fields, no padding), the column
        // matrix is a permutation of the image, so L1 norms match.
        let img = Tensor::from_vec(Shape::d3(1, 4, 4), data).unwrap();
        let g = ConvGeometry { in_c: 1, in_h: 4, in_w: 4, kh: 2, kw: 2, stride: 2, pad: 0 };
        let cols = im2col(&img, &g).unwrap();
        let a = stats::l1_norm(img.as_slice());
        let b = stats::l1_norm(cols.as_slice());
        prop_assert!((a - b).abs() < 1e-3);
    }

    #[test]
    fn axpy_matches_manual(alpha in -2.0f32..2.0, x in tensor_strategy(10), y in tensor_strategy(10)) {
        let xt = Tensor::from_slice_1d(&x);
        let mut yt = Tensor::from_slice_1d(&y);
        ops::axpy(alpha, &xt, &mut yt).unwrap();
        for i in 0..10 {
            prop_assert!((yt.as_slice()[i] - (y[i] + alpha * x[i])).abs() < 1e-4);
        }
    }

    #[test]
    fn sparsity_bounds(data in tensor_strategy(32)) {
        let s = stats::sparsity(&data);
        prop_assert!((0.0..=1.0).contains(&s));
    }

    #[test]
    fn blocked_matmul_matches_naive_triple_loop(
        m in 1usize..6, k in 1usize..140, n in 1usize..6, pool in tensor_strategy(6 * 140 * 2)
    ) {
        // The shared dimension sweeps across the cache-panel boundary; the
        // blocked kernel accumulates each element in the same p-ascending
        // order as the naive loop, so results must be bitwise equal.
        let a = Tensor::from_vec(Shape::d2(m, k), pool[..m * k].to_vec()).unwrap();
        let b = Tensor::from_vec(
            Shape::d2(k, n),
            pool[6 * 140..6 * 140 + k * n].to_vec(),
        )
        .unwrap();
        let c = matmul(&a, &b).unwrap();
        let (av, bv) = (a.as_slice(), b.as_slice());
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc += av[i * k + p] * bv[p * n + j];
                }
                prop_assert_eq!(c.as_slice()[i * n + j], acc, "({}, {})", i, j);
            }
        }
    }
}

// Wider shapes at fewer cases: these sweep the register-blocked
// microkernel's tile boundaries (NR = 32 column tiles plus the scalar
// column tail, KC = 128 shared-dimension panels), where the f32 pools get
// large enough that 64 cases would dominate the suite's runtime.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn register_blocked_microkernel_matches_naive_across_tile_boundaries(
        m in 1usize..5, k in 1usize..260, n in 1usize..70,
        pool in tensor_strategy(5 * 260 + 260 * 70)
    ) {
        // n crosses the NR = 32 register-tile boundary (full tiles plus the
        // scalar tail), k crosses the KC = 128 panel boundary (up to two
        // full panels plus a remainder). The microkernel still accumulates
        // every output element in ascending-p order, so results must stay
        // bitwise equal to the naive triple loop.
        let a = Tensor::from_vec(Shape::d2(m, k), pool[..m * k].to_vec()).unwrap();
        let b = Tensor::from_vec(
            Shape::d2(k, n),
            pool[5 * 260..5 * 260 + k * n].to_vec(),
        )
        .unwrap();
        let c = matmul(&a, &b).unwrap();
        let (av, bv) = (a.as_slice(), b.as_slice());
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc += av[i * k + p] * bv[p * n + j];
                }
                prop_assert_eq!(c.as_slice()[i * n + j], acc, "({}, {})", i, j);
            }
        }
    }

    #[test]
    fn transposed_microkernels_match_naive_p_ascending(
        m in 1usize..5, k in 1usize..140, n in 1usize..40,
        pool in tensor_strategy(5 * 140 + 140 * 40)
    ) {
        // Aᵀ·B reads A transposed, A·Bᵀ runs concurrent dot products; both
        // keep each element's k-accumulation in ascending-p order and must
        // match the naive transposed loops bitwise.
        let left = &pool[..k * m];
        let right = &pool[5 * 140..5 * 140 + k * n];

        // Aᵀ·B: A stored (k, m), B stored (k, n).
        let a_t = Tensor::from_vec(Shape::d2(k, m), left.to_vec()).unwrap();
        let b = Tensor::from_vec(Shape::d2(k, n), right.to_vec()).unwrap();
        let c = matmul_at_b(&a_t, &b).unwrap();
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc += left[p * m + i] * right[p * n + j];
                }
                prop_assert_eq!(c.as_slice()[i * n + j], acc, "at_b ({}, {})", i, j);
            }
        }

        // A·Bᵀ: A stored (m, k), B stored (n, k).
        let a = Tensor::from_vec(Shape::d2(m, k), left[..m * k].to_vec()).unwrap();
        let b_t = Tensor::from_vec(Shape::d2(n, k), right[..n * k].to_vec()).unwrap();
        let c2 = matmul_a_bt(&a, &b_t).unwrap();
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc += left[i * k + p] * right[j * k + p];
                }
                prop_assert_eq!(c2.as_slice()[i * n + j], acc, "a_bt ({}, {})", i, j);
            }
        }
    }

    #[test]
    fn i16_blocked_kernels_bit_identical_to_naive_oracles(
        m in 1usize..5, k in 1usize..260, n in 1usize..70,
        pool in i16_strategy(5 * 260 + 260 * 70)
    ) {
        // k sweeps across the KC = 128 panel boundary, n across the NR = 32
        // pack tile / NR_DOT = 8 dot group plus their scalar tails, with
        // full-range i16 operands so accumulator wrap-around is exercised.
        // Wrapping i32 accumulation is associative, so the blocked kernels
        // must equal the naive serial oracles *exactly*, bit for bit.
        let a = &pool[..m * k];
        let b = &pool[5 * 260..5 * 260 + k * n];
        let (mut c, mut cr) = (vec![1i32; m * n], vec![2i32; m * n]);
        matmul_i16_into(a, b, &mut c, m, k, n);
        reference::matmul_i16_into_ref(a, b, &mut cr, m, k, n);
        prop_assert_eq!(&c, &cr, "matmul_i16 {}x{}x{}", m, k, n);

        let bt = &pool[5 * 260..5 * 260 + n * k];
        matmul_a_bt_i16_into(a, bt, &mut c, m, k, n);
        reference::matmul_a_bt_i16_into_ref(a, bt, &mut cr, m, k, n);
        prop_assert_eq!(&c, &cr, "a_bt_i16 {}x{}x{}", m, k, n);
    }

    #[test]
    fn quantize_dequantize_error_bounded_by_half_scale(
        values in tensor_strategy(64), x in -8.0f32..8.0
    ) {
        // Calibrating on the observed values guarantees every in-range
        // element round-trips within half a quantization step.
        let params = QuantParams::from_slice(&values);
        let mut q = vec![0i16; values.len()];
        params.quantize_into(&values, &mut q);
        let mut back = vec![0.0f32; values.len()];
        params.dequantize_into(&q, &mut back);
        for (v, b) in values.iter().zip(&back) {
            prop_assert!(
                (v - b).abs() <= params.scale() / 2.0 + f32::EPSILON,
                "{} -> {} (scale {})", v, b, params.scale()
            );
        }
        // A lone value is always within calibration range of itself.
        let p = QuantParams::from_min_max(-x.abs(), x.abs());
        let err = (p.dequantize(p.quantize(x)) - x).abs();
        prop_assert!(err <= p.scale() / 2.0 + f32::EPSILON);
    }
}
