//! Blocked, row-parallel 16-bit fixed-point matrix multiplication.
//!
//! The i16 twins of the f32 kernels in [`crate::matmul`], for the
//! quantized inference path: operands are per-tensor-scaled i16 values
//! ([`crate::quant::QuantParams`]), products accumulate in i32, and the
//! caller dequantizes the i32 output with the product of the operand
//! scales. The same `KC`-deep panel / `NR`-wide tile scheme keeps the
//! working set L1-resident, and large products stripe output rows across
//! the execution engine ([`crate::par`]) exactly like the f32 kernels.
//!
//! # Why i16 is the raw-throughput lever
//!
//! An SSE2 register holds 8 i16 lanes vs 4 f32 lanes, and `pmaddwd`
//! retires 8 multiply-adds per instruction vs 4 for `mulps`+`addps`.
//! The inner loops here are plain contiguous i32-accumulating dot
//! products — the exact shape LLVM's x86 backend turns into `pmaddwd`
//! chains — so the safe-Rust build reaches ~2× the f32 MACs/cycle
//! ceiling. The A·B kernel packs each `KC × NR` tile of B into
//! transposed (column-contiguous) form on the stack first; the pack is
//! O(k·n) against O(m·k·n) compute and is what converts the row-major
//! axpy update (8 MACs per ~6 SSE2 ops) into dots (8 MACs per op).
//!
//! # Determinism
//!
//! All accumulation is i32 *wrapping* arithmetic, which is associative
//! and commutative, so no blocking, packing, padding, or row-striping
//! order can perturb results: every kernel is bit-identical to the naive
//! [`reference`] oracles for any worker count, even when an accumulator
//! overflows (it wraps identically everywhere). Individual products
//! cannot overflow (|a·b| ≤ 2³⁰).

use crate::par;

/// Shared-dimension panel depth; a packed `KC × NR` i16 tile of B (8 KB)
/// is the L1 working set of the A·B kernel. Twice the f32 kernels' depth:
/// i16 elements are half as wide, and a deeper panel means the common
/// conv/linear reductions (k ≤ 256) finish in a single pass over C.
const KC: usize = 256;

/// Dot products (output columns) per packed B tile.
const NR: usize = 16;

/// Column panel width of the A·Bᵀ kernel (B rows kept hot per pass).
const PANEL: usize = 64;

/// Dot products computed concurrently by the A·Bᵀ microkernel — one i32
/// accumulator chain each, sharing the A row, to fill the ALU pipeline.
const NR_DOT: usize = 8;

/// Multiply-adds below which a product runs inline (same rationale and
/// value as the f32 kernels).
const PAR_THRESHOLD: usize = 32 * 1024;

/// Flat-slice i16 GEMM `C = A · B` with `A: [m, k]`, `B: [k, n]`,
/// `C: [m, n]` (i32), all row-major. Overwrites `C`.
///
/// # Panics
///
/// Panics (in debug builds) if the slice lengths disagree with the
/// dimensions.
pub fn matmul_i16_into(a: &[i16], b: &[i16], c: &mut [i32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    let _probe = lts_obs::span("tensor.matmul_i16");
    lts_obs::counter_add("tensor.macs_i16", (m * k * n) as u64);
    if n == 0 {
        return;
    }
    let kernel = |first_row: usize, stripe: &mut [i32]| {
        stripe.fill(0);
        let rows = stripe.len() / n;
        // One packed tile per (panel, j-tile) pair, re-used across every
        // row of the stripe. `packed[jj * KC + p]` = `b[(p0+p)*n + j0+jj]`:
        // transposing the tile makes each of the NR dots below contiguous
        // in both operands, which is what lets the backend emit pmaddwd.
        let mut packed = [0i16; KC * NR];
        for p0 in (0..k).step_by(KC) {
            let kc = (k - p0).min(KC);
            let mut j0 = 0;
            while j0 < n {
                let jw = (n - j0).min(NR);
                for jj in 0..jw {
                    for (p, dst) in packed[jj * KC..jj * KC + kc].iter_mut().enumerate() {
                        *dst = b[(p0 + p) * n + j0 + jj];
                    }
                }
                for r in 0..rows {
                    let i = first_row + r;
                    let arow = &a[i * k + p0..i * k + p0 + kc];
                    let crow = &mut stripe[r * n + j0..r * n + j0 + jw];
                    // NR_DOT concurrent accumulator chains per pass: a
                    // single dot is latency-bound on its pmaddwd+paddd
                    // chain; eight independent chains fill the pipeline
                    // (same microkernel shape as the A·Bᵀ kernel below).
                    let mut jj = 0;
                    while jj + NR_DOT <= jw {
                        let mut acc = [0i32; NR_DOT];
                        let bt: [&[i16]; NR_DOT] =
                            std::array::from_fn(|d| &packed[(jj + d) * KC..(jj + d) * KC + kc]);
                        for (p, &x) in arow.iter().enumerate() {
                            for (accd, btd) in acc.iter_mut().zip(&bt) {
                                *accd = accd.wrapping_add(x as i32 * btd[p] as i32);
                            }
                        }
                        for (cj, &accd) in crow[jj..jj + NR_DOT].iter_mut().zip(&acc) {
                            *cj = cj.wrapping_add(accd);
                        }
                        jj += NR_DOT;
                    }
                    for (jj, cj) in crow.iter_mut().enumerate().skip(jj) {
                        let brow = &packed[jj * KC..jj * KC + kc];
                        let mut acc = 0i32;
                        for (&x, &y) in arow.iter().zip(brow) {
                            acc = acc.wrapping_add(x as i32 * y as i32);
                        }
                        *cj = cj.wrapping_add(acc);
                    }
                }
                j0 += jw;
            }
        }
    };
    if m * k * n < PAR_THRESHOLD {
        kernel(0, c);
    } else {
        par::par_row_stripes_of(c, n, kernel);
    }
}

/// Flat-slice i16 `C = A · Bᵀ` with `A: [m, k]`, `B: [n, k]`, `C: [m, n]`
/// (i32). Overwrites `C`. Both operands are row-contiguous in the shared
/// dimension already, so no packing is needed — the microkernel runs
/// `NR_DOT` pmaddwd-shaped dots side by side, sharing the A row.
///
/// # Panics
///
/// Panics (in debug builds) if the slice lengths disagree with the
/// dimensions.
pub fn matmul_a_bt_i16_into(a: &[i16], b: &[i16], c: &mut [i32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(c.len(), m * n);
    let _probe = lts_obs::span("tensor.matmul_a_bt_i16");
    lts_obs::counter_add("tensor.macs_i16", (m * k * n) as u64);
    if n == 0 {
        return;
    }
    let kernel = |first_row: usize, stripe: &mut [i32]| {
        let rows = stripe.len() / n;
        for j0 in (0..n).step_by(PANEL) {
            let j1 = (j0 + PANEL).min(n);
            for r in 0..rows {
                let arow = &a[(first_row + r) * k..(first_row + r) * k + k];
                let crow = &mut stripe[r * n..(r + 1) * n];
                let mut j = j0;
                while j + NR_DOT <= j1 {
                    let mut acc = [0i32; NR_DOT];
                    let bt: [&[i16]; NR_DOT] =
                        std::array::from_fn(|jj| &b[(j + jj) * k..(j + jj) * k + k]);
                    for (p, &x) in arow.iter().enumerate() {
                        for jj in 0..NR_DOT {
                            acc[jj] = acc[jj].wrapping_add(x as i32 * bt[jj][p] as i32);
                        }
                    }
                    crow[j..j + NR_DOT].copy_from_slice(&acc);
                    j += NR_DOT;
                }
                for j in j..j1 {
                    let brow = &b[j * k..(j + 1) * k];
                    let mut acc = 0i32;
                    for (&x, &y) in arow.iter().zip(brow) {
                        acc = acc.wrapping_add(x as i32 * y as i32);
                    }
                    crow[j] = acc;
                }
            }
        }
    };
    if m * k * n < PAR_THRESHOLD {
        kernel(0, c);
    } else {
        par::par_row_stripes_of(c, n, kernel);
    }
}

pub mod reference {
    //! Naive serial i16 oracles: the blocked kernels above are gated on
    //! bit-identity to these (exact `assert_eq!`, including wrap-around
    //! on accumulator overflow) by unit tests here and the proptests in
    //! `tests/properties.rs`. Not for production use.

    /// Naive `C = A · B` (i-j-p triple loop, wrapping i32 accumulation).
    pub fn matmul_i16_into_ref(a: &[i16], b: &[i16], c: &mut [i32], m: usize, k: usize, n: usize) {
        debug_assert_eq!(a.len(), m * k);
        debug_assert_eq!(b.len(), k * n);
        debug_assert_eq!(c.len(), m * n);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0i32;
                for p in 0..k {
                    acc = acc.wrapping_add(a[i * k + p] as i32 * b[p * n + j] as i32);
                }
                c[i * n + j] = acc;
            }
        }
    }

    /// Naive `C = A · Bᵀ` (one dot per element, wrapping i32 accumulation).
    pub fn matmul_a_bt_i16_into_ref(
        a: &[i16],
        b: &[i16],
        c: &mut [i32],
        m: usize,
        k: usize,
        n: usize,
    ) {
        debug_assert_eq!(a.len(), m * k);
        debug_assert_eq!(b.len(), n * k);
        debug_assert_eq!(c.len(), m * n);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0i32;
                for p in 0..k {
                    acc = acc.wrapping_add(a[i * k + p] as i32 * b[j * k + p] as i32);
                }
                c[i * n + j] = acc;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic i16 pattern with exact zeros and sign changes.
    fn gen(len: usize, s: usize) -> Vec<i16> {
        (0..len).map(|x| (((x * s + 5) % 13) as i16) - 6).collect()
    }

    #[test]
    fn small_product_matches_hand_computation() {
        let a: Vec<i16> = vec![1, 2, 3, 4, 5, 6];
        let b: Vec<i16> = vec![7, 8, 9, 10, 11, 12];
        let mut c = vec![0i32; 4];
        matmul_i16_into(&a, &b, &mut c, 2, 3, 2);
        assert_eq!(c, &[58, 64, 139, 154]);
        let bt: Vec<i16> = vec![7, 9, 11, 8, 10, 12];
        matmul_a_bt_i16_into(&a, &bt, &mut c, 2, 3, 2);
        assert_eq!(c, &[58, 64, 139, 154]);
    }

    #[test]
    fn blocked_kernels_match_reference_on_tile_boundary_shapes() {
        // Shapes straddling the KC panel, the NR tile, the NR_DOT group,
        // and the PANEL width, with awkward tails and degenerate dims.
        for (mm, kk, nn) in [
            (5, KC + 9, NR + 3),
            (3, 2 * KC + 1, 2 * NR),
            (7, 11, NR_DOT + 1),
            (4, KC, PANEL + 5),
            (2, 1, 1),
            (1, KC - 1, NR - 1),
        ] {
            let a = gen(mm * kk, 37);
            let b = gen(kk * nn, 17);
            let bt = gen(nn * kk, 17);
            let (mut c, mut cr) = (vec![1i32; mm * nn], vec![2i32; mm * nn]);
            matmul_i16_into(&a, &b, &mut c, mm, kk, nn);
            reference::matmul_i16_into_ref(&a, &b, &mut cr, mm, kk, nn);
            assert_eq!(c, cr, "matmul_i16 {mm}x{kk}x{nn}");
            matmul_a_bt_i16_into(&a, &bt, &mut c, mm, kk, nn);
            reference::matmul_a_bt_i16_into_ref(&a, &bt, &mut cr, mm, kk, nn);
            assert_eq!(c, cr, "a_bt_i16 {mm}x{kk}x{nn}");
        }
    }

    #[test]
    fn extreme_operands_wrap_identically_to_reference() {
        // i16::MIN² · k overflows i32 for k ≥ 2: the wrapping contract
        // must hold bit-for-bit between blocked and naive kernels.
        let (m, k, n) = (2, 3 * KC, NR + 1);
        let a = vec![i16::MIN; m * k];
        let b = vec![i16::MIN; k * n];
        let (mut c, mut cr) = (vec![0i32; m * n], vec![0i32; m * n]);
        matmul_i16_into(&a, &b, &mut c, m, k, n);
        reference::matmul_i16_into_ref(&a, &b, &mut cr, m, k, n);
        assert_eq!(c, cr);
        let bt = vec![i16::MAX; n * k];
        matmul_a_bt_i16_into(&a, &bt, &mut c, m, k, n);
        reference::matmul_a_bt_i16_into_ref(&a, &bt, &mut cr, m, k, n);
        assert_eq!(c, cr);
    }

    #[test]
    fn parallel_threshold_does_not_change_results() {
        // Big enough to cross PAR_THRESHOLD and stripe across workers.
        let (m, k, n) = (48, 40, 24);
        assert!(m * k * n >= PAR_THRESHOLD);
        let a = gen(m * k, 37);
        let b = gen(k * n, 17);
        let (mut c, mut cr) = (vec![0i32; m * n], vec![0i32; m * n]);
        matmul_i16_into(&a, &b, &mut c, m, k, n);
        reference::matmul_i16_into_ref(&a, &b, &mut cr, m, k, n);
        assert_eq!(c, cr);
    }
}
