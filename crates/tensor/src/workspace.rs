//! Reusable scratch buffers for kernel intermediates.
//!
//! Layer forward/backward passes need large temporaries (im2col matrices,
//! per-group GEMM outputs) whose sizes repeat every call. A [`Workspace`]
//! keeps those allocations alive between calls: [`Workspace::take`] hands
//! out a zeroed buffer, [`Workspace::give`] returns it to the pool, and the
//! next `take` of a similar size reuses the allocation instead of hitting
//! the allocator.
//!
//! A workspace holds *scratch*, never state: its contents carry no meaning
//! across calls, so cloning one (e.g. when a trainer clones a network per
//! worker) yields an empty pool, and two networks must not share one
//! workspace across threads (it is deliberately not `Sync`).

/// A pool of reusable `f32` scratch buffers.
#[derive(Debug, Default)]
pub struct Workspace {
    pool: Vec<Vec<f32>>,
}

impl Workspace {
    /// An empty workspace; buffers are pooled as they are given back.
    pub fn new() -> Self {
        Workspace::default()
    }

    /// Hands out a zeroed buffer of exactly `len` elements, reusing the
    /// pooled allocation with the largest capacity when one exists.
    pub fn take(&mut self, len: usize) -> Vec<f32> {
        match self.pool.pop() {
            Some(mut buf) => {
                buf.clear();
                buf.resize(len, 0.0);
                buf
            }
            None => vec![0.0; len],
        }
    }

    /// Returns a buffer to the pool for reuse by a later [`take`].
    ///
    /// The pool is kept sorted by capacity so `take` always pops the
    /// largest buffer, which converges to zero reallocations once the
    /// biggest temporary of a pass has been seen.
    ///
    /// [`take`]: Workspace::take
    pub fn give(&mut self, buf: Vec<f32>) {
        if buf.capacity() == 0 {
            return;
        }
        let at = self.pool.partition_point(|b| b.capacity() <= buf.capacity());
        self.pool.insert(at, buf);
    }

    /// Number of buffers currently pooled.
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }

    /// Total capacity (in elements) held by pooled buffers.
    pub fn pooled_capacity(&self) -> usize {
        self.pool.iter().map(Vec::capacity).sum()
    }
}

impl Clone for Workspace {
    /// Clones to an *empty* workspace: scratch contents are meaningless, and
    /// per-worker network clones must not share allocations.
    fn clone(&self) -> Self {
        Workspace::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_hands_out_zeroed_buffers() {
        let mut ws = Workspace::new();
        let mut buf = ws.take(8);
        assert_eq!(buf, vec![0.0; 8]);
        buf.iter_mut().for_each(|x| *x = 7.0);
        ws.give(buf);
        // The recycled buffer must come back zeroed.
        assert_eq!(ws.take(8), vec![0.0; 8]);
    }

    #[test]
    fn allocations_are_reused() {
        let mut ws = Workspace::new();
        let buf = ws.take(1024);
        let ptr = buf.as_ptr();
        ws.give(buf);
        let again = ws.take(512);
        assert_eq!(again.as_ptr(), ptr, "pooled allocation should be reused");
        assert_eq!(again.len(), 512);
    }

    #[test]
    fn take_prefers_the_largest_pooled_buffer() {
        let mut ws = Workspace::new();
        let small = ws.take(4);
        let large = ws.take(4096);
        let large_ptr = large.as_ptr();
        ws.give(small);
        ws.give(large);
        assert_eq!(ws.pooled(), 2);
        let buf = ws.take(2048);
        assert_eq!(buf.as_ptr(), large_ptr, "largest buffer should be taken first");
    }

    #[test]
    fn clone_is_empty() {
        let mut ws = Workspace::new();
        ws.give(vec![0.0; 64]);
        assert_eq!(ws.clone().pooled(), 0);
    }
}
