//! Elementwise tensor operations.
//!
//! These are the handful of BLAS-1 style kernels the training loop needs.
//! All binary operations require identical shapes and return
//! [`TensorError::ShapeMismatch`] otherwise.

use crate::tensor::{Tensor, TensorError};

fn check_same_shape(a: &Tensor, b: &Tensor) -> Result<(), TensorError> {
    if a.shape() != b.shape() {
        return Err(TensorError::ShapeMismatch {
            left: a.shape().clone(),
            right: b.shape().clone(),
        });
    }
    Ok(())
}

/// Elementwise sum `a + b`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
pub fn add(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    check_same_shape(a, b)?;
    let data = a.as_slice().iter().zip(b.as_slice()).map(|(&x, &y)| x + y).collect();
    Tensor::from_vec(a.shape().clone(), data)
}

/// Elementwise difference `a - b`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
pub fn sub(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    check_same_shape(a, b)?;
    let data = a.as_slice().iter().zip(b.as_slice()).map(|(&x, &y)| x - y).collect();
    Tensor::from_vec(a.shape().clone(), data)
}

/// Elementwise (Hadamard) product `a ⊙ b`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
pub fn mul(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    check_same_shape(a, b)?;
    let data = a.as_slice().iter().zip(b.as_slice()).map(|(&x, &y)| x * y).collect();
    Tensor::from_vec(a.shape().clone(), data)
}

/// In-place `y += alpha * x` (the BLAS `axpy`).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
pub fn axpy(alpha: f32, x: &Tensor, y: &mut Tensor) -> Result<(), TensorError> {
    check_same_shape(x, y)?;
    for (yi, &xi) in y.as_mut_slice().iter_mut().zip(x.as_slice()) {
        *yi += alpha * xi;
    }
    Ok(())
}

/// In-place scaling `x *= alpha`.
pub fn scale(alpha: f32, x: &mut Tensor) {
    for xi in x.as_mut_slice() {
        *xi *= alpha;
    }
}

/// Dot product of two tensors viewed as flat vectors.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
pub fn dot(a: &Tensor, b: &Tensor) -> Result<f32, TensorError> {
    check_same_shape(a, b)?;
    Ok(a.as_slice().iter().zip(b.as_slice()).map(|(&x, &y)| x * y).sum())
}

/// Sum of all elements.
pub fn sum(a: &Tensor) -> f32 {
    a.as_slice().iter().sum()
}

/// Index and value of the maximum element of a flat slice.
///
/// Ties resolve to the lowest index; an empty slice yields `None`.
pub fn argmax(values: &[f32]) -> Option<(usize, f32)> {
    let mut best: Option<(usize, f32)> = None;
    for (i, &v) in values.iter().enumerate() {
        match best {
            Some((_, bv)) if v <= bv => {}
            _ => best = Some((i, v)),
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::Shape;

    fn t(v: &[f32]) -> Tensor {
        Tensor::from_slice_1d(v)
    }

    #[test]
    fn add_sub_mul_elementwise() {
        let a = t(&[1.0, 2.0, 3.0]);
        let b = t(&[4.0, 5.0, 6.0]);
        assert_eq!(add(&a, &b).unwrap().as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(sub(&b, &a).unwrap().as_slice(), &[3.0, 3.0, 3.0]);
        assert_eq!(mul(&a, &b).unwrap().as_slice(), &[4.0, 10.0, 18.0]);
    }

    #[test]
    fn binary_ops_reject_shape_mismatch() {
        let a = Tensor::zeros(Shape::d2(2, 2));
        let b = Tensor::zeros(Shape::d1(4));
        assert!(add(&a, &b).is_err());
        assert!(dot(&a, &b).is_err());
    }

    #[test]
    fn axpy_accumulates() {
        let x = t(&[1.0, 1.0]);
        let mut y = t(&[1.0, 2.0]);
        axpy(0.5, &x, &mut y).unwrap();
        assert_eq!(y.as_slice(), &[1.5, 2.5]);
    }

    #[test]
    fn scale_multiplies_in_place() {
        let mut x = t(&[2.0, -4.0]);
        scale(0.5, &mut x);
        assert_eq!(x.as_slice(), &[1.0, -2.0]);
    }

    #[test]
    fn dot_and_sum() {
        let a = t(&[1.0, 2.0, 3.0]);
        let b = t(&[4.0, 5.0, 6.0]);
        assert_eq!(dot(&a, &b).unwrap(), 32.0);
        assert_eq!(sum(&a), 6.0);
    }

    #[test]
    fn argmax_finds_first_maximum() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), Some((1, 3.0)));
        assert_eq!(argmax(&[]), None);
        assert_eq!(argmax(&[-5.0]), Some((0, -5.0)));
    }
}
