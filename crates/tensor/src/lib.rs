//! Dense `f32` tensor math for the Learn-to-Scale reproduction.
//!
//! This crate is the numerical substrate under `lts-nn`: owned,
//! contiguous, row-major tensors ([`Tensor`]), shape bookkeeping
//! ([`Shape`]), a blocked row-parallel GEMM ([`matmul`]), the `im2col`
//! lowering used by convolution layers, seeded weight initializers, the
//! 16-bit fixed-point format used by the simulated accelerator cores
//! ([`fixed::Fixed16`]) together with its first-class inference kernels
//! (per-tensor symmetric scales in [`quant`], i16/i32 register-blocked
//! GEMM in [`qmatmul`], i16 `im2col`), and sparsity/norm statistics used
//! by the structured-sparsification pipeline.
//!
//! It also hosts the deterministic parallel execution engine ([`par`],
//! configured by [`ExecConfig`] or the `LTS_THREADS` environment variable)
//! and the reusable scratch arena ([`Workspace`]) that the layer kernels
//! draw their temporaries from. Everything built on the engine is
//! bit-reproducible: results are identical for any worker count.
//!
//! # Examples
//!
//! ```
//! use lts_tensor::{Tensor, Shape};
//!
//! # fn main() -> Result<(), lts_tensor::TensorError> {
//! let a = Tensor::from_vec(Shape::d2(2, 3), vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0])?;
//! let b = Tensor::ones(Shape::d2(3, 2));
//! let c = lts_tensor::matmul::matmul(&a, &b)?;
//! assert_eq!(c.shape().dims(), &[2, 2]);
//! assert_eq!(c.as_slice()[0], 6.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
#![deny(clippy::print_stdout, clippy::print_stderr)]

pub mod fixed;
pub mod im2col;
pub mod init;
pub mod matmul;
pub mod ops;
pub mod par;
pub mod qmatmul;
pub mod quant;
pub mod shape;
pub mod stats;
pub mod tensor;
pub mod workspace;

pub use fixed::Fixed16;
pub use par::ExecConfig;
pub use quant::QuantParams;
pub use shape::Shape;
pub use tensor::{Tensor, TensorError};
pub use workspace::Workspace;
