//! Tensor shapes and row-major stride arithmetic.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The shape of a dense, row-major tensor.
///
/// Up to four dimensions are used in this workspace, with the NCHW
/// convention for feature maps: `[batch, channels, height, width]`.
///
/// # Examples
///
/// ```
/// use lts_tensor::Shape;
///
/// let s = Shape::d4(1, 3, 32, 32);
/// assert_eq!(s.len(), 3 * 32 * 32);
/// assert_eq!(s.rank(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from an arbitrary dimension list.
    ///
    /// # Panics
    ///
    /// Panics if `dims` is empty.
    pub fn new(dims: Vec<usize>) -> Self {
        assert!(!dims.is_empty(), "shape must have at least one dimension");
        Self { dims }
    }

    /// A 1-D shape.
    pub fn d1(n: usize) -> Self {
        Self::new(vec![n])
    }

    /// A 2-D shape (`[rows, cols]`).
    pub fn d2(rows: usize, cols: usize) -> Self {
        Self::new(vec![rows, cols])
    }

    /// A 3-D shape.
    pub fn d3(a: usize, b: usize, c: usize) -> Self {
        Self::new(vec![a, b, c])
    }

    /// A 4-D shape (`[n, c, h, w]` for feature maps, `[out_c, in_c, kh, kw]`
    /// for convolution kernels).
    pub fn d4(n: usize, c: usize, h: usize, w: usize) -> Self {
        Self::new(vec![n, c, h, w])
    }

    /// The dimension list.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements (product of all dimensions).
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// Whether the shape contains zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Size of dimension `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rank()`.
    pub fn dim(&self, i: usize) -> usize {
        self.dims[i]
    }

    /// Row-major strides (in elements) for this shape.
    ///
    /// ```
    /// use lts_tensor::Shape;
    /// assert_eq!(Shape::d3(2, 3, 4).strides(), vec![12, 4, 1]);
    /// ```
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Linear row-major offset of a multi-index.
    ///
    /// # Panics
    ///
    /// Panics if `index` has the wrong rank or any coordinate is out of
    /// bounds.
    pub fn offset(&self, index: &[usize]) -> usize {
        assert_eq!(
            index.len(),
            self.dims.len(),
            "index rank {} != shape rank {}",
            index.len(),
            self.dims.len()
        );
        let mut off = 0;
        let strides = self.strides();
        for (i, (&ix, &d)) in index.iter().zip(&self.dims).enumerate() {
            assert!(ix < d, "index {ix} out of bounds for dim {i} of size {d}");
            off += ix * strides[i];
        }
        off
    }

    /// Returns a new shape with the same element count collapsed to 2-D
    /// `[dims[0], rest]`.
    ///
    /// Useful to view an NCHW activation batch as a matrix of flattened
    /// rows for fully-connected layers.
    pub fn collapse_to_2d(&self) -> Shape {
        let rows = self.dims[0];
        let cols = self.len() / rows.max(1);
        Shape::d2(rows, cols)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims.to_vec())
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape::new(dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn len_is_product_of_dims() {
        assert_eq!(Shape::d4(2, 3, 4, 5).len(), 120);
        assert_eq!(Shape::d1(7).len(), 7);
    }

    #[test]
    fn strides_are_row_major() {
        assert_eq!(Shape::d4(2, 3, 4, 5).strides(), vec![60, 20, 5, 1]);
        assert_eq!(Shape::d1(9).strides(), vec![1]);
    }

    #[test]
    fn offset_matches_manual_computation() {
        let s = Shape::d3(2, 3, 4);
        assert_eq!(s.offset(&[0, 0, 0]), 0);
        assert_eq!(s.offset(&[1, 2, 3]), 12 + 8 + 3);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn offset_rejects_out_of_bounds() {
        Shape::d2(2, 2).offset(&[2, 0]);
    }

    #[test]
    #[should_panic(expected = "rank")]
    fn offset_rejects_wrong_rank() {
        Shape::d2(2, 2).offset(&[0]);
    }

    #[test]
    fn collapse_keeps_element_count() {
        let s = Shape::d4(8, 3, 4, 4);
        let c = s.collapse_to_2d();
        assert_eq!(c.dims(), &[8, 48]);
        assert_eq!(c.len(), s.len());
    }

    #[test]
    fn display_formats_dims() {
        assert_eq!(Shape::d3(1, 2, 3).to_string(), "[1x2x3]");
    }

    #[test]
    #[should_panic(expected = "at least one dimension")]
    fn empty_dims_rejected() {
        Shape::new(vec![]);
    }

    #[test]
    fn zero_sized_shape_is_empty() {
        assert!(Shape::d2(0, 5).is_empty());
        assert!(!Shape::d2(1, 5).is_empty());
    }
}
