//! Deterministic parallel execution engine.
//!
//! Every parallel construct in this workspace runs through this module. The
//! design goal is *bit-reproducibility*: results are identical for any
//! worker count, because work is always decomposed the same way — into
//! contiguous index stripes or per-item slots — and floating-point
//! accumulation order inside each unit of work never depends on how units
//! are assigned to threads. Threads only decide *when* a unit runs, never
//! *what* it computes.
//!
//! The worker count comes from an [`ExecConfig`]: explicitly via
//! [`install`], or lazily from the `LTS_THREADS` environment variable
//! (falling back to the machine's available parallelism). Nested parallel
//! regions run serially — a worker that calls back into the engine executes
//! its region inline, so parallel trainers can call parallel kernels
//! without oversubscribing the machine.

use std::cell::Cell;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Environment variable that overrides the default worker count.
pub const THREADS_ENV: &str = "LTS_THREADS";

/// Worker-count configuration for the execution engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecConfig {
    threads: usize,
}

impl ExecConfig {
    /// Config with an explicit worker count (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        ExecConfig { threads: threads.max(1) }
    }

    /// Single-threaded config: every parallel construct runs inline.
    pub fn serial() -> Self {
        ExecConfig { threads: 1 }
    }

    /// Config from the environment: `LTS_THREADS` if set to a positive
    /// integer, otherwise the machine's available parallelism.
    pub fn from_env() -> Self {
        let threads = std::env::var(THREADS_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1));
        ExecConfig { threads }
    }

    /// The configured worker count (always at least 1).
    pub fn threads(&self) -> usize {
        self.threads
    }
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig::from_env()
    }
}

/// Process-wide worker count; 0 means "not yet resolved from the env".
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Set while this thread is executing inside a parallel region; nested
    /// engine calls then run inline instead of spawning.
    static IN_PARALLEL: Cell<bool> = const { Cell::new(false) };
}

/// Installs `config` as the process-wide execution configuration.
pub fn install(config: ExecConfig) {
    GLOBAL_THREADS.store(config.threads, Ordering::Relaxed);
}

/// The currently installed configuration (resolved from the environment on
/// first use if [`install`] was never called).
pub fn current() -> ExecConfig {
    let n = GLOBAL_THREADS.load(Ordering::Relaxed);
    if n != 0 {
        return ExecConfig { threads: n };
    }
    let resolved = ExecConfig::from_env();
    // A concurrent install() may race this store; either value is a valid
    // configuration and determinism never depends on the worker count.
    GLOBAL_THREADS.store(resolved.threads, Ordering::Relaxed);
    resolved
}

/// Workers to use for `units` independent units of work: the configured
/// count, capped by the unit count, and 1 inside a nested parallel region.
fn effective_workers(units: usize) -> usize {
    if IN_PARALLEL.with(|f| f.get()) {
        return 1;
    }
    current().threads().min(units).max(1)
}

/// Splits `0..total` into `parts` contiguous ranges whose lengths differ by
/// at most one, in index order. The decomposition depends only on `total`
/// and `parts` — callers that need thread-count-independent work units pass
/// an explicit `parts`.
pub fn stripe_ranges(total: usize, parts: usize) -> Vec<Range<usize>> {
    let parts = parts.max(1).min(total.max(1));
    let base = total / parts;
    let extra = total % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Runs `f` once per stripe of the rows of `out`, in parallel.
///
/// `out` is treated as a row-major matrix with rows of `row_len` elements.
/// The rows are split into one contiguous stripe per worker and
/// `f(first_row, stripe)` is invoked with the index of the stripe's first
/// row and the mutable stripe data. `f` must compute each row from the row
/// index alone, so the stripe decomposition cannot affect results.
///
/// # Panics
///
/// Panics if `row_len` is zero or does not divide `out.len()`, or if `f`
/// panics on any worker.
pub fn par_row_stripes<F>(out: &mut [f32], row_len: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    par_row_stripes_of(out, row_len, f)
}

/// Element-type-generic form of [`par_row_stripes`].
///
/// Identical stripe decomposition and scheduling, for any `Send` element
/// type — the i16/i32 fixed-point kernels stripe their `i32` accumulator
/// matrices through this, while `par_row_stripes` (which delegates here)
/// keeps the established `f32` API.
///
/// # Panics
///
/// Panics if `row_len` is zero or does not divide `out.len()`, or if `f`
/// panics on any worker.
pub fn par_row_stripes_of<T, F>(out: &mut [T], row_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(row_len > 0, "row_len must be positive");
    assert_eq!(out.len() % row_len, 0, "slice length must be a multiple of row_len");
    let rows = out.len() / row_len;
    let workers = effective_workers(rows);
    if workers <= 1 {
        f(0, out);
        return;
    }
    let ranges = stripe_ranges(rows, workers);
    std::thread::scope(|scope| {
        let mut rest = out;
        let mut first = None;
        for range in ranges {
            let (stripe, tail) = rest.split_at_mut((range.end - range.start) * row_len);
            rest = tail;
            if first.is_none() {
                // The first stripe runs on the calling thread after the
                // others are spawned.
                first = Some((range.start, stripe));
            } else {
                let f = &f;
                scope.spawn(move || enter_parallel(|| f(range.start, stripe)));
            }
        }
        if let Some((start, stripe)) = first {
            enter_parallel(|| f(start, stripe));
        }
    });
}

/// Maps `f` over `items` in parallel, preserving order.
///
/// Workers claim items through a shared counter, so load balances
/// dynamically, but slot `i` of the result always holds `f(i, &items[i])` —
/// output is independent of scheduling.
///
/// # Panics
///
/// Panics if `f` panics on any worker.
pub fn par_map<T, O, F>(items: &[T], f: F) -> Vec<O>
where
    T: Sync,
    O: Send,
    F: Fn(usize, &T) -> O + Sync,
{
    let workers = effective_workers(items.len());
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, item)| f(i, item)).collect();
    }
    let slots: Vec<Mutex<Option<O>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let run = || {
        enter_parallel(|| loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            let Some(item) = items.get(i) else { break };
            *slots[i].lock().expect("result slot poisoned") = Some(f(i, item));
        })
    };
    std::thread::scope(|scope| {
        // `run` captures only shared references, so the closure is `Copy`
        // and each spawn gets its own handle.
        for _ in 1..workers {
            scope.spawn(run);
        }
        run();
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("result slot poisoned").expect("every slot filled"))
        .collect()
}

/// Marks this thread as inside a parallel region for the duration of `f`.
fn enter_parallel<R>(f: impl FnOnce() -> R) -> R {
    struct Reset(bool);
    impl Drop for Reset {
        fn drop(&mut self) {
            let prev = self.0;
            IN_PARALLEL.with(|flag| flag.set(prev));
        }
    }
    let _reset = IN_PARALLEL.with(|flag| {
        let prev = flag.get();
        flag.set(true);
        Reset(prev)
    });
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stripe_ranges_partition_exactly() {
        for total in [0usize, 1, 7, 64, 100] {
            for parts in [1usize, 2, 3, 8, 200] {
                let ranges = stripe_ranges(total, parts);
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next);
                    next = r.end;
                }
                assert_eq!(next, total);
                let lens: Vec<usize> = ranges.iter().map(|r| r.end - r.start).collect();
                let (min, max) = (lens.iter().min().unwrap(), lens.iter().max().unwrap());
                assert!(max - min <= 1, "{total}/{parts}: uneven stripes {lens:?}");
            }
        }
    }

    #[test]
    fn par_row_stripes_touches_every_row_once() {
        let rows = 37;
        let row_len = 5;
        let mut data = vec![0.0f32; rows * row_len];
        par_row_stripes(&mut data, row_len, |first_row, stripe| {
            for (r, row) in stripe.chunks_mut(row_len).enumerate() {
                for x in row.iter_mut() {
                    *x += (first_row + r) as f32;
                }
            }
        });
        for (r, row) in data.chunks(row_len).enumerate() {
            assert!(row.iter().all(|&x| x == r as f32), "row {r}: {row:?}");
        }
    }

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<usize> = (0..101).collect();
        let out = par_map(&items, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out, (0..101).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn nested_regions_run_inline() {
        let items: Vec<usize> = (0..8).collect();
        let out = par_map(&items, |_, &x| {
            // Inside a worker the engine must degrade to inline execution.
            let inner = par_map(&[x], |_, &y| y + 1);
            inner[0]
        });
        assert_eq!(out, (1..9).collect::<Vec<_>>());
    }

    #[test]
    fn config_resolution_clamps_to_one() {
        assert_eq!(ExecConfig::new(0).threads(), 1);
        assert_eq!(ExecConfig::serial().threads(), 1);
        assert!(ExecConfig::from_env().threads() >= 1);
    }
}
