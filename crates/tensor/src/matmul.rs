//! Blocked, row-parallel single-precision matrix multiplication.
//!
//! Training the paper's networks spends essentially all of its time here
//! (convolutions are lowered to GEMM via [`crate::im2col`]), so the kernels
//! use the cache-friendly i-k-j loop order with panel blocking over the
//! shared dimension, and partition output rows across the execution engine
//! ([`crate::par`]).
//!
//! # Determinism
//!
//! Every kernel accumulates each output element's terms in ascending order
//! of the shared dimension, and row partitioning never splits an element's
//! accumulation. Results are therefore bit-identical for any worker count,
//! including 1 — the parallel kernels are drop-in replacements for their
//! serial ancestors.

use crate::par;
use crate::shape::Shape;
use crate::tensor::{Tensor, TensorError};

/// Rows of the shared-dimension panel kept hot in cache per pass.
const PANEL: usize = 64;

/// Shared-dimension panel depth of the register-blocked A·B / Aᵀ·B
/// kernels. A `KC × NR` tile of B (32 KB) is the L1 working set; deeper
/// panels amortize the per-panel accumulator load/store further. Panel
/// depth never changes results: the accumulator round-trips through C in
/// f32, so each element's terms stay in ascending-`p` order regardless.
const KC: usize = 128;

/// Columns of the register-resident output tile (the microkernel width).
///
/// Together with [`MR`] this fixes the accumulator tile of the A·B and
/// Aᵀ·B microkernels at `MR × NR` floats: wide enough to give the backend
/// several independent accumulation chains, small enough to stay in SIMD
/// registers without spilling.
const NR: usize = 32;

/// Rows of the register-resident output tile (the microkernel height).
///
/// Each B tile load feeds `MR` output rows, so raising `MR` divides the
/// dominant load stream; the `MR × NR` product is bounded by the register
/// file (see [`NR`]).
const MR: usize = 1;

/// Dot products computed concurrently by the A·Bᵀ microkernel.
///
/// Each output element of `A · Bᵀ` is an independent dot product; computing
/// one at a time leaves a single latency-bound add chain. Running `NR_DOT`
/// dots side by side (one accumulator each, shared `A` element) fills the
/// FPU pipeline without touching any element's accumulation order.
const NR_DOT: usize = 8;

/// Multiply-adds below which a product runs inline: for tiny operands the
/// cost of spawning scoped workers exceeds the whole product.
const PAR_THRESHOLD: usize = 32 * 1024;

/// Computes the matrix product `C = A · B` for rank-2 tensors.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] if either operand is not rank 2 and
/// [`TensorError::MatmulDimMismatch`] if `A` has a different number of
/// columns than `B` has rows.
///
/// # Examples
///
/// ```
/// use lts_tensor::{matmul::matmul, Shape, Tensor};
/// # fn main() -> Result<(), lts_tensor::TensorError> {
/// let a = Tensor::from_vec(Shape::d2(2, 2), vec![1.0, 2.0, 3.0, 4.0])?;
/// let i = Tensor::from_vec(Shape::d2(2, 2), vec![1.0, 0.0, 0.0, 1.0])?;
/// assert_eq!(matmul(&a, &i)?, a);
/// # Ok(())
/// # }
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    let (m, k, n) = check_product_dims(a, b, false, false)?;
    let mut c = Tensor::zeros(Shape::d2(m, n));
    matmul_into(a.as_slice(), b.as_slice(), c.as_mut_slice(), m, k, n);
    Ok(c)
}

/// Computes `C = Aᵀ · B` without materializing the transpose.
///
/// `A` is `[k, m]`, `B` is `[k, n]`, result is `[m, n]`. Used for the
/// weight-gradient step of linear layers.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] or
/// [`TensorError::MatmulDimMismatch`] under the same conditions as
/// [`matmul`].
pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    let (m, k, n) = check_product_dims(a, b, true, false)?;
    let mut c = Tensor::zeros(Shape::d2(m, n));
    matmul_at_b_into(a.as_slice(), b.as_slice(), c.as_mut_slice(), m, k, n);
    Ok(c)
}

/// Computes `C = A · Bᵀ` without materializing the transpose.
///
/// `A` is `[m, k]`, `B` is `[n, k]`, result is `[m, n]`. Used for the
/// input-gradient step of linear layers.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] or
/// [`TensorError::MatmulDimMismatch`] under the same conditions as
/// [`matmul`].
pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    let (m, k, n) = check_product_dims(a, b, false, true)?;
    let mut c = Tensor::zeros(Shape::d2(m, n));
    matmul_a_bt_into(a.as_slice(), b.as_slice(), c.as_mut_slice(), m, k, n);
    Ok(c)
}

/// Transposes a rank-2 tensor.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] if `a` is not rank 2.
pub fn transpose(a: &Tensor) -> Result<Tensor, TensorError> {
    check_rank2(a)?;
    let (m, n) = (a.shape().dim(0), a.shape().dim(1));
    let mut out = Tensor::zeros(Shape::d2(n, m));
    let (av, ov) = (a.as_slice(), out.as_mut_slice());
    for i in 0..m {
        for j in 0..n {
            ov[j * m + i] = av[i * n + j];
        }
    }
    Ok(out)
}

fn check_rank2(t: &Tensor) -> Result<(), TensorError> {
    if t.shape().rank() != 2 {
        return Err(TensorError::RankMismatch { expected: 2, actual: t.shape().rank() });
    }
    Ok(())
}

/// Validates a product's operand shapes and returns `(m, k, n)`.
fn check_product_dims(
    a: &Tensor,
    b: &Tensor,
    transpose_a: bool,
    transpose_b: bool,
) -> Result<(usize, usize, usize), TensorError> {
    check_rank2(a)?;
    check_rank2(b)?;
    let (m, k) = if transpose_a {
        (a.shape().dim(1), a.shape().dim(0))
    } else {
        (a.shape().dim(0), a.shape().dim(1))
    };
    let (k2, n) = if transpose_b {
        (b.shape().dim(1), b.shape().dim(0))
    } else {
        (b.shape().dim(0), b.shape().dim(1))
    };
    if k != k2 {
        return Err(TensorError::MatmulDimMismatch { left_cols: k, right_rows: k2 });
    }
    Ok((m, k, n))
}

/// Flat-slice GEMM `C = A · B` with `A: [m, k]`, `B: [k, n]`, `C: [m, n]`,
/// all row-major. Overwrites `C`. Output rows are partitioned across the
/// execution engine; see the module docs for the determinism contract.
///
/// # Panics
///
/// Panics (in debug builds) if the slice lengths disagree with the
/// dimensions.
pub fn matmul_into(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    let _probe = lts_obs::span("tensor.matmul");
    lts_obs::counter_add("tensor.macs_f32", (m * k * n) as u64);
    if n == 0 {
        return;
    }
    let kernel = |first_row: usize, stripe: &mut [f32]| {
        stripe.fill(0.0);
        let rows = stripe.len() / n;
        // Panel over the shared dimension: within a panel the microkernel
        // accumulates an NR-wide register tile of the C row across every p
        // of the panel; each element still sums its terms in p-ascending
        // order, so neither level of blocking perturbs results.
        for p0 in (0..k).step_by(KC) {
            let p1 = (p0 + KC).min(k);
            axpy_panel_stripe(|i, p| a[i * k + p], b, stripe, first_row, rows, n, p0, p1);
        }
    };
    if m * k * n < PAR_THRESHOLD {
        kernel(0, c);
    } else {
        par::par_row_stripes(c, n, kernel);
    }
}

/// Runs the register-blocked microkernel over every row of a stripe for one
/// shared-dimension panel, pairing rows so each B tile load feeds two
/// output rows (the row-major GEMMs are load-bound, not FLOP-bound).
///
/// `apanel(i, p)` abstracts the A access (`a[i*k + p]` for A·B,
/// `a[p*m + i]` for Aᵀ·B) so both kernels share the microkernel. Pairing
/// rows cannot perturb results: each element's terms are still added in
/// ascending `p`, and rows never mix.
#[inline]
#[allow(clippy::too_many_arguments)] // one call frame below two GEMM kernels
fn axpy_panel_stripe(
    apanel: impl Fn(usize, usize) -> f32 + Copy,
    b: &[f32],
    stripe: &mut [f32],
    first_row: usize,
    rows: usize,
    n: usize,
    p0: usize,
    p1: usize,
) {
    // j-tile outermost: one `PANEL × NR` tile of B (a few KB) is re-read
    // for every row of the stripe and stays L1-resident, instead of
    // streaming the whole `PANEL × n` panel once per row.
    let mut j0 = 0;
    while j0 + NR <= n {
        let mut r = 0;
        while r + MR <= rows {
            axpy_panel_tile::<MR>(apanel, b, stripe, first_row, r, n, j0, p0, p1);
            r += MR;
        }
        while r < rows {
            axpy_panel_tile::<1>(apanel, b, stripe, first_row, r, n, j0, p0, p1);
            r += 1;
        }
        j0 += NR;
    }
    if j0 < n {
        for r in 0..rows {
            let i = first_row + r;
            axpy_row_tail(|p| apanel(i, p), b, &mut stripe[r * n + j0..r * n + n], n, j0, p0, p1);
        }
    }
}

/// Register-blocked update of one `M × NR` output tile over one
/// shared-dimension panel: `c[r+mr][j0+jj] += Σ_{p in p0..p1}
/// apanel(first_row + r + mr, p) · b[p*n + j0 + jj]`, terms added in
/// ascending `p` for every element.
///
/// The `M × NR` accumulator tile lives in registers across the whole
/// panel, so each C element is loaded and stored once per panel (instead
/// of once per `p`) and each B tile load feeds `M` output rows — the
/// row-major GEMMs are load-bound, not FLOP-bound. A zero A element skips
/// its row's whole tile update for that `p` — exactly the skip the
/// pre-tile kernels performed, preserved bit-for-bit because `c + 0.0·x`
/// is *not* always `c` in IEEE arithmetic (`-0.0` and non-finite `x`).
#[inline]
#[allow(clippy::too_many_arguments)]
fn axpy_panel_tile<const M: usize>(
    apanel: impl Fn(usize, usize) -> f32 + Copy,
    b: &[f32],
    stripe: &mut [f32],
    first_row: usize,
    r: usize,
    n: usize,
    j0: usize,
    p0: usize,
    p1: usize,
) {
    let mut acc = [[0.0f32; NR]; M];
    for (mr, accrow) in acc.iter_mut().enumerate() {
        let row = (r + mr) * n + j0;
        accrow.copy_from_slice(&stripe[row..row + NR]);
    }
    for p in p0..p1 {
        let btile = &b[p * n + j0..p * n + j0 + NR];
        for (mr, accrow) in acc.iter_mut().enumerate() {
            let aval = apanel(first_row + r + mr, p);
            if aval != 0.0 {
                for jj in 0..NR {
                    accrow[jj] += aval * btile[jj];
                }
            }
        }
    }
    for (mr, accrow) in acc.iter().enumerate() {
        let row = (r + mr) * n + j0;
        stripe[row..row + NR].copy_from_slice(accrow);
    }
}

/// Scalar update of one row's tail columns (`j0..n`) for one panel — the
/// pre-tile kernel loop, byte-for-byte.
#[inline]
fn axpy_row_tail(
    apanel: impl Fn(usize) -> f32,
    b: &[f32],
    ctail: &mut [f32],
    n: usize,
    j0: usize,
    p0: usize,
    p1: usize,
) {
    for p in p0..p1 {
        let aval = apanel(p);
        if aval == 0.0 {
            continue;
        }
        let brow = &b[p * n..(p + 1) * n];
        for (cj, &bj) in ctail.iter_mut().zip(&brow[j0..]) {
            *cj += aval * bj;
        }
    }
}

/// Flat-slice `C = Aᵀ · B` with `A: [k, m]`, `B: [k, n]`, `C: [m, n]`.
/// Overwrites `C`. Same determinism contract as [`matmul_into`].
pub fn matmul_at_b_into(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    let _probe = lts_obs::span("tensor.matmul_at_b");
    lts_obs::counter_add("tensor.macs_f32", (m * k * n) as u64);
    if n == 0 {
        return;
    }
    let kernel = |first_row: usize, stripe: &mut [f32]| {
        stripe.fill(0.0);
        let rows = stripe.len() / n;
        for p0 in (0..k).step_by(KC) {
            let p1 = (p0 + KC).min(k);
            axpy_panel_stripe(|i, p| a[p * m + i], b, stripe, first_row, rows, n, p0, p1);
        }
    };
    if m * k * n < PAR_THRESHOLD {
        kernel(0, c);
    } else {
        par::par_row_stripes(c, n, kernel);
    }
}

/// Flat-slice `C = A · Bᵀ` with `A: [m, k]`, `B: [n, k]`, `C: [m, n]`.
/// Overwrites `C`. Same determinism contract as [`matmul_into`].
pub fn matmul_a_bt_into(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(c.len(), m * n);
    let _probe = lts_obs::span("tensor.matmul_a_bt");
    lts_obs::counter_add("tensor.macs_f32", (m * k * n) as u64);
    if n == 0 {
        return;
    }
    let kernel = |first_row: usize, stripe: &mut [f32]| {
        let rows = stripe.len() / n;
        // Panel over B's rows (output columns): each j-panel of B is reused
        // across every row of the stripe. Dots are independent per element,
        // so the microkernel runs NR_DOT of them side by side — one
        // accumulator each — to break the single-dot latency chain. Each
        // dot still sums in ascending shared-dimension order.
        for j0 in (0..n).step_by(PANEL) {
            let j1 = (j0 + PANEL).min(n);
            for r in 0..rows {
                let arow = &a[(first_row + r) * k..(first_row + r) * k + k];
                let crow = &mut stripe[r * n..(r + 1) * n];
                let mut j = j0;
                while j + NR_DOT <= j1 {
                    let mut acc = [0.0f32; NR_DOT];
                    let bt: [&[f32]; NR_DOT] =
                        std::array::from_fn(|jj| &b[(j + jj) * k..(j + jj) * k + k]);
                    for (p, &x) in arow.iter().enumerate() {
                        for jj in 0..NR_DOT {
                            acc[jj] += x * bt[jj][p];
                        }
                    }
                    crow[j..j + NR_DOT].copy_from_slice(&acc);
                    j += NR_DOT;
                }
                for j in j..j1 {
                    let brow = &b[j * k..(j + 1) * k];
                    let mut acc = 0.0f32;
                    for (&x, &y) in arow.iter().zip(brow) {
                        acc += x * y;
                    }
                    crow[j] = acc;
                }
            }
        }
    };
    if m * k * n < PAR_THRESHOLD {
        kernel(0, c);
    } else {
        par::par_row_stripes(c, n, kernel);
    }
}

pub mod reference {
    //! The pre-overhaul GEMM kernels, retained verbatim (serial form).
    //!
    //! The register-blocked microkernels in the parent module are gated on
    //! producing bit-identical results to these: the equivalence proptests
    //! assert exact equality on random shapes, and the `hotpath` benchmark
    //! times both on the same inputs so `BENCH_hotpath.json` records a
    //! true before/after on one host. Not for production use.

    use super::PANEL;

    /// Pre-overhaul `C = A · B` (i-k-j panel loop, no register tile).
    pub fn matmul_into_ref(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
        debug_assert_eq!(a.len(), m * k);
        debug_assert_eq!(b.len(), k * n);
        debug_assert_eq!(c.len(), m * n);
        if n == 0 {
            return;
        }
        c.fill(0.0);
        for p0 in (0..k).step_by(PANEL) {
            let p1 = (p0 + PANEL).min(k);
            for r in 0..m {
                let arow = &a[r * k..r * k + k];
                let crow = &mut c[r * n..(r + 1) * n];
                for (p, &aval) in arow[p0..p1].iter().enumerate().map(|(o, v)| (p0 + o, v)) {
                    if aval == 0.0 {
                        continue;
                    }
                    let brow = &b[p * n..(p + 1) * n];
                    for (cj, &bj) in crow.iter_mut().zip(brow) {
                        *cj += aval * bj;
                    }
                }
            }
        }
    }

    /// Pre-overhaul `C = Aᵀ · B`.
    pub fn matmul_at_b_into_ref(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
        debug_assert_eq!(a.len(), k * m);
        debug_assert_eq!(b.len(), k * n);
        debug_assert_eq!(c.len(), m * n);
        if n == 0 {
            return;
        }
        c.fill(0.0);
        for p0 in (0..k).step_by(PANEL) {
            let p1 = (p0 + PANEL).min(k);
            for i in 0..m {
                let crow = &mut c[i * n..(i + 1) * n];
                for p in p0..p1 {
                    let aval = a[p * m + i];
                    if aval == 0.0 {
                        continue;
                    }
                    let brow = &b[p * n..(p + 1) * n];
                    for (cj, &bj) in crow.iter_mut().zip(brow) {
                        *cj += aval * bj;
                    }
                }
            }
        }
    }

    /// Pre-overhaul `C = A · Bᵀ` (one dot product per element).
    pub fn matmul_a_bt_into_ref(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
        debug_assert_eq!(a.len(), m * k);
        debug_assert_eq!(b.len(), n * k);
        debug_assert_eq!(c.len(), m * n);
        if n == 0 {
            return;
        }
        for j0 in (0..n).step_by(PANEL) {
            let j1 = (j0 + PANEL).min(n);
            for r in 0..m {
                let arow = &a[r * k..r * k + k];
                let crow = &mut c[r * n..(r + 1) * n];
                for j in j0..j1 {
                    let brow = &b[j * k..(j + 1) * k];
                    let mut acc = 0.0f32;
                    for (&x, &y) in arow.iter().zip(brow) {
                        acc += x * y;
                    }
                    crow[j] = acc;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, v: Vec<f32>) -> Tensor {
        Tensor::from_vec(Shape::d2(rows, cols), v).unwrap()
    }

    #[test]
    fn small_product_matches_hand_computation() {
        let a = m(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = m(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn identity_is_neutral() {
        let a = m(2, 2, vec![1., 2., 3., 4.]);
        let i = m(2, 2, vec![1., 0., 0., 1.]);
        assert_eq!(matmul(&a, &i).unwrap(), a);
        assert_eq!(matmul(&i, &a).unwrap(), a);
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let a = m(2, 3, vec![0.; 6]);
        let b = m(2, 3, vec![0.; 6]);
        assert!(matches!(
            matmul(&a, &b),
            Err(TensorError::MatmulDimMismatch { left_cols: 3, right_rows: 2 })
        ));
    }

    #[test]
    fn rank_mismatch_is_rejected() {
        let a = Tensor::zeros(Shape::d3(1, 2, 3));
        let b = Tensor::zeros(Shape::d2(3, 1));
        assert!(matches!(matmul(&a, &b), Err(TensorError::RankMismatch { .. })));
    }

    #[test]
    fn at_b_equals_explicit_transpose() {
        let a = m(3, 2, vec![1., 2., 3., 4., 5., 6.]);
        let b = m(3, 4, (0..12).map(|x| x as f32).collect());
        let expected = matmul(&transpose(&a).unwrap(), &b).unwrap();
        assert_eq!(matmul_at_b(&a, &b).unwrap(), expected);
    }

    #[test]
    fn a_bt_equals_explicit_transpose() {
        let a = m(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = m(4, 3, (0..12).map(|x| x as f32).collect());
        let expected = matmul(&a, &transpose(&b).unwrap()).unwrap();
        assert_eq!(matmul_a_bt(&a, &b).unwrap(), expected);
    }

    #[test]
    fn transpose_involution() {
        let a = m(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(transpose(&transpose(&a).unwrap()).unwrap(), a);
    }

    /// Reference triple loop in the naive j-inner order.
    fn naive(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut c = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                for p in 0..k {
                    c[i * n + j] += a[i * k + p] * b[p * n + j];
                }
            }
        }
        c
    }

    #[test]
    fn blocked_kernel_matches_naive_beyond_panel_size() {
        // Exercise shapes that straddle the panel boundary.
        for (mm, kk, nn) in [(3, PANEL + 7, 5), (17, 2 * PANEL, PANEL + 1), (1, 1, 1)] {
            let a: Vec<f32> = (0..mm * kk).map(|x| ((x * 37 % 23) as f32) - 11.0).collect();
            let b: Vec<f32> = (0..kk * nn).map(|x| ((x * 17 % 19) as f32) - 9.0).collect();
            let mut c = vec![1.0f32; mm * nn];
            matmul_into(&a, &b, &mut c, mm, kk, nn);
            assert_eq!(c, naive(&a, &b, mm, kk, nn), "{mm}x{kk}x{nn}");
        }
    }

    #[test]
    fn microkernels_match_retained_reference_kernels() {
        // Shapes straddling both the panel and the register-tile widths,
        // with exact zeros in A (the zero-skip path) and awkward tails.
        for (mm, kk, nn) in
            [(5, PANEL + 9, NR + 3), (3, 2 * PANEL + 1, 2 * NR), (7, 11, NR_DOT + 1), (2, 1, 1)]
        {
            let gen = |len: usize, s: usize| -> Vec<f32> {
                (0..len).map(|x| (((x * s + 5) % 13) as f32) - 6.0).collect()
            };
            let a = gen(mm * kk, 37);
            let at = gen(kk * mm, 37);
            let b = gen(kk * nn, 17);
            let bt = gen(nn * kk, 17);
            let (mut c, mut cr) = (vec![1.0f32; mm * nn], vec![2.0f32; mm * nn]);
            matmul_into(&a, &b, &mut c, mm, kk, nn);
            reference::matmul_into_ref(&a, &b, &mut cr, mm, kk, nn);
            assert_eq!(c, cr, "matmul {mm}x{kk}x{nn}");
            matmul_at_b_into(&at, &b, &mut c, mm, kk, nn);
            reference::matmul_at_b_into_ref(&at, &b, &mut cr, mm, kk, nn);
            assert_eq!(c, cr, "at_b {mm}x{kk}x{nn}");
            matmul_a_bt_into(&a, &bt, &mut c, mm, kk, nn);
            reference::matmul_a_bt_into_ref(&a, &bt, &mut cr, mm, kk, nn);
            assert_eq!(c, cr, "a_bt {mm}x{kk}x{nn}");
        }
    }
}
