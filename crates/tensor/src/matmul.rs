//! Blocked single-precision matrix multiplication.
//!
//! Training the paper's networks spends essentially all of its time here
//! (convolutions are lowered to GEMM via [`crate::im2col`]), so the kernel
//! uses the classic i-k-j loop order with register accumulation over
//! contiguous rows, which is cache-friendly without unsafe code.

use crate::shape::Shape;
use crate::tensor::{Tensor, TensorError};

/// Computes the matrix product `C = A · B` for rank-2 tensors.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] if either operand is not rank 2 and
/// [`TensorError::MatmulDimMismatch`] if `A` has a different number of
/// columns than `B` has rows.
///
/// # Examples
///
/// ```
/// use lts_tensor::{matmul::matmul, Shape, Tensor};
/// # fn main() -> Result<(), lts_tensor::TensorError> {
/// let a = Tensor::from_vec(Shape::d2(2, 2), vec![1.0, 2.0, 3.0, 4.0])?;
/// let i = Tensor::from_vec(Shape::d2(2, 2), vec![1.0, 0.0, 0.0, 1.0])?;
/// assert_eq!(matmul(&a, &i)?, a);
/// # Ok(())
/// # }
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    check_rank2(a)?;
    check_rank2(b)?;
    let (m, k) = (a.shape().dim(0), a.shape().dim(1));
    let (k2, n) = (b.shape().dim(0), b.shape().dim(1));
    if k != k2 {
        return Err(TensorError::MatmulDimMismatch { left_cols: k, right_rows: k2 });
    }
    let mut c = Tensor::zeros(Shape::d2(m, n));
    matmul_into(a.as_slice(), b.as_slice(), c.as_mut_slice(), m, k, n);
    Ok(c)
}

/// Computes `C = Aᵀ · B` without materializing the transpose.
///
/// `A` is `[k, m]`, `B` is `[k, n]`, result is `[m, n]`. Used for the
/// weight-gradient step of linear layers.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] or
/// [`TensorError::MatmulDimMismatch`] under the same conditions as
/// [`matmul`].
pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    check_rank2(a)?;
    check_rank2(b)?;
    let (k, m) = (a.shape().dim(0), a.shape().dim(1));
    let (k2, n) = (b.shape().dim(0), b.shape().dim(1));
    if k != k2 {
        return Err(TensorError::MatmulDimMismatch { left_cols: k, right_rows: k2 });
    }
    let mut c = Tensor::zeros(Shape::d2(m, n));
    let (av, bv, cv) = (a.as_slice(), b.as_slice(), c.as_mut_slice());
    for p in 0..k {
        let arow = &av[p * m..(p + 1) * m];
        let brow = &bv[p * n..(p + 1) * n];
        for (i, &aval) in arow.iter().enumerate() {
            if aval == 0.0 {
                continue;
            }
            let crow = &mut cv[i * n..(i + 1) * n];
            for (cj, &bj) in crow.iter_mut().zip(brow) {
                *cj += aval * bj;
            }
        }
    }
    Ok(c)
}

/// Computes `C = A · Bᵀ` without materializing the transpose.
///
/// `A` is `[m, k]`, `B` is `[n, k]`, result is `[m, n]`. Used for the
/// input-gradient step of linear layers.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] or
/// [`TensorError::MatmulDimMismatch`] under the same conditions as
/// [`matmul`].
pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    check_rank2(a)?;
    check_rank2(b)?;
    let (m, k) = (a.shape().dim(0), a.shape().dim(1));
    let (n, k2) = (b.shape().dim(0), b.shape().dim(1));
    if k != k2 {
        return Err(TensorError::MatmulDimMismatch { left_cols: k, right_rows: k2 });
    }
    let mut c = Tensor::zeros(Shape::d2(m, n));
    let (av, bv, cv) = (a.as_slice(), b.as_slice(), c.as_mut_slice());
    for i in 0..m {
        let arow = &av[i * k..(i + 1) * k];
        for j in 0..n {
            let brow = &bv[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&x, &y) in arow.iter().zip(brow) {
                acc += x * y;
            }
            cv[i * n + j] = acc;
        }
    }
    Ok(c)
}

/// Transposes a rank-2 tensor.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] if `a` is not rank 2.
pub fn transpose(a: &Tensor) -> Result<Tensor, TensorError> {
    check_rank2(a)?;
    let (m, n) = (a.shape().dim(0), a.shape().dim(1));
    let mut out = Tensor::zeros(Shape::d2(n, m));
    let (av, ov) = (a.as_slice(), out.as_mut_slice());
    for i in 0..m {
        for j in 0..n {
            ov[j * m + i] = av[i * n + j];
        }
    }
    Ok(out)
}

fn check_rank2(t: &Tensor) -> Result<(), TensorError> {
    if t.shape().rank() != 2 {
        return Err(TensorError::RankMismatch { expected: 2, actual: t.shape().rank() });
    }
    Ok(())
}

/// Raw i-k-j GEMM on flat row-major slices: `c[m,n] += a[m,k] * b[k,n]`.
///
/// `c` must be zero-initialized by the caller if a pure product is wanted.
pub(crate) fn matmul_into(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let crow = &mut c[i * n..(i + 1) * n];
        for (p, &aval) in arow.iter().enumerate() {
            if aval == 0.0 {
                continue;
            }
            let brow = &b[p * n..(p + 1) * n];
            for (cj, &bj) in crow.iter_mut().zip(brow) {
                *cj += aval * bj;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, v: Vec<f32>) -> Tensor {
        Tensor::from_vec(Shape::d2(rows, cols), v).unwrap()
    }

    #[test]
    fn small_product_matches_hand_computation() {
        let a = m(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = m(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn identity_is_neutral() {
        let a = m(2, 2, vec![1., 2., 3., 4.]);
        let i = m(2, 2, vec![1., 0., 0., 1.]);
        assert_eq!(matmul(&a, &i).unwrap(), a);
        assert_eq!(matmul(&i, &a).unwrap(), a);
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let a = m(2, 3, vec![0.; 6]);
        let b = m(2, 3, vec![0.; 6]);
        assert!(matches!(
            matmul(&a, &b),
            Err(TensorError::MatmulDimMismatch { left_cols: 3, right_rows: 2 })
        ));
    }

    #[test]
    fn rank_mismatch_is_rejected() {
        let a = Tensor::zeros(Shape::d3(1, 2, 3));
        let b = Tensor::zeros(Shape::d2(3, 1));
        assert!(matches!(matmul(&a, &b), Err(TensorError::RankMismatch { .. })));
    }

    #[test]
    fn at_b_equals_explicit_transpose() {
        let a = m(3, 2, vec![1., 2., 3., 4., 5., 6.]);
        let b = m(3, 4, (0..12).map(|x| x as f32).collect());
        let expected = matmul(&transpose(&a).unwrap(), &b).unwrap();
        assert_eq!(matmul_at_b(&a, &b).unwrap(), expected);
    }

    #[test]
    fn a_bt_equals_explicit_transpose() {
        let a = m(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = m(4, 3, (0..12).map(|x| x as f32).collect());
        let expected = matmul(&a, &transpose(&b).unwrap()).unwrap();
        assert_eq!(matmul_a_bt(&a, &b).unwrap(), expected);
    }

    #[test]
    fn transpose_involution() {
        let a = m(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(transpose(&transpose(&a).unwrap()).unwrap(), a);
    }
}
