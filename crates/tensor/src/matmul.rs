//! Blocked, row-parallel single-precision matrix multiplication.
//!
//! Training the paper's networks spends essentially all of its time here
//! (convolutions are lowered to GEMM via [`crate::im2col`]), so the kernels
//! use the cache-friendly i-k-j loop order with panel blocking over the
//! shared dimension, and partition output rows across the execution engine
//! ([`crate::par`]).
//!
//! # Determinism
//!
//! Every kernel accumulates each output element's terms in ascending order
//! of the shared dimension, and row partitioning never splits an element's
//! accumulation. Results are therefore bit-identical for any worker count,
//! including 1 — the parallel kernels are drop-in replacements for their
//! serial ancestors.

use crate::par;
use crate::shape::Shape;
use crate::tensor::{Tensor, TensorError};

/// Rows of the shared-dimension panel kept hot in cache per pass.
const PANEL: usize = 64;

/// Multiply-adds below which a product runs inline: for tiny operands the
/// cost of spawning scoped workers exceeds the whole product.
const PAR_THRESHOLD: usize = 32 * 1024;

/// Computes the matrix product `C = A · B` for rank-2 tensors.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] if either operand is not rank 2 and
/// [`TensorError::MatmulDimMismatch`] if `A` has a different number of
/// columns than `B` has rows.
///
/// # Examples
///
/// ```
/// use lts_tensor::{matmul::matmul, Shape, Tensor};
/// # fn main() -> Result<(), lts_tensor::TensorError> {
/// let a = Tensor::from_vec(Shape::d2(2, 2), vec![1.0, 2.0, 3.0, 4.0])?;
/// let i = Tensor::from_vec(Shape::d2(2, 2), vec![1.0, 0.0, 0.0, 1.0])?;
/// assert_eq!(matmul(&a, &i)?, a);
/// # Ok(())
/// # }
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    let (m, k, n) = check_product_dims(a, b, false, false)?;
    let mut c = Tensor::zeros(Shape::d2(m, n));
    matmul_into(a.as_slice(), b.as_slice(), c.as_mut_slice(), m, k, n);
    Ok(c)
}

/// Computes `C = Aᵀ · B` without materializing the transpose.
///
/// `A` is `[k, m]`, `B` is `[k, n]`, result is `[m, n]`. Used for the
/// weight-gradient step of linear layers.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] or
/// [`TensorError::MatmulDimMismatch`] under the same conditions as
/// [`matmul`].
pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    let (m, k, n) = check_product_dims(a, b, true, false)?;
    let mut c = Tensor::zeros(Shape::d2(m, n));
    matmul_at_b_into(a.as_slice(), b.as_slice(), c.as_mut_slice(), m, k, n);
    Ok(c)
}

/// Computes `C = A · Bᵀ` without materializing the transpose.
///
/// `A` is `[m, k]`, `B` is `[n, k]`, result is `[m, n]`. Used for the
/// input-gradient step of linear layers.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] or
/// [`TensorError::MatmulDimMismatch`] under the same conditions as
/// [`matmul`].
pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    let (m, k, n) = check_product_dims(a, b, false, true)?;
    let mut c = Tensor::zeros(Shape::d2(m, n));
    matmul_a_bt_into(a.as_slice(), b.as_slice(), c.as_mut_slice(), m, k, n);
    Ok(c)
}

/// Transposes a rank-2 tensor.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] if `a` is not rank 2.
pub fn transpose(a: &Tensor) -> Result<Tensor, TensorError> {
    check_rank2(a)?;
    let (m, n) = (a.shape().dim(0), a.shape().dim(1));
    let mut out = Tensor::zeros(Shape::d2(n, m));
    let (av, ov) = (a.as_slice(), out.as_mut_slice());
    for i in 0..m {
        for j in 0..n {
            ov[j * m + i] = av[i * n + j];
        }
    }
    Ok(out)
}

fn check_rank2(t: &Tensor) -> Result<(), TensorError> {
    if t.shape().rank() != 2 {
        return Err(TensorError::RankMismatch { expected: 2, actual: t.shape().rank() });
    }
    Ok(())
}

/// Validates a product's operand shapes and returns `(m, k, n)`.
fn check_product_dims(
    a: &Tensor,
    b: &Tensor,
    transpose_a: bool,
    transpose_b: bool,
) -> Result<(usize, usize, usize), TensorError> {
    check_rank2(a)?;
    check_rank2(b)?;
    let (m, k) = if transpose_a {
        (a.shape().dim(1), a.shape().dim(0))
    } else {
        (a.shape().dim(0), a.shape().dim(1))
    };
    let (k2, n) = if transpose_b {
        (b.shape().dim(1), b.shape().dim(0))
    } else {
        (b.shape().dim(0), b.shape().dim(1))
    };
    if k != k2 {
        return Err(TensorError::MatmulDimMismatch { left_cols: k, right_rows: k2 });
    }
    Ok((m, k, n))
}

/// Flat-slice GEMM `C = A · B` with `A: [m, k]`, `B: [k, n]`, `C: [m, n]`,
/// all row-major. Overwrites `C`. Output rows are partitioned across the
/// execution engine; see the module docs for the determinism contract.
///
/// # Panics
///
/// Panics (in debug builds) if the slice lengths disagree with the
/// dimensions.
pub fn matmul_into(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    if n == 0 {
        return;
    }
    let kernel = |first_row: usize, stripe: &mut [f32]| {
        stripe.fill(0.0);
        let rows = stripe.len() / n;
        // Panel over the shared dimension: the PANEL×n block of B stays hot
        // across every row of the stripe. Accumulation order per element is
        // still p ascending, so blocking does not perturb results.
        for p0 in (0..k).step_by(PANEL) {
            let p1 = (p0 + PANEL).min(k);
            for r in 0..rows {
                let arow = &a[(first_row + r) * k..(first_row + r) * k + k];
                let crow = &mut stripe[r * n..(r + 1) * n];
                for (p, &aval) in arow[p0..p1].iter().enumerate().map(|(o, v)| (p0 + o, v)) {
                    if aval == 0.0 {
                        continue;
                    }
                    let brow = &b[p * n..(p + 1) * n];
                    for (cj, &bj) in crow.iter_mut().zip(brow) {
                        *cj += aval * bj;
                    }
                }
            }
        }
    };
    if m * k * n < PAR_THRESHOLD {
        kernel(0, c);
    } else {
        par::par_row_stripes(c, n, kernel);
    }
}

/// Flat-slice `C = Aᵀ · B` with `A: [k, m]`, `B: [k, n]`, `C: [m, n]`.
/// Overwrites `C`. Same determinism contract as [`matmul_into`].
pub fn matmul_at_b_into(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    if n == 0 {
        return;
    }
    let kernel = |first_row: usize, stripe: &mut [f32]| {
        stripe.fill(0.0);
        let rows = stripe.len() / n;
        for p0 in (0..k).step_by(PANEL) {
            let p1 = (p0 + PANEL).min(k);
            for r in 0..rows {
                let i = first_row + r;
                let crow = &mut stripe[r * n..(r + 1) * n];
                for p in p0..p1 {
                    let aval = a[p * m + i];
                    if aval == 0.0 {
                        continue;
                    }
                    let brow = &b[p * n..(p + 1) * n];
                    for (cj, &bj) in crow.iter_mut().zip(brow) {
                        *cj += aval * bj;
                    }
                }
            }
        }
    };
    if m * k * n < PAR_THRESHOLD {
        kernel(0, c);
    } else {
        par::par_row_stripes(c, n, kernel);
    }
}

/// Flat-slice `C = A · Bᵀ` with `A: [m, k]`, `B: [n, k]`, `C: [m, n]`.
/// Overwrites `C`. Same determinism contract as [`matmul_into`].
pub fn matmul_a_bt_into(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(c.len(), m * n);
    if n == 0 {
        return;
    }
    let kernel = |first_row: usize, stripe: &mut [f32]| {
        let rows = stripe.len() / n;
        // Panel over B's rows (output columns): each j-panel of B is reused
        // across every row of the stripe. Dots are independent per element.
        for j0 in (0..n).step_by(PANEL) {
            let j1 = (j0 + PANEL).min(n);
            for r in 0..rows {
                let arow = &a[(first_row + r) * k..(first_row + r) * k + k];
                let crow = &mut stripe[r * n..(r + 1) * n];
                for j in j0..j1 {
                    let brow = &b[j * k..(j + 1) * k];
                    let mut acc = 0.0f32;
                    for (&x, &y) in arow.iter().zip(brow) {
                        acc += x * y;
                    }
                    crow[j] = acc;
                }
            }
        }
    };
    if m * k * n < PAR_THRESHOLD {
        kernel(0, c);
    } else {
        par::par_row_stripes(c, n, kernel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, v: Vec<f32>) -> Tensor {
        Tensor::from_vec(Shape::d2(rows, cols), v).unwrap()
    }

    #[test]
    fn small_product_matches_hand_computation() {
        let a = m(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = m(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn identity_is_neutral() {
        let a = m(2, 2, vec![1., 2., 3., 4.]);
        let i = m(2, 2, vec![1., 0., 0., 1.]);
        assert_eq!(matmul(&a, &i).unwrap(), a);
        assert_eq!(matmul(&i, &a).unwrap(), a);
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let a = m(2, 3, vec![0.; 6]);
        let b = m(2, 3, vec![0.; 6]);
        assert!(matches!(
            matmul(&a, &b),
            Err(TensorError::MatmulDimMismatch { left_cols: 3, right_rows: 2 })
        ));
    }

    #[test]
    fn rank_mismatch_is_rejected() {
        let a = Tensor::zeros(Shape::d3(1, 2, 3));
        let b = Tensor::zeros(Shape::d2(3, 1));
        assert!(matches!(matmul(&a, &b), Err(TensorError::RankMismatch { .. })));
    }

    #[test]
    fn at_b_equals_explicit_transpose() {
        let a = m(3, 2, vec![1., 2., 3., 4., 5., 6.]);
        let b = m(3, 4, (0..12).map(|x| x as f32).collect());
        let expected = matmul(&transpose(&a).unwrap(), &b).unwrap();
        assert_eq!(matmul_at_b(&a, &b).unwrap(), expected);
    }

    #[test]
    fn a_bt_equals_explicit_transpose() {
        let a = m(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = m(4, 3, (0..12).map(|x| x as f32).collect());
        let expected = matmul(&a, &transpose(&b).unwrap()).unwrap();
        assert_eq!(matmul_a_bt(&a, &b).unwrap(), expected);
    }

    #[test]
    fn transpose_involution() {
        let a = m(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(transpose(&transpose(&a).unwrap()).unwrap(), a);
    }

    /// Reference triple loop in the naive j-inner order.
    fn naive(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut c = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                for p in 0..k {
                    c[i * n + j] += a[i * k + p] * b[p * n + j];
                }
            }
        }
        c
    }

    #[test]
    fn blocked_kernel_matches_naive_beyond_panel_size() {
        // Exercise shapes that straddle the panel boundary.
        for (mm, kk, nn) in [(3, PANEL + 7, 5), (17, 2 * PANEL, PANEL + 1), (1, 1, 1)] {
            let a: Vec<f32> = (0..mm * kk).map(|x| ((x * 37 % 23) as f32) - 11.0).collect();
            let b: Vec<f32> = (0..kk * nn).map(|x| ((x * 17 % 19) as f32) - 9.0).collect();
            let mut c = vec![1.0f32; mm * nn];
            matmul_into(&a, &b, &mut c, mm, kk, nn);
            assert_eq!(c, naive(&a, &b, mm, kk, nn), "{mm}x{kk}x{nn}");
        }
    }
}
