//! The owned dense tensor type and its error type.

use crate::shape::Shape;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Errors produced by tensor operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The provided buffer length does not match the shape's element count.
    LengthMismatch {
        /// Expected number of elements (from the shape).
        expected: usize,
        /// Actual number of elements provided.
        actual: usize,
    },
    /// Two tensors that must have identical shapes do not.
    ShapeMismatch {
        /// Shape of the left-hand operand.
        left: Shape,
        /// Shape of the right-hand operand.
        right: Shape,
    },
    /// The inner dimensions of a matrix product do not agree.
    MatmulDimMismatch {
        /// Columns of the left matrix.
        left_cols: usize,
        /// Rows of the right matrix.
        right_rows: usize,
    },
    /// An operation required a specific rank.
    RankMismatch {
        /// Required rank.
        expected: usize,
        /// Actual rank.
        actual: usize,
    },
    /// A layer/op-specific invalid configuration, with a human-readable reason.
    InvalidArgument(String),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { expected, actual } => {
                write!(f, "buffer of {actual} elements does not fit shape of {expected} elements")
            }
            TensorError::ShapeMismatch { left, right } => {
                write!(f, "shape mismatch: {left} vs {right}")
            }
            TensorError::MatmulDimMismatch { left_cols, right_rows } => {
                write!(f, "matmul inner dimensions disagree: {left_cols} vs {right_rows}")
            }
            TensorError::RankMismatch { expected, actual } => {
                write!(f, "expected rank {expected}, got rank {actual}")
            }
            TensorError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl Error for TensorError {}

/// An owned, contiguous, row-major `f32` tensor.
///
/// Feature maps use the NCHW layout; convolution kernels use
/// `[out_channels, in_channels, kh, kw]`.
///
/// # Examples
///
/// ```
/// use lts_tensor::{Shape, Tensor};
///
/// let t = Tensor::zeros(Shape::d2(2, 2));
/// assert_eq!(t.len(), 4);
/// assert_eq!(t.at(&[1, 1]), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    pub fn zeros(shape: Shape) -> Self {
        let len = shape.len();
        Self { shape, data: vec![0.0; len] }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(shape: Shape) -> Self {
        let len = shape.len();
        Self { shape, data: vec![1.0; len] }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: Shape, value: f32) -> Self {
        let len = shape.len();
        Self { shape, data: vec![value; len] }
    }

    /// Creates a tensor from an existing buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len() != shape.len()`.
    pub fn from_vec(shape: Shape, data: Vec<f32>) -> Result<Self, TensorError> {
        if data.len() != shape.len() {
            return Err(TensorError::LengthMismatch { expected: shape.len(), actual: data.len() });
        }
        Ok(Self { shape, data })
    }

    /// Creates a 1-D tensor from a slice.
    pub fn from_slice_1d(data: &[f32]) -> Self {
        Self { shape: Shape::d1(data.len()), data: data.to_vec() }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying buffer (row-major).
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying buffer (row-major).
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any coordinate is out of bounds.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Mutable element reference at a multi-index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any coordinate is out of bounds.
    pub fn at_mut(&mut self, index: &[usize]) -> &mut f32 {
        let off = self.shape.offset(index);
        &mut self.data[off]
    }

    /// Returns a copy reshaped to `shape`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if the element counts differ.
    pub fn reshaped(&self, shape: Shape) -> Result<Tensor, TensorError> {
        Tensor::from_vec(shape, self.data.clone())
    }

    /// Reshapes in place (no data movement).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if the element counts differ.
    pub fn reshape(&mut self, shape: Shape) -> Result<(), TensorError> {
        if shape.len() != self.data.len() {
            return Err(TensorError::LengthMismatch {
                expected: shape.len(),
                actual: self.data.len(),
            });
        }
        self.shape = shape;
        Ok(())
    }

    /// Applies `f` to every element, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor { shape: self.shape.clone(), data: self.data.iter().map(|&x| f(x)).collect() }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Fills the tensor with `value`.
    pub fn fill(&mut self, value: f32) {
        self.data.iter_mut().for_each(|x| *x = value);
    }

    /// The 2-D row slice `[row, ..]` of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or `row` is out of bounds.
    pub fn row(&self, row: usize) -> &[f32] {
        assert_eq!(self.shape.rank(), 2, "row() requires a rank-2 tensor");
        let cols = self.shape.dim(1);
        &self.data[row * cols..(row + 1) * cols]
    }

    /// A single image `[c, h, w]` copied out of an NCHW batch.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 4 or `n` is out of bounds.
    pub fn image(&self, n: usize) -> Tensor {
        assert_eq!(self.shape.rank(), 4, "image() requires a rank-4 tensor");
        let (c, h, w) = (self.shape.dim(1), self.shape.dim(2), self.shape.dim(3));
        let sz = c * h * w;
        let start = n * sz;
        Tensor { shape: Shape::d3(c, h, w), data: self.data[start..start + sz].to_vec() }
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} [", self.shape)?;
        let preview: Vec<String> = self.data.iter().take(8).map(|x| format!("{x:.4}")).collect();
        write!(f, "{}", preview.join(", "))?;
        if self.data.len() > 8 {
            write!(f, ", ... {} more", self.data.len() - 8)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ones_have_expected_values() {
        let z = Tensor::zeros(Shape::d2(2, 3));
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
        let o = Tensor::ones(Shape::d2(2, 3));
        assert!(o.as_slice().iter().all(|&x| x == 1.0));
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(Shape::d1(3), vec![1.0, 2.0]).is_err());
        assert!(Tensor::from_vec(Shape::d1(2), vec![1.0, 2.0]).is_ok());
    }

    #[test]
    fn indexing_roundtrip() {
        let mut t = Tensor::zeros(Shape::d3(2, 3, 4));
        *t.at_mut(&[1, 2, 3]) = 42.0;
        assert_eq!(t.at(&[1, 2, 3]), 42.0);
        assert_eq!(t.at(&[0, 0, 0]), 0.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(Shape::d2(2, 3), vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let r = t.reshaped(Shape::d2(3, 2)).unwrap();
        assert_eq!(r.as_slice(), t.as_slice());
        assert!(t.reshaped(Shape::d2(4, 2)).is_err());
    }

    #[test]
    fn map_applies_function() {
        let t = Tensor::from_slice_1d(&[1.0, -2.0, 3.0]);
        let m = t.map(|x| x.abs());
        assert_eq!(m.as_slice(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn row_returns_correct_slice() {
        let t = Tensor::from_vec(Shape::d2(2, 3), vec![1., 2., 3., 4., 5., 6.]).unwrap();
        assert_eq!(t.row(1), &[4., 5., 6.]);
    }

    #[test]
    fn image_extracts_single_sample() {
        let mut t = Tensor::zeros(Shape::d4(2, 1, 2, 2));
        *t.at_mut(&[1, 0, 1, 1]) = 7.0;
        let img = t.image(1);
        assert_eq!(img.shape().dims(), &[1, 2, 2]);
        assert_eq!(img.at(&[0, 1, 1]), 7.0);
    }

    #[test]
    fn display_previews_elements() {
        let t = Tensor::from_slice_1d(&[1.0; 10]);
        let s = t.to_string();
        assert!(s.contains("2 more"), "{s}");
    }

    #[test]
    fn error_display_is_meaningful() {
        let e = TensorError::MatmulDimMismatch { left_cols: 3, right_rows: 4 };
        assert!(e.to_string().contains("3 vs 4"));
    }
}
