//! Per-tensor symmetric scale quantization for the i16 inference path.
//!
//! [`crate::fixed::Fixed16`] pins the Q7.8 format of the simulated
//! accelerator cores; this module generalizes the mapping to a per-tensor
//! *symmetric scale* chosen from calibration min/max, the DianNao-style
//! convention a deployed 16-bit chip would actually use. A real value `x`
//! is stored as `q = round(x / scale)` clamped to the i16 range and
//! recovered as `q * scale`; zero is always exactly representable
//! (`q = 0`), so pruned weights and sparsified activations stay exactly
//! zero through quantization — the zero-skip in the i16 GEMM kernels and
//! the NoC's zero-suppression both survive.
//!
//! The scale is chosen so the calibrated range maps onto `±i16::MAX`:
//! `scale = max(|min|, |max|) / 32767`. [`QuantParams::q78`] recovers the
//! fixed Q7.8 format (`scale = 2⁻⁸`) for bit-compatibility with
//! [`crate::fixed::Fixed16::from_f32`].

use serde::{Deserialize, Serialize};

/// Per-tensor symmetric quantization parameters: a single positive scale.
///
/// # Examples
///
/// ```
/// use lts_tensor::quant::QuantParams;
///
/// let p = QuantParams::from_slice(&[-0.5, 0.25, 2.0]);
/// let q = p.quantize(0.25);
/// assert!((p.dequantize(q) - 0.25).abs() <= p.scale() / 2.0);
/// assert_eq!(p.quantize(0.0), 0); // zero is exact
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuantParams {
    scale: f32,
    max_code: i16,
}

impl QuantParams {
    /// Chooses a symmetric scale covering `[min, max]`: the value of
    /// largest magnitude maps to `±i16::MAX`. Degenerate (all-zero or
    /// non-finite) ranges fall back to the Q7.8 scale so the parameters
    /// stay usable.
    pub fn from_min_max(min: f32, max: f32) -> Self {
        Self::from_min_max_with_headroom(min, max, 1.0)
    }

    /// Like [`QuantParams::from_min_max`], but the largest-magnitude value
    /// maps to `±i16::MAX / headroom` instead of the full range.
    ///
    /// This is how the i16 GEMM path guarantees its i32 accumulators never
    /// wrap: quantizing *both* operands of a length-`k` reduction with
    /// `headroom = √k` bounds every accumulated dot product by
    /// `k · (i16::MAX/√k)² = i16::MAX² < 2³¹`, for any input whatsoever.
    /// The cost is `log2(headroom)` bits of precision (e.g. ~5 bits at
    /// k = 1152, leaving ~10-bit operands — still well inside the ≤1%
    /// accuracy budget of 16-bit CNN inference).
    pub fn from_min_max_with_headroom(min: f32, max: f32, headroom: f32) -> Self {
        let amax = min.abs().max(max.abs());
        if !amax.is_finite() || amax <= 0.0 {
            return Self::q78();
        }
        let headroom = if headroom.is_finite() { headroom.max(1.0) } else { 1.0 };
        QuantParams {
            scale: amax * headroom / i16::MAX as f32,
            max_code: (i16::MAX as f32 / headroom).round() as i16,
        }
    }

    /// Calibrates from the observed values of a slice.
    pub fn from_slice(values: &[f32]) -> Self {
        Self::from_slice_with_headroom(values, 1.0)
    }

    /// Calibrates from a slice with accumulator headroom (see
    /// [`QuantParams::from_min_max_with_headroom`]).
    pub fn from_slice_with_headroom(values: &[f32], headroom: f32) -> Self {
        let mut amax = 0.0f32;
        for &v in values {
            if v.is_finite() {
                amax = amax.max(v.abs());
            }
        }
        Self::from_min_max_with_headroom(-amax, amax, headroom)
    }

    /// The fixed Q7.8 scale (2⁻⁸), matching [`crate::fixed::Fixed16`].
    pub fn q78() -> Self {
        QuantParams {
            scale: 1.0 / (1 << crate::fixed::DEFAULT_FRAC_BITS) as f32,
            max_code: i16::MAX,
        }
    }

    /// The quantization step: one i16 unit in real-value terms.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// The saturation code: values clamp to `±max_code` (`i16::MAX /
    /// headroom`), so the accumulator-headroom guarantee holds even for
    /// inputs beyond the calibrated range.
    pub fn max_code(&self) -> i16 {
        self.max_code
    }

    /// Quantizes one value: round to nearest, saturate at the symmetric
    /// `±max_code` range (the most-negative i16 code is never emitted, so
    /// negation can't overflow downstream).
    pub fn quantize(&self, x: f32) -> i16 {
        let scaled = (x / self.scale).round();
        scaled.clamp(-(self.max_code as f32), self.max_code as f32) as i16
    }

    /// Recovers the real value of one quantized unit, exactly.
    pub fn dequantize(&self, q: i16) -> f32 {
        q as f32 * self.scale
    }

    /// Quantizes a slice into a caller-provided buffer (no allocation).
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != values.len()`.
    pub fn quantize_into(&self, values: &[f32], out: &mut [i16]) {
        assert_eq!(values.len(), out.len(), "quantize_into: length mismatch");
        for (dst, &x) in out.iter_mut().zip(values) {
            *dst = self.quantize(x);
        }
    }

    /// Dequantizes a slice into a caller-provided buffer (no allocation).
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != values.len()`.
    pub fn dequantize_into(&self, values: &[i16], out: &mut [f32]) {
        assert_eq!(values.len(), out.len(), "dequantize_into: length mismatch");
        for (dst, &q) in out.iter_mut().zip(values) {
            *dst = self.dequantize(q);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixed::Fixed16;

    #[test]
    fn roundtrip_error_bounded_by_half_scale() {
        let p = QuantParams::from_min_max(-3.7, 2.1);
        for i in 0..1000 {
            let x = -3.7 + (i as f32) * (5.8 / 1000.0);
            let err = (p.dequantize(p.quantize(x)) - x).abs();
            assert!(err <= p.scale() / 2.0 + f32::EPSILON, "x={x} err={err}");
        }
    }

    #[test]
    fn extremes_map_to_i16_max() {
        let p = QuantParams::from_min_max(-4.0, 2.0);
        assert_eq!(p.quantize(-4.0), -i16::MAX);
        assert_eq!(p.quantize(4.0), i16::MAX);
        // Out-of-calibration values saturate instead of wrapping.
        assert_eq!(p.quantize(1e9), i16::MAX);
        assert_eq!(p.quantize(-1e9), -i16::MAX);
    }

    #[test]
    fn zero_is_exact() {
        for p in [QuantParams::from_min_max(-1.3, 0.9), QuantParams::q78()] {
            assert_eq!(p.quantize(0.0), 0);
            assert_eq!(p.dequantize(0), 0.0);
        }
    }

    #[test]
    fn q78_matches_fixed16() {
        let p = QuantParams::q78();
        for x in [-1.0f32, 0.0, 0.5, 1.5, -3.25, 127.0, 0.1, -0.31, 1000.0] {
            let via_fixed = Fixed16::from_f32(x);
            // Fixed16 clamps to i16::MIN..=MAX while the symmetric scheme
            // clamps to -MAX..=MAX; they agree everywhere except the single
            // most-negative code, which the calibrated scales never emit.
            let expected = via_fixed.to_bits().max(-i16::MAX);
            assert_eq!(p.quantize(x), expected, "{x}");
        }
    }

    #[test]
    fn degenerate_ranges_fall_back_to_q78() {
        assert_eq!(QuantParams::from_min_max(0.0, 0.0), QuantParams::q78());
        assert_eq!(QuantParams::from_slice(&[]), QuantParams::q78());
        assert_eq!(QuantParams::from_min_max(f32::NAN, f32::INFINITY), QuantParams::q78());
    }

    #[test]
    fn slice_helpers_roundtrip() {
        let src = [0.5f32, -0.25, 0.0, 1.75, -2.0];
        let p = QuantParams::from_slice(&src);
        let mut q = [0i16; 5];
        p.quantize_into(&src, &mut q);
        assert_eq!(q[2], 0);
        let mut back = [0.0f32; 5];
        p.dequantize_into(&q, &mut back);
        for (a, b) in src.iter().zip(&back) {
            assert!((a - b).abs() <= p.scale() / 2.0 + f32::EPSILON);
        }
    }
}
