//! 16-bit fixed-point arithmetic matching the simulated accelerator cores.
//!
//! The paper's cores (Table II) use "16-bit fixed-point integer operation",
//! the DianNao convention: a signed 16-bit value with an implied binary
//! point. We default to the Q7.8 format (1 sign bit, 7 integer bits,
//! 8 fraction bits) which covers the activation/weight ranges of the
//! trained networks. The type exists so the evaluation pass can measure the
//! accuracy of the *quantized* network that would actually run on the chip,
//! and so per-value traffic is exactly 2 bytes as in Table I.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of fractional bits in the default Q7.8 format.
pub const DEFAULT_FRAC_BITS: u32 = 8;

/// A 16-bit signed fixed-point value in Q(15-F).F format.
///
/// # Examples
///
/// ```
/// use lts_tensor::Fixed16;
///
/// let x = Fixed16::from_f32(1.5);
/// assert_eq!(x.to_f32(), 1.5);
/// let y = x.saturating_mul(Fixed16::from_f32(2.0));
/// assert_eq!(y.to_f32(), 3.0);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Fixed16(i16);

impl Fixed16 {
    /// The maximum representable value.
    pub const MAX: Fixed16 = Fixed16(i16::MAX);
    /// The minimum representable value.
    pub const MIN: Fixed16 = Fixed16(i16::MIN);
    /// Zero.
    pub const ZERO: Fixed16 = Fixed16(0);

    /// Converts from `f32`, rounding to nearest and saturating at the
    /// representable range.
    pub fn from_f32(x: f32) -> Self {
        let scaled = (x * (1 << DEFAULT_FRAC_BITS) as f32).round();
        let clamped = scaled.clamp(i16::MIN as f32, i16::MAX as f32);
        Fixed16(clamped as i16)
    }

    /// Converts back to `f32` exactly.
    pub fn to_f32(self) -> f32 {
        self.0 as f32 / (1 << DEFAULT_FRAC_BITS) as f32
    }

    /// The raw 16-bit representation.
    pub fn to_bits(self) -> i16 {
        self.0
    }

    /// Builds a value from its raw 16-bit representation.
    pub fn from_bits(bits: i16) -> Self {
        Fixed16(bits)
    }

    /// Saturating fixed-point addition.
    pub fn saturating_add(self, rhs: Fixed16) -> Fixed16 {
        Fixed16(self.0.saturating_add(rhs.0))
    }

    /// Saturating fixed-point multiplication (Q7.8 × Q7.8 → Q7.8).
    pub fn saturating_mul(self, rhs: Fixed16) -> Fixed16 {
        let wide = (self.0 as i32) * (rhs.0 as i32);
        let shifted = wide >> DEFAULT_FRAC_BITS;
        Fixed16(shifted.clamp(i16::MIN as i32, i16::MAX as i32) as i16)
    }

    /// Whether the value is exactly zero (a zero value need not be sent over
    /// the NoC — the heart of the sparsified parallelization).
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The quantization step of the format (2⁻⁸ for Q7.8).
    pub fn resolution() -> f32 {
        1.0 / (1 << DEFAULT_FRAC_BITS) as f32
    }
}

impl fmt::Display for Fixed16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

impl From<Fixed16> for f32 {
    fn from(x: Fixed16) -> f32 {
        x.to_f32()
    }
}

/// Quantizes an `f32` slice through the Q7.8 format, returning the
/// dequantized values (what the accelerator would compute with).
pub fn quantize_dequantize(values: &[f32]) -> Vec<f32> {
    values.iter().map(|&x| Fixed16::from_f32(x).to_f32()).collect()
}

/// Quantizes a whole tensor in place through the Q7.8 format.
pub fn quantize_tensor(t: &mut crate::tensor::Tensor) {
    for v in t.as_mut_slice() {
        *v = Fixed16::from_f32(*v).to_f32();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn representable_values_roundtrip_exactly() {
        for x in [-1.0f32, 0.0, 0.5, 1.5, -3.25, 127.0] {
            assert_eq!(Fixed16::from_f32(x).to_f32(), x, "{x}");
        }
    }

    #[test]
    fn roundtrip_error_bounded_by_half_resolution() {
        let step = Fixed16::resolution();
        for i in 0..1000 {
            let x = (i as f32) * 0.017 - 8.0;
            let err = (Fixed16::from_f32(x).to_f32() - x).abs();
            assert!(err <= step / 2.0 + f32::EPSILON, "x={x} err={err}");
        }
    }

    #[test]
    fn saturates_at_range_limits() {
        assert_eq!(Fixed16::from_f32(1000.0), Fixed16::MAX);
        assert_eq!(Fixed16::from_f32(-1000.0), Fixed16::MIN);
        assert_eq!(Fixed16::MAX.saturating_add(Fixed16::from_f32(1.0)), Fixed16::MAX);
    }

    #[test]
    fn multiplication_matches_float_for_small_values() {
        let a = Fixed16::from_f32(1.25);
        let b = Fixed16::from_f32(-2.0);
        assert_eq!(a.saturating_mul(b).to_f32(), -2.5);
    }

    #[test]
    fn zero_detection() {
        assert!(Fixed16::from_f32(0.0).is_zero());
        // Values below half the resolution quantize to exactly zero: this is
        // why "sparsified" activations genuinely skip NoC transmission.
        assert!(Fixed16::from_f32(0.001).is_zero());
        assert!(!Fixed16::from_f32(0.01).is_zero());
    }

    #[test]
    fn quantize_dequantize_slice() {
        let v = quantize_dequantize(&[0.1, 0.2]);
        assert!((v[0] - 0.1).abs() < Fixed16::resolution());
        assert!((v[1] - 0.2).abs() < Fixed16::resolution());
    }

    #[test]
    fn bits_roundtrip() {
        let x = Fixed16::from_f32(-1.5);
        assert_eq!(Fixed16::from_bits(x.to_bits()), x);
    }
}
