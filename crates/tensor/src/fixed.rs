//! 16-bit fixed-point arithmetic matching the simulated accelerator cores.
//!
//! The paper's cores (Table II) use "16-bit fixed-point integer operation",
//! the DianNao convention: a signed 16-bit value with an implied binary
//! point. We default to the Q7.8 format (1 sign bit, 7 integer bits,
//! 8 fraction bits) which covers the activation/weight ranges of the
//! trained networks. The type exists so the evaluation pass can measure the
//! accuracy of the *quantized* network that would actually run on the chip,
//! and so per-value traffic is exactly 2 bytes as in Table I.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of fractional bits in the default Q7.8 format.
pub const DEFAULT_FRAC_BITS: u32 = 8;

/// A 16-bit signed fixed-point value in Q(15-F).F format.
///
/// # Examples
///
/// ```
/// use lts_tensor::Fixed16;
///
/// let x = Fixed16::from_f32(1.5);
/// assert_eq!(x.to_f32(), 1.5);
/// let y = x.saturating_mul(Fixed16::from_f32(2.0));
/// assert_eq!(y.to_f32(), 3.0);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Fixed16(i16);

impl Fixed16 {
    /// The maximum representable value.
    pub const MAX: Fixed16 = Fixed16(i16::MAX);
    /// The minimum representable value.
    pub const MIN: Fixed16 = Fixed16(i16::MIN);
    /// Zero.
    pub const ZERO: Fixed16 = Fixed16(0);

    /// Converts from `f32`, rounding to nearest and saturating at the
    /// representable range.
    pub fn from_f32(x: f32) -> Self {
        let scaled = (x * (1 << DEFAULT_FRAC_BITS) as f32).round();
        let clamped = scaled.clamp(i16::MIN as f32, i16::MAX as f32);
        Fixed16(clamped as i16)
    }

    /// Converts back to `f32` exactly.
    pub fn to_f32(self) -> f32 {
        self.0 as f32 / (1 << DEFAULT_FRAC_BITS) as f32
    }

    /// The raw 16-bit representation.
    pub fn to_bits(self) -> i16 {
        self.0
    }

    /// Builds a value from its raw 16-bit representation.
    pub fn from_bits(bits: i16) -> Self {
        Fixed16(bits)
    }

    /// Saturating fixed-point addition.
    pub fn saturating_add(self, rhs: Fixed16) -> Fixed16 {
        Fixed16(self.0.saturating_add(rhs.0))
    }

    /// Saturating fixed-point multiplication (Q7.8 × Q7.8 → Q7.8).
    ///
    /// The 32-bit product's fractional bits are rounded half away from
    /// zero before the result is clamped to the representable range, so
    /// the result is the nearest representable value to the real product
    /// (an arithmetic shift alone would floor, biasing negative products
    /// toward -inf and positive ones toward zero).
    pub fn saturating_mul(self, rhs: Fixed16) -> Fixed16 {
        let wide = (self.0 as i32) * (rhs.0 as i32);
        // |wide| <= 2^30, so magnitude arithmetic fits comfortably in u32
        // and the rounded magnitude in i32.
        let half = 1u32 << (DEFAULT_FRAC_BITS - 1);
        let mag = ((wide.unsigned_abs() + half) >> DEFAULT_FRAC_BITS) as i32;
        let rounded = if wide < 0 { -mag } else { mag };
        Fixed16(rounded.clamp(i16::MIN as i32, i16::MAX as i32) as i16)
    }

    /// Whether the value is exactly zero (a zero value need not be sent over
    /// the NoC — the heart of the sparsified parallelization).
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The quantization step of the format (2⁻⁸ for Q7.8).
    pub fn resolution() -> f32 {
        1.0 / (1 << DEFAULT_FRAC_BITS) as f32
    }
}

impl fmt::Display for Fixed16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

impl From<Fixed16> for f32 {
    fn from(x: Fixed16) -> f32 {
        x.to_f32()
    }
}

/// Quantizes an `f32` slice through the Q7.8 format, returning the
/// dequantized values (what the accelerator would compute with).
///
/// Allocates a fresh `Vec`; hot paths should prefer
/// [`quantize_dequantize_into`] or [`quantize_dequantize_in_place`] on a
/// reused scratch buffer, per the `Workspace` zero-alloc convention.
pub fn quantize_dequantize(values: &[f32]) -> Vec<f32> {
    let mut out = vec![0.0; values.len()];
    quantize_dequantize_into(values, &mut out);
    out
}

/// Quantize→dequantize round trip through Q7.8 into a caller-provided
/// buffer (no allocation).
///
/// # Panics
///
/// Panics if `out.len() != values.len()`.
pub fn quantize_dequantize_into(values: &[f32], out: &mut [f32]) {
    assert_eq!(values.len(), out.len(), "quantize_dequantize_into: length mismatch");
    for (dst, &x) in out.iter_mut().zip(values) {
        *dst = Fixed16::from_f32(x).to_f32();
    }
}

/// Quantize→dequantize round trip through Q7.8, in place.
pub fn quantize_dequantize_in_place(values: &mut [f32]) {
    for v in values {
        *v = Fixed16::from_f32(*v).to_f32();
    }
}

/// Quantizes a whole tensor in place through the Q7.8 format.
pub fn quantize_tensor(t: &mut crate::tensor::Tensor) {
    quantize_dequantize_in_place(t.as_mut_slice());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn representable_values_roundtrip_exactly() {
        for x in [-1.0f32, 0.0, 0.5, 1.5, -3.25, 127.0] {
            assert_eq!(Fixed16::from_f32(x).to_f32(), x, "{x}");
        }
    }

    #[test]
    fn roundtrip_error_bounded_by_half_resolution() {
        let step = Fixed16::resolution();
        for i in 0..1000 {
            let x = (i as f32) * 0.017 - 8.0;
            let err = (Fixed16::from_f32(x).to_f32() - x).abs();
            assert!(err <= step / 2.0 + f32::EPSILON, "x={x} err={err}");
        }
    }

    #[test]
    fn saturates_at_range_limits() {
        assert_eq!(Fixed16::from_f32(1000.0), Fixed16::MAX);
        assert_eq!(Fixed16::from_f32(-1000.0), Fixed16::MIN);
        assert_eq!(Fixed16::MAX.saturating_add(Fixed16::from_f32(1.0)), Fixed16::MAX);
    }

    #[test]
    fn multiplication_matches_float_for_small_values() {
        let a = Fixed16::from_f32(1.25);
        let b = Fixed16::from_f32(-2.0);
        assert_eq!(a.saturating_mul(b).to_f32(), -2.5);
    }

    #[test]
    fn multiplication_rounds_half_away_from_zero() {
        // 3/256 * 85/256 = 255/65536 = 0.99609/256: nearest Q7.8 value is
        // 1/256, but a truncating shift would floor it to 0.
        let pos = Fixed16::from_bits(3).saturating_mul(Fixed16::from_bits(85));
        assert_eq!(pos.to_bits(), 1);
        // The mirrored negative product must round to -1/256, not floor
        // to -1/256-by-accident or truncate toward zero to 0.
        let neg = Fixed16::from_bits(-3).saturating_mul(Fixed16::from_bits(85));
        assert_eq!(neg.to_bits(), -1);
        // Exact half-ulp products (wide = ±128) round away from zero.
        assert_eq!(Fixed16::from_bits(2).saturating_mul(Fixed16::from_bits(64)).to_bits(), 1);
        assert_eq!(Fixed16::from_bits(-2).saturating_mul(Fixed16::from_bits(64)).to_bits(), -1);
        // Just under half an ulp (wide = ±127) rounds to zero either way.
        assert_eq!(Fixed16::from_bits(1).saturating_mul(Fixed16::from_bits(127)).to_bits(), 0);
        assert_eq!(Fixed16::from_bits(-1).saturating_mul(Fixed16::from_bits(127)).to_bits(), 0);
    }

    #[test]
    fn multiplication_saturates_at_extremes() {
        // MIN * MIN = 2^30 (positive): saturates at MAX, not wraparound.
        assert_eq!(Fixed16::MIN.saturating_mul(Fixed16::MIN), Fixed16::MAX);
        assert_eq!(Fixed16::MAX.saturating_mul(Fixed16::MAX), Fixed16::MAX);
        assert_eq!(Fixed16::MIN.saturating_mul(Fixed16::MAX), Fixed16::MIN);
        assert_eq!(Fixed16::MAX.saturating_mul(Fixed16::MIN), Fixed16::MIN);
    }

    #[test]
    fn zero_detection() {
        assert!(Fixed16::from_f32(0.0).is_zero());
        // Values below half the resolution quantize to exactly zero: this is
        // why "sparsified" activations genuinely skip NoC transmission.
        assert!(Fixed16::from_f32(0.001).is_zero());
        assert!(!Fixed16::from_f32(0.01).is_zero());
    }

    #[test]
    fn quantize_dequantize_slice() {
        let v = quantize_dequantize(&[0.1, 0.2]);
        assert!((v[0] - 0.1).abs() < Fixed16::resolution());
        assert!((v[1] - 0.2).abs() < Fixed16::resolution());
    }

    #[test]
    fn quantize_dequantize_variants_agree() {
        let src = [0.1f32, -0.31, 2.875, 200.0, -0.0019];
        let alloc = quantize_dequantize(&src);
        let mut into = [0.0f32; 5];
        quantize_dequantize_into(&src, &mut into);
        let mut inplace = src;
        quantize_dequantize_in_place(&mut inplace);
        assert_eq!(alloc.as_slice(), into.as_slice());
        assert_eq!(alloc.as_slice(), inplace.as_slice());
    }

    #[test]
    fn bits_roundtrip() {
        let x = Fixed16::from_f32(-1.5);
        assert_eq!(Fixed16::from_bits(x.to_bits()), x);
    }
}
