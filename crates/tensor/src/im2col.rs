//! `im2col`/`col2im` lowering for convolution.
//!
//! A convolution over an NCHW input with kernel `[kh, kw]`, stride and
//! padding is lowered to a matrix product by unrolling each receptive field
//! into a column. For one image, the column matrix has shape
//! `[in_c * kh * kw, out_h * out_w]`; the kernel tensor flattens to
//! `[out_c, in_c * kh * kw]`, and the product is the `[out_c, out_h * out_w]`
//! output feature map.

use crate::shape::Shape;
use crate::tensor::{Tensor, TensorError};

/// Geometry of a 2-D convolution (shared by forward and backward passes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvGeometry {
    /// Input channel count.
    pub in_c: usize,
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Stride (same in both dimensions).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub pad: usize,
}

impl ConvGeometry {
    /// Output height under this geometry.
    ///
    /// # Panics
    ///
    /// Panics if the kernel is larger than the padded input or the stride is
    /// zero.
    pub fn out_h(&self) -> usize {
        assert!(self.stride > 0, "stride must be positive");
        let padded = self.in_h + 2 * self.pad;
        assert!(padded >= self.kh, "kernel height {} exceeds padded input {}", self.kh, padded);
        (padded - self.kh) / self.stride + 1
    }

    /// Output width under this geometry.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`ConvGeometry::out_h`].
    pub fn out_w(&self) -> usize {
        assert!(self.stride > 0, "stride must be positive");
        let padded = self.in_w + 2 * self.pad;
        assert!(padded >= self.kw, "kernel width {} exceeds padded input {}", self.kw, padded);
        (padded - self.kw) / self.stride + 1
    }

    /// Rows of the column matrix: `in_c * kh * kw`.
    pub fn col_rows(&self) -> usize {
        self.in_c * self.kh * self.kw
    }

    /// Columns of the column matrix: `out_h * out_w`.
    pub fn col_cols(&self) -> usize {
        self.out_h() * self.out_w()
    }
}

/// Unrolls one `[in_c, in_h, in_w]` image into its column matrix.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] if `image` is not rank 3 and
/// [`TensorError::ShapeMismatch`] if its dimensions disagree with `geom`.
pub fn im2col(image: &Tensor, geom: &ConvGeometry) -> Result<Tensor, TensorError> {
    if image.shape().rank() != 3 {
        return Err(TensorError::RankMismatch { expected: 3, actual: image.shape().rank() });
    }
    let dims = image.shape().dims();
    if dims != [geom.in_c, geom.in_h, geom.in_w] {
        return Err(TensorError::ShapeMismatch {
            left: image.shape().clone(),
            right: Shape::d3(geom.in_c, geom.in_h, geom.in_w),
        });
    }
    let mut out = Tensor::zeros(Shape::d2(geom.col_rows(), geom.col_cols()));
    im2col_into(image.as_slice(), geom, out.as_mut_slice());
    Ok(out)
}

/// Unrolls one image (flat `[in_c * in_h * in_w]` slice) into a caller-owned
/// column buffer of `col_rows() * col_cols()` elements, overwriting it.
///
/// This is the allocation-free core of [`im2col`]: layers that run every
/// batch hand in a scratch buffer from a
/// [`Workspace`](crate::workspace::Workspace) instead of allocating a fresh
/// column matrix per call.
///
/// # Panics
///
/// Panics if `src` or `dst` disagree with the geometry's element counts.
pub fn im2col_into(src: &[f32], geom: &ConvGeometry, dst: &mut [f32]) {
    let _probe = lts_obs::span("tensor.im2col");
    im2col_into_generic(src, geom, dst, 0.0);
}

/// i16 twin of [`im2col_into`] for the quantized inference path: unrolls a
/// quantized image into a quantized column buffer, padding with exact
/// zeros (which the symmetric quantization maps to real 0.0).
///
/// # Panics
///
/// Panics if `src` or `dst` disagree with the geometry's element counts.
pub fn im2col_i16_into(src: &[i16], geom: &ConvGeometry, dst: &mut [i16]) {
    let _probe = lts_obs::span("tensor.im2col_i16");
    im2col_into_generic(src, geom, dst, 0);
}

/// Element-type-generic unroll shared by the f32 and i16 entry points —
/// identical traversal order, so the f32 path is unchanged byte for byte.
fn im2col_into_generic<T: Copy>(src: &[T], geom: &ConvGeometry, dst: &mut [T], zero: T) {
    assert_eq!(src.len(), geom.in_c * geom.in_h * geom.in_w, "input size mismatch");
    assert_eq!(dst.len(), geom.col_rows() * geom.col_cols(), "column buffer size mismatch");
    let (oh, ow) = (geom.out_h(), geom.out_w());
    let cols = oh * ow;
    let (ih, iw) = (geom.in_h as isize, geom.in_w as isize);
    for c in 0..geom.in_c {
        for ky in 0..geom.kh {
            for kx in 0..geom.kw {
                let row = (c * geom.kh + ky) * geom.kw + kx;
                for oy in 0..oh {
                    let sy = (oy * geom.stride + ky) as isize - geom.pad as isize;
                    for ox in 0..ow {
                        let sx = (ox * geom.stride + kx) as isize - geom.pad as isize;
                        let val = if sy >= 0 && sy < ih && sx >= 0 && sx < iw {
                            src[(c * geom.in_h + sy as usize) * geom.in_w + sx as usize]
                        } else {
                            zero
                        };
                        dst[row * cols + oy * ow + ox] = val;
                    }
                }
            }
        }
    }
}

/// Accumulates a column matrix back into a `[in_c, in_h, in_w]` image
/// (the adjoint of [`im2col`]), used by the convolution backward pass.
///
/// Overlapping receptive fields sum their contributions.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `cols` has the wrong shape for
/// `geom`.
pub fn col2im(cols: &Tensor, geom: &ConvGeometry) -> Result<Tensor, TensorError> {
    let expect = Shape::d2(geom.col_rows(), geom.col_cols());
    if cols.shape() != &expect {
        return Err(TensorError::ShapeMismatch { left: cols.shape().clone(), right: expect });
    }
    let mut image = Tensor::zeros(Shape::d3(geom.in_c, geom.in_h, geom.in_w));
    col2im_into(cols.as_slice(), geom, image.as_mut_slice());
    Ok(image)
}

/// Accumulates a flat column matrix into a caller-owned flat
/// `[in_c * in_h * in_w]` image buffer (the allocation-free core of
/// [`col2im`]).
///
/// Contributions are *added* to `dst`, so backward passes can accumulate
/// straight into a gradient slice; pass a zeroed buffer for the pure
/// adjoint.
///
/// # Panics
///
/// Panics if `src` or `dst` disagree with the geometry's element counts.
pub fn col2im_into(src: &[f32], geom: &ConvGeometry, dst: &mut [f32]) {
    assert_eq!(src.len(), geom.col_rows() * geom.col_cols(), "column buffer size mismatch");
    assert_eq!(dst.len(), geom.in_c * geom.in_h * geom.in_w, "image size mismatch");
    let _probe = lts_obs::span("tensor.col2im");
    let (oh, ow) = (geom.out_h(), geom.out_w());
    let ncols = oh * ow;
    let (ih, iw) = (geom.in_h as isize, geom.in_w as isize);
    for c in 0..geom.in_c {
        for ky in 0..geom.kh {
            for kx in 0..geom.kw {
                let row = (c * geom.kh + ky) * geom.kw + kx;
                for oy in 0..oh {
                    let sy = (oy * geom.stride + ky) as isize - geom.pad as isize;
                    if sy < 0 || sy >= ih {
                        continue;
                    }
                    for ox in 0..ow {
                        let sx = (ox * geom.stride + kx) as isize - geom.pad as isize;
                        if sx < 0 || sx >= iw {
                            continue;
                        }
                        dst[(c * geom.in_h + sy as usize) * geom.in_w + sx as usize] +=
                            src[row * ncols + oy * ow + ox];
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom_3x3_k2() -> ConvGeometry {
        ConvGeometry { in_c: 1, in_h: 3, in_w: 3, kh: 2, kw: 2, stride: 1, pad: 0 }
    }

    #[test]
    fn output_dims_follow_formula() {
        let g = ConvGeometry { in_c: 3, in_h: 32, in_w: 32, kh: 5, kw: 5, stride: 1, pad: 2 };
        assert_eq!(g.out_h(), 32);
        assert_eq!(g.out_w(), 32);
        let g2 = ConvGeometry { in_c: 3, in_h: 11, in_w: 11, kh: 3, kw: 3, stride: 2, pad: 0 };
        assert_eq!(g2.out_h(), 5);
    }

    #[test]
    fn im2col_unrolls_receptive_fields() {
        // 3x3 image 0..9, 2x2 kernel, stride 1 -> 4 columns of 4 rows.
        let img = Tensor::from_vec(Shape::d3(1, 3, 3), (0..9).map(|x| x as f32).collect()).unwrap();
        let cols = im2col(&img, &geom_3x3_k2()).unwrap();
        assert_eq!(cols.shape().dims(), &[4, 4]);
        // First column = top-left receptive field [0,1,3,4].
        let c = cols.as_slice();
        let col0: Vec<f32> = (0..4).map(|r| c[r * 4]).collect();
        assert_eq!(col0, vec![0.0, 1.0, 3.0, 4.0]);
        // Last column = bottom-right receptive field [4,5,7,8].
        let col3: Vec<f32> = (0..4).map(|r| c[r * 4 + 3]).collect();
        assert_eq!(col3, vec![4.0, 5.0, 7.0, 8.0]);
    }

    #[test]
    fn im2col_pads_with_zeros() {
        let img = Tensor::ones(Shape::d3(1, 2, 2));
        let g = ConvGeometry { in_c: 1, in_h: 2, in_w: 2, kh: 3, kw: 3, stride: 1, pad: 1 };
        let cols = im2col(&img, &g).unwrap();
        // Center kernel tap always hits the image; corner taps mostly pad.
        assert_eq!(cols.shape().dims(), &[9, 4]);
        // Row 0 (kernel tap (0,0)) for output (0,0) reads padded (-1,-1) = 0.
        assert_eq!(cols.as_slice()[0], 0.0);
        // Row 4 (kernel tap (1,1)) for output (0,0) reads image (0,0) = 1.
        assert_eq!(cols.as_slice()[4 * 4], 1.0);
    }

    #[test]
    fn col2im_is_adjoint_of_im2col_for_disjoint_fields() {
        // Stride = kernel size means fields do not overlap: col2im(im2col(x)) == x.
        let img =
            Tensor::from_vec(Shape::d3(1, 4, 4), (0..16).map(|x| x as f32).collect()).unwrap();
        let g = ConvGeometry { in_c: 1, in_h: 4, in_w: 4, kh: 2, kw: 2, stride: 2, pad: 0 };
        let back = col2im(&im2col(&img, &g).unwrap(), &g).unwrap();
        assert_eq!(back, img);
    }

    #[test]
    fn col2im_accumulates_overlaps() {
        let img = Tensor::ones(Shape::d3(1, 3, 3));
        let g = geom_3x3_k2();
        let back = col2im(&im2col(&img, &g).unwrap(), &g).unwrap();
        // Center pixel participates in all four 2x2 fields.
        assert_eq!(back.at(&[0, 1, 1]), 4.0);
        // Corner participates in exactly one.
        assert_eq!(back.at(&[0, 0, 0]), 1.0);
    }

    #[test]
    fn im2col_i16_matches_f32_layout() {
        // Same geometry, integer-valued image: the i16 unroll must place
        // every element (and every padding zero) exactly where the f32
        // unroll does.
        let g = ConvGeometry { in_c: 2, in_h: 4, in_w: 3, kh: 3, kw: 2, stride: 1, pad: 1 };
        let n = g.in_c * g.in_h * g.in_w;
        let f: Vec<f32> = (0..n).map(|x| (x as f32) - 7.0).collect();
        let q: Vec<i16> = (0..n).map(|x| (x as i16) - 7).collect();
        let cols = g.col_rows() * g.col_cols();
        let mut fd = vec![9.0f32; cols];
        let mut qd = vec![9i16; cols];
        im2col_into(&f, &g, &mut fd);
        im2col_i16_into(&q, &g, &mut qd);
        for (a, b) in fd.iter().zip(&qd) {
            assert_eq!(*a, *b as f32);
        }
    }

    #[test]
    fn shape_validation() {
        let img = Tensor::zeros(Shape::d3(2, 3, 3));
        assert!(im2col(&img, &geom_3x3_k2()).is_err());
        let bad_cols = Tensor::zeros(Shape::d2(3, 3));
        assert!(col2im(&bad_cols, &geom_3x3_k2()).is_err());
    }
}
